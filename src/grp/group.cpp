#include "grp/group.hpp"

#include <algorithm>
#include <map>
#include <numeric>
#include <utility>

#include "pami/machine.hpp"
#include "topo/torus.hpp"
#include "util/error.hpp"

namespace pgasq::grp {

// ---------------------------------------------------------------------------
// ProcGroup
// ---------------------------------------------------------------------------

ProcGroup::ProcGroup(GroupRegistry& registry, int id, std::string label,
                     std::vector<int> members,
                     std::unique_ptr<coll::CollEngine> engine)
    : registry_(registry),
      id_(id),
      label_(std::move(label)),
      members_(std::move(members)),
      engine_(std::move(engine)) {
  world_to_group_.reserve(members_.size());
  for (std::size_t i = 0; i < members_.size(); ++i) {
    world_to_group_[members_[i]] = static_cast<int>(i);
  }
}

int ProcGroup::world_rank(int group_rank) const {
  PGASQ_CHECK(group_rank >= 0 && group_rank < size(),
              << "group rank " << group_rank << " out of range for group '"
              << label_ << "' of size " << size());
  return members_[static_cast<std::size_t>(group_rank)];
}

int ProcGroup::group_rank_of(int world_rank) const {
  const auto it = world_to_group_.find(world_rank);
  return it == world_to_group_.end() ? -1 : it->second;
}

coll::CollEngine& ProcGroup::op_engine() {
  // The engine itself rejects non-member calls with the offending
  // world rank and group label; staleness is registry knowledge.
  PGASQ_CHECK(!stale_, << "group '" << label_ << "' (id " << id_
                       << ") is stale after communicator shrink; "
                          "recreate it over the survivors");
  return *engine_;
}

void ProcGroup::barrier() { op_engine().barrier(); }

void ProcGroup::broadcast(void* data, std::size_t bytes, int group_root) {
  op_engine().broadcast(data, bytes, group_root);
}

void ProcGroup::reduce_sum(double* x, std::size_t n, int group_root) {
  op_engine().reduce_sum(x, n, group_root);
}

void ProcGroup::allreduce_sum(double* x, std::size_t n) {
  op_engine().allreduce_sum(x, n);
}

void ProcGroup::allgather(const void* in, std::size_t bytes, void* out) {
  op_engine().allgather(in, bytes, out);
}

void ProcGroup::alltoall(const void* in, std::size_t bytes, void* out) {
  op_engine().alltoall(in, bytes, out);
}

std::shared_ptr<ProcGroup> ProcGroup::split(int color, int key) {
  PGASQ_CHECK(!stale_, << "cannot split stale group '" << label_ << "'");
  // Namespace the color by this group's id: two sibling groups using
  // equal colors must not merge their children.
  const std::int64_t namespaced =
      !is_member() || color < 0
          ? -1
          : (static_cast<std::int64_t>(id_ + 1) << 32) + color;
  return registry_.split_colored(namespaced, key);
}

// ---------------------------------------------------------------------------
// GroupRegistry
// ---------------------------------------------------------------------------

GroupRegistry& GroupRegistry::of(armci::Comm& comm) {
  std::shared_ptr<void>& slot = comm.grp_slot();
  if (!slot) slot = std::shared_ptr<GroupRegistry>(new GroupRegistry(comm));
  return *std::static_pointer_cast<GroupRegistry>(slot);
}

GroupRegistry::GroupRegistry(armci::Comm& comm) : comm_(comm) {
  // Attaching the world engine here is what makes first use of the
  // registry collective; afterwards live_ mirrors its member view.
  coll::CollEngine& world = coll::CollEngine::of(comm);
  if (world.geometry().shrunk) {
    live_ = world.group_members();
  } else {
    live_.resize(static_cast<std::size_t>(comm.nprocs()));
    std::iota(live_.begin(), live_.end(), 0);
  }
  comm.set_shrink_hook(
      [this](const std::vector<int>& survivors) { rebuild(survivors); });
}

std::vector<std::int64_t> GroupRegistry::agree(const std::int64_t (&mine)[3],
                                               const char* what) {
  coll::CollEngine& world = world_engine();
  const int p = world.geometry().p;
  PGASQ_CHECK(static_cast<int>(live_.size()) == p,
              << "group registry live set (" << live_.size()
              << ") out of step with the collective engine (" << p << ")");
  std::vector<std::int64_t> all(static_cast<std::size_t>(3 * p));
  world.allgather(mine, sizeof(mine), all.data());
  for (int v = 0; v < p; ++v) {
    PGASQ_CHECK(all[3 * v + 2] == mine[2],
                << "group creation out of sync (" << what << "): rank "
                << live_[static_cast<std::size_t>(v)] << " expects group id "
                << all[3 * v + 2] << " but rank " << comm_.rank() << " expects "
                << mine[2] << " — SPMD group calls must line up on every rank");
  }
  return all;
}

std::shared_ptr<ProcGroup> GroupRegistry::make_group(int id, std::string label,
                                                     std::vector<int> members,
                                                     std::size_t control_slots) {
  coll::GroupSpec spec;
  spec.members = members;
  spec.label = label;
  spec.control_slots = control_slots;
  auto engine = std::make_unique<coll::CollEngine>(comm_, spec);
  std::shared_ptr<ProcGroup> g(new ProcGroup(*this, id, std::move(label),
                                             std::move(members),
                                             std::move(engine)));
  groups_.push_back(g);
  return g;
}

std::shared_ptr<ProcGroup> GroupRegistry::split(int color, int key) {
  return split_colored(color, key);
}

std::shared_ptr<ProcGroup> GroupRegistry::split_colored(std::int64_t color,
                                                        int key) {
  const std::int64_t mine[3] = {color, key, next_id_};
  const std::vector<std::int64_t> all = agree(mine, "split");
  const int p = static_cast<int>(live_.size());

  // (key, world rank) per color; map order fixes the id assignment.
  std::map<std::int64_t, std::vector<std::pair<std::int64_t, int>>> by_color;
  for (int v = 0; v < p; ++v) {
    const std::int64_t c = all[3 * v];
    if (c >= 0) {
      by_color[c].emplace_back(all[3 * v + 1], live_[static_cast<std::size_t>(v)]);
    }
  }
  std::size_t max_size = 0;
  for (const auto& [c, vec] : by_color) max_size = std::max(max_size, vec.size());

  int my_id = -1;
  std::vector<int> my_members;
  int j = 0;
  for (auto& [c, vec] : by_color) {
    const int gid = next_id_ + j++;
    if (color >= 0 && c == color) {
      std::sort(vec.begin(), vec.end());
      my_members.reserve(vec.size());
      for (const auto& [k, w] : vec) my_members.push_back(w);
      my_id = gid;
    }
  }
  next_id_ += static_cast<int>(by_color.size());

  // Every live rank constructs exactly one engine here — colorless
  // ranks an empty non-member one — with a uniform control-slot count,
  // so the world-collective arena allocations line up.
  std::string label = label_override_ != nullptr ? label_override_
                      : my_id >= 0 ? "g" + std::to_string(my_id)
                                   : "none";
  return make_group(my_id, std::move(label), std::move(my_members), max_size);
}

std::shared_ptr<ProcGroup> GroupRegistry::create(const std::vector<int>& members,
                                                 const std::string& label) {
  PGASQ_CHECK(!members.empty(), << "group member list is empty");
  std::vector<int> sorted = members;
  std::sort(sorted.begin(), sorted.end());
  PGASQ_CHECK(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end(),
              << "group member list has duplicates");
  for (const int m : sorted) {
    PGASQ_CHECK(std::binary_search(live_.begin(), live_.end(), m),
                << "group member " << m << " is not a live world rank");
  }

  // Everyone must pass the same list + label: agree on a digest.
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  for (const int m : members) mix(static_cast<std::uint64_t>(m));
  for (const char ch : label) mix(static_cast<unsigned char>(ch));
  const std::int64_t mine[3] = {static_cast<std::int64_t>(h >> 1),
                                static_cast<std::int64_t>(members.size()),
                                next_id_};
  const std::vector<std::int64_t> all = agree(mine, "create");
  for (std::size_t v = 0; v < live_.size(); ++v) {
    PGASQ_CHECK(all[3 * v] == mine[0] && all[3 * v + 1] == mine[1],
                << "group creation out of sync (create): rank " << live_[v]
                << " passed a different member list or label than rank "
                << comm_.rank());
  }

  const int gid = next_id_++;
  return make_group(gid, label.empty() ? "g" + std::to_string(gid) : label,
                    members, members.size());
}

std::shared_ptr<ProcGroup> GroupRegistry::node_group() {
  want_node_ = true;
  if (node_ && !node_->stale()) return node_;
  const topo::RankMapping& map = comm_.world().machine().mapping();
  label_override_ = "node";
  node_ = split(map.node_of_rank(comm_.rank()), map.slot_of_rank(comm_.rank()));
  label_override_ = nullptr;
  return node_;
}

std::shared_ptr<ProcGroup> GroupRegistry::leaders_group() {
  want_leaders_ = true;
  if (leaders_ && !leaders_->stale()) return leaders_;
  const topo::RankMapping& map = comm_.world().machine().mapping();
  // Lowest live rank per node, node-id order — identical on every
  // rank, so create()'s digest agreement passes.
  std::map<int, int> leader_of;
  for (const int r : live_) {
    const int node = map.node_of_rank(r);
    const auto it = leader_of.find(node);
    if (it == leader_of.end() || r < it->second) leader_of[node] = r;
  }
  std::vector<int> leaders;
  leaders.reserve(leader_of.size());
  for (const auto& [node, r] : leader_of) leaders.push_back(r);
  leaders_ = create(leaders, "leaders");
  return leaders_;
}

void GroupRegistry::rebuild(const std::vector<int>& survivors) {
  for (const auto& w : groups_) {
    if (const std::shared_ptr<ProcGroup> g = w.lock()) g->stale_ = true;
  }
  groups_.clear();
  node_.reset();
  leaders_.reset();
  live_ = survivors;
  // The hook point (CollEngine::rebuild_shrunk) is collective over the
  // survivors with the allocation sequence re-aligned, which is
  // exactly what group creation needs — so the canonical groups can be
  // rebuilt eagerly. User groups stay stale until recreated.
  if (want_node_) node_group();
  if (want_leaders_) leaders_group();
}

}  // namespace pgasq::grp
