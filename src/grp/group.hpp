// Process groups over the ARMCI world — the GA processor-group model
// (GA_Pgroup_*) the paper's NWChem workloads assume, rebuilt on the
// simulated PAMI runtime.
//
// A ProcGroup is an ordered set of live world ranks with dense group
// ranks and rank translation both ways. Each group owns a group-mode
// coll::CollEngine — its own scratch arenas, schedule geometry, and
// per-group statistics — so collectives over a subset never touch the
// world engine's epoch stream. Construction is collective over ALL
// live world ranks (the engines' control-arena allocations must line
// up), and group ids are agreed through the world engine's own slot
// transport: every rank contributes its expected next id and the
// construction aborts loudly when SPMD call sites have diverged.
//
// The registry also derives the two canonical groups the hierarchical
// collectives lean on — the node-local group (every live rank sharing
// my node, ordered by T slot) and the leaders group (the lowest live
// rank of every node) — and rebuilds both after a fail-stop
// communicator shrink (Comm::shrink_hook). User groups are not
// rebuilt: they are marked stale and reject collectives until
// recreated over the survivor clique.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "coll/coll.hpp"
#include "core/comm.hpp"

namespace pgasq::grp {

class GroupRegistry;

/// One process group. Obtain via GroupRegistry (split / create /
/// node_group / leaders_group); handles are shared_ptr so they outlive
/// the collective call that made them.
class ProcGroup {
 public:
  /// Registry-wide id, agreed collectively at creation.
  int id() const { return id_; }
  /// Stats / trace label ("node", "leaders", or "g<id>").
  const std::string& label() const { return label_; }
  int size() const { return static_cast<int>(members_.size()); }
  bool is_member() const { return engine_->is_member(); }
  /// My dense group rank, or -1 for a non-member.
  int rank() const { return engine_->group_rank(); }
  /// Group rank -> world rank.
  int world_rank(int group_rank) const;
  /// World rank -> group rank, or -1 when not a member.
  int group_rank_of(int world_rank) const;
  /// Members in group-rank order (world ranks).
  const std::vector<int>& members() const { return members_; }
  /// True once a communicator shrink invalidated this group; every
  /// collective op rejects until the group is recreated.
  bool stale() const { return stale_; }

  // --- Collectives over the group (members only; a non-member or
  // stale-group call throws with a descriptive error) ---------------
  void barrier();
  void broadcast(void* data, std::size_t bytes, int group_root);
  void reduce_sum(double* x, std::size_t n, int group_root);
  void allreduce_sum(double* x, std::size_t n);
  void allgather(const void* in, std::size_t bytes, void* out);
  void alltoall(const void* in, std::size_t bytes, void* out);

  /// Nested split: like GroupRegistry::split, but non-members of this
  /// group are forced to color -1. Still collective over ALL live
  /// world ranks — in SPMD code every rank holds the parent handle and
  /// calls this at the same point.
  std::shared_ptr<ProcGroup> split(int color, int key);

  /// The group's collective engine (geometry introspection, algo_for).
  coll::CollEngine& engine() { return *engine_; }

 private:
  friend class GroupRegistry;
  ProcGroup(GroupRegistry& registry, int id, std::string label,
            std::vector<int> members, std::unique_ptr<coll::CollEngine> engine);
  /// Checked prologue of every collective op.
  coll::CollEngine& op_engine();

  GroupRegistry& registry_;
  int id_;
  std::string label_;
  std::vector<int> members_;
  std::unordered_map<int, int> world_to_group_;
  std::unique_ptr<coll::CollEngine> engine_;
  bool stale_ = false;
};

/// Per-Comm group registry, attached lazily to the Comm's grp slot.
class GroupRegistry {
 public:
  /// The registry of `comm`, created on first use. First use is
  /// collective (it attaches the world CollEngine), as is every
  /// group-creating call below.
  static GroupRegistry& of(armci::Comm& comm);

  /// MPI_Comm_split semantics over the live world: ranks passing the
  /// same color >= 0 form one group, ordered by (key, world rank);
  /// color < 0 joins no group (the returned handle is a non-member
  /// view of an empty group). Collective over all live ranks.
  std::shared_ptr<ProcGroup> split(int color, int key);

  /// Group from an explicit world-rank list (every rank must pass the
  /// same list — enforced collectively). Ranks outside the list get a
  /// non-member handle that can still translate ranks but rejects
  /// collectives. Collective over all live ranks.
  std::shared_ptr<ProcGroup> create(const std::vector<int>& members,
                                    const std::string& label = "");

  /// Live ranks sharing my node, ordered by hardware-thread slot
  /// (label "node"). Cached; rebuilt automatically after a shrink.
  std::shared_ptr<ProcGroup> node_group();
  /// Lowest live rank of every node, ordered by node id (label
  /// "leaders"). Non-leaders receive a non-member handle. Cached;
  /// rebuilt automatically after a shrink.
  std::shared_ptr<ProcGroup> leaders_group();

  /// Live world ranks groups are formed over (survivors after a
  /// shrink, all ranks before).
  const std::vector<int>& live() const { return live_; }

  armci::Comm& comm() { return comm_; }

 private:
  explicit GroupRegistry(armci::Comm& comm);
  friend class ProcGroup;

  /// Comm::shrink_hook target: marks every outstanding group stale,
  /// adopts the survivor list, and (collectively over survivors)
  /// recreates the canonical node / leaders groups if they were ever
  /// requested. Runs at the survivor-collective point inside
  /// CollEngine::rebuild_shrunk.
  void rebuild(const std::vector<int>& survivors);

  /// split() with a pre-namespaced 64-bit color (nested splits tag the
  /// parent group id into the high bits so sibling groups with equal
  /// user colors stay distinct).
  std::shared_ptr<ProcGroup> split_colored(std::int64_t color, int key);
  /// Shared creation tail: verifies id agreement happened upstream,
  /// builds the engine + handle, tracks it for staleness marking.
  std::shared_ptr<ProcGroup> make_group(int id, std::string label,
                                        std::vector<int> members,
                                        std::size_t control_slots);
  coll::CollEngine& world_engine() { return coll::CollEngine::of(comm_); }
  /// Allgathers `mine` (3 words) over the live world and checks word 2
  /// — the expected next group id — matches on every rank.
  std::vector<std::int64_t> agree(const std::int64_t (&mine)[3],
                                  const char* what);

  armci::Comm& comm_;
  std::vector<int> live_;
  int next_id_ = 1;
  std::vector<std::weak_ptr<ProcGroup>> groups_;
  std::shared_ptr<ProcGroup> node_;
  std::shared_ptr<ProcGroup> leaders_;
  bool want_node_ = false;
  bool want_leaders_ = false;
  /// Non-null while a canonical-group split is in flight: overrides
  /// the default "g<id>" stats/trace label ("node").
  const char* label_override_ = nullptr;
};

}  // namespace pgasq::grp
