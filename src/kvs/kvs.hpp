// Sharded key-value service over the ARMCI runtime: the first
// latency-bound, many-small-messages workload in the tree (the paper
// evaluates only dense kernels; the ROADMAP north star asks for a
// serving-tier workload).
//
// Layout — one collective allocation carries every shard: keys hash to
// a home member, each member owns an open-addressed table of
// fixed-size slots (64-bit words):
//
//   [ version | key_tag | faa counter | value word 0 (stamp) | ... ]
//
// version 0 = empty, odd = write-locked, even >= 2 = stable; key_tag
// is key + 1 so 0 means empty; the counter lives outside the value so
// put and faa never interfere.
//
// Protocols (see docs/kvs.md):
//  * get — one contiguous armci get of the whole slot. A slot write
//    holds the version odd for its whole span, so any even-version
//    snapshot is consistent; odd versions retry.
//  * put — versioned rmw write: CAS the even version v to v+1 (a lost
//    CAS is a detected race, retried), put the value, fence, publish
//    v+2, fence. The final fence is the client-visible ack.
//  * faa — armci fetch_add on the slot's counter word (hardware AMO
//    when the machine enables it); remote completion is the ack.
//  * insert — CAS the version 0 -> 1 to claim the slot, write
//    tag+value, publish version 2.
//
// Durability — KvStore implements ft::Shardable: the whole local table
// is the shard, riding the buddy-checkpoint/shrink/rollback path of
// ft::Runtime. Clients keep replayable op logs; after a rollback to
// checkpoint label L every surviving client replays its acked ops with
// epoch >= L, so a mid-run node fail-stop loses zero writes that were
// acknowledged to a surviving client.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/comm.hpp"
#include "ft/recovery.hpp"
#include "obs/registry.hpp"
#include "util/config.hpp"
#include "util/histogram.hpp"
#include "util/rng.hpp"

namespace pgasq::kvs {

/// `kvs.*` configuration (see KvConfig::from_config and docs/kvs.md).
struct KvConfig {
  std::int64_t keys = 4096;        ///< key space size
  double zipf_theta = 0.99;        ///< 0 = uniform; YCSB-style skew at 0.99
  double get_ratio = 0.8;          ///< fraction of requests that are gets
  double faa_ratio = 0.0;          ///< fraction that are faa; rest are puts
  std::int64_t requests = 64;      ///< closed-loop requests per rank
  double think_us = 0.0;           ///< client think time between requests
  std::int64_t value_bytes = 32;   ///< value payload (multiple of 8, >= 8)
  std::int64_t slots_per_rank = 0; ///< 0 = auto-size for the worst shrink
  std::int64_t checkpoint_every = 0;  ///< requests between checkpoints; 0 off
  std::uint64_t seed = 1;          ///< workload seed (keys, op mix)
  bool conflict_free = false;      ///< each key has a single writer rank
  bool verify = true;              ///< post-run acked-write audit

  /// Parses the kvs.* namespace, rejecting unknown keys with a typo
  /// suggestion (matching the fault./ft./integrity. precedent).
  static KvConfig from_config(const Config& cfg);
};

/// Deterministic zipfian key generator (Gray et al.'s method, as in
/// YCSB): theta in [0, 1), theta = 0 degrades to uniform.
class ZipfGenerator {
 public:
  ZipfGenerator(std::uint64_t n, double theta);
  std::uint64_t next(Rng& rng) const;

 private:
  std::uint64_t n_;
  double theta_, alpha_, zetan_, eta_;
};

/// Per-client (per-rank) statistics; histograms hold per-op latency in
/// nanoseconds of virtual time.
struct KvStats {
  std::uint64_t gets = 0, puts = 0, faas = 0;  // acked ops
  std::uint64_t get_misses = 0;
  std::uint64_t cas_lost = 0;         ///< version CAS races lost (retried)
  std::uint64_t version_retries = 0;  ///< reads that saw a locked slot
  std::uint64_t probe_steps = 0;      ///< extra probe hops past the home slot
  std::uint64_t torn_reads = 0;       ///< value-pattern mismatches (must be 0)
  std::uint64_t replayed_ops = 0;     ///< ops re-applied from the op log
  std::uint64_t lost_acked = 0;       ///< acked writes missing at audit time
  util::Histogram get_lat, put_lat, faa_lat;

  void merge(const KvStats& o);
};

/// The sharded store; one instance per rank (collective construction).
class KvStore final : public ft::Shardable {
 public:
  /// Collective over all world ranks.
  KvStore(armci::Comm& comm, const KvConfig& cfg);

  /// Collective over `members`: fresh zeroed member-mode table (the
  /// old allocation is freed-but-kept, so stale in-flight traffic from
  /// a dead epoch never lands in the new table).
  void rebuild(const std::vector<int>& members);

  /// Reads `key`. Returns false on miss; on hit fills version/stamp
  /// and verifies the value pattern (torn_reads on mismatch).
  bool get(std::int64_t key, std::uint64_t* version, std::uint64_t* stamp,
           KvStats& st);
  /// Versioned write; returns the installed (even) version. The value
  /// payload is the deterministic pattern generated from `stamp`.
  std::uint64_t put(std::int64_t key, std::uint64_t stamp, KvStats& st);
  /// Fetch-and-add on the key's counter; returns the pre-add value
  /// (inserting the key with an empty value when absent).
  std::int64_t faa(std::int64_t key, std::int64_t delta, KvStats& st);

  armci::RankId home_of(std::int64_t key) const;
  std::size_t slots() const { return slots_; }
  const std::vector<int>& members() const { return members_; }

  // ft::Shardable — the shard is the whole local slot table, so shard
  // size is membership-independent.
  std::size_t max_shard_bytes(int) const override { return table_bytes(); }
  std::size_t shard_bytes(int, int) const override { return table_bytes(); }
  void save_shard(std::byte* out) override;
  void restore_shard(int q_old, int v, const std::byte* data,
                     std::size_t bytes) override;

  // Local-shard introspection; call only at a quiescent point (after a
  // barrier, no in-flight writers).
  std::uint64_t local_counter_sum() const;
  std::uint64_t local_keys() const;
  /// CRC of the local table (versions included): bitwise state digest
  /// for determinism and fault-transparency tests.
  std::uint32_t local_crc() const;

 private:
  std::size_t table_bytes() const { return slots_ * slot_words_ * 8; }
  std::size_t slot_off(std::size_t idx) const { return idx * slot_words_ * 8; }
  /// Finds the slot holding `key` on its home (`*inserted` = false),
  /// or claims a free slot and publishes the given slot image —
  /// tag/counter/value first, version word last (`*inserted` = true).
  /// Returns the slot index. Used by insert paths and shard restore.
  std::size_t publish_slot(armci::RankId home, std::int64_t key,
                           const std::uint64_t* image, bool* inserted,
                           KvStats& st);
  /// Probe for `key` on its home: fills `idx` with the matching or
  /// first-empty slot; true when the key was found.
  bool find_slot(armci::RankId home, std::int64_t key, std::size_t* idx,
                 KvStats& st);

  armci::Comm& comm_;
  KvConfig cfg_;
  std::vector<int> members_;
  armci::GlobalMem* mem_ = nullptr;
  std::size_t slots_ = 0;
  std::size_t value_words_ = 0;
  std::size_t slot_words_ = 0;
  /// Read-side landing buffers. A fail-stop abort can unwind a blocked
  /// get while its delivery event is still in flight, and the delivery
  /// writes the destination afterwards — so destinations must live as
  /// long as the store, never on an op's stack frame. Contents are
  /// consumed before the next comm call, so late stale writes are
  /// harmless.
  std::vector<std::uint64_t> slot_buf_;
  std::uint64_t hdr_buf_[2] = {0, 0};
  std::uint64_t ver_buf_ = 0;
  /// Write-side staging image. Also a stable address on purpose: puts
  /// register on-the-fly memregions keyed by the source address, so a
  /// per-call buffer would make registration hits depend on heap
  /// reuse — breaking bitwise run-to-run determinism in one process.
  std::vector<std::uint64_t> image_buf_;
};

/// One fail-stop recovery observed by the workload driver.
struct RecoveryEvent {
  int restart_label = 0;        ///< checkpoint label rolled back to
  std::vector<int> dead_ranks;  ///< cumulative dead set at this event
};

/// Aggregated result of run_workload.
struct KvResult {
  KvStats total;                      ///< merged over all clients
  std::vector<KvStats> per_rank;
  double elapsed_s = 0.0;             ///< virtual seconds, live clients' span
  double mops = 0.0;                  ///< acked ops / elapsed, in millions
  /// Absolute virtual-time span of the client traffic (min start / max
  /// end over live clients) — lets callers aim fault times into it.
  Time traffic_begin = 0, traffic_end = 0;
  std::uint64_t acked_ops = 0;
  std::uint64_t faa_expected = 0;     ///< exactly-once sum of applied faa
  std::uint64_t faa_applied = 0;      ///< counters summed over live shards
  std::uint64_t lost_acked = 0;       ///< survivors' missing acked writes
  std::uint64_t torn_reads = 0;
  int survivors = 0;
  int recoveries = 0;
  std::uint64_t checkpoints = 0;      ///< checkpoint labels committed
  std::vector<RecoveryEvent> events;
  /// Per-live-member shard CRCs at the quiescent end state.
  std::vector<std::uint32_t> shard_crcs;
};

/// Runs the closed-loop zipfian/uniform client mix on every rank of
/// `world` (collective; calls world.spmd). With a fault plan that
/// schedules node deaths, shards checkpoint every cfg.checkpoint_every
/// requests through ft::Runtime and clients replay their op logs after
/// each rollback.
KvResult run_workload(armci::World& world, const KvConfig& cfg);

/// Publishes kvs.* metrics for `r` into `reg` (throughput, op counts,
/// p50/p99/p999 latency gauges, full latency histograms, durability
/// counters), each with `labels` (e.g. {{"mix", "zipfian"}}).
void export_metrics(obs::Registry& reg, const KvResult& r,
                    const obs::Labels& labels = {});

}  // namespace pgasq::kvs
