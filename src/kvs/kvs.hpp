// Sharded key-value service over the ARMCI runtime: the first
// latency-bound, many-small-messages workload in the tree (the paper
// evaluates only dense kernels; the ROADMAP north star asks for a
// serving-tier workload).
//
// Layout — one collective allocation carries every shard: keys hash to
// a home member, each member owns an open-addressed table of
// fixed-size slots (64-bit words):
//
//   [ version | key_tag | faa counter | value word 0 (stamp) | ... ]
//
// version 0 = empty, odd = write-locked, even >= 2 = stable; key_tag
// is key + 1 so 0 means empty; the counter lives outside the value so
// put and faa never interfere.
//
// Protocols (see docs/kvs.md):
//  * get — one contiguous armci get of the whole slot. A slot write
//    holds the version odd for its whole span, so any even-version
//    snapshot is consistent; odd versions retry.
//  * put — versioned rmw write: CAS the even version v to v+1 (a lost
//    CAS is a detected race, retried), put the value, fence, publish
//    v+2, fence. The final fence is the client-visible ack.
//  * faa — armci fetch_add on the slot's counter word (hardware AMO
//    when the machine enables it); remote completion is the ack.
//  * insert — CAS the version 0 -> 1 to claim the slot, write
//    tag+value, publish version 2.
//
// Durability — KvStore implements ft::Shardable: the whole local table
// is the shard, riding the buddy-checkpoint/shrink/rollback path of
// ft::Runtime. Clients keep replayable op logs; after a rollback to
// checkpoint label L every surviving client replays its acked ops with
// epoch >= L, so a mid-run node fail-stop loses zero writes that were
// acknowledged to a surviving client.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/comm.hpp"
#include "flow/flow.hpp"
#include "ft/recovery.hpp"
#include "obs/registry.hpp"
#include "util/config.hpp"
#include "util/histogram.hpp"
#include "util/rng.hpp"

namespace pgasq::obs {
class Timeline;
}  // namespace pgasq::obs

namespace pgasq::kvs {

/// `kvs.*` configuration (see KvConfig::from_config and docs/kvs.md).
struct KvConfig {
  std::int64_t keys = 4096;        ///< key space size
  double zipf_theta = 0.99;        ///< 0 = uniform; YCSB-style skew at 0.99
  double get_ratio = 0.8;          ///< fraction of requests that are gets
  double faa_ratio = 0.0;          ///< fraction that are faa; rest are puts
  std::int64_t requests = 64;      ///< closed-loop requests per rank
  double think_us = 0.0;           ///< client think time between requests
  std::int64_t value_bytes = 32;   ///< value payload (multiple of 8, >= 8)
  std::int64_t slots_per_rank = 0; ///< 0 = auto-size for the worst shrink
  std::int64_t checkpoint_every = 0;  ///< requests between checkpoints; 0 off
  std::uint64_t seed = 1;          ///< workload seed (keys, op mix)
  bool conflict_free = false;      ///< each key has a single writer rank
  bool verify = true;              ///< post-run acked-write audit
  /// Populate every key (round-robin by client, through the op log)
  /// before the timed loop, so read-mostly runs measure hits instead
  /// of cold misses. Off by default: the historical driver starts
  /// from an empty table.
  bool prefill = false;

  // Overload-control extensions (src/flow, docs/overload.md). All off
  // by default: with every knob at 0 the driver is the historical
  // closed loop, byte for byte.
  /// Per-rank offered load in ops/second of virtual time. 0 = closed
  /// loop; > 0 switches the driver to an open-loop Poisson arrival
  /// process (seeded, drawn up front) where latency is measured from
  /// the scheduled arrival — queueing delay included — so saturation
  /// shows up as unbounded latency, not reduced throughput.
  double arrival_rate = 0.0;
  /// Hedged gets: when a slot read has not completed after this many
  /// virtual microseconds, a backup read of the home's checkpoint copy
  /// on its BUDDY node races the primary and the first response wins.
  /// A same-destination re-read could never win — pairwise in-order
  /// delivery queues it behind the very retransmission it is trying to
  /// dodge — so hedging needs the buddy copy path (set_runtime) and
  /// silently stays un-armed without a committed checkpoint. A buddy
  /// win is accepted only for a stable slot of the right key and is a
  /// bounded-staleness read: at most one checkpoint interval old.
  /// 0 = off (the default; reads are then always strongly fresh).
  double hedge_us = 0.0;
  /// With hedge_us > 0: when the buddy copy wins the race, try to
  /// revoke the straggler primary through the deferred-injection get
  /// path (Comm::nb_get_deferred / revoke_get, the async runtime's
  /// cancellable-get primitive). A revoke that beats the wire leg
  /// cancels the op outright and frees its pool slot immediately
  /// (hedge_cancels); once injected, cancellation only marks the
  /// straggler abandoned (hedge_cancel_late) and it drains in the
  /// background exactly as without the knob — see the p999 caveat in
  /// docs/overload.md. Off by default (byte-identical runs).
  bool hedge_cancel = false;
  /// Goodput SLO in virtual microseconds: an op counts toward goodput
  /// only when it completes within this budget of its arrival.
  /// Measured post-hoc even with no flow controller (so an
  /// uncontrolled run's collapse is visible); 0 falls back to
  /// flow.deadline_us, and with both 0 every acked op is good.
  double slo_us = 0.0;
  /// Metastability trigger (open loop only): clients stop serving for
  /// stall_us starting stall_at_us after traffic begins, while
  /// arrivals keep accruing. The post-stall backlog is the retry-storm
  /// seed the flow controls must shed. 0 = no stall.
  double stall_at_us = 0.0;
  double stall_us = 0.0;

  /// Parses the kvs.* namespace, rejecting unknown keys with a typo
  /// suggestion (matching the fault./ft./integrity. precedent).
  static KvConfig from_config(const Config& cfg);
};

/// Deterministic zipfian key generator (Gray et al.'s method, as in
/// YCSB): theta in [0, 1), theta = 0 degrades to uniform.
class ZipfGenerator {
 public:
  ZipfGenerator(std::uint64_t n, double theta);
  std::uint64_t next(Rng& rng) const;

 private:
  std::uint64_t n_;
  double theta_, alpha_, zetan_, eta_;
};

/// Per-client (per-rank) statistics; histograms hold per-op latency in
/// nanoseconds of virtual time.
struct KvStats {
  std::uint64_t gets = 0, puts = 0, faas = 0;  // acked ops
  std::uint64_t get_misses = 0;
  std::uint64_t cas_lost = 0;         ///< version CAS races lost (retried)
  std::uint64_t version_retries = 0;  ///< reads that saw a locked slot
  std::uint64_t probe_steps = 0;      ///< extra probe hops past the home slot
  std::uint64_t torn_reads = 0;       ///< value-pattern mismatches (must be 0)
  std::uint64_t replayed_ops = 0;     ///< ops re-applied from the op log
  std::uint64_t lost_acked = 0;       ///< acked writes missing at audit time
  // Overload-control counters (all zero in closed-loop runs with no
  // flow controller).
  std::uint64_t shed_ops = 0;         ///< dropped by admission control
  std::uint64_t expired_ops = 0;      ///< dropped client-side, deadline passed
  std::uint64_t deadline_errors = 0;  ///< ops shed server-side (DeadlineError)
  std::uint64_t hedged_gets = 0;      ///< slot reads that armed a hedge
  std::uint64_t hedge_wins = 0;       ///< hedges whose reply came back first
  std::uint64_t hedge_stale = 0;      ///< buddy wins rejected (wrong/unstable slot)
  std::uint64_t hedge_skips = 0;      ///< reads unhedged: straggler pool full
  std::uint64_t hedge_cancels = 0;       ///< losers revoked before the wire leg
  std::uint64_t hedge_cancel_late = 0;   ///< losers already injected: abandoned
  std::uint64_t retry_backoffs = 0;   ///< jittered spin-loop backoffs taken
  util::Histogram get_lat, put_lat, faa_lat;

  void merge(const KvStats& o);
};

/// The sharded store; one instance per rank (collective construction).
class KvStore final : public ft::Shardable {
 public:
  /// Collective over all world ranks.
  KvStore(armci::Comm& comm, const KvConfig& cfg);
  /// Drains any in-flight hedge straggler so late deliveries never
  /// land in freed member buffers.
  ~KvStore() override;

  /// Collective over `members`: fresh zeroed member-mode table (the
  /// old allocation is freed-but-kept, so stale in-flight traffic from
  /// a dead epoch never lands in the new table).
  void rebuild(const std::vector<int>& members);

  /// Reads `key`. Returns false on miss; on hit fills version/stamp
  /// and verifies the value pattern (torn_reads on mismatch).
  bool get(std::int64_t key, std::uint64_t* version, std::uint64_t* stamp,
           KvStats& st);
  /// Versioned write; returns the installed (even) version. The value
  /// payload is the deterministic pattern generated from `stamp`.
  std::uint64_t put(std::int64_t key, std::uint64_t stamp, KvStats& st);
  /// Fetch-and-add on the key's counter; returns the pre-add value
  /// (inserting the key with an empty value when absent).
  std::int64_t faa(std::int64_t key, std::int64_t delta, KvStats& st);

  armci::RankId home_of(std::int64_t key) const;
  std::size_t slots() const { return slots_; }
  const std::vector<int>& members() const { return members_; }

  /// Hands the store the checkpoint runtime whose buddy copies back the
  /// hedged-read path (kvs.hedge_us). Optional: without it (or without
  /// a committed checkpoint) hedges are simply never armed.
  void set_runtime(const ft::Runtime* rt) { rt_ = rt; }
  /// Temporarily forces reads strongly fresh (audit / verification
  /// passes must not see bounded-staleness buddy data).
  void pause_hedging(bool paused) { hedge_paused_ = paused; }

  // ft::Shardable — the shard is the whole local slot table, so shard
  // size is membership-independent.
  std::size_t max_shard_bytes(int) const override { return table_bytes(); }
  std::size_t shard_bytes(int, int) const override { return table_bytes(); }
  void save_shard(std::byte* out) override;
  void restore_shard(int q_old, int v, const std::byte* data,
                     std::size_t bytes) override;

  // Local-shard introspection; call only at a quiescent point (after a
  // barrier, no in-flight writers).
  std::uint64_t local_counter_sum() const;
  std::uint64_t local_keys() const;
  /// CRC of the local table (versions included): bitwise state digest
  /// for determinism and fault-transparency tests.
  std::uint32_t local_crc() const;

 private:
  std::size_t table_bytes() const { return slots_ * slot_words_ * 8; }
  std::size_t slot_off(std::size_t idx) const { return idx * slot_words_ * 8; }
  /// Finds the slot holding `key` on its home (`*inserted` = false),
  /// or claims a free slot and publishes the given slot image —
  /// tag/counter/value first, version word last (`*inserted` = true).
  /// Returns the slot index. Used by insert paths and shard restore.
  std::size_t publish_slot(armci::RankId home, std::int64_t key,
                           const std::uint64_t* image, bool* inserted,
                           KvStats& st);
  /// Probe for `key` on its home: fills `idx` with the matching or
  /// first-empty slot; true when the key was found.
  bool find_slot(armci::RankId home, std::int64_t key, std::size_t* idx,
                 KvStats& st);
  /// Reads the full slot at `off` on `home` into a stable member
  /// buffer. With kvs.hedge_us > 0 and a buddy copy available (see
  /// set_runtime), a still-in-flight read is raced after cfg_.hedge_us
  /// against a read of the buddy's checkpoint copy; first response
  /// wins, and a buddy win is used only when the copy holds a stable
  /// non-empty slot (tags are write-once, so such an image steps a
  /// probe chain or serves a bounded-staleness hit safely; empty or
  /// mid-insert copies fall back to the primary). Returns a pointer
  /// to the winning buffer; the loser stays in flight into its pool
  /// slot and is drained before that slot is reused.
  const std::uint64_t* read_slot(armci::RankId home, std::size_t off,
                                 KvStats& st);
  /// Arms (or disarms, when `on` is false or the machine has no
  /// retry-budget flow config) the per-op retry budget consumed by
  /// retry_backoff. Called at the top of each public op.
  void arm_budget(bool on);
  /// One spin-loop retry step: with an armed budget, backs off for the
  /// budget's jittered exponential delay (st.retry_backoffs) and
  /// throws flow::DeadlineError once the budget is exhausted. A no-op
  /// without flow — call sites keep their historical immediate re-poll.
  void retry_backoff(const char* what, armci::RankId home, KvStats& st);

  armci::Comm& comm_;
  KvConfig cfg_;
  std::vector<int> members_;
  armci::GlobalMem* mem_ = nullptr;
  std::size_t slots_ = 0;
  std::size_t value_words_ = 0;
  std::size_t slot_words_ = 0;
  /// Read-side landing buffers. A fail-stop abort can unwind a blocked
  /// get while its delivery event is still in flight, and the delivery
  /// writes the destination afterwards — so destinations must live as
  /// long as the store, never on an op's stack frame. Contents are
  /// consumed before the next comm call, so late stale writes are
  /// harmless.
  std::vector<std::uint64_t> slot_buf_;
  std::uint64_t hdr_buf_[2] = {0, 0};
  std::uint64_t ver_buf_ = 0;
  /// Write-side staging image. Also a stable address on purpose: puts
  /// register on-the-fly memregions keyed by the source address, so a
  /// per-call buffer would make registration hits depend on heap
  /// reuse — breaking bitwise run-to-run determinism in one process.
  std::vector<std::uint64_t> image_buf_;
  /// Hedged-get state: second landing buffer, the still-in-flight
  /// loser of the last race, and the machine's flow controller
  /// (nullptr when flow.* is unset — every hook below is one pointer
  /// test, preserving the zero-cost-off guarantee).
  /// A race loser stays in flight into its own pool slot and resolves
  /// in the background — draining it eagerly would just transfer the
  /// dodged retransmit tail onto the next op. Slots are reused only
  /// once their transfer completed (or, pool exhausted, after a wait).
  struct HedgeSlot {
    std::vector<std::uint64_t> buf;
    armci::Handle h;
    /// Set when the read was issued revocably (kvs.hedge_cancel): the
    /// deferred-injection record a buddy win tries to revoke.
    std::shared_ptr<armci::DeferredGet> dg;
  };
  std::vector<HedgeSlot> hedge_pool_;
  /// A hedge pool slot whose buffer and handle are free to reuse
  /// (never `avoid`, which the caller holds in flight), or nullptr
  /// when every slot still has a straggler in flight — the caller
  /// then degrades to an unhedged read (st.hedge_skips) rather than
  /// inherit a straggler's tail by blocking on it.
  HedgeSlot* try_hedge_slot(const HedgeSlot* avoid = nullptr);
  const ft::Runtime* rt_ = nullptr;
  bool hedge_paused_ = false;
  flow::Controller* flow_ = nullptr;
  /// Continuous telemetry (obs.timeline): per-shard probe-chain length
  /// gauges ("kvs.probe_len.s<home>", registered lazily the first time
  /// a probe lands on that shard) and the hedge-pool in-flight gauge.
  /// Not owned; nullptr keeps every hook a single pointer test.
  void sample_probe(armci::RankId home, std::size_t step);
  obs::Timeline* timeline_ = nullptr;
  std::uint32_t tl_hedge_inflight_ = 0xffffffffu;
  std::vector<std::uint32_t> tl_probe_;
  /// Per-op retry budget (armed only while flow.retry_budget > 0) and
  /// the monotone op id salting its jitter stream.
  std::optional<flow::RetryBudget> budget_;
  std::uint64_t op_seq_ = 0;
};

/// One fail-stop recovery observed by the workload driver.
struct RecoveryEvent {
  int restart_label = 0;        ///< checkpoint label rolled back to
  std::vector<int> dead_ranks;  ///< cumulative dead set at this event
};

/// Aggregated result of run_workload.
struct KvResult {
  KvStats total;                      ///< merged over all clients
  std::vector<KvStats> per_rank;
  double elapsed_s = 0.0;             ///< virtual seconds, live clients' span
  double mops = 0.0;                  ///< acked ops / elapsed, in millions
  /// Absolute virtual-time span of the client traffic (min start / max
  /// end over live clients) — lets callers aim fault times into it.
  Time traffic_begin = 0, traffic_end = 0;
  std::uint64_t acked_ops = 0;
  /// Open-loop accounting (offered == acked in closed-loop runs).
  std::uint64_t offered_ops = 0;      ///< arrivals presented to clients
  std::uint64_t good_ops = 0;         ///< acked within the SLO of arrival
  double goodput_mops = 0.0;          ///< good_ops / elapsed, in millions
  /// Completion times (virtual, absolute) of every acked op and of the
  /// SLO-meeting subset, merged over live clients and sorted — the
  /// metastability analysis windows goodput over these (see
  /// bench_abl_overload).
  std::vector<Time> done_times;
  std::vector<Time> good_times;
  std::uint64_t faa_expected = 0;     ///< exactly-once sum of applied faa
  std::uint64_t faa_applied = 0;      ///< counters summed over live shards
  std::uint64_t lost_acked = 0;       ///< survivors' missing acked writes
  std::uint64_t torn_reads = 0;
  int survivors = 0;
  int recoveries = 0;
  std::uint64_t checkpoints = 0;      ///< checkpoint labels committed
  std::vector<RecoveryEvent> events;
  /// Per-live-member shard CRCs at the quiescent end state.
  std::vector<std::uint32_t> shard_crcs;
};

/// Runs the closed-loop zipfian/uniform client mix on every rank of
/// `world` (collective; calls world.spmd). With a fault plan that
/// schedules node deaths, shards checkpoint every cfg.checkpoint_every
/// requests through ft::Runtime and clients replay their op logs after
/// each rollback.
KvResult run_workload(armci::World& world, const KvConfig& cfg);

/// Publishes kvs.* metrics for `r` into `reg` (throughput, op counts,
/// p50/p99/p999 latency gauges, full latency histograms, durability
/// counters), each with `labels` (e.g. {{"mix", "zipfian"}}).
void export_metrics(obs::Registry& reg, const KvResult& r,
                    const obs::Labels& labels = {});

}  // namespace pgasq::kvs
