#include "kvs/kvs.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <map>
#include <sstream>
#include <utility>

#include "coll/coll.hpp"
#include "core/world.hpp"
#include "ft/liveness.hpp"
#include "obs/timeline.hpp"
#include "pami/machine.hpp"
#include "sim/trace.hpp"
#include "util/crc32c.hpp"
#include "util/error.hpp"
#include "util/time_types.hpp"

namespace pgasq::kvs {

namespace {

// Slot word offsets (see the layout comment in kvs.hpp).
constexpr std::size_t kVersionWord = 0;
constexpr std::size_t kTagWord = 1;
constexpr std::size_t kCounterWord = 2;
constexpr std::size_t kValueWord = 3;

/// SplitMix64 finalizer: the stateless mixing step of the seeding
/// generator in util/rng.hpp, used for key -> home and key -> slot
/// hashing and for the self-checking value pattern.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Word `w` of the value payload written for `stamp`: the stamp itself
/// followed by a pattern any reader can regenerate, so a get can prove
/// the snapshot it took is not torn.
std::uint64_t value_word(std::uint64_t stamp, std::size_t w) {
  return w == 0 ? stamp : mix64(stamp + w);
}

std::size_t pow2_at_least(std::uint64_t n) {
  std::size_t s = 1;
  while (s < n) s <<= 1;
  return s;
}

double zeta(std::uint64_t n, double theta) {
  double z = 0.0;
  for (std::uint64_t i = 1; i <= n; ++i) z += 1.0 / std::pow(static_cast<double>(i), theta);
  return z;
}

}  // namespace

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

KvConfig KvConfig::from_config(const Config& cfg) {
  cfg.reject_unknown("kvs", {"keys", "zipf_theta", "get_ratio", "faa_ratio",
                             "requests", "think_us", "value_bytes",
                             "slots_per_rank", "checkpoint_every", "seed",
                             "conflict_free", "verify", "prefill",
                             "arrival_rate", "hedge_us", "hedge_cancel",
                             "slo_us", "stall_at_us", "stall_us"});
  KvConfig c;
  c.keys = cfg.get_int("kvs.keys", c.keys);
  c.zipf_theta = cfg.get_double("kvs.zipf_theta", c.zipf_theta);
  c.get_ratio = cfg.get_double("kvs.get_ratio", c.get_ratio);
  c.faa_ratio = cfg.get_double("kvs.faa_ratio", c.faa_ratio);
  c.requests = cfg.get_int("kvs.requests", c.requests);
  c.think_us = cfg.get_double("kvs.think_us", c.think_us);
  c.value_bytes = cfg.get_int("kvs.value_bytes", c.value_bytes);
  c.slots_per_rank = cfg.get_int("kvs.slots_per_rank", c.slots_per_rank);
  c.checkpoint_every = cfg.get_int("kvs.checkpoint_every", c.checkpoint_every);
  c.seed = static_cast<std::uint64_t>(
      cfg.get_int("kvs.seed", static_cast<std::int64_t>(c.seed)));
  c.conflict_free = cfg.get_bool("kvs.conflict_free", c.conflict_free);
  c.verify = cfg.get_bool("kvs.verify", c.verify);
  c.prefill = cfg.get_bool("kvs.prefill", c.prefill);
  c.arrival_rate = cfg.get_double("kvs.arrival_rate", c.arrival_rate);
  c.hedge_us = cfg.get_double("kvs.hedge_us", c.hedge_us);
  c.hedge_cancel = cfg.get_bool("kvs.hedge_cancel", c.hedge_cancel);
  c.slo_us = cfg.get_double("kvs.slo_us", c.slo_us);
  c.stall_at_us = cfg.get_double("kvs.stall_at_us", c.stall_at_us);
  c.stall_us = cfg.get_double("kvs.stall_us", c.stall_us);
  PGASQ_CHECK(c.keys >= 1, << "kvs.keys must be >= 1");
  PGASQ_CHECK(c.zipf_theta >= 0.0 && c.zipf_theta < 1.0,
              << "kvs.zipf_theta must be in [0, 1)");
  PGASQ_CHECK(c.get_ratio >= 0.0 && c.faa_ratio >= 0.0 &&
                  c.get_ratio + c.faa_ratio <= 1.0,
              << "kvs.get_ratio + kvs.faa_ratio must be in [0, 1]");
  PGASQ_CHECK(c.requests >= 0, << "kvs.requests must be >= 0");
  PGASQ_CHECK(c.think_us >= 0.0, << "kvs.think_us must be >= 0");
  PGASQ_CHECK(c.value_bytes >= 8 && c.value_bytes % 8 == 0,
              << "kvs.value_bytes must be a positive multiple of 8");
  PGASQ_CHECK(c.checkpoint_every >= 0, << "kvs.checkpoint_every must be >= 0");
  PGASQ_CHECK(c.arrival_rate >= 0.0, << "kvs.arrival_rate must be >= 0");
  PGASQ_CHECK(c.hedge_us >= 0.0, << "kvs.hedge_us must be >= 0");
  PGASQ_CHECK(c.slo_us >= 0.0, << "kvs.slo_us must be >= 0");
  PGASQ_CHECK(c.stall_at_us >= 0.0 && c.stall_us >= 0.0,
              << "kvs.stall_at_us / kvs.stall_us must be >= 0");
  PGASQ_CHECK(c.stall_us == 0.0 || c.arrival_rate > 0.0,
              << "kvs.stall_us needs the open-loop driver (kvs.arrival_rate)");
  return c;
}

// ---------------------------------------------------------------------------
// Zipfian key generator
// ---------------------------------------------------------------------------

ZipfGenerator::ZipfGenerator(std::uint64_t n, double theta)
    : n_(n), theta_(theta) {
  PGASQ_CHECK(n >= 1, << "zipf key space must be non-empty");
  PGASQ_CHECK(theta >= 0.0 && theta < 1.0, << "zipf theta must be in [0, 1)");
  zetan_ = zeta(n, theta);
  alpha_ = 1.0 / (1.0 - theta);
  // Gray et al.'s closed-form correction; undefined (and unused — next()
  // always short-circuits) for a single-key space.
  eta_ = n > 1 ? (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
                     (1.0 - zeta(2, theta) / zetan_)
               : 0.0;
}

std::uint64_t ZipfGenerator::next(Rng& rng) const {
  const double u = rng.next_double();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const auto k = static_cast<std::uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return k >= n_ ? n_ - 1 : k;
}

// ---------------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------------

void KvStats::merge(const KvStats& o) {
  gets += o.gets;
  puts += o.puts;
  faas += o.faas;
  get_misses += o.get_misses;
  cas_lost += o.cas_lost;
  version_retries += o.version_retries;
  probe_steps += o.probe_steps;
  torn_reads += o.torn_reads;
  replayed_ops += o.replayed_ops;
  lost_acked += o.lost_acked;
  shed_ops += o.shed_ops;
  expired_ops += o.expired_ops;
  deadline_errors += o.deadline_errors;
  hedged_gets += o.hedged_gets;
  hedge_wins += o.hedge_wins;
  hedge_stale += o.hedge_stale;
  hedge_cancels += o.hedge_cancels;
  hedge_cancel_late += o.hedge_cancel_late;
  hedge_skips += o.hedge_skips;
  retry_backoffs += o.retry_backoffs;
  get_lat.merge(o.get_lat);
  put_lat.merge(o.put_lat);
  faa_lat.merge(o.faa_lat);
}

// ---------------------------------------------------------------------------
// KvStore
// ---------------------------------------------------------------------------

KvStore::KvStore(armci::Comm& comm, const KvConfig& cfg)
    : comm_(comm), cfg_(cfg) {
  PGASQ_CHECK(cfg.value_bytes >= 8 && cfg.value_bytes % 8 == 0,
              << "kvs value_bytes must be a positive multiple of 8");
  value_words_ = static_cast<std::size_t>(cfg.value_bytes / 8);
  slot_words_ = kValueWord + value_words_;
  const int p = comm.nprocs();
  members_.resize(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) members_[static_cast<std::size_t>(r)] = r;

  std::uint64_t want = static_cast<std::uint64_t>(cfg.slots_per_rank);
  if (cfg.slots_per_rank <= 0) {
    // Auto-size for the worst surviving membership: every scheduled
    // node death shifts its keys onto the survivors, so size each
    // table at 8x the expected keys-per-member at the smallest clique
    // (load factor <= 1/8 keeps probe chains short).
    int q_min = p;
    if (const ft::HealthMonitor* mon = comm.ft_monitor()) {
      const int lost = static_cast<int>(mon->scheduled_deaths()) *
                       mon->mapping().ranks_per_node();
      q_min = std::max(1, p - lost);
    }
    want = std::max<std::uint64_t>(
        16, (8 * static_cast<std::uint64_t>(cfg.keys) +
             static_cast<std::uint64_t>(q_min) - 1) /
                static_cast<std::uint64_t>(q_min));
  }
  slots_ = pow2_at_least(want);
  slot_buf_.assign(slot_words_, 0);
  image_buf_.assign(slot_words_, 0);
  hedge_pool_.resize(8);
  for (HedgeSlot& s : hedge_pool_) s.buf.assign(slot_words_, 0);
  flow_ = comm.world().machine().flow();
  timeline_ = comm.world().machine().timeline();
  if (timeline_ != nullptr) {
    tl_hedge_inflight_ = timeline_->series("kvs.hedge_inflight",
                                           obs::Timeline::Kind::kGauge);
    // Per-shard probe series register lazily (only shards that actually
    // serve probes get one); kNone - 1 marks "not registered yet".
    tl_probe_.assign(static_cast<std::size_t>(p), obs::Timeline::kNone - 1);
  }
  mem_ = &comm.malloc_collective(table_bytes());
}

void KvStore::sample_probe(armci::RankId home, std::size_t step) {
  if (timeline_ == nullptr) return;
  std::uint32_t& id = tl_probe_[static_cast<std::size_t>(home)];
  if (id == obs::Timeline::kNone - 1) {
    id = timeline_->series("kvs.probe_len.s" + std::to_string(home),
                           obs::Timeline::Kind::kGauge);
  }
  timeline_->sample(id, comm_.now(), static_cast<double>(step));
}

KvStore::~KvStore() {
  for (HedgeSlot& s : hedge_pool_) {
    if (!s.h.used() || s.h.done()) continue;
    try {
      comm_.wait(s.h);
    } catch (...) {
      // Teardown after an abort: the straggler's peer may be dead and
      // its reply lost. The landing buffer dies with us either way.
    }
  }
}

void KvStore::rebuild(const std::vector<int>& members) {
  members_ = members;
  // Hedge stragglers from the dead epoch may never complete; abandon
  // them. The landing buffers are stable members, so a late stale
  // write is harmless (the next read overwrites it before any parse).
  for (HedgeSlot& s : hedge_pool_) s.h = armci::Handle{};
  // Fresh member-mode allocation; the old slabs are deliberately left
  // in place so stale in-flight traffic from the dead epoch lands in
  // memory the new table never reads.
  mem_ = &comm_.malloc_collective(table_bytes());
}

armci::RankId KvStore::home_of(std::int64_t key) const {
  return members_[static_cast<std::size_t>(
      mix64(static_cast<std::uint64_t>(key)) % members_.size())];
}

void KvStore::arm_budget(bool on) {
  if (on && flow_ != nullptr && flow_->config().retry_budget > 0) {
    budget_.emplace(flow_->config(), comm_.rank(), ++op_seq_);
  } else {
    budget_.reset();
  }
}

void KvStore::retry_backoff(const char* what, armci::RankId home, KvStats& st) {
  if (!budget_.has_value()) return;  // historical immediate re-poll
  if (!budget_->allow()) {
    ++flow_->stats().retry_budget_exhausted;
    std::ostringstream os;
    os << "flow: " << what << " on rank " << comm_.rank() << " against rank "
       << home << " exhausted its retry budget of "
       << flow_->config().retry_budget << " jittered backoffs";
    throw flow::DeadlineError(what, comm_.rank(), home,
                              static_cast<int>(budget_->used()), os.str());
  }
  ++st.retry_backoffs;
  comm_.compute(budget_->next_backoff());
}

KvStore::HedgeSlot* KvStore::try_hedge_slot(const HedgeSlot* avoid) {
  for (HedgeSlot& s : hedge_pool_) {
    if (&s == avoid) continue;
    if (!s.h.used() || s.h.done()) {
      s.h = armci::Handle{};
      return &s;
    }
  }
  // Pool exhausted: every slot holds a race-losing straggler still in
  // flight. Blocking on one would hand the straggler's tail latency to
  // an innocent request — the caller degrades to an unhedged read
  // instead (st.hedge_skips), which is also the natural throttle when
  // a slow path is saturated: rescuing reads faster than the slow
  // replica drains only piles the backlog higher.
  return nullptr;
}

const std::uint64_t* KvStore::read_slot(armci::RankId home, std::size_t off,
                                        KvStats& st) {
  HedgeSlot* const primary =
      cfg_.hedge_us <= 0.0 || hedge_paused_ ? nullptr : try_hedge_slot();
  if (primary == nullptr) {
    if (cfg_.hedge_us > 0.0 && !hedge_paused_) ++st.hedge_skips;
    comm_.get(mem_->at(home, off), slot_buf_.data(), slot_words_ * 8);
    return slot_buf_.data();
  }
  HedgeSlot& first = *primary;
  if (cfg_.hedge_cancel) {
    // Revocable primary: issued through the deferred-injection path so
    // a buddy win can try to cancel it before its wire leg.
    first.dg = comm_.nb_get_deferred(mem_->at(home, off), first.buf.data(),
                                     slot_words_ * 8);
    first.h = first.dg->handle;
  } else {
    comm_.nb_get(mem_->at(home, off), first.buf.data(), slot_words_ * 8,
                 first.h);
  }
  if (comm_.wait_until(first.h, comm_.now() + from_us(cfg_.hedge_us))) {
    return first.buf.data();
  }
  // Slow primary. A second read of `home` could never win: pairwise
  // in-order delivery queues it behind the very retransmission that is
  // holding the first read up. The hedge instead races the BUDDY's
  // checkpoint copy of the shard — an independent (src,dst) pair with
  // its own delivery floor. First response wins; the loser stays in
  // flight into its own pool slot and resolves in the background, so a
  // win is real latency, not deferred waiting.
  const armci::RemotePtr copy =
      rt_ != nullptr ? rt_->shard_copy(0, home) : armci::RemotePtr{};
  if (!copy.valid()) {  // no committed checkpoint (or inert runtime)
    comm_.wait(first.h);
    return first.buf.data();
  }
  HedgeSlot* const backup = try_hedge_slot(&first);
  if (backup == nullptr) {  // pool full of stragglers: don't add one
    ++st.hedge_skips;
    comm_.wait(first.h);
    return first.buf.data();
  }
  ++st.hedged_gets;
  HedgeSlot& second = *backup;
  comm_.nb_get(copy.offset(static_cast<std::ptrdiff_t>(off)),
               second.buf.data(), slot_words_ * 8, second.h);
  if (timeline_ != nullptr) {
    double inflight = 0.0;
    for (const HedgeSlot& s : hedge_pool_) {
      if (s.h.used() && !s.h.done()) inflight += 1.0;
    }
    timeline_->sample(tl_hedge_inflight_, comm_.now(), inflight);
  }
  if (comm_.wait_any(first.h, second.h)) {
    return first.buf.data();
  }
  // A buddy win is bounded-staleness data: use it only when the copy
  // held a STABLE, NON-EMPTY image of this slot. A slot's tag is
  // written once and never changes (no deletion), so a stable
  // other-key image steps the caller's probe chain exactly as the
  // live slot would; a stable same-key image is a hit at most one
  // checkpoint old. Anything else (empty, mid-insert) falls back to
  // the primary: the slot may have been claimed since the snapshot,
  // so misses stay strongly fresh.
  if (second.buf[kVersionWord] >= 2 && (second.buf[kVersionWord] & 1) == 0 &&
      second.buf[kTagWord] != 0) {
    ++st.hedge_wins;
    if (cfg_.hedge_cancel && first.dg != nullptr) {
      // Revoke the straggler primary. Before its wire leg this cancels
      // outright (the pool slot frees immediately); after, the op is
      // merely abandoned and drains in the background as it always
      // did — the honest accounting docs/overload.md warns about.
      if (comm_.revoke_get(first.dg)) {
        ++st.hedge_cancels;
      } else {
        ++st.hedge_cancel_late;
      }
      first.dg.reset();
    }
    return second.buf.data();
  }
  ++st.hedge_stale;
  comm_.wait(first.h);
  return first.buf.data();
}

bool KvStore::find_slot(armci::RankId home, std::int64_t key, std::size_t* idx,
                        KvStats& st) {
  const std::uint64_t want = static_cast<std::uint64_t>(key) + 1;
  const std::size_t mask = slots_ - 1;
  const std::size_t start =
      static_cast<std::size_t>(mix64(mix64(static_cast<std::uint64_t>(key)) + 1)) & mask;
  std::uint64_t* hdr = hdr_buf_;  // member buffer: survives abort unwinds
  for (std::size_t step = 0; step < slots_;) {
    const std::size_t i = (start + step) & mask;
    comm_.get(mem_->at(home, slot_off(i)), hdr, 2 * 8);
    if (hdr[kTagWord] == want) {
      st.probe_steps += step;
      sample_probe(home, step);
      *idx = i;
      return true;
    }
    if (hdr[kVersionWord] == 0 && hdr[kTagWord] == 0) {
      st.probe_steps += step;
      sample_probe(home, step);
      *idx = i;
      return false;
    }
    if (hdr[kTagWord] == 0) {
      // Mid-claim by another client (version 1, tag not yet visible):
      // re-read until the tag lands and tells us whose slot this is.
      ++st.version_retries;
      comm_.progress();
      retry_backoff("kv probe", home, st);
      continue;
    }
    ++step;  // another key's slot
  }
  PGASQ_CHECK(false, << "kvs: shard table overflow on rank " << home << " ("
                     << slots_ << " slots); raise kvs.slots_per_rank");
  return false;
}

std::size_t KvStore::publish_slot(armci::RankId home, std::int64_t key,
                                  const std::uint64_t* image, bool* inserted,
                                  KvStats& st) {
  for (;;) {
    std::size_t idx = 0;
    if (find_slot(home, key, &idx, st)) {
      *inserted = false;
      return idx;
    }
    const armci::RemotePtr vptr = mem_->at(home, slot_off(idx));
    if (comm_.compare_swap(vptr, 0, 1) != 0) {
      // Another client claimed this slot first (same or different
      // key); re-probe from scratch.
      ++st.cas_lost;
      retry_backoff("kv insert", home, st);
      continue;
    }
    // The slot is ours: land tag/counter/value, then publish the final
    // (even) version so readers never see a partial image as stable.
    comm_.put(image + 1, mem_->at(home, slot_off(idx) + 8),
              (slot_words_ - 1) * 8);
    comm_.fence(home);
    comm_.put(image, vptr, 8);
    comm_.fence(home);
    *inserted = true;
    return idx;
  }
}

bool KvStore::get(std::int64_t key, std::uint64_t* version,
                  std::uint64_t* stamp, KvStats& st) {
  arm_budget(true);
  const armci::RankId home = home_of(key);
  const std::uint64_t want = static_cast<std::uint64_t>(key) + 1;
  const std::size_t mask = slots_ - 1;
  const std::size_t start =
      static_cast<std::size_t>(mix64(mix64(static_cast<std::uint64_t>(key)) + 1)) & mask;
  for (std::size_t step = 0; step < slots_;) {
    const std::size_t i = (start + step) & mask;
    // Member landing buffers: survive abort unwinds (see read_slot).
    const std::uint64_t* slot = read_slot(home, slot_off(i), st);
    if (slot[kTagWord] == want) {
      if (slot[kVersionWord] & 1) {
        // Write in progress: the writer holds the version odd for the
        // whole value update, so re-read until it publishes.
        ++st.version_retries;
        comm_.progress();
        retry_backoff("kv get", home, st);
        continue;
      }
      st.probe_steps += step;
      sample_probe(home, step);
      *version = slot[kVersionWord];
      *stamp = slot[kValueWord];
      for (std::size_t w = 1; w < value_words_; ++w) {
        if (slot[kValueWord + w] != value_word(slot[kValueWord], w)) {
          ++st.torn_reads;
          break;
        }
      }
      return true;
    }
    if (slot[kVersionWord] == 0 && slot[kTagWord] == 0) {
      st.probe_steps += step;
      sample_probe(home, step);
      return false;
    }
    if (slot[kTagWord] == 0) {  // mid-claim, identity unknown yet
      ++st.version_retries;
      comm_.progress();
      retry_backoff("kv get", home, st);
      continue;
    }
    ++step;
  }
  PGASQ_CHECK(false, << "kvs: shard table overflow on rank " << home << " ("
                     << slots_ << " slots); raise kvs.slots_per_rank");
  return false;
}

std::uint64_t KvStore::put(std::int64_t key, std::uint64_t stamp, KvStats& st) {
  arm_budget(true);
  const armci::RankId home = home_of(key);
  std::vector<std::uint64_t>& image = image_buf_;
  image[kVersionWord] = 2;
  image[kTagWord] = static_cast<std::uint64_t>(key) + 1;
  image[kCounterWord] = 0;  // a fresh slot starts its faa counter at 0
  for (std::size_t w = 0; w < value_words_; ++w) {
    image[kValueWord + w] = value_word(stamp, w);
  }
  bool inserted = false;
  const std::size_t idx = publish_slot(home, key, image.data(), &inserted, st);
  if (inserted) return 2;

  // Update path: lock the version with a CAS (a lost CAS is a detected
  // race with another writer), land the value, publish version + 2.
  const armci::RemotePtr vptr = mem_->at(home, slot_off(idx));
  for (;;) {
    comm_.get(vptr, &ver_buf_, 8);  // member buffer: survives unwinds
    const std::uint64_t v = ver_buf_;
    if (v & 1) {
      ++st.version_retries;
      retry_backoff("kv put", home, st);
      continue;
    }
    if (comm_.compare_swap(vptr, static_cast<std::int64_t>(v),
                           static_cast<std::int64_t>(v + 1)) !=
        static_cast<std::int64_t>(v)) {
      ++st.cas_lost;
      retry_backoff("kv put", home, st);
      continue;
    }
    comm_.put(image.data() + kValueWord,
              mem_->at(home, slot_off(idx) + kValueWord * 8), value_words_ * 8);
    comm_.fence(home);
    const std::uint64_t nv = v + 2;
    comm_.put(&nv, vptr, 8);
    comm_.fence(home);  // remote completion of the publish is the ack
    return nv;
  }
}

std::int64_t KvStore::faa(std::int64_t key, std::int64_t delta, KvStats& st) {
  arm_budget(true);
  const armci::RankId home = home_of(key);
  // Absent keys are inserted with a zero counter and the stamp-0 value
  // pattern (so a later get still verifies), then hit the same AMO.
  std::vector<std::uint64_t>& image = image_buf_;
  image[kCounterWord] = 0;
  image[kVersionWord] = 2;
  image[kTagWord] = static_cast<std::uint64_t>(key) + 1;
  for (std::size_t w = 0; w < value_words_; ++w) {
    image[kValueWord + w] = value_word(0, w);
  }
  bool inserted = false;
  const std::size_t idx = publish_slot(home, key, image.data(), &inserted, st);
  return comm_.fetch_add(mem_->at(home, slot_off(idx) + kCounterWord * 8),
                         delta);
}

void KvStore::save_shard(std::byte* out) {
  std::memcpy(out, mem_->local(comm_.rank()), table_bytes());
}

void KvStore::restore_shard(int, int, const std::byte* data,
                            std::size_t bytes) {
  arm_budget(false);  // recovery traffic must never hit a retry budget
  PGASQ_CHECK(bytes == table_bytes(),
              << "kvs: shard size mismatch in restore (" << bytes << " vs "
              << table_bytes() << ")");
  const auto* words = reinterpret_cast<const std::uint64_t*>(data);
  KvStats scratch;  // restore traffic is not client-visible
  for (std::size_t s = 0; s < slots_; ++s) {
    const std::uint64_t* slot = words + s * slot_words_;
    if (slot[kTagWord] == 0) continue;
    PGASQ_CHECK((slot[kVersionWord] & 1) == 0 && slot[kVersionWord] >= 2,
                << "kvs: non-quiescent slot in checkpoint shard");
    const auto key = static_cast<std::int64_t>(slot[kTagWord] - 1);
    // Re-insert under the current membership, preserving the
    // checkpointed version/counter/value image bit-for-bit.
    bool inserted = false;
    publish_slot(home_of(key), key, slot, &inserted, scratch);
    PGASQ_CHECK(inserted, << "kvs: duplicate key " << key
                          << " while restoring checkpoint shards");
  }
}

std::uint64_t KvStore::local_counter_sum() const {
  const auto* words =
      reinterpret_cast<const std::uint64_t*>(mem_->local(comm_.rank()));
  std::uint64_t sum = 0;
  for (std::size_t s = 0; s < slots_; ++s) {
    if (words[s * slot_words_ + kTagWord] != 0) {
      sum += words[s * slot_words_ + kCounterWord];
    }
  }
  return sum;
}

std::uint64_t KvStore::local_keys() const {
  const auto* words =
      reinterpret_cast<const std::uint64_t*>(mem_->local(comm_.rank()));
  std::uint64_t n = 0;
  for (std::size_t s = 0; s < slots_; ++s) {
    if (words[s * slot_words_ + kTagWord] != 0) ++n;
  }
  return n;
}

std::uint32_t KvStore::local_crc() const {
  return crc32c(mem_->local(comm_.rank()), table_bytes());
}

// ---------------------------------------------------------------------------
// Workload driver
// ---------------------------------------------------------------------------

KvResult run_workload(armci::World& world, const KvConfig& cfg) {
  const int p = world.num_ranks();
  PGASQ_CHECK(!cfg.conflict_free || cfg.keys >= p,
              << "kvs.conflict_free needs kvs.keys >= the rank count");

  // Overload-control context: the machine's flow controller (nullptr
  // when flow.* is unset), the enforced deadline, and the post-hoc
  // goodput SLO. Enforcement and measurement are deliberately
  // separate so an uncontrolled run's collapse is still measurable.
  flow::Controller* fc = world.machine().flow();
  const flow::FlowConfig& fcfg = world.machine().config().flow;
  // AIMD admission telemetry (obs.timeline): the limit trajectory and
  // shed decisions. Registered up front so the hot loop stores by id.
  obs::Timeline* tl = world.machine().timeline();
  const obs::Timeline::SeriesId tl_admit_limit =
      tl != nullptr
          ? tl->series("flow.admission_limit", obs::Timeline::Kind::kGauge)
          : obs::Timeline::kNone;
  const obs::Timeline::SeriesId tl_admit_shed =
      tl != nullptr
          ? tl->series("flow.admission_shed", obs::Timeline::Kind::kCounter)
          : obs::Timeline::kNone;
  // Open-loop client backlog: arrivals already due but unserved. THE
  // queue that runs away when offered load exceeds capacity with no
  // admission control; sampled per arrival across all clients.
  const obs::Timeline::SeriesId tl_backlog =
      tl != nullptr
          ? tl->series("kvs.client_backlog", obs::Timeline::Kind::kGauge)
          : obs::Timeline::kNone;
  const bool open_loop = cfg.arrival_rate > 0.0;
  const bool enforce = fc != nullptr && fcfg.deadline_us > 0.0;
  const Time slo = cfg.slo_us > 0.0 ? from_us(cfg.slo_us) : fcfg.deadline();

  KvResult res;
  res.per_rank.assign(static_cast<std::size_t>(p), KvStats{});
  std::vector<Time> t_start(static_cast<std::size_t>(p), 0);
  std::vector<Time> t_end(static_cast<std::size_t>(p), 0);
  std::vector<std::uint64_t> offered(static_cast<std::size_t>(p), 0);
  std::vector<std::uint64_t> good(static_cast<std::size_t>(p), 0);
  std::vector<std::vector<Time>> done_t(static_cast<std::size_t>(p));
  std::vector<std::vector<Time>> good_t(static_cast<std::size_t>(p));
  std::vector<std::uint64_t> counter_sum(static_cast<std::size_t>(p), 0);
  std::vector<std::uint32_t> crc(static_cast<std::size_t>(p), 0);
  std::vector<char> alive(static_cast<std::size_t>(p), 0);
  struct FaaRec {
    std::int64_t delta;
    int epoch;
  };
  std::vector<std::vector<FaaRec>> faa_acked(static_cast<std::size_t>(p));
  std::vector<RecoveryEvent> events;

  sim::TraceRecorder* tr = world.machine().trace();
  std::vector<std::uint32_t> tracks;
  if (tr != nullptr) {
    for (int r = 0; r < p; ++r) {
      tracks.push_back(tr->register_track("kvs/r" + std::to_string(r),
                                          !world.machine().rank_traced(r)));
    }
  }
  // One shared generator: zeta(n) is O(n), so computing it per rank
  // would dominate construction; next() is stateless.
  const ZipfGenerator zipf(static_cast<std::uint64_t>(cfg.keys),
                           cfg.zipf_theta);
  // keys/p full residue blocks keep conflict-free draws in range.
  const std::int64_t cf_blocks = std::max<std::int64_t>(1, cfg.keys / p);

  world.spmd([&](armci::Comm& comm) {
    const int me = comm.rank();
    coll::CollEngine::of(comm);
    KvStore store(comm, cfg);
    ft::RuntimeConfig rc;
    rc.checkpoint_interval = 1;  // labels are request-block indices
    ft::Runtime rt(comm, rc, {&store});
    store.set_runtime(&rt);  // buddy-readable copies back hedged gets
    const bool ft_on = rt.enabled() && cfg.checkpoint_every > 0;
    KvStats& st = res.per_rank[static_cast<std::size_t>(me)];
    Rng rng(cfg.seed * 0x9e3779b97f4a7c15ULL +
            static_cast<std::uint64_t>(me) + 1);

    // The replayable client-side op log: `epoch` is the label of the
    // last checkpoint this client entered before issuing the op, so an
    // op is contained in checkpoint L' exactly when epoch < L'.
    struct OpRec {
      char type;
      std::int64_t key;
      std::uint64_t stamp;
      std::int64_t delta;
      int epoch;
      std::uint64_t version;
      bool acked;
    };
    std::vector<OpRec> oplog;
    // Audit book: key -> (version, stamp) of this client's last acked
    // put. Ordered map so the audit reads in a deterministic order.
    std::map<std::int64_t, std::pair<std::uint64_t, std::uint64_t>> last_put;
    int epoch = 0;
    std::uint64_t seq = 0;

    auto replay = [&](int from_label) {
      for (OpRec& op : oplog) {
        if (!op.acked || op.epoch < from_label) continue;
        if (op.type == 'p') {
          op.version = store.put(op.key, op.stamp, st);
          last_put[op.key] = {op.version, op.stamp};
        } else if (op.type == 'f') {
          store.faa(op.key, op.delta, st);
        } else {
          continue;  // gets have no durable effect
        }
        ++st.replayed_ops;
      }
    };

    // Runs `body`, absorbing fail-stop recovery: on PeerDeadError the
    // whole recover/rebuild/restore/replay sequence runs (re-entering
    // itself if another node dies mid-recovery), then `body` is retried
    // from scratch. Returns false when this rank is the casualty.
    bool need_recovery = false;
    auto guarded = [&](auto&& body) -> bool {
      for (;;) {
        try {
          if (need_recovery) {
            bool im_alive = true;
            for (;;) {
              try {
                im_alive = rt.recover();
                break;
              } catch (const ft::PeerDeadError&) {
              }
            }
            if (!im_alive) return false;
            store.rebuild(rt.members());
            rt.restore();  // no-op on a cold restart: table stays empty
            comm.barrier();  // every shard restored before anyone reads
            if (me == rt.members().front()) {
              RecoveryEvent ev;
              ev.restart_label = rt.restart_iter();
              const ft::HealthMonitor* mon = comm.ft_monitor();
              for (int r = 0; r < p; ++r) {
                if (mon != nullptr && mon->rank_declared_dead(r)) {
                  ev.dead_ranks.push_back(r);
                }
              }
              events.push_back(ev);
            }
            replay(rt.restart_iter());
            need_recovery = false;
          }
          body();
          return true;
        } catch (const ft::PeerDeadError&) {
          need_recovery = true;
        }
      }
    };

    bool i_died = !guarded([&] { comm.barrier(); });

    // Optional prefill (kvs.prefill): populate every key before the
    // timed loop. Keys are partitioned round-robin by client so each
    // is written exactly once, and the puts go through the op log
    // (acked, current epoch) so a post-death replay restores them like
    // any other acked write.
    if (!i_died && cfg.prefill) {
      const std::size_t mark = oplog.size();
      i_died = !guarded([&] {
        oplog.resize(mark);  // a retried body starts from scratch
        for (std::int64_t key = me; key < cfg.keys; key += p) {
          oplog.push_back(OpRec{
              'p', key, (static_cast<std::uint64_t>(me + 1) << 32) | ++seq, 0,
              epoch, 0, false});
          OpRec& op = oplog.back();
          op.version = store.put(op.key, op.stamp, st);
          op.acked = true;
          last_put[op.key] = {op.version, op.stamp};
        }
        comm.barrier();  // table fully populated before anyone reads
      });
      // With no mid-run checkpoints scheduled, commit one right here
      // so buddy copies of the populated table exist from the first
      // request (hedged reads stay un-armed until a checkpoint
      // commits). Gated on checkpoint_every >= requests: interleaving
      // an extra label-1 checkpoint with the loop's own label
      // sequence would make replay-after-death ambiguous for faa ops.
      if (!i_died && ft_on && cfg.checkpoint_every >= cfg.requests) {
        i_died = !guarded([&] { rt.checkpoint(1); });
        if (!i_died) epoch = 1;
      }
    }

    // Open-loop arrival plan: seeded Poisson interarrivals drawn up
    // front from a dedicated stream (the op-mix stream stays
    // draw-for-draw identical to the closed loop), absolute times
    // anchored at this client's traffic start. Priority classes are
    // drawn alongside so shed decisions replay deterministically.
    std::vector<Time> arrivals;
    std::vector<char> lowprio;
    std::optional<flow::AdmissionController> admit;
    if (open_loop) {
      Rng arr((cfg.seed ^ 0xf10bf10bULL) * 0x9e3779b97f4a7c15ULL +
              static_cast<std::uint64_t>(me) + 1);
      const double mean_ps = 1e12 / cfg.arrival_rate;
      const double lp_frac = fc != nullptr ? fcfg.low_prio_frac : 0.0;
      Time t = 0;
      arrivals.reserve(static_cast<std::size_t>(cfg.requests));
      lowprio.reserve(static_cast<std::size_t>(cfg.requests));
      for (std::int64_t r = 0; r < cfg.requests; ++r) {
        t += std::max<Time>(1, static_cast<Time>(arr.next_exponential(mean_ps)));
        arrivals.push_back(t);
        lowprio.push_back(lp_frac > 0.0 && arr.next_double() < lp_frac ? 1 : 0);
      }
      if (fc != nullptr && fcfg.admit) admit.emplace(fcfg);
    }

    if (!i_died) {
      t_start[static_cast<std::size_t>(me)] = comm.now();
      const Time base = comm.now();
      // Metastability trigger window (absolute), see kvs.stall_at_us.
      const Time stall_begin =
          cfg.stall_us > 0.0 ? base + from_us(cfg.stall_at_us) : 0;
      const Time stall_end =
          cfg.stall_us > 0.0 ? stall_begin + from_us(cfg.stall_us) : 0;
      for (std::int64_t r = 0; r < cfg.requests; ++r) {
        if (ft_on && r > 0 && r % cfg.checkpoint_every == 0) {
          const int label = static_cast<int>(r / cfg.checkpoint_every);
          if (!guarded([&] { rt.checkpoint(label); })) {
            i_died = true;
            break;
          }
          epoch = label;
        }
        Time arrival = 0;
        Time deadline_enf = 0;  // enforced absolute deadline (0 = none)
        if (open_loop) {
          arrival = base + arrivals[static_cast<std::size_t>(r)];
          ++offered[static_cast<std::size_t>(me)];
          // Idle (but responsive — incoming shard requests keep being
          // serviced) until the next arrival; then serve any stall
          // window it landed in. The stall is compute(), not idle: a
          // frozen service neither serves its own queue NOR its
          // peers', and the accrued backlog is the metastability seed.
          if (comm.now() < arrival) comm.idle_until(arrival);
          if (stall_end > 0 && comm.now() >= stall_begin &&
              comm.now() < stall_end) {
            comm.compute(stall_end - comm.now());
          }
          if (enforce) deadline_enf = arrival + fcfg.deadline();
          // Backlog: arrivals already due but still unserved behind
          // this one. The client is a single fiber, so this IS the
          // queue depth the AIMD limiter governs.
          int backlog = 0;
          for (std::int64_t j = r + 1;
               j < cfg.requests &&
               base + arrivals[static_cast<std::size_t>(j)] <= comm.now();
               ++j) {
            ++backlog;
          }
          if (tl != nullptr) {
            tl->sample(tl_backlog, comm.now(), static_cast<double>(backlog));
            if (admit.has_value()) {
              tl->sample(tl_admit_limit, comm.now(),
                         static_cast<double>(admit->limit()));
            }
          }
          if (admit.has_value() && !admit->admit(backlog)) {
            // Load shedding, low-priority class first; high-priority
            // requests are dropped only under severe (2x) overrun.
            if (lowprio[static_cast<std::size_t>(r)] != 0) {
              ++fc->stats().shed_low_prio;
              ++st.shed_ops;
              if (tl != nullptr) tl->count(tl_admit_shed, comm.now());
              continue;
            }
            if (backlog >= 2 * admit->limit()) {
              ++fc->stats().shed_high_prio;
              ++st.shed_ops;
              if (tl != nullptr) tl->count(tl_admit_shed, comm.now());
              continue;
            }
          }
          // Client-side expiry: the deadline passed while queued —
          // issuing the request would only waste server capacity.
          if (deadline_enf > 0 && comm.now() > deadline_enf) {
            fc->note_client_expiry(comm.now());
            ++st.expired_ops;
            if (admit.has_value()) admit->on_overload();
            continue;
          }
        }
        // The op stream is drawn up front and recorded before the op
        // runs, so recovery retries re-run the SAME op.
        std::int64_t key = static_cast<std::int64_t>(zipf.next(rng));
        if (cfg.conflict_free) {
          // Fold into this client's residue class: every key has a
          // single writer, so fault replays reconverge bit-for-bit.
          key = (key % cf_blocks) * p + me;
        }
        const double u = rng.next_double();
        const char type = u < cfg.get_ratio                  ? 'g'
                          : u < cfg.get_ratio + cfg.faa_ratio ? 'f'
                                                              : 'p';
        OpRec rec{type, key, 0, 0, epoch, 0, false};
        if (type == 'p') {
          rec.stamp = (static_cast<std::uint64_t>(me + 1) << 32) | ++seq;
        }
        if (type == 'f') {
          rec.delta = static_cast<std::int64_t>(1 + rng.next_below(9));
        }
        oplog.push_back(rec);
        OpRec& op = oplog.back();

        Time t0 = 0;
        bool deadline_errored = false;
        const bool ok = guarded([&] {
          deadline_errored = false;
          if (!open_loop && cfg.think_us > 0.0) {
            comm.compute(from_us(cfg.think_us));
          }
          t0 = comm.now();
          if (deadline_enf > 0) comm.set_op_deadline(deadline_enf);
          try {
            if (op.type == 'g') {
              std::uint64_t v = 0, s = 0;
              if (!store.get(op.key, &v, &s, st)) ++st.get_misses;
            } else if (op.type == 'p') {
              op.version = store.put(op.key, op.stamp, st);
            } else {
              store.faa(op.key, op.delta, st);
            }
          } catch (const flow::DeadlineError&) {
            // Shed server-side (or out of retry budget): the op is NOT
            // acked and is never replayed. The protocols leave no slot
            // locked — rmw sheds happen before the CAS applies.
            deadline_errored = true;
          }
          comm.set_op_deadline(0);
        });
        if (!ok) {
          i_died = true;
          break;
        }
        if (deadline_errored) {
          ++st.deadline_errors;
          if (admit.has_value()) admit->on_overload();
          continue;
        }
        const Time t1 = comm.now();
        // Latency of the successful attempt (recovery rounds excluded;
        // they are reported separately as recoveries/rollback time).
        // Open loop measures from the scheduled arrival, so queueing
        // delay — the overload signal — is part of every sample.
        const Time lat_from = open_loop ? arrival : t0;
        const auto lat_ns =
            static_cast<std::uint64_t>((t1 - lat_from) / kNanosecond);
        op.acked = true;
        done_t[static_cast<std::size_t>(me)].push_back(t1);
        const bool in_slo = slo <= 0 || t1 - lat_from <= slo;
        if (in_slo) {
          ++good[static_cast<std::size_t>(me)];
          good_t[static_cast<std::size_t>(me)].push_back(t1);
        }
        if (admit.has_value()) {
          in_slo ? admit->on_success() : admit->on_overload();
        }
        if (op.type == 'g') {
          ++st.gets;
          st.get_lat.add(lat_ns);
        } else if (op.type == 'p') {
          ++st.puts;
          st.put_lat.add(lat_ns);
          last_put[op.key] = {op.version, op.stamp};
        } else {
          ++st.faas;
          st.faa_lat.add(lat_ns);
          faa_acked[static_cast<std::size_t>(me)].push_back(
              {op.delta, op.epoch});
        }
        if (tr != nullptr) {
          const std::uint32_t mine = tracks[static_cast<std::size_t>(me)];
          const char* nm = op.type == 'g'   ? "kv get"
                           : op.type == 'p' ? "kv put"
                                            : "kv faa";
          tr->complete(mine, nm, t0, t1 - t0);
          const std::uint64_t id = tr->next_flow_id();
          tr->flow_point('s', mine, "kv req", id, t0);
          tr->flow_point(
              'f', tracks[static_cast<std::size_t>(store.home_of(op.key))],
              "kv req", id, t1);
        }
      }
    }

    if (!i_died) {
      i_died = !guarded([&] { comm.barrier(); });  // quiesce all clients
    }
    if (!i_died) t_end[static_cast<std::size_t>(me)] = comm.now();
    if (!i_died && cfg.verify) {
      // Acked-write audit at the quiescent end state. A later put by
      // another client legitimately raises the version past ours, so
      // "lost" means: missing, version below ours, or our version
      // carrying someone else's (i.e. an older replayed) stamp.
      // Strongly fresh reads only: a bounded-staleness buddy win here
      // would misreport a post-checkpoint put as lost.
      store.pause_hedging(true);
      std::uint64_t lost = 0;
      i_died = !guarded([&] {
        lost = 0;
        for (const auto& [key, vs] : last_put) {
          std::uint64_t v = 0, s = 0;
          const bool hit = store.get(key, &v, &s, st);
          if (!hit || v < vs.first || (v == vs.first && s != vs.second)) {
            ++lost;
          }
        }
        comm.barrier();
      });
      if (!i_died) st.lost_acked = lost;
    }
    if (!i_died) {
      alive[static_cast<std::size_t>(me)] = 1;
      counter_sum[static_cast<std::size_t>(me)] = store.local_counter_sum();
      crc[static_cast<std::size_t>(me)] = store.local_crc();
    }
  });

  for (int r = 0; r < p; ++r) res.total.merge(res.per_rank[static_cast<std::size_t>(r)]);
  res.acked_ops = res.total.gets + res.total.puts + res.total.faas;
  res.torn_reads = res.total.torn_reads;
  res.lost_acked = res.total.lost_acked;
  res.events = std::move(events);
  res.recoveries = static_cast<int>(res.events.size());
  if (const ft::HealthMonitor* mon = world.machine().monitor()) {
    res.checkpoints = mon->stats().checkpoints;
  }

  Time lo = std::numeric_limits<Time>::max();
  Time hi = 0;
  for (int r = 0; r < p; ++r) {
    const auto i = static_cast<std::size_t>(r);
    if (!alive[i]) continue;
    ++res.survivors;
    lo = std::min(lo, t_start[i]);
    hi = std::max(hi, t_end[i]);
    res.faa_applied += counter_sum[i];
    res.shard_crcs.push_back(crc[i]);
    res.offered_ops += offered[i];
    res.good_ops += good[i];
    res.done_times.insert(res.done_times.end(), done_t[i].begin(),
                          done_t[i].end());
    res.good_times.insert(res.good_times.end(), good_t[i].begin(),
                          good_t[i].end());
  }
  std::sort(res.done_times.begin(), res.done_times.end());
  std::sort(res.good_times.begin(), res.good_times.end());
  if (!open_loop) res.offered_ops = res.acked_ops;
  if (res.survivors > 0) {
    res.traffic_begin = lo;
    res.traffic_end = hi;
    res.elapsed_s = to_s(hi - lo);
  }
  res.mops = res.elapsed_s > 0.0
                 ? static_cast<double>(res.acked_ops) / res.elapsed_s / 1e6
                 : 0.0;
  res.goodput_mops = res.elapsed_s > 0.0
                         ? static_cast<double>(res.good_ops) / res.elapsed_s / 1e6
                         : 0.0;

  // Exactly-once expectation for the counters: a survivor's acked faas
  // all stick (rollbacks discard, replay re-applies). A dead client's
  // acked faa survives only when it sits inside every checkpoint the
  // survivors ever rolled back to after that client died — i.e. its
  // epoch is below the smallest restart label among recoveries that
  // declared the client dead (nobody replays a dead client's log).
  for (int r = 0; r < p; ++r) {
    const auto i = static_cast<std::size_t>(r);
    int cutoff = std::numeric_limits<int>::max();
    if (!alive[i]) {
      for (const RecoveryEvent& ev : res.events) {
        if (std::find(ev.dead_ranks.begin(), ev.dead_ranks.end(), r) !=
            ev.dead_ranks.end()) {
          cutoff = std::min(cutoff, ev.restart_label);
        }
      }
    }
    for (const FaaRec& f : faa_acked[i]) {
      if (f.epoch < cutoff) {
        res.faa_expected += static_cast<std::uint64_t>(f.delta);
      }
    }
  }
  return res;
}

// ---------------------------------------------------------------------------
// Metrics export
// ---------------------------------------------------------------------------

void export_metrics(obs::Registry& reg, const KvResult& r,
                    const obs::Labels& labels) {
  reg.set_counter("kvs.acked_ops", r.acked_ops, labels);
  reg.set_gauge("kvs.throughput_mops", r.mops, labels);
  reg.set_gauge("kvs.elapsed_s", r.elapsed_s, labels);
  reg.set_counter("kvs.gets", r.total.gets, labels);
  reg.set_counter("kvs.puts", r.total.puts, labels);
  reg.set_counter("kvs.faas", r.total.faas, labels);
  reg.set_counter("kvs.get_misses", r.total.get_misses, labels);
  reg.set_counter("kvs.cas_lost", r.total.cas_lost, labels);
  reg.set_counter("kvs.version_retries", r.total.version_retries, labels);
  reg.set_counter("kvs.probe_steps", r.total.probe_steps, labels);
  reg.set_counter("kvs.torn_reads", r.torn_reads, labels);
  reg.set_counter("kvs.replayed_ops", r.total.replayed_ops, labels);
  reg.set_counter("kvs.lost_acked_writes", r.lost_acked, labels);
  reg.set_counter("kvs.faa_expected", r.faa_expected, labels);
  reg.set_counter("kvs.faa_applied", r.faa_applied, labels);
  reg.set_counter("kvs.offered_ops", r.offered_ops, labels);
  reg.set_counter("kvs.good_ops", r.good_ops, labels);
  reg.set_gauge("kvs.goodput_mops", r.goodput_mops, labels);
  reg.set_counter("kvs.shed_ops", r.total.shed_ops, labels);
  reg.set_counter("kvs.expired_ops", r.total.expired_ops, labels);
  reg.set_counter("kvs.deadline_errors", r.total.deadline_errors, labels);
  reg.set_counter("kvs.hedged_gets", r.total.hedged_gets, labels);
  reg.set_counter("kvs.hedge_wins", r.total.hedge_wins, labels);
  reg.set_counter("kvs.hedge_stale", r.total.hedge_stale, labels);
  reg.set_counter("kvs.hedge_cancels", r.total.hedge_cancels, labels);
  reg.set_counter("kvs.hedge_cancel_late", r.total.hedge_cancel_late, labels);
  reg.set_counter("kvs.hedge_skips", r.total.hedge_skips, labels);
  reg.set_counter("kvs.retry_backoffs", r.total.retry_backoffs, labels);
  reg.set_counter("kvs.survivors", static_cast<std::uint64_t>(r.survivors),
                  labels);
  reg.set_counter("kvs.recoveries", static_cast<std::uint64_t>(r.recoveries),
                  labels);
  reg.set_counter("kvs.checkpoints", r.checkpoints, labels);

  const std::pair<const char*, const util::Histogram*> ops[] = {
      {"get", &r.total.get_lat},
      {"put", &r.total.put_lat},
      {"faa", &r.total.faa_lat},
  };
  for (const auto& [name, hist] : ops) {
    if (hist->total() == 0) continue;
    obs::Labels with_op = labels;
    with_op.emplace_back("op", name);
    reg.set_gauge("kvs.lat_p50_us", static_cast<double>(hist->quantile(0.5)) / 1e3,
                  with_op);
    reg.set_gauge("kvs.lat_p99_us", static_cast<double>(hist->quantile(0.99)) / 1e3,
                  with_op);
    reg.set_gauge("kvs.lat_p999_us",
                  static_cast<double>(hist->quantile(0.999)) / 1e3, with_op);
    reg.set_gauge("kvs.lat_mean_us", hist->mean() / 1e3, with_op);
    reg.set_gauge("kvs.lat_max_us", static_cast<double>(hist->max()) / 1e3,
                  with_op);
    reg.set_histogram("kvs.latency_ns", *hist, with_op);
  }
}

}  // namespace pgasq::kvs
