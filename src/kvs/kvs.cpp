#include "kvs/kvs.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <map>
#include <utility>

#include "coll/coll.hpp"
#include "core/world.hpp"
#include "ft/liveness.hpp"
#include "pami/machine.hpp"
#include "sim/trace.hpp"
#include "util/crc32c.hpp"
#include "util/error.hpp"
#include "util/time_types.hpp"

namespace pgasq::kvs {

namespace {

// Slot word offsets (see the layout comment in kvs.hpp).
constexpr std::size_t kVersionWord = 0;
constexpr std::size_t kTagWord = 1;
constexpr std::size_t kCounterWord = 2;
constexpr std::size_t kValueWord = 3;

/// SplitMix64 finalizer: the stateless mixing step of the seeding
/// generator in util/rng.hpp, used for key -> home and key -> slot
/// hashing and for the self-checking value pattern.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Word `w` of the value payload written for `stamp`: the stamp itself
/// followed by a pattern any reader can regenerate, so a get can prove
/// the snapshot it took is not torn.
std::uint64_t value_word(std::uint64_t stamp, std::size_t w) {
  return w == 0 ? stamp : mix64(stamp + w);
}

std::size_t pow2_at_least(std::uint64_t n) {
  std::size_t s = 1;
  while (s < n) s <<= 1;
  return s;
}

double zeta(std::uint64_t n, double theta) {
  double z = 0.0;
  for (std::uint64_t i = 1; i <= n; ++i) z += 1.0 / std::pow(static_cast<double>(i), theta);
  return z;
}

}  // namespace

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

KvConfig KvConfig::from_config(const Config& cfg) {
  cfg.reject_unknown("kvs", {"keys", "zipf_theta", "get_ratio", "faa_ratio",
                             "requests", "think_us", "value_bytes",
                             "slots_per_rank", "checkpoint_every", "seed",
                             "conflict_free", "verify"});
  KvConfig c;
  c.keys = cfg.get_int("kvs.keys", c.keys);
  c.zipf_theta = cfg.get_double("kvs.zipf_theta", c.zipf_theta);
  c.get_ratio = cfg.get_double("kvs.get_ratio", c.get_ratio);
  c.faa_ratio = cfg.get_double("kvs.faa_ratio", c.faa_ratio);
  c.requests = cfg.get_int("kvs.requests", c.requests);
  c.think_us = cfg.get_double("kvs.think_us", c.think_us);
  c.value_bytes = cfg.get_int("kvs.value_bytes", c.value_bytes);
  c.slots_per_rank = cfg.get_int("kvs.slots_per_rank", c.slots_per_rank);
  c.checkpoint_every = cfg.get_int("kvs.checkpoint_every", c.checkpoint_every);
  c.seed = static_cast<std::uint64_t>(
      cfg.get_int("kvs.seed", static_cast<std::int64_t>(c.seed)));
  c.conflict_free = cfg.get_bool("kvs.conflict_free", c.conflict_free);
  c.verify = cfg.get_bool("kvs.verify", c.verify);
  PGASQ_CHECK(c.keys >= 1, << "kvs.keys must be >= 1");
  PGASQ_CHECK(c.zipf_theta >= 0.0 && c.zipf_theta < 1.0,
              << "kvs.zipf_theta must be in [0, 1)");
  PGASQ_CHECK(c.get_ratio >= 0.0 && c.faa_ratio >= 0.0 &&
                  c.get_ratio + c.faa_ratio <= 1.0,
              << "kvs.get_ratio + kvs.faa_ratio must be in [0, 1]");
  PGASQ_CHECK(c.requests >= 0, << "kvs.requests must be >= 0");
  PGASQ_CHECK(c.think_us >= 0.0, << "kvs.think_us must be >= 0");
  PGASQ_CHECK(c.value_bytes >= 8 && c.value_bytes % 8 == 0,
              << "kvs.value_bytes must be a positive multiple of 8");
  PGASQ_CHECK(c.checkpoint_every >= 0, << "kvs.checkpoint_every must be >= 0");
  return c;
}

// ---------------------------------------------------------------------------
// Zipfian key generator
// ---------------------------------------------------------------------------

ZipfGenerator::ZipfGenerator(std::uint64_t n, double theta)
    : n_(n), theta_(theta) {
  PGASQ_CHECK(n >= 1, << "zipf key space must be non-empty");
  PGASQ_CHECK(theta >= 0.0 && theta < 1.0, << "zipf theta must be in [0, 1)");
  zetan_ = zeta(n, theta);
  alpha_ = 1.0 / (1.0 - theta);
  // Gray et al.'s closed-form correction; undefined (and unused — next()
  // always short-circuits) for a single-key space.
  eta_ = n > 1 ? (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
                     (1.0 - zeta(2, theta) / zetan_)
               : 0.0;
}

std::uint64_t ZipfGenerator::next(Rng& rng) const {
  const double u = rng.next_double();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const auto k = static_cast<std::uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return k >= n_ ? n_ - 1 : k;
}

// ---------------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------------

void KvStats::merge(const KvStats& o) {
  gets += o.gets;
  puts += o.puts;
  faas += o.faas;
  get_misses += o.get_misses;
  cas_lost += o.cas_lost;
  version_retries += o.version_retries;
  probe_steps += o.probe_steps;
  torn_reads += o.torn_reads;
  replayed_ops += o.replayed_ops;
  lost_acked += o.lost_acked;
  get_lat.merge(o.get_lat);
  put_lat.merge(o.put_lat);
  faa_lat.merge(o.faa_lat);
}

// ---------------------------------------------------------------------------
// KvStore
// ---------------------------------------------------------------------------

KvStore::KvStore(armci::Comm& comm, const KvConfig& cfg)
    : comm_(comm), cfg_(cfg) {
  PGASQ_CHECK(cfg.value_bytes >= 8 && cfg.value_bytes % 8 == 0,
              << "kvs value_bytes must be a positive multiple of 8");
  value_words_ = static_cast<std::size_t>(cfg.value_bytes / 8);
  slot_words_ = kValueWord + value_words_;
  const int p = comm.nprocs();
  members_.resize(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) members_[static_cast<std::size_t>(r)] = r;

  std::uint64_t want = static_cast<std::uint64_t>(cfg.slots_per_rank);
  if (cfg.slots_per_rank <= 0) {
    // Auto-size for the worst surviving membership: every scheduled
    // node death shifts its keys onto the survivors, so size each
    // table at 8x the expected keys-per-member at the smallest clique
    // (load factor <= 1/8 keeps probe chains short).
    int q_min = p;
    if (const ft::HealthMonitor* mon = comm.ft_monitor()) {
      const int lost = static_cast<int>(mon->scheduled_deaths()) *
                       mon->mapping().ranks_per_node();
      q_min = std::max(1, p - lost);
    }
    want = std::max<std::uint64_t>(
        16, (8 * static_cast<std::uint64_t>(cfg.keys) +
             static_cast<std::uint64_t>(q_min) - 1) /
                static_cast<std::uint64_t>(q_min));
  }
  slots_ = pow2_at_least(want);
  slot_buf_.assign(slot_words_, 0);
  image_buf_.assign(slot_words_, 0);
  mem_ = &comm.malloc_collective(table_bytes());
}

void KvStore::rebuild(const std::vector<int>& members) {
  members_ = members;
  // Fresh member-mode allocation; the old slabs are deliberately left
  // in place so stale in-flight traffic from the dead epoch lands in
  // memory the new table never reads.
  mem_ = &comm_.malloc_collective(table_bytes());
}

armci::RankId KvStore::home_of(std::int64_t key) const {
  return members_[static_cast<std::size_t>(
      mix64(static_cast<std::uint64_t>(key)) % members_.size())];
}

bool KvStore::find_slot(armci::RankId home, std::int64_t key, std::size_t* idx,
                        KvStats& st) {
  const std::uint64_t want = static_cast<std::uint64_t>(key) + 1;
  const std::size_t mask = slots_ - 1;
  const std::size_t start =
      static_cast<std::size_t>(mix64(mix64(static_cast<std::uint64_t>(key)) + 1)) & mask;
  std::uint64_t* hdr = hdr_buf_;  // member buffer: survives abort unwinds
  for (std::size_t step = 0; step < slots_;) {
    const std::size_t i = (start + step) & mask;
    comm_.get(mem_->at(home, slot_off(i)), hdr, 2 * 8);
    if (hdr[kTagWord] == want) {
      st.probe_steps += step;
      *idx = i;
      return true;
    }
    if (hdr[kVersionWord] == 0 && hdr[kTagWord] == 0) {
      st.probe_steps += step;
      *idx = i;
      return false;
    }
    if (hdr[kTagWord] == 0) {
      // Mid-claim by another client (version 1, tag not yet visible):
      // re-read until the tag lands and tells us whose slot this is.
      ++st.version_retries;
      comm_.progress();
      continue;
    }
    ++step;  // another key's slot
  }
  PGASQ_CHECK(false, << "kvs: shard table overflow on rank " << home << " ("
                     << slots_ << " slots); raise kvs.slots_per_rank");
  return false;
}

std::size_t KvStore::publish_slot(armci::RankId home, std::int64_t key,
                                  const std::uint64_t* image, bool* inserted,
                                  KvStats& st) {
  for (;;) {
    std::size_t idx = 0;
    if (find_slot(home, key, &idx, st)) {
      *inserted = false;
      return idx;
    }
    const armci::RemotePtr vptr = mem_->at(home, slot_off(idx));
    if (comm_.compare_swap(vptr, 0, 1) != 0) {
      // Another client claimed this slot first (same or different
      // key); re-probe from scratch.
      ++st.cas_lost;
      continue;
    }
    // The slot is ours: land tag/counter/value, then publish the final
    // (even) version so readers never see a partial image as stable.
    comm_.put(image + 1, mem_->at(home, slot_off(idx) + 8),
              (slot_words_ - 1) * 8);
    comm_.fence(home);
    comm_.put(image, vptr, 8);
    comm_.fence(home);
    *inserted = true;
    return idx;
  }
}

bool KvStore::get(std::int64_t key, std::uint64_t* version,
                  std::uint64_t* stamp, KvStats& st) {
  const armci::RankId home = home_of(key);
  const std::uint64_t want = static_cast<std::uint64_t>(key) + 1;
  const std::size_t mask = slots_ - 1;
  const std::size_t start =
      static_cast<std::size_t>(mix64(mix64(static_cast<std::uint64_t>(key)) + 1)) & mask;
  std::vector<std::uint64_t>& slot = slot_buf_;  // member: survives unwinds
  for (std::size_t step = 0; step < slots_;) {
    const std::size_t i = (start + step) & mask;
    comm_.get(mem_->at(home, slot_off(i)), slot.data(), slot_words_ * 8);
    if (slot[kTagWord] == want) {
      if (slot[kVersionWord] & 1) {
        // Write in progress: the writer holds the version odd for the
        // whole value update, so re-read until it publishes.
        ++st.version_retries;
        comm_.progress();
        continue;
      }
      st.probe_steps += step;
      *version = slot[kVersionWord];
      *stamp = slot[kValueWord];
      for (std::size_t w = 1; w < value_words_; ++w) {
        if (slot[kValueWord + w] != value_word(slot[kValueWord], w)) {
          ++st.torn_reads;
          break;
        }
      }
      return true;
    }
    if (slot[kVersionWord] == 0 && slot[kTagWord] == 0) {
      st.probe_steps += step;
      return false;
    }
    if (slot[kTagWord] == 0) {  // mid-claim, identity unknown yet
      ++st.version_retries;
      comm_.progress();
      continue;
    }
    ++step;
  }
  PGASQ_CHECK(false, << "kvs: shard table overflow on rank " << home << " ("
                     << slots_ << " slots); raise kvs.slots_per_rank");
  return false;
}

std::uint64_t KvStore::put(std::int64_t key, std::uint64_t stamp, KvStats& st) {
  const armci::RankId home = home_of(key);
  std::vector<std::uint64_t>& image = image_buf_;
  image[kVersionWord] = 2;
  image[kTagWord] = static_cast<std::uint64_t>(key) + 1;
  image[kCounterWord] = 0;  // a fresh slot starts its faa counter at 0
  for (std::size_t w = 0; w < value_words_; ++w) {
    image[kValueWord + w] = value_word(stamp, w);
  }
  bool inserted = false;
  const std::size_t idx = publish_slot(home, key, image.data(), &inserted, st);
  if (inserted) return 2;

  // Update path: lock the version with a CAS (a lost CAS is a detected
  // race with another writer), land the value, publish version + 2.
  const armci::RemotePtr vptr = mem_->at(home, slot_off(idx));
  for (;;) {
    comm_.get(vptr, &ver_buf_, 8);  // member buffer: survives unwinds
    const std::uint64_t v = ver_buf_;
    if (v & 1) {
      ++st.version_retries;
      continue;
    }
    if (comm_.compare_swap(vptr, static_cast<std::int64_t>(v),
                           static_cast<std::int64_t>(v + 1)) !=
        static_cast<std::int64_t>(v)) {
      ++st.cas_lost;
      continue;
    }
    comm_.put(image.data() + kValueWord,
              mem_->at(home, slot_off(idx) + kValueWord * 8), value_words_ * 8);
    comm_.fence(home);
    const std::uint64_t nv = v + 2;
    comm_.put(&nv, vptr, 8);
    comm_.fence(home);  // remote completion of the publish is the ack
    return nv;
  }
}

std::int64_t KvStore::faa(std::int64_t key, std::int64_t delta, KvStats& st) {
  const armci::RankId home = home_of(key);
  // Absent keys are inserted with a zero counter and the stamp-0 value
  // pattern (so a later get still verifies), then hit the same AMO.
  std::vector<std::uint64_t>& image = image_buf_;
  image[kCounterWord] = 0;
  image[kVersionWord] = 2;
  image[kTagWord] = static_cast<std::uint64_t>(key) + 1;
  for (std::size_t w = 0; w < value_words_; ++w) {
    image[kValueWord + w] = value_word(0, w);
  }
  bool inserted = false;
  const std::size_t idx = publish_slot(home, key, image.data(), &inserted, st);
  return comm_.fetch_add(mem_->at(home, slot_off(idx) + kCounterWord * 8),
                         delta);
}

void KvStore::save_shard(std::byte* out) {
  std::memcpy(out, mem_->local(comm_.rank()), table_bytes());
}

void KvStore::restore_shard(int, int, const std::byte* data,
                            std::size_t bytes) {
  PGASQ_CHECK(bytes == table_bytes(),
              << "kvs: shard size mismatch in restore (" << bytes << " vs "
              << table_bytes() << ")");
  const auto* words = reinterpret_cast<const std::uint64_t*>(data);
  KvStats scratch;  // restore traffic is not client-visible
  for (std::size_t s = 0; s < slots_; ++s) {
    const std::uint64_t* slot = words + s * slot_words_;
    if (slot[kTagWord] == 0) continue;
    PGASQ_CHECK((slot[kVersionWord] & 1) == 0 && slot[kVersionWord] >= 2,
                << "kvs: non-quiescent slot in checkpoint shard");
    const auto key = static_cast<std::int64_t>(slot[kTagWord] - 1);
    // Re-insert under the current membership, preserving the
    // checkpointed version/counter/value image bit-for-bit.
    bool inserted = false;
    publish_slot(home_of(key), key, slot, &inserted, scratch);
    PGASQ_CHECK(inserted, << "kvs: duplicate key " << key
                          << " while restoring checkpoint shards");
  }
}

std::uint64_t KvStore::local_counter_sum() const {
  const auto* words =
      reinterpret_cast<const std::uint64_t*>(mem_->local(comm_.rank()));
  std::uint64_t sum = 0;
  for (std::size_t s = 0; s < slots_; ++s) {
    if (words[s * slot_words_ + kTagWord] != 0) {
      sum += words[s * slot_words_ + kCounterWord];
    }
  }
  return sum;
}

std::uint64_t KvStore::local_keys() const {
  const auto* words =
      reinterpret_cast<const std::uint64_t*>(mem_->local(comm_.rank()));
  std::uint64_t n = 0;
  for (std::size_t s = 0; s < slots_; ++s) {
    if (words[s * slot_words_ + kTagWord] != 0) ++n;
  }
  return n;
}

std::uint32_t KvStore::local_crc() const {
  return crc32c(mem_->local(comm_.rank()), table_bytes());
}

// ---------------------------------------------------------------------------
// Workload driver
// ---------------------------------------------------------------------------

KvResult run_workload(armci::World& world, const KvConfig& cfg) {
  const int p = world.num_ranks();
  PGASQ_CHECK(!cfg.conflict_free || cfg.keys >= p,
              << "kvs.conflict_free needs kvs.keys >= the rank count");

  KvResult res;
  res.per_rank.assign(static_cast<std::size_t>(p), KvStats{});
  std::vector<Time> t_start(static_cast<std::size_t>(p), 0);
  std::vector<Time> t_end(static_cast<std::size_t>(p), 0);
  std::vector<std::uint64_t> counter_sum(static_cast<std::size_t>(p), 0);
  std::vector<std::uint32_t> crc(static_cast<std::size_t>(p), 0);
  std::vector<char> alive(static_cast<std::size_t>(p), 0);
  struct FaaRec {
    std::int64_t delta;
    int epoch;
  };
  std::vector<std::vector<FaaRec>> faa_acked(static_cast<std::size_t>(p));
  std::vector<RecoveryEvent> events;

  sim::TraceRecorder* tr = world.machine().trace();
  std::vector<std::uint32_t> tracks;
  if (tr != nullptr) {
    for (int r = 0; r < p; ++r) {
      tracks.push_back(tr->register_track("kvs/r" + std::to_string(r),
                                          !world.machine().rank_traced(r)));
    }
  }
  // One shared generator: zeta(n) is O(n), so computing it per rank
  // would dominate construction; next() is stateless.
  const ZipfGenerator zipf(static_cast<std::uint64_t>(cfg.keys),
                           cfg.zipf_theta);
  // keys/p full residue blocks keep conflict-free draws in range.
  const std::int64_t cf_blocks = std::max<std::int64_t>(1, cfg.keys / p);

  world.spmd([&](armci::Comm& comm) {
    const int me = comm.rank();
    coll::CollEngine::of(comm);
    KvStore store(comm, cfg);
    ft::RuntimeConfig rc;
    rc.checkpoint_interval = 1;  // labels are request-block indices
    ft::Runtime rt(comm, rc, {&store});
    const bool ft_on = rt.enabled() && cfg.checkpoint_every > 0;
    KvStats& st = res.per_rank[static_cast<std::size_t>(me)];
    Rng rng(cfg.seed * 0x9e3779b97f4a7c15ULL +
            static_cast<std::uint64_t>(me) + 1);

    // The replayable client-side op log: `epoch` is the label of the
    // last checkpoint this client entered before issuing the op, so an
    // op is contained in checkpoint L' exactly when epoch < L'.
    struct OpRec {
      char type;
      std::int64_t key;
      std::uint64_t stamp;
      std::int64_t delta;
      int epoch;
      std::uint64_t version;
      bool acked;
    };
    std::vector<OpRec> oplog;
    // Audit book: key -> (version, stamp) of this client's last acked
    // put. Ordered map so the audit reads in a deterministic order.
    std::map<std::int64_t, std::pair<std::uint64_t, std::uint64_t>> last_put;
    int epoch = 0;
    std::uint64_t seq = 0;

    auto replay = [&](int from_label) {
      for (OpRec& op : oplog) {
        if (!op.acked || op.epoch < from_label) continue;
        if (op.type == 'p') {
          op.version = store.put(op.key, op.stamp, st);
          last_put[op.key] = {op.version, op.stamp};
        } else if (op.type == 'f') {
          store.faa(op.key, op.delta, st);
        } else {
          continue;  // gets have no durable effect
        }
        ++st.replayed_ops;
      }
    };

    // Runs `body`, absorbing fail-stop recovery: on PeerDeadError the
    // whole recover/rebuild/restore/replay sequence runs (re-entering
    // itself if another node dies mid-recovery), then `body` is retried
    // from scratch. Returns false when this rank is the casualty.
    bool need_recovery = false;
    auto guarded = [&](auto&& body) -> bool {
      for (;;) {
        try {
          if (need_recovery) {
            bool im_alive = true;
            for (;;) {
              try {
                im_alive = rt.recover();
                break;
              } catch (const ft::PeerDeadError&) {
              }
            }
            if (!im_alive) return false;
            store.rebuild(rt.members());
            rt.restore();  // no-op on a cold restart: table stays empty
            comm.barrier();  // every shard restored before anyone reads
            if (me == rt.members().front()) {
              RecoveryEvent ev;
              ev.restart_label = rt.restart_iter();
              const ft::HealthMonitor* mon = comm.ft_monitor();
              for (int r = 0; r < p; ++r) {
                if (mon != nullptr && mon->rank_declared_dead(r)) {
                  ev.dead_ranks.push_back(r);
                }
              }
              events.push_back(ev);
            }
            replay(rt.restart_iter());
            need_recovery = false;
          }
          body();
          return true;
        } catch (const ft::PeerDeadError&) {
          need_recovery = true;
        }
      }
    };

    bool i_died = !guarded([&] { comm.barrier(); });
    if (!i_died) {
      t_start[static_cast<std::size_t>(me)] = comm.now();
      for (std::int64_t r = 0; r < cfg.requests; ++r) {
        if (ft_on && r > 0 && r % cfg.checkpoint_every == 0) {
          const int label = static_cast<int>(r / cfg.checkpoint_every);
          if (!guarded([&] { rt.checkpoint(label); })) {
            i_died = true;
            break;
          }
          epoch = label;
        }
        // The op stream is drawn up front and recorded before the op
        // runs, so recovery retries re-run the SAME op.
        std::int64_t key = static_cast<std::int64_t>(zipf.next(rng));
        if (cfg.conflict_free) {
          // Fold into this client's residue class: every key has a
          // single writer, so fault replays reconverge bit-for-bit.
          key = (key % cf_blocks) * p + me;
        }
        const double u = rng.next_double();
        const char type = u < cfg.get_ratio                  ? 'g'
                          : u < cfg.get_ratio + cfg.faa_ratio ? 'f'
                                                              : 'p';
        OpRec rec{type, key, 0, 0, epoch, 0, false};
        if (type == 'p') {
          rec.stamp = (static_cast<std::uint64_t>(me + 1) << 32) | ++seq;
        }
        if (type == 'f') {
          rec.delta = static_cast<std::int64_t>(1 + rng.next_below(9));
        }
        oplog.push_back(rec);
        OpRec& op = oplog.back();

        Time t0 = 0;
        const bool ok = guarded([&] {
          if (cfg.think_us > 0.0) comm.compute(from_us(cfg.think_us));
          t0 = comm.now();
          if (op.type == 'g') {
            std::uint64_t v = 0, s = 0;
            if (!store.get(op.key, &v, &s, st)) ++st.get_misses;
          } else if (op.type == 'p') {
            op.version = store.put(op.key, op.stamp, st);
          } else {
            store.faa(op.key, op.delta, st);
          }
        });
        if (!ok) {
          i_died = true;
          break;
        }
        const Time t1 = comm.now();
        // Latency of the successful attempt (recovery rounds excluded;
        // they are reported separately as recoveries/rollback time).
        const auto lat_ns = static_cast<std::uint64_t>((t1 - t0) / kNanosecond);
        op.acked = true;
        if (op.type == 'g') {
          ++st.gets;
          st.get_lat.add(lat_ns);
        } else if (op.type == 'p') {
          ++st.puts;
          st.put_lat.add(lat_ns);
          last_put[op.key] = {op.version, op.stamp};
        } else {
          ++st.faas;
          st.faa_lat.add(lat_ns);
          faa_acked[static_cast<std::size_t>(me)].push_back(
              {op.delta, op.epoch});
        }
        if (tr != nullptr) {
          const std::uint32_t mine = tracks[static_cast<std::size_t>(me)];
          const char* nm = op.type == 'g'   ? "kv get"
                           : op.type == 'p' ? "kv put"
                                            : "kv faa";
          tr->complete(mine, nm, t0, t1 - t0);
          const std::uint64_t id = tr->next_flow_id();
          tr->flow_point('s', mine, "kv req", id, t0);
          tr->flow_point(
              'f', tracks[static_cast<std::size_t>(store.home_of(op.key))],
              "kv req", id, t1);
        }
      }
    }

    if (!i_died) {
      i_died = !guarded([&] { comm.barrier(); });  // quiesce all clients
    }
    if (!i_died) t_end[static_cast<std::size_t>(me)] = comm.now();
    if (!i_died && cfg.verify) {
      // Acked-write audit at the quiescent end state. A later put by
      // another client legitimately raises the version past ours, so
      // "lost" means: missing, version below ours, or our version
      // carrying someone else's (i.e. an older replayed) stamp.
      std::uint64_t lost = 0;
      i_died = !guarded([&] {
        lost = 0;
        for (const auto& [key, vs] : last_put) {
          std::uint64_t v = 0, s = 0;
          const bool hit = store.get(key, &v, &s, st);
          if (!hit || v < vs.first || (v == vs.first && s != vs.second)) {
            ++lost;
          }
        }
        comm.barrier();
      });
      if (!i_died) st.lost_acked = lost;
    }
    if (!i_died) {
      alive[static_cast<std::size_t>(me)] = 1;
      counter_sum[static_cast<std::size_t>(me)] = store.local_counter_sum();
      crc[static_cast<std::size_t>(me)] = store.local_crc();
    }
  });

  for (int r = 0; r < p; ++r) res.total.merge(res.per_rank[static_cast<std::size_t>(r)]);
  res.acked_ops = res.total.gets + res.total.puts + res.total.faas;
  res.torn_reads = res.total.torn_reads;
  res.lost_acked = res.total.lost_acked;
  res.events = std::move(events);
  res.recoveries = static_cast<int>(res.events.size());
  if (const ft::HealthMonitor* mon = world.machine().monitor()) {
    res.checkpoints = mon->stats().checkpoints;
  }

  Time lo = std::numeric_limits<Time>::max();
  Time hi = 0;
  for (int r = 0; r < p; ++r) {
    const auto i = static_cast<std::size_t>(r);
    if (!alive[i]) continue;
    ++res.survivors;
    lo = std::min(lo, t_start[i]);
    hi = std::max(hi, t_end[i]);
    res.faa_applied += counter_sum[i];
    res.shard_crcs.push_back(crc[i]);
  }
  if (res.survivors > 0) {
    res.traffic_begin = lo;
    res.traffic_end = hi;
    res.elapsed_s = to_s(hi - lo);
  }
  res.mops = res.elapsed_s > 0.0
                 ? static_cast<double>(res.acked_ops) / res.elapsed_s / 1e6
                 : 0.0;

  // Exactly-once expectation for the counters: a survivor's acked faas
  // all stick (rollbacks discard, replay re-applies). A dead client's
  // acked faa survives only when it sits inside every checkpoint the
  // survivors ever rolled back to after that client died — i.e. its
  // epoch is below the smallest restart label among recoveries that
  // declared the client dead (nobody replays a dead client's log).
  for (int r = 0; r < p; ++r) {
    const auto i = static_cast<std::size_t>(r);
    int cutoff = std::numeric_limits<int>::max();
    if (!alive[i]) {
      for (const RecoveryEvent& ev : res.events) {
        if (std::find(ev.dead_ranks.begin(), ev.dead_ranks.end(), r) !=
            ev.dead_ranks.end()) {
          cutoff = std::min(cutoff, ev.restart_label);
        }
      }
    }
    for (const FaaRec& f : faa_acked[i]) {
      if (f.epoch < cutoff) {
        res.faa_expected += static_cast<std::uint64_t>(f.delta);
      }
    }
  }
  return res;
}

// ---------------------------------------------------------------------------
// Metrics export
// ---------------------------------------------------------------------------

void export_metrics(obs::Registry& reg, const KvResult& r,
                    const obs::Labels& labels) {
  reg.set_counter("kvs.acked_ops", r.acked_ops, labels);
  reg.set_gauge("kvs.throughput_mops", r.mops, labels);
  reg.set_gauge("kvs.elapsed_s", r.elapsed_s, labels);
  reg.set_counter("kvs.gets", r.total.gets, labels);
  reg.set_counter("kvs.puts", r.total.puts, labels);
  reg.set_counter("kvs.faas", r.total.faas, labels);
  reg.set_counter("kvs.get_misses", r.total.get_misses, labels);
  reg.set_counter("kvs.cas_lost", r.total.cas_lost, labels);
  reg.set_counter("kvs.version_retries", r.total.version_retries, labels);
  reg.set_counter("kvs.probe_steps", r.total.probe_steps, labels);
  reg.set_counter("kvs.torn_reads", r.torn_reads, labels);
  reg.set_counter("kvs.replayed_ops", r.total.replayed_ops, labels);
  reg.set_counter("kvs.lost_acked_writes", r.lost_acked, labels);
  reg.set_counter("kvs.faa_expected", r.faa_expected, labels);
  reg.set_counter("kvs.faa_applied", r.faa_applied, labels);
  reg.set_counter("kvs.survivors", static_cast<std::uint64_t>(r.survivors),
                  labels);
  reg.set_counter("kvs.recoveries", static_cast<std::uint64_t>(r.recoveries),
                  labels);
  reg.set_counter("kvs.checkpoints", r.checkpoints, labels);

  const std::pair<const char*, const util::Histogram*> ops[] = {
      {"get", &r.total.get_lat},
      {"put", &r.total.put_lat},
      {"faa", &r.total.faa_lat},
  };
  for (const auto& [name, hist] : ops) {
    if (hist->total() == 0) continue;
    obs::Labels with_op = labels;
    with_op.emplace_back("op", name);
    reg.set_gauge("kvs.lat_p50_us", static_cast<double>(hist->quantile(0.5)) / 1e3,
                  with_op);
    reg.set_gauge("kvs.lat_p99_us", static_cast<double>(hist->quantile(0.99)) / 1e3,
                  with_op);
    reg.set_gauge("kvs.lat_p999_us",
                  static_cast<double>(hist->quantile(0.999)) / 1e3, with_op);
    reg.set_gauge("kvs.lat_mean_us", hist->mean() / 1e3, with_op);
    reg.set_gauge("kvs.lat_max_us", static_cast<double>(hist->max()) / 1e3,
                  with_op);
    reg.set_histogram("kvs.latency_ns", *hist, with_op);
  }
}

}  // namespace pgasq::kvs
