// Interconnect timing models.
//
// A NetworkModel answers one question: if a message of `bytes` payload
// leaves node `src` for node `dst` starting at virtual time `start`,
// when has it drained from the source (link injection complete) and
// when does its last byte arrive at the destination NIC? Two models
// are provided:
//
//  * LogGPModel — stateless LogGP with torus hop latency; matches the
//    analytical model of S III-C (Eqs 7-9).
//  * LinkContentionModel — additionally reserves every directed link
//    on the deterministic dimension-order route, modelling cut-through
//    (wormhole) flow with per-link bandwidth occupancy; used for the
//    network-model sensitivity ablation.
//
// Intra-node transfers take a shared-memory path in both models.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "fault/fault.hpp"
#include "flow/flow.hpp"
#include "noc/parameters.hpp"
#include "obs/link_usage.hpp"
#include "topo/torus.hpp"
#include "util/time_types.hpp"

namespace pgasq::obs {
class CritPath;
class Timeline;
}  // namespace pgasq::obs

namespace pgasq::noc {

/// Timing result of one message transfer.
struct Transfer {
  Time inject_done;  ///< source link drained; safe for local-completion
  Time arrive;       ///< last byte at destination NIC
  /// Fault injection only: the packet was lost in the fabric. The times
  /// above are where it *would* have drained/arrived; the pami layer's
  /// ack/timeout/retransmit protocol decides what happens next.
  bool dropped = false;
  /// Fault injection only: the packet arrives with flipped payload bits.
  /// `corrupt_token` seeds the deterministic flip pattern
  /// (fault::apply_bit_flips). Whether the flip is caught (CRC verify +
  /// NACK) or lands in memory is the integrity layer's call.
  bool corrupted = false;
  std::uint64_t corrupt_token = 0;
  /// --- Injection diagnostics (obs::CritPath segment attribution) ---
  /// When source-link serialization actually began (after credit gate
  /// and NIC-busy wait); 0 for shared-memory copies.
  Time inject_begin = 0;
  /// Nominal (undegraded) serialization cost of this message; the
  /// excess drain time of a degraded link lands in the wire segment.
  Time ser_nominal = 0;
  /// Densest link on the route: the worst-degraded link under faults,
  /// the longest-waited link under contention, else the first hop.
  /// -1 when no torus link was crossed (shm) or no route was computed.
  int bottleneck_link = -1;
  /// Worst per-link capacity factor on the path (< 1.0 means the
  /// route crossed a degraded/faulted link).
  double route_capacity = 1.0;
};

/// Options for a single transfer.
struct TransferOptions {
  /// Control packets (get requests, AM headers without payload) are
  /// always packet-aligned and never pay the alignment penalty.
  bool is_control = false;
  /// Application payload bytes eligible for silent corruption. The
  /// link-level CRC protects each packet's first kProtectedPrefix bytes
  /// (headers, acks, barrier words, control packets), so only transfers
  /// whose payload spills past it can corrupt. Default 0 = fully
  /// protected; the pami layer sets it for put/get/AM/typed payloads.
  std::uint64_t payload_bytes = 0;
};

/// Bytes per packet under the link-level CRC's protection: flips only
/// ever land at payload offsets >= this (see TransferOptions).
inline constexpr std::uint64_t kProtectedPrefix = 48;

class NetworkModel {
 public:
  NetworkModel(const topo::Torus5D& torus, const BgqParameters& params)
      : torus_(torus), params_(params) {}
  virtual ~NetworkModel() = default;

  NetworkModel(const NetworkModel&) = delete;
  NetworkModel& operator=(const NetworkModel&) = delete;

  /// Times a payload transfer of `bytes` from `src` to `dst` nodes.
  virtual Transfer transfer(int src_node, int dst_node, std::uint64_t bytes,
                            Time start, TransferOptions opts = {}) = 0;

  /// Times a fixed-size control packet (descriptor, get request, ack).
  Transfer control(int src_node, int dst_node, Time start) {
    return transfer(src_node, dst_node, params_.control_packet_bytes, start,
                    TransferOptions{.is_control = true});
  }

  const topo::Torus5D& torus() const { return torus_; }
  const BgqParameters& params() const { return params_; }

  /// Attaches (or detaches, with nullptr) a fault injector. Not owned.
  /// With no injector every fault hook is a single null check and the
  /// timings are bit-identical to the fault-free model.
  void set_injector(fault::Injector* injector) { injector_ = injector; }
  fault::Injector* injector() const { return injector_; }

  /// Attaches (or detaches, with nullptr) per-link byte accounting.
  /// Not owned. Pure observation behind a null check: recording never
  /// feeds back into timing, so traced and untraced runs are
  /// virtual-time identical. injected_bytes() counts each *wire*
  /// transfer once (intra-node shared-memory copies and dead-source
  /// packets traverse no torus link and are excluded, unlike
  /// bytes_sent() which counts every transfer() call).
  void set_link_usage(obs::LinkUsage* usage) { link_usage_ = usage; }
  obs::LinkUsage* link_usage() const { return link_usage_; }

  /// Attaches (or detaches, with nullptr) the overload controller's
  /// per-(src,dst) credit ledger. Not owned. With no controller the
  /// credit hook is a single null check and timings are bit-identical
  /// to a build without flow control. Control packets and intra-node
  /// shared-memory copies are exempt (they carry the ack/reply traffic
  /// that releases credits, so gating them could deadlock).
  void set_flow(flow::Controller* fc) { flow_ = fc; }
  flow::Controller* flow() const { return flow_; }

  /// Attaches (or detaches, with nullptr) continuous telemetry
  /// (obs.timeline): per-source-node injection backlog plus, in the
  /// contention model, per-link queue-wait series. Pure observation
  /// behind a null check, like set_link_usage.
  void set_timeline(obs::Timeline* timeline);
  obs::Timeline* timeline() const { return timeline_; }

  /// Attaches (or detaches, with nullptr) critical-path attribution.
  /// The models never call into it — a non-null pointer just makes
  /// them compute the route when timing alone would not need it and
  /// stamp the Transfer diagnostics (bottleneck_link, route_capacity);
  /// the pami layer records the legs.
  void set_critpath(obs::CritPath* cp) { critpath_ = cp; }
  obs::CritPath* critpath() const { return critpath_; }

  /// Total messages / bytes injected (diagnostics & tests).
  std::uint64_t messages_sent() const { return messages_; }
  std::uint64_t bytes_sent() const { return bytes_; }

 protected:
  Time serialization(std::uint64_t bytes, TransferOptions opts) const;
  Time flight(int src_node, int dst_node) const;
  Transfer shm_transfer(std::uint64_t bytes, Time start) const;
  /// Rolls packet loss and (for delivered packets whose payload spills
  /// past the protected prefix) silent corruption for a transfer
  /// injected at `at`.
  void roll_fate(Transfer& t, Time at, const TransferOptions& opts);
  /// True when the transfer touches a fail-stopped node at `at`.
  bool dead_endpoint(int src_node, int dst_node, Time at) const {
    return injector_ != nullptr && injector_->has_node_fails() &&
           (injector_->node_dead(src_node, at) || injector_->node_dead(dst_node, at));
  }
  /// Black hole: a packet to/from a dead node is never delivered. The
  /// returned times are where it would have drained/arrived, so the
  /// pami retransmit protocol can run its ack timeouts and the health
  /// monitor can convert the missed acks into a death declaration.
  Transfer dead_node_transfer(int src_node, int dst_node, std::uint64_t bytes,
                              Time start, TransferOptions opts);
  /// Route under active link faults: dimension-order when healthy,
  /// shortest route-around otherwise (recorded in the fault stats);
  /// `min_capacity` receives the worst degradation factor on the path.
  std::vector<topo::Link> faulted_route(int src_node, int dst_node, Time at,
                                        double* min_capacity);
  void account(std::uint64_t bytes) {
    ++messages_;
    bytes_ += bytes;
  }

  /// Serializes message injection through the source node's DMA/NIC:
  /// a message cannot start draining before earlier messages from the
  /// same node have drained. This yields PAMI's pairwise ordering
  /// guarantee under deterministic routing (S III-A4). Returns the
  /// actual serialization start time and records the new busy horizon.
  Time claim_injection(int src_node, Time start, Time serialization_time);

  const topo::Torus5D& torus_;
  BgqParameters params_;
  fault::Injector* injector_ = nullptr;
  obs::LinkUsage* link_usage_ = nullptr;
  flow::Controller* flow_ = nullptr;
  obs::Timeline* timeline_ = nullptr;
  obs::CritPath* critpath_ = nullptr;

  /// Timeline gauge for a link's queue wait, registered on first
  /// touch (contention model only).
  std::uint32_t link_wait_series(int link_index);

  /// Credit gate for one wire injection: delays `start` until the
  /// (src,dst) window holds a free credit and records the transfer's
  /// delivery horizon. Call after the Transfer times are final.
  Time flow_acquire(int src_node, int dst_node, Time start,
                    const TransferOptions& opts) {
    if (flow_ == nullptr || opts.is_control) return start;
    return flow_->acquire(src_node, dst_node, start);
  }
  void flow_release(int src_node, int dst_node, Time arrive,
                    const TransferOptions& opts) {
    if (flow_ == nullptr || opts.is_control) return;
    flow_->release(src_node, dst_node, arrive);
  }

 private:
  std::uint64_t messages_ = 0;
  std::uint64_t bytes_ = 0;
  std::vector<Time> nic_free_;
  std::uint32_t tl_backlog_ = 0xffffffffu;  // obs::Timeline::kNone
  std::vector<std::uint32_t> tl_node_backlog_;
  std::vector<std::uint32_t> tl_link_wait_;
};

/// Stateless LogGP + hop-count model.
class LogGPModel final : public NetworkModel {
 public:
  using NetworkModel::NetworkModel;
  Transfer transfer(int src_node, int dst_node, std::uint64_t bytes, Time start,
                    TransferOptions opts = {}) override;
};

/// Per-link occupancy model: every directed link on the route is busy
/// for the message serialization time; the head advances one
/// hop_latency per link and additionally waits for busy links.
class LinkContentionModel final : public NetworkModel {
 public:
  LinkContentionModel(const topo::Torus5D& torus, const BgqParameters& params)
      : NetworkModel(torus, params),
        link_free_(static_cast<std::size_t>(torus.num_links()), 0) {}

  Transfer transfer(int src_node, int dst_node, std::uint64_t bytes, Time start,
                    TransferOptions opts = {}) override;

  /// Virtual time the given link becomes idle (tests / diagnostics).
  Time link_free_at(int link_index) const { return link_free_.at(static_cast<std::size_t>(link_index)); }

 private:
  std::vector<Time> link_free_;
};

/// Factory keyed by name ("loggp" | "contention").
std::unique_ptr<NetworkModel> make_network_model(const std::string& name,
                                                 const topo::Torus5D& torus,
                                                 const BgqParameters& params);

}  // namespace pgasq::noc
