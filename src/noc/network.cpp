#include "noc/network.hpp"

#include <algorithm>
#include <array>
#include <sstream>
#include <string>

#include "obs/timeline.hpp"
#include "util/error.hpp"

namespace pgasq::noc {

void NetworkModel::set_timeline(obs::Timeline* timeline) {
  timeline_ = timeline;
  if (timeline_ != nullptr) {
    tl_backlog_ = timeline_->series("noc.inject_backlog_us",
                                    obs::Timeline::Kind::kGauge);
    tl_node_backlog_.assign(static_cast<std::size_t>(torus_.num_nodes()),
                            obs::Timeline::kNone - 1);
    tl_link_wait_.assign(static_cast<std::size_t>(torus_.num_links()),
                         obs::Timeline::kNone - 1);
  } else {
    tl_backlog_ = obs::Timeline::kNone;
    tl_node_backlog_.clear();
    tl_link_wait_.clear();
  }
}

std::uint32_t NetworkModel::link_wait_series(int link_index) {
  auto& id = tl_link_wait_[static_cast<std::size_t>(link_index)];
  if (id == obs::Timeline::kNone - 1) {
    // Same name format as LinkUsage::link_name, prefixed.
    constexpr char kDimNames[topo::kDims + 1] = "ABCDE";
    const int node = link_index / (topo::kDims * 2);
    const int rest = link_index % (topo::kDims * 2);
    std::ostringstream os;
    os << "noc.link_wait_us.n" << node << ' ' << kDimNames[rest / 2]
       << ((rest % 2) ? '-' : '+');
    id = timeline_->series(os.str(), obs::Timeline::Kind::kGauge);
  }
  return id;
}

Time NetworkModel::serialization(std::uint64_t bytes, TransferOptions opts) const {
  Time t = from_ns(params_.g_ns_per_byte * static_cast<double>(bytes));
  if (!opts.is_control && bytes < params_.aligned_threshold_bytes) {
    t += params_.unaligned_penalty;
  }
  return t;
}

Time NetworkModel::flight(int src_node, int dst_node) const {
  const int hops = torus_.hop_distance(src_node, dst_node);
  return params_.wire_base_latency + hops * params_.hop_latency;
}

Time NetworkModel::claim_injection(int src_node, Time start, Time serialization_time) {
  if (nic_free_.empty()) {
    nic_free_.assign(static_cast<std::size_t>(torus_.num_nodes()), 0);
  }
  auto& free_at = nic_free_[static_cast<std::size_t>(src_node)];
  // Note: responses computed ahead of wall-time (e.g. an rget's data
  // leg, timed at initiation) reserve the NIC in *call* order, an
  // approximation documented in DESIGN.md.
  const Time begin = std::max(start, free_at);
  if (timeline_ != nullptr) {
    // Injection-queue depth: how far the NIC's busy horizon is ahead
    // of this message's requested start.
    const double backlog_us = to_us(std::max<Time>(0, free_at - start));
    timeline_->sample(tl_backlog_, start, backlog_us);
    auto& id = tl_node_backlog_[static_cast<std::size_t>(src_node)];
    if (id == obs::Timeline::kNone - 1) {
      id = timeline_->series("noc.inject_backlog_us.n" +
                                 std::to_string(src_node),
                             obs::Timeline::Kind::kGauge);
    }
    timeline_->sample(id, start, backlog_us);
  }
  free_at = begin + serialization_time;
  return begin;
}

Transfer NetworkModel::shm_transfer(std::uint64_t bytes, Time start) const {
  const Time copy = from_ns(params_.shm_g_ns_per_byte * static_cast<double>(bytes));
  const Time done = start + params_.shm_latency + copy;
  Transfer t{done, done};
  t.inject_begin = start;  // no torus link: the whole cost is "wire"
  return t;
}

void NetworkModel::roll_fate(Transfer& t, Time at, const TransferOptions& opts) {
  if (injector_ == nullptr) return;
  t.dropped = injector_->roll_packet(at) != fault::PacketFate::kDelivered;
  // Corruption is a property of *delivered* packets, and only of those
  // whose payload spills past the link-CRC-protected prefix: control
  // packets, acks, barrier words and slot headers never flip.
  if (!t.dropped && opts.payload_bytes > kProtectedPrefix) {
    t.corrupt_token = injector_->roll_corrupt(at);
    t.corrupted = t.corrupt_token != 0;
  }
}

Transfer NetworkModel::dead_node_transfer(int src_node, int dst_node,
                                          std::uint64_t bytes, Time start,
                                          TransferOptions opts) {
  // A live source still serializes the doomed packet (and occupies its
  // NIC); a dead source injects nothing but the would-be times keep the
  // caller's timeout arithmetic uniform.
  const Time ser = serialization(bytes, opts);
  const Time begin = injector_->node_dead(src_node, start)
                         ? start
                         : claim_injection(src_node, start, ser);
  const Time inject_done = begin + ser;
  Transfer t{inject_done, inject_done + flight(src_node, dst_node)};
  t.dropped = true;
  t.inject_begin = begin;
  t.ser_nominal = ser;
  return t;
}

std::vector<topo::Link> NetworkModel::faulted_route(int src_node, int dst_node,
                                                    Time at, double* min_capacity) {
  auto route = torus_.route_avoiding(src_node, dst_node, [&](const topo::Link& l) {
    // A fail-stopped node takes all ten of its links with it: through
    // traffic must route around the dead router.
    return injector_->link_blocked(l, at) || injector_->node_dead(l.from_node, at) ||
           injector_->node_dead(l.to_node, at);
  });
  const int nominal = torus_.hop_distance(src_node, dst_node);
  if (route.size() > static_cast<std::size_t>(nominal)) {
    injector_->record_reroute(route.size() - static_cast<std::size_t>(nominal), at);
  }
  double cap = 1.0;
  for (const auto& l : route) cap = std::min(cap, injector_->link_capacity(l, at));
  if (cap < 1.0) injector_->record_degraded_transfer(at);
  *min_capacity = cap;
  return route;
}

Transfer LogGPModel::transfer(int src_node, int dst_node, std::uint64_t bytes,
                              Time start, TransferOptions opts) {
  account(bytes);
  if (dead_endpoint(src_node, dst_node, start)) {
    return dead_node_transfer(src_node, dst_node, bytes, start, opts);
  }
  if (src_node == dst_node) return shm_transfer(bytes, start);
  const Time ser_nominal = serialization(bytes, opts);
  Time ser = ser_nominal;
  Time fly;
  double cap = 1.0;
  std::vector<topo::Link> route;
  if (injector_ != nullptr &&
      (injector_->has_link_faults() || injector_->has_node_fails())) {
    // A failed link stretches the path (dimension-order route-around);
    // a degraded link throttles the end-to-end cut-through stream to
    // the slowest link on the path.
    route = faulted_route(src_node, dst_node, start, &cap);
    fly = params_.wire_base_latency +
          static_cast<Time>(route.size()) * params_.hop_latency;
    if (cap < 1.0) ser = static_cast<Time>(static_cast<double>(ser) / cap);
  } else {
    fly = flight(src_node, dst_node);
    // The stateless model never needs the route for timing; walk it
    // only when someone is watching the links.
    if (link_usage_ != nullptr || critpath_ != nullptr) {
      route = torus_.route(src_node, dst_node);
    }
  }
  // Credit gate: with a full (src,dst) window the injection start is
  // pushed to the earliest outstanding delivery — the software
  // analogue of blocking on a returned torus token.
  const Time gated = flow_acquire(src_node, dst_node, start, opts);
  const Time begin = claim_injection(src_node, gated, ser);
  const Time inject_done = begin + ser;
  if (link_usage_ != nullptr) link_usage_->record_transfer(route, begin, bytes);
  // Cut-through: the head races ahead while the tail serializes, so
  // arrival is serialization + flight, not store-and-forward per hop.
  const Time arrive = inject_done + fly;
  Transfer t{inject_done, arrive};
  t.inject_begin = begin;
  t.ser_nominal = ser_nominal;
  t.route_capacity = cap;
  if (!route.empty()) {
    // Bottleneck: the worst-degraded link under faults, else the first
    // hop (the stateless model has no queueing to disambiguate).
    t.bottleneck_link = torus_.link_index(route.front());
    if (cap < 1.0) {
      for (const auto& l : route) {
        if (injector_->link_capacity(l, start) <= cap) {
          t.bottleneck_link = torus_.link_index(l);
          break;
        }
      }
    }
  }
  roll_fate(t, begin, opts);
  // Dropped transfers release too: the window models the sender-local
  // in-flight budget, and the retransmit will claim a fresh credit.
  flow_release(src_node, dst_node, t.arrive, opts);
  return t;
}

Transfer LinkContentionModel::transfer(int src_node, int dst_node,
                                       std::uint64_t bytes, Time start,
                                       TransferOptions opts) {
  account(bytes);
  if (dead_endpoint(src_node, dst_node, start)) {
    return dead_node_transfer(src_node, dst_node, bytes, start, opts);
  }
  if (src_node == dst_node) return shm_transfer(bytes, start);
  const Time ser = serialization(bytes, opts);
  // Wormhole approximation: the message head moves link by link,
  // stalling behind earlier messages; each traversed link is then
  // occupied for the full serialization time (the worm's body).
  Time head = claim_injection(
      src_node, flow_acquire(src_node, dst_node, start, opts), ser);
  Time inject_done = start;
  std::vector<topo::Link> route;
  const bool faulty = injector_ != nullptr &&
                      (injector_->has_link_faults() || injector_->has_node_fails());
  double path_capacity = 1.0;
  if (faulty) {
    route = faulted_route(src_node, dst_node, start, &path_capacity);
  } else {
    std::array<int, topo::kDims> order{0, 1, 2, 3, 4};
    if (params_.dynamic_routing) {
      // Rotate the dimension order per message — a cheap, deterministic
      // stand-in for adaptive minimal routing.
      const int shift = static_cast<int>(messages_sent() % topo::kDims);
      for (int i = 0; i < topo::kDims; ++i) order[static_cast<std::size_t>(i)] = (i + shift) % topo::kDims;
    }
    route = torus_.route_ordered(src_node, dst_node, order);
  }
  PGASQ_CHECK(!route.empty());
  if (link_usage_ != nullptr) link_usage_->note_transfer(bytes);
  Time inject_begin = start;
  int bottleneck = torus_.link_index(route.front());
  Time worst_wait = -1;
  for (std::size_t i = 0; i < route.size(); ++i) {
    const auto& link = route[i];
    const int link_idx = torus_.link_index(link);
    auto& free_at = link_free_[static_cast<std::size_t>(link_idx)];
    // A degraded link drains the worm's body proportionally slower.
    Time occupy = ser;
    if (faulty) {
      const double cap = injector_->link_capacity(link, start);
      if (cap < 1.0) occupy = static_cast<Time>(static_cast<double>(ser) / cap);
    }
    const Time waited = free_at > head ? free_at - head : 0;
    if (waited > 0) {
      if (link_usage_ != nullptr) link_usage_->record_wait(link, head, waited);
      if (timeline_ != nullptr) {
        timeline_->sample(link_wait_series(link_idx), head, to_us(waited));
      }
    }
    // The bottleneck is the link the head queued longest behind (ties
    // to the earliest hop); a clean pass leaves the first hop.
    if (waited > worst_wait) {
      worst_wait = waited;
      bottleneck = link_idx;
    }
    const Time advanced = std::max(head, free_at);
    if (i == 0) inject_begin = advanced;
    head = advanced + params_.hop_latency;
    free_at = head + occupy;
    if (link_usage_ != nullptr) link_usage_->record_hop(link, head, bytes);
    if (i == 0) inject_done = head + occupy;  // source link drained
  }
  const Time tail = faulty && path_capacity < 1.0
                        ? static_cast<Time>(static_cast<double>(ser) / path_capacity)
                        : ser;
  const Time arrive = head + tail + params_.wire_base_latency;
  Transfer t{inject_done, arrive};
  t.inject_begin = inject_begin;
  t.ser_nominal = ser;
  if (worst_wait <= 0 && path_capacity < 1.0) {
    // No queueing, but the path is degraded: blame the slow link.
    for (const auto& l : route) {
      if (injector_->link_capacity(l, start) <= path_capacity) {
        bottleneck = torus_.link_index(l);
        break;
      }
    }
  }
  t.bottleneck_link = bottleneck;
  t.route_capacity = path_capacity;
  roll_fate(t, inject_done, opts);
  flow_release(src_node, dst_node, t.arrive, opts);
  return t;
}

std::unique_ptr<NetworkModel> make_network_model(const std::string& name,
                                                 const topo::Torus5D& torus,
                                                 const BgqParameters& params) {
  if (name == "loggp") return std::make_unique<LogGPModel>(torus, params);
  if (name == "contention") return std::make_unique<LinkContentionModel>(torus, params);
  PGASQ_CHECK(false, << "unknown network model '" << name
                     << "' (expected 'loggp' or 'contention')");
  return nullptr;
}

}  // namespace pgasq::noc
