// Calibrated Blue Gene/Q model parameters.
//
// Every timing and space constant used by the simulation lives here,
// with its provenance. Wire-level quantities come from the paper
// (S IV-A Table II, S IV-B) and from the BG/Q interconnect paper it
// cites (Chen et al., IEEE Micro 2012). Software (CPU) overheads are
// solved so that the simulator reproduces the paper's headline
// measurements:
//   - adjacent-node 16 B get latency  2.89 us   (Fig 3)
//   - adjacent-node 16 B put latency  2.70 us   (Fig 3)
//   - peak put/get bandwidth          1775 MB/s (Fig 4, ~99% of the
//     1.8 GB/s attainable link rate)
//   - bandwidth N_1/2                 ~2 KB     (Fig 6)
//   - per-hop latency increment       ~35 ns    (Fig 7 analysis)
#pragma once

#include <cstdint>

#include "util/time_types.hpp"

namespace pgasq::noc {

struct BgqParameters {
  // --- Torus wire model -------------------------------------------------
  /// Inverse payload bandwidth G. The raw link rate is 2 GB/s and the
  /// attainable rate after protocol overhead is 1.8 GB/s [Chen et al.];
  /// the paper measures 1775 MB/s through the full ARMCI/PAMI stack,
  /// so G is calibrated to that delivered rate.
  double g_ns_per_byte = 1e9 / 1.775e9 / 1e0;  // = 0.56338 ns/B

  /// Peak attainable bandwidth used as the denominator of the
  /// efficiency figures (Fig 6): 1.8 GB/s.
  double peak_bandwidth_bytes_per_s = 1.8e9;

  /// One-way latency added per torus hop (Fig 7: 0.49 us spread over a
  /// max distance of 7 hops round trip => ~35 ns/hop).
  Time hop_latency = from_ns(35);

  /// Fixed one-way NIC + wire latency independent of distance.
  Time wire_base_latency = from_ns(155);

  /// Messages smaller than this are not torus-packet (32 B) aligned
  /// end-to-end and pay `unaligned_penalty` once; this reproduces the
  /// latency drop the paper observes at 256 B (Fig 3).
  std::uint64_t aligned_threshold_bytes = 256;
  Time unaligned_penalty = from_ns(250);

  /// Size of a control packet (get request header, AM header).
  std::uint64_t control_packet_bytes = 64;

  // --- Intra-node (shared memory) path ----------------------------------
  /// One-way latency of the shared-memory path; chosen so a same-node
  /// blocking get (two legs) lands just under the 1-hop torus get.
  Time shm_latency = from_ns(350);
  double shm_g_ns_per_byte = 0.10;  // ~10 GB/s memcpy through L2

  // --- PAMI software (CPU) overheads ------------------------------------
  /// Descriptor build + injection-FIFO write for any RMA/AM initiation
  /// (the LogGP "o" on the source).
  Time o_send = from_ns(1260);
  /// Processing one completion during PAMI_Context_advance.
  Time o_completion = from_ns(950);
  /// NIC signals local drain of a put this long after the last byte
  /// left the injection FIFO (put has only local completion, Fig 3).
  Time o_local_drain = from_ns(190);
  /// Executing an active-message dispatch handler during advance.
  Time o_am_dispatch = from_ns(500);
  /// Read-modify-write handler body (fetch-and-add on an 8-byte word).
  Time o_rmw_service = from_ns(300);
  /// One advance() call that finds nothing to do.
  Time advance_poll_cost = from_ns(80);
  /// PAMI typed (data-type) transfers: gather/scatter engine walks the
  /// type map — per-element descriptor cost at the source plus a wire
  /// efficiency factor relative to a contiguous message.
  Time typed_element_cost = from_ns(30);
  double typed_wire_factor = 1.15;
  /// Latency for the asynchronous progress thread (an SMT thread
  /// parked in the progress loop) to notice new work.
  Time async_wake_latency = from_ns(500);
  /// Context lock acquire/release cost (uncontended) when two threads
  /// share one context (rho = 1, S III-D).
  Time context_lock_cost = from_ns(120);

  /// Pack/unpack rate for the legacy strided protocol and accumulate
  /// payload staging (A2-core memcpy through L2, ~3.3 GB/s).
  double pack_ns_per_byte = 0.30;
  /// Accumulate apply rate (daxpy on the A2 core).
  double acc_apply_ns_per_byte = 0.25;
  /// BG/Q integrated collective/barrier network: release latency after
  /// the last arrival (S II-A: barrier network is in-fabric).
  Time barrier_latency = from_us(2);

  // --- Object creation costs (paper Table II) ---------------------------
  Time endpoint_create = from_ns(300);        // beta  = 0.3 us
  Time memregion_create = from_us(43);        // delta = 43 us
  Time context_create = from_us(4046);        // rho time: 3821-4271 us
  Time client_create = from_us(1200);

  // --- Space accounting (paper Table II) ---------------------------------
  std::uint64_t endpoint_bytes = 4;    // alpha
  std::uint64_t memregion_bytes = 8;   // gamma
  /// Context space "varies" in the paper; we model the per-context
  /// injection/reception FIFO footprint.
  std::uint64_t context_bytes = 16 * 1024;  // epsilon (modeled)

  /// Emulate a NIC with hardware fetch-and-add (Cray Gemini /
  /// InfiniBand style). BG/Q has none (S III-D); the flag exists for
  /// the paper's "future hardware" discussion (bench_abl_hw_amo).
  bool hardware_amo = false;

  /// Dynamic (adaptive) routing in the link-contention model: each
  /// message takes a minimal path with a rotated dimension order,
  /// spreading hot-spot traffic over more links. BG/Q hardware
  /// supports it but the paper-era software exposed deterministic
  /// routing only (S II-A, footnote 1) — and PAMI's pairwise ordering
  /// guarantee does NOT hold under dynamic routing, so this is for
  /// network-level experiments, not for running the ARMCI stack.
  bool dynamic_routing = false;
  /// Service time of the emulated NIC AMO unit.
  Time hw_amo_service = from_ns(120);

  static BgqParameters defaults() { return BgqParameters{}; }
};

}  // namespace pgasq::noc
