#include "core/world.hpp"

#include "core/comm.hpp"
#include "util/error.hpp"

namespace pgasq::armci {

World::World(WorldConfig config)
    : config_(std::move(config)), machine_(config_.machine) {
  final_stats_.resize(static_cast<std::size_t>(machine_.num_ranks()));
  comms_.resize(static_cast<std::size_t>(machine_.num_ranks()), nullptr);
}

World::~World() = default;

void World::spmd(std::function<void(Comm&)> body) {
  PGASQ_CHECK(!spmd_ran_, << "a World hosts exactly one SPMD program; "
                             "construct a new World for another run");
  spmd_ran_ = true;
  machine_.run([this, &body](pami::Process& process) {
    Comm comm(*this, process);
    comms_[static_cast<std::size_t>(process.rank())] = &comm;
    comm.init();
    body(comm);
    comm.finalize();
    final_stats_[static_cast<std::size_t>(process.rank())] = comm.stats();
    comms_[static_cast<std::size_t>(process.rank())] = nullptr;
  });
  elapsed_ = machine_.engine().now();
}

const CommStats& World::stats(RankId rank) const {
  PGASQ_CHECK(rank >= 0 && rank < machine_.num_ranks());
  return final_stats_[static_cast<std::size_t>(rank)];
}

CommStats World::total_stats() const {
  CommStats total;
  for (const auto& s : final_stats_) total.merge(s);
  return total;
}

GlobalMem& World::ensure_heap(std::uint64_t seq, std::size_t bytes_per_rank) {
  if (heaps_.size() <= seq) heaps_.resize(seq + 1);
  auto& slot = heaps_[seq];
  if (!slot) {
    slot = std::make_unique<GlobalMem>(next_mem_id_++, machine_.num_ranks(),
                                       bytes_per_rank);
  }
  PGASQ_CHECK(slot->bytes_per_rank() == bytes_per_rank,
              << "collective allocation size mismatch across ranks: " << bytes_per_rank
              << " vs " << slot->bytes_per_rank());
  return *slot;
}

}  // namespace pgasq::armci
