#include "core/world.hpp"

#include <memory>

#include "core/comm.hpp"
#include "ft/liveness.hpp"
#include "util/error.hpp"

namespace pgasq::armci {

World::World(WorldConfig config)
    : config_(std::move(config)), machine_(config_.machine) {
  final_stats_.resize(static_cast<std::size_t>(machine_.num_ranks()));
  comms_.resize(static_cast<std::size_t>(machine_.num_ranks()), nullptr);
}

World::~World() = default;

void World::spmd(std::function<void(Comm&)> body) {
  PGASQ_CHECK(!spmd_ran_, << "a World hosts exactly one SPMD program; "
                             "construct a new World for another run");
  spmd_ran_ = true;
  if (machine_.monitor() != nullptr) start_heartbeat();
  machine_.run([this, &body](pami::Process& process) {
    Comm comm(*this, process);
    comms_[static_cast<std::size_t>(process.rank())] = &comm;
    comm.init();
    body(comm);
    comm.finalize();
    final_stats_[static_cast<std::size_t>(process.rank())] = comm.stats();
    comms_[static_cast<std::size_t>(process.rank())] = nullptr;
  });
  elapsed_ = machine_.engine().now();
}

void World::start_heartbeat() {
  ft::HealthMonitor* mon = machine_.monitor();
  // Declaration invalidates any in-flight hardware-barrier rendezvous:
  // dead ranks may be counted in `arrived`, and the live target just
  // shrank. Survivors blocked in that barrier unwind via ft_check and
  // re-arrive after recovery, so resetting the count is safe.
  mon->add_epoch_listener([this] {
    barrier_.arrived = 0;
    for (Comm* c : comms_) {
      if (c != nullptr) c->ft_poke();
    }
  });
  // The heartbeat tick: keeps virtual time advancing while a scheduled
  // death has not been declared yet (every application fiber may be
  // parked on work that died with the node), probes for silent nodes,
  // and wakes parked fibers so they observe epoch changes. Stops once
  // every death is declared and every surviving rank acknowledged the
  // epoch — or when the program finished — so the run still drains.
  sim::Engine& eng = machine_.engine();
  const Time period = mon->config().heartbeat_period;
  // The tick closure lives in the World (not in a self-capturing
  // shared_ptr — that would be a retain cycle): each scheduled copy
  // only borrows `this`, which outlives the engine run.
  heartbeat_tick_ = [this, mon, &eng, period] {
    bool any_comm = false;
    bool all_acked = true;
    for (Comm* c : comms_) {
      if (c == nullptr) continue;
      any_comm = true;
      if (!c->ft_failed() && c->ft_epoch_acked() != mon->epoch()) all_acked = false;
    }
    if (!any_comm) return;  // ranks all finished; let the engine drain
    mon->probe(eng.now());
    for (Comm* c : comms_) {
      if (c != nullptr) c->ft_poke();
    }
    if (mon->deaths_pending() || !all_acked) {
      eng.schedule_after(period, heartbeat_tick_);
    }
  };
  eng.schedule_after(period, heartbeat_tick_);
}

const CommStats& World::stats(RankId rank) const {
  PGASQ_CHECK(rank >= 0 && rank < machine_.num_ranks());
  return final_stats_[static_cast<std::size_t>(rank)];
}

CommStats World::total_stats() const {
  CommStats total;
  for (const auto& s : final_stats_) total.merge(s);
  return total;
}

GlobalMem& World::ensure_heap(std::uint64_t seq, std::size_t bytes_per_rank) {
  if (heaps_.size() <= seq) heaps_.resize(seq + 1);
  auto& slot = heaps_[seq];
  if (!slot) {
    slot = std::make_unique<GlobalMem>(next_mem_id_++, machine_.num_ranks(),
                                       bytes_per_rank);
  }
  PGASQ_CHECK(slot->bytes_per_rank() == bytes_per_rank,
              << "collective allocation size mismatch across ranks: " << bytes_per_rank
              << " vs " << slot->bytes_per_rank());
  return *slot;
}

}  // namespace pgasq::armci
