#include "core/report_json.hpp"

#include <fstream>

#include "fault/fault.hpp"
#include "fault/integrity.hpp"
#include "flow/flow.hpp"
#include "ft/liveness.hpp"
#include "util/error.hpp"

namespace pgasq::armci {

namespace {

double us(Time t) { return to_us(t); }

void fill_comm(obs::Registry& reg, const CommStats& s) {
  reg.set_counter("armci.puts", s.puts);
  reg.set_counter("armci.gets", s.gets);
  reg.set_counter("armci.accs", s.accs);
  reg.set_counter("armci.rmws", s.rmws);
  reg.set_counter("armci.strided_puts", s.strided_puts);
  reg.set_counter("armci.strided_gets", s.strided_gets);
  reg.set_counter("armci.strided_accs", s.strided_accs);
  reg.set_counter("armci.rdma_puts", s.rdma_puts);
  reg.set_counter("armci.rdma_gets", s.rdma_gets);
  reg.set_counter("armci.fallback_puts", s.fallback_puts);
  reg.set_counter("armci.fallback_gets", s.fallback_gets);
  reg.set_counter("armci.typed_ops", s.typed_ops);
  reg.set_counter("armci.zero_copy_chunks", s.zero_copy_chunks);
  reg.set_counter("armci.packed_ops", s.packed_ops);
  reg.set_counter("armci.bytes_put", s.bytes_put);
  reg.set_counter("armci.bytes_got", s.bytes_got);
  reg.set_counter("armci.bytes_acc", s.bytes_acc);
  reg.set_counter("armci.region_cache_hits", s.region_cache_hits);
  reg.set_counter("armci.region_cache_misses", s.region_cache_misses);
  reg.set_counter("armci.region_queries_sent", s.region_queries_sent);
  reg.set_counter("armci.fence_calls", s.fence_calls);
  reg.set_counter("armci.forced_fences", s.forced_fences);
  reg.set_counter("armci.endpoints_created", s.endpoints_created);
  reg.set_counter("armci.retransmits", s.retransmits);
  reg.set_gauge("armci.retransmit_backoff_us", us(s.retransmit_backoff));
  reg.set_counter("armci.progress_stalls", s.progress_stalls);
  reg.set_gauge("armci.progress_stall_us", us(s.progress_stall_time));
  reg.set_gauge("armci.time_in_get_us", us(s.time_in_get));
  reg.set_gauge("armci.time_in_put_us", us(s.time_in_put));
  reg.set_gauge("armci.time_in_acc_us", us(s.time_in_acc));
  reg.set_gauge("armci.time_in_rmw_us", us(s.time_in_rmw));
  reg.set_gauge("armci.time_in_fence_us", us(s.time_in_fence));
  reg.set_gauge("armci.time_in_barrier_us", us(s.time_in_barrier));
  reg.set_gauge("armci.time_in_wait_us", us(s.time_in_wait));
  reg.set_histogram("armci.put_sizes", s.put_sizes);
  reg.set_histogram("armci.get_sizes", s.get_sizes);
  reg.set_histogram("armci.acc_sizes", s.acc_sizes);
}

void fill_coll(obs::Registry& reg, const CollStats& c) {
  if (c.total_ops() == 0) return;
  for (int op = 0; op < CollStats::kOps; ++op) {
    for (int a = 0; a < CollStats::kAlgos; ++a) {
      if (c.count[op][a] == 0) continue;
      const obs::Labels labels{{"op", kCollOpNames[op]},
                               {"algo", kCollAlgoNames[a]}};
      reg.set_counter("coll.ops", c.count[op][a], labels);
      reg.set_counter("coll.bytes", c.bytes[op][a], labels);
      reg.set_gauge("coll.time_us", us(c.time[op][a]), labels);
    }
  }
  reg.set_counter("coll.scratch_reallocs", c.scratch_reallocs);
}

/// Process-group collectives (src/grp), one label set per group.
void fill_group_coll(obs::Registry& reg, const std::string& group,
                     const CollStats& c) {
  if (c.total_ops() == 0) return;
  for (int op = 0; op < CollStats::kOps; ++op) {
    for (int a = 0; a < CollStats::kAlgos; ++a) {
      if (c.count[op][a] == 0) continue;
      const obs::Labels labels{{"group", group},
                               {"op", kCollOpNames[op]},
                               {"algo", kCollAlgoNames[a]}};
      reg.set_counter("grp.coll.ops", c.count[op][a], labels);
      reg.set_counter("grp.coll.bytes", c.bytes[op][a], labels);
      reg.set_gauge("grp.coll.time_us", us(c.time[op][a]), labels);
    }
  }
}

void fill_fault(obs::Registry& reg, const fault::FaultStats& f) {
  reg.set_counter("fault.packets_dropped", f.packets_dropped);
  reg.set_counter("fault.packets_corrupted", f.packets_corrupted);
  reg.set_counter("fault.retransmits", f.retransmits);
  reg.set_gauge("fault.backoff_us", us(f.backoff_time));
  reg.set_counter("fault.reroutes", f.reroutes);
  reg.set_counter("fault.rerouted_extra_hops", f.rerouted_extra_hops);
  reg.set_counter("fault.degraded_transfers", f.degraded_transfers);
  reg.set_counter("fault.progress_stalls", f.progress_stalls);
  reg.set_gauge("fault.stall_us", us(f.stall_time));
}

/// End-to-end integrity metrics. flips_injected mirrors the injector's
/// corruption count so the detected == injected invariant is checkable
/// from the integrity.* namespace alone (chaos_soak.py relies on it).
void fill_integrity(obs::Registry& reg, const fault::IntegrityStats& is,
                    std::uint64_t flips_injected) {
  reg.set_counter("integrity.flips_injected", flips_injected);
  reg.set_counter("integrity.flips_detected", is.corruptions_detected);
  reg.set_counter("integrity.crc_checks", is.crc_checks);
  reg.set_counter("integrity.nacks_sent", is.nacks_sent);
  reg.set_counter("integrity.nack_retransmits", is.nack_retransmits);
  reg.set_counter("integrity.echo_crc_acks", is.echo_crc_acks);
  reg.set_counter("integrity.coll_slot_checks", is.coll_slot_checks);
  reg.set_counter("integrity.coll_slot_rejects", is.coll_slot_rejects);
  reg.set_counter("integrity.coll_slot_refetches", is.coll_slot_refetches);
  reg.set_counter("integrity.ckpt_digests_computed", is.ckpt_digests_computed);
  reg.set_counter("integrity.ckpt_digests_validated", is.ckpt_digests_validated);
  reg.set_counter("integrity.ckpt_digest_mismatches", is.ckpt_digest_mismatches);
  reg.set_counter("integrity.ckpt_fallback_restores", is.ckpt_fallback_restores);
}

void fill_flow(obs::Registry& reg, const flow::Controller& fc) {
  const flow::FlowStats& f = fc.stats();
  reg.set_counter("flow.credits", static_cast<std::uint64_t>(
                                      std::max(fc.config().credits, 0)));
  reg.set_counter("flow.credit_stalls", f.credit_stalls);
  reg.set_gauge("flow.credit_stall_us", us(f.credit_stall_time));
  reg.set_counter("flow.expired_server", f.expired_server);
  reg.set_counter("flow.expired_client", f.expired_client);
  reg.set_counter("flow.shed_low_prio", f.shed_low_prio);
  reg.set_counter("flow.shed_high_prio", f.shed_high_prio);
  reg.set_counter("flow.retry_budget_exhausted", f.retry_budget_exhausted);
  if (f.queue_depth.total() > 0) {
    reg.set_histogram("flow.queue_depth", f.queue_depth);
  }
}

void fill_ft(obs::Registry& reg, const ft::FtStats& f) {
  reg.set_counter("ft.detections", f.detections);
  reg.set_gauge("ft.detection_delay_us", us(f.detection_delay));
  reg.set_counter("ft.ranks_lost", f.ranks_lost);
  reg.set_counter("ft.quarantined_ops", f.quarantined_ops);
  reg.set_counter("ft.checkpoints", f.checkpoints);
  reg.set_counter("ft.checkpoint_bytes", f.checkpoint_bytes);
  reg.set_counter("ft.rollbacks", f.rollbacks);
  reg.set_counter("ft.rollback_ranks", f.rollback_ranks);
  reg.set_gauge("ft.recovery_us", us(f.recovery_time));
}

}  // namespace

obs::Registry build_registry(const World& world) {
  obs::Registry reg;
  fill_comm(reg, world.total_stats());
  fill_coll(reg, world.total_stats().coll);
  for (const auto& [label, gc] : world.total_stats().group_coll) {
    fill_group_coll(reg, label, gc);
  }

  const pami::Machine& m = world.machine();
  reg.set_counter("noc.messages_sent", m.network().messages_sent());
  reg.set_counter("noc.bytes_sent", m.network().bytes_sent());

  if (const fault::Injector* inj = m.injector()) fill_fault(reg, inj->stats());
  if (const fault::Integrity* ig = m.integrity()) {
    const fault::Injector* inj = m.injector();
    fill_integrity(reg, ig->stats(),
                   inj != nullptr ? inj->stats().packets_corrupted : 0);
  }
  if (const ft::HealthMonitor* mon = m.monitor()) fill_ft(reg, mon->stats());
  if (const flow::Controller* fc = m.flow()) fill_flow(reg, *fc);

  if (const obs::LinkUsage* lu = m.link_usage()) {
    reg.set_counter("obs.link_transfers", lu->transfers());
    reg.set_counter("obs.link_injected_bytes", lu->injected_bytes());
    reg.set_counter("obs.link_bytes_total", lu->link_bytes_total());
    reg.set_counter("obs.active_links",
                    static_cast<std::uint64_t>(lu->active_links()));
    const double cap =
        1.0 / m.params().g_ns_per_byte;  // peak bytes per ns on one link
    reg.set_gauge("obs.link_max_utilization", lu->max_utilization(cap));
    reg.set_gauge("obs.link_mean_utilization", lu->mean_utilization(cap));
  }
  // Application-published metrics (kvs.* etc.) ride after the
  // runtime-owned sections; empty for workloads that publish nothing.
  reg.merge_from(world.app_metrics());
  return reg;
}

obs::Json render_json_report(const World& world) {
  const pami::Machine& m = world.machine();
  obs::Json doc = obs::Json::object();
  doc.set("schema", obs::Json::string("pgasq.report"));
  doc.set("schema_version", obs::Json::number(kReportSchemaVersion));

  obs::Json machine = obs::Json::object();
  machine.set("ranks", obs::Json::number(world.num_ranks()));
  machine.set("ranks_per_node",
              obs::Json::number(m.config().ranks_per_node));
  machine.set("network_model", obs::Json::string(m.config().network_model));
  machine.set("torus", obs::Json::string(m.torus().to_string()));
  doc.set("machine", std::move(machine));

  doc.set("elapsed_us", obs::Json::number(to_us(world.elapsed())));
  doc.set("metrics", build_registry(world).to_json());

  if (const obs::LinkUsage* lu = m.link_usage()) {
    doc.set("links", lu->to_json());
  }
  if (const obs::Timeline* tl = m.timeline()) {
    doc.set("timeline", tl->to_json());
  }
  if (const obs::CritPath* cp = m.critpath()) {
    doc.set("critpath", cp->to_json());
  }
  if (const sim::TraceRecorder* tr = m.trace()) {
    obs::Json trace = obs::Json::object();
    trace.set("events",
              obs::Json::number(static_cast<std::uint64_t>(tr->event_count())));
    trace.set("max_events",
              obs::Json::number(static_cast<std::uint64_t>(tr->max_events())));
    trace.set("truncated", obs::Json::boolean(tr->truncated()));
    trace.set("aggregate", obs::Json::boolean(tr->aggregate()));
    if (tr->aggregate()) {
      trace.set("aggregate_series",
                obs::Json::number(
                    static_cast<std::uint64_t>(tr->aggregate_series())));
      // Per-(track, event) latency quantiles and instant counts — the
      // same rows the aggregate-mode trace file carries, so report
      // consumers need not parse the trace JSON.
      obs::Json aggs = obs::Json::array();
      obs::Json instants = obs::Json::array();
      for (const auto& row : tr->aggregate_rows()) {
        obs::Json o = obs::Json::object();
        o.set("track", obs::Json::string(row.track));
        o.set("name", obs::Json::string(row.name));
        o.set("count", obs::Json::number(row.count));
        if (row.latency == nullptr) {
          instants.push(std::move(o));
          continue;
        }
        const util::Histogram& h = *row.latency;
        o.set("min_us", obs::Json::number(us(static_cast<Time>(h.min()))));
        o.set("p50_us",
              obs::Json::number(us(static_cast<Time>(h.quantile(0.5)))));
        o.set("p99_us",
              obs::Json::number(us(static_cast<Time>(h.quantile(0.99)))));
        o.set("p999_us",
              obs::Json::number(us(static_cast<Time>(h.quantile(0.999)))));
        o.set("max_us", obs::Json::number(us(static_cast<Time>(h.max()))));
        aggs.push(std::move(o));
      }
      trace.set("aggregates", std::move(aggs));
      trace.set("instants", std::move(instants));
    }
    trace.set("sampled", obs::Json::boolean(tr->sampling()));
    if (tr->sampling()) {
      trace.set("sample_ranks",
                obs::Json::number(m.config().trace_sample_ranks));
    }
    doc.set("trace", std::move(trace));
  }
  return doc;
}

void write_json_report(const World& world, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  PGASQ_CHECK(out.good(), << "cannot open report JSON path " << path);
  out << render_json_report(world).dump() << '\n';
  out.close();
  PGASQ_CHECK(out.good(), << "short write to report JSON path " << path);
}

std::string json_report_path_from_config(const Config& cfg) {
  cfg.reject_unknown("report", {"json_path"});
  return cfg.get_string("report.json_path", "");
}

}  // namespace pgasq::armci
