// Endpoint and remote-memory-region caches (S III-B).
//
// Endpoints: creation is local and cheap (beta = 0.3 us, alpha = 4 B),
// so ARMCI creates one per clique member on first communication and
// caches it for the application lifetime (M_e = zeta * alpha * rho).
//
// Remote memory regions: region metadata for the whole clique would
// cost sigma * zeta * gamma bytes, prohibitive under strong scaling on
// a memory-limited machine, so non-collective regions live in a
// bounded cache with least-frequently-used replacement; misses are
// served by an active message to the owner.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/types.hpp"
#include "pami/memregion.hpp"
#include "pami/types.hpp"

namespace pgasq::armci {

/// Tracks which destination endpoints this rank has created, so beta
/// is paid once per clique member per context.
class EndpointCache {
 public:
  EndpointCache(int num_ranks, int contexts_per_rank);

  /// Returns true if (rank, context) is already cached; otherwise
  /// marks it cached and returns false (caller pays creation cost).
  bool lookup_or_mark(RankId rank, int context);

  /// Number of cached endpoints (the clique size zeta actually touched).
  std::size_t size() const { return created_count_; }

 private:
  int contexts_per_rank_;
  std::vector<std::uint8_t> created_;  // [rank * contexts + ctx]
  std::size_t created_count_ = 0;
};

/// Bounded remote-region cache with LFU (default) or LRU replacement.
class RegionCache {
 public:
  explicit RegionCache(std::size_t capacity,
                       CacheReplacement policy = CacheReplacement::kLfu);

  /// Finds a cached region of `rank` covering [addr, addr+bytes);
  /// bumps its use frequency on hit.
  std::optional<pami::MemoryRegion> lookup(RankId rank, const std::byte* addr,
                                           std::size_t bytes);

  /// Inserts a region, evicting the least-frequently-used entry when
  /// full. Duplicate (rank, id) entries are refreshed in place.
  void insert(RankId rank, const pami::MemoryRegion& region);

  /// Drops all entries owned by `rank` (used at collective free).
  void invalidate_rank(RankId rank);
  /// Drops one region by owner id.
  void invalidate(RankId rank, std::uint64_t region_id);

  std::size_t size() const { return entries_.size(); }
  std::size_t capacity() const { return capacity_; }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t evictions() const { return evictions_; }

  CacheReplacement policy() const { return policy_; }

 private:
  struct Entry {
    RankId rank;
    pami::MemoryRegion region;
    std::uint64_t frequency = 1;
    std::uint64_t last_use = 0;
  };

  std::size_t capacity_;
  CacheReplacement policy_;
  std::uint64_t use_clock_ = 0;
  std::vector<Entry> entries_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace pgasq::armci
