// Collectively allocated global memory (ARMCI_Malloc).
//
// Every rank contributes one equally sized slab; afterwards each rank
// holds the remote base addresses of the whole clique plus the memory
// region metadata exchanged at allocation time — the sigma "active
// global address structures" of Table I whose regions are known
// without the miss protocol.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/types.hpp"
#include "pami/memregion.hpp"

namespace pgasq::armci {

class GlobalMem {
 public:
  GlobalMem(std::uint64_t id, int num_ranks, std::size_t bytes_per_rank);

  std::uint64_t id() const { return id_; }
  std::size_t bytes_per_rank() const { return bytes_; }
  int num_ranks() const { return static_cast<int>(slabs_.size()); }
  bool freed() const { return freed_; }

  /// Base address of rank r's slab.
  RemotePtr at(RankId r) const;
  /// Convenience: address `offset` bytes into rank r's slab.
  RemotePtr at(RankId r, std::size_t offset) const;
  std::byte* local(RankId me) const { return slab(me); }

  /// Region metadata exchanged at allocation; !valid() when that
  /// rank's registration failed (fall-back protocols take over).
  const pami::MemoryRegion& region_of(RankId r) const;

  bool contains(RankId r, const std::byte* addr, std::size_t bytes) const;

  // Internal (World / Comm during the collective).
  std::byte* slab(RankId r) const;
  void set_region(RankId r, const pami::MemoryRegion& region);
  void mark_freed() { freed_ = true; }

 private:
  std::uint64_t id_;
  std::size_t bytes_;
  bool freed_ = false;
  std::vector<std::unique_ptr<std::byte[]>> slabs_;
  std::vector<pami::MemoryRegion> regions_;
};

}  // namespace pgasq::armci
