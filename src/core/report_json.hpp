// Machine-readable run report: the same aggregated statistics the text
// report renders, flattened into an obs::Registry and serialized as a
// versioned JSON document ({"schema":"pgasq.report","schema_version":N,
// ...}). The benchmark harness writes one per run (report.json_path /
// BENCH_*.json) so experiment sweeps can be diffed and plotted without
// scraping tables.
#pragma once

#include <string>

#include "core/world.hpp"
#include "obs/json.hpp"
#include "obs/registry.hpp"
#include "util/config.hpp"

namespace pgasq::armci {

/// Bumped whenever the JSON layout changes incompatibly. Consumers
/// (tools/validate_trace.py, plotting scripts) check this first.
inline constexpr int kReportSchemaVersion = 1;

/// Flattens the world's aggregated statistics — CommStats, collective
/// counters, fault & fail-stop recovery tables, network totals — into
/// a metrics registry. Deterministic: same run, same registry dump.
obs::Registry build_registry(const World& world);

/// The full report document: schema header, machine shape, elapsed
/// virtual time, the registry metrics, per-link accounting (when
/// obs.links recorded any), and trace recorder status (when tracing).
obs::Json render_json_report(const World& world);

/// Writes render_json_report to `path`; throws on I/O failure.
void write_json_report(const World& world, const std::string& path);

/// Parses the report.* namespace (report.json_path), rejecting unknown
/// report.* keys with a typo suggestion. Empty = no JSON report.
std::string json_report_path_from_config(const Config& cfg);

}  // namespace pgasq::armci
