// Uniformly non-contiguous (strided) transfer geometry (S III-C2).
//
// ARMCI describes an s-dimensional patch with counts[0] = bytes of the
// contiguous chunk (l0 in Eq 9), counts[i] = repeats at level i, and a
// stride (in bytes) per level on each side. Total payload
// m = prod(counts); number of chunks = m / l0.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "pami/types.hpp"

namespace pgasq::armci {

class StridedSpec {
 public:
  /// counts.size() == levels + 1; each strides vector has `levels`
  /// entries. Level i's stride must be at least the extent of the
  /// level below (no self-overlapping patches).
  StridedSpec(std::vector<std::uint64_t> counts,
              std::vector<std::uint64_t> src_strides,
              std::vector<std::uint64_t> dst_strides);

  /// Contiguous 1-D transfer of `bytes`.
  static StridedSpec contiguous(std::uint64_t bytes);

  /// 2-D patch: `rows` rows of `row_bytes`, row pitch per side.
  static StridedSpec rect2d(std::uint64_t rows, std::uint64_t row_bytes,
                            std::uint64_t src_pitch, std::uint64_t dst_pitch);

  int levels() const { return static_cast<int>(counts_.size()) - 1; }
  std::uint64_t chunk_bytes() const { return counts_[0]; }  // l0
  std::uint64_t num_chunks() const;
  std::uint64_t total_bytes() const { return chunk_bytes() * num_chunks(); }

  const std::vector<std::uint64_t>& counts() const { return counts_; }
  const std::vector<std::uint64_t>& src_strides() const { return src_strides_; }
  const std::vector<std::uint64_t>& dst_strides() const { return dst_strides_; }

  /// Byte span touched on the source / destination side (for region
  /// coverage checks): offset of the last chunk plus chunk size.
  std::uint64_t src_extent() const;
  std::uint64_t dst_extent() const;

  /// Calls fn(src_offset, dst_offset) for every chunk, in canonical
  /// (outer level slowest) order.
  void for_each_chunk(
      const std::function<void(std::uint64_t, std::uint64_t)>& fn) const;

  /// Chunk list in PAMI typed form.
  std::vector<pami::TypedChunk> chunks_local_remote(bool local_is_src) const;

 private:
  std::uint64_t extent(const std::vector<std::uint64_t>& strides) const;

  std::vector<std::uint64_t> counts_;
  std::vector<std::uint64_t> src_strides_;
  std::vector<std::uint64_t> dst_strides_;
};

}  // namespace pgasq::armci
