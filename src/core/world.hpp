// World: the simulated machine plus the cross-rank coordination state
// of the ARMCI runtime (collective allocation rendezvous, the
// hardware-barrier signal, final statistics).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/globalmem.hpp"
#include "core/types.hpp"
#include "obs/registry.hpp"
#include "pami/machine.hpp"

namespace pgasq::armci {

class Comm;

struct WorldConfig {
  pami::MachineConfig machine;
  Options armci;
};

class World {
 public:
  explicit World(WorldConfig config);
  ~World();
  World(const World&) = delete;
  World& operator=(const World&) = delete;

  /// Runs `body` as an SPMD program: one simulated process per rank,
  /// each receiving its own Comm. Returns when the simulation drains.
  void spmd(std::function<void(Comm&)> body);

  pami::Machine& machine() { return machine_; }
  const pami::Machine& machine() const { return machine_; }
  const Options& options() const { return config_.armci; }
  int num_ranks() const { return machine_.num_ranks(); }

  /// Virtual time when the last rank finished.
  Time elapsed() const { return elapsed_; }

  /// Application-level metrics (e.g. kvs.* from src/kvs). Workloads
  /// write counters/gauges/histograms here; report rendering splices
  /// them into the text report and the pgasq.report JSON after the
  /// runtime-owned sections. Empty for runs that publish nothing —
  /// those reports stay byte-identical.
  obs::Registry& app_metrics() { return app_metrics_; }
  const obs::Registry& app_metrics() const { return app_metrics_; }

  /// Per-rank statistics captured at finalize.
  const CommStats& stats(RankId rank) const;
  /// Sum over ranks.
  CommStats total_stats() const;

  /// Live global allocations (sigma structures). Entries may be
  /// freed-but-kept to keep addresses stable.
  const std::vector<std::unique_ptr<GlobalMem>>& heaps() const { return heaps_; }

  /// Opaque cross-rank slot owned by the collectives subsystem
  /// (src/coll): the hardware-collective arrival/combine rendezvous
  /// shared by every rank's engine. Created by the first engine.
  std::shared_ptr<void>& coll_shared() { return coll_shared_; }

 private:
  friend class Comm;

  struct BarrierState {
    std::size_t arrived = 0;
    std::uint64_t generation = 0;
  };

  /// First caller (by collective sequence number) constructs the heap;
  /// later callers validate the size matches.
  GlobalMem& ensure_heap(std::uint64_t seq, std::size_t bytes_per_rank);

  /// First collective sequence number no rank has allocated yet (the
  /// fail-stop recovery alignment point, see Comm::ft_align_collectives).
  std::uint64_t collective_seq_high_water() const { return heaps_.size(); }

  /// Installs the fail-stop epoch listener and schedules the heartbeat
  /// tick (only called when the machine built a health monitor).
  void start_heartbeat();

  WorldConfig config_;
  pami::Machine machine_;
  BarrierState barrier_;
  std::vector<std::unique_ptr<GlobalMem>> heaps_;  // indexed by collective seq
  std::uint64_t next_mem_id_ = 1;
  std::vector<Comm*> comms_;
  std::function<void()> heartbeat_tick_;  // owned here; copies borrow `this`
  std::shared_ptr<void> coll_shared_;
  std::vector<CommStats> final_stats_;
  obs::Registry app_metrics_;
  Time elapsed_ = 0;
  bool spmd_ran_ = false;
};

}  // namespace pgasq::armci
