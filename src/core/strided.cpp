#include "core/strided.hpp"

#include "util/error.hpp"

namespace pgasq::armci {

StridedSpec::StridedSpec(std::vector<std::uint64_t> counts,
                         std::vector<std::uint64_t> src_strides,
                         std::vector<std::uint64_t> dst_strides)
    : counts_(std::move(counts)),
      src_strides_(std::move(src_strides)),
      dst_strides_(std::move(dst_strides)) {
  PGASQ_CHECK(!counts_.empty(), << "counts must have at least l0");
  PGASQ_CHECK(src_strides_.size() == counts_.size() - 1,
              << "src_strides size " << src_strides_.size() << " for "
              << counts_.size() - 1 << " levels");
  PGASQ_CHECK(dst_strides_.size() == counts_.size() - 1);
  PGASQ_CHECK(counts_[0] > 0, << "empty contiguous chunk");
  for (std::size_t i = 1; i < counts_.size(); ++i) {
    PGASQ_CHECK(counts_[i] > 0, << "count[" << i << "] = 0");
  }
  // Strides must not make chunks of one level overlap: each level's
  // stride covers the extent of everything below it.
  std::uint64_t src_below = counts_[0];
  std::uint64_t dst_below = counts_[0];
  for (std::size_t i = 0; i < src_strides_.size(); ++i) {
    PGASQ_CHECK(src_strides_[i] >= src_below,
                << "src stride level " << i << " (" << src_strides_[i]
                << ") overlaps inner extent " << src_below);
    PGASQ_CHECK(dst_strides_[i] >= dst_below,
                << "dst stride level " << i << " (" << dst_strides_[i]
                << ") overlaps inner extent " << dst_below);
    src_below = src_strides_[i] * (counts_[i + 1] - 1) + src_below;
    dst_below = dst_strides_[i] * (counts_[i + 1] - 1) + dst_below;
  }
}

StridedSpec StridedSpec::contiguous(std::uint64_t bytes) {
  return StridedSpec({bytes}, {}, {});
}

StridedSpec StridedSpec::rect2d(std::uint64_t rows, std::uint64_t row_bytes,
                                std::uint64_t src_pitch, std::uint64_t dst_pitch) {
  return StridedSpec({row_bytes, rows}, {src_pitch}, {dst_pitch});
}

std::uint64_t StridedSpec::num_chunks() const {
  std::uint64_t n = 1;
  for (std::size_t i = 1; i < counts_.size(); ++i) n *= counts_[i];
  return n;
}

std::uint64_t StridedSpec::extent(const std::vector<std::uint64_t>& strides) const {
  std::uint64_t e = counts_[0];
  for (std::size_t i = 0; i < strides.size(); ++i) {
    e += strides[i] * (counts_[i + 1] - 1);
  }
  return e;
}

std::uint64_t StridedSpec::src_extent() const { return extent(src_strides_); }
std::uint64_t StridedSpec::dst_extent() const { return extent(dst_strides_); }

void StridedSpec::for_each_chunk(
    const std::function<void(std::uint64_t, std::uint64_t)>& fn) const {
  const int nlevels = levels();
  if (nlevels == 0) {
    fn(0, 0);
    return;
  }
  std::vector<std::uint64_t> idx(static_cast<std::size_t>(nlevels), 0);
  for (;;) {
    std::uint64_t soff = 0;
    std::uint64_t doff = 0;
    for (int l = 0; l < nlevels; ++l) {
      soff += idx[static_cast<std::size_t>(l)] * src_strides_[static_cast<std::size_t>(l)];
      doff += idx[static_cast<std::size_t>(l)] * dst_strides_[static_cast<std::size_t>(l)];
    }
    fn(soff, doff);
    // Odometer increment, innermost level (index 0) fastest.
    int l = 0;
    for (; l < nlevels; ++l) {
      if (++idx[static_cast<std::size_t>(l)] < counts_[static_cast<std::size_t>(l) + 1]) break;
      idx[static_cast<std::size_t>(l)] = 0;
    }
    if (l == nlevels) return;
  }
}

std::vector<pami::TypedChunk> StridedSpec::chunks_local_remote(bool local_is_src) const {
  std::vector<pami::TypedChunk> out;
  out.reserve(static_cast<std::size_t>(num_chunks()));
  for_each_chunk([&](std::uint64_t soff, std::uint64_t doff) {
    if (local_is_src) {
      out.push_back(pami::TypedChunk{soff, doff, counts_[0]});
    } else {
      out.push_back(pami::TypedChunk{doff, soff, counts_[0]});
    }
  });
  return out;
}

}  // namespace pgasq::armci
