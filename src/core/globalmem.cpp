#include "core/globalmem.hpp"

#include "util/error.hpp"

namespace pgasq::armci {

GlobalMem::GlobalMem(std::uint64_t id, int num_ranks, std::size_t bytes_per_rank)
    : id_(id), bytes_(bytes_per_rank) {
  PGASQ_CHECK(num_ranks >= 1);
  PGASQ_CHECK(bytes_per_rank > 0);
  slabs_.reserve(static_cast<std::size_t>(num_ranks));
  for (int r = 0; r < num_ranks; ++r) {
    // Value-initialized so tests see deterministic zeroed memory, as
    // ARMCI_Malloc'd global arrays are zeroed by applications anyway.
    slabs_.push_back(std::make_unique<std::byte[]>(bytes_per_rank));
  }
  regions_.resize(static_cast<std::size_t>(num_ranks));
}

RemotePtr GlobalMem::at(RankId r) const { return RemotePtr{r, slab(r)}; }

RemotePtr GlobalMem::at(RankId r, std::size_t offset) const {
  PGASQ_CHECK(offset <= bytes_, << "offset " << offset << " beyond slab " << bytes_);
  return RemotePtr{r, slab(r) + offset};
}

std::byte* GlobalMem::slab(RankId r) const {
  PGASQ_CHECK(r >= 0 && static_cast<std::size_t>(r) < slabs_.size(), << "rank " << r);
  return slabs_[static_cast<std::size_t>(r)].get();
}

const pami::MemoryRegion& GlobalMem::region_of(RankId r) const {
  PGASQ_CHECK(r >= 0 && static_cast<std::size_t>(r) < regions_.size(), << "rank " << r);
  return regions_[static_cast<std::size_t>(r)];
}

void GlobalMem::set_region(RankId r, const pami::MemoryRegion& region) {
  PGASQ_CHECK(r >= 0 && static_cast<std::size_t>(r) < regions_.size(), << "rank " << r);
  regions_[static_cast<std::size_t>(r)] = region;
}

bool GlobalMem::contains(RankId r, const std::byte* addr, std::size_t bytes) const {
  if (freed_) return false;
  const std::byte* base = slab(r);
  return addr >= base && addr + bytes <= base + bytes_;
}

}  // namespace pgasq::armci
