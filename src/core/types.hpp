// Public vocabulary types of the ARMCI-style runtime (the paper's
// contribution, S III).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "pami/types.hpp"
#include "util/stats.hpp"
#include "util/time_types.hpp"

namespace pgasq::armci {

using RankId = pami::RankId;

/// Address in another rank's (simulated) address space.
struct RemotePtr {
  RankId rank = -1;
  std::byte* addr = nullptr;

  RemotePtr offset(std::ptrdiff_t delta) const { return {rank, addr + delta}; }
  bool valid() const { return rank >= 0 && addr != nullptr; }
};

/// Progress engine configuration (S III-D): kDefault services remote
/// requests only when the main thread enters the runtime; kAsyncThread
/// dedicates a simulated SMT thread to progress.
enum class ProgressMode { kDefault, kAsyncThread };

/// Conflicting-memory-access tracking granularity (S III-E): kPerTarget
/// is the naive one-status-per-process scheme (false positives);
/// kPerRegion keeps an 8-bit status per distributed structure per
/// target, Theta(sigma * zeta) space.
enum class ConsistencyMode { kPerTarget, kPerRegion };

/// Replacement policy for the remote-region cache. The paper uses
/// least-frequently-used; LRU exists for the ablation showing why
/// (hot global structures survive cold scans under LFU).
enum class CacheReplacement { kLfu, kLru };

/// Strided (uniformly non-contiguous) protocol selection (S III-C2).
enum class StridedProtocol {
  kAuto,        ///< zero-copy, switching to typed for tall-skinny shapes
  kZeroCopy,    ///< one RDMA per contiguous chunk
  kTyped,       ///< single PAMI typed-datatype operation
  kPackUnpack,  ///< legacy pack at source / unpack at target baseline
};

struct Options {
  ProgressMode progress = ProgressMode::kDefault;
  /// Communication contexts per rank (rho). With kAsyncThread and
  /// rho=2 each thread advances its own context; with rho=1 both
  /// threads contend on the single context's lock (S III-D).
  int contexts_per_rank = 1;
  ConsistencyMode consistency = ConsistencyMode::kPerRegion;
  StridedProtocol strided = StridedProtocol::kAuto;
  /// kAuto switches to the typed path when the contiguous chunk is
  /// smaller than this and the transfer has many chunks (tall-skinny).
  std::uint64_t tall_skinny_chunk_bytes = 512;
  std::size_t tall_skinny_min_chunks = 8;
  /// Remote memory-region cache capacity (entries).
  std::size_t region_cache_capacity = 1024;
  /// Cache replacement policy; the paper uses LFU (S III-B).
  CacheReplacement region_cache_policy = CacheReplacement::kLfu;
  /// Cache endpoints for the communication clique (zeta) instead of
  /// re-creating one per operation.
  bool cache_endpoints = true;
  /// Raw key/value configuration for the collectives subsystem
  /// (src/coll), the "coll." CLI keys with the prefix stripped —
  /// e.g. {"algo.allreduce", "torus-ring"} or {"hw", "0"}. Core
  /// carries them opaquely; coll::CollConfig::from_options parses.
  std::vector<std::pair<std::string, std::string>> coll;
  /// Raw key/value configuration for the asynchronous completion
  /// runtime (src/async), the "async." CLI keys with the prefix
  /// stripped — e.g. {"scf_overlap", "1"}. Core carries them opaquely;
  /// async::AsyncConfig::from_options parses.
  std::vector<std::pair<std::string, std::string>> async;
};

/// Completion state shared between a Handle and in-flight callbacks.
struct HandleState {
  int outstanding = 0;
  bool used = false;
  /// Completion bridge installed by the async runtime (src/async):
  /// fired exactly once, when `outstanding` next returns to zero.
  /// Null for plain handles — the zero-cost default.
  std::function<void()> on_zero;
};

/// Retires one completed operation from `s` and fires the completion
/// bridge when the count reaches zero. Every completion path — the
/// make_done callbacks and the AM reply handlers that decrement the
/// shared state directly — must funnel through here, or futures built
/// over the handle would never fulfill.
void handle_complete_one(HandleState& s);

/// Non-blocking request handle (explicit-handle ARMCI semantics). A
/// default-constructed handle can be passed to any nb_* call and then
/// waited on; one handle may aggregate several operations.
class Handle {
 public:
  Handle() : state_(std::make_shared<HandleState>()) {}

  /// All operations attached to this handle have completed.
  bool done() const { return state_->outstanding == 0; }
  /// At least one operation was attached.
  bool used() const { return state_->used; }

  const std::shared_ptr<HandleState>& state() const { return state_; }

 private:
  std::shared_ptr<HandleState> state_;
};

/// A get queued for deferred injection (Comm::nb_get_deferred): the
/// wire leg is generated at the next progress pass, so a revoke that
/// arrives first cancels the operation outright. The async runtime
/// (src/async) wraps this as its cancellable-get primitive.
struct DeferredGet {
  RemotePtr src;
  void* dst = nullptr;
  std::size_t bytes = 0;
  Handle handle;
  bool injected = false;
  bool revoked = false;
};

/// Collective-operation statistics, written by the collectives
/// subsystem (src/coll) and folded into the communication report.
/// Indexed [op][algo]; the name tables below give the meaning of each
/// index. Core only carries and renders these — the engine that fills
/// them lives above this layer.
struct CollStats {
  static constexpr int kOps = 6;    ///< barrier..alltoall, see kCollOpNames
  static constexpr int kAlgos = 6;  ///< binomial..rab, see kCollAlgoNames

  std::uint64_t count[kOps][kAlgos] = {};
  /// Payload bytes handed to the collective (not wire bytes).
  std::uint64_t bytes[kOps][kAlgos] = {};
  /// Virtual time the rank spent inside the collective.
  Time time[kOps][kAlgos] = {};
  /// Times the engine's persistent scratch heap had to grow.
  std::uint64_t scratch_reallocs = 0;

  std::uint64_t total_ops() const;
  Time total_time() const;
  /// Time in data-moving collectives only (total minus the barrier
  /// row, whose cost is mostly arrival wait, i.e. load imbalance).
  Time data_time() const;
  void merge(const CollStats& o);
};

inline constexpr const char* kCollOpNames[CollStats::kOps] = {
    "barrier", "broadcast", "reduce", "allreduce", "allgather", "alltoall"};
inline constexpr const char* kCollAlgoNames[CollStats::kAlgos] = {
    "binomial", "recdbl", "torus-ring", "hw", "hier", "rab"};

/// Per-rank operation statistics; the benchmark harness aggregates
/// these into the paper's tables.
struct CommStats {
  // Operation counts.
  std::uint64_t puts = 0, gets = 0, accs = 0, rmws = 0;
  std::uint64_t strided_puts = 0, strided_gets = 0, strided_accs = 0;
  // Protocol routing.
  std::uint64_t rdma_puts = 0, rdma_gets = 0;
  std::uint64_t fallback_puts = 0, fallback_gets = 0;
  std::uint64_t typed_ops = 0, zero_copy_chunks = 0, packed_ops = 0;
  // Bytes.
  std::uint64_t bytes_put = 0, bytes_got = 0, bytes_acc = 0;
  // Deferred gets cancelled before their wire leg (src/async revoke).
  std::uint64_t gets_revoked = 0;
  // Region cache.
  std::uint64_t region_cache_hits = 0, region_cache_misses = 0;
  std::uint64_t region_queries_sent = 0;
  // Consistency.
  std::uint64_t fence_calls = 0, forced_fences = 0;
  // Endpoints.
  std::uint64_t endpoints_created = 0;
  // Fault recovery (all zero unless a fault plan is active): wire legs
  // re-sent after ack timeout, virtual time spent waiting out those
  // timeouts, and async-progress stalls ridden out by this rank.
  std::uint64_t retransmits = 0;
  Time retransmit_backoff = 0;
  std::uint64_t progress_stalls = 0;
  Time progress_stall_time = 0;
  // Blocking time by category (virtual time).
  Time time_in_get = 0, time_in_put = 0, time_in_acc = 0;
  Time time_in_rmw = 0, time_in_fence = 0, time_in_barrier = 0, time_in_wait = 0;
  // Collective-engine counters (all zero until src/coll is used).
  CollStats coll;
  // Per-group collective counters, keyed by group label (empty until a
  // process group — src/grp, or a hierarchical schedule's internal
  // node/leader groups — runs a collective). Kept separate from `coll`
  // so the world engine's table stays comparable across runs.
  std::map<std::string, CollStats> group_coll;
  // Message-size distributions (log2 buckets) — the "large percentile
  // of message size used in real applications" evidence of S IV-A.
  Log2Histogram put_sizes, get_sizes, acc_sizes;

  void merge(const CommStats& o);
};

}  // namespace pgasq::armci
