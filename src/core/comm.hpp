// Comm — the per-rank ARMCI runtime and the library's main public API.
//
// One Comm exists per simulated process inside World::spmd. It owns
// the rank's PAMI objects (client, rho contexts, endpoint cache), the
// scalable-protocols layer of S III (RDMA-first contiguous and strided
// transfers with active-message fall-backs, the LFU remote-region
// cache, conflicting-access tracking for location consistency), the
// load-balance-counter rmw path, and the asynchronous progress thread
// of S III-D.
//
// API shape follows ARMCI: blocking and non-blocking (explicit handle)
// put/get/accumulate for contiguous and uniformly non-contiguous data,
// fetch-and-add / swap rmw, pairwise and global fence, mutexes, and
// collective allocation.
#pragma once

#include <complex>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "core/caches.hpp"
#include "core/consistency.hpp"
#include "core/globalmem.hpp"
#include "core/strided.hpp"
#include "core/types.hpp"
#include "core/world.hpp"
#include "pami/context.hpp"
#include "pami/process.hpp"

namespace pgasq::ft {
class HealthMonitor;
}  // namespace pgasq::ft

namespace pgasq::armci {

/// A set of ARMCI mutexes: `count` lock words hosted on every rank.
class MutexSet {
 public:
  int count() const { return count_; }

 private:
  friend class Comm;
  GlobalMem* mem_ = nullptr;
  int count_ = 0;
};

class Comm {
 public:
  Comm(World& world, pami::Process& process);
  ~Comm();
  Comm(const Comm&) = delete;
  Comm& operator=(const Comm&) = delete;

  // --- Identity & time ------------------------------------------------------

  RankId rank() const { return process_.rank(); }
  int nprocs() const { return world_.num_ranks(); }
  World& world() { return world_; }
  pami::Process& process() { return process_; }
  Time now() const { return process_.now(); }

  /// Occupies this rank's main thread for `t` of virtual time (the
  /// application's local computation, "do work" in Fig 10). Incoming
  /// requests are NOT serviced meanwhile (that is the paper's Default
  /// progress problem) — an idle client should use idle_until.
  void compute(Time t) { process_.busy(t); }
  /// Parks this rank until virtual time `t` while continuing to drive
  /// progress, so remote requests keep being serviced — "idle but
  /// responsive", e.g. an open-loop client between arrivals. No-op
  /// when `t` has already passed.
  void idle_until(Time t);

  // --- Lifecycle (called by World::spmd) -------------------------------------

  void init();
  void finalize();

  // --- Collective memory ------------------------------------------------------

  /// ARMCI_Malloc: every rank contributes `bytes_per_rank`; regions
  /// are registered and exchanged. Collective.
  GlobalMem& malloc_collective(std::size_t bytes_per_rank);
  /// ARMCI_Free. Collective.
  void free_collective(GlobalMem& mem);

  /// ARMCI_Malloc_local: local communication buffer, registered as one
  /// memory region up front (a tau buffer of Table I) so transfers of
  /// any size within it take the RDMA path. Registration failure (at
  /// the region limit) still returns usable memory — fall-back
  /// protocols then apply.
  void* malloc_local(std::size_t bytes);
  void free_local(void* ptr);

  // --- Contiguous RMA ---------------------------------------------------------

  void put(const void* src, RemotePtr dst, std::size_t bytes);
  void get(RemotePtr src, void* dst, std::size_t bytes);
  /// Accumulate: dst[i] += alpha * src[i] over `count` doubles.
  void acc(double alpha, const double* src, RemotePtr dst, std::size_t count);

  void nb_put(const void* src, RemotePtr dst, std::size_t bytes, Handle& handle);
  void nb_get(RemotePtr src, void* dst, std::size_t bytes, Handle& handle);
  void nb_acc(double alpha, const double* src, RemotePtr dst, std::size_t count,
              Handle& handle);

  /// Remote-completion variants (async runtime, Cx::kRemote):
  /// `on_remote` fires when the target's acknowledgement arrives, i.e.
  /// the write is visible at the target — the same ack leg the
  /// conflict tracker uses for fencing.
  void nb_put(const void* src, RemotePtr dst, std::size_t bytes, Handle& handle,
              pami::Callback on_remote);
  void nb_acc(double alpha, const double* src, RemotePtr dst, std::size_t count,
              Handle& handle, pami::Callback on_remote);

  /// Deferred-injection get (async runtime): queued locally and
  /// injected at the next progress pass. revoke_get before injection
  /// cancels the op outright — no wire leg, no byte counted, the
  /// handle completes immediately. After injection it proceeds like a
  /// plain nb_get (the fence-before-read check also runs at injection,
  /// not at queue time). Returns the queued record; its `handle` obeys
  /// normal wait/test semantics.
  std::shared_ptr<DeferredGet> nb_get_deferred(RemotePtr src, void* dst,
                                               std::size_t bytes);
  /// True iff the get was revoked before its wire leg; false once
  /// injected (the op then runs to completion and must be drained
  /// through its handle before the buffer is reused).
  bool revoke_get(const std::shared_ptr<DeferredGet>& g);

  /// Typed accumulate (ARMCI_Acc with ARMCI_ACC_INT/FLT/DBL/DCP):
  /// dst[i] += alpha * src[i] elementwise over `count` elements of T.
  /// T is one of std::int32_t, std::int64_t, float, double,
  /// std::complex<double>.
  template <typename T>
  void acc_t(T alpha, const T* src, RemotePtr dst, std::size_t count);
  template <typename T>
  void nb_acc_t(T alpha, const T* src, RemotePtr dst, std::size_t count,
                Handle& handle, pami::Callback on_remote = nullptr);

  // --- Strided RMA ------------------------------------------------------------

  void put_strided(const void* src, RemotePtr dst, const StridedSpec& spec);
  void get_strided(RemotePtr src, void* dst, const StridedSpec& spec);
  void acc_strided(double alpha, const double* src, RemotePtr dst,
                   const StridedSpec& spec);

  void nb_put_strided(const void* src, RemotePtr dst, const StridedSpec& spec,
                      Handle& handle);
  void nb_get_strided(RemotePtr src, void* dst, const StridedSpec& spec,
                      Handle& handle);
  void nb_acc_strided(double alpha, const double* src, RemotePtr dst,
                      const StridedSpec& spec, Handle& handle);

  // --- General I/O-vector RMA (ARMCI_PutV / GetV / AccV) ----------------------

  /// Scatter/gather descriptor: `count()` segments of `segment_bytes`
  /// each; `local[i]` pairs with `remote[i]` in the target's address
  /// space. All segments address ONE target rank.
  struct VectorDescriptor {
    std::size_t segment_bytes = 0;
    std::vector<std::byte*> local;
    std::vector<std::byte*> remote;

    std::size_t count() const { return local.size(); }
    std::size_t total_bytes() const { return segment_bytes * local.size(); }
  };

  void put_v(RankId target, const VectorDescriptor& desc);
  void get_v(RankId target, const VectorDescriptor& desc);
  /// remote[i][k] += alpha * local[i][k] over doubles.
  void acc_v(double alpha, RankId target, const VectorDescriptor& desc);

  void nb_put_v(RankId target, const VectorDescriptor& desc, Handle& handle);
  void nb_get_v(RankId target, const VectorDescriptor& desc, Handle& handle);
  void nb_acc_v(double alpha, RankId target, const VectorDescriptor& desc,
                Handle& handle);

  // --- Atomic memory operations ----------------------------------------------

  /// ARMCI_Rmw(ARMCI_FETCH_AND_ADD): the load-balance-counter
  /// primitive. Blocks for the old value.
  std::int64_t fetch_add(RemotePtr counter, std::int64_t delta);
  /// Atomic swap; returns the old value.
  std::int64_t swap(RemotePtr word, std::int64_t value);
  /// Compare-and-swap; returns the old value.
  std::int64_t compare_swap(RemotePtr word, std::int64_t compare, std::int64_t value);

  // --- Overload control (src/flow) -------------------------------------------

  /// Absolute virtual-time deadline attached to subsequent rmw and
  /// fall-back get operations (0 = none, the default). A request the
  /// server dequeues past its deadline is shed before servicing and
  /// the blocking call throws flow::DeadlineError instead of
  /// returning a stale answer. RDMA paths (rget/rput) involve no
  /// target software and are never shed — for them the deadline is a
  /// client-side concern (see src/kvs's open-loop driver). Requires
  /// the machine's flow controller (flow.* configured); without it
  /// deadlines are carried but never enforced.
  void set_op_deadline(Time deadline) { op_deadline_ = deadline; }
  Time op_deadline() const { return op_deadline_; }

  // --- Completion & synchronization --------------------------------------------

  void wait(Handle& handle);
  bool test(Handle& handle);
  /// Blocks until `handle` completes or virtual time reaches `t`,
  /// whichever is earlier; returns handle.done(). The timeout is a
  /// zero-cost self-completion posted on this rank's context, so the
  /// fiber wakes at exactly `t` (no polling quantum). Used by hedged
  /// requests (src/kvs) to arm a backup after a tail-latency delay.
  bool wait_until(Handle& handle, Time t);
  /// Blocks until either handle completes; returns true when `a` is
  /// the one that did (ties go to `a`). The loser stays in flight —
  /// callers must keep its landing buffer alive and drain it before
  /// reuse. Implemented over wait_some.
  bool wait_any(Handle& a, Handle& b);
  /// N-ary aggregation: blocks until at least one handle in `hs`
  /// completes; returns the indices of every completed handle,
  /// ascending. Losers stay in flight (wait_any's contract).
  std::vector<std::size_t> wait_some(const std::vector<Handle*>& hs);
  /// One progress pass (plus an async-runtime drain when attached);
  /// true iff every handle in `hs` has completed.
  bool test_all(const std::vector<Handle*>& hs);
  /// One explicit progress-engine call (what a Default-mode
  /// application must sprinkle into compute phases to service remote
  /// requests, S III-D).
  void progress() {
    ft_check();
    if (!deferred_gets_.empty()) flush_deferred_gets();
    locked_advance(main_context());
    if (async_hook_) async_hook_();
  }
  /// Waits for local completion of all implicit non-blocking ops.
  void wait_all();

  /// Spins progress passes (advancing virtual time) until `pred`
  /// returns true. The async runtime's future waits and the
  /// non-blocking collectives drain on this.
  void progress_until(const std::function<bool()>& pred);

  /// Pairwise producer/consumer synchronization (armci_notify):
  /// fences all writes to `target`, then raises a notification there.
  /// The consumer calls wait_notify(producer) and may then read the
  /// produced data without any other synchronization (S II-B:
  /// "pairwise memory synchronization").
  void notify(RankId target);
  /// Blocks until `count` notifications from `producer` have arrived
  /// (cumulative across the program).
  void wait_notify(RankId producer, std::uint64_t count = 1);
  /// Notifications received so far from `producer`.
  std::uint64_t notifications_from(RankId producer) const;

  /// ARMCI_Fence: remote completion of all writes to `target`.
  void fence(RankId target);
  /// ARMCI_AllFence.
  void fence_all();
  /// ARMCI_Barrier. Routes through the collectives engine once one is
  /// attached (BG/Q's in-fabric barrier stays the default algorithm);
  /// before that it is allfence + the hardware barrier directly.
  void barrier();
  /// The in-fabric (GI network) barrier mechanics: allfence + arrival
  /// counting + the modelled release latency, with no engine dispatch
  /// and no blocking-time accounting. The collectives subsystem's
  /// kHardware barrier and its internal rendezvous call this.
  void barrier_hw();

  // --- Mutexes ------------------------------------------------------------------

  /// ARMCI_Create_mutexes. Collective.
  MutexSet create_mutexes(int count);
  void lock(MutexSet& set, int mutex, RankId owner);
  void unlock(MutexSet& set, int mutex, RankId owner);

  // --- Introspection --------------------------------------------------------------

  const CommStats& stats() const { return stats_; }
  const RegionCache& region_cache() const { return *region_cache_; }
  const EndpointCache& endpoint_cache() const { return *endpoint_cache_; }
  const ConflictTracker& conflict_tracker() const { return *tracker_; }
  const Options& options() const { return world_.options(); }

  // --- Collectives-subsystem attachment (src/coll) ----------------------------

  /// Opaque per-rank slot owned by coll::CollEngine (core never looks
  /// inside; reset at finalize so the engine detaches before teardown).
  std::shared_ptr<void>& coll_slot() { return coll_slot_; }
  /// Installed by the engine: when set, barrier() dispatches through
  /// the engine's algorithm selection instead of calling barrier_hw().
  void set_barrier_hook(std::function<void()> hook) { barrier_hook_ = std::move(hook); }
  /// Collective counters, written by the engine.
  CollStats& coll_stats() { return stats_.coll; }
  /// Monotone engine-creation sequence (world, shrunk and group
  /// engines): the flow-id salt keeping concurrent engines' causal
  /// trace ids disjoint. Engines are constructed collectively, so the
  /// sequence — and hence each engine's salt — is identical on every
  /// rank.
  std::uint64_t next_coll_engine_salt() { return coll_engine_seq_++; }
  /// Per-group collective counters (group engines write here via their
  /// label; rendered as extra tables in the communication report).
  CollStats& group_coll_stats(const std::string& label) {
    return stats_.group_coll[label];
  }
  /// Opaque per-rank slot owned by coll::NbcEngine (the non-blocking
  /// collectives engine). Reset at finalize after the blocking engine
  /// but before the async runtime's quiescence check: an open nbc op
  /// at that point still counts as a pending future and aborts.
  std::shared_ptr<void>& nbc_slot() { return nbc_slot_; }

  // --- Async-runtime attachment (src/async) -----------------------------------

  /// Opaque per-rank slot owned by async::Runtime (reset at finalize,
  /// after the collectives engine detaches — nbc completions drain
  /// through the runtime during coll teardown).
  std::shared_ptr<void>& async_slot() { return async_slot_; }
  /// Installed by the runtime. `drain` runs after every progress pass
  /// — on this rank's application fiber, outside the context lock —
  /// stepping non-blocking collectives and running queued
  /// continuations in FIFO (virtual-time) order. `check` runs at
  /// finalize, before the runtime detaches, and aborts on abandoned
  /// continuations. Both nullptr-guarded: unattached runs pay one
  /// pointer compare per progress pass.
  void set_async_hook(std::function<void()> drain, std::function<void()> check) {
    async_hook_ = std::move(drain);
    async_check_ = std::move(check);
  }
  /// Installed by the runtime alongside the drain hook: returns true
  /// while a poll-driven completion source is live (open non-blocking
  /// collectives, whose arrival flags are one-sided RDMA writes that
  /// post no context item). While true, progress_until advances
  /// virtual time and re-polls instead of parking on context work —
  /// parking would sleep through a flag landing and deadlock.
  void set_async_poll_hook(std::function<bool()> poll) {
    async_poll_ = std::move(poll);
  }

  // --- Process-group-subsystem attachment (src/grp) ----------------------------

  /// Opaque per-rank slot owned by grp::GroupRegistry (reset at
  /// finalize, before the collectives engine detaches — group engines
  /// are built on top of it).
  std::shared_ptr<void>& grp_slot() { return grp_slot_; }
  /// Installed by the group registry: invoked by
  /// coll::CollEngine::rebuild_shrunk after the world engine has been
  /// replaced, with the surviving world ranks, at a survivor-collective
  /// point — the registry rebuilds its derived groups there.
  void set_shrink_hook(std::function<void(const std::vector<int>&)> hook) {
    shrink_hook_ = std::move(hook);
  }
  const std::function<void(const std::vector<int>&)>& shrink_hook() const {
    return shrink_hook_;
  }

  // --- Fail-stop fault tolerance (src/ft) --------------------------------------

  /// The machine's health monitor, or nullptr when the fault plan
  /// schedules no node deaths (the zero-cost default).
  ft::HealthMonitor* ft_monitor() { return monitor_; }
  /// Last liveness epoch this rank acknowledged. Every blocking
  /// progress loop unwinds with PeerDeadError while the monitor's
  /// epoch is ahead of this.
  std::uint64_t ft_epoch_acked() const { return ft_acked_epoch_; }
  /// Acknowledges the current epoch (recovery runtime, after catching
  /// the abort and before re-synchronizing survivors).
  void ft_accept_epoch();
  /// True once this rank's own node was declared dead: all collectives
  /// are skipped and finalize() tears down without synchronizing.
  bool ft_failed() const { return ft_failed_; }
  void ft_mark_failed() { ft_failed_ = true; }
  /// Abandons in-flight state that can never complete after a peer
  /// died: forgets tracked writes (dead-peer acks never come) and
  /// detaches the implicit handle.
  void ft_quiesce();
  /// Re-aligns the collective-allocation sequence across survivors: an
  /// abort can interrupt ranks at different allocation counts, after
  /// which "the same" malloc_collective would address different heaps.
  /// Rendezvous, fast-forward to the world-wide high-water mark (frozen
  /// while every survivor sits between the two rendezvous), rendezvous
  /// again. Collective over live ranks.
  void ft_align_collectives();
  /// Posts a no-op completion so this rank's parked progress loops
  /// re-evaluate their predicates (epoch listeners and the heartbeat
  /// tick use this to wake fibers blocked on work that died with a
  /// peer).
  void ft_poke();

  /// Context the main thread initiates on and advances.
  pami::Context& main_context() { return process_.context(0); }
  /// Context remote requests are serviced on (context 1 when the
  /// async-thread design runs with rho = 2, else context 0).
  pami::Context& service_context() { return process_.context(service_context_index_); }

 private:
  struct AckClosure;

  // Progress & locking.
  bool needs_context_lock() const;
  /// Returns the number of items serviced (Context::advance's count).
  std::size_t locked_advance(pami::Context& ctx);
  void start_async_thread();
  /// Injects every queued deferred get (skipping revoked ones).
  void flush_deferred_gets();
  /// Throws PeerDeadError when the liveness epoch moved past the last
  /// acknowledged one (or this rank's own node died). One pointer
  /// check when no monitor exists.
  void ft_check();

  // Endpoint / region resolution.
  void ensure_endpoint(RankId target, int context);
  std::optional<pami::MemoryRegion> resolve_remote_region(RankId target,
                                                          const std::byte* addr,
                                                          std::size_t bytes);
  /// Tracking-only lookup: never sends a query; returns region id 0 on
  /// unknown.
  std::uint64_t known_region_id(RankId target, const std::byte* addr,
                                std::size_t bytes);
  std::optional<pami::MemoryRegion> resolve_local_region(const void* addr,
                                                         std::size_t bytes);
  pami::Endpoint service_endpoint(RankId target);

  // Write tracking.
  /// Called (from an engine event) when a remote ack for a tracked
  /// write lands at this rank's NIC.
  void write_acked_from_wire(const ConflictTracker::Key& key);
  void track_write(RankId target, std::uint64_t region_id,
                   ConflictTracker::Key* key_out);
  pami::Callback make_ack(const ConflictTracker::Key& key);
  void maybe_fence_before_read(RankId target, std::uint64_t region_id);

  // Handles.
  static void attach(Handle& handle, int ops);
  static pami::Callback make_done(Handle& handle);

  // Strided protocol engines.
  enum class Dir { kPut, kGet };
  StridedProtocol choose_strided_protocol(const StridedSpec& spec,
                                          bool regions_available) const;
  void strided_zero_copy(Dir dir, std::byte* local,
                         const pami::MemoryRegion& local_mr, RemotePtr remote,
                         const pami::MemoryRegion& remote_mr,
                         const StridedSpec& spec, Handle& handle);
  void strided_typed(Dir dir, std::byte* local, const pami::MemoryRegion& local_mr,
                     RemotePtr remote, const pami::MemoryRegion& remote_mr,
                     const StridedSpec& spec, Handle& handle);
  void strided_packed(Dir dir, std::byte* local, RemotePtr remote,
                      const StridedSpec& spec, Handle& handle);

  // AM dispatch handlers (registered on every context).
  void register_dispatch(pami::Context& ctx);
  void on_acc_message(pami::Context& ctx, const pami::AmMessage& msg);
  void on_region_query(pami::Context& ctx, const pami::AmMessage& msg);
  void on_region_reply(pami::Context& ctx, const pami::AmMessage& msg);
  void on_strided_put(pami::Context& ctx, const pami::AmMessage& msg);
  void on_strided_get_request(pami::Context& ctx, const pami::AmMessage& msg);
  void on_strided_get_reply(pami::Context& ctx, const pami::AmMessage& msg);
  void on_notify(pami::Context& ctx, const pami::AmMessage& msg);
  void on_vector_write(pami::Context& ctx, const pami::AmMessage& msg);
  void on_vector_get_request(pami::Context& ctx, const pami::AmMessage& msg);
  void on_vector_get_reply(pami::Context& ctx, const pami::AmMessage& msg);

  /// True when every segment (and its local counterpart) is covered by
  /// usable memory regions, filling `local_mrs`/`remote_mrs`.
  bool resolve_vector_regions(RankId target, const VectorDescriptor& desc,
                              std::vector<pami::MemoryRegion>* local_mrs,
                              std::vector<pami::MemoryRegion>* remote_mrs);

  /// Raises flow::DeadlineError for an op against `target` whose
  /// server-side work was shed; counts the client-side expiry.
  [[noreturn]] void throw_op_expired(const char* what, RankId target);

  World& world_;
  pami::Process& process_;
  ft::HealthMonitor* monitor_ = nullptr;
  /// Deadline stamped onto outgoing rmw / fall-back get requests.
  Time op_deadline_ = 0;
  /// Sticky marker set by a fall-back get's server-side shed
  /// notification; consumed by the blocking get wrapper. Safe because
  /// a rank has at most one blocking deadline-carrying get in flight.
  bool deadline_expired_ = false;
  std::uint64_t ft_acked_epoch_ = 0;
  bool ft_failed_ = false;
  int service_context_index_ = 0;
  bool async_running_ = false;
  std::uint64_t next_collective_seq_ = 0;
  Handle implicit_;

  std::unique_ptr<EndpointCache> endpoint_cache_;
  std::unique_ptr<RegionCache> region_cache_;
  std::unique_ptr<ConflictTracker> tracker_;
  CommStats stats_;

  struct LocalAllocation {
    std::unique_ptr<std::byte[]> memory;
    std::size_t bytes = 0;
    std::optional<pami::MemoryRegion> region;
  };
  std::vector<LocalAllocation> local_allocations_;
  /// Cumulative notifications received, by producer rank.
  std::vector<std::uint64_t> notifications_;
  std::shared_ptr<void> coll_slot_;
  std::shared_ptr<void> nbc_slot_;
  std::function<void()> barrier_hook_;
  std::shared_ptr<void> grp_slot_;
  std::function<void(const std::vector<int>&)> shrink_hook_;
  std::shared_ptr<void> async_slot_;
  std::function<void()> async_hook_;
  std::function<void()> async_check_;
  std::function<bool()> async_poll_;
  std::vector<std::shared_ptr<DeferredGet>> deferred_gets_;
  std::uint64_t coll_engine_seq_ = 0;
};

}  // namespace pgasq::armci
