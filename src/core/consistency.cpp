#include "core/consistency.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace pgasq::armci {

ConflictTracker::ConflictTracker(ConsistencyMode mode, int num_ranks)
    : mode_(mode), per_target_(static_cast<std::size_t>(num_ranks), 0) {}

std::uint64_t ConflictTracker::pack(RankId target, std::uint64_t region_id) {
  PGASQ_CHECK(region_id < (1ULL << 32), << "region id " << region_id);
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(target)) << 32) |
         region_id;
}

ConflictTracker::Key ConflictTracker::on_write_initiated(RankId target,
                                                         std::uint64_t region_id) {
  ++per_target_.at(static_cast<std::size_t>(target));
  ++total_;
  if (mode_ == ConsistencyMode::kPerRegion) {
    ++per_region_[pack(target, region_id)];
  }
  return Key{target, region_id, gen_};
}

void ConflictTracker::on_write_acked(const Key& key) {
  if (key.gen != gen_) return;  // write forgotten by reset_outstanding()
  auto& t = per_target_.at(static_cast<std::size_t>(key.target));
  PGASQ_CHECK(t > 0, << "write ack underflow for target " << key.target);
  --t;
  PGASQ_CHECK(total_ > 0);
  --total_;
  if (mode_ == ConsistencyMode::kPerRegion) {
    const auto it = per_region_.find(pack(key.target, key.region_id));
    PGASQ_CHECK(it != per_region_.end() && it->second > 0,
                << "region ack underflow for target " << key.target << " region "
                << key.region_id);
    if (--it->second == 0) per_region_.erase(it);
  }
}

void ConflictTracker::reset_outstanding() {
  std::fill(per_target_.begin(), per_target_.end(), 0);
  per_region_.clear();
  total_ = 0;
  ++gen_;
}

bool ConflictTracker::read_requires_fence(RankId target,
                                          std::uint64_t region_id) const {
  if (mode_ == ConsistencyMode::kPerTarget) {
    return outstanding_to(target) > 0;
  }
  // Region id 0 ("unknown") conservatively conflicts with any
  // outstanding write on this target.
  if (region_id == 0) return outstanding_to(target) > 0;
  // A pending unknown-region write also aliases everything.
  if (outstanding_to_region(target, 0) > 0) return true;
  return outstanding_to_region(target, region_id) > 0;
}

std::uint64_t ConflictTracker::outstanding_to(RankId target) const {
  return per_target_.at(static_cast<std::size_t>(target));
}

std::uint64_t ConflictTracker::outstanding_to_region(RankId target,
                                                     std::uint64_t region_id) const {
  if (mode_ == ConsistencyMode::kPerTarget) return outstanding_to(target);
  const auto it = per_region_.find(pack(target, region_id));
  return it == per_region_.end() ? 0 : it->second;
}

std::uint8_t ConflictTracker::status(RankId target, std::uint64_t region_id) const {
  std::uint8_t s = 0;
  if (mode_ == ConsistencyMode::kPerTarget) {
    if (outstanding_to(target) > 0) s |= StatusBits::kWrite;
  } else {
    if (outstanding_to_region(target, region_id) > 0) s |= StatusBits::kWrite;
  }
  return s;
}

}  // namespace pgasq::armci
