#include "core/comm.hpp"

#include <cstring>
#include <sstream>

#include "flow/flow.hpp"
#include "ft/liveness.hpp"
#include "util/error.hpp"

namespace pgasq::armci {

namespace {

// Active-message dispatch ids used by the ARMCI protocol layer.
constexpr pami::DispatchId kDispatchAcc = 1;
constexpr pami::DispatchId kDispatchRegionQuery = 2;
constexpr pami::DispatchId kDispatchRegionReply = 3;
constexpr pami::DispatchId kDispatchStridedWrite = 4;
constexpr pami::DispatchId kDispatchStridedGetReq = 5;
constexpr pami::DispatchId kDispatchStridedGetRep = 6;
constexpr pami::DispatchId kDispatchVectorWrite = 7;
constexpr pami::DispatchId kDispatchVectorGetReq = 8;
constexpr pami::DispatchId kDispatchVectorGetRep = 9;
constexpr pami::DispatchId kDispatchNotify = 10;

// --- POD header (de)serialization ------------------------------------------
// Headers travel as byte vectors; because all simulated ranks share one
// OS address space, protocol cookies are raw pointers (the moral
// equivalent of the rendezvous cookies real protocols carry).

template <typename T>
void append_pod(std::vector<std::byte>& buf, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  const auto* p = reinterpret_cast<const std::byte*>(&v);
  buf.insert(buf.end(), p, p + sizeof(T));
}

template <typename T>
T read_pod(const std::byte*& p) {
  static_assert(std::is_trivially_copyable_v<T>);
  T v;
  std::memcpy(&v, p, sizeof(T));
  p += sizeof(T);
  return v;
}

void append_spec(std::vector<std::byte>& buf, const StridedSpec& spec) {
  append_pod<std::uint64_t>(buf, spec.counts().size());
  for (auto c : spec.counts()) append_pod(buf, c);
  for (auto s : spec.src_strides()) append_pod(buf, s);
  for (auto s : spec.dst_strides()) append_pod(buf, s);
}

StridedSpec read_spec(const std::byte*& p) {
  const auto n = read_pod<std::uint64_t>(p);
  std::vector<std::uint64_t> counts(n);
  for (auto& c : counts) c = read_pod<std::uint64_t>(p);
  std::vector<std::uint64_t> src(n - 1), dst(n - 1);
  for (auto& s : src) s = read_pod<std::uint64_t>(p);
  for (auto& s : dst) s = read_pod<std::uint64_t>(p);
  return StridedSpec(std::move(counts), std::move(src), std::move(dst));
}

/// Wire tags for the typed-accumulate datatypes (ARMCI_ACC_*).
enum class AccWireType : std::uint8_t { kInt32, kInt64, kFloat, kDouble, kComplexDouble };

template <typename T>
constexpr AccWireType acc_wire_type();
template <> constexpr AccWireType acc_wire_type<std::int32_t>() { return AccWireType::kInt32; }
template <> constexpr AccWireType acc_wire_type<std::int64_t>() { return AccWireType::kInt64; }
template <> constexpr AccWireType acc_wire_type<float>() { return AccWireType::kFloat; }
template <> constexpr AccWireType acc_wire_type<double>() { return AccWireType::kDouble; }
template <> constexpr AccWireType acc_wire_type<std::complex<double>>() {
  return AccWireType::kComplexDouble;
}

struct AccHeader {
  std::byte* dst;
  std::uint64_t count;  // elements of the wire type
  AccWireType type;
  std::byte alpha[16];  // raw scale value, sizeof(T) bytes used
  void* ack;
};

template <typename T>
void apply_acc(std::byte* dst_raw, const std::byte* src_raw, std::uint64_t count,
               const std::byte* alpha_raw) {
  T alpha;
  std::memcpy(&alpha, alpha_raw, sizeof(T));
  auto* dst = reinterpret_cast<T*>(dst_raw);
  // The payload buffer is freshly allocated and aligned for any T.
  const T* src = reinterpret_cast<const T*>(src_raw);
  for (std::uint64_t i = 0; i < count; ++i) dst[i] += alpha * src[i];
}

struct RegionQueryHeader {
  const std::byte* addr;
  std::uint64_t bytes;
  void* box;
};

struct RegionReplyHeader {
  void* box;
  pami::MemoryRegion region;
  bool found;
};

struct StridedWriteHeader {  // followed by the serialized spec
  std::byte* dst_base;
  void* ack;
  double alpha;
  std::uint8_t is_acc;
};

struct StridedGetReqHeader {  // followed by the serialized spec
  const std::byte* src_base;
  void* closure;
};

struct StridedGetRepHeader {
  void* closure;
};

struct VectorWriteHeader {  // followed by the remote address list
  std::uint64_t segments;
  std::uint64_t segment_bytes;
  double alpha;
  std::uint8_t is_acc;
  void* ack;
};

struct VectorGetReqHeader {  // followed by the remote address list
  std::uint64_t segments;
  std::uint64_t segment_bytes;
  void* closure;
};

/// Requester-side state for a packed vector get.
struct VectorGetClosure {
  std::shared_ptr<HandleState> state;
  std::vector<std::byte*> local;
  std::uint64_t segment_bytes;
};

/// Requester-side rendezvous for a region query.
struct RegionReplyBox {
  bool done = false;
  bool found = false;
  pami::MemoryRegion region;
};

/// Requester-side state for a packed strided get, kept alive across
/// the wire round-trip.
struct GetReplyClosure {
  std::shared_ptr<HandleState> state;
  std::byte* local_base;
  StridedSpec spec;
};

}  // namespace

/// Write-acknowledgement cookie carried by accumulate / packed-write
/// messages; the target fires it back over a control packet. `extra`
/// is the optional remote-completion callback of the async runtime
/// (Cx::kRemote), fired at the same ack delivery.
struct Comm::AckClosure {
  Comm* source;
  ConflictTracker::Key key;
  pami::Callback extra;
};

// ---------------------------------------------------------------------------
// Lifecycle
// ---------------------------------------------------------------------------

Comm::Comm(World& world, pami::Process& process)
    : world_(world), process_(process) {}

Comm::~Comm() = default;

void Comm::init() {
  const Options& opt = options();
  PGASQ_CHECK(opt.contexts_per_rank >= 1 && opt.contexts_per_rank <= 4,
              << "contexts_per_rank = " << opt.contexts_per_rank);
  service_context_index_ =
      (opt.progress == ProgressMode::kAsyncThread && opt.contexts_per_rank >= 2) ? 1
                                                                                 : 0;
  endpoint_cache_ = std::make_unique<EndpointCache>(nprocs(), opt.contexts_per_rank);
  region_cache_ =
      std::make_unique<RegionCache>(opt.region_cache_capacity, opt.region_cache_policy);
  tracker_ = std::make_unique<ConflictTracker>(opt.consistency, nprocs());
  notifications_.assign(static_cast<std::size_t>(nprocs()), 0);
  monitor_ = process_.machine().monitor();

  process_.create_client();
  for (int i = 0; i < opt.contexts_per_rank; ++i) {
    register_dispatch(process_.create_context());
  }
  if (opt.progress == ProgressMode::kAsyncThread) start_async_thread();
  barrier();
}

void Comm::finalize() {
  // A rank whose node was declared dead must not synchronize with the
  // survivors — it just tears down.
  if (!ft_failed_) barrier();
  // Detach the group registry first (its group engines sit on top of
  // the collectives engine), then the collectives engine itself: its
  // destructor deregisters from the cross-rank shared state, and no
  // barrier may dispatch through it past this point.
  shrink_hook_ = nullptr;
  grp_slot_.reset();
  barrier_hook_ = nullptr;
  coll_slot_.reset();
  nbc_slot_.reset();
  // Async runtime last: the collectives teardown above may still have
  // drained nbc completions through the hook. The quiescence check
  // aborts on abandoned continuations (chained work that can never
  // run); a rank torn down by fail-stop recovery skips it — its
  // futures died with its peers.
  if (async_check_ && !ft_failed_) async_check_();
  async_hook_ = nullptr;
  async_check_ = nullptr;
  async_poll_ = nullptr;
  async_slot_.reset();
  if (async_running_) {
    async_running_ = false;
    service_context().post_completion([] {}, 0);
  }
  // Fold cache counters into the exported statistics.
  stats_.region_cache_hits = region_cache_->hits();
  stats_.region_cache_misses = region_cache_->misses();
  // Fold per-context fault-recovery counters likewise.
  for (int i = 0; i < options().contexts_per_rank; ++i) {
    const auto& cs = process_.context(i).stats();
    stats_.retransmits += cs.retransmits;
    stats_.retransmit_backoff += cs.retransmit_backoff;
  }
}

void Comm::register_dispatch(pami::Context& ctx) {
  ctx.set_dispatch(kDispatchAcc, [this](pami::Context& c, const pami::AmMessage& m) {
    on_acc_message(c, m);
  });
  ctx.set_dispatch(kDispatchRegionQuery,
                   [this](pami::Context& c, const pami::AmMessage& m) {
                     on_region_query(c, m);
                   });
  ctx.set_dispatch(kDispatchRegionReply,
                   [this](pami::Context& c, const pami::AmMessage& m) {
                     on_region_reply(c, m);
                   });
  ctx.set_dispatch(kDispatchStridedWrite,
                   [this](pami::Context& c, const pami::AmMessage& m) {
                     on_strided_put(c, m);
                   });
  ctx.set_dispatch(kDispatchStridedGetReq,
                   [this](pami::Context& c, const pami::AmMessage& m) {
                     on_strided_get_request(c, m);
                   });
  ctx.set_dispatch(kDispatchStridedGetRep,
                   [this](pami::Context& c, const pami::AmMessage& m) {
                     on_strided_get_reply(c, m);
                   });
  ctx.set_dispatch(kDispatchVectorWrite,
                   [this](pami::Context& c, const pami::AmMessage& m) {
                     on_vector_write(c, m);
                   });
  ctx.set_dispatch(kDispatchVectorGetReq,
                   [this](pami::Context& c, const pami::AmMessage& m) {
                     on_vector_get_request(c, m);
                   });
  ctx.set_dispatch(kDispatchVectorGetRep,
                   [this](pami::Context& c, const pami::AmMessage& m) {
                     on_vector_get_reply(c, m);
                   });
  ctx.set_dispatch(kDispatchNotify,
                   [this](pami::Context& c, const pami::AmMessage& m) {
                     on_notify(c, m);
                   });
}

// ---------------------------------------------------------------------------
// Progress & locking
// ---------------------------------------------------------------------------

bool Comm::needs_context_lock() const {
  // Only the shared-context configuration (async thread + rho = 1)
  // multithreads a context (S III-D).
  return options().progress == ProgressMode::kAsyncThread &&
         options().contexts_per_rank == 1;
}

namespace {
/// Acquires the context lock (charging the lock cost) when the
/// configuration shares a context between threads; no-op otherwise or
/// when already held by this fiber (handlers nested under advance).
class ProgressGuard {
 public:
  ProgressGuard(bool needed, pami::Context& ctx, Time lock_cost)
      : ctx_(ctx) {
    if (needed && !ctx.lock().held_by_current()) {
      ctx.process().busy(lock_cost);
      ctx.lock().lock();
      locked_ = true;
    }
  }
  ~ProgressGuard() {
    if (locked_) ctx_.lock().unlock();
  }
  ProgressGuard(const ProgressGuard&) = delete;
  ProgressGuard& operator=(const ProgressGuard&) = delete;

 private:
  pami::Context& ctx_;
  bool locked_ = false;
};
}  // namespace

std::size_t Comm::locked_advance(pami::Context& ctx) {
  ProgressGuard guard(needs_context_lock(), ctx,
                      process_.machine().params().context_lock_cost);
  return ctx.advance();
}

void Comm::progress_until(const std::function<bool()>& pred) {
  pami::Context& ctx = main_context();
  for (;;) {
    if (!deferred_gets_.empty()) flush_deferred_gets();
    bool done;
    {
      ProgressGuard guard(needs_context_lock(), ctx,
                          process_.machine().params().context_lock_cost);
      ctx.advance();
      done = pred();
    }
    // Drain the async runtime outside the context lock: continuations
    // and nbc schedule steps issue communication of their own, and the
    // predicate may only become satisfiable through them.
    if (async_hook_) {
      async_hook_();
      done = pred();
    }
    if (done) return;
    // A declared node death may have made this predicate unsatisfiable
    // — unwind to the recovery runtime rather than park forever.
    ft_check();
    if (ctx.has_work()) continue;
    // Open non-blocking collectives complete through one-sided flag
    // writes that post no context item: parking would sleep through
    // the landing. Poll instead, at the collectives engine's cadence.
    if (async_poll_ && async_poll_()) {
      compute(from_ns(200));
      continue;
    }
    // Park (lock released) until the next delivery; every event this
    // predicate can depend on arrives as an item on this context.
    ctx.wait_for_work();
  }
}

void Comm::ft_check() {
  if (monitor_ == nullptr || ft_failed_) return;
  monitor_->probe(now());
  if (monitor_->node_declared_dead(process_.node())) {
    std::ostringstream os;
    os << "rank " << rank() << " lives on node " << process_.node()
       << ", declared dead at epoch " << monitor_->epoch();
    throw ft::PeerDeadError("self", process_.node(), process_.node(),
                            monitor_->epoch(), os.str());
  }
  if (monitor_->epoch() != ft_acked_epoch_) {
    std::ostringstream os;
    os << "liveness epoch moved " << ft_acked_epoch_ << " -> " << monitor_->epoch()
       << " under rank " << rank() << "; unwinding blocked work for recovery";
    throw ft::PeerDeadError("epoch-change", process_.node(), process_.node(),
                            monitor_->epoch(), os.str());
  }
}

void Comm::ft_accept_epoch() {
  if (monitor_ != nullptr) ft_acked_epoch_ = monitor_->epoch();
}

void Comm::ft_quiesce() {
  tracker_->reset_outstanding();
  implicit_ = Handle{};
}

void Comm::ft_align_collectives() {
  barrier_hw();
  next_collective_seq_ = world_.collective_seq_high_water();
  barrier_hw();
}

void Comm::ft_poke() {
  // A tick can land while this rank is still creating its PAMI
  // objects (init runs for milliseconds of virtual time) — nothing to
  // wake yet.
  if (process_.num_contexts() <= service_context_index_) return;
  main_context().post_completion([] {}, 0);
  if (service_context_index_ != 0) service_context().post_completion([] {}, 0);
}

void Comm::start_async_thread() {
  async_running_ = true;
  pami::Context* ctx = &service_context();
  const Time wake = process_.machine().params().async_wake_latency;
  fault::Injector* inj = process_.machine().injector();
  process_.machine().spawn_thread(process_, "async", [this, ctx, wake, inj] {
    sim::Engine& eng = process_.machine().engine();
    while (async_running_) {
      if (inj != nullptr) {
        // Progress-stall injection: this fiber stops advancing for the
        // window; queued requests sit until it resumes, so forward
        // progress must come from advance_until on the main thread.
        const Time until = inj->stalled_until(static_cast<int>(rank()), eng.now());
        if (until > eng.now()) {
          stats_.progress_stall_time += until - eng.now();
          ++stats_.progress_stalls;
          inj->record_stall(eng.now(), until);
          eng.sleep_until(until);
          continue;
        }
      }
      try {
        const std::size_t serviced = locked_advance(*ctx);
        // Causal trace: each async-progress pass that actually serviced
        // requests is an instant on this rank's net track, making the
        // handoff (main thread computes, async thread advances) visible
        // between the message arrows.
        sim::TraceRecorder* tr = process_.machine().trace();
        if (tr != nullptr && serviced > 0) {
          tr->instant(process_.machine().rank_track(rank()), "async progress",
                      eng.now(),
                      {{"serviced", std::to_string(serviced)}});
        }
      } catch (const ft::PeerDeadError&) {
        // A serviced request (e.g. a get-reply) targeted a dead peer.
        // The progress thread itself must survive: recovery is driven
        // by the main thread's abort, not by this fiber.
      }
      if (!async_running_) break;
      if (!ctx->has_work()) {
        ctx->wait_for_work();
        process_.busy(wake);
      }
    }
  });
}

// ---------------------------------------------------------------------------
// Endpoint & region resolution
// ---------------------------------------------------------------------------

pami::Endpoint Comm::service_endpoint(RankId target) {
  return pami::Endpoint{target, service_context_index_};
}

void Comm::ensure_endpoint(RankId target, int context) {
  if (!options().cache_endpoints) {
    process_.create_endpoint(target, context);
    ++stats_.endpoints_created;
    return;
  }
  if (!endpoint_cache_->lookup_or_mark(target, context)) {
    process_.create_endpoint(target, context);
    ++stats_.endpoints_created;
  }
}

std::optional<pami::MemoryRegion> Comm::resolve_local_region(const void* addr,
                                                             std::size_t bytes) {
  const auto* p = static_cast<const std::byte*>(addr);
  if (auto r = process_.regions().find(p, bytes)) return r;
  // Register this local communication buffer on the fly (the tau
  // buffers of Table I); may fail at the configured limit.
  return process_.create_memregion(const_cast<void*>(addr), bytes);
}

std::optional<pami::MemoryRegion> Comm::resolve_remote_region(RankId target,
                                                              const std::byte* addr,
                                                              std::size_t bytes) {
  if (target == rank()) return resolve_local_region(addr, bytes);
  // 1. Collectively allocated structures: metadata was exchanged at
  //    allocation time, no traffic needed.
  for (const auto& h : world_.heaps()) {
    if (h && !h->freed() && h->contains(target, addr, bytes)) {
      const auto& r = h->region_of(target);
      if (r.valid()) return r;
      return std::nullopt;  // that rank's registration failed
    }
  }
  // 2. Bounded LFU cache of non-collective remote regions.
  if (auto r = region_cache_->lookup(target, addr, bytes)) return r;
  // 3. Miss: ask the owner over an active message (requires the owner
  //    to make progress — another reason the async thread matters).
  ++stats_.region_queries_sent;
  ensure_endpoint(target, service_context_index_);
  // The cookie keeps the rendezvous box alive until the reply lands
  // even if a fail-stop abort unwinds this frame first; the reply
  // handler releases it.
  auto box = std::make_shared<RegionReplyBox>();
  auto* cookie = new std::shared_ptr<RegionReplyBox>(box);
  std::vector<std::byte> header;
  append_pod(header, RegionQueryHeader{addr, bytes, cookie});
  try {
    ProgressGuard guard(needs_context_lock(), main_context(),
                        process_.machine().params().context_lock_cost);
    main_context().send(service_endpoint(target), kDispatchRegionQuery,
                        std::move(header), {}, nullptr, "region query");
  } catch (...) {
    delete cookie;  // the query never left this rank; no reply will come
    throw;
  }
  progress_until([box] { return box->done; });
  if (!box->found) return std::nullopt;
  region_cache_->insert(target, box->region);
  return box->region;
}

std::uint64_t Comm::known_region_id(RankId target, const std::byte* addr,
                                    std::size_t bytes) {
  if (target == rank()) {
    const auto r = process_.regions().find(addr, bytes);
    return r ? r->id : 0;
  }
  for (const auto& h : world_.heaps()) {
    if (h && !h->freed() && h->contains(target, addr, bytes)) {
      const auto& r = h->region_of(target);
      return r.valid() ? r.id : 0;
    }
  }
  if (auto r = region_cache_->lookup(target, addr, bytes)) return r->id;
  return 0;
}

// ---------------------------------------------------------------------------
// Write tracking & consistency
// ---------------------------------------------------------------------------

void Comm::track_write(RankId target, std::uint64_t region_id,
                       ConflictTracker::Key* key_out) {
  *key_out = tracker_->on_write_initiated(target, region_id);
}

pami::Callback Comm::make_ack(const ConflictTracker::Key& key) {
  return [this, key] { tracker_->on_write_acked(key); };
}

void Comm::maybe_fence_before_read(RankId target, std::uint64_t region_id) {
  if (tracker_->read_requires_fence(target, region_id)) {
    ++stats_.forced_fences;
    fence(target);
  }
}

void Comm::notify(RankId target) {
  PGASQ_CHECK(target >= 0 && target < nprocs());
  // armci_notify semantics: the notification is ordered after every
  // write this process issued to the target.
  fence(target);
  ensure_endpoint(target, service_context_index_);
  ProgressGuard guard(needs_context_lock(), main_context(),
                      process_.machine().params().context_lock_cost);
  main_context().send(service_endpoint(target), kDispatchNotify, {}, {}, nullptr,
                      "notify");
}

void Comm::wait_notify(RankId producer, std::uint64_t count) {
  PGASQ_CHECK(producer >= 0 && producer < nprocs());
  const auto idx = static_cast<std::size_t>(producer);
  progress_until([this, idx, count] { return notifications_[idx] >= count; });
}

std::uint64_t Comm::notifications_from(RankId producer) const {
  return notifications_.at(static_cast<std::size_t>(producer));
}

void Comm::on_notify(pami::Context& ctx, const pami::AmMessage& msg) {
  ++notifications_[static_cast<std::size_t>(msg.source.rank)];
  // The consumer may be parked on its main context.
  main_context().post_completion([] {}, 0);
  (void)ctx;
}

void Comm::fence(RankId target) {
  ++stats_.fence_calls;
  const Time t0 = now();
  progress_until([this, target] { return tracker_->outstanding_to(target) == 0; });
  stats_.time_in_fence += now() - t0;
}

void Comm::fence_all() {
  ++stats_.fence_calls;
  const Time t0 = now();
  progress_until([this] { return tracker_->outstanding_total() == 0; });
  stats_.time_in_fence += now() - t0;
}

void Comm::barrier() {
  const Time t0 = now();
  if (barrier_hook_) {
    barrier_hook_();
  } else {
    barrier_hw();
  }
  stats_.time_in_barrier += now() - t0;
}

void Comm::barrier_hw() {
  fence_all();
  auto& b = world_.barrier_;
  const std::uint64_t generation = b.generation;
  // Under fail-stop recovery the rendezvous completes once every
  // *declared-live* rank arrives (dead ranks never will).
  const auto target = static_cast<std::size_t>(
      monitor_ != nullptr ? monitor_->live_rank_count() : world_.num_ranks());
  if (++b.arrived >= target) {
    b.arrived = 0;
    World* w = &world_;
    world_.machine().engine().schedule_after(
        process_.machine().params().barrier_latency, [w] {
          ++w->barrier_.generation;
          for (Comm* c : w->comms_) {
            if (c != nullptr) c->main_context().post_completion([] {}, 0);
          }
        });
  }
  progress_until([&b, generation] { return b.generation != generation; });
}

// ---------------------------------------------------------------------------
// Handles
// ---------------------------------------------------------------------------

void Comm::attach(Handle& handle, int ops) {
  handle.state()->outstanding += ops;
  handle.state()->used = true;
}

pami::Callback Comm::make_done(Handle& handle) {
  auto s = handle.state();
  return [s] { handle_complete_one(*s); };
}

void Comm::wait(Handle& handle) {
  const Time t0 = now();
  progress_until([&handle] { return handle.done(); });
  stats_.time_in_wait += now() - t0;
}

bool Comm::test(Handle& handle) {
  locked_advance(main_context());
  return handle.done();
}

void Comm::idle_until(Time t) {
  if (now() >= t) return;
  auto fired = std::make_shared<bool>(false);
  main_context().post_completion_at(t, [fired] { *fired = true; }, 0);
  progress_until([fired] { return *fired; });
}

bool Comm::wait_until(Handle& handle, Time t) {
  const Time t0 = now();
  if (!handle.done() && now() < t) {
    // The timer must survive an abort unwind of this frame: a fail-stop
    // recovery can leave the posted item pending, and it fires into the
    // shared_ptr, not this stack.
    auto fired = std::make_shared<bool>(false);
    main_context().post_completion_at(t, [fired] { *fired = true; }, 0);
    progress_until([&handle, fired] { return handle.done() || *fired; });
  }
  stats_.time_in_wait += now() - t0;
  return handle.done();
}

bool Comm::wait_any(Handle& a, Handle& b) {
  // Ties go to `a`: wait_some reports completions in index order.
  return wait_some({&a, &b}).front() == 0;
}

std::vector<std::size_t> Comm::wait_some(const std::vector<Handle*>& hs) {
  PGASQ_CHECK(!hs.empty(), << "wait_some over an empty handle set");
  const Time t0 = now();
  progress_until([&hs] {
    for (const Handle* h : hs) {
      if (h->done()) return true;
    }
    return false;
  });
  stats_.time_in_wait += now() - t0;
  std::vector<std::size_t> done;
  for (std::size_t i = 0; i < hs.size(); ++i) {
    if (hs[i]->done()) done.push_back(i);
  }
  return done;
}

bool Comm::test_all(const std::vector<Handle*>& hs) {
  locked_advance(main_context());
  if (async_hook_) async_hook_();
  for (const Handle* h : hs) {
    if (!h->done()) return false;
  }
  return true;
}

void Comm::wait_all() { wait(implicit_); }

// ---------------------------------------------------------------------------
// Collective memory
// ---------------------------------------------------------------------------

GlobalMem& Comm::malloc_collective(std::size_t bytes_per_rank) {
  const std::uint64_t seq = next_collective_seq_++;
  GlobalMem& mem = world_.ensure_heap(seq, bytes_per_rank);
  auto region = process_.create_memregion(mem.slab(rank()), bytes_per_rank);
  mem.set_region(rank(), region.value_or(pami::MemoryRegion{}));
  barrier();  // metadata exchange rendezvous
  return mem;
}

void Comm::free_collective(GlobalMem& mem) {
  ++next_collective_seq_;  // keeps collective sequences aligned
  barrier();
  const auto& r = mem.region_of(rank());
  if (r.valid()) process_.destroy_memregion(r);
  mem.set_region(rank(), pami::MemoryRegion{});
  region_cache_->invalidate_rank(rank());
  barrier();
  if (rank() == 0) mem.mark_freed();
}

void* Comm::malloc_local(std::size_t bytes) {
  PGASQ_CHECK(bytes > 0);
  LocalAllocation alloc;
  alloc.memory = std::make_unique<std::byte[]>(bytes);
  alloc.bytes = bytes;
  alloc.region = process_.create_memregion(alloc.memory.get(), bytes);
  void* p = alloc.memory.get();
  local_allocations_.push_back(std::move(alloc));
  return p;
}

void Comm::free_local(void* ptr) {
  for (auto it = local_allocations_.begin(); it != local_allocations_.end(); ++it) {
    if (it->memory.get() == ptr) {
      if (it->region) process_.destroy_memregion(*it->region);
      local_allocations_.erase(it);
      return;
    }
  }
  PGASQ_CHECK(false, << "free_local of unknown pointer");
}

// ---------------------------------------------------------------------------
// Contiguous RMA
// ---------------------------------------------------------------------------

void Comm::nb_put(const void* src, RemotePtr dst, std::size_t bytes, Handle& handle) {
  nb_put(src, dst, bytes, handle, nullptr);
}

void Comm::nb_put(const void* src, RemotePtr dst, std::size_t bytes, Handle& handle,
                  pami::Callback on_remote) {
  PGASQ_CHECK(src != nullptr && dst.valid() && bytes > 0);
  PGASQ_CHECK(dst.rank < nprocs(), << "put to rank " << dst.rank);
  ++stats_.puts;
  stats_.bytes_put += bytes;
  stats_.put_sizes.add(bytes);
  auto remote = resolve_remote_region(dst.rank, dst.addr, bytes);
  auto local = resolve_local_region(src, bytes);
  ConflictTracker::Key key;
  track_write(dst.rank, remote ? remote->id : 0, &key);
  attach(handle, 1);
  // Remote completion (async runtime, Cx::kRemote) rides the same ack
  // leg the conflict tracker already pays for.
  pami::Callback ack = make_ack(key);
  if (on_remote) {
    ack = [a = std::move(ack), r = std::move(on_remote)] {
      a();
      r();
    };
  }
  const bool rdma = remote.has_value() && local.has_value();
  ensure_endpoint(dst.rank, rdma ? 0 : service_context_index_);
  ProgressGuard guard(needs_context_lock(), main_context(),
                      process_.machine().params().context_lock_cost);
  if (rdma) {
    ++stats_.rdma_puts;
    const auto loff =
        static_cast<std::uint64_t>(static_cast<const std::byte*>(src) - local->base);
    const auto roff = static_cast<std::uint64_t>(dst.addr - remote->base);
    main_context().rput(*local, loff, *remote, roff, bytes, make_done(handle),
                        std::move(ack));
  } else {
    ++stats_.fallback_puts;
    main_context().put(service_endpoint(dst.rank),
                       static_cast<const std::byte*>(src), dst.addr, bytes,
                       make_done(handle), std::move(ack));
  }
}

void Comm::put(const void* src, RemotePtr dst, std::size_t bytes) {
  const Time t0 = now();
  Handle h;
  nb_put(src, dst, bytes, h);
  progress_until([&h] { return h.done(); });
  stats_.time_in_put += now() - t0;
}

void Comm::nb_get(RemotePtr src, void* dst, std::size_t bytes, Handle& handle) {
  PGASQ_CHECK(dst != nullptr && src.valid() && bytes > 0);
  PGASQ_CHECK(src.rank < nprocs(), << "get from rank " << src.rank);
  ++stats_.gets;
  stats_.bytes_got += bytes;
  stats_.get_sizes.add(bytes);
  auto remote = resolve_remote_region(src.rank, src.addr, bytes);
  maybe_fence_before_read(src.rank, remote ? remote->id : 0);
  auto local = resolve_local_region(dst, bytes);
  attach(handle, 1);
  const bool rdma = remote.has_value() && local.has_value();
  ensure_endpoint(src.rank, rdma ? 0 : service_context_index_);
  ProgressGuard guard(needs_context_lock(), main_context(),
                      process_.machine().params().context_lock_cost);
  if (rdma) {
    ++stats_.rdma_gets;
    const auto loff =
        static_cast<std::uint64_t>(static_cast<std::byte*>(dst) - local->base);
    const auto roff = static_cast<std::uint64_t>(src.addr - remote->base);
    main_context().rget(*local, loff, *remote, roff, bytes, make_done(handle));
  } else {
    ++stats_.fallback_gets;
    pami::Callback on_expired;
    if (op_deadline_ != 0) {
      // Server-side shed notification: mark the sticky flag, then
      // complete the handle so the blocking wrapper unblocks and
      // converts the mark into the typed error.
      pami::Callback done = make_done(handle);
      on_expired = [this, done = std::move(done)] {
        deadline_expired_ = true;
        done();
      };
    }
    main_context().get(service_endpoint(src.rank), static_cast<std::byte*>(dst),
                       src.addr, bytes, make_done(handle), op_deadline_,
                       std::move(on_expired));
  }
}

void Comm::get(RemotePtr src, void* dst, std::size_t bytes) {
  const Time t0 = now();
  Handle h;
  nb_get(src, dst, bytes, h);
  progress_until([&h] { return h.done(); });
  stats_.time_in_get += now() - t0;
  if (deadline_expired_) {
    deadline_expired_ = false;
    throw_op_expired("get", src.rank);
  }
}

std::shared_ptr<DeferredGet> Comm::nb_get_deferred(RemotePtr src, void* dst,
                                                   std::size_t bytes) {
  PGASQ_CHECK(dst != nullptr && src.valid() && bytes > 0);
  auto g = std::make_shared<DeferredGet>();
  g->src = src;
  g->dst = dst;
  g->bytes = bytes;
  // One op charged to the handle up front; it retires either through
  // the injected get's completion chain or through revoke_get.
  attach(g->handle, 1);
  deferred_gets_.push_back(g);
  return g;
}

bool Comm::revoke_get(const std::shared_ptr<DeferredGet>& g) {
  PGASQ_CHECK(g != nullptr, << "revoke of a null deferred get");
  if (g->injected || g->revoked) return false;
  g->revoked = true;
  ++stats_.gets_revoked;
  // Completes "empty": no wire leg was generated, no byte counted, the
  // destination buffer is untouched.
  handle_complete_one(*g->handle.state());
  return true;
}

void Comm::flush_deferred_gets() {
  // Swap the queue out first: injecting a get can block in a nested
  // progress loop (region-query round trip), which re-enters here.
  std::vector<std::shared_ptr<DeferredGet>> batch;
  batch.swap(deferred_gets_);
  for (const auto& g : batch) {
    if (g->revoked) continue;
    g->injected = true;
    // The inner handle's completion retires the charge attached at
    // queue time, firing any future bridged over the outer handle.
    Handle inner;
    inner.state()->on_zero = [s = g->handle.state()] { handle_complete_one(*s); };
    nb_get(g->src, g->dst, g->bytes, inner);
  }
}

template <typename T>
void Comm::nb_acc_t(T alpha, const T* src, RemotePtr dst, std::size_t count,
                    Handle& handle, pami::Callback on_remote) {
  PGASQ_CHECK(src != nullptr && dst.valid() && count > 0);
  PGASQ_CHECK(reinterpret_cast<std::uintptr_t>(dst.addr) % alignof(T) == 0,
              << "accumulate target misaligned for the element type");
  ++stats_.accs;
  const std::size_t bytes = count * sizeof(T);
  stats_.bytes_acc += bytes;
  stats_.acc_sizes.add(bytes);
  ConflictTracker::Key key;
  track_write(dst.rank, known_region_id(dst.rank, dst.addr, bytes), &key);
  attach(handle, 1);
  ensure_endpoint(dst.rank, service_context_index_);
  AccHeader h{dst.addr, count, acc_wire_type<T>(), {},
              new AckClosure{this, key, std::move(on_remote)}};
  std::memcpy(h.alpha, &alpha, sizeof(T));
  std::vector<std::byte> header;
  append_pod(header, h);
  std::vector<std::byte> payload(bytes);
  std::memcpy(payload.data(), src, bytes);
  ProgressGuard guard(needs_context_lock(), main_context(),
                      process_.machine().params().context_lock_cost);
  main_context().send(service_endpoint(dst.rank), kDispatchAcc, std::move(header),
                      std::move(payload), make_done(handle), "accumulate",
                      op_deadline_);
}

template <typename T>
void Comm::acc_t(T alpha, const T* src, RemotePtr dst, std::size_t count) {
  const Time t0 = now();
  Handle h;
  nb_acc_t(alpha, src, dst, count, h);
  progress_until([&h] { return h.done(); });
  stats_.time_in_acc += now() - t0;
}

// The ARMCI_ACC_* datatypes.
template void Comm::nb_acc_t<std::int32_t>(std::int32_t, const std::int32_t*,
                                           RemotePtr, std::size_t, Handle&,
                                           pami::Callback);
template void Comm::nb_acc_t<std::int64_t>(std::int64_t, const std::int64_t*,
                                           RemotePtr, std::size_t, Handle&,
                                           pami::Callback);
template void Comm::nb_acc_t<float>(float, const float*, RemotePtr, std::size_t,
                                    Handle&, pami::Callback);
template void Comm::nb_acc_t<double>(double, const double*, RemotePtr, std::size_t,
                                     Handle&, pami::Callback);
template void Comm::nb_acc_t<std::complex<double>>(std::complex<double>,
                                                   const std::complex<double>*,
                                                   RemotePtr, std::size_t, Handle&,
                                                   pami::Callback);
template void Comm::acc_t<std::int32_t>(std::int32_t, const std::int32_t*, RemotePtr,
                                        std::size_t);
template void Comm::acc_t<std::int64_t>(std::int64_t, const std::int64_t*, RemotePtr,
                                        std::size_t);
template void Comm::acc_t<float>(float, const float*, RemotePtr, std::size_t);
template void Comm::acc_t<double>(double, const double*, RemotePtr, std::size_t);
template void Comm::acc_t<std::complex<double>>(std::complex<double>,
                                                const std::complex<double>*,
                                                RemotePtr, std::size_t);

void Comm::nb_acc(double alpha, const double* src, RemotePtr dst, std::size_t count,
                  Handle& handle) {
  nb_acc_t<double>(alpha, src, dst, count, handle);
}

void Comm::nb_acc(double alpha, const double* src, RemotePtr dst, std::size_t count,
                  Handle& handle, pami::Callback on_remote) {
  nb_acc_t<double>(alpha, src, dst, count, handle, std::move(on_remote));
}

void Comm::acc(double alpha, const double* src, RemotePtr dst, std::size_t count) {
  acc_t<double>(alpha, src, dst, count);
}

// ---------------------------------------------------------------------------
// Strided RMA
// ---------------------------------------------------------------------------

StridedProtocol Comm::choose_strided_protocol(const StridedSpec& spec,
                                              bool regions_available) const {
  if (!regions_available) return StridedProtocol::kPackUnpack;
  switch (options().strided) {
    case StridedProtocol::kZeroCopy:
    case StridedProtocol::kTyped:
    case StridedProtocol::kPackUnpack:
      return options().strided;
    case StridedProtocol::kAuto:
      // Tall-skinny patches (tiny l0, many chunks) go through the PAMI
      // typed path (S III-C2); everything else posts one RDMA per
      // contiguous chunk, leaning on network concurrency.
      if (spec.chunk_bytes() < options().tall_skinny_chunk_bytes &&
          spec.num_chunks() >= options().tall_skinny_min_chunks) {
        return StridedProtocol::kTyped;
      }
      return StridedProtocol::kZeroCopy;
  }
  PGASQ_UNREACHABLE("strided protocol");
}

void Comm::strided_zero_copy(Dir dir, std::byte* local,
                             const pami::MemoryRegion& local_mr, RemotePtr remote,
                             const pami::MemoryRegion& remote_mr,
                             const StridedSpec& spec, Handle& handle) {
  const std::uint64_t nchunks = spec.num_chunks();
  const std::uint64_t l0 = spec.chunk_bytes();
  stats_.zero_copy_chunks += nchunks;
  attach(handle, static_cast<int>(nchunks));
  const auto lbase = static_cast<std::uint64_t>(local - local_mr.base);
  const auto rbase = static_cast<std::uint64_t>(remote.addr - remote_mr.base);
  ConflictTracker::Key key{remote.rank, remote_mr.id};
  ProgressGuard guard(needs_context_lock(), main_context(),
                      process_.machine().params().context_lock_cost);
  spec.for_each_chunk([&](std::uint64_t soff, std::uint64_t doff) {
    if (dir == Dir::kPut) {
      // Spec src side is local, dst side is remote.
      tracker_->on_write_initiated(key.target, key.region_id);
      main_context().rput(local_mr, lbase + soff, remote_mr, rbase + doff, l0,
                          make_done(handle), make_ack(key));
    } else {
      // For gets the spec's src side is the remote side.
      main_context().rget(local_mr, lbase + doff, remote_mr, rbase + soff, l0,
                          make_done(handle));
    }
  });
}

void Comm::strided_typed(Dir dir, std::byte* local, const pami::MemoryRegion& local_mr,
                         RemotePtr remote, const pami::MemoryRegion& remote_mr,
                         const StridedSpec& spec, Handle& handle) {
  ++stats_.typed_ops;
  attach(handle, 1);
  const auto lbase = static_cast<std::uint64_t>(local - local_mr.base);
  const auto rbase = static_cast<std::uint64_t>(remote.addr - remote_mr.base);
  std::vector<pami::TypedChunk> chunks;
  chunks.reserve(static_cast<std::size_t>(spec.num_chunks()));
  spec.for_each_chunk([&](std::uint64_t soff, std::uint64_t doff) {
    if (dir == Dir::kPut) {
      chunks.push_back({lbase + soff, rbase + doff, spec.chunk_bytes()});
    } else {
      chunks.push_back({lbase + doff, rbase + soff, spec.chunk_bytes()});
    }
  });
  ProgressGuard guard(needs_context_lock(), main_context(),
                      process_.machine().params().context_lock_cost);
  if (dir == Dir::kPut) {
    ConflictTracker::Key key;
    track_write(remote.rank, remote_mr.id, &key);
    main_context().rput_typed(local_mr, remote_mr, chunks, make_done(handle),
                              make_ack(key), "strided typed put");
  } else {
    main_context().rget_typed(local_mr, remote_mr, chunks, make_done(handle),
                              "strided typed get");
  }
}

void Comm::strided_packed(Dir dir, std::byte* local, RemotePtr remote,
                          const StridedSpec& spec, Handle& handle) {
  ++stats_.packed_ops;
  const auto& p = process_.machine().params();
  const std::uint64_t total = spec.total_bytes();
  attach(handle, 1);
  ensure_endpoint(remote.rank, service_context_index_);
  if (dir == Dir::kPut) {
    ConflictTracker::Key key;
    track_write(remote.rank, known_region_id(remote.rank, remote.addr, 1), &key);
    // Pack at the source (the legacy protocol's first copy).
    process_.busy(from_ns(p.pack_ns_per_byte * static_cast<double>(total)));
    std::vector<std::byte> payload(total);
    std::uint64_t pos = 0;
    spec.for_each_chunk([&](std::uint64_t soff, std::uint64_t) {
      std::memcpy(payload.data() + pos, local + soff, spec.chunk_bytes());
      pos += spec.chunk_bytes();
    });
    std::vector<std::byte> header;
    append_pod(header, StridedWriteHeader{remote.addr, new AckClosure{this, key, nullptr},
                                          0.0, /*is_acc=*/0});
    append_spec(header, spec);
    ProgressGuard guard(needs_context_lock(), main_context(),
                        process_.machine().params().context_lock_cost);
    main_context().send(service_endpoint(remote.rank), kDispatchStridedWrite,
                        std::move(header), std::move(payload), make_done(handle),
                        "strided write");
  } else {
    auto* closure = new GetReplyClosure{handle.state(), local, spec};
    std::vector<std::byte> header;
    append_pod(header, StridedGetReqHeader{remote.addr, closure});
    append_spec(header, spec);
    ProgressGuard guard(needs_context_lock(), main_context(),
                        process_.machine().params().context_lock_cost);
    main_context().send(service_endpoint(remote.rank), kDispatchStridedGetReq,
                        std::move(header), {}, nullptr, "strided get request");
  }
}

void Comm::nb_put_strided(const void* src, RemotePtr dst, const StridedSpec& spec,
                          Handle& handle) {
  PGASQ_CHECK(src != nullptr && dst.valid());
  ++stats_.strided_puts;
  stats_.bytes_put += spec.total_bytes();
  stats_.put_sizes.add(spec.total_bytes());
  auto remote = resolve_remote_region(dst.rank, dst.addr, spec.dst_extent());
  auto local = resolve_local_region(src, spec.src_extent());
  const bool have = remote.has_value() && local.has_value();
  switch (choose_strided_protocol(spec, have)) {
    case StridedProtocol::kZeroCopy:
      ensure_endpoint(dst.rank, 0);
      strided_zero_copy(Dir::kPut, static_cast<std::byte*>(const_cast<void*>(src)),
                        *local, dst, *remote, spec, handle);
      break;
    case StridedProtocol::kTyped:
      ensure_endpoint(dst.rank, 0);
      strided_typed(Dir::kPut, static_cast<std::byte*>(const_cast<void*>(src)),
                    *local, dst, *remote, spec, handle);
      break;
    case StridedProtocol::kPackUnpack:
      strided_packed(Dir::kPut, static_cast<std::byte*>(const_cast<void*>(src)), dst,
                     spec, handle);
      break;
    case StridedProtocol::kAuto:
      PGASQ_UNREACHABLE("auto resolved earlier");
  }
}

void Comm::nb_get_strided(RemotePtr src, void* dst, const StridedSpec& spec,
                          Handle& handle) {
  PGASQ_CHECK(dst != nullptr && src.valid());
  ++stats_.strided_gets;
  stats_.bytes_got += spec.total_bytes();
  stats_.get_sizes.add(spec.total_bytes());
  auto remote = resolve_remote_region(src.rank, src.addr, spec.src_extent());
  maybe_fence_before_read(src.rank, remote ? remote->id : 0);
  auto local = resolve_local_region(dst, spec.dst_extent());
  const bool have = remote.has_value() && local.has_value();
  switch (choose_strided_protocol(spec, have)) {
    case StridedProtocol::kZeroCopy:
      ensure_endpoint(src.rank, 0);
      strided_zero_copy(Dir::kGet, static_cast<std::byte*>(dst), *local, src, *remote,
                        spec, handle);
      break;
    case StridedProtocol::kTyped:
      ensure_endpoint(src.rank, 0);
      strided_typed(Dir::kGet, static_cast<std::byte*>(dst), *local, src, *remote,
                    spec, handle);
      break;
    case StridedProtocol::kPackUnpack:
      strided_packed(Dir::kGet, static_cast<std::byte*>(dst), src, spec, handle);
      break;
    case StridedProtocol::kAuto:
      PGASQ_UNREACHABLE("auto resolved earlier");
  }
}

void Comm::nb_acc_strided(double alpha, const double* src, RemotePtr dst,
                          const StridedSpec& spec, Handle& handle) {
  PGASQ_CHECK(src != nullptr && dst.valid());
  ++stats_.strided_accs;
  const auto& p = process_.machine().params();
  const std::uint64_t total = spec.total_bytes();
  stats_.bytes_acc += total;
  stats_.acc_sizes.add(total);
  PGASQ_CHECK(spec.chunk_bytes() % sizeof(double) == 0,
              << "accumulate chunks must be whole doubles");
  ConflictTracker::Key key;
  track_write(dst.rank, known_region_id(dst.rank, dst.addr, 1), &key);
  attach(handle, 1);
  ensure_endpoint(dst.rank, service_context_index_);
  // Accumulates always travel as active messages (the target must
  // apply the reduction), packed in canonical chunk order.
  process_.busy(from_ns(p.pack_ns_per_byte * static_cast<double>(total)));
  std::vector<std::byte> payload(total);
  std::uint64_t pos = 0;
  const auto* lbase = reinterpret_cast<const std::byte*>(src);
  spec.for_each_chunk([&](std::uint64_t soff, std::uint64_t) {
    std::memcpy(payload.data() + pos, lbase + soff, spec.chunk_bytes());
    pos += spec.chunk_bytes();
  });
  std::vector<std::byte> header;
  append_pod(header, StridedWriteHeader{dst.addr, new AckClosure{this, key, nullptr}, alpha,
                                        /*is_acc=*/1});
  append_spec(header, spec);
  ProgressGuard guard(needs_context_lock(), main_context(),
                      process_.machine().params().context_lock_cost);
  main_context().send(service_endpoint(dst.rank), kDispatchStridedWrite,
                      std::move(header), std::move(payload), make_done(handle),
                      "strided accumulate");
}

void Comm::put_strided(const void* src, RemotePtr dst, const StridedSpec& spec) {
  const Time t0 = now();
  Handle h;
  nb_put_strided(src, dst, spec, h);
  progress_until([&h] { return h.done(); });
  stats_.time_in_put += now() - t0;
}

void Comm::get_strided(RemotePtr src, void* dst, const StridedSpec& spec) {
  const Time t0 = now();
  Handle h;
  nb_get_strided(src, dst, spec, h);
  progress_until([&h] { return h.done(); });
  stats_.time_in_get += now() - t0;
}

void Comm::acc_strided(double alpha, const double* src, RemotePtr dst,
                       const StridedSpec& spec) {
  const Time t0 = now();
  Handle h;
  nb_acc_strided(alpha, src, dst, spec, h);
  progress_until([&h] { return h.done(); });
  stats_.time_in_acc += now() - t0;
}

// ---------------------------------------------------------------------------
// General I/O-vector RMA (S II-B: the third ARMCI data type)
// ---------------------------------------------------------------------------

namespace {
void validate_vector(const Comm::VectorDescriptor& desc) {
  PGASQ_CHECK(desc.segment_bytes > 0, << "empty vector segments");
  PGASQ_CHECK(!desc.local.empty(), << "vector descriptor with no segments");
  PGASQ_CHECK(desc.local.size() == desc.remote.size(),
              << "local/remote segment count mismatch: " << desc.local.size()
              << " vs " << desc.remote.size());
}
}  // namespace

bool Comm::resolve_vector_regions(RankId target, const VectorDescriptor& desc,
                                  std::vector<pami::MemoryRegion>* local_mrs,
                                  std::vector<pami::MemoryRegion>* remote_mrs) {
  local_mrs->clear();
  remote_mrs->clear();
  local_mrs->reserve(desc.count());
  remote_mrs->reserve(desc.count());
  for (std::size_t i = 0; i < desc.count(); ++i) {
    auto l = resolve_local_region(desc.local[i], desc.segment_bytes);
    auto r = resolve_remote_region(target, desc.remote[i], desc.segment_bytes);
    if (!l || !r) return false;
    local_mrs->push_back(*l);
    remote_mrs->push_back(*r);
  }
  return true;
}

void Comm::nb_put_v(RankId target, const VectorDescriptor& desc, Handle& handle) {
  validate_vector(desc);
  ++stats_.puts;
  stats_.bytes_put += desc.total_bytes();
  stats_.put_sizes.add(desc.total_bytes());
  std::vector<pami::MemoryRegion> lmrs, rmrs;
  if (resolve_vector_regions(target, desc, &lmrs, &rmrs)) {
    // Zero-copy: one RDMA per segment, like the strided protocol.
    attach(handle, static_cast<int>(desc.count()));
    stats_.zero_copy_chunks += desc.count();
    ensure_endpoint(target, 0);
    ProgressGuard guard(needs_context_lock(), main_context(),
                        process_.machine().params().context_lock_cost);
    for (std::size_t i = 0; i < desc.count(); ++i) {
      ConflictTracker::Key key;
      track_write(target, rmrs[i].id, &key);
      main_context().rput(
          lmrs[i], static_cast<std::uint64_t>(desc.local[i] - lmrs[i].base),
          rmrs[i], static_cast<std::uint64_t>(desc.remote[i] - rmrs[i].base),
          desc.segment_bytes, make_done(handle), make_ack(key));
    }
    return;
  }
  // Packed fall-back: one AM carrying the address list + payload.
  ++stats_.packed_ops;
  attach(handle, 1);
  ConflictTracker::Key key;
  track_write(target, 0, &key);
  ensure_endpoint(target, service_context_index_);
  const auto& p = process_.machine().params();
  process_.busy(from_ns(p.pack_ns_per_byte * static_cast<double>(desc.total_bytes())));
  std::vector<std::byte> header;
  append_pod(header, VectorWriteHeader{desc.count(), desc.segment_bytes, 0.0,
                                       /*is_acc=*/0, new AckClosure{this, key, nullptr}});
  for (auto* r : desc.remote) append_pod(header, r);
  std::vector<std::byte> payload(desc.total_bytes());
  for (std::size_t i = 0; i < desc.count(); ++i) {
    std::memcpy(payload.data() + i * desc.segment_bytes, desc.local[i],
                desc.segment_bytes);
  }
  ProgressGuard guard(needs_context_lock(), main_context(),
                      process_.machine().params().context_lock_cost);
  main_context().send(service_endpoint(target), kDispatchVectorWrite,
                      std::move(header), std::move(payload), make_done(handle),
                      "vector write");
}

void Comm::nb_get_v(RankId target, const VectorDescriptor& desc, Handle& handle) {
  validate_vector(desc);
  ++stats_.gets;
  stats_.bytes_got += desc.total_bytes();
  stats_.get_sizes.add(desc.total_bytes());
  std::vector<pami::MemoryRegion> lmrs, rmrs;
  if (resolve_vector_regions(target, desc, &lmrs, &rmrs)) {
    for (std::size_t i = 0; i < desc.count(); ++i) {
      maybe_fence_before_read(target, rmrs[i].id);
    }
    attach(handle, static_cast<int>(desc.count()));
    stats_.zero_copy_chunks += desc.count();
    ensure_endpoint(target, 0);
    ProgressGuard guard(needs_context_lock(), main_context(),
                        process_.machine().params().context_lock_cost);
    for (std::size_t i = 0; i < desc.count(); ++i) {
      main_context().rget(
          lmrs[i], static_cast<std::uint64_t>(desc.local[i] - lmrs[i].base),
          rmrs[i], static_cast<std::uint64_t>(desc.remote[i] - rmrs[i].base),
          desc.segment_bytes, make_done(handle));
    }
    return;
  }
  maybe_fence_before_read(target, 0);
  ++stats_.packed_ops;
  attach(handle, 1);
  ensure_endpoint(target, service_context_index_);
  auto* closure = new VectorGetClosure{handle.state(), desc.local,
                                       desc.segment_bytes};
  std::vector<std::byte> header;
  append_pod(header, VectorGetReqHeader{desc.count(), desc.segment_bytes, closure});
  for (auto* r : desc.remote) append_pod(header, r);
  ProgressGuard guard(needs_context_lock(), main_context(),
                      process_.machine().params().context_lock_cost);
  main_context().send(service_endpoint(target), kDispatchVectorGetReq,
                      std::move(header), {}, nullptr, "vector get request");
}

void Comm::nb_acc_v(double alpha, RankId target, const VectorDescriptor& desc,
                    Handle& handle) {
  validate_vector(desc);
  PGASQ_CHECK(desc.segment_bytes % sizeof(double) == 0,
              << "acc_v segments must be whole doubles");
  ++stats_.accs;
  stats_.bytes_acc += desc.total_bytes();
  stats_.acc_sizes.add(desc.total_bytes());
  // Accumulates always go through the target's reduction handler.
  attach(handle, 1);
  ConflictTracker::Key key;
  track_write(target, 0, &key);
  ensure_endpoint(target, service_context_index_);
  const auto& p = process_.machine().params();
  process_.busy(from_ns(p.pack_ns_per_byte * static_cast<double>(desc.total_bytes())));
  std::vector<std::byte> header;
  append_pod(header, VectorWriteHeader{desc.count(), desc.segment_bytes, alpha,
                                       /*is_acc=*/1, new AckClosure{this, key, nullptr}});
  for (auto* r : desc.remote) append_pod(header, r);
  std::vector<std::byte> payload(desc.total_bytes());
  for (std::size_t i = 0; i < desc.count(); ++i) {
    std::memcpy(payload.data() + i * desc.segment_bytes, desc.local[i],
                desc.segment_bytes);
  }
  ProgressGuard guard(needs_context_lock(), main_context(),
                      process_.machine().params().context_lock_cost);
  main_context().send(service_endpoint(target), kDispatchVectorWrite,
                      std::move(header), std::move(payload), make_done(handle),
                      "vector accumulate");
}

void Comm::put_v(RankId target, const VectorDescriptor& desc) {
  const Time t0 = now();
  Handle h;
  nb_put_v(target, desc, h);
  progress_until([&h] { return h.done(); });
  stats_.time_in_put += now() - t0;
}

void Comm::get_v(RankId target, const VectorDescriptor& desc) {
  const Time t0 = now();
  Handle h;
  nb_get_v(target, desc, h);
  progress_until([&h] { return h.done(); });
  stats_.time_in_get += now() - t0;
}

void Comm::acc_v(double alpha, RankId target, const VectorDescriptor& desc) {
  const Time t0 = now();
  Handle h;
  nb_acc_v(alpha, target, desc, h);
  progress_until([&h] { return h.done(); });
  stats_.time_in_acc += now() - t0;
}

void Comm::on_vector_write(pami::Context& ctx, const pami::AmMessage& msg) {
  const std::byte* p = msg.header.data();
  const auto h = read_pod<VectorWriteHeader>(p);
  const auto& params = process_.machine().params();
  const double rate = h.is_acc ? params.acc_apply_ns_per_byte : params.pack_ns_per_byte;
  process_.busy(from_ns(rate * static_cast<double>(h.segments * h.segment_bytes)));
  for (std::uint64_t i = 0; i < h.segments; ++i) {
    auto* dst = read_pod<std::byte*>(p);
    const std::byte* src = msg.payload.data() + i * h.segment_bytes;
    if (h.is_acc) {
      auto* d = reinterpret_cast<double*>(dst);
      const auto* s = reinterpret_cast<const double*>(src);
      for (std::uint64_t k = 0; k < h.segment_bytes / sizeof(double); ++k) {
        d[k] += h.alpha * s[k];
      }
    } else {
      std::memcpy(dst, src, h.segment_bytes);
    }
  }
  auto* closure = static_cast<AckClosure*>(h.ack);
  auto& m = process_.machine();
  const int src_node = m.mapping().node_of_rank(msg.source.rank);
  const auto ack = ctx.wire_control(process_.node(), src_node, now(), "write ack");
  m.engine().schedule_at(ack.arrive, [closure] {
    closure->source->write_acked_from_wire(closure->key);
    if (closure->extra) closure->extra();
    delete closure;
  });
}

void Comm::on_vector_get_request(pami::Context& ctx, const pami::AmMessage& msg) {
  const std::byte* p = msg.header.data();
  const auto h = read_pod<VectorGetReqHeader>(p);
  const auto& params = process_.machine().params();
  process_.busy(from_ns(params.pack_ns_per_byte *
                        static_cast<double>(h.segments * h.segment_bytes)));
  std::vector<std::byte> payload(h.segments * h.segment_bytes);
  for (std::uint64_t i = 0; i < h.segments; ++i) {
    const auto* src = read_pod<std::byte*>(p);
    std::memcpy(payload.data() + i * h.segment_bytes, src, h.segment_bytes);
  }
  std::vector<std::byte> reply;
  append_pod(reply, StridedGetRepHeader{h.closure});  // same shape: a cookie
  ctx.send(msg.source, kDispatchVectorGetRep, std::move(reply), std::move(payload),
           nullptr, "vector get reply");
}

void Comm::on_vector_get_reply(pami::Context& ctx, const pami::AmMessage& msg) {
  const std::byte* p = msg.header.data();
  const auto h = read_pod<StridedGetRepHeader>(p);
  auto* closure = static_cast<VectorGetClosure*>(h.closure);
  const auto& params = process_.machine().params();
  process_.busy(from_ns(params.pack_ns_per_byte *
                        static_cast<double>(msg.payload.size())));
  for (std::size_t i = 0; i < closure->local.size(); ++i) {
    std::memcpy(closure->local[i], msg.payload.data() + i * closure->segment_bytes,
                closure->segment_bytes);
  }
  handle_complete_one(*closure->state);
  delete closure;
  (void)ctx;
}

// ---------------------------------------------------------------------------
// Atomic memory operations
// ---------------------------------------------------------------------------

namespace {
std::int64_t* checked_word(const RemotePtr& p) {
  PGASQ_CHECK(p.valid());
  PGASQ_CHECK(reinterpret_cast<std::uintptr_t>(p.addr) % alignof(std::int64_t) == 0,
              << "rmw target must be 8-byte aligned");
  return reinterpret_cast<std::int64_t*>(p.addr);
}
}  // namespace

void Comm::throw_op_expired(const char* what, RankId target) {
  auto& m = process_.machine();
  if (flow::Controller* fc = m.flow()) fc->note_client_expiry(now());
  const int src_node = process_.node();
  const int dst_node = m.mapping().node_of_rank(target);
  std::ostringstream os;
  os << "flow: " << what << " from rank " << rank() << " to rank " << target
     << " shed — its deadline passed before the server reached it";
  throw flow::DeadlineError(what, src_node, dst_node, 0, os.str());
}

std::int64_t Comm::fetch_add(RemotePtr counter, std::int64_t delta) {
  ++stats_.rmws;
  const Time t0 = now();
  maybe_fence_before_read(counter.rank,
                          known_region_id(counter.rank, counter.addr, 8));
  ensure_endpoint(counter.rank, service_context_index_);
  // Heap-shared completion box: a fail-stop abort can unwind this frame
  // while the reply event is still in flight.
  auto box = std::make_shared<std::pair<bool, std::int64_t>>(false, 0);
  {
    ProgressGuard guard(needs_context_lock(), main_context(),
                        process_.machine().params().context_lock_cost);
    main_context().rmw(service_endpoint(counter.rank), checked_word(counter),
                       pami::RmwOp::kFetchAdd, delta, 0,
                       [box](std::int64_t old) {
                         box->second = old;
                         box->first = true;
                       },
                       op_deadline_);
  }
  progress_until([box] { return box->first; });
  stats_.time_in_rmw += now() - t0;
  if (op_deadline_ != 0 && box->second == flow::kExpiredRmw) {
    throw_op_expired("fetch_add", counter.rank);
  }
  return box->second;
}

std::int64_t Comm::swap(RemotePtr word, std::int64_t value) {
  ++stats_.rmws;
  const Time t0 = now();
  maybe_fence_before_read(word.rank, known_region_id(word.rank, word.addr, 8));
  ensure_endpoint(word.rank, service_context_index_);
  auto box = std::make_shared<std::pair<bool, std::int64_t>>(false, 0);
  {
    ProgressGuard guard(needs_context_lock(), main_context(),
                        process_.machine().params().context_lock_cost);
    main_context().rmw(service_endpoint(word.rank), checked_word(word),
                       pami::RmwOp::kSwap, value, 0,
                       [box](std::int64_t old) {
                         box->second = old;
                         box->first = true;
                       },
                       op_deadline_);
  }
  progress_until([box] { return box->first; });
  stats_.time_in_rmw += now() - t0;
  if (op_deadline_ != 0 && box->second == flow::kExpiredRmw) {
    throw_op_expired("swap", word.rank);
  }
  return box->second;
}

std::int64_t Comm::compare_swap(RemotePtr word, std::int64_t compare,
                                std::int64_t value) {
  ++stats_.rmws;
  const Time t0 = now();
  maybe_fence_before_read(word.rank, known_region_id(word.rank, word.addr, 8));
  ensure_endpoint(word.rank, service_context_index_);
  auto box = std::make_shared<std::pair<bool, std::int64_t>>(false, 0);
  {
    ProgressGuard guard(needs_context_lock(), main_context(),
                        process_.machine().params().context_lock_cost);
    main_context().rmw(service_endpoint(word.rank), checked_word(word),
                       pami::RmwOp::kCompareSwap, value, compare,
                       [box](std::int64_t old) {
                         box->second = old;
                         box->first = true;
                       },
                       op_deadline_);
  }
  progress_until([box] { return box->first; });
  stats_.time_in_rmw += now() - t0;
  if (op_deadline_ != 0 && box->second == flow::kExpiredRmw) {
    throw_op_expired("compare_swap", word.rank);
  }
  return box->second;
}

// ---------------------------------------------------------------------------
// Mutexes
// ---------------------------------------------------------------------------

MutexSet Comm::create_mutexes(int count) {
  PGASQ_CHECK(count >= 1);
  MutexSet set;
  set.count_ = count;
  set.mem_ = &malloc_collective(static_cast<std::size_t>(count) * sizeof(std::int64_t));
  return set;
}

void Comm::lock(MutexSet& set, int mutex, RankId owner) {
  PGASQ_CHECK(set.mem_ != nullptr && mutex >= 0 && mutex < set.count_);
  const RemotePtr word =
      set.mem_->at(owner, static_cast<std::size_t>(mutex) * sizeof(std::int64_t));
  using namespace literals;
  Time backoff = 1_us;
  while (compare_swap(word, 0, 1) != 0) {
    compute(backoff);
    backoff = std::min<Time>(backoff * 2, 64_us);
  }
}

void Comm::unlock(MutexSet& set, int mutex, RankId owner) {
  PGASQ_CHECK(set.mem_ != nullptr && mutex >= 0 && mutex < set.count_);
  const RemotePtr word =
      set.mem_->at(owner, static_cast<std::size_t>(mutex) * sizeof(std::int64_t));
  const std::int64_t old = swap(word, 0);
  PGASQ_CHECK(old == 1, << "unlock of mutex not held (state " << old << ")");
}

// ---------------------------------------------------------------------------
// Dispatch handlers (target side)
// ---------------------------------------------------------------------------

void Comm::on_acc_message(pami::Context& ctx, const pami::AmMessage& msg) {
  const std::byte* p = msg.header.data();
  const auto h = read_pod<AccHeader>(p);
  const auto& params = process_.machine().params();
  // An expired accumulate is shed: the arithmetic (and its daxpy-rate
  // service time) is skipped, but the ack below still flows — the
  // sender's fence accounting must see every write retire.
  if (!msg.expired) {
    process_.busy(from_ns(params.acc_apply_ns_per_byte *
                          static_cast<double>(msg.payload.size())));
    switch (h.type) {
      case AccWireType::kInt32:
        apply_acc<std::int32_t>(h.dst, msg.payload.data(), h.count, h.alpha);
        break;
      case AccWireType::kInt64:
        apply_acc<std::int64_t>(h.dst, msg.payload.data(), h.count, h.alpha);
        break;
      case AccWireType::kFloat:
        apply_acc<float>(h.dst, msg.payload.data(), h.count, h.alpha);
        break;
      case AccWireType::kDouble:
        apply_acc<double>(h.dst, msg.payload.data(), h.count, h.alpha);
        break;
      case AccWireType::kComplexDouble:
        apply_acc<std::complex<double>>(h.dst, msg.payload.data(), h.count,
                                        h.alpha);
        break;
    }
  }
  // NIC-level ack back to the writer for its fence accounting.
  auto* closure = static_cast<AckClosure*>(h.ack);
  auto& m = process_.machine();
  const int src_node = m.mapping().node_of_rank(msg.source.rank);
  const auto ack = ctx.wire_control(process_.node(), src_node, now(), "write ack");
  m.engine().schedule_at(ack.arrive, [closure] {
    closure->source->write_acked_from_wire(closure->key);
    if (closure->extra) closure->extra();
    delete closure;
  });
}

void Comm::write_acked_from_wire(const ConflictTracker::Key& key) {
  tracker_->on_write_acked(key);
  // Wake any fiber fencing on this: the ack is a zero-cost item.
  main_context().post_completion([] {}, 0);
}

void Comm::on_region_query(pami::Context& ctx, const pami::AmMessage& msg) {
  const std::byte* p = msg.header.data();
  const auto h = read_pod<RegionQueryHeader>(p);
  const auto found = process_.regions().find(h.addr, h.bytes);
  std::vector<std::byte> reply;
  append_pod(reply, RegionReplyHeader{h.box, found.value_or(pami::MemoryRegion{}),
                                      found.has_value()});
  ctx.send(msg.source, kDispatchRegionReply, std::move(reply), {}, nullptr,
           "region reply");
}

void Comm::on_region_reply(pami::Context& ctx, const pami::AmMessage& msg) {
  const std::byte* p = msg.header.data();
  const auto h = read_pod<RegionReplyHeader>(p);
  auto* cookie = static_cast<std::shared_ptr<RegionReplyBox>*>(h.box);
  (*cookie)->found = h.found;
  (*cookie)->region = h.region;
  (*cookie)->done = true;
  delete cookie;
  (void)ctx;
}

void Comm::on_strided_put(pami::Context& ctx, const pami::AmMessage& msg) {
  const std::byte* p = msg.header.data();
  const auto h = read_pod<StridedWriteHeader>(p);
  const StridedSpec spec = read_spec(p);
  const auto& params = process_.machine().params();
  const std::uint64_t total = spec.total_bytes();
  const double rate = h.is_acc ? params.acc_apply_ns_per_byte : params.pack_ns_per_byte;
  process_.busy(from_ns(rate * static_cast<double>(total)));
  // Scatter the canonical-order payload through the destination spec.
  std::uint64_t pos = 0;
  spec.for_each_chunk([&](std::uint64_t, std::uint64_t doff) {
    if (h.is_acc) {
      auto* dst = reinterpret_cast<double*>(h.dst_base + doff);
      const auto* src = reinterpret_cast<const double*>(msg.payload.data() + pos);
      for (std::uint64_t i = 0; i < spec.chunk_bytes() / sizeof(double); ++i) {
        dst[i] += h.alpha * src[i];
      }
    } else {
      std::memcpy(h.dst_base + doff, msg.payload.data() + pos, spec.chunk_bytes());
    }
    pos += spec.chunk_bytes();
  });
  auto* closure = static_cast<AckClosure*>(h.ack);
  auto& m = process_.machine();
  const int src_node = m.mapping().node_of_rank(msg.source.rank);
  const auto ack = ctx.wire_control(process_.node(), src_node, now(), "write ack");
  m.engine().schedule_at(ack.arrive, [closure] {
    closure->source->write_acked_from_wire(closure->key);
    if (closure->extra) closure->extra();
    delete closure;
  });
}

void Comm::on_strided_get_request(pami::Context& ctx, const pami::AmMessage& msg) {
  const std::byte* p = msg.header.data();
  const auto h = read_pod<StridedGetReqHeader>(p);
  const StridedSpec spec = read_spec(p);
  const auto& params = process_.machine().params();
  const std::uint64_t total = spec.total_bytes();
  // Pack at the data owner (Eq 8's remote "o" plus copy cost).
  process_.busy(from_ns(params.pack_ns_per_byte * static_cast<double>(total)));
  std::vector<std::byte> payload(total);
  std::uint64_t pos = 0;
  // The get's spec src side addresses this (remote) rank's memory.
  spec.for_each_chunk([&](std::uint64_t soff, std::uint64_t) {
    std::memcpy(payload.data() + pos, h.src_base + soff, spec.chunk_bytes());
    pos += spec.chunk_bytes();
  });
  std::vector<std::byte> reply;
  append_pod(reply, StridedGetRepHeader{h.closure});
  ctx.send(msg.source, kDispatchStridedGetRep, std::move(reply), std::move(payload),
           nullptr, "strided get reply");
}

void Comm::on_strided_get_reply(pami::Context& ctx, const pami::AmMessage& msg) {
  const std::byte* p = msg.header.data();
  const auto h = read_pod<StridedGetRepHeader>(p);
  auto* closure = static_cast<GetReplyClosure*>(h.closure);
  const auto& params = process_.machine().params();
  const std::uint64_t total = closure->spec.total_bytes();
  process_.busy(from_ns(params.pack_ns_per_byte * static_cast<double>(total)));
  std::uint64_t pos = 0;
  closure->spec.for_each_chunk([&](std::uint64_t, std::uint64_t doff) {
    std::memcpy(closure->local_base + doff, msg.payload.data() + pos,
                closure->spec.chunk_bytes());
    pos += closure->spec.chunk_bytes();
  });
  handle_complete_one(*closure->state);
  delete closure;
  (void)ctx;
}

void handle_complete_one(HandleState& s) {
  PGASQ_CHECK(s.outstanding > 0, << "handle completion underflow");
  if (--s.outstanding == 0 && s.on_zero) {
    // Single-shot: the bridge must not survive into a reuse of the
    // handle for later operations.
    auto fire = std::move(s.on_zero);
    s.on_zero = nullptr;
    fire();
  }
}

void CommStats::merge(const CommStats& o) {
  puts += o.puts;
  gets += o.gets;
  accs += o.accs;
  rmws += o.rmws;
  strided_puts += o.strided_puts;
  strided_gets += o.strided_gets;
  strided_accs += o.strided_accs;
  rdma_puts += o.rdma_puts;
  rdma_gets += o.rdma_gets;
  fallback_puts += o.fallback_puts;
  fallback_gets += o.fallback_gets;
  typed_ops += o.typed_ops;
  zero_copy_chunks += o.zero_copy_chunks;
  packed_ops += o.packed_ops;
  bytes_put += o.bytes_put;
  bytes_got += o.bytes_got;
  bytes_acc += o.bytes_acc;
  gets_revoked += o.gets_revoked;
  region_cache_hits += o.region_cache_hits;
  region_cache_misses += o.region_cache_misses;
  region_queries_sent += o.region_queries_sent;
  fence_calls += o.fence_calls;
  forced_fences += o.forced_fences;
  endpoints_created += o.endpoints_created;
  retransmits += o.retransmits;
  retransmit_backoff += o.retransmit_backoff;
  progress_stalls += o.progress_stalls;
  progress_stall_time += o.progress_stall_time;
  time_in_get += o.time_in_get;
  time_in_put += o.time_in_put;
  time_in_acc += o.time_in_acc;
  time_in_rmw += o.time_in_rmw;
  time_in_fence += o.time_in_fence;
  time_in_barrier += o.time_in_barrier;
  time_in_wait += o.time_in_wait;
  put_sizes.merge(o.put_sizes);
  get_sizes.merge(o.get_sizes);
  acc_sizes.merge(o.acc_sizes);
  coll.merge(o.coll);
  for (const auto& [label, gc] : o.group_coll) group_coll[label].merge(gc);
}

std::uint64_t CollStats::total_ops() const {
  std::uint64_t n = 0;
  for (const auto& per_op : count) {
    for (const std::uint64_t c : per_op) n += c;
  }
  return n;
}

Time CollStats::total_time() const {
  Time t = 0;
  for (const auto& per_op : time) {
    for (const Time dt : per_op) t += dt;
  }
  return t;
}

Time CollStats::data_time() const {
  Time t = 0;
  for (int op = 1; op < kOps; ++op) {  // 0 = barrier
    for (const Time dt : time[op]) t += dt;
  }
  return t;
}

void CollStats::merge(const CollStats& o) {
  for (int op = 0; op < kOps; ++op) {
    for (int a = 0; a < kAlgos; ++a) {
      count[op][a] += o.count[op][a];
      bytes[op][a] += o.bytes[op][a];
      time[op][a] += o.time[op][a];
    }
  }
  scratch_reallocs += o.scratch_reallocs;
}

}  // namespace pgasq::armci
