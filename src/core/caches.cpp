#include "core/caches.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace pgasq::armci {

EndpointCache::EndpointCache(int num_ranks, int contexts_per_rank)
    : contexts_per_rank_(contexts_per_rank),
      created_(static_cast<std::size_t>(num_ranks) *
                   static_cast<std::size_t>(contexts_per_rank),
               0) {
  PGASQ_CHECK(num_ranks >= 1 && contexts_per_rank >= 1);
}

bool EndpointCache::lookup_or_mark(RankId rank, int context) {
  const auto idx = static_cast<std::size_t>(rank) *
                       static_cast<std::size_t>(contexts_per_rank_) +
                   static_cast<std::size_t>(context);
  PGASQ_CHECK(idx < created_.size(), << "endpoint (" << rank << "," << context << ")");
  if (created_[idx]) return true;
  created_[idx] = 1;
  ++created_count_;
  return false;
}

RegionCache::RegionCache(std::size_t capacity, CacheReplacement policy)
    : capacity_(capacity), policy_(policy) {
  PGASQ_CHECK(capacity_ >= 1);
}

std::optional<pami::MemoryRegion> RegionCache::lookup(RankId rank,
                                                      const std::byte* addr,
                                                      std::size_t bytes) {
  for (auto& e : entries_) {
    if (e.rank == rank && e.region.covers(addr, bytes)) {
      ++e.frequency;
      e.last_use = ++use_clock_;
      ++hits_;
      return e.region;
    }
  }
  ++misses_;
  return std::nullopt;
}

void RegionCache::insert(RankId rank, const pami::MemoryRegion& region) {
  for (auto& e : entries_) {
    if (e.rank == rank && e.region.id == region.id) {
      e.region = region;
      ++e.frequency;
      e.last_use = ++use_clock_;
      return;
    }
  }
  if (entries_.size() >= capacity_) {
    // Pick the victim per policy; ties evict the oldest entry (lowest
    // index, since min_element keeps the first minimum).
    auto victim = std::min_element(
        entries_.begin(), entries_.end(), [this](const Entry& a, const Entry& b) {
          if (policy_ == CacheReplacement::kLfu) return a.frequency < b.frequency;
          return a.last_use < b.last_use;
        });
    entries_.erase(victim);
    ++evictions_;
  }
  entries_.push_back(Entry{rank, region, 1, ++use_clock_});
}

void RegionCache::invalidate_rank(RankId rank) {
  std::erase_if(entries_, [rank](const Entry& e) { return e.rank == rank; });
}

void RegionCache::invalidate(RankId rank, std::uint64_t region_id) {
  std::erase_if(entries_, [rank, region_id](const Entry& e) {
    return e.rank == rank && e.region.id == region_id;
  });
}

}  // namespace pgasq::armci
