#include "core/report.hpp"

#include <cstdio>
#include <sstream>

#include "fault/fault.hpp"
#include "fault/integrity.hpp"
#include "flow/flow.hpp"
#include "ft/liveness.hpp"
#include "obs/critpath.hpp"
#include "obs/link_usage.hpp"
#include "obs/timeline.hpp"
#include "sim/trace.hpp"
#include "util/table.hpp"

namespace pgasq::armci {

namespace {
std::string human_bytes(std::uint64_t b) {
  char buf[32];
  if (b >= (1ull << 30)) {
    std::snprintf(buf, sizeof buf, "%.2f GiB", static_cast<double>(b) / (1ull << 30));
  } else if (b >= (1ull << 20)) {
    std::snprintf(buf, sizeof buf, "%.2f MiB", static_cast<double>(b) / (1ull << 20));
  } else if (b >= (1ull << 10)) {
    std::snprintf(buf, sizeof buf, "%.2f KiB", static_cast<double>(b) / (1ull << 10));
  } else {
    std::snprintf(buf, sizeof buf, "%llu B", static_cast<unsigned long long>(b));
  }
  return buf;
}
}  // namespace

std::string render_report(const World& world, const ReportOptions& options) {
  const CommStats s = world.total_stats();
  std::ostringstream os;
  os << "=== pgasq communication report (" << world.num_ranks() << " ranks, "
     << world.machine().torus().to_string() << ") ===\n";
  os << "virtual time: " << to_ms(world.elapsed()) << " ms\n\n";

  Table ops({"operation", "count", "bytes", "rdma", "fallback/AM"});
  ops.row().add(std::string("put (contig+vector)")).add(s.puts)
      .add(human_bytes(s.bytes_put)).add(s.rdma_puts).add(s.fallback_puts);
  ops.row().add(std::string("get (contig+vector)")).add(s.gets)
      .add(human_bytes(s.bytes_got)).add(s.rdma_gets).add(s.fallback_gets);
  ops.row().add(std::string("accumulate")).add(s.accs)
      .add(human_bytes(s.bytes_acc)).add(0ull).add(s.accs);
  ops.row().add(std::string("strided put/get/acc"))
      .add(s.strided_puts + s.strided_gets + s.strided_accs)
      .add(std::string("-")).add(s.zero_copy_chunks + s.typed_ops).add(s.packed_ops);
  ops.row().add(std::string("rmw (fetch&add etc.)")).add(s.rmws)
      .add(human_bytes(s.rmws * 8)).add(0ull).add(s.rmws);
  os << ops.to_string() << '\n';

  Table sync({"synchronization", "value"});
  sync.row().add(std::string("fence calls")).add(s.fence_calls);
  sync.row().add(std::string("forced fences (conflicts)")).add(s.forced_fences);
  sync.row().add(std::string("endpoints created")).add(s.endpoints_created);
  sync.row().add(std::string("region cache hits/misses"))
      .add(std::to_string(s.region_cache_hits) + "/" +
           std::to_string(s.region_cache_misses));
  sync.row().add(std::string("region queries sent")).add(s.region_queries_sent);
  os << sync.to_string() << '\n';

  Table times({"blocked in", "seconds (sum over ranks)"});
  times.row().add(std::string("get")).add(to_s(s.time_in_get), 4);
  times.row().add(std::string("put")).add(to_s(s.time_in_put), 4);
  times.row().add(std::string("accumulate")).add(to_s(s.time_in_acc), 4);
  times.row().add(std::string("rmw (counters)")).add(to_s(s.time_in_rmw), 4);
  times.row().add(std::string("fence")).add(to_s(s.time_in_fence), 4);
  times.row().add(std::string("barrier")).add(to_s(s.time_in_barrier), 4);
  times.row().add(std::string("wait (nb handles)")).add(to_s(s.time_in_wait), 4);
  os << times.to_string();

  if (s.coll.total_ops() > 0) {
    os << '\n';
    Table coll({"collective", "algorithm", "count", "payload", "seconds"});
    for (int op = 0; op < CollStats::kOps; ++op) {
      for (int a = 0; a < CollStats::kAlgos; ++a) {
        if (s.coll.count[op][a] == 0) continue;
        coll.row()
            .add(std::string(kCollOpNames[op]))
            .add(std::string(kCollAlgoNames[a]))
            .add(s.coll.count[op][a])
            .add(human_bytes(s.coll.bytes[op][a]))
            .add(to_s(s.coll.time[op][a]), 4);
      }
    }
    if (s.coll.scratch_reallocs > 0) {
      coll.row().add(std::string("(scratch grows)")).add(std::string("-"))
          .add(s.coll.scratch_reallocs).add(std::string("-")).add(std::string("-"));
    }
    os << coll.to_string();
  }

  for (const auto& [label, gc] : s.group_coll) {
    if (gc.total_ops() == 0) continue;
    os << '\n';
    Table gt({"group '" + label + "'", "algorithm", "count", "payload", "seconds"});
    for (int op = 0; op < CollStats::kOps; ++op) {
      for (int a = 0; a < CollStats::kAlgos; ++a) {
        if (gc.count[op][a] == 0) continue;
        gt.row()
            .add(std::string(kCollOpNames[op]))
            .add(std::string(kCollAlgoNames[a]))
            .add(gc.count[op][a])
            .add(human_bytes(gc.bytes[op][a]))
            .add(to_s(gc.time[op][a]), 4);
      }
    }
    os << gt.to_string();
  }

  if (const fault::Injector* inj = world.machine().injector()) {
    const fault::FaultStats& f = inj->stats();
    os << '\n';
    Table faults({"fault injection & recovery", "value"});
    faults.row().add(std::string("packets dropped")).add(f.packets_dropped);
    faults.row().add(std::string("packets corrupted (flips injected)"))
        .add(f.packets_corrupted);
    faults.row().add(std::string("retransmits")).add(s.retransmits);
    faults.row().add(std::string("backoff seconds (sum over ranks)"))
        .add(to_s(s.retransmit_backoff), 4);
    faults.row().add(std::string("reroutes around failed links")).add(f.reroutes);
    faults.row().add(std::string("rerouted extra hops")).add(f.rerouted_extra_hops);
    faults.row().add(std::string("degraded-link transfers")).add(f.degraded_transfers);
    faults.row().add(std::string("progress stalls ridden out")).add(f.progress_stalls);
    faults.row().add(std::string("stall seconds")).add(to_s(f.stall_time), 4);
    faults.row().add(std::string("ranks per node (blast radius)"))
        .add(world.machine().mapping().ranks_per_node());
    os << faults.to_string();
  }

  if (const fault::Integrity* ig = world.machine().integrity()) {
    const fault::IntegrityStats& is = ig->stats();
    os << '\n';
    Table integ({"end-to-end integrity", "value"});
    integ.row().add(std::string("transport CRC checks")).add(is.crc_checks);
    integ.row().add(std::string("corruptions detected")).add(is.corruptions_detected);
    integ.row().add(std::string("NACKs sent")).add(is.nacks_sent);
    integ.row().add(std::string("NACK retransmits")).add(is.nack_retransmits);
    integ.row().add(std::string("echo-CRC acks")).add(is.echo_crc_acks);
    integ.row().add(std::string("collective slot checks")).add(is.coll_slot_checks);
    integ.row().add(std::string("collective slot rejects")).add(is.coll_slot_rejects);
    integ.row().add(std::string("collective slot re-fetches"))
        .add(is.coll_slot_refetches);
    integ.row().add(std::string("checkpoint digests computed"))
        .add(is.ckpt_digests_computed);
    integ.row().add(std::string("checkpoint digests validated"))
        .add(is.ckpt_digests_validated);
    integ.row().add(std::string("checkpoint digest mismatches"))
        .add(is.ckpt_digest_mismatches);
    integ.row().add(std::string("checkpoint fallback restores"))
        .add(is.ckpt_fallback_restores);
    os << integ.to_string();
  }

  if (const ft::HealthMonitor* mon = world.machine().monitor()) {
    const ft::FtStats& f = mon->stats();
    os << '\n';
    Table ft({"fail-stop recovery", "value"});
    ft.row().add(std::string("node deaths declared")).add(f.detections);
    ft.row().add(std::string("detection delay seconds (sum)"))
        .add(to_s(f.detection_delay), 6);
    ft.row().add(std::string("ranks lost")).add(f.ranks_lost);
    ft.row().add(std::string("ops quarantined (dead peers)")).add(f.quarantined_ops);
    ft.row().add(std::string("checkpoints committed")).add(f.checkpoints);
    ft.row().add(std::string("checkpoint bytes to buddies"))
        .add(human_bytes(f.checkpoint_bytes));
    ft.row().add(std::string("rollbacks")).add(f.rollbacks);
    ft.row().add(std::string("survivor ranks rolled back (sum)"))
        .add(f.rollback_ranks);
    ft.row().add(std::string("recovery seconds")).add(to_s(f.recovery_time), 6);
    os << ft.to_string();
  }

  if (const flow::Controller* fc = world.machine().flow()) {
    const flow::FlowStats& f = fc->stats();
    os << '\n';
    Table fl({"overload control (flow)", "value"});
    fl.row().add(std::string("credit window (per src,dst)"))
        .add(fc->config().credits);
    fl.row().add(std::string("credit stalls")).add(f.credit_stalls);
    fl.row().add(std::string("credit stall seconds (sum)"))
        .add(to_s(f.credit_stall_time), 6);
    fl.row().add(std::string("queue depth p50 / p99 / max"))
        .add(std::to_string(f.queue_depth.quantile(0.5)) + " / " +
             std::to_string(f.queue_depth.quantile(0.99)) + " / " +
             std::to_string(f.queue_depth.max()));
    fl.row().add(std::string("requests shed at server (expired)"))
        .add(f.expired_server);
    fl.row().add(std::string("requests expired at client")).add(f.expired_client);
    fl.row().add(std::string("shed by admission (low prio)"))
        .add(f.shed_low_prio);
    fl.row().add(std::string("shed by admission (high prio)"))
        .add(f.shed_high_prio);
    fl.row().add(std::string("retry budgets exhausted"))
        .add(f.retry_budget_exhausted);
    os << fl.to_string();
  }

  if (const obs::LinkUsage* lu = world.machine().link_usage()) {
    os << '\n'
       << lu->heatmap(1.0 / world.machine().params().g_ns_per_byte,
                      world.machine().config().obs.link_top);
  }

  if (const obs::Timeline* tl = world.machine().timeline()) {
    os << '\n' << tl->render(world.machine().config().obs.timeline_top);
  }

  if (const obs::CritPath* cp = world.machine().critpath()) {
    os << '\n' << cp->render();
  }

  if (world.app_metrics().size() != 0) {
    os << "\napplication metrics:\n" << world.app_metrics().to_text();
  }

  if (const sim::TraceRecorder* tr = world.machine().trace()) {
    os << "\ntrace: " << tr->event_count() << " events";
    if (tr->aggregate()) {
      os << " — aggregated (trace.aggregate=1, " << tr->aggregate_series()
         << " series)";
    }
    if (tr->sampling()) {
      os << " — sampled (trace.sample_ranks="
         << world.machine().config().trace_sample_ranks
         << "; unsampled ranks muted)";
    }
    if (tr->truncated()) {
      os << " — trace truncated at " << tr->max_events()
         << " events; later events were dropped (raise trace.max_events)";
    }
    os << '\n';
  }

  if (options.include_histograms && s.put_sizes.total() + s.get_sizes.total() > 0) {
    os << "\nput sizes (log2 buckets):\n" << s.put_sizes.to_string();
    os << "get sizes (log2 buckets):\n" << s.get_sizes.to_string();
    if (s.acc_sizes.total() > 0) {
      os << "acc sizes (log2 buckets):\n" << s.acc_sizes.to_string();
    }
  }

  if (options.include_per_rank) {
    os << '\n';
    Table per({"rank", "puts", "gets", "accs", "rmws", "rmw_ms", "fence_ms"});
    const int limit = std::min(world.num_ranks(), options.per_rank_limit);
    for (int r = 0; r < limit; ++r) {
      const CommStats& rs = world.stats(r);
      per.row().add(r).add(rs.puts).add(rs.gets).add(rs.accs).add(rs.rmws)
          .add(to_ms(rs.time_in_rmw), 3).add(to_ms(rs.time_in_fence), 3);
    }
    os << per.to_string();
    if (world.num_ranks() > limit) {
      os << "(" << world.num_ranks() - limit << " more ranks elided)\n";
    }
  }
  return os.str();
}

void print_report(const World& world, const ReportOptions& options) {
  std::fputs(render_report(world, options).c_str(), stdout);
}

}  // namespace pgasq::armci
