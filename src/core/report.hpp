// Post-run communication report: renders a World's aggregated
// statistics — operation mix, protocol routing, bytes, blocking-time
// breakdown, message-size distributions — as the kind of summary a
// communication runtime prints at finalize.
#pragma once

#include <string>

#include "core/world.hpp"

namespace pgasq::armci {

struct ReportOptions {
  bool include_histograms = true;
  bool include_per_rank = false;
  /// Per-rank rows are elided beyond this many ranks.
  int per_rank_limit = 16;
};

/// Renders the report as plain text.
std::string render_report(const World& world, const ReportOptions& options = {});

/// Convenience: render and print to stdout.
void print_report(const World& world, const ReportOptions& options = {});

}  // namespace pgasq::armci
