// Conflicting-memory-access tracking for location consistency (S III-E).
//
// ARMCI guarantees location consistency: a read (get) of a location
// must observe any earlier write (put/accumulate) this process issued
// to that location. The runtime enforces it by fencing outstanding
// writes to a target before servicing a read from it.
//
//  * kPerTarget (naive): one read/write status per clique member —
//    Theta(zeta) space but false positives: a get of matrix A forces a
//    fence of pending accumulates to matrix C on the same target even
//    though the structures are disjoint (the paper's dgemm example).
//  * kPerRegion: an 8-bit status per (distributed structure, target) —
//    Theta(sigma * zeta) space; reads fence only writes to the same
//    memory region.
//
// The tracker maintains outstanding-write counts keyed accordingly;
// remote acknowledgements (NIC-level for RDMA puts, post-apply for
// accumulates) decrement them.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/types.hpp"

namespace pgasq::armci {

/// 8-bit communication-status word per tracked unit (cs_mr / cs_tgt).
struct StatusBits {
  static constexpr std::uint8_t kRead = 0x1;
  static constexpr std::uint8_t kWrite = 0x2;
};

class ConflictTracker {
 public:
  ConflictTracker(ConsistencyMode mode, int num_ranks);

  /// Key identifying the written structure. Region id 0 means
  /// "unknown region" and conservatively aliases everything on that
  /// target.
  struct Key {
    RankId target;
    std::uint64_t region_id;
    /// Quiesce generation the write was initiated in; acks from an
    /// earlier generation are stale and ignored.
    std::uint64_t gen = 0;
  };

  /// Records an initiated write; returns the key the eventual ack must
  /// be reported with.
  Key on_write_initiated(RankId target, std::uint64_t region_id);
  /// Records a write acknowledgement.
  void on_write_acked(const Key& key);

  /// Forgets every in-flight write and bumps the quiesce generation
  /// (fail-stop recovery: writes toward a dead peer will never ack, and
  /// late acks from before the quiesce must not debit new writes).
  void reset_outstanding();

  /// True if a read of (target, region_id) conflicts with outstanding
  /// writes under the configured mode — the caller must fence first.
  bool read_requires_fence(RankId target, std::uint64_t region_id) const;

  /// Outstanding writes to a target (any region).
  std::uint64_t outstanding_to(RankId target) const;
  /// Outstanding writes to one region of a target (per-region mode).
  std::uint64_t outstanding_to_region(RankId target, std::uint64_t region_id) const;
  /// Outstanding writes to every target.
  std::uint64_t outstanding_total() const { return total_; }

  /// 8-bit status word for diagnostics/tests (cs_mr or cs_tgt).
  std::uint8_t status(RankId target, std::uint64_t region_id) const;

  ConsistencyMode mode() const { return mode_; }

 private:
  static std::uint64_t pack(RankId target, std::uint64_t region_id);

  ConsistencyMode mode_;
  /// Outstanding write count per target (both modes need the
  /// per-target total for fence(target)).
  std::vector<std::uint64_t> per_target_;
  /// Outstanding write count per (target, region) — per-region mode.
  std::unordered_map<std::uint64_t, std::uint64_t> per_region_;
  std::uint64_t total_ = 0;
  std::uint64_t gen_ = 0;
};

}  // namespace pgasq::armci
