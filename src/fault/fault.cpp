#include "fault/fault.hpp"

#include <algorithm>
#include <sstream>

#include "sim/trace.hpp"
#include "util/config.hpp"

namespace pgasq::fault {

// ---------------------------------------------------------------------------
// FaultPlan parsing
// ---------------------------------------------------------------------------

namespace {

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == sep) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

int parse_int(const std::string& s, const char* what) {
  try {
    std::size_t pos = 0;
    const int v = std::stoi(s, &pos);
    PGASQ_CHECK(pos == s.size(), << what << ": trailing characters in '" << s << "'");
    return v;
  } catch (const Error&) {
    throw;
  } catch (const std::exception&) {
    PGASQ_CHECK(false, << what << ": cannot parse integer '" << s << "'");
  }
  return 0;
}

double parse_double(const std::string& s, const char* what) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(s, &pos);
    PGASQ_CHECK(pos == s.size(), << what << ": trailing characters in '" << s << "'");
    return v;
  } catch (const Error&) {
    throw;
  } catch (const std::exception&) {
    PGASQ_CHECK(false, << what << ": cannot parse number '" << s << "'");
  }
  return 0;
}

int parse_dir(const std::string& s, const char* what) {
  if (s == "+" || s == "+1") return 1;
  if (s == "-" || s == "-1") return -1;
  if (s == "*" || s == "0") return 0;
  PGASQ_CHECK(false, << what << ": direction must be '+', '-' or '*', got '" << s << "'");
  return 0;
}

/// Parses "node:dim:dir[:from_us:until_us]" (capacity fixed) or
/// "node:dim:dir:capacity[:from_us:until_us]" (with_capacity).
LinkFaultSpec parse_link_spec(const std::string& spec, bool with_capacity,
                              const char* what) {
  const auto f = split(spec, ':');
  const std::size_t base = with_capacity ? 4 : 3;
  PGASQ_CHECK(f.size() == base || f.size() == base + 2,
              << what << ": expected " << base << " or " << base + 2
              << " ':'-separated fields in '" << spec << "'");
  LinkFaultSpec out;
  out.node = parse_int(f[0], what);
  out.dim = parse_int(f[1], what);
  out.dir = parse_dir(f[2], what);
  if (with_capacity) {
    out.capacity = parse_double(f[3], what);
    PGASQ_CHECK(out.capacity > 0.0 && out.capacity < 1.0,
                << what << ": degrade capacity must be in (0,1), got " << out.capacity);
  }
  if (f.size() == base + 2) {
    out.begin = from_us(parse_double(f[base], what));
    out.end = from_us(parse_double(f[base + 1], what));
    PGASQ_CHECK(out.begin < out.end, << what << ": empty window in '" << spec << "'");
  }
  return out;
}

}  // namespace

FaultPlan FaultPlan::from_config(const Config& cfg) {
  cfg.reject_unknown("fault",
                     {"seed", "drop_prob", "corrupt_prob", "corrupt_bits",
                      "corrupt_window", "link_fail", "link_degrade", "stall",
                      "node_fail", "ack_timeout_us", "backoff_factor",
                      "max_backoff_us", "retry_budget", "backoff_jitter"});
  FaultPlan plan;
  plan.seed = static_cast<std::uint64_t>(cfg.get_int("fault.seed", 1));
  plan.drop_prob = cfg.get_double("fault.drop_prob", 0.0);
  plan.corrupt_prob = cfg.get_double("fault.corrupt_prob", 0.0);
  plan.corrupt_bits = cfg.get_int("fault.corrupt_bits", 1);
  PGASQ_CHECK(plan.drop_prob >= 0.0 && plan.drop_prob < 1.0,
              << "fault.drop_prob = " << plan.drop_prob);
  PGASQ_CHECK(plan.corrupt_prob >= 0.0 && plan.corrupt_prob < 1.0,
              << "fault.corrupt_prob = " << plan.corrupt_prob);
  PGASQ_CHECK(plan.drop_prob + plan.corrupt_prob < 1.0,
              << "fault.drop_prob + fault.corrupt_prob must stay below 1");
  PGASQ_CHECK(plan.corrupt_bits >= 1 && plan.corrupt_bits <= 64,
              << "fault.corrupt_bits must be in [1,64], got " << plan.corrupt_bits);
  const std::string windows = cfg.get_string("fault.corrupt_window", "");
  if (!windows.empty()) {
    for (const auto& spec : split(windows, ',')) {
      const auto f = split(spec, ':');
      PGASQ_CHECK(f.size() == 2,
                  << "fault.corrupt_window: expected from_us:until_us in '"
                  << spec << "'");
      CorruptWindow w;
      w.begin = from_us(parse_double(f[0], "fault.corrupt_window"));
      w.end = from_us(parse_double(f[1], "fault.corrupt_window"));
      PGASQ_CHECK(w.begin < w.end,
                  << "fault.corrupt_window: empty window in '" << spec << "'");
      plan.corrupt_windows.push_back(w);
    }
  }

  const std::string fails = cfg.get_string("fault.link_fail", "");
  if (!fails.empty()) {
    for (const auto& spec : split(fails, ',')) {
      plan.link_faults.push_back(
          parse_link_spec(spec, /*with_capacity=*/false, "fault.link_fail"));
    }
  }
  const std::string degrades = cfg.get_string("fault.link_degrade", "");
  if (!degrades.empty()) {
    for (const auto& spec : split(degrades, ',')) {
      plan.link_faults.push_back(
          parse_link_spec(spec, /*with_capacity=*/true, "fault.link_degrade"));
    }
  }
  const std::string stalls = cfg.get_string("fault.stall", "");
  if (!stalls.empty()) {
    for (const auto& spec : split(stalls, ',')) {
      const auto f = split(spec, ':');
      PGASQ_CHECK(f.size() == 3, << "fault.stall: expected rank:from_us:until_us in '"
                                 << spec << "'");
      StallSpec s;
      s.rank = parse_int(f[0], "fault.stall");
      s.begin = from_us(parse_double(f[1], "fault.stall"));
      s.end = from_us(parse_double(f[2], "fault.stall"));
      PGASQ_CHECK(s.begin < s.end, << "fault.stall: empty window in '" << spec << "'");
      plan.stalls.push_back(s);
    }
  }

  const std::string node_fails = cfg.get_string("fault.node_fail", "");
  if (!node_fails.empty()) {
    for (const auto& spec : split(node_fails, ',')) {
      const auto f = split(spec, ':');
      PGASQ_CHECK(f.size() == 2,
                  << "fault.node_fail: expected node:at_us in '" << spec << "'");
      NodeFailSpec n;
      n.node = parse_int(f[0], "fault.node_fail");
      n.at = from_us(parse_double(f[1], "fault.node_fail"));
      plan.node_fails.push_back(n);
    }
  }

  plan.ack_timeout = from_us(cfg.get_double("fault.ack_timeout_us", 10.0));
  plan.backoff_factor = cfg.get_double("fault.backoff_factor", 2.0);
  plan.max_backoff = from_us(cfg.get_double("fault.max_backoff_us", 320.0));
  plan.retry_budget = static_cast<std::uint64_t>(cfg.get_int("fault.retry_budget", 64));
  plan.backoff_jitter = cfg.get_double("fault.backoff_jitter", 0.0);
  PGASQ_CHECK(plan.ack_timeout > 0, << "fault.ack_timeout_us must be positive");
  PGASQ_CHECK(plan.backoff_factor >= 1.0,
              << "fault.backoff_factor = " << plan.backoff_factor);
  PGASQ_CHECK(plan.max_backoff >= plan.ack_timeout,
              << "fault.max_backoff_us below fault.ack_timeout_us");
  PGASQ_CHECK(plan.backoff_jitter >= 0.0 && plan.backoff_jitter < 1.0,
              << "fault.backoff_jitter must be in [0,1), got "
              << plan.backoff_jitter);
  return plan;
}

// ---------------------------------------------------------------------------
// Injector
// ---------------------------------------------------------------------------

namespace {
/// One splitmix64 step of a value (stateless wrapper for seeding the
/// corruption stream off the plan seed).
std::uint64_t splitmix64_of(std::uint64_t v) {
  std::uint64_t s = v;
  return splitmix64(s);
}

/// The directed link leaving `node` along `dim` toward `dir`.
topo::Link directed_link(const topo::Torus5D& torus, int node, int dim, int dir) {
  topo::Coord5 c = torus.coord_of(node);
  c[dim] = (c[dim] + dir + torus.dims()[dim]) % torus.dims()[dim];
  return topo::Link{node, torus.node_of(c), dim, dir};
}
}  // namespace

Injector::Injector(FaultPlan plan, const topo::Torus5D& torus)
    : plan_(std::move(plan)),
      torus_(torus),
      rng_(plan_.seed),
      crng_(splitmix64_of(plan_.seed ^ 0xc0bbc0bbc0bbc0bbULL)) {
  for (const auto& spec : plan_.link_faults) {
    PGASQ_CHECK(spec.node >= 0 && spec.node < torus_.num_nodes(),
                << "fault: link node " << spec.node << " out of range");
    PGASQ_CHECK(spec.dim >= 0 && spec.dim < topo::kDims,
                << "fault: link dim " << spec.dim << " out of range");
    PGASQ_CHECK(torus_.dims()[spec.dim] > 1,
                << "fault: dim " << spec.dim << " has size 1 — no link to fail");
    const Window w{spec.begin, spec.end, spec.capacity};
    if (spec.dir != 0) {
      const auto link = directed_link(torus_, spec.node, spec.dim, spec.dir);
      by_link_[torus_.link_index(link)].push_back(w);
    } else {
      // Both directions of the cable from `node` to its +1 neighbour.
      const auto fwd = directed_link(torus_, spec.node, spec.dim, 1);
      const auto rev = directed_link(torus_, fwd.to_node, spec.dim, -1);
      by_link_[torus_.link_index(fwd)].push_back(w);
      by_link_[torus_.link_index(rev)].push_back(w);
    }
  }
  for (const auto& s : plan_.stalls) {
    PGASQ_CHECK(s.rank >= 0, << "fault: stall rank " << s.rank);
  }
  for (const auto& n : plan_.node_fails) {
    PGASQ_CHECK(n.node >= 0 && n.node < torus_.num_nodes(),
                << "fault: node_fail node " << n.node << " out of range");
    PGASQ_CHECK(n.at >= 0, << "fault: node_fail time for node " << n.node);
  }
}

bool Injector::node_dead(int node, Time now) const {
  for (const auto& n : plan_.node_fails) {
    if (n.node == node && n.at <= now) return true;
  }
  return false;
}

Time Injector::node_fail_time(int node) const {
  Time at = kForever;
  for (const auto& n : plan_.node_fails) {
    if (n.node == node) at = std::min(at, n.at);
  }
  return at;
}

void Injector::set_trace(sim::TraceRecorder* trace) {
  trace_ = trace;
  if (trace_ != nullptr) track_ = trace_->register_track("faults");
}

void Injector::mark(const char* name, Time at) {
  if (trace_ != nullptr) trace_->instant(track_, name, at);
}

void Injector::trace_mark(const char* name, Time at) const {
  if (trace_ != nullptr) trace_->instant(track_, name, at);
}

PacketFate Injector::roll_packet(Time now) {
  if (plan_.drop_prob <= 0.0) return PacketFate::kDelivered;
  if (rng_.next_double() < plan_.drop_prob) {
    ++stats_.packets_dropped;
    mark("packet drop", now);
    return PacketFate::kDropped;
  }
  return PacketFate::kDelivered;
}

std::uint64_t Injector::roll_corrupt(Time now) {
  if (plan_.corrupt_prob <= 0.0) return 0;
  if (!plan_.corrupt_windows.empty()) {
    const bool open = std::any_of(
        plan_.corrupt_windows.begin(), plan_.corrupt_windows.end(),
        [now](const CorruptWindow& w) { return w.begin <= now && now < w.end; });
    if (!open) return 0;
  }
  if (crng_.next_double() >= plan_.corrupt_prob) return 0;
  ++stats_.packets_corrupted;
  mark("packet corrupt", now);
  // Nonzero by construction so 0 can mean "clean".
  return crng_.next_u64() | 1ULL;
}

bool Injector::link_blocked(const topo::Link& link, Time now) const {
  const auto it = by_link_.find(torus_.link_index(link));
  if (it == by_link_.end()) return false;
  return std::any_of(it->second.begin(), it->second.end(), [now](const Window& w) {
    return w.capacity == 0.0 && w.begin <= now && now < w.end;
  });
}

double Injector::link_capacity(const topo::Link& link, Time now) const {
  const auto it = by_link_.find(torus_.link_index(link));
  if (it == by_link_.end()) return 1.0;
  double cap = 1.0;
  for (const Window& w : it->second) {
    if (w.begin <= now && now < w.end) cap = std::min(cap, w.capacity);
  }
  return cap;
}

bool Injector::route_blocked(const std::vector<topo::Link>& route, Time now) const {
  return std::any_of(route.begin(), route.end(),
                     [&](const topo::Link& l) { return link_blocked(l, now); });
}

Time Injector::stalled_until(int rank, Time now) const {
  Time until = now;
  for (const auto& s : plan_.stalls) {
    if (s.rank == rank && s.begin <= now && now < s.end) until = std::max(until, s.end);
  }
  return until;
}

void Injector::record_stall(Time from, Time until) {
  ++stats_.progress_stalls;
  stats_.stall_time += until - from;
  mark("progress stall", from);
}

void Injector::record_retransmit(Time backoff, Time now) {
  ++stats_.retransmits;
  stats_.backoff_time += backoff;
  mark("retransmit", now);
}

void Injector::record_reroute(std::size_t extra_hops, Time now) {
  ++stats_.reroutes;
  stats_.rerouted_extra_hops += extra_hops;
  mark("reroute", now);
}

void Injector::record_degraded_transfer(Time now) {
  ++stats_.degraded_transfers;
  mark("degraded link", now);
}

Time Injector::in_order_arrival(int src_node, int dst_node, Time arrive,
                                bool retransmitted) {
  const std::uint64_t key = (static_cast<std::uint64_t>(static_cast<std::uint32_t>(
                                src_node))
                             << 32) |
                            static_cast<std::uint32_t>(dst_node);
  Time& floor = last_arrival_[key];
  arrive = std::max(arrive, floor);
  if (retransmitted) floor = std::max(floor, arrive);
  return arrive;
}

void apply_bit_flips(std::uint64_t token, int nbits, std::byte* data,
                     std::size_t bytes, std::size_t skip) {
  if (token == 0 || bytes <= skip) return;
  const std::size_t region_bits = (bytes - skip) * 8;
  std::uint64_t state = token;
  for (int i = 0; i < nbits; ++i) {
    const std::uint64_t r = splitmix64(state);
    const std::size_t bit = static_cast<std::size_t>(r % region_bits);
    data[skip + bit / 8] ^= static_cast<std::byte>(1u << (bit % 8));
  }
}

}  // namespace pgasq::fault
