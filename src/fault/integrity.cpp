#include "fault/integrity.hpp"

#include "util/config.hpp"
#include "util/error.hpp"

namespace pgasq::fault {

IntegrityConfig IntegrityConfig::from_config(const Config& cfg) {
  cfg.reject_unknown("integrity", {"verify", "coll_check", "ckpt_digest",
                                   "crc_setup_ns", "crc_ns_per_byte"});
  IntegrityConfig out;
  for (const auto& key : cfg.keys()) {
    if (key.rfind("integrity.", 0) == 0) {
      out.configured = true;
      break;
    }
  }
  out.verify = cfg.get_bool("integrity.verify", true);
  out.coll_check = cfg.get_bool("integrity.coll_check", true);
  out.ckpt_digest = cfg.get_bool("integrity.ckpt_digest", true);
  out.crc_setup_ns = cfg.get_double("integrity.crc_setup_ns", 20.0);
  out.crc_ns_per_byte = cfg.get_double("integrity.crc_ns_per_byte", 0.005);
  PGASQ_CHECK(out.crc_setup_ns >= 0.0,
              << "integrity.crc_setup_ns = " << out.crc_setup_ns);
  PGASQ_CHECK(out.crc_ns_per_byte >= 0.0,
              << "integrity.crc_ns_per_byte = " << out.crc_ns_per_byte);
  return out;
}

}  // namespace pgasq::fault
