// End-to-end data integrity: CRC-verified transport, checksummed
// collective slots, self-checking checkpoints.
//
// BG/Q's fabric carries a hardware CRC per torus packet and ECC on
// every memory; the reproduction's commodity-cluster configurations
// get neither, so a flipped payload bit would silently poison a Fock
// matrix or a checkpoint. This module is the software stand-in:
//
//   * transport  — pami::Context computes a CRC32C over every
//     put/get/rput/rget/typed/AM payload at injection and verifies it
//     on delivery; a mismatch is NACKed back to the sender, which
//     retransmits on the context's existing retry budget with capped
//     backoff. Acks echo the payload CRC so one-sided completions are
//     end-to-end verified. Budget exhaustion on a corrupted leg raises
//     IntegrityError (a typed FaultError subclass).
//   * collectives — CollEngine slot transport checksums each hop, so a
//     software schedule detects corruption mid-tree and re-requests
//     the slot from the sender's retained stage instead of folding
//     garbage into a reduction (src/coll). Active when transport
//     verification is off (defense in depth for silent-delivery runs).
//   * checkpoints — ft::Runtime stores a CRC32C digest per checkpoint
//     shard and validates it *before* rollback; a bad newest buffer
//     falls back to the older double-buffered copy, and when both are
//     bad recovery aborts loudly (IntegrityError) rather than restore
//     garbage.
//
// Zero-cost guarantee: the machine constructs an Integrity object only
// when corruption is planned or an integrity.* knob is set; every hook
// is one pointer test against nullptr and timings are bit-identical to
// a build without this module when it is off.
#pragma once

#include <cstdint>

#include "util/time_types.hpp"

namespace pgasq {
class Config;

namespace fault {

/// Parsed `integrity.*` knobs. `configured` is true when any key was
/// present — a machine builds the Integrity layer when corruption is
/// planned (fault.corrupt_prob > 0) or when explicitly configured.
struct IntegrityConfig {
  bool configured = false;
  /// Transport CRC verification + NACK/retransmit (`integrity.verify`).
  /// Off = flipped payloads land in application memory and only the
  /// coll/ft defenses stand between them and the physics.
  bool verify = true;
  /// Collective slot checksums + re-request (`integrity.coll_check`).
  bool coll_check = true;
  /// Checkpoint shard digests + pre-rollback validation
  /// (`integrity.ckpt_digest`).
  bool ckpt_digest = true;
  /// Virtual cost of one CRC pass over a payload: fixed setup plus a
  /// per-byte term (`integrity.crc_setup_ns`, `integrity.crc_ns_per_byte`).
  /// Defaults model a hardware-assisted CRC32C near memory bandwidth.
  double crc_setup_ns = 20.0;
  double crc_ns_per_byte = 0.005;

  /// Parses integrity.* keys; misspelled keys are rejected with a typo
  /// suggestion (Config::reject_unknown).
  static IntegrityConfig from_config(const Config& cfg);
};

/// Counters for the report's "end-to-end integrity" table. Detected
/// corruptions must equal the injector's packets_corrupted under
/// transport verification — the zero-silent-escapes invariant the
/// chaos soak asserts.
struct IntegrityStats {
  /// Transport-level CRC verifications performed (one per delivered
  /// payload leg when verify is on).
  std::uint64_t crc_checks = 0;
  /// Payload legs whose CRC failed on delivery.
  std::uint64_t corruptions_detected = 0;
  /// NACKs issued back to senders (one per detection).
  std::uint64_t nacks_sent = 0;
  /// Retransmits triggered by NACKs (vs. drop timeouts).
  std::uint64_t nack_retransmits = 0;
  /// Acks that carried an echo CRC back to the initiator.
  std::uint64_t echo_crc_acks = 0;
  /// Collective slot verifications / mismatches / re-requests.
  std::uint64_t coll_slot_checks = 0;
  std::uint64_t coll_slot_rejects = 0;
  std::uint64_t coll_slot_refetches = 0;
  /// Checkpoint shard digests computed / validated / failed, and
  /// recoveries that had to fall back to the older buffer.
  std::uint64_t ckpt_digests_computed = 0;
  std::uint64_t ckpt_digests_validated = 0;
  std::uint64_t ckpt_digest_mismatches = 0;
  std::uint64_t ckpt_fallback_restores = 0;
};

/// Machine-wide integrity state: configuration, counters, and the
/// virtual-time cost model for CRC passes. Owned by pami::Machine,
/// reached via machine.integrity() (nullptr when the subsystem is off,
/// same pattern as fault::Injector and obs::LinkUsage).
class Integrity {
 public:
  explicit Integrity(IntegrityConfig cfg) : cfg_(cfg) {}
  Integrity(const Integrity&) = delete;
  Integrity& operator=(const Integrity&) = delete;

  const IntegrityConfig& config() const { return cfg_; }
  IntegrityStats& stats() { return stats_; }
  const IntegrityStats& stats() const { return stats_; }

  /// Virtual time of one CRC pass over `bytes` of payload.
  Time crc_cost(std::uint64_t bytes) const {
    return from_ns(cfg_.crc_setup_ns +
                   cfg_.crc_ns_per_byte * static_cast<double>(bytes));
  }

 private:
  IntegrityConfig cfg_;
  IntegrityStats stats_;
};

}  // namespace fault
}  // namespace pgasq
