// Deterministic fault injection for the simulated interconnect.
//
// The paper's subsystem assumes BG/Q's lossless deterministic-routed
// torus; this module lets the reproduction degrade that assumption on
// purpose. A FaultPlan describes *what* goes wrong — per-link hard
// failure or bandwidth-degradation windows, probabilistic packet drop
// and corruption, async-progress stall windows — and an Injector turns
// the plan into reproducible decisions: every random draw comes from a
// dedicated xoshiro stream seeded by `fault.seed`, and every window is
// expressed in virtual time, so two runs with the same plan fault the
// same packets at the same picoseconds.
//
// Recovery lives in the layers above: topo::Torus5D::route_avoiding
// routes around failed links, noc::NetworkModel consults the injector
// per transfer, and pami::Context retransmits dropped packets under an
// ack/timeout protocol with capped exponential backoff. When a
// context's retry budget is exhausted the failure escalates as a typed
// pgasq::FaultError instead of hanging the simulation.
//
// Zero-cost guarantee: when FaultPlan::enabled() is false, no Injector
// is constructed and every fault hook compares one pointer against
// nullptr — timings are bit-identical to a build without this module.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

#include "topo/torus.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/time_types.hpp"

namespace pgasq {
class Config;

/// Escalated fault: a wire leg exhausted its context's retry budget
/// (or the fabric is partitioned beyond route-around). Carries the
/// operation and link context so callers can report what died where.
class FaultError : public Error {
 public:
  FaultError(std::string operation, int src_node, int dst_node,
             std::uint64_t retries, const std::string& what)
      : Error(what),
        operation_(std::move(operation)),
        src_node_(src_node),
        dst_node_(dst_node),
        retries_(retries) {}

  const std::string& operation() const { return operation_; }
  int src_node() const { return src_node_; }
  int dst_node() const { return dst_node_; }
  std::uint64_t retries() const { return retries_; }

 private:
  std::string operation_;
  int src_node_;
  int dst_node_;
  std::uint64_t retries_;
};

/// Escalated *corruption* fault: the retry budget ran out on an attempt
/// whose payload failed CRC verification (as opposed to a plain loss).
/// Also raised by ft::Runtime when every committed checkpoint buffer
/// fails digest validation — in both cases the data cannot be trusted
/// and the run must stop loudly rather than continue on garbage.
class IntegrityError : public FaultError {
 public:
  using FaultError::FaultError;
};

namespace sim {
class TraceRecorder;
}

namespace fault {

/// Sentinel for "window never closes".
inline constexpr Time kForever = std::numeric_limits<Time>::max();

/// One faulty physical link. `dir` selects the directed half:
/// +1 / -1 fault only that direction out of `node`; 0 faults the cable
/// between `node` and its +1 neighbour in `dim` in both directions.
struct LinkFaultSpec {
  int node = 0;
  int dim = 0;
  int dir = 0;
  /// Fraction of nominal link bandwidth available inside the window:
  /// 0 = hard failure (traffic must route around), (0,1) = degraded.
  double capacity = 0.0;
  Time begin = 0;
  Time end = kForever;
};

/// The async-progress fiber of `rank` stops advancing in [begin, end).
struct StallSpec {
  int rank = 0;
  Time begin = 0;
  Time end = 0;
};

/// Corruption is injected only inside these virtual-time windows
/// (`fault.corrupt_window`); an empty list means "whole run".
struct CorruptWindow {
  Time begin = 0;
  Time end = kForever;
};

/// Fail-stop node death: at virtual time `at` the node stops executing
/// and all ten of its links go dark, taking every rank it hosts with
/// it. Detection and recovery live in src/ft/ (health monitor,
/// checkpoint/shrink); the injector only holds the ground truth.
struct NodeFailSpec {
  int node = 0;
  Time at = 0;
};

/// Everything that will go wrong in a run, declared up front.
struct FaultPlan {
  /// Seed of the injector's private RNG stream (`fault.seed`).
  std::uint64_t seed = 1;
  /// Per-packet loss probability in the fabric (`fault.drop_prob`).
  double drop_prob = 0.0;
  /// Per-packet silent-corruption probability (`fault.corrupt_prob`):
  /// the fabric flips `corrupt_bits` payload bits and delivers the
  /// packet as if nothing happened. Only payloads large enough to spill
  /// past the link-CRC-protected prefix are eligible (headers, acks,
  /// barrier words and other control packets never corrupt — BG/Q's
  /// per-packet link CRC covers them even on a commodity-model run).
  /// Whether the flip *lands* is up to the integrity layer: with
  /// transport verification on (the default once corruption is
  /// planned), pami::Context detects the bad CRC on delivery and NACKs
  /// for a retransmit; with `integrity.verify=0` the flipped bytes
  /// reach application memory and only the coll/ft defenses stand.
  double corrupt_prob = 0.0;
  /// Bits flipped per corrupted packet (`fault.corrupt_bits`).
  int corrupt_bits = 1;
  /// Windows during which corruption may fire (`fault.corrupt_window`);
  /// empty = always.
  std::vector<CorruptWindow> corrupt_windows;
  std::vector<LinkFaultSpec> link_faults;
  std::vector<StallSpec> stalls;
  /// Fail-stop node deaths (`fault.node_fail`). A dead node black-holes
  /// every transfer that starts or ends on it and blocks all its links
  /// for through-traffic.
  std::vector<NodeFailSpec> node_fails;

  // --- Ack/timeout/retransmit protocol (pami::Context) ------------------
  /// Sender declares a packet lost this long after it drained without
  /// an ack (`fault.ack_timeout_us`).
  Time ack_timeout = from_us(10);
  /// Timeout multiplier per consecutive retransmit of the same leg,
  /// capped at `max_backoff` (`fault.backoff_factor`).
  double backoff_factor = 2.0;
  Time max_backoff = from_us(320);
  /// Total retransmits a single context may spend before escalating to
  /// FaultError (`fault.retry_budget`).
  std::uint64_t retry_budget = 64;
  /// Deterministic per-(rank, attempt) spread applied to each
  /// retransmit timeout, as a fraction in [0, 1)
  /// (`fault.backoff_jitter`). 0 keeps the historical synchronized
  /// backoff — every rank that lost a packet in the same stall window
  /// re-offers it at the same instant, the seed of a retry storm; a
  /// positive spread desynchronizes the retries while staying
  /// bit-reproducible across reruns.
  double backoff_jitter = 0.0;

  /// True when any fault is configured; a disabled plan constructs no
  /// injector and perturbs nothing.
  bool enabled() const {
    return drop_prob > 0.0 || corrupt_prob > 0.0 || !link_faults.empty() ||
           !stalls.empty() || !node_fails.empty();
  }

  /// Parses the `fault.*` keys of a Config:
  ///   fault.seed, fault.drop_prob, fault.corrupt_prob,
  ///   fault.corrupt_bits,
  ///   fault.corrupt_window = "from_us:until_us",...
  ///   fault.link_fail   = "node:dim:dir[:from_us:until_us]",...
  ///   fault.link_degrade= "node:dim:dir:capacity[:from_us:until_us]",...
  ///   fault.stall       = "rank:from_us:until_us",...
  ///   fault.node_fail   = "node:at_us",...
  ///   fault.ack_timeout_us, fault.backoff_factor, fault.max_backoff_us,
  ///   fault.retry_budget, fault.backoff_jitter
  /// where dir is '+', '-' or '*' (both directions of the cable).
  /// Misspelled fault.* keys are rejected with a typo suggestion
  /// (Config::reject_unknown).
  static FaultPlan from_config(const Config& cfg);
};

/// Counters aggregated by the injector across the whole machine; the
/// communication report renders them next to the paper-figure tables.
struct FaultStats {
  std::uint64_t packets_dropped = 0;
  std::uint64_t packets_corrupted = 0;
  std::uint64_t retransmits = 0;
  Time backoff_time = 0;
  std::uint64_t reroutes = 0;
  std::uint64_t rerouted_extra_hops = 0;
  std::uint64_t degraded_transfers = 0;
  std::uint64_t progress_stalls = 0;
  Time stall_time = 0;
};

/// Outcome of one packet's trip through the fabric.
enum class PacketFate { kDelivered, kDropped, kCorrupted };

/// Turns a FaultPlan into deterministic per-packet / per-link / per-
/// fiber decisions and accounts every injected and recovered fault.
class Injector {
 public:
  Injector(FaultPlan plan, const topo::Torus5D& torus);
  Injector(const Injector&) = delete;
  Injector& operator=(const Injector&) = delete;

  const FaultPlan& plan() const { return plan_; }
  const FaultStats& stats() const { return stats_; }

  /// Mirrors injected/recovered faults as instant markers on a
  /// dedicated "faults" trace track (chrome://tracing / Perfetto).
  void set_trace(sim::TraceRecorder* trace);

  /// Instant marker on the same "faults" track for the layers above
  /// (node-death declarations, epoch bumps, checkpoint commits). Const
  /// because the health monitor holds the injector by const reference;
  /// no-op when untraced.
  void trace_mark(const char* name, Time at) const;

  // --- Packet fate ------------------------------------------------------
  /// Rolls the *drop* fate for one packet injected at `now`. Consumes
  /// the primary RNG stream only when a drop probability is configured,
  /// so plans that only fail links stay on the untouched random stream
  /// — and corruption draws live on a separate stream (roll_corrupt),
  /// so adding a corruption plan does not perturb which packets drop.
  PacketFate roll_packet(Time now);

  /// Rolls corruption for one *delivered* packet injected at `now`.
  /// Returns 0 for a clean packet, or a nonzero flip token that
  /// deterministically seeds the bit-flip pattern (see apply_bit_flips).
  /// Draws from a dedicated corruption stream; callers gate on payload
  /// eligibility (noc::NetworkModel::roll_fate) so the stream advances
  /// identically whether or not transport verification is on.
  std::uint64_t roll_corrupt(Time now);

  // --- Link failure windows --------------------------------------------
  bool has_link_faults() const { return !by_link_.empty(); }
  /// Hard failure: the link cannot carry traffic at `now`.
  bool link_blocked(const topo::Link& link, Time now) const;
  /// Usable fraction of nominal bandwidth at `now` (1.0 = healthy,
  /// 0.0 = hard-failed).
  double link_capacity(const topo::Link& link, Time now) const;
  bool route_blocked(const std::vector<topo::Link>& route, Time now) const;

  // --- Fail-stop node deaths (ground truth) -----------------------------
  bool has_node_fails() const { return !plan_.node_fails.empty(); }
  /// True once `node`'s fail-stop time has passed. This is the fabric's
  /// ground truth; the *declared* liveness view ranks act on lives in
  /// ft::HealthMonitor and lags by the detection delay.
  bool node_dead(int node, Time now) const;
  /// Virtual time `node` dies, or kForever when it never does.
  Time node_fail_time(int node) const;

  // --- Progress stalls --------------------------------------------------
  /// End of the stall window covering (rank, now); returns `now` when
  /// the rank's progress fiber is free to advance.
  Time stalled_until(int rank, Time now) const;
  void record_stall(Time from, Time until);

  // --- Recovery accounting (called by noc / pami) -----------------------
  void record_retransmit(Time backoff, Time now);
  void record_reroute(std::size_t extra_hops, Time now);
  void record_degraded_transfer(Time now);

  /// Pairwise in-order delivery under retransmission: deterministic
  /// routing guarantees per-(src,dst) packet order on healthy BG/Q, and
  /// the recovery protocol preserves it with sequence numbers — a
  /// retransmitted packet holds later ones at the receiver until the
  /// gap fills. Returns `arrive` clamped to the pair's reorder floor;
  /// only a retransmitted packet raises that floor (clean traffic must
  /// not, because replies are timed ahead of wall-clock and would drag
  /// every later packet on the pair out to their arrival).
  Time in_order_arrival(int src_node, int dst_node, Time arrive, bool retransmitted);

 private:
  struct Window {
    Time begin;
    Time end;
    double capacity;
  };
  void mark(const char* name, Time at);

  FaultPlan plan_;
  const topo::Torus5D& torus_;
  Rng rng_;
  /// Dedicated corruption stream: derived from the plan seed but
  /// independent of rng_, so corruption plans leave drop/link draws
  /// byte-identical to a corruption-free run.
  Rng crng_;
  /// Directed-link index -> fault windows affecting it.
  std::unordered_map<int, std::vector<Window>> by_link_;
  /// (src_node, dst_node) -> reorder floor: the latest arrival of a
  /// retransmitted packet, which later packets may not undercut.
  std::unordered_map<std::uint64_t, Time> last_arrival_;
  FaultStats stats_;
  sim::TraceRecorder* trace_ = nullptr;
  std::uint32_t track_ = 0;
};

/// Applies `nbits` bit flips, derived deterministically from a nonzero
/// flip `token`, to data[skip, bytes). The same token always flips the
/// same bits, so a run is reproducible regardless of whether the
/// verification layer catches the flip or lets it land.
void apply_bit_flips(std::uint64_t token, int nbits, std::byte* data,
                     std::size_t bytes, std::size_t skip);

}  // namespace fault
}  // namespace pgasq
