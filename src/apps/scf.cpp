#include "apps/scf.hpp"

#include <algorithm>
#include <memory>
#include <vector>

#include "async/async.hpp"
#include "coll/coll.hpp"
#include "coll/nbc.hpp"
#include "core/comm.hpp"
#include "ft/recovery.hpp"
#include "ga/collectives.hpp"
#include "ga/dgemm.hpp"
#include "ga/global_array.hpp"
#include "ga/matrix_ops.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace pgasq::apps {

std::int64_t scf_tasks_per_iteration(const ScfConfig& config) {
  const std::int64_t nblk = (config.nbf + config.block - 1) / config.block;
  return nblk * (nblk + 1) / 2;
}

std::pair<std::int64_t, std::int64_t> scf_task_blocks(std::int64_t task,
                                                      std::int64_t nblk) {
  PGASQ_CHECK(task >= 0 && task < nblk * (nblk + 1) / 2);
  // Row bi owns (nblk - bi) tasks: (bi,bi) .. (bi,nblk-1).
  std::int64_t bi = 0;
  std::int64_t remaining = task;
  while (remaining >= nblk - bi) {
    remaining -= nblk - bi;
    ++bi;
  }
  return {bi, bi + remaining};
}

Time scf_task_time(const ScfConfig& config, int iteration, std::int64_t task) {
  // Deterministic in (seed, iteration, task): identical workload for
  // every progress mode and process count.
  std::uint64_t s = config.seed ^ (static_cast<std::uint64_t>(iteration) << 40) ^
                    static_cast<std::uint64_t>(task);
  const double u =
      static_cast<double>(splitmix64(s) >> 11) * 0x1.0p-53;  // [0, 1)
  const double factor = 1.0 + config.jitter * (2.0 * u - 1.0);
  return static_cast<Time>(static_cast<double>(config.mean_task_compute) * factor);
}

namespace {

/// Fail-stop SCF body: the same Fock build wrapped in the
/// checkpoint / recover / rollback protocol of ft::Runtime. Kept as a
/// separate function (entered only when the machine has a health
/// monitor, i.e. the fault plan schedules node deaths) so the plain
/// path below stays instruction-identical for fault-free runs.
void run_scf_ft(armci::Comm& comm, const ScfConfig& config, ScfResult& result,
                Time& t_start, Time& t_end) {
  PGASQ_CHECK(config.purification_sweeps == 0,
              << "purification is not supported under fail-stop faults");
  const std::int64_t nblk = (config.nbf + config.block - 1) / config.block;
  const std::int64_t ntasks = scf_tasks_per_iteration(config);

  std::unique_ptr<ga::GlobalArray> density, fock, scratch;
  std::unique_ptr<ga::SharedCounter> counter;
  // (Re)creates the arrays and the load-balance counter over `members`
  // — the full clique up front, the survivor clique after a shrink.
  // Old arrays are dropped without reuse: straggler traffic from the
  // dead epoch can only land in the superseded allocations.
  auto build = [&](const std::vector<int>& members) {
    const bool full = static_cast<int>(members.size()) == comm.nprocs();
    auto mk = [&] {
      return full ? std::make_unique<ga::GlobalArray>(comm, config.nbf, config.nbf)
                  : std::make_unique<ga::GlobalArray>(comm, config.nbf, config.nbf,
                                                      members);
    };
    density = mk();
    fock = mk();
    scratch = mk();
    counter = std::make_unique<ga::SharedCounter>(comm, members.front());
  };
  auto fill_initial = [&] {
    density->fill_local([](std::int64_t i, std::int64_t j) {
      return 1.0 / static_cast<double>(1 + i + j);
    });
    fock->fill_local(0.0);
    density->sync();
  };

  std::vector<int> everyone(static_cast<std::size_t>(comm.nprocs()));
  for (int r = 0; r < comm.nprocs(); ++r) everyone[static_cast<std::size_t>(r)] = r;
  build(everyone);
  fill_initial();
  coll::CollEngine::of(comm);

  ft::RuntimeConfig rt_config;
  rt_config.checkpoint_interval = config.ft_checkpoint_interval;
  ft::Runtime rt(comm, rt_config, {density.get(), fock.get()});

  const armci::CommStats before = comm.stats();
  if (comm.rank() == 0) t_start = comm.now();

  std::vector<double> dij(static_cast<std::size_t>(config.block * config.block));
  std::vector<double> dji(dij.size());
  std::vector<double> fbuf(dij.size());

  // Returns false when this rank itself died. Loops because another
  // node can die while the survivors are still re-synchronizing.
  auto recover_and_rebuild = [&]() -> bool {
    while (true) {
      try {
        if (!rt.recover()) return false;
        build(rt.members());
        if (rt.restart_iter() == 0) {
          fill_initial();
        } else {
          rt.restore({density.get(), fock.get()});
        }
        return true;
      } catch (const ft::PeerDeadError&) {
        continue;
      }
    }
  };

  int iter = 0;
  while (iter < config.iterations) {
    try {
      rt.checkpoint(iter, {density.get(), fock.get()});
      counter->reset();
      for (std::int64_t task = counter->next(); task < ntasks;
           task = counter->next()) {
        const auto [bi, bj] = scf_task_blocks(task, nblk);
        const std::int64_t rlo = bi * config.block;
        const std::int64_t rhi = std::min(config.nbf, rlo + config.block);
        const std::int64_t clo = bj * config.block;
        const std::int64_t chi = std::min(config.nbf, clo + config.block);
        const std::int64_t nr = rhi - rlo;
        const std::int64_t nc = chi - clo;

        armci::Handle h;
        density->nb_get(rlo, rhi, clo, chi, dij.data(), nc, h);
        density->nb_get(clo, chi, rlo, rhi, dji.data(), nr, h);
        comm.wait(h);

        comm.compute(scf_task_time(config, iter, task));

        for (std::int64_t r = 0; r < nr; ++r) {
          for (std::int64_t c = 0; c < nc; ++c) {
            fbuf[static_cast<std::size_t>(r * nc + c)] =
                0.5 * dij[static_cast<std::size_t>(r * nc + c)] +
                0.25 * dji[static_cast<std::size_t>(c * nr + r)];
          }
        }
        fock->acc(1.0, rlo, rhi, clo, chi, fbuf.data(), nc);
        if (bi != bj) {
          std::vector<double> ft(static_cast<std::size_t>(nr * nc));
          for (std::int64_t r = 0; r < nr; ++r) {
            for (std::int64_t c = 0; c < nc; ++c) {
              ft[static_cast<std::size_t>(c * nr + r)] =
                  fbuf[static_cast<std::size_t>(r * nc + c)];
            }
          }
          fock->acc(1.0, clo, chi, rlo, rhi, ft.data(), nr);
        }
        ++result.tasks_executed;
      }
      comm.barrier();
      ga::symmetrize(*fock, *scratch);
      const double energy = ga::element_sum(*fock);
      if (comm.rank() == rt.members().front() &&
          iter == config.iterations - 1) {
        result.final_energy = energy;
      }
      ++iter;
    } catch (const ft::PeerDeadError&) {
      if (!recover_and_rebuild()) return;  // this rank is the casualty
      // Roll back to the agreed checkpoint's iteration (0 = cold
      // restart from the refilled initial state).
      iter = rt.restart_iter();
    }
  }

  // End-of-run results are taken on the lowest surviving rank: rank 0
  // may be among the dead.
  if (comm.rank() == rt.members().front()) {
    t_end = comm.now();
    double sum = 0.0;
    for (std::int64_t i = 0; i < config.nbf; i += 97) {
      sum += fock->read_element(i, i);
      if (i + 1 < config.nbf) sum += fock->read_element(i, i + 1);
    }
    result.fock_checksum = sum;
  }
  comm.barrier();

  const armci::CommStats& after = comm.stats();
  result.counter_time += after.time_in_rmw - before.time_in_rmw;
  result.get_time += (after.time_in_get - before.time_in_get) +
                     (after.time_in_wait - before.time_in_wait);
  result.acc_time += after.time_in_acc - before.time_in_acc;
  result.barrier_time += after.time_in_barrier - before.time_in_barrier;
  result.reduce_time += after.coll.data_time() - before.coll.data_time();
  result.forced_fences += after.forced_fences - before.forced_fences;
}

/// Overlapped iteration tail (config.overlap): identical task loop and
/// physics, but the per-iteration energy reduction is non-blocking
/// (coll::NbcEngine via ga::ielement_sum) and chained past the
/// iteration boundary — it advances from the progress passes the next
/// iteration's gets/accs/RMWs make anyway — and its window hides a
/// speculative prefetch of the next iteration's first density patches.
void run_scf_overlap(armci::Comm& comm, const ScfConfig& config,
                     ScfResult& result, Time& t_start, Time& t_end) {
  PGASQ_CHECK(config.purification_sweeps == 0,
              << "scf overlap path does not support purification");
  const std::int64_t nblk = (config.nbf + config.block - 1) / config.block;
  const std::int64_t ntasks = scf_tasks_per_iteration(config);

  ga::GlobalArray density(comm, config.nbf, config.nbf);
  ga::GlobalArray fock(comm, config.nbf, config.nbf);
  ga::GlobalArray scratch(comm, config.nbf, config.nbf);
  ga::SharedCounter counter(comm);

  auto guess = [](std::int64_t i, std::int64_t j) {
    return 1.0 / static_cast<double>(1 + i + j);
  };
  if (config.distributed_guess) {
    if (comm.rank() == 0) {
      std::vector<double> d0(static_cast<std::size_t>(config.nbf * config.nbf));
      for (std::int64_t i = 0; i < config.nbf; ++i) {
        for (std::int64_t j = 0; j < config.nbf; ++j) {
          d0[static_cast<std::size_t>(i * config.nbf + j)] = guess(i, j);
        }
      }
      density.put(0, config.nbf, 0, config.nbf, d0.data(), config.nbf);
      comm.fence_all();
    }
  } else {
    density.fill_local(guess);
  }
  fock.fill_local(0.0);
  density.sync();
  // Engines up before the timed region, like the blocking path.
  coll::CollEngine::of(comm);
  async::Runtime& rt = async::Runtime::of(comm);
  coll::NbcEngine::of(comm);

  const armci::CommStats before = comm.stats();
  if (comm.rank() == 0) t_start = comm.now();

  std::vector<double> dij(static_cast<std::size_t>(config.block * config.block));
  std::vector<double> dji(dij.size());
  std::vector<double> fbuf(dij.size());

  // Speculation state: the next iteration's first task is guessed to
  // equal this iteration's (the counter hands out a similar order every
  // build), and its density patches are fetched under the open energy
  // reduction. A wrong guess costs nothing on the critical path — the
  // fetch was asynchronous — and density is static, so hit or miss the
  // physics is identical.
  std::vector<double> pij(dij.size());
  std::vector<double> pji(dij.size());
  armci::Handle pf;
  std::int64_t speculated = -1;
  bool prefetch_live = false;

  // One energy slot per iteration: each must stay alive and untouched
  // until its reduction future is ready.
  std::vector<double> energies(static_cast<std::size_t>(config.iterations), 0.0);
  std::vector<fut::Future<fut::Unit>> open_reductions;

  for (int iter = 0; iter < config.iterations; ++iter) {
    counter.reset();
    std::int64_t first_task = -1;
    for (std::int64_t task = counter.next(); task < ntasks;
         task = counter.next()) {
      if (first_task < 0) first_task = task;
      const auto [bi, bj] = scf_task_blocks(task, nblk);
      const std::int64_t rlo = bi * config.block;
      const std::int64_t rhi = std::min(config.nbf, rlo + config.block);
      const std::int64_t clo = bj * config.block;
      const std::int64_t chi = std::min(config.nbf, clo + config.block);
      const std::int64_t nr = rhi - rlo;
      const std::int64_t nc = chi - clo;

      if (prefetch_live && task == speculated) {
        // The patches are (usually) already local: the fetch flew
        // while the previous iteration's energy reduction was open.
        comm.wait(pf);
        dij.swap(pij);
        dji.swap(pji);
        prefetch_live = false;
        ++result.prefetch_hits;
      } else {
        armci::Handle h;
        density.nb_get(rlo, rhi, clo, chi, dij.data(), nc, h);
        density.nb_get(clo, chi, rlo, rhi, dji.data(), nr, h);
        comm.wait(h);
      }

      comm.compute(scf_task_time(config, iter, task));

      for (std::int64_t r = 0; r < nr; ++r) {
        for (std::int64_t c = 0; c < nc; ++c) {
          fbuf[static_cast<std::size_t>(r * nc + c)] =
              0.5 * dij[static_cast<std::size_t>(r * nc + c)] +
              0.25 * dji[static_cast<std::size_t>(c * nr + r)];
        }
      }
      fock.acc(1.0, rlo, rhi, clo, chi, fbuf.data(), nc);
      if (bi != bj) {
        std::vector<double> ft(static_cast<std::size_t>(nr * nc));
        for (std::int64_t r = 0; r < nr; ++r) {
          for (std::int64_t c = 0; c < nc; ++c) {
            ft[static_cast<std::size_t>(c * nr + r)] =
                fbuf[static_cast<std::size_t>(r * nc + c)];
          }
        }
        fock.acc(1.0, clo, chi, rlo, rhi, ft.data(), nr);
      }
      ++result.tasks_executed;
    }
    if (prefetch_live) {
      // The guess missed (the counter dealt a different first task):
      // retire the fetch off the critical path's accounting.
      comm.wait(pf);
      prefetch_live = false;
      ++result.prefetch_misses;
    }
    comm.barrier();
    ga::symmetrize(fock, scratch);
    // Non-blocking energy reduction, chained past the iteration
    // boundary: the continuation latches the final energy whenever the
    // last reduction completes — possibly while the checksum readbacks
    // below are already running.
    const std::size_t slot = static_cast<std::size_t>(iter);
    fut::Future<fut::Unit> f = ga::ielement_sum(fock, &energies[slot]);
    if (comm.rank() == 0 && iter == config.iterations - 1) {
      f = f.then([&result, &energies, slot](const fut::Unit&) {
        result.final_energy = energies[slot];
      });
    }
    open_reductions.push_back(std::move(f));
    // The reduction window hides the next iteration's first fetch.
    if (iter + 1 < config.iterations && first_task >= 0) {
      speculated = first_task;
      const auto [bi, bj] = scf_task_blocks(speculated, nblk);
      const std::int64_t rlo = bi * config.block;
      const std::int64_t rhi = std::min(config.nbf, rlo + config.block);
      const std::int64_t clo = bj * config.block;
      const std::int64_t chi = std::min(config.nbf, clo + config.block);
      density.nb_get(rlo, rhi, clo, chi, pij.data(), chi - clo, pf);
      density.nb_get(clo, chi, rlo, rhi, pji.data(), rhi - rlo, pf);
      prefetch_live = true;
    }
  }

  // Drain every reduction still in flight before reading results.
  rt.wait(fut::when_all(rt, std::move(open_reductions)));
  if (comm.rank() == 0) t_end = comm.now();

  if (comm.rank() == 0) {
    double sum = 0.0;
    for (std::int64_t i = 0; i < config.nbf; i += 97) {
      sum += fock.read_element(i, i);
      if (i + 1 < config.nbf) sum += fock.read_element(i, i + 1);
    }
    result.fock_checksum = sum;
  }
  comm.barrier();

  const armci::CommStats& after = comm.stats();
  result.counter_time += after.time_in_rmw - before.time_in_rmw;
  result.get_time += (after.time_in_get - before.time_in_get) +
                     (after.time_in_wait - before.time_in_wait);
  result.acc_time += after.time_in_acc - before.time_in_acc;
  result.barrier_time += after.time_in_barrier - before.time_in_barrier;
  result.reduce_time += after.coll.data_time() - before.coll.data_time();
  result.forced_fences += after.forced_fences - before.forced_fences;
}

}  // namespace

ScfResult run_scf(armci::World& world, const ScfConfig& config) {
  PGASQ_CHECK(config.nbf >= config.block && config.block >= 1);
  PGASQ_CHECK(config.iterations >= 1);
  const std::int64_t nblk = (config.nbf + config.block - 1) / config.block;
  const std::int64_t ntasks = scf_tasks_per_iteration(config);

  ScfResult result;
  Time t_start = 0;
  Time t_end = 0;

  world.spmd([&](armci::Comm& comm) {
    if (comm.ft_monitor() != nullptr) {
      // Node deaths are scheduled: take the fail-stop body. The plain
      // path below never pays for fault tolerance.
      run_scf_ft(comm, config, result, t_start, t_end);
      return;
    }
    // Either the app asked for the overlapped tail or the runtime was
    // configured with --async.scf_overlap=1. Parsing the options here
    // is pure: with async.* unset no Runtime is instantiated and the
    // plain path below stays byte-identical.
    if (config.overlap ||
        async::AsyncConfig::from_options(comm.options()).scf_overlap) {
      run_scf_overlap(comm, config, result, t_start, t_end);
      return;
    }
    ga::GlobalArray density(comm, config.nbf, config.nbf);
    ga::GlobalArray fock(comm, config.nbf, config.nbf);
    ga::GlobalArray scratch(comm, config.nbf, config.nbf);
    ga::SharedCounter counter(comm);

    // A deterministic "molecular electron density".
    auto guess = [](std::int64_t i, std::int64_t j) {
      return 1.0 / static_cast<double>(1 + i + j);
    };
    if (config.distributed_guess) {
      // Rank 0 owns the initial guess and scatters it with one-sided
      // ga_put patches; sync() is only a barrier, so remote completion
      // needs an explicit fence first.
      if (comm.rank() == 0) {
        std::vector<double> d0(
            static_cast<std::size_t>(config.nbf * config.nbf));
        for (std::int64_t i = 0; i < config.nbf; ++i) {
          for (std::int64_t j = 0; j < config.nbf; ++j) {
            d0[static_cast<std::size_t>(i * config.nbf + j)] = guess(i, j);
          }
        }
        density.put(0, config.nbf, 0, config.nbf, d0.data(), config.nbf);
        comm.fence_all();
      }
    } else {
      density.fill_local(guess);
    }
    fock.fill_local(0.0);
    density.sync();
    // Bring up the collectives engine (scratch arena, barrier hook)
    // with the rest of the runtime, outside the timed region — like a
    // real SCF, which initializes GA/ARMCI long before the Fock loop.
    coll::CollEngine::of(comm);

    const armci::CommStats before = comm.stats();
    if (comm.rank() == 0) t_start = comm.now();

    std::vector<double> dij(static_cast<std::size_t>(config.block * config.block));
    std::vector<double> dji(dij.size());
    std::vector<double> fbuf(dij.size());

    for (int iter = 0; iter < config.iterations; ++iter) {
      counter.reset();
      for (std::int64_t task = counter.next(); task < ntasks;
           task = counter.next()) {
        const auto [bi, bj] = scf_task_blocks(task, nblk);
        const std::int64_t rlo = bi * config.block;
        const std::int64_t rhi = std::min(config.nbf, rlo + config.block);
        const std::int64_t clo = bj * config.block;
        const std::int64_t chi = std::min(config.nbf, clo + config.block);
        const std::int64_t nr = rhi - rlo;
        const std::int64_t nc = chi - clo;

        // Fetch the two density patches the contraction touches.
        armci::Handle h;
        density.nb_get(rlo, rhi, clo, chi, dij.data(), nc, h);
        density.nb_get(clo, chi, rlo, rhi, dji.data(), nr, h);
        comm.wait(h);

        // Contract with the 2-electron integrals: modelled local work.
        comm.compute(scf_task_time(config, iter, task));

        // The Fock contribution of this block pair — a deterministic
        // function of the density so the checksum validates every mode.
        for (std::int64_t r = 0; r < nr; ++r) {
          for (std::int64_t c = 0; c < nc; ++c) {
            fbuf[static_cast<std::size_t>(r * nc + c)] =
                0.5 * dij[static_cast<std::size_t>(r * nc + c)] +
                0.25 * dji[static_cast<std::size_t>(c * nr + r)];
          }
        }
        fock.acc(1.0, rlo, rhi, clo, chi, fbuf.data(), nc);
        if (bi != bj) {
          // Symmetric contribution F(bj, bi) += transpose(contrib).
          std::vector<double> ft(static_cast<std::size_t>(nr * nc));
          for (std::int64_t r = 0; r < nr; ++r) {
            for (std::int64_t c = 0; c < nc; ++c) {
              ft[static_cast<std::size_t>(c * nr + r)] =
                  fbuf[static_cast<std::size_t>(r * nc + c)];
            }
          }
          fock.acc(1.0, clo, chi, rlo, rhi, ft.data(), nr);
        }
        ++result.tasks_executed;
      }
      comm.barrier();
      // SCF post-processing: symmetrize the Fock matrix, then the
      // global energy reduction. Optionally stand in for the
      // diagonalization with McWeeny purification sweeps on a damped
      // copy of F (linear-scaling SCF style): D' = 3 D^2 - 2 D^3.
      ga::symmetrize(fock, scratch);
      if (config.purification_sweeps > 0) {
        ga::GlobalArray d2(comm, config.nbf, config.nbf);
        ga::copy(fock, scratch);
        ga::scale(scratch, 1.0 / static_cast<double>(config.nbf));  // damp
        for (int sweep = 0; sweep < config.purification_sweeps; ++sweep) {
          ga::dgemm(1.0, scratch, scratch, 0.0, d2);        // D^2
          ga::dgemm(-2.0, d2, scratch, 0.0, density);       // -2 D^3 (reuse D)
          ga::add(3.0, d2, 1.0, density, scratch);          // 3D^2 - 2D^3
        }
        // Refresh the density from the purified matrix for the next
        // build (keeps values bounded and deterministic).
        ga::copy(scratch, density);
        ga::symmetrize(density, d2);
      }
      const double energy = ga::element_sum(fock);
      if (comm.rank() == 0 && iter == config.iterations - 1) {
        result.final_energy = energy;
      }
    }

    if (comm.rank() == 0) t_end = comm.now();

    // Validate: trace-like checksum of the Fock matrix.
    if (comm.rank() == 0) {
      double sum = 0.0;
      for (std::int64_t i = 0; i < config.nbf; i += 97) {
        sum += fock.read_element(i, i);
        if (i + 1 < config.nbf) sum += fock.read_element(i, i + 1);
      }
      result.fock_checksum = sum;
    }
    comm.barrier();

    // Per-rank deltas for the SCF region only.
    const armci::CommStats& after = comm.stats();
    result.counter_time += after.time_in_rmw - before.time_in_rmw;
    result.get_time +=
        (after.time_in_get - before.time_in_get) + (after.time_in_wait - before.time_in_wait);
    result.acc_time += after.time_in_acc - before.time_in_acc;
    result.barrier_time += after.time_in_barrier - before.time_in_barrier;
    result.reduce_time += after.coll.data_time() - before.coll.data_time();
    result.forced_fences += after.forced_fences - before.forced_fences;
  });

  result.wall_time = t_end - t_start;
  result.stats = world.total_stats();
  return result;
}

}  // namespace pgasq::apps
