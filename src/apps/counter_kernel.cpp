#include "apps/counter_kernel.hpp"

#include <utility>

#include "core/comm.hpp"
#include "ga/global_array.hpp"
#include "util/error.hpp"

namespace pgasq::apps {

CounterKernelResult run_counter_kernel(armci::World& world,
                                       const CounterKernelConfig& config) {
  PGASQ_CHECK(config.ops_per_rank >= 1);
  CounterKernelResult result;
  double latency_sum = 0.0;
  util::Histogram hist;
  std::uint64_t ops = 0;
  int finished = 0;  // non-home ranks done (cooperative shared state)
  Time t_start = 0;
  Time t_end = 0;

  world.spmd([&](armci::Comm& comm) {
    ga::SharedCounter counter(comm, config.home);
    const int clients = comm.nprocs() - 1;
    comm.barrier();
    if (comm.rank() == config.home) t_start = comm.now();

    if (comm.rank() == config.home) {
      if (clients == 0) {
        // Single-rank run: just exercise the counter locally.
        for (int i = 0; i < config.ops_per_rank; ++i) counter.next();
      } else if (config.home_computes) {
        // Compute chunks with one explicit progress call in between —
        // in Default mode this is the ONLY servicing the counter gets.
        while (finished < clients) {
          comm.compute(config.compute_chunk);
          comm.progress();
        }
      } else {
        // Idle home: park in the progress engine until everyone is
        // done (servicing promptly, like a rank blocked in a wait).
        while (finished < clients) comm.progress();
      }
    } else {
      for (int i = 0; i < config.ops_per_rank; ++i) {
        const Time t0 = comm.now();
        counter.next();
        const Time dt = comm.now() - t0;
        latency_sum += to_us(dt);
        hist.add(static_cast<std::uint64_t>(dt / kNanosecond));
        ++ops;
      }
      ++finished;
    }

    comm.barrier();
    if (comm.rank() == config.home) {
      t_end = comm.now();
      result.final_value = counter.read();
    }
    comm.barrier();
  });

  result.avg_latency_us = ops ? latency_sum / static_cast<double>(ops) : 0.0;
  result.min_latency_us = static_cast<double>(hist.min()) / 1e3;
  result.max_latency_us = static_cast<double>(hist.max()) / 1e3;
  result.latency = std::move(hist);
  result.total_ops = ops;
  result.wall_time = t_end - t_start;
  return result;
}

}  // namespace pgasq::apps
