// NWChem Self-Consistent-Field Fock-build proxy (paper Fig 10 / S IV-C).
//
// Reproduces the communication structure of the NWChem SCF twoel loop
// on 6 water molecules (644 basis functions): a shared load-balance
// counter hands out (i, j) block-pair tasks; each task gets density
// patches D(i,j) and D(j,i), performs local work (modelled time — the
// paper itself abstracts it as `do_work`), and accumulates the result
// into the Fock matrix F. Fock contributions are deterministic, so a
// checksum validates that every progress mode computes the same
// physics while timings differ.
#pragma once

#include <cstdint>

#include "core/types.hpp"
#include "core/world.hpp"
#include "util/time_types.hpp"

namespace pgasq::apps {

struct ScfConfig {
  /// Basis functions: the paper's 6-H2O deck uses 644.
  std::int64_t nbf = 644;
  /// Basis functions per task block; tasks are upper-triangular block
  /// pairs, ntasks/iter = nblk*(nblk+1)/2.
  std::int64_t block = 7;
  /// SCF iterations (Fock rebuilds).
  int iterations = 2;
  /// Mean per-task integral-evaluation time. Real 2-electron integral
  /// tasks are multi-millisecond; this is what rank 0 is busy with
  /// while it cannot service counter requests in Default mode.
  Time mean_task_compute = from_us(5000);
  /// Task-time spread: uniform in mean * [1-jitter, 1+jitter],
  /// deterministic in (iteration, task) so every progress mode sees an
  /// identical workload.
  double jitter = 0.5;
  std::uint64_t seed = 12345;
  /// Checkpoint cadence for fail-stop runs (ft::Runtime): the fault-
  /// tolerant SCF body checkpoints density+Fock every N iterations.
  /// Ignored (and the FT body never taken) when the fault plan
  /// schedules no node deaths.
  int ft_checkpoint_interval = 1;
  /// McWeeny purification sweeps applied to the (scaled) Fock matrix
  /// after each build: D' = 3D^2 - 2D^3 via distributed dgemm — the
  /// linear-scaling-SCF stand-in for the diagonalization step. 0
  /// disables (the default keeps the Fig 11 benchmark identical to the
  /// published workload, which measures the Fock build).
  int purification_sweeps = 0;
  /// Initial-guess distribution: when true, rank 0 computes the full
  /// starting density and scatters it with one-sided ga_put patches —
  /// how NWChem seeds D from the atomic-density superposition — so the
  /// run also exercises the (strided) rput path. The default keeps
  /// each rank filling its own block locally, leaving the published
  /// Fig 11 workload untouched. Ignored by the fail-stop body.
  bool distributed_guess = false;
  /// Overlapped iteration tail (async.scf_overlap): the per-iteration
  /// energy reduction goes through the non-blocking collectives engine
  /// and is chained past the iteration boundary — it completes in the
  /// background while the next iteration's task loop runs — and the
  /// reduction window additionally hides a speculative prefetch of the
  /// next iteration's first density patches. Physics (Fock checksum,
  /// final energy) is unchanged; with coll.algo.allreduce=recdbl it is
  /// bitwise identical to the blocking path. The default keeps the
  /// published Fig 11 workload byte-identical. Requires
  /// purification_sweeps == 0; ignored by the fail-stop body.
  bool overlap = false;
};

struct ScfResult {
  /// Virtual time of the SCF region (after setup, through the final
  /// barrier of the last iteration).
  Time wall_time = 0;
  /// Sum over ranks of time blocked in the load-balance counter —
  /// the quantity Fig 11 shows collapsing under the async thread.
  Time counter_time = 0;
  Time get_time = 0;
  Time acc_time = 0;
  Time barrier_time = 0;
  /// Sum over ranks of time inside the per-iteration energy reduction
  /// (and any other data-moving engine collectives in the SCF region;
  /// barriers are excluded — their cost is load-imbalance wait,
  /// already visible in barrier_time).
  Time reduce_time = 0;
  std::uint64_t tasks_executed = 0;
  std::uint64_t forced_fences = 0;
  /// Overlap-path speculation accounting (zero on the blocking path):
  /// next-iteration first-task density prefetches that were consumed
  /// vs. discarded.
  std::uint64_t prefetch_hits = 0;
  std::uint64_t prefetch_misses = 0;
  /// Deterministic Fock-matrix checksum (mode/p independent).
  double fock_checksum = 0.0;
  /// "Energy" from the per-iteration global reduction (GA_Dgop
  /// analogue) — also mode/p independent.
  double final_energy = 0.0;
  armci::CommStats stats;
};

/// Runs the SCF proxy as the SPMD body of `world`. One call consumes
/// the world (its virtual clock keeps advancing across calls).
ScfResult run_scf(armci::World& world, const ScfConfig& config);

/// Number of tasks per iteration for a config.
std::int64_t scf_tasks_per_iteration(const ScfConfig& config);

/// Deterministic compute time of one task.
Time scf_task_time(const ScfConfig& config, int iteration, std::int64_t task);

/// Maps a linear task id to its (block-row, block-col) pair, bi <= bj.
std::pair<std::int64_t, std::int64_t> scf_task_blocks(std::int64_t task,
                                                      std::int64_t nblk);

}  // namespace pgasq::apps
