#include "apps/stencil.hpp"

#include <cmath>
#include <vector>

#include "core/comm.hpp"
#include "core/strided.hpp"
#include "ga/collectives.hpp"
#include "util/error.hpp"

namespace pgasq::apps {

namespace {
/// Near-square process grid pr x pc = p with pr <= pc.
std::pair<int, int> grid_of(int p) {
  int pr = static_cast<int>(std::sqrt(static_cast<double>(p)));
  while (pr > 1 && p % pr != 0) --pr;
  return {pr, p / pr};
}
}  // namespace

StencilResult run_stencil(armci::World& world, const StencilConfig& config) {
  PGASQ_CHECK(config.tile >= 4 && config.iterations >= 1);
  StencilResult result;
  Time t_start = 0;
  Time t_end = 0;

  world.spmd([&](armci::Comm& comm) {
    const int p = comm.nprocs();
    const auto [pr, pc] = grid_of(p);
    const int gr = comm.rank() / pc;
    const int gc = comm.rank() % pc;
    const std::int64_t n = config.tile;
    const std::size_t row_bytes = static_cast<std::size_t>(n) * sizeof(double);

    // Double-buffered tiles in collective memory (neighbours read the
    // "current" buffer one-sidedly).
    auto& mem = comm.malloc_collective(2 * static_cast<std::size_t>(n) * row_bytes);
    auto* tiles = reinterpret_cast<double*>(mem.local(comm.rank()));
    auto tile_at = [&](int buffer) { return tiles + buffer * n * n; };
    // Initial condition: a hot square in the global-center tile.
    for (std::int64_t i = 0; i < n * n; ++i) tile_at(0)[i] = 0.0;
    if (gr == pr / 2 && gc == pc / 2) {
      for (std::int64_t i = n / 4; i < 3 * n / 4; ++i) {
        for (std::int64_t j = n / 4; j < 3 * n / 4; ++j) {
          tile_at(0)[i * n + j] = 100.0;
        }
      }
    }
    comm.barrier();
    if (comm.rank() == 0) t_start = comm.now();

    auto neighbour = [&](int dr, int dc) {
      const int nr2 = (gr + dr + pr) % pr;
      const int nc2 = (gc + dc + pc) % pc;
      return nr2 * pc + nc2;
    };
    std::vector<double> north(static_cast<std::size_t>(n)), south(north.size());
    std::vector<double> west(north.size()), east(north.size());

    int cur = 0;
    const armci::CommStats before = comm.stats();
    for (int iter = 0; iter < config.iterations; ++iter) {
      const std::size_t buf_off =
          static_cast<std::size_t>(cur) * static_cast<std::size_t>(n) * row_bytes;
      armci::Handle h;
      // Row halos (contiguous) and column halos (tall-skinny strided).
      comm.nb_get_strided(
          mem.at(neighbour(-1, 0),
                 buf_off + (static_cast<std::size_t>(n) - 1) * row_bytes),
          north.data(), armci::StridedSpec::contiguous(row_bytes), h);
      comm.nb_get_strided(mem.at(neighbour(+1, 0), buf_off), south.data(),
                          armci::StridedSpec::contiguous(row_bytes), h);
      comm.nb_get_strided(
          mem.at(neighbour(0, -1), buf_off + row_bytes - sizeof(double)),
          west.data(),
          armci::StridedSpec({sizeof(double), static_cast<std::uint64_t>(n)},
                             {row_bytes}, {sizeof(double)}),
          h);
      comm.nb_get_strided(
          mem.at(neighbour(0, +1), buf_off), east.data(),
          armci::StridedSpec({sizeof(double), static_cast<std::uint64_t>(n)},
                             {row_bytes}, {sizeof(double)}),
          h);
      comm.wait(h);
      result.halo_bytes += 4 * row_bytes;

      // Jacobi sweep into the other buffer (real arithmetic + model).
      const double* src = tile_at(cur);
      double* dst = tile_at(1 - cur);
      auto at = [&](std::int64_t i, std::int64_t j) -> double {
        if (i < 0) return north[static_cast<std::size_t>(j)];
        if (i >= n) return south[static_cast<std::size_t>(j)];
        if (j < 0) return west[static_cast<std::size_t>(i)];
        if (j >= n) return east[static_cast<std::size_t>(i)];
        return src[i * n + j];
      };
      for (std::int64_t i = 0; i < n; ++i) {
        for (std::int64_t j = 0; j < n; ++j) {
          dst[i * n + j] =
              0.2 * (at(i, j) + at(i - 1, j) + at(i + 1, j) + at(i, j - 1) +
                     at(i, j + 1));
        }
      }
      comm.compute(from_ns(config.ns_per_cell * static_cast<double>(n * n)));
      cur = 1 - cur;
      comm.barrier();  // buffer swap visibility
    }

    // Global residual: sum of squares of the final field.
    double partial = 0.0;
    const double* fin = tile_at(cur);
    for (std::int64_t i = 0; i < n * n; ++i) partial += fin[i] * fin[i];
    ga::gop_sum(comm, &partial, 1);
    if (comm.rank() == 0) {
      result.residual = partial;
      t_end = comm.now();
    }
    comm.barrier();
    const armci::CommStats& after = comm.stats();
    (void)before;
    (void)after;
  });

  result.wall_time = t_end - t_start;
  result.stats = world.total_stats();
  return result;
}

}  // namespace pgasq::apps
