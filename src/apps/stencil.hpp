// Subsurface-transport stencil proxy (the STOMP-style workload the
// paper cites as the other big Global Arrays consumer, S II-B).
//
// A 2-D Jacobi diffusion sweep over a block-distributed grid: every
// iteration each rank pulls one-cell halos from its four neighbours
// with one-sided strided gets, relaxes its tile, and the iteration
// ends with a global residual reduction. Communication here is
// RDMA-dominated (gets) with no load-balance counter — the counter-
// point to the SCF proxy: the asynchronous progress thread should buy
// little, sharpening the paper's claim that AT matters for AMOs and
// AM-serviced operations specifically.
#pragma once

#include <cstdint>

#include "core/world.hpp"
#include "util/time_types.hpp"

namespace pgasq::apps {

struct StencilConfig {
  /// Global grid is (tiles_x * tile) x (tiles_y * tile) cells; the
  /// process grid is chosen from nprocs.
  std::int64_t tile = 64;
  int iterations = 10;
  /// Modelled relaxation time per cell per sweep.
  double ns_per_cell = 4.0;
};

struct StencilResult {
  Time wall_time = 0;
  /// Final global residual (deterministic; p- and mode-independent up
  /// to floating point association in the reduction).
  double residual = 0.0;
  std::uint64_t halo_bytes = 0;
  armci::CommStats stats;
};

/// Runs the stencil proxy as the SPMD body of `world`.
StencilResult run_stencil(armci::World& world, const StencilConfig& config);

}  // namespace pgasq::apps
