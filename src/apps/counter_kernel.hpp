// Load-balance-counter micro-kernel (paper Fig 9 / S IV-B3).
//
// Every rank except the counter's home hammers fetch-and-add on a
// counter resident at rank 0, optionally while rank 0 performs
// ~300 us compute chunks between explicit progress calls — the
// micro-kernel of NWChem's compute phases. Compares Default vs
// Async-Thread progress (the World's configuration decides which).
#pragma once

#include <cstdint>

#include "core/world.hpp"
#include "util/histogram.hpp"
#include "util/time_types.hpp"

namespace pgasq::apps {

struct CounterKernelConfig {
  /// Fetch-and-adds issued by each non-home rank.
  int ops_per_rank = 16;
  /// Whether the home rank runs compute chunks (the "with computation
  /// by process 0" series of Fig 9).
  bool home_computes = false;
  /// Compute-chunk length (the paper states ~300 us).
  Time compute_chunk = from_us(300);
  armci::RankId home = 0;
};

struct CounterKernelResult {
  /// Exact mean (double sum of per-op microseconds — not the
  /// histogram's truncated-nanosecond mean; Fig 9 prints this).
  double avg_latency_us = 0.0;
  double min_latency_us = 0.0;
  double max_latency_us = 0.0;
  /// Per-op nxtval latency in nanoseconds; min/max above and any
  /// quantile (p50/p99/...) come from here.
  util::Histogram latency;
  Time wall_time = 0;
  std::int64_t final_value = 0;
  std::uint64_t total_ops = 0;
};

CounterKernelResult run_counter_kernel(armci::World& world,
                                       const CounterKernelConfig& config);

}  // namespace pgasq::apps
