#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "util/error.hpp"

namespace pgasq::obs {

Json Json::boolean(bool v) {
  Json j;
  j.kind_ = Kind::kBool;
  j.bool_ = v;
  return j;
}

Json Json::number(std::uint64_t v) {
  Json j;
  j.kind_ = Kind::kNumber;
  j.scalar_ = std::to_string(v);
  return j;
}

Json Json::number(std::int64_t v) {
  Json j;
  j.kind_ = Kind::kNumber;
  j.scalar_ = std::to_string(v);
  return j;
}

Json Json::number(double v) {
  PGASQ_CHECK(std::isfinite(v), << "JSON cannot represent " << v);
  Json j;
  j.kind_ = Kind::kNumber;
  // %.17g round-trips any double; trim to the shortest of %.15g/%.16g
  // that still parses back exactly, so dumps stay readable and stable.
  char buf[40];
  for (const int prec : {15, 16, 17}) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  j.scalar_ = buf;
  return j;
}

Json Json::raw_number(std::string literal) {
  Json j;
  j.kind_ = Kind::kNumber;
  j.scalar_ = std::move(literal);
  return j;
}

Json Json::string(std::string v) {
  Json j;
  j.kind_ = Kind::kString;
  j.scalar_ = std::move(v);
  return j;
}

Json Json::array() {
  Json j;
  j.kind_ = Kind::kArray;
  return j;
}

Json Json::object() {
  Json j;
  j.kind_ = Kind::kObject;
  return j;
}

Json& Json::set(const std::string& key, Json value) {
  PGASQ_CHECK(is_object());
  for (auto& [k, v] : object_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  object_.emplace_back(key, std::move(value));
  return *this;
}

const Json* Json::find(const std::string& key) const {
  PGASQ_CHECK(is_object());
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Json& Json::at(const std::string& key) const {
  const Json* j = find(key);
  PGASQ_CHECK(j != nullptr, << "missing JSON key '" << key << "'");
  return *j;
}

const std::vector<std::pair<std::string, Json>>& Json::items() const {
  PGASQ_CHECK(is_object());
  return object_;
}

void Json::push(Json value) {
  PGASQ_CHECK(is_array());
  array_.push_back(std::move(value));
}

const Json& Json::operator[](std::size_t i) const {
  PGASQ_CHECK(is_array() && i < array_.size());
  return array_[i];
}

std::size_t Json::size() const {
  if (is_array()) return array_.size();
  if (is_object()) return object_.size();
  PGASQ_CHECK(false, << "size() on a JSON scalar");
  return 0;
}

bool Json::as_bool() const {
  PGASQ_CHECK(is_bool());
  return bool_;
}

std::int64_t Json::as_int() const {
  PGASQ_CHECK(is_number());
  return std::strtoll(scalar_.c_str(), nullptr, 10);
}

std::uint64_t Json::as_uint() const {
  PGASQ_CHECK(is_number());
  return std::strtoull(scalar_.c_str(), nullptr, 10);
}

double Json::as_double() const {
  PGASQ_CHECK(is_number());
  return std::strtod(scalar_.c_str(), nullptr);
}

const std::string& Json::as_string() const {
  PGASQ_CHECK(is_string());
  return scalar_;
}

namespace {

void dump_string(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

// Recursive-descent parser over the raw text.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    PGASQ_CHECK(pos_ == text_.size(),
                << "trailing garbage at byte " << pos_ << " of JSON input");
    return v;
  }

 private:
  Json parse_value() {
    skip_ws();
    PGASQ_CHECK(pos_ < text_.size(), << "unexpected end of JSON input");
    const char c = text_[pos_];
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json::string(parse_string());
      case 't': expect("true"); return Json::boolean(true);
      case 'f': expect("false"); return Json::boolean(false);
      case 'n': expect("null"); return Json::null();
      default: return parse_number();
    }
  }

  Json parse_object() {
    ++pos_;  // '{'
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      PGASQ_CHECK(peek() == '"', << "expected object key at byte " << pos_);
      std::string key = parse_string();
      skip_ws();
      PGASQ_CHECK(peek() == ':', << "expected ':' at byte " << pos_);
      ++pos_;
      obj.set(key, parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      PGASQ_CHECK(peek() == '}', << "expected ',' or '}' at byte " << pos_);
      ++pos_;
      return obj;
    }
  }

  Json parse_array() {
    ++pos_;  // '['
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      PGASQ_CHECK(peek() == ']', << "expected ',' or ']' at byte " << pos_);
      ++pos_;
      return arr;
    }
  }

  std::string parse_string() {
    ++pos_;  // opening quote
    std::string out;
    while (true) {
      PGASQ_CHECK(pos_ < text_.size(), << "unterminated JSON string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      PGASQ_CHECK(pos_ < text_.size(), << "unterminated escape in JSON string");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          PGASQ_CHECK(pos_ + 4 <= text_.size(), << "truncated \\u escape");
          const unsigned cp = static_cast<unsigned>(
              std::strtoul(text_.substr(pos_, 4).c_str(), nullptr, 16));
          pos_ += 4;
          // Encode the (BMP-only) code point as UTF-8; surrogate pairs
          // never appear in our own output.
          if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default:
          PGASQ_CHECK(false, << "bad escape '\\" << e << "' in JSON string");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    PGASQ_CHECK(pos_ > start, << "expected JSON value at byte " << start);
    // Validate it parses as a double, but keep the literal text.
    char* end = nullptr;
    const std::string lit = text_.substr(start, pos_ - start);
    (void)std::strtod(lit.c_str(), &end);
    PGASQ_CHECK(end == lit.c_str() + lit.size(),
                << "malformed number '" << lit << "' at byte " << start);
    return Json::raw_number(lit);
  }

  void expect(const char* word) {
    const std::size_t n = std::string(word).size();
    PGASQ_CHECK(text_.compare(pos_, n, word) == 0,
                << "expected '" << word << "' at byte " << pos_);
    pos_ += n;
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string Json::dump() const {
  std::ostringstream os;
  switch (kind_) {
    case Kind::kNull: os << "null"; break;
    case Kind::kBool: os << (bool_ ? "true" : "false"); break;
    case Kind::kNumber: os << scalar_; break;
    case Kind::kString: dump_string(os, scalar_); break;
    case Kind::kArray: {
      os << '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) os << ',';
        os << array_[i].dump();
      }
      os << ']';
      break;
    }
    case Kind::kObject: {
      os << '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) os << ',';
        dump_string(os, object_[i].first);
        os << ':' << object_[i].second.dump();
      }
      os << '}';
      break;
    }
  }
  return os.str();
}

Json Json::parse(const std::string& text) {
  return Parser(text).parse_document();
}

}  // namespace pgasq::obs
