#include "obs/critpath.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <vector>

#include "topo/torus.hpp"
#include "util/error.hpp"

namespace pgasq::obs {

namespace {
constexpr char kDimNames[topo::kDims + 1] = "ABCDE";

// Same format as LinkUsage::link_name — a dense directed-link index
// decodes to "n<node> <dim><+|->" by pure arithmetic.
std::string link_label(int link_index) {
  if (link_index < 0) return "shm";
  const int node = link_index / (topo::kDims * 2);
  const int rest = link_index % (topo::kDims * 2);
  const int dim = rest / 2;
  const char dir = (rest % 2) ? '-' : '+';
  std::ostringstream os;
  os << 'n' << node << ' ' << kDimNames[dim] << dir;
  return os.str();
}

// Pure acknowledgements carry no payload the op is waiting to move;
// their whole latency is the ack segment.
bool is_ack(std::string_view what) {
  return what.find("ack") != std::string_view::npos;
}

std::string class_of(std::string_view what) {
  const std::size_t sp = what.find(' ');
  return std::string(sp == std::string_view::npos ? what : what.substr(0, sp));
}

Json seg_json(const CritPath::Seg& s) {
  Json j = Json::object();
  j.set("legs", Json::number(s.legs));
  j.set("degraded_legs", Json::number(s.degraded_legs));
  j.set("inject_wait_us", Json::number(to_us(s.inject_wait)));
  j.set("ser_us", Json::number(to_us(s.ser)));
  j.set("wire_us", Json::number(to_us(s.wire)));
  j.set("ack_us", Json::number(to_us(s.ack)));
  j.set("total_us", Json::number(to_us(s.total())));
  return j;
}
}  // namespace

CritPath::CritPath(int top_k) : top_(std::max(1, top_k)) {}

void CritPath::record_leg(std::string_view what, int src_rank, Time requested,
                          Time inject_begin, Time inject_done,
                          Time ser_nominal, Time arrive, int bottleneck_link,
                          bool degraded) {
  const Time latency = arrive - requested;
  PGASQ_CHECK(latency >= 0, << "critpath leg '" << what
                            << "' arrives before it was requested");
  Seg leg;
  leg.legs = 1;
  leg.degraded_legs = degraded ? 1 : 0;
  if (is_ack(what)) {
    leg.ack = latency;
  } else {
    leg.inject_wait = std::max<Time>(0, inject_begin - requested);
    leg.ser = std::min(std::max<Time>(0, inject_done - inject_begin),
                       std::max<Time>(0, ser_nominal));
    leg.wire = latency - leg.inject_wait - leg.ser;
    if (leg.wire < 0) {  // clamp, keep the exact-sum identity
      leg.ser += leg.wire;
      leg.wire = 0;
    }
  }
  auto fold = [&leg](Seg& into) {
    into.legs += leg.legs;
    into.degraded_legs += leg.degraded_legs;
    into.inject_wait += leg.inject_wait;
    into.ser += leg.ser;
    into.wire += leg.wire;
    into.ack += leg.ack;
  };
  fold(total_);
  if (degraded) fold(degraded_);
  total_latency_ += latency;
  fold(classes_[class_of(what)]);
  fold(links_[bottleneck_link]);
  fold(ranks_[src_rank]);
}

double CritPath::degraded_share() const {
  const Time all = wire_wait_total();
  if (all == 0) return 0.0;
  return static_cast<double>(degraded_wire_wait()) / static_cast<double>(all);
}

std::string CritPath::render() const {
  std::ostringstream os;
  if (total_.legs == 0) {
    os << "  (no wire legs recorded)\n";
    return os.str();
  }
  char line[200];
  std::snprintf(line, sizeof line,
                "critical path: %llu wire legs, %.1f us total "
                "(inject-wait %.1f, ser %.1f, wire %.1f, ack %.1f)\n",
                static_cast<unsigned long long>(total_.legs),
                to_us(total_latency_), to_us(total_.inject_wait),
                to_us(total_.ser), to_us(total_.wire), to_us(total_.ack));
  os << line;
  if (degraded_.legs > 0) {
    std::snprintf(line, sizeof line,
                  "  degraded links: %llu legs carry %.1f us of "
                  "wire+inject-wait (%.0f%% of all waiting)\n",
                  static_cast<unsigned long long>(degraded_.legs),
                  to_us(degraded_wire_wait()), 100.0 * degraded_share());
    os << line;
  }

  os << "  by op class (inject-wait / ser / wire / ack, us):\n";
  std::vector<std::pair<std::string, const Seg*>> cls;
  cls.reserve(classes_.size());
  for (const auto& [name, seg] : classes_) cls.emplace_back(name, &seg);
  std::sort(cls.begin(), cls.end(), [](const auto& a, const auto& b) {
    if (a.second->total() != b.second->total()) {
      return a.second->total() > b.second->total();
    }
    return a.first < b.first;
  });
  for (std::size_t i = 0;
       i < std::min<std::size_t>(cls.size(), static_cast<std::size_t>(top_));
       ++i) {
    const auto& [name, seg] = cls[i];
    std::snprintf(line, sizeof line,
                  "    %-12s legs %-7llu %9.1f /%9.1f /%9.1f /%9.1f\n",
                  name.c_str(), static_cast<unsigned long long>(seg->legs),
                  to_us(seg->inject_wait), to_us(seg->ser), to_us(seg->wire),
                  to_us(seg->ack));
    os << line;
  }

  auto top_rows = [this](const std::map<int, Seg>& by,
                         auto metric) {
    std::vector<std::pair<int, const Seg*>> rows;
    rows.reserve(by.size());
    for (const auto& [key, seg] : by) rows.emplace_back(key, &seg);
    std::sort(rows.begin(), rows.end(),
              [&metric](const auto& a, const auto& b) {
                if (metric(*a.second) != metric(*b.second)) {
                  return metric(*a.second) > metric(*b.second);
                }
                return a.first < b.first;
              });
    if (rows.size() > static_cast<std::size_t>(top_)) rows.resize(top_);
    return rows;
  };
  const auto wait_of = [](const Seg& s) { return s.inject_wait + s.wire; };
  const auto total_of = [](const Seg& s) { return s.total(); };

  os << "  worst links (by wire+inject-wait):\n";
  for (const auto& [link, seg] : top_rows(links_, wait_of)) {
    std::snprintf(line, sizeof line,
                  "    %-10s legs %-7llu wait %9.1f us  degraded legs %llu\n",
                  link_label(link).c_str(),
                  static_cast<unsigned long long>(seg->legs),
                  to_us(wait_of(*seg)),
                  static_cast<unsigned long long>(seg->degraded_legs));
    os << line;
  }

  os << "  worst ranks (by attributed latency):\n";
  for (const auto& [rank, seg] : top_rows(ranks_, total_of)) {
    std::snprintf(line, sizeof line, "    r%-4d legs %-7llu total %9.1f us\n",
                  rank, static_cast<unsigned long long>(seg->legs),
                  to_us(seg->total()));
    os << line;
  }
  return os.str();
}

Json CritPath::to_json() const {
  Json j = Json::object();
  j.set("schema", Json::string("pgasq.critpath"));
  j.set("schema_version", Json::number(kSchemaVersion));
  j.set("total_latency_us", Json::number(to_us(total_latency_)));
  j.set("segments", seg_json(total_));
  j.set("degraded", seg_json(degraded_));

  Json cls = Json::array();
  for (const auto& [name, seg] : classes_) {
    Json row = seg_json(seg);
    row.set("class", Json::string(name));
    cls.push(std::move(row));
  }
  j.set("classes", std::move(cls));

  auto dump_topk = [this](const std::map<int, Seg>& by, auto metric,
                          const char* key_name, bool label_links) {
    std::vector<std::pair<int, const Seg*>> rows;
    rows.reserve(by.size());
    for (const auto& [key, seg] : by) rows.emplace_back(key, &seg);
    std::sort(rows.begin(), rows.end(),
              [&metric](const auto& a, const auto& b) {
                if (metric(*a.second) != metric(*b.second)) {
                  return metric(*a.second) > metric(*b.second);
                }
                return a.first < b.first;
              });
    if (rows.size() > static_cast<std::size_t>(top_)) rows.resize(top_);
    Json arr = Json::array();
    for (const auto& [key, seg] : rows) {
      Json row = seg_json(*seg);
      row.set(key_name, Json::number(static_cast<std::int64_t>(key)));
      if (label_links) row.set("name", Json::string(link_label(key)));
      arr.push(std::move(row));
    }
    return arr;
  };
  j.set("links",
        dump_topk(
            links_, [](const Seg& s) { return s.inject_wait + s.wire; },
            "link", true));
  j.set("ranks",
        dump_topk(
            ranks_, [](const Seg& s) { return s.total(); }, "rank", false));
  return j;
}

}  // namespace pgasq::obs
