// Minimal JSON value tree: enough to build, serialize, parse, and
// round-trip the machine-readable report (core/report_json) and to let
// tests inspect trace files — without an external dependency.
//
// Objects preserve insertion order so two identical runs dump
// byte-identical documents. Numbers keep their literal text, so
// uint64 counters survive a parse → dump round trip exactly.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace pgasq::obs {

class Json {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;  // null

  static Json null() { return Json(); }
  static Json boolean(bool v);
  static Json number(std::uint64_t v);
  static Json number(std::int64_t v);
  static Json number(int v) { return number(static_cast<std::int64_t>(v)); }
  static Json number(double v);
  /// A pre-validated numeric literal kept verbatim (parser internal).
  static Json raw_number(std::string literal);
  static Json string(std::string v);
  static Json array();
  static Json object();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_bool() const { return kind_ == Kind::kBool; }

  /// Object: inserts or overwrites; returns *this for chaining.
  Json& set(const std::string& key, Json value);
  /// Object: nullptr when absent.
  const Json* find(const std::string& key) const;
  /// Object: throws Error when absent.
  const Json& at(const std::string& key) const;
  const std::vector<std::pair<std::string, Json>>& items() const;

  /// Array.
  void push(Json value);
  const Json& operator[](std::size_t i) const;

  /// Array or object element count.
  std::size_t size() const;

  bool as_bool() const;
  std::int64_t as_int() const;
  std::uint64_t as_uint() const;
  double as_double() const;
  const std::string& as_string() const;

  /// Compact serialization (no whitespace).
  std::string dump() const;
  /// Throws Error with byte offset on malformed input.
  static Json parse(const std::string& text);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::string scalar_;  // number literal text, or string value
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> object_;
};

}  // namespace pgasq::obs
