// Critical-path latency attribution (obs.critpath): every wire leg a
// context sends is split into inject-wait / serialization / wire / ack
// segments using the injection diagnostics the noc models stamp on
// each Transfer. The segments sum exactly to the leg's measured
// latency (requested → arrive), so the attribution is an identity,
// not an estimate:
//
//   inject_wait = inject_begin - requested   (credit gate, NIC busy,
//                                             retransmit backoff, CRC)
//   ser         = min(inject_done - inject_begin, nominal ser)
//   wire        = latency - inject_wait - ser (flight, link queues,
//                                              degraded drain)
//   ack         = whole latency of pure ack legs ("put ack", …)
//
// Aggregated three ways — per op class (first token of the leg label),
// per bottleneck link, per source rank — and rendered as top-k
// bottleneck tables in the text report plus a versioned pgasq.critpath
// v1 JSON section. Legs whose route crossed a degraded (faulted) link
// are tallied separately so brownout p99 inflation can be attributed
// to the faulted links' wire/inject-wait share.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "obs/json.hpp"
#include "util/time_types.hpp"

namespace pgasq::obs {

class CritPath {
 public:
  /// Current pgasq.critpath schema version.
  static constexpr int kSchemaVersion = 1;

  /// `top_k` bounds every rendered table.
  explicit CritPath(int top_k);

  /// Records one wire leg. `what` labels the op ("put data",
  /// "rget request", "put ack", …); `requested` is when the sender
  /// asked for the wire (before CRC/credit/NIC waits); the remaining
  /// times come from the noc Transfer diagnostics. `bottleneck_link`
  /// is the densest link on the route (-1 for shared memory);
  /// `degraded` is true when the route crossed a faulted link.
  void record_leg(std::string_view what, int src_rank, Time requested,
                  Time inject_begin, Time inject_done, Time ser_nominal,
                  Time arrive, int bottleneck_link, bool degraded);

  struct Seg {
    std::uint64_t legs = 0;
    std::uint64_t degraded_legs = 0;
    Time inject_wait = 0;
    Time ser = 0;
    Time wire = 0;
    Time ack = 0;
    Time total() const { return inject_wait + ser + wire + ack; }
  };

  std::uint64_t legs() const { return total_.legs; }
  /// Sum over legs of (arrive - requested) — equals segment_sum().
  Time total_latency() const { return total_latency_; }
  Time segment_sum() const { return total_.total(); }
  /// inject_wait + wire over all legs / over degraded legs only.
  Time wire_wait_total() const { return total_.inject_wait + total_.wire; }
  Time degraded_wire_wait() const {
    return degraded_.inject_wait + degraded_.wire;
  }
  /// Share of all wire+inject-wait time riding degraded links (0 when
  /// nothing waited).
  double degraded_share() const;

  /// Top-k bottleneck tables: by op class, worst links, worst ranks.
  std::string render() const;

  /// {"schema":"pgasq.critpath","schema_version":1,…} with "segments",
  /// "classes", "links" (top-k by wire+inject wait), "ranks" (top-k by
  /// total latency).
  Json to_json() const;

 private:
  int top_;
  Seg total_;
  Seg degraded_;  // legs whose route crossed a faulted link
  Time total_latency_ = 0;
  std::map<std::string, Seg> classes_;  // first token of `what`
  std::map<int, Seg> links_;            // bottleneck link index
  std::map<int, Seg> ranks_;            // source rank
};

}  // namespace pgasq::obs
