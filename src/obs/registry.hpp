// Metrics registry: a flat, insertion-ordered collection of named
// counters, gauges, and log2 histograms with optional labels.
//
// The registry is a *snapshot* container: at report time the runtime
// (core/report_json) folds the ad-hoc stats structs — CommStats,
// coll::CollStats, fault::FaultStats, ft tables, link counters — into
// one registry and serializes it. Identical runs produce byte-identical
// serializations because insertion order is preserved and values are
// integers or deterministically formatted doubles.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.hpp"
#include "util/histogram.hpp"
#include "util/stats.hpp"

namespace pgasq::obs {

/// Metric labels, e.g. {{"op", "put"}, {"algo", "ring"}}.
using Labels = std::vector<std::pair<std::string, std::string>>;

class Registry {
 public:
  /// Sets (or overwrites) a monotone counter.
  void set_counter(const std::string& name, std::uint64_t value,
                   Labels labels = {});
  /// Accumulates into a counter, creating it at zero first.
  void add_counter(const std::string& name, std::uint64_t delta,
                   Labels labels = {});
  /// Sets a point-in-time double-valued gauge (times, utilizations).
  void set_gauge(const std::string& name, double value, Labels labels = {});
  /// Snapshots a log2-bucketed histogram.
  void set_histogram(const std::string& name, const Log2Histogram& hist,
                     Labels labels = {});
  /// Snapshots a util::Histogram (HDR-style log-bucketed latency
  /// histogram); serialized with the same {"total", "buckets"} shape.
  void set_histogram(const std::string& name, const util::Histogram& hist,
                     Labels labels = {});

  /// Folds every metric of `other` into this registry (set semantics:
  /// same name+labels overwrites). Lets an application accumulate its
  /// own registry across phases and splice it into the report.
  void merge_from(const Registry& other);

  std::size_t size() const { return metrics_.size(); }

  /// Deterministic plain-text rendering, one "name{k=v,...} = value"
  /// line per metric (histograms show their totals); insertion order.
  std::string to_text() const;

  /// All metric names in insertion order (duplicates possible when the
  /// same name carries different labels).
  std::vector<std::string> names() const;

  /// Serializes to a JSON array of
  ///   {"name":…, "type":"counter"|"gauge"|"histogram",
  ///    "labels":{…}?, "value":…} — histograms carry
  ///   {"total":…, "buckets":[…]} instead of "value".
  Json to_json() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Metric {
    std::string name;
    Labels labels;
    Kind kind;
    std::uint64_t count = 0;                // counter
    double value = 0.0;                     // gauge
    std::vector<std::uint64_t> buckets;     // histogram
    std::uint64_t total = 0;                // histogram
  };
  Metric& find_or_create(const std::string& name, const Labels& labels,
                         Kind kind);

  std::vector<Metric> metrics_;
};

}  // namespace pgasq::obs
