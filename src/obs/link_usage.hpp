// Per-link network counters: time-bucketed bytes and queue-wait per
// directed torus link, recorded by the noc models when enabled
// (obs.links). Pure observation — recording never changes timing, so
// obs-on and obs-off runs are virtual-time identical.
//
// Rendering: a text heatmap (hot links as rows, virtual-time buckets
// as columns, intensity = bucket bytes / link capacity per bucket)
// for the report, and a CSV export for offline analysis.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "topo/torus.hpp"
#include "util/config.hpp"
#include "util/time_types.hpp"

namespace pgasq::obs {

/// Observability knobs parsed from the obs.* config namespace.
struct Options {
  /// Enable per-link byte/wait accounting (obs.links).
  bool links = false;
  /// Heatmap/accounting bucket width (obs.link_bucket_us).
  Time link_bucket = from_us(50);
  /// Heatmap rows: hottest N links (obs.link_top).
  int link_top = 16;
  /// When non-empty, per-link buckets are exported as CSV at report
  /// time (obs.link_csv).
  std::string link_csv;

  /// Enable continuous time-series telemetry (obs.timeline); see
  /// obs/timeline.hpp. Off by default: runs stay byte-identical.
  bool timeline = false;
  /// Timeline bucket width (obs.timeline_bucket_us).
  Time timeline_bucket = from_us(50);
  /// Series cap; hitting it warns once (obs.timeline_max_series).
  int timeline_max_series = 256;
  /// Sparkline rows in the text report (obs.timeline_top).
  int timeline_top = 12;
  /// When non-empty, timeline buckets are exported as CSV at report
  /// time (obs.timeline_csv).
  std::string timeline_csv;

  /// Enable critical-path latency attribution (obs.critpath); see
  /// obs/critpath.hpp.
  bool critpath = false;
  /// Rows per critical-path bottleneck table (obs.critpath_top).
  int critpath_top = 8;

  /// Parses the obs.* namespace from `cfg` over `defaults`; rejects
  /// unknown obs.* keys with a typo suggestion.
  static Options from_config(const Config& cfg, Options defaults);
  static Options from_config(const Config& cfg);
};

class LinkUsage {
 public:
  LinkUsage(const topo::Torus5D& torus, Time bucket_width);

  /// Records one hop of a transfer: `bytes` crossing `link` at `at`.
  void record_hop(const topo::Link& link, Time at, std::uint64_t bytes);
  /// Records queue wait: a transfer found `link` busy for `waited`.
  void record_wait(const topo::Link& link, Time at, Time waited);
  /// Counts a transfer's payload once (for reconciliation against
  /// NetworkModel::bytes_sent, which also counts once per transfer).
  void note_transfer(std::uint64_t bytes);
  /// Convenience: note_transfer + record_hop over a whole route at one
  /// injection time (the stateless LogGP model has no per-hop times).
  void record_transfer(const std::vector<topo::Link>& route, Time at,
                       std::uint64_t bytes);

  std::uint64_t transfers() const { return transfers_; }
  std::uint64_t injected_bytes() const { return injected_bytes_; }
  /// Sum of bytes over links, i.e. bytes x hops.
  std::uint64_t link_bytes_total() const;
  std::size_t active_links() const { return links_.size(); }
  Time bucket_width() const { return bucket_; }
  Time end_time() const;

  /// Peak/mean single-bucket utilization over active links, given the
  /// link capacity in bytes per nanosecond.
  double max_utilization(double bytes_per_ns) const;
  double mean_utilization(double bytes_per_ns) const;

  /// Human-readable name for a dense link index: "n<node>(<coord>)<dim><+|->".
  std::string link_name(int link_index) const;

  /// Text heatmap: top `top_links` links by total bytes, one row each,
  /// columns spanning [0, end_time). `bytes_per_ns` is the link
  /// capacity used as the 100%-utilization reference.
  std::string heatmap(double bytes_per_ns, int top_links) const;

  /// CSV: link,name,dim,dir,total_bytes,wait_ns,bucket_us,b0,b1,...
  std::string to_csv() const;
  void write_csv(const std::string& path) const;

  /// JSON: {"bucket_us":…, "links":[{"link":…,"name":…,"bytes":…,
  /// "wait_ns":…,"buckets":[[bucket_index,bytes],…]},…]} — sorted by
  /// total bytes descending (ties by link index) like the heatmap.
  Json to_json() const;

 private:
  struct Row {
    std::uint64_t total = 0;
    std::uint64_t wait_count = 0;
    Time wait_total = 0;
    std::map<std::int64_t, std::uint64_t> buckets;  // bucket index -> bytes
  };
  std::int64_t bucket_of(Time at) const { return at / bucket_; }
  /// Rows sorted hottest-first, as (link_index, Row*) pairs.
  std::vector<std::pair<int, const Row*>> sorted_rows() const;

  const topo::Torus5D& torus_;
  Time bucket_;
  std::map<int, Row> links_;  // dense link index -> accounting
  std::uint64_t transfers_ = 0;
  std::uint64_t injected_bytes_ = 0;
};

}  // namespace pgasq::obs
