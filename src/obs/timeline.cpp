#include "obs/timeline.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/error.hpp"
#include "util/log.hpp"

namespace pgasq::obs {

namespace {
// Intensity ramp shared with the link heatmap, index 0 (idle) .. 9.
constexpr char kRamp[] = " .:-=+*#%@";
constexpr int kRampLevels = 9;
// Widest sparkline body before buckets merge into wider columns.
constexpr std::int64_t kMaxColumns = 72;

const char* kind_name(Timeline::Kind k) {
  return k == Timeline::Kind::kGauge ? "gauge" : "counter";
}

// Representative value of one bucket for CSV/sparkline rendering.
double bucket_value(Timeline::Kind k, std::uint64_t count, double sum) {
  if (k == Timeline::Kind::kCounter) return static_cast<double>(count);
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}
}  // namespace

Timeline::Timeline(Time bucket_width, std::size_t max_series)
    : bucket_(bucket_width), max_series_(max_series) {
  PGASQ_CHECK(bucket_ > 0, << "timeline bucket width must be positive");
  PGASQ_CHECK(max_series_ > 0, << "timeline series cap must be positive");
}

Timeline::SeriesId Timeline::series(const std::string& name, Kind kind) {
  auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  if (series_.size() >= max_series_) {
    if (!truncated_) {
      truncated_ = true;
      PGASQ_LOG(kWarn) << "timeline truncated at " << max_series_
                       << " series; later series are dropped "
                          "(raise obs.timeline_max_series)";
    }
    return kNone;
  }
  const SeriesId id = static_cast<SeriesId>(series_.size());
  series_.push_back(Series{name, kind, 0, 0.0, {}});
  index_.emplace(name, id);
  return id;
}

Time Timeline::end_time() const {
  std::int64_t last = -1;
  for (const Series& s : series_) {
    if (!s.buckets.empty()) last = std::max(last, s.buckets.rbegin()->first);
  }
  return (last + 1) * bucket_;
}

bool Timeline::has(const std::string& name) const {
  return index_.find(name) != index_.end();
}

std::uint64_t Timeline::counter_total(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) return 0;
  const Series& s = series_[it->second];
  return s.kind == Kind::kCounter ? s.samples : 0;
}

double Timeline::gauge_peak(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) return 0.0;
  const Series& s = series_[it->second];
  return s.kind == Kind::kGauge ? s.peak : 0.0;
}

std::vector<Timeline::SeriesId> Timeline::sorted_ids() const {
  std::vector<SeriesId> ids(series_.size());
  for (SeriesId i = 0; i < ids.size(); ++i) ids[i] = i;
  std::sort(ids.begin(), ids.end(), [this](SeriesId a, SeriesId b) {
    return series_[a].name < series_[b].name;
  });
  return ids;
}

std::string Timeline::render(int top) const {
  std::ostringstream os;
  if (series_.empty()) {
    os << "  (no timeline samples recorded)\n";
    return os.str();
  }
  const Time end = end_time();
  const std::int64_t n_buckets = std::max<std::int64_t>(1, end / bucket_);
  const std::int64_t merge =
      std::max<std::int64_t>(1, (n_buckets + kMaxColumns - 1) / kMaxColumns);
  const std::int64_t n_cols = (n_buckets + merge - 1) / merge;

  os << "timeline (per-series sparklines, busiest first):\n";
  char head[160];
  std::snprintf(head, sizeof head,
                "  bucket %.0f us x %lld cols (x%lld merge), scale \"%s\" = "
                "0..series max\n",
                to_us(bucket_), static_cast<long long>(n_cols),
                static_cast<long long>(merge), kRamp + 1);
  os << head;

  // Busiest-first: by total samples, ties by name.
  auto ids = sorted_ids();
  std::stable_sort(ids.begin(), ids.end(), [this](SeriesId a, SeriesId b) {
    return series_[a].samples > series_[b].samples;
  });
  const std::size_t shown = std::min<std::size_t>(
      ids.size(), static_cast<std::size_t>(std::max(1, top)));
  std::size_t label_width = 0;
  for (std::size_t i = 0; i < shown; ++i) {
    label_width = std::max(label_width, series_[ids[i]].name.size());
  }
  for (std::size_t i = 0; i < shown; ++i) {
    const Series& s = series_[ids[i]];
    std::string label = s.name;
    label.resize(label_width, ' ');
    std::vector<double> cols(static_cast<std::size_t>(n_cols), 0.0);
    for (const auto& [b, bucket] : s.buckets) {
      double& cell = cols[static_cast<std::size_t>(b / merge)];
      if (s.kind == Kind::kCounter) {
        cell += static_cast<double>(bucket.count);
      } else {
        // Merged gauge columns keep the max of their bucket means so
        // a brief spike still shows at coarse column widths.
        cell = std::max(cell, bucket_value(s.kind, bucket.count, bucket.sum));
      }
    }
    double col_peak = 0.0;
    for (const double v : cols) col_peak = std::max(col_peak, v);
    os << "  " << label << " |";
    for (const double v : cols) {
      int level = 0;
      if (v > 0.0 && col_peak > 0.0) {
        level = 1 + static_cast<int>((v / col_peak) * (kRampLevels - 1));
        level = std::min(level, kRampLevels);
      }
      os << kRamp[level];
    }
    char tail[96];
    if (s.kind == Kind::kCounter) {
      std::snprintf(tail, sizeof tail, "| total %llu\n",
                    static_cast<unsigned long long>(s.samples));
    } else {
      std::snprintf(tail, sizeof tail, "| peak %.1f (n=%llu)\n", s.peak,
                    static_cast<unsigned long long>(s.samples));
    }
    os << tail;
  }
  if (ids.size() > shown) {
    os << "  (" << ids.size() - shown
       << " quieter series not shown; CSV/JSON have all of them)\n";
  }
  if (truncated_) {
    os << "  WARNING: series cap hit; some series were dropped "
          "(raise obs.timeline_max_series)\n";
  }
  return os.str();
}

std::string Timeline::to_csv() const {
  std::ostringstream os;
  const Time end = end_time();
  const std::int64_t n_buckets = end / bucket_;
  os << "series,kind,samples,peak";
  for (std::int64_t b = 0; b < n_buckets; ++b) {
    os << ",us" << static_cast<long long>(to_us(bucket_ * b));
  }
  os << '\n';
  for (const SeriesId id : sorted_ids()) {
    const Series& s = series_[id];
    os << s.name << ',' << kind_name(s.kind) << ',' << s.samples << ','
       << s.peak;
    for (std::int64_t b = 0; b < n_buckets; ++b) {
      const auto it = s.buckets.find(b);
      os << ',';
      if (it == s.buckets.end()) {
        os << 0;
      } else {
        os << bucket_value(s.kind, it->second.count, it->second.sum);
      }
    }
    os << '\n';
  }
  return os.str();
}

void Timeline::write_csv(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  PGASQ_CHECK(out.good(), << "cannot open timeline CSV file '" << path << "'");
  out << to_csv();
  PGASQ_CHECK(out.good(),
              << "failed writing timeline CSV file '" << path << "'");
}

Json Timeline::to_json() const {
  Json j = Json::object();
  j.set("schema", Json::string("pgasq.timeline"));
  j.set("schema_version", Json::number(kSchemaVersion));
  j.set("bucket_us", Json::number(to_us(bucket_)));
  j.set("truncated", Json::boolean(truncated_));
  Json arr = Json::array();
  for (const SeriesId id : sorted_ids()) {
    const Series& s = series_[id];
    Json row = Json::object();
    row.set("name", Json::string(s.name));
    row.set("kind", Json::string(kind_name(s.kind)));
    row.set("samples", Json::number(s.samples));
    if (s.kind == Kind::kGauge) row.set("peak", Json::number(s.peak));
    Json buckets = Json::array();
    for (const auto& [b, bucket] : s.buckets) {
      Json cell = Json::array();
      cell.push(Json::number(static_cast<std::int64_t>(b)));
      if (s.kind == Kind::kCounter) {
        cell.push(Json::number(bucket.count));
      } else {
        cell.push(Json::number(bucket.count));
        cell.push(Json::number(bucket_value(s.kind, bucket.count, bucket.sum)));
        cell.push(Json::number(bucket.max));
      }
      buckets.push(std::move(cell));
    }
    row.set("buckets", std::move(buckets));
    arr.push(std::move(row));
  }
  j.set("series", std::move(arr));
  return j;
}

}  // namespace pgasq::obs
