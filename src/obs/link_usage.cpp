#include "obs/link_usage.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/error.hpp"
#include "util/table.hpp"

namespace pgasq::obs {

Options Options::from_config(const Config& cfg, Options defaults) {
  cfg.reject_unknown("obs", {"links", "link_bucket_us", "link_top",
                             "link_csv", "timeline", "timeline_bucket_us",
                             "timeline_max_series", "timeline_top",
                             "timeline_csv", "critpath", "critpath_top"});
  // Every timeline knob lives under obs.*; a bare timeline.* key is
  // always a misremembered namespace, never silently ignored.
  cfg.reject_unknown("timeline", {});
  Options opt = defaults;
  opt.links = cfg.get_bool("obs.links", opt.links);
  opt.link_bucket = from_us(cfg.get_double("obs.link_bucket_us",
                                           to_us(opt.link_bucket)));
  opt.link_top = static_cast<int>(cfg.get_int("obs.link_top", opt.link_top));
  opt.link_csv = cfg.get_string("obs.link_csv", opt.link_csv);
  opt.timeline = cfg.get_bool("obs.timeline", opt.timeline);
  opt.timeline_bucket = from_us(
      cfg.get_double("obs.timeline_bucket_us", to_us(opt.timeline_bucket)));
  opt.timeline_max_series = static_cast<int>(
      cfg.get_int("obs.timeline_max_series", opt.timeline_max_series));
  opt.timeline_top =
      static_cast<int>(cfg.get_int("obs.timeline_top", opt.timeline_top));
  opt.timeline_csv = cfg.get_string("obs.timeline_csv", opt.timeline_csv);
  opt.critpath = cfg.get_bool("obs.critpath", opt.critpath);
  opt.critpath_top =
      static_cast<int>(cfg.get_int("obs.critpath_top", opt.critpath_top));
  return opt;
}

Options Options::from_config(const Config& cfg) {
  return from_config(cfg, Options{});
}

namespace {
constexpr char kDimNames[topo::kDims + 1] = "ABCDE";
// Intensity ramp, index 0 (idle) .. 9 (saturated).
constexpr char kRamp[] = " .:-=+*#%@";
constexpr int kRampLevels = 9;
// Widest heatmap body before buckets get merged into wider columns.
constexpr std::int64_t kMaxColumns = 72;
}  // namespace

LinkUsage::LinkUsage(const topo::Torus5D& torus, Time bucket_width)
    : torus_(torus), bucket_(bucket_width) {
  PGASQ_CHECK(bucket_ > 0, << "link bucket width must be positive");
}

void LinkUsage::record_hop(const topo::Link& link, Time at,
                           std::uint64_t bytes) {
  Row& row = links_[torus_.link_index(link)];
  row.total += bytes;
  row.buckets[bucket_of(at)] += bytes;
}

void LinkUsage::record_wait(const topo::Link& link, Time /*at*/, Time waited) {
  Row& row = links_[torus_.link_index(link)];
  row.wait_count += 1;
  row.wait_total += waited;
}

void LinkUsage::note_transfer(std::uint64_t bytes) {
  transfers_ += 1;
  injected_bytes_ += bytes;
}

void LinkUsage::record_transfer(const std::vector<topo::Link>& route, Time at,
                                std::uint64_t bytes) {
  note_transfer(bytes);
  for (const auto& link : route) record_hop(link, at, bytes);
}

std::uint64_t LinkUsage::link_bytes_total() const {
  std::uint64_t total = 0;
  for (const auto& [idx, row] : links_) total += row.total;
  return total;
}

Time LinkUsage::end_time() const {
  std::int64_t last = -1;
  for (const auto& [idx, row] : links_) {
    if (!row.buckets.empty()) last = std::max(last, row.buckets.rbegin()->first);
  }
  return (last + 1) * bucket_;
}

double LinkUsage::max_utilization(double bytes_per_ns) const {
  const double capacity = bytes_per_ns * to_ns(bucket_);
  double peak = 0.0;
  for (const auto& [idx, row] : links_) {
    for (const auto& [b, bytes] : row.buckets) {
      peak = std::max(peak, static_cast<double>(bytes) / capacity);
    }
  }
  return peak;
}

double LinkUsage::mean_utilization(double bytes_per_ns) const {
  // Mean over active links across the full [0, end_time) window.
  const Time end = end_time();
  if (end == 0 || links_.empty()) return 0.0;
  const double window_capacity = bytes_per_ns * to_ns(end);
  double sum = 0.0;
  for (const auto& [idx, row] : links_) {
    sum += static_cast<double>(row.total) / window_capacity;
  }
  return sum / static_cast<double>(links_.size());
}

std::string LinkUsage::link_name(int link_index) const {
  const int node = link_index / (topo::kDims * 2);
  const int rest = link_index % (topo::kDims * 2);
  const int dim = rest / 2;
  const char dir = (rest % 2) ? '-' : '+';
  std::ostringstream os;
  os << 'n' << node << ' ' << kDimNames[dim] << dir;
  return os.str();
}

std::vector<std::pair<int, const LinkUsage::Row*>> LinkUsage::sorted_rows()
    const {
  std::vector<std::pair<int, const Row*>> rows;
  rows.reserve(links_.size());
  for (const auto& [idx, row] : links_) rows.emplace_back(idx, &row);
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    if (a.second->total != b.second->total) {
      return a.second->total > b.second->total;
    }
    return a.first < b.first;
  });
  return rows;
}

std::string LinkUsage::heatmap(double bytes_per_ns, int top_links) const {
  std::ostringstream os;
  if (links_.empty()) {
    os << "  (no link traffic recorded)\n";
    return os.str();
  }
  const Time end = end_time();
  const std::int64_t n_buckets = end / bucket_;
  const std::int64_t merge = std::max<std::int64_t>(
      1, (n_buckets + kMaxColumns - 1) / kMaxColumns);
  const std::int64_t n_cols = (n_buckets + merge - 1) / merge;
  const double col_capacity =
      bytes_per_ns * to_ns(bucket_) * static_cast<double>(merge);

  os << "link utilization heatmap (hottest links first):\n";
  char head[160];
  std::snprintf(head, sizeof head,
                "  bucket %.0f us x %lld cols (x%lld merge), capacity %.2f "
                "GB/s/link, scale \"%s\" = 0..100%%\n",
                to_us(bucket_), static_cast<long long>(n_cols),
                static_cast<long long>(merge), bytes_per_ns, kRamp + 1);
  os << head;
  std::snprintf(head, sizeof head,
                "  max util %.1f%%  mean util %.1f%%  active links %zu/%d  "
                "bytes x hops %s\n",
                100.0 * max_utilization(bytes_per_ns),
                100.0 * mean_utilization(bytes_per_ns), links_.size(),
                torus_.num_links(), format_bytes(link_bytes_total()).c_str());
  os << head;

  auto rows = sorted_rows();
  const std::size_t shown =
      std::min<std::size_t>(rows.size(), static_cast<std::size_t>(
                                             std::max(1, top_links)));
  // Fixed-width link labels keep the columns aligned.
  std::size_t label_width = 0;
  for (std::size_t i = 0; i < shown; ++i) {
    label_width = std::max(label_width, link_name(rows[i].first).size());
  }
  for (std::size_t i = 0; i < shown; ++i) {
    const auto& [idx, row] = rows[i];
    std::string label = link_name(idx);
    label.resize(label_width, ' ');
    std::vector<double> cols(static_cast<std::size_t>(n_cols), 0.0);
    for (const auto& [b, bytes] : row->buckets) {
      cols[static_cast<std::size_t>(b / merge)] +=
          static_cast<double>(bytes) / col_capacity;
    }
    os << "  " << label << " |";
    for (const double u : cols) {
      int level = 0;
      if (u > 0.0) {
        level = 1 + static_cast<int>(std::min(1.0, u) * (kRampLevels - 1));
        level = std::min(level, kRampLevels);
      }
      os << kRamp[level];
    }
    char tail[96];
    std::snprintf(tail, sizeof tail, "| %8s  wait %.1f us\n",
                  format_bytes(row->total).c_str(), to_us(row->wait_total));
    os << tail;
  }
  if (rows.size() > shown) {
    os << "  (" << rows.size() - shown << " cooler links not shown; CSV has "
       << "all of them)\n";
  }
  return os.str();
}

std::string LinkUsage::to_csv() const {
  std::ostringstream os;
  const Time end = end_time();
  const std::int64_t n_buckets = end / bucket_;
  os << "link_index,name,total_bytes,wait_ns,wait_count";
  for (std::int64_t b = 0; b < n_buckets; ++b) {
    os << ",us" << static_cast<long long>(to_us(bucket_ * b));
  }
  os << '\n';
  for (const auto& [idx, row] : sorted_rows()) {
    os << idx << ',' << link_name(idx) << ',' << row->total << ','
       << to_ns(row->wait_total) << ',' << row->wait_count;
    for (std::int64_t b = 0; b < n_buckets; ++b) {
      const auto it = row->buckets.find(b);
      os << ',' << (it == row->buckets.end() ? 0 : it->second);
    }
    os << '\n';
  }
  return os.str();
}

void LinkUsage::write_csv(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  PGASQ_CHECK(out.good(), << "cannot open link CSV file '" << path << "'");
  out << to_csv();
  PGASQ_CHECK(out.good(), << "failed writing link CSV file '" << path << "'");
}

Json LinkUsage::to_json() const {
  Json j = Json::object();
  j.set("bucket_us", Json::number(to_us(bucket_)));
  j.set("transfers", Json::number(transfers_));
  j.set("injected_bytes", Json::number(injected_bytes_));
  j.set("link_bytes_total", Json::number(link_bytes_total()));
  Json arr = Json::array();
  for (const auto& [idx, row] : sorted_rows()) {
    Json l = Json::object();
    l.set("link", Json::number(static_cast<std::int64_t>(idx)));
    l.set("name", Json::string(link_name(idx)));
    l.set("bytes", Json::number(row->total));
    l.set("wait_ns", Json::number(to_ns(row->wait_total)));
    l.set("wait_count", Json::number(row->wait_count));
    Json buckets = Json::array();
    for (const auto& [b, bytes] : row->buckets) {
      Json pair = Json::array();
      pair.push(Json::number(static_cast<std::int64_t>(b)));
      pair.push(Json::number(bytes));
      buckets.push(std::move(pair));
    }
    l.set("buckets", std::move(buckets));
    arr.push(std::move(l));
  }
  j.set("links", std::move(arr));
  return j;
}

}  // namespace pgasq::obs
