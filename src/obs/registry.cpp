#include "obs/registry.hpp"

#include <cstdio>

#include "util/error.hpp"

namespace pgasq::obs {

Registry::Metric& Registry::find_or_create(const std::string& name,
                                           const Labels& labels, Kind kind) {
  for (auto& m : metrics_) {
    if (m.name == name && m.labels == labels) {
      PGASQ_CHECK(m.kind == kind, << "metric '" << name
                                  << "' re-registered with a different type");
      return m;
    }
  }
  Metric m;
  m.name = name;
  m.labels = labels;
  m.kind = kind;
  metrics_.push_back(std::move(m));
  return metrics_.back();
}

void Registry::set_counter(const std::string& name, std::uint64_t value,
                           Labels labels) {
  find_or_create(name, labels, Kind::kCounter).count = value;
}

void Registry::add_counter(const std::string& name, std::uint64_t delta,
                           Labels labels) {
  find_or_create(name, labels, Kind::kCounter).count += delta;
}

void Registry::set_gauge(const std::string& name, double value, Labels labels) {
  find_or_create(name, labels, Kind::kGauge).value = value;
}

void Registry::set_histogram(const std::string& name, const Log2Histogram& hist,
                             Labels labels) {
  Metric& m = find_or_create(name, labels, Kind::kHistogram);
  m.total = hist.total();
  m.buckets.clear();
  for (std::size_t i = 0; i < hist.bucket_count(); ++i) {
    m.buckets.push_back(hist.bucket(i));
  }
}

void Registry::set_histogram(const std::string& name,
                             const util::Histogram& hist, Labels labels) {
  Metric& m = find_or_create(name, labels, Kind::kHistogram);
  m.total = hist.total();
  m.buckets.clear();
  for (std::size_t i = 0; i < hist.bucket_count(); ++i) {
    m.buckets.push_back(hist.bucket(i));
  }
}

void Registry::merge_from(const Registry& other) {
  for (const Metric& src : other.metrics_) {
    Metric& dst = find_or_create(src.name, src.labels, src.kind);
    dst.count = src.count;
    dst.value = src.value;
    dst.buckets = src.buckets;
    dst.total = src.total;
  }
}

std::string Registry::to_text() const {
  std::string out;
  char buf[64];
  for (const auto& m : metrics_) {
    out += "  ";
    out += m.name;
    if (!m.labels.empty()) {
      out += '{';
      bool first = true;
      for (const auto& [k, v] : m.labels) {
        if (!first) out += ',';
        first = false;
        out += k;
        out += '=';
        out += v;
      }
      out += '}';
    }
    out += " = ";
    switch (m.kind) {
      case Kind::kCounter:
        std::snprintf(buf, sizeof buf, "%llu",
                      static_cast<unsigned long long>(m.count));
        out += buf;
        break;
      case Kind::kGauge:
        std::snprintf(buf, sizeof buf, "%.3f", m.value);
        out += buf;
        break;
      case Kind::kHistogram:
        std::snprintf(buf, sizeof buf, "histogram(total=%llu)",
                      static_cast<unsigned long long>(m.total));
        out += buf;
        break;
    }
    out += '\n';
  }
  return out;
}

std::vector<std::string> Registry::names() const {
  std::vector<std::string> out;
  out.reserve(metrics_.size());
  for (const auto& m : metrics_) out.push_back(m.name);
  return out;
}

Json Registry::to_json() const {
  Json arr = Json::array();
  for (const auto& m : metrics_) {
    Json j = Json::object();
    j.set("name", Json::string(m.name));
    if (!m.labels.empty()) {
      Json labels = Json::object();
      for (const auto& [k, v] : m.labels) labels.set(k, Json::string(v));
      j.set("labels", std::move(labels));
    }
    switch (m.kind) {
      case Kind::kCounter:
        j.set("type", Json::string("counter"));
        j.set("value", Json::number(m.count));
        break;
      case Kind::kGauge:
        j.set("type", Json::string("gauge"));
        j.set("value", Json::number(m.value));
        break;
      case Kind::kHistogram: {
        j.set("type", Json::string("histogram"));
        j.set("total", Json::number(m.total));
        Json buckets = Json::array();
        for (const std::uint64_t b : m.buckets) buckets.push(Json::number(b));
        j.set("buckets", std::move(buckets));
        break;
      }
    }
    arr.push(std::move(j));
  }
  return arr;
}

}  // namespace pgasq::obs
