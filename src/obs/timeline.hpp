// Continuous time-series telemetry: virtual-time-bucketed samplers
// that subsystems feed through nullptr-guarded hooks (obs.timeline).
// Where LinkUsage answers "how hot was each wire", the Timeline
// answers "what did each queue/window/backlog look like as a function
// of virtual time" — the signal needed to see dynamic pathologies
// (metastable queue runaway, AIMD oscillation, brownout backlogs)
// that end-of-run aggregates average away.
//
// Two series kinds:
//   gauge   — sample(id, at, value): per-bucket count/sum/min/max,
//             rendered as the bucket mean (queue depths, window
//             occupancy, lag).
//   counter — count(id, at, delta): per-bucket event sum, i.e. a rate
//             when divided by the bucket width (stalls, sheds,
//             retransmits, fiber switches).
//
// Pure observation: recording never changes timing, so timeline-on
// and timeline-off runs are virtual-time identical, and with the
// feature off every hook is a single pointer compare (byte-identical
// output, like fault::Injector). Exports: a versioned pgasq.timeline
// v1 JSON section, a CSV (obs.timeline_csv), and a text sparkline
// block for the report.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "util/time_types.hpp"

namespace pgasq::obs {

class Timeline {
 public:
  using SeriesId = std::uint32_t;
  /// Sentinel: sampling into it is a no-op. Returned by series() once
  /// the series cap is hit, so callers never need their own guard.
  static constexpr SeriesId kNone = 0xffffffffu;

  enum class Kind { kGauge, kCounter };

  /// Current pgasq.timeline schema version.
  static constexpr int kSchemaVersion = 1;

  Timeline(Time bucket_width, std::size_t max_series);

  /// Finds or creates the series `name`. Registration order is
  /// deterministic (virtual-time order of first touch); exports sort
  /// by name so reports do not depend on it. Past `max_series` this
  /// warns once, sets truncated(), and returns kNone.
  SeriesId series(const std::string& name, Kind kind);

  /// Gauge sample at virtual time `at`. No-op for kNone.
  void sample(SeriesId id, Time at, double value) {
    if (id == kNone) return;
    Series& s = series_[id];
    Bucket& b = s.buckets[at / bucket_];
    if (b.count == 0) {
      b.min = b.max = value;
    } else {
      if (value < b.min) b.min = value;
      if (value > b.max) b.max = value;
    }
    b.count += 1;
    b.sum += value;
    s.samples += 1;
    if (value > s.peak) s.peak = value;
  }

  /// Counter increment at virtual time `at`. No-op for kNone.
  void count(SeriesId id, Time at, std::uint64_t delta = 1) {
    if (id == kNone) return;
    Series& s = series_[id];
    s.buckets[at / bucket_].count += delta;
    s.samples += delta;
  }

  Time bucket_width() const { return bucket_; }
  std::size_t num_series() const { return series_.size(); }
  /// True once a series registration was refused by the cap.
  bool truncated() const { return truncated_; }
  /// End of the last non-empty bucket over all series.
  Time end_time() const;

  bool has(const std::string& name) const;
  /// Counter: total over all buckets; 0 when absent (or a gauge).
  std::uint64_t counter_total(const std::string& name) const;
  /// Gauge: peak value ever sampled; 0 when absent (or a counter).
  double gauge_peak(const std::string& name) const;

  /// Text sparklines for the report: top `top` series by activity,
  /// one row each, intensity normalized to the series' own peak.
  std::string render(int top) const;

  /// CSV: series,kind,samples,peak,us<t0>,us<t1>,... (gauges export
  /// the bucket mean, counters the bucket sum).
  std::string to_csv() const;
  void write_csv(const std::string& path) const;

  /// Versioned pgasq.timeline v1 document:
  /// {"schema":"pgasq.timeline","schema_version":1,"bucket_us":…,
  ///  "truncated":…,"series":[{"name","kind","samples","peak",
  ///  "buckets":[[idx,count,mean,max]…  (gauge)
  ///             [idx,value]…           (counter)]}…]} — sorted by name.
  Json to_json() const;

 private:
  struct Bucket {
    std::uint64_t count = 0;  // gauge: samples; counter: event sum
    double sum = 0.0;         // gauge only
    double min = 0.0;         // gauge only
    double max = 0.0;         // gauge only
  };
  struct Series {
    std::string name;
    Kind kind = Kind::kGauge;
    std::uint64_t samples = 0;  // gauge: samples; counter: total
    double peak = 0.0;          // gauge only
    std::map<std::int64_t, Bucket> buckets;
  };
  /// Series indices sorted by name (deterministic export order).
  std::vector<SeriesId> sorted_ids() const;

  Time bucket_;
  std::size_t max_series_;
  bool truncated_ = false;
  std::vector<Series> series_;
  std::map<std::string, SeriesId> index_;
};

}  // namespace pgasq::obs
