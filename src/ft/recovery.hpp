// Fail-stop recovery runtime: coordinated checkpoint, communicator
// shrink, and rollback for applications built on GlobalArray.
//
// The protocol (classic coordinated checkpoint/restart, shrunk-world
// variant):
//
//  * Checkpoint — at a barrier-consistent point every member saves its
//    own array shards into a double-buffered arena carved out of ONE
//    collective allocation made up front (all world ranks participate
//    before any death), and ships a copy to its buddy (the next member
//    cyclically) over ordinary ARMCI puts, so every shard survives any
//    single node loss. Commit metadata is invalidate-before-write:
//    both steps sit between barriers, so a death mid-checkpoint leaves
//    that buffer uncommitted on every survivor and agreement falls
//    back to the other buffer.
//
//  * Recovery — a declared death unwinds every survivor's blocked
//    operation with PeerDeadError (see ft/liveness.hpp). Each survivor
//    calls Runtime::recover(): acknowledge the epoch, quiesce stale
//    write tracking, rendezvous with the other survivors on the
//    live-aware hardware barrier, rebuild the collectives engine over
//    the survivor clique, and agree (deterministically, from lockstep
//    per-rank metadata — no messages needed) on the newest checkpoint
//    buffer whose every shard is still held by a live rank.
//
//  * Restore — arrays are REBUILT as fresh member-mode collective
//    allocations (stale in-flight traffic from the dead epoch lands in
//    the old, freed-but-kept memory, never in the new arrays); each
//    survivor pushes the shards it holds (its own, plus its dead
//    predecessor's buddy copy) into the new distribution with ga::put.
//
// A rank whose own node is declared dead gets `false` from recover()
// and must simply return from the SPMD body (finalize skips the
// closing barrier for it).
#pragma once

#include <cstdint>
#include <vector>

#include "core/comm.hpp"
#include "ft/liveness.hpp"
#include "ga/global_array.hpp"
#include "util/config.hpp"

namespace pgasq::fault {
class Integrity;
}  // namespace pgasq::fault

namespace pgasq::ft {

/// `ft.*` configuration (see RuntimeConfig::from_config).
struct RuntimeConfig {
  /// Checkpoint every N application iterations (at the top of
  /// iteration i > 0 with i % N == 0); <= 0 disables checkpointing
  /// (recovery then restarts from the initial state).
  int checkpoint_interval = 1;
  /// Detection knobs, forwarded into pami::MachineConfig::ft.
  LivenessConfig liveness{};

  /// Parses ft.checkpoint_interval / ft.suspect_acks /
  /// ft.heartbeat_period_us / ft.heartbeat_timeout_us, rejecting
  /// unknown ft.* keys with a typo suggestion.
  static RuntimeConfig from_config(const Config& cfg);
};

/// Per-rank recovery driver. Construct it (collectively, all world
/// ranks, before any scheduled death) right after the application's
/// arrays; it is inert (enabled() == false) when the machine has no
/// health monitor, so the fault-free path stays bit-identical.
class Runtime {
 public:
  /// `arrays` fixes the checkpointed shapes (the arena is sized for
  /// the worst surviving membership up front); later calls pass the
  /// current array objects, which change across rebuilds.
  Runtime(armci::Comm& comm, RuntimeConfig config,
          const std::vector<ga::GlobalArray*>& arrays);

  bool enabled() const { return monitor_ != nullptr; }
  /// Current members (all world ranks until a shrink).
  const std::vector<int>& members() const { return members_; }

  /// True when iteration `iter` opens with a checkpoint.
  bool should_checkpoint(int iter) const;
  /// Coordinated checkpoint of `arrays` (same shapes as at
  /// construction) labelled with `iter`. Collective over members();
  /// no-op unless should_checkpoint(iter).
  void checkpoint(int iter, const std::vector<ga::GlobalArray*>& arrays);

  /// Call after catching PeerDeadError. Returns false when this rank
  /// itself is the casualty (the caller must return from the SPMD
  /// body); otherwise re-synchronizes the survivors, shrinks the
  /// collectives engine, and computes the rollback point.
  bool recover();
  /// Iteration to resume from after recover(): the agreed checkpoint's
  /// label, or 0 (re-run from the initial state) when no complete
  /// checkpoint survived.
  int restart_iter() const { return restart_iter_; }
  /// Pushes the agreed checkpoint into freshly rebuilt member-mode
  /// `arrays` (collective over members()). No-op when restart_iter()
  /// is 0 — the caller refills initial state instead.
  void restore(const std::vector<ga::GlobalArray*>& arrays);

  /// Test hook: flips one byte of this rank's own-shard copy of
  /// `array` in buffer `buf`, so digest validation deterministically
  /// rejects that buffer at the next recover().
  void poison_for_test(int buf, std::size_t array);

 private:
  std::size_t own_offset(std::size_t array, int buf) const;
  std::size_t in_offset(std::size_t array, int buf) const;
  /// Arena offset of the 8-byte word holding the buddy-shipped digest
  /// of the incoming copy of `array` in buffer `buf`. The word travels
  /// as its own put — small enough to sit entirely inside the
  /// wire-protected prefix, so the digest itself can never be flipped.
  std::size_t digest_offset(std::size_t array, int buf) const;
  bool buffer_valid(int buf) const;
  /// Digest validation of buffer `buf` (integrity + ckpt_digest only):
  /// each survivor recomputes the CRC of every shard it would feed
  /// into restore() and compares against the digest stored at
  /// checkpoint time; survivors then agree via an allreduce over the
  /// shrunk clique. False when any held shard fails.
  bool validate_buffer(int buf);

  armci::Comm& comm_;
  RuntimeConfig config_;
  HealthMonitor* monitor_ = nullptr;
  /// Integrity layer when checkpoint digests are on (integrity built
  /// and integrity.ckpt_digest not disabled), else nullptr — the
  /// digest-off arena layout and checkpoint path are byte-identical to
  /// the pre-integrity runtime.
  fault::Integrity* integrity_ = nullptr;
  /// Own-shard digests, written at checkpoint time; lockstep metadata
  /// like committed_ (each rank only ever validates its own entries).
  std::vector<std::uint32_t> own_digest_[2];
  std::vector<int> members_;
  /// Checkpointed array shapes (rows, cols), fixed at construction.
  std::vector<std::pair<std::int64_t, std::int64_t>> shapes_;
  /// Worst-case shard bytes per array over any surviving membership.
  std::vector<std::size_t> max_shard_;
  /// The double-buffered checkpoint arena (one slab per world rank):
  /// [own b0 | own b1 | incoming b0 | incoming b1], each area holding
  /// one fixed-offset shard per array.
  armci::GlobalMem* arena_ = nullptr;
  /// Commit metadata, ordinary per-rank members: every member runs the
  /// same checkpoint/recovery sequence, so these are lockstep-identical
  /// across survivors and agreement needs no cross-rank reads.
  int committed_[2] = {0, 0};           ///< iteration label; 0 = invalid
  std::vector<int> ckpt_members_[2];    ///< membership when written
  int restart_iter_ = 0;
  int agreed_buf_ = -1;
};

}  // namespace pgasq::ft
