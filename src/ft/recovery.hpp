// Fail-stop recovery runtime: coordinated checkpoint, communicator
// shrink, and rollback for applications built on GlobalArray or any
// other Shardable state (e.g. the kvs shard tables).
//
// The protocol (classic coordinated checkpoint/restart, shrunk-world
// variant):
//
//  * Checkpoint — at a barrier-consistent point every member saves its
//    own shards into a double-buffered arena carved out of ONE
//    collective allocation made up front (all world ranks participate
//    before any death), and ships a copy to its buddy (the next member
//    cyclically) over ordinary ARMCI puts, so every shard survives any
//    single node loss. Commit metadata is invalidate-before-write:
//    both steps sit between barriers, so a death mid-checkpoint leaves
//    that buffer uncommitted on every survivor and agreement falls
//    back to the other buffer.
//
//  * Recovery — a declared death unwinds every survivor's blocked
//    operation with PeerDeadError (see ft/liveness.hpp). Each survivor
//    calls Runtime::recover(): acknowledge the epoch, quiesce stale
//    write tracking, rendezvous with the other survivors on the
//    live-aware hardware barrier, rebuild the collectives engine over
//    the survivor clique, and agree (deterministically, from lockstep
//    per-rank metadata — no messages needed) on the newest checkpoint
//    buffer whose every shard is still held by a live rank.
//
//  * Restore — the application REBUILDS its state as fresh member-mode
//    collective allocations (stale in-flight traffic from the dead
//    epoch lands in the old, freed-but-kept memory, never in the new
//    state); each survivor pushes the shards it holds (its own, plus
//    its dead predecessor's buddy copy) back via restore_shard().
//
// A rank whose own node is declared dead gets `false` from recover()
// and must simply return from the SPMD body (finalize skips the
// closing barrier for it).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/comm.hpp"
#include "ft/liveness.hpp"
#include "ga/global_array.hpp"
#include "util/config.hpp"

namespace pgasq::fault {
class Integrity;
}  // namespace pgasq::fault

namespace pgasq::ft {

/// Checkpointable application state: one shard per member rank, laid
/// out per-membership. The Runtime moves shards as opaque bytes; the
/// implementor owns the mapping between bytes and live state (and must
/// keep shard sizes within max_shard_bytes for every reachable
/// membership size, which fixes the arena layout up front).
class Shardable {
 public:
  virtual ~Shardable() = default;
  /// Largest single-member shard over any membership of size q.
  virtual std::size_t max_shard_bytes(int q) const = 0;
  /// Size of member v's shard under a membership of size q.
  virtual std::size_t shard_bytes(int q, int v) const = 0;
  /// Serializes the calling rank's own current shard into `out`
  /// (exactly shard_bytes(current q, my v) bytes).
  virtual void save_shard(std::byte* out) = 0;
  /// Pushes member `v`'s shard from a checkpoint taken under a
  /// membership of size `q_old` into the current (rebuilt) state.
  /// Called on whichever survivor holds the copy; implementations
  /// write remotely (ga::put / ARMCI) into the new distribution.
  virtual void restore_shard(int q_old, int v, const std::byte* data,
                             std::size_t bytes) = 0;
};

/// Shardable adapter for a dense rows x cols GlobalArray: the shard is
/// the member's contiguous local block under Distribution2D. The array
/// object changes across rebuilds (member-mode reallocation), so the
/// adapter is re-pointed with rebind() rather than reconstructed.
class ArrayShard final : public Shardable {
 public:
  ArrayShard(std::int64_t rows, std::int64_t cols, ga::GlobalArray* array)
      : rows_(rows), cols_(cols), array_(array) {}

  void rebind(ga::GlobalArray* array) { array_ = array; }

  std::size_t max_shard_bytes(int q) const override;
  std::size_t shard_bytes(int q, int v) const override;
  void save_shard(std::byte* out) override;
  void restore_shard(int q_old, int v, const std::byte* data,
                     std::size_t bytes) override;

 private:
  std::int64_t rows_, cols_;
  ga::GlobalArray* array_;
};

/// `ft.*` configuration (see RuntimeConfig::from_config).
struct RuntimeConfig {
  /// Checkpoint every N application iterations (at the top of
  /// iteration i > 0 with i % N == 0); <= 0 disables checkpointing
  /// (recovery then restarts from the initial state).
  int checkpoint_interval = 1;
  /// Detection knobs, forwarded into pami::MachineConfig::ft.
  LivenessConfig liveness{};

  /// Parses ft.checkpoint_interval / ft.suspect_acks /
  /// ft.heartbeat_period_us / ft.heartbeat_timeout_us, rejecting
  /// unknown ft.* keys with a typo suggestion.
  static RuntimeConfig from_config(const Config& cfg);
};

/// Per-rank recovery driver. Construct it (collectively, all world
/// ranks, before any scheduled death) right after the application's
/// state; it is inert (enabled() == false) when the machine has no
/// health monitor, so the fault-free path stays bit-identical.
class Runtime {
 public:
  /// Generic form: `objects` are borrowed and must outlive the
  /// Runtime; their shapes fix the checkpoint arena (sized for the
  /// worst surviving membership up front). Across a rebuild the same
  /// objects are reused — implementations re-point internal storage.
  /// (Deliberately an initializer_list: a vector<Shardable*> overload
  /// would make braced array-pointer lists ambiguous.)
  Runtime(armci::Comm& comm, RuntimeConfig config,
          std::initializer_list<Shardable*> objects);
  /// GlobalArray convenience form: wraps each array in an owned
  /// ArrayShard. Later checkpoint/restore calls pass the current array
  /// objects, which change across rebuilds.
  Runtime(armci::Comm& comm, RuntimeConfig config,
          const std::vector<ga::GlobalArray*>& arrays);

  bool enabled() const { return monitor_ != nullptr; }
  /// Current members (all world ranks until a shrink).
  const std::vector<int>& members() const { return members_; }

  /// True when iteration `iter` opens with a checkpoint.
  bool should_checkpoint(int iter) const;
  /// Coordinated checkpoint of the registered objects labelled with
  /// `iter`. Collective over members(); no-op unless
  /// should_checkpoint(iter).
  void checkpoint(int iter);
  /// Array-form convenience: rebinds the owned adapters to `arrays`
  /// (same shapes as at construction), then checkpoints.
  void checkpoint(int iter, const std::vector<ga::GlobalArray*>& arrays);

  /// Call after catching PeerDeadError. Returns false when this rank
  /// itself is the casualty (the caller must return from the SPMD
  /// body); otherwise re-synchronizes the survivors, shrinks the
  /// collectives engine, and computes the rollback point.
  bool recover();
  /// Iteration to resume from after recover(): the agreed checkpoint's
  /// label, or 0 (re-run from the initial state) when no complete
  /// checkpoint survived.
  int restart_iter() const { return restart_iter_; }
  /// Pushes the agreed checkpoint into the freshly rebuilt objects
  /// (collective over members()). No-op when restart_iter() is 0 — the
  /// caller refills initial state instead.
  void restore();
  /// Array-form convenience: rebinds the owned adapters to the rebuilt
  /// member-mode `arrays`, then restores.
  void restore(const std::vector<ga::GlobalArray*>& arrays);

  /// Buddy-readable copy path (hedged reads): remote pointer to the
  /// buddy-held checkpoint copy of member `home`'s shard of `object`
  /// in the newest committed buffer. The buddy is a DIFFERENT node
  /// than `home`, so a read of the copy travels an independent
  /// (src,dst) pair — it can overtake a retransmission stalled on the
  /// pair to `home`, which pairwise in-order delivery forbids for a
  /// same-destination re-read. The bytes are a consistent snapshot
  /// labelled shard_copy_label() (bounded staleness: one checkpoint
  /// interval). Invalid when the Runtime is inert, no checkpoint has
  /// committed under the current membership, or the buddy IS `home`
  /// (single-member cliques).
  armci::RemotePtr shard_copy(std::size_t object, armci::RankId home) const;
  /// Iteration label of the checkpoint shard_copy() reads (0 = none).
  int shard_copy_label() const;

  /// Test hook: flips one byte of this rank's own-shard copy of
  /// `object` in buffer `buf`, so digest validation deterministically
  /// rejects that buffer at the next recover().
  void poison_for_test(int buf, std::size_t object);

 private:
  /// This rank's member index (0 when not a member — dead ranks only).
  int vrank() const;
  /// Shared ctor tail: membership, arena sizing, collective alloc.
  void init_arena();
  void rebind_arrays(const std::vector<ga::GlobalArray*>& arrays);
  std::size_t own_offset(std::size_t object, int buf) const;
  std::size_t in_offset(std::size_t object, int buf) const;
  /// Arena offset of the 8-byte word holding the buddy-shipped digest
  /// of the incoming copy of `object` in buffer `buf`. The word
  /// travels as its own put — small enough to sit entirely inside the
  /// wire-protected prefix, so the digest itself can never be flipped.
  std::size_t digest_offset(std::size_t object, int buf) const;
  bool buffer_valid(int buf) const;
  /// Digest validation of buffer `buf` (integrity + ckpt_digest only):
  /// each survivor recomputes the CRC of every shard it would feed
  /// into restore() and compares against the digest stored at
  /// checkpoint time; survivors then agree via an allreduce over the
  /// shrunk clique. False when any held shard fails.
  bool validate_buffer(int buf);

  armci::Comm& comm_;
  RuntimeConfig config_;
  HealthMonitor* monitor_ = nullptr;
  /// Integrity layer when checkpoint digests are on (integrity built
  /// and integrity.ckpt_digest not disabled), else nullptr — the
  /// digest-off arena layout and checkpoint path are byte-identical to
  /// the pre-integrity runtime.
  fault::Integrity* integrity_ = nullptr;
  /// Own-shard digests, written at checkpoint time; lockstep metadata
  /// like committed_ (each rank only ever validates its own entries).
  std::vector<std::uint32_t> own_digest_[2];
  std::vector<int> members_;
  /// Checkpointed state, borrowed; arrays-form Runtimes point into
  /// owned_adapters_.
  std::vector<Shardable*> objects_;
  std::vector<std::unique_ptr<ArrayShard>> owned_adapters_;
  /// Worst-case shard bytes per object over any surviving membership.
  std::vector<std::size_t> max_shard_;
  /// The double-buffered checkpoint arena (one slab per world rank):
  /// [own b0 | own b1 | incoming b0 | incoming b1], each area holding
  /// one fixed-offset shard per object.
  armci::GlobalMem* arena_ = nullptr;
  /// Commit metadata, ordinary per-rank members: every member runs the
  /// same checkpoint/recovery sequence, so these are lockstep-identical
  /// across survivors and agreement needs no cross-rank reads.
  int committed_[2] = {0, 0};           ///< iteration label; 0 = invalid
  std::vector<int> ckpt_members_[2];    ///< membership when written
  int restart_iter_ = 0;
  int agreed_buf_ = -1;
};

}  // namespace pgasq::ft
