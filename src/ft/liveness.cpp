#include "ft/liveness.hpp"

#include <algorithm>

#include "obs/timeline.hpp"
#include "util/error.hpp"

namespace pgasq::ft {

HealthMonitor::HealthMonitor(LivenessConfig config, const fault::Injector& injector,
                             const topo::RankMapping& mapping)
    : config_(std::move(config)),
      injector_(injector),
      mapping_(mapping),
      live_ranks_(mapping.num_ranks()) {
  PGASQ_CHECK(config_.suspect_acks >= 1, << "ft.suspect_acks must be >= 1");
  PGASQ_CHECK(config_.heartbeat_period > 0 && config_.heartbeat_timeout > 0,
              << "ft heartbeat knobs must be positive");
  // Size the per-node tables by the highest node a rank lives on —
  // the torus may be larger than the populated prefix.
  int max_node = 0;
  for (int r = 0; r < mapping_.num_ranks(); ++r) {
    max_node = std::max(max_node, mapping_.node_of_rank(r));
  }
  dead_nodes_.assign(static_cast<std::size_t>(max_node) + 1, false);
  missed_acks_.assign(dead_nodes_.size(), 0);
  // Count the deaths the plan schedules against populated nodes; the
  // heartbeat tick lives only until all of them are declared.
  std::size_t scheduled = 0;
  for (const auto& n : injector_.plan().node_fails) {
    if (n.node <= max_node) ++scheduled;
  }
  scheduled_ = scheduled;
}

std::vector<int> HealthMonitor::live_ranks() const {
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(live_ranks_));
  for (int r = 0; r < mapping_.num_ranks(); ++r) {
    if (!rank_declared_dead(r)) out.push_back(r);
  }
  return out;
}

int HealthMonitor::lowest_live_rank() const {
  for (int r = 0; r < mapping_.num_ranks(); ++r) {
    if (!rank_declared_dead(r)) return r;
  }
  PGASQ_CHECK(false, << "ft: every rank is dead");
  return -1;
}

void HealthMonitor::probe(Time now) {
  if (!deaths_pending()) return;
  injector_.trace_mark("heartbeat probe", now);
  Time worst_lag = 0;
  for (const auto& n : injector_.plan().node_fails) {
    if (n.node >= static_cast<int>(dead_nodes_.size())) continue;
    if (dead_nodes_[static_cast<std::size_t>(n.node)]) continue;
    if (n.at <= now) worst_lag = std::max(worst_lag, now - n.at);
    if (n.at + config_.heartbeat_timeout <= now) declare_dead(n.node, now);
  }
  if (timeline_ != nullptr) {
    // Detection lag: how long the oldest truth-dead, still-undeclared
    // node has been silent at this probe.
    timeline_->sample(tl_lag_, now, to_us(worst_lag));
  }
}

void HealthMonitor::set_timeline(obs::Timeline* timeline) {
  timeline_ = timeline;
  if (timeline_ != nullptr) {
    tl_lag_ = timeline_->series("ft.heartbeat_lag_us",
                                obs::Timeline::Kind::kGauge);
  }
}

bool HealthMonitor::report_timeout(int suspect_node, Time now) {
  // Only a genuinely fail-stopped node accumulates suspicion: transient
  // packet drops under a combined plan must keep escalating through the
  // retry budget, not get a live peer declared dead.
  if (suspect_node >= static_cast<int>(missed_acks_.size())) return false;
  if (!injector_.node_dead(suspect_node, now)) return false;
  if (dead_nodes_[static_cast<std::size_t>(suspect_node)]) return true;
  if (++missed_acks_[static_cast<std::size_t>(suspect_node)] < config_.suspect_acks) {
    return false;
  }
  declare_dead(suspect_node, now);
  return true;
}

void HealthMonitor::add_epoch_listener(std::function<void()> fn) {
  listeners_.push_back(std::move(fn));
}

void HealthMonitor::declare_dead(int node, Time now) {
  dead_nodes_[static_cast<std::size_t>(node)] = true;
  ++declared_;
  ++epoch_;
  int lost = 0;
  for (int r = 0; r < mapping_.num_ranks(); ++r) {
    if (mapping_.node_of_rank(r) == node) ++lost;
  }
  live_ranks_ -= lost;
  PGASQ_CHECK(live_ranks_ > 0, << "ft: node " << node
                               << " death leaves no live ranks");
  ++stats_.detections;
  stats_.ranks_lost += static_cast<std::uint64_t>(lost);
  const Time fail_at = injector_.node_fail_time(node);
  if (fail_at != fault::kForever && now > fail_at) {
    stats_.detection_delay += now - fail_at;
  }
  injector_.trace_mark("node death declared", now);
  injector_.trace_mark("epoch bump", now);
  for (const auto& fn : listeners_) fn();
}

}  // namespace pgasq::ft
