#include "ft/recovery.hpp"

#include <algorithm>
#include <cstring>

#include "coll/coll.hpp"
#include "fault/integrity.hpp"
#include "util/crc32c.hpp"
#include "util/error.hpp"

namespace pgasq::ft {

RuntimeConfig RuntimeConfig::from_config(const Config& cfg) {
  cfg.reject_unknown("ft", {"checkpoint_interval", "suspect_acks",
                            "heartbeat_period_us", "heartbeat_timeout_us"});
  RuntimeConfig c;
  c.checkpoint_interval =
      static_cast<int>(cfg.get_int("ft.checkpoint_interval", 1));
  c.liveness.suspect_acks = static_cast<std::uint64_t>(
      cfg.get_int("ft.suspect_acks",
                  static_cast<std::int64_t>(c.liveness.suspect_acks)));
  c.liveness.heartbeat_period =
      from_us(cfg.get_double("ft.heartbeat_period_us", 50.0));
  c.liveness.heartbeat_timeout =
      from_us(cfg.get_double("ft.heartbeat_timeout_us", 200.0));
  PGASQ_CHECK(c.liveness.heartbeat_timeout >= c.liveness.heartbeat_period,
              << "ft.heartbeat_timeout_us must be >= ft.heartbeat_period_us");
  return c;
}

std::size_t ArrayShard::max_shard_bytes(int q) const {
  const ga::Distribution2D dist(q, rows_, cols_);
  std::size_t best = 0;
  for (int gr = 0; gr < dist.grid_rows(); ++gr) {
    const auto [rlo, rhi] = dist.row_range(gr);
    for (int gc = 0; gc < dist.grid_cols(); ++gc) {
      const auto [clo, chi] = dist.col_range(gc);
      const std::size_t bytes = static_cast<std::size_t>(rhi - rlo) *
                                static_cast<std::size_t>(chi - clo) *
                                sizeof(double);
      best = std::max(best, bytes);
    }
  }
  return best;
}

std::size_t ArrayShard::shard_bytes(int q, int v) const {
  const ga::Distribution2D dist(q, rows_, cols_);
  const int gr = v / dist.grid_cols();
  const int gc = v % dist.grid_cols();
  const auto [rlo, rhi] = dist.row_range(gr);
  const auto [clo, chi] = dist.col_range(gc);
  return static_cast<std::size_t>(rhi - rlo) *
         static_cast<std::size_t>(chi - clo) * sizeof(double);
}

void ArrayShard::save_shard(std::byte* out) {
  const auto [rlo, rhi] = array_->local_rows();
  const auto [clo, chi] = array_->local_cols();
  const std::size_t bytes = static_cast<std::size_t>(rhi - rlo) *
                            static_cast<std::size_t>(chi - clo) *
                            sizeof(double);
  std::memcpy(out, array_->local_data(), bytes);
}

void ArrayShard::restore_shard(int q_old, int v, const std::byte* data,
                               std::size_t bytes) {
  const ga::Distribution2D dist(q_old, rows_, cols_);
  const int gr = v / dist.grid_cols();
  const int gc = v % dist.grid_cols();
  const auto [rlo, rhi] = dist.row_range(gr);
  const auto [clo, chi] = dist.col_range(gc);
  PGASQ_CHECK(bytes == static_cast<std::size_t>(rhi - rlo) *
                           static_cast<std::size_t>(chi - clo) *
                           sizeof(double));
  array_->put(rlo, rhi, clo, chi, reinterpret_cast<const double*>(data),
              chi - clo);
}

Runtime::Runtime(armci::Comm& comm, RuntimeConfig config,
                 std::initializer_list<Shardable*> objects)
    : comm_(comm),
      config_(config),
      monitor_(comm.ft_monitor()),
      objects_(objects.begin(), objects.end()) {
  init_arena();
}

Runtime::Runtime(armci::Comm& comm, RuntimeConfig config,
                 const std::vector<ga::GlobalArray*>& arrays)
    : comm_(comm), config_(config), monitor_(comm.ft_monitor()) {
  for (ga::GlobalArray* a : arrays) {
    owned_adapters_.push_back(
        std::make_unique<ArrayShard>(a->rows(), a->cols(), a));
    objects_.push_back(owned_adapters_.back().get());
  }
  init_arena();
}

void Runtime::init_arena() {
  members_.resize(static_cast<std::size_t>(comm_.nprocs()));
  for (int r = 0; r < comm_.nprocs(); ++r) {
    members_[static_cast<std::size_t>(r)] = r;
  }
  if (monitor_ == nullptr) return;  // inert: fault-free path untouched

  // Size each per-object shard slot for the worst membership the fault
  // plan can leave behind: losing a node takes all its ranks, so the
  // smallest possible survivor clique is p - deaths * ranks_per_node.
  const int p = comm_.nprocs();
  const int worst_loss = static_cast<int>(monitor_->scheduled_deaths()) *
                         monitor_->mapping().ranks_per_node();
  const int q_min = std::max(1, p - worst_loss);
  for (const Shardable* obj : objects_) {
    std::size_t best = 0;
    for (int q = q_min; q <= p; ++q) {
      best = std::max(best, obj->max_shard_bytes(q));
    }
    max_shard_.push_back(best);
  }
  std::size_t area = 0;
  for (const std::size_t s : max_shard_) area += s;
  fault::Integrity* ig = comm_.world().machine().integrity();
  if (ig != nullptr && ig->config().ckpt_digest) {
    integrity_ = ig;
    own_digest_[0].assign(max_shard_.size(), 0);
    own_digest_[1].assign(max_shard_.size(), 0);
  }
  // One collective allocation while every world rank is still alive;
  // the double-buffered own/incoming areas are carved out of it (plus,
  // under checkpoint digests, one 8-byte word per incoming shard for
  // the buddy-shipped digest). With no objects to protect (barrier-only
  // workloads) there is no arena.
  if (area != 0) {
    std::size_t total = 4 * area;
    if (integrity_ != nullptr) total += 2 * max_shard_.size() * 8;
    arena_ = &comm_.malloc_collective(total);
  }
}

int Runtime::vrank() const {
  const int me = comm_.rank();
  for (std::size_t v = 0; v < members_.size(); ++v) {
    if (members_[v] == me) return static_cast<int>(v);
  }
  return 0;
}

void Runtime::rebind_arrays(const std::vector<ga::GlobalArray*>& arrays) {
  PGASQ_CHECK(arrays.size() == owned_adapters_.size(),
              << "array-form call on a Runtime built over "
              << owned_adapters_.size() << " arrays");
  for (std::size_t i = 0; i < arrays.size(); ++i) {
    owned_adapters_[i]->rebind(arrays[i]);
  }
}

std::size_t Runtime::own_offset(std::size_t object, int buf) const {
  std::size_t area = 0, pre = 0;
  for (std::size_t i = 0; i < max_shard_.size(); ++i) {
    if (i < object) pre += max_shard_[i];
    area += max_shard_[i];
  }
  return static_cast<std::size_t>(buf) * area + pre;
}

std::size_t Runtime::in_offset(std::size_t object, int buf) const {
  std::size_t area = 0;
  for (const std::size_t s : max_shard_) area += s;
  return 2 * area + own_offset(object, buf);
}

std::size_t Runtime::digest_offset(std::size_t object, int buf) const {
  std::size_t area = 0;
  for (const std::size_t s : max_shard_) area += s;
  return 4 * area +
         (static_cast<std::size_t>(buf) * max_shard_.size() + object) * 8;
}

int Runtime::shard_copy_label() const {
  if (arena_ == nullptr) return 0;
  const int b = committed_[1] > committed_[0] ? 1 : 0;
  if (committed_[b] == 0 || ckpt_members_[b] != members_) return 0;
  return committed_[b];
}

armci::RemotePtr Runtime::shard_copy(std::size_t object,
                                     armci::RankId home) const {
  if (shard_copy_label() == 0 || object >= max_shard_.size()) return {};
  const int b = committed_[1] > committed_[0] ? 1 : 0;
  for (std::size_t v = 0; v < members_.size(); ++v) {
    if (members_[v] != home) continue;
    const armci::RankId buddy = members_[(v + 1) % members_.size()];
    if (buddy == home) return {};  // self-buddy: no second node to race
    return arena_->at(buddy, in_offset(object, b));
  }
  return {};
}

void Runtime::poison_for_test(int buf, std::size_t object) {
  PGASQ_CHECK(arena_ != nullptr && object < max_shard_.size());
  arena_->local(comm_.rank())[own_offset(object, buf)] ^= std::byte{0xff};
}

bool Runtime::should_checkpoint(int iter) const {
  return enabled() && config_.checkpoint_interval > 0 && iter > 0 &&
         iter % config_.checkpoint_interval == 0;
}

void Runtime::checkpoint(int iter, const std::vector<ga::GlobalArray*>& arrays) {
  rebind_arrays(arrays);
  checkpoint(iter);
}

void Runtime::checkpoint(int iter) {
  if (!should_checkpoint(iter)) return;
  const int b = (iter / config_.checkpoint_interval) % 2;

  // Invalidate-before-write: a death between the two barriers leaves
  // this buffer uncommitted on EVERY survivor, so agreement falls back
  // to the other buffer (or to a cold restart).
  committed_[b] = 0;
  comm_.barrier();

  const armci::RankId me = comm_.rank();
  const int q = static_cast<int>(members_.size());
  const int v = vrank();
  const armci::RankId buddy =
      members_[(static_cast<std::size_t>(v) + 1) % members_.size()];
  for (std::size_t i = 0; i < objects_.size(); ++i) {
    const std::size_t bytes = objects_[i]->shard_bytes(q, v);
    if (bytes == 0) continue;
    PGASQ_CHECK(bytes <= max_shard_[i]);
    std::byte* own = arena_->local(me) + own_offset(i, b);
    objects_[i]->save_shard(own);
    if (integrity_ != nullptr) {
      // Self-checking checkpoint: digest the shard once and keep it
      // with each copy — locally for my own shard, shipped as its own
      // (flip-proof) 8-byte word alongside the buddy copy.
      const std::uint32_t d = crc32c(own, bytes);
      own_digest_[b][i] = d;
      ++integrity_->stats().ckpt_digests_computed;
      comm_.compute(integrity_->crc_cost(bytes));
      std::uint64_t word = d;
      if (buddy == me) {
        std::memcpy(arena_->local(me) + digest_offset(i, b), &word, 8);
      } else {
        comm_.put(reinterpret_cast<const std::byte*>(&word),
                  arena_->at(buddy, digest_offset(i, b)), 8);
      }
    }
    if (buddy == me) {
      std::memcpy(arena_->local(me) + in_offset(i, b), own, bytes);
    } else {
      comm_.put(own, arena_->at(buddy, in_offset(i, b)), bytes);
      monitor_->stats().checkpoint_bytes += bytes;
    }
  }
  comm_.fence_all();
  comm_.barrier();

  committed_[b] = iter;
  ckpt_members_[b] = members_;
  if (me == members_.front()) {
    ++monitor_->stats().checkpoints;
    monitor_->injector().trace_mark("checkpoint commit", comm_.now());
  }
}

bool Runtime::buffer_valid(int buf) const {
  if (committed_[buf] == 0) return false;
  const std::vector<int>& old = ckpt_members_[buf];
  for (std::size_t ov = 0; ov < old.size(); ++ov) {
    const int owner = old[ov];
    const int buddy = old[(ov + 1) % old.size()];
    if (monitor_->rank_declared_dead(owner) &&
        monitor_->rank_declared_dead(buddy)) {
      return false;  // this shard died with both of its holders
    }
  }
  return true;
}

bool Runtime::validate_buffer(int buf) {
  // Mirror restore()'s holder/offset choice exactly: validate the
  // shards this survivor would actually push into the rebuilt objects.
  double ok = 1.0;
  const std::vector<int>& old = ckpt_members_[buf];
  const armci::RankId me = comm_.rank();
  for (std::size_t i = 0; i < objects_.size(); ++i) {
    for (std::size_t ov = 0; ov < old.size(); ++ov) {
      const int owner = old[ov];
      const int buddy = old[(ov + 1) % old.size()];
      armci::RankId holder;
      std::size_t offset;
      bool own_copy;
      if (!monitor_->rank_declared_dead(owner)) {
        holder = owner;
        offset = own_offset(i, buf);
        own_copy = true;
      } else {
        holder = buddy;
        offset = in_offset(i, buf);
        own_copy = false;
      }
      if (holder != me) continue;
      const std::size_t bytes = objects_[i]->shard_bytes(
          static_cast<int>(old.size()), static_cast<int>(ov));
      if (bytes == 0) continue;
      std::uint32_t want;
      if (own_copy) {
        want = own_digest_[buf][i];
      } else {
        std::uint64_t word = 0;
        std::memcpy(&word, arena_->local(me) + digest_offset(i, buf), 8);
        want = static_cast<std::uint32_t>(word);
      }
      ++integrity_->stats().ckpt_digests_validated;
      comm_.compute(integrity_->crc_cost(bytes));
      if (crc32c(arena_->local(me) + offset, bytes) != want) {
        ++integrity_->stats().ckpt_digest_mismatches;
        ok = 0.0;
      }
    }
  }
  // Survivors agree before anyone rolls back: the sum equals the
  // member count iff every held shard verified everywhere. The 8-byte
  // payload sits inside the wire-protected prefix, so the agreement
  // itself cannot be corrupted.
  coll::CollEngine::of(comm_).allreduce_sum(&ok, 1);
  return ok == static_cast<double>(members_.size());
}

bool Runtime::recover() {
  if (monitor_ == nullptr) return true;
  const Time t0 = comm_.now();
  if (monitor_->rank_declared_dead(comm_.rank())) {
    comm_.ft_mark_failed();
    return false;
  }

  comm_.ft_accept_epoch();
  comm_.ft_quiesce();
  // The abort can interrupt survivors at different points of the
  // collective-allocation sequence; re-align before the engine rebuild
  // and the objects allocate anything.
  comm_.ft_align_collectives();
  members_ = monitor_->live_ranks();
  coll::CollEngine::rebuild_shrunk(comm_, members_);
  // First survivor rendezvous on the shrunk clique. A further death
  // here throws PeerDeadError again; the caller re-enters recover().
  comm_.barrier();

  // Agreement needs no messages: commit metadata is written in
  // lockstep between barriers, so every survivor holds identical
  // committed_/ckpt_members_ and picks the same buffer. Candidates go
  // newest-first; with checkpoint digests on, a candidate whose
  // surviving shards fail validation is discarded — the older buffer
  // is the fallback, and if every committed buffer fails the run
  // aborts loudly rather than roll back to garbage.
  agreed_buf_ = -1;
  restart_iter_ = 0;
  int order[2] = {0, 1};
  if (committed_[1] > committed_[0]) {
    order[0] = 1;
    order[1] = 0;
  }
  int rejected = 0;
  for (const int b : order) {
    if (!buffer_valid(b)) continue;
    if (integrity_ != nullptr && !validate_buffer(b)) {
      ++rejected;
      continue;
    }
    agreed_buf_ = b;
    restart_iter_ = committed_[b];
    break;
  }
  if (rejected > 0) {
    if (agreed_buf_ < 0) {
      throw IntegrityError(
          "checkpoint restore", -1, -1, 0,
          "integrity: every committed checkpoint buffer failed digest "
          "validation on the survivor clique — no verified state to roll "
          "back to");
    }
    if (comm_.rank() == members_.front()) {
      ++integrity_->stats().ckpt_fallback_restores;
    }
  }

  if (comm_.rank() == members_.front()) {
    FtStats& s = monitor_->stats();
    ++s.rollbacks;
    s.rollback_ranks += members_.size();
    s.recovery_time += comm_.now() - t0;
    monitor_->injector().trace_mark("rollback complete", comm_.now());
  }
  return true;
}

void Runtime::restore(const std::vector<ga::GlobalArray*>& arrays) {
  rebind_arrays(arrays);
  restore();
}

void Runtime::restore() {
  if (monitor_ == nullptr || agreed_buf_ < 0 || restart_iter_ == 0) return;
  const int b = agreed_buf_;
  const std::vector<int>& old = ckpt_members_[b];
  const armci::RankId me = comm_.rank();

  for (std::size_t i = 0; i < objects_.size(); ++i) {
    for (std::size_t ov = 0; ov < old.size(); ++ov) {
      const int owner = old[ov];
      const int buddy = old[(ov + 1) % old.size()];
      // Prefer the owner's pristine copy; fall back to the buddy's.
      armci::RankId holder;
      std::size_t offset;
      if (!monitor_->rank_declared_dead(owner)) {
        holder = owner;
        offset = own_offset(i, b);
      } else {
        PGASQ_CHECK(!monitor_->rank_declared_dead(buddy));
        holder = buddy;
        offset = in_offset(i, b);
      }
      if (holder != me) continue;
      const std::size_t bytes = objects_[i]->shard_bytes(
          static_cast<int>(old.size()), static_cast<int>(ov));
      if (bytes == 0) continue;
      objects_[i]->restore_shard(static_cast<int>(old.size()),
                                 static_cast<int>(ov),
                                 arena_->local(me) + offset, bytes);
    }
  }
  comm_.fence_all();
  comm_.barrier();
}

}  // namespace pgasq::ft
