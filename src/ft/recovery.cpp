#include "ft/recovery.hpp"

#include <algorithm>
#include <cstring>

#include "coll/coll.hpp"
#include "fault/integrity.hpp"
#include "util/crc32c.hpp"
#include "util/error.hpp"

namespace pgasq::ft {

RuntimeConfig RuntimeConfig::from_config(const Config& cfg) {
  cfg.reject_unknown("ft", {"checkpoint_interval", "suspect_acks",
                            "heartbeat_period_us", "heartbeat_timeout_us"});
  RuntimeConfig c;
  c.checkpoint_interval =
      static_cast<int>(cfg.get_int("ft.checkpoint_interval", 1));
  c.liveness.suspect_acks = static_cast<std::uint64_t>(
      cfg.get_int("ft.suspect_acks",
                  static_cast<std::int64_t>(c.liveness.suspect_acks)));
  c.liveness.heartbeat_period =
      from_us(cfg.get_double("ft.heartbeat_period_us", 50.0));
  c.liveness.heartbeat_timeout =
      from_us(cfg.get_double("ft.heartbeat_timeout_us", 200.0));
  PGASQ_CHECK(c.liveness.heartbeat_timeout >= c.liveness.heartbeat_period,
              << "ft.heartbeat_timeout_us must be >= ft.heartbeat_period_us");
  return c;
}

namespace {

/// Largest single-rank shard of a rows x cols array over any process
/// grid with q participants.
std::size_t max_shard_bytes(int q, std::int64_t rows, std::int64_t cols) {
  const ga::Distribution2D dist(q, rows, cols);
  std::size_t best = 0;
  for (int gr = 0; gr < dist.grid_rows(); ++gr) {
    const auto [rlo, rhi] = dist.row_range(gr);
    for (int gc = 0; gc < dist.grid_cols(); ++gc) {
      const auto [clo, chi] = dist.col_range(gc);
      const std::size_t bytes = static_cast<std::size_t>(rhi - rlo) *
                                static_cast<std::size_t>(chi - clo) *
                                sizeof(double);
      best = std::max(best, bytes);
    }
  }
  return best;
}

}  // namespace

Runtime::Runtime(armci::Comm& comm, RuntimeConfig config,
                 const std::vector<ga::GlobalArray*>& arrays)
    : comm_(comm), config_(config), monitor_(comm.ft_monitor()) {
  members_.resize(static_cast<std::size_t>(comm.nprocs()));
  for (int r = 0; r < comm.nprocs(); ++r) members_[static_cast<std::size_t>(r)] = r;
  for (const ga::GlobalArray* a : arrays) shapes_.emplace_back(a->rows(), a->cols());
  if (monitor_ == nullptr) return;  // inert: fault-free path untouched

  // Size each per-array shard slot for the worst membership the fault
  // plan can leave behind: losing a node takes all its ranks, so the
  // smallest possible survivor clique is p - deaths * ranks_per_node.
  const int p = comm.nprocs();
  const int worst_loss = static_cast<int>(monitor_->scheduled_deaths()) *
                         monitor_->mapping().ranks_per_node();
  const int q_min = std::max(1, p - worst_loss);
  for (const auto& [rows, cols] : shapes_) {
    std::size_t best = 0;
    for (int q = q_min; q <= p; ++q) {
      best = std::max(best, max_shard_bytes(q, rows, cols));
    }
    max_shard_.push_back(best);
  }
  std::size_t area = 0;
  for (const std::size_t s : max_shard_) area += s;
  fault::Integrity* ig = comm.world().machine().integrity();
  if (ig != nullptr && ig->config().ckpt_digest) {
    integrity_ = ig;
    own_digest_[0].assign(max_shard_.size(), 0);
    own_digest_[1].assign(max_shard_.size(), 0);
  }
  // One collective allocation while every world rank is still alive;
  // the double-buffered own/incoming areas are carved out of it (plus,
  // under checkpoint digests, one 8-byte word per incoming shard for
  // the buddy-shipped digest). With no arrays to protect (barrier-only
  // workloads) there is no arena.
  if (area != 0) {
    std::size_t total = 4 * area;
    if (integrity_ != nullptr) total += 2 * max_shard_.size() * 8;
    arena_ = &comm.malloc_collective(total);
  }
}

std::size_t Runtime::own_offset(std::size_t array, int buf) const {
  std::size_t area = 0, pre = 0;
  for (std::size_t i = 0; i < max_shard_.size(); ++i) {
    if (i < array) pre += max_shard_[i];
    area += max_shard_[i];
  }
  return static_cast<std::size_t>(buf) * area + pre;
}

std::size_t Runtime::in_offset(std::size_t array, int buf) const {
  std::size_t area = 0;
  for (const std::size_t s : max_shard_) area += s;
  return 2 * area + own_offset(array, buf);
}

std::size_t Runtime::digest_offset(std::size_t array, int buf) const {
  std::size_t area = 0;
  for (const std::size_t s : max_shard_) area += s;
  return 4 * area +
         (static_cast<std::size_t>(buf) * max_shard_.size() + array) * 8;
}

void Runtime::poison_for_test(int buf, std::size_t array) {
  PGASQ_CHECK(arena_ != nullptr && array < max_shard_.size());
  arena_->local(comm_.rank())[own_offset(array, buf)] ^= std::byte{0xff};
}

bool Runtime::should_checkpoint(int iter) const {
  return enabled() && config_.checkpoint_interval > 0 && iter > 0 &&
         iter % config_.checkpoint_interval == 0;
}

void Runtime::checkpoint(int iter, const std::vector<ga::GlobalArray*>& arrays) {
  if (!should_checkpoint(iter)) return;
  PGASQ_CHECK(arrays.size() == shapes_.size());
  const int b = (iter / config_.checkpoint_interval) % 2;

  // Invalidate-before-write: a death between the two barriers leaves
  // this buffer uncommitted on EVERY survivor, so agreement falls back
  // to the other buffer (or to a cold restart).
  committed_[b] = 0;
  comm_.barrier();

  const armci::RankId me = comm_.rank();
  const int v = arrays.empty() ? 0 : arrays[0]->distribution().vrank_of(me);
  const armci::RankId buddy =
      members_[(static_cast<std::size_t>(v) + 1) % members_.size()];
  for (std::size_t i = 0; i < arrays.size(); ++i) {
    ga::GlobalArray& a = *arrays[i];
    const auto [rlo, rhi] = a.local_rows();
    const auto [clo, chi] = a.local_cols();
    const std::size_t bytes = static_cast<std::size_t>(rhi - rlo) *
                              static_cast<std::size_t>(chi - clo) *
                              sizeof(double);
    if (bytes == 0) continue;
    PGASQ_CHECK(bytes <= max_shard_[i]);
    std::memcpy(arena_->local(me) + own_offset(i, b), a.local_data(), bytes);
    if (integrity_ != nullptr) {
      // Self-checking checkpoint: digest the shard once and keep it
      // with each copy — locally for my own shard, shipped as its own
      // (flip-proof) 8-byte word alongside the buddy copy.
      const std::uint32_t d = crc32c(a.local_data(), bytes);
      own_digest_[b][i] = d;
      ++integrity_->stats().ckpt_digests_computed;
      comm_.compute(integrity_->crc_cost(bytes));
      std::uint64_t word = d;
      if (buddy == me) {
        std::memcpy(arena_->local(me) + digest_offset(i, b), &word, 8);
      } else {
        comm_.put(reinterpret_cast<const std::byte*>(&word),
                  arena_->at(buddy, digest_offset(i, b)), 8);
      }
    }
    if (buddy == me) {
      std::memcpy(arena_->local(me) + in_offset(i, b), a.local_data(), bytes);
    } else {
      comm_.put(a.local_data(), arena_->at(buddy, in_offset(i, b)), bytes);
      monitor_->stats().checkpoint_bytes += bytes;
    }
  }
  comm_.fence_all();
  comm_.barrier();

  committed_[b] = iter;
  ckpt_members_[b] = members_;
  if (me == members_.front()) {
    ++monitor_->stats().checkpoints;
    monitor_->injector().trace_mark("checkpoint commit", comm_.now());
  }
}

bool Runtime::buffer_valid(int buf) const {
  if (committed_[buf] == 0) return false;
  const std::vector<int>& old = ckpt_members_[buf];
  for (std::size_t ov = 0; ov < old.size(); ++ov) {
    const int owner = old[ov];
    const int buddy = old[(ov + 1) % old.size()];
    if (monitor_->rank_declared_dead(owner) &&
        monitor_->rank_declared_dead(buddy)) {
      return false;  // this shard died with both of its holders
    }
  }
  return true;
}

bool Runtime::validate_buffer(int buf) {
  // Mirror restore()'s holder/offset choice exactly: validate the
  // shards this survivor would actually push into the rebuilt arrays.
  double ok = 1.0;
  const std::vector<int>& old = ckpt_members_[buf];
  const armci::RankId me = comm_.rank();
  for (std::size_t i = 0; i < shapes_.size(); ++i) {
    const auto [rows, cols] = shapes_[i];
    const ga::Distribution2D dist(static_cast<int>(old.size()), rows, cols);
    for (std::size_t ov = 0; ov < old.size(); ++ov) {
      const int owner = old[ov];
      const int buddy = old[(ov + 1) % old.size()];
      armci::RankId holder;
      std::size_t offset;
      bool own_copy;
      if (!monitor_->rank_declared_dead(owner)) {
        holder = owner;
        offset = own_offset(i, buf);
        own_copy = true;
      } else {
        holder = buddy;
        offset = in_offset(i, buf);
        own_copy = false;
      }
      if (holder != me) continue;
      const int gr = static_cast<int>(ov) / dist.grid_cols();
      const int gc = static_cast<int>(ov) % dist.grid_cols();
      const auto [rlo, rhi] = dist.row_range(gr);
      const auto [clo, chi] = dist.col_range(gc);
      const std::size_t bytes = static_cast<std::size_t>(rhi - rlo) *
                                static_cast<std::size_t>(chi - clo) *
                                sizeof(double);
      if (bytes == 0) continue;
      std::uint32_t want;
      if (own_copy) {
        want = own_digest_[buf][i];
      } else {
        std::uint64_t word = 0;
        std::memcpy(&word, arena_->local(me) + digest_offset(i, buf), 8);
        want = static_cast<std::uint32_t>(word);
      }
      ++integrity_->stats().ckpt_digests_validated;
      comm_.compute(integrity_->crc_cost(bytes));
      if (crc32c(arena_->local(me) + offset, bytes) != want) {
        ++integrity_->stats().ckpt_digest_mismatches;
        ok = 0.0;
      }
    }
  }
  // Survivors agree before anyone rolls back: the sum equals the
  // member count iff every held shard verified everywhere. The 8-byte
  // payload sits inside the wire-protected prefix, so the agreement
  // itself cannot be corrupted.
  coll::CollEngine::of(comm_).allreduce_sum(&ok, 1);
  return ok == static_cast<double>(members_.size());
}

bool Runtime::recover() {
  if (monitor_ == nullptr) return true;
  const Time t0 = comm_.now();
  if (monitor_->rank_declared_dead(comm_.rank())) {
    comm_.ft_mark_failed();
    return false;
  }

  comm_.ft_accept_epoch();
  comm_.ft_quiesce();
  // The abort can interrupt survivors at different points of the
  // collective-allocation sequence; re-align before the engine rebuild
  // and the arrays allocate anything.
  comm_.ft_align_collectives();
  members_ = monitor_->live_ranks();
  coll::CollEngine::rebuild_shrunk(comm_, members_);
  // First survivor rendezvous on the shrunk clique. A further death
  // here throws PeerDeadError again; the caller re-enters recover().
  comm_.barrier();

  // Agreement needs no messages: commit metadata is written in
  // lockstep between barriers, so every survivor holds identical
  // committed_/ckpt_members_ and picks the same buffer. Candidates go
  // newest-first; with checkpoint digests on, a candidate whose
  // surviving shards fail validation is discarded — the older buffer
  // is the fallback, and if every committed buffer fails the run
  // aborts loudly rather than roll back to garbage.
  agreed_buf_ = -1;
  restart_iter_ = 0;
  int order[2] = {0, 1};
  if (committed_[1] > committed_[0]) {
    order[0] = 1;
    order[1] = 0;
  }
  int rejected = 0;
  for (const int b : order) {
    if (!buffer_valid(b)) continue;
    if (integrity_ != nullptr && !validate_buffer(b)) {
      ++rejected;
      continue;
    }
    agreed_buf_ = b;
    restart_iter_ = committed_[b];
    break;
  }
  if (rejected > 0) {
    if (agreed_buf_ < 0) {
      throw IntegrityError(
          "checkpoint restore", -1, -1, 0,
          "integrity: every committed checkpoint buffer failed digest "
          "validation on the survivor clique — no verified state to roll "
          "back to");
    }
    if (comm_.rank() == members_.front()) {
      ++integrity_->stats().ckpt_fallback_restores;
    }
  }

  if (comm_.rank() == members_.front()) {
    FtStats& s = monitor_->stats();
    ++s.rollbacks;
    s.rollback_ranks += members_.size();
    s.recovery_time += comm_.now() - t0;
    monitor_->injector().trace_mark("rollback complete", comm_.now());
  }
  return true;
}

void Runtime::restore(const std::vector<ga::GlobalArray*>& arrays) {
  if (monitor_ == nullptr || agreed_buf_ < 0 || restart_iter_ == 0) return;
  PGASQ_CHECK(arrays.size() == shapes_.size());
  const int b = agreed_buf_;
  const std::vector<int>& old = ckpt_members_[b];
  const armci::RankId me = comm_.rank();

  for (std::size_t i = 0; i < arrays.size(); ++i) {
    const auto [rows, cols] = shapes_[i];
    const ga::Distribution2D dist(static_cast<int>(old.size()), rows, cols);
    for (std::size_t ov = 0; ov < old.size(); ++ov) {
      const int owner = old[ov];
      const int buddy = old[(ov + 1) % old.size()];
      // Prefer the owner's pristine copy; fall back to the buddy's.
      armci::RankId holder;
      std::size_t offset;
      if (!monitor_->rank_declared_dead(owner)) {
        holder = owner;
        offset = own_offset(i, b);
      } else {
        PGASQ_CHECK(!monitor_->rank_declared_dead(buddy));
        holder = buddy;
        offset = in_offset(i, b);
      }
      if (holder != me) continue;
      const int gr = static_cast<int>(ov) / dist.grid_cols();
      const int gc = static_cast<int>(ov) % dist.grid_cols();
      const auto [rlo, rhi] = dist.row_range(gr);
      const auto [clo, chi] = dist.col_range(gc);
      if (rhi == rlo || chi == clo) continue;
      const double* shard =
          reinterpret_cast<const double*>(arena_->local(me) + offset);
      arrays[i]->put(rlo, rhi, clo, chi, shard, chi - clo);
    }
  }
  comm_.fence_all();
  comm_.barrier();
}

}  // namespace pgasq::ft
