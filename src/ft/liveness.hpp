// Fail-stop liveness layer: detection and the epoch-stamped view.
//
// The fault layer (src/fault/) holds the *ground truth* of node death
// (NodeFailSpec: node n dies at virtual time T, all its links go
// dark). Nobody in the simulated software stack is allowed to read
// that truth directly to make progress decisions — ranks act only on
// the *declared* liveness view published here, which lags the truth by
// a detection delay, exactly like a real machine.
//
// Detection has two inputs, both riding existing mechanisms:
//  * missed acks — every wire leg in pami::Context already runs an
//    ack/timeout/retransmit loop; when the timed-out endpoint is a
//    fail-stopped node, the timeout is reported here and the
//    suspect_acks'th consecutive miss declares the node dead;
//  * missed heartbeats — a monitor tick riding the async-progress
//    fibers (core/comm.cpp) probes for nodes silent longer than
//    heartbeat_timeout, covering ranks with no traffic toward the
//    dead node.
//
// A declaration bumps the liveness epoch and notifies listeners (the
// World invalidates barrier state and wakes parked fibers). Every
// blocking progress loop compares the epoch against the last epoch its
// rank acknowledged and unwinds with PeerDeadError on a change; the
// recovery runtime (src/ft/recovery.hpp) catches it and runs the
// checkpoint-rollback / communicator-shrink protocol.
//
// Zero-cost guarantee: with no fault.node_fail specs no monitor is
// constructed and every hook in the progress hot path is one nullptr
// comparison (same contract as fault::Injector).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "topo/torus.hpp"
#include "util/time_types.hpp"

namespace pgasq::obs {
class Timeline;
}  // namespace pgasq::obs

namespace pgasq::ft {

/// Typed escalation for fail-stop faults: the operation's peer (or the
/// initiator's own node) has been declared dead, or the liveness epoch
/// moved while the operation was blocked. Derives from FaultError so
/// existing "a fault killed this op" handling still catches it.
class PeerDeadError : public FaultError {
 public:
  PeerDeadError(std::string operation, int src_node, int dst_node,
                std::uint64_t epoch, const std::string& what)
      : FaultError(std::move(operation), src_node, dst_node, /*retries=*/0, what),
        epoch_(epoch) {}

  /// Liveness epoch at the time of the throw.
  std::uint64_t epoch() const { return epoch_; }

 private:
  std::uint64_t epoch_;
};

/// Recovery accounting, rendered by report.cpp as the recovery table.
struct FtStats {
  std::uint64_t detections = 0;       ///< declared node deaths
  Time detection_delay = 0;           ///< sum of declare_time - fail_time
  std::uint64_t ranks_lost = 0;       ///< ranks on declared-dead nodes
  std::uint64_t quarantined_ops = 0;  ///< ops refused against dead peers
  std::uint64_t checkpoints = 0;      ///< committed coordinated checkpoints
  std::uint64_t checkpoint_bytes = 0; ///< shard bytes shipped to buddies
  std::uint64_t rollbacks = 0;        ///< recovery rounds completed
  std::uint64_t rollback_ranks = 0;   ///< survivor ranks rolled back (sum)
  Time recovery_time = 0;             ///< virtual time inside recovery rounds
};

/// Detection knobs (`ft.*` keys; see ft::RuntimeConfig::from_config).
struct LivenessConfig {
  /// Consecutive missed acks on wire legs toward one node before it is
  /// declared dead (`ft.suspect_acks`).
  std::uint64_t suspect_acks = 3;
  /// Cadence of the heartbeat tick riding the progress fibers
  /// (`ft.heartbeat_period_us`).
  Time heartbeat_period = from_us(50);
  /// A node silent this long is declared dead even with no traffic
  /// toward it (`ft.heartbeat_timeout_us`).
  Time heartbeat_timeout = from_us(200);
};

/// Machine-wide health monitor. Built by pami::Machine only when the
/// fault plan schedules node deaths.
class HealthMonitor {
 public:
  HealthMonitor(LivenessConfig config, const fault::Injector& injector,
                const topo::RankMapping& mapping);
  HealthMonitor(const HealthMonitor&) = delete;
  HealthMonitor& operator=(const HealthMonitor&) = delete;

  const LivenessConfig& config() const { return config_; }

  // --- The epoch-stamped liveness view ----------------------------------
  /// Bumped on every declaration. Ranks compare against their last
  /// acknowledged epoch and abort blocked work on a change.
  std::uint64_t epoch() const { return epoch_; }
  bool node_declared_dead(int node) const {
    return dead_nodes_[static_cast<std::size_t>(node)];
  }
  bool rank_declared_dead(int rank) const {
    return node_declared_dead(mapping_.node_of_rank(rank));
  }
  int live_rank_count() const { return live_ranks_; }
  /// World ranks on live nodes, ascending.
  std::vector<int> live_ranks() const;
  int lowest_live_rank() const;

  // --- Detection inputs -------------------------------------------------
  /// Heartbeat sweep: declares any truth-dead node whose heartbeats
  /// have been missing longer than heartbeat_timeout at `now`.
  void probe(Time now);
  /// A wire-leg ack toward `suspect` timed out at `now`. Returns true
  /// when this miss crossed suspect_acks and declared the node dead.
  bool report_timeout(int suspect_node, Time now);
  /// True when any scheduled death has not been declared yet — the
  /// heartbeat tick keeps rescheduling itself only while this holds.
  bool deaths_pending() const { return declared_ < scheduled_; }
  /// Node deaths the fault plan schedules over the whole run (recovery
  /// sizes checkpoint arenas for the worst surviving membership).
  std::size_t scheduled_deaths() const { return scheduled_; }

  /// Called synchronously on every declaration (after the epoch bump).
  /// The World uses this to reset in-flight barrier state and wake
  /// parked fibers so they observe the new epoch.
  void add_epoch_listener(std::function<void()> fn);

  FtStats& stats() { return stats_; }
  const FtStats& stats() const { return stats_; }

  /// Continuous telemetry (obs.timeline): each probe samples the
  /// worst undeclared-death lag ("ft.heartbeat_lag_us"). Not owned;
  /// nullptr disables.
  void set_timeline(obs::Timeline* timeline);

  const topo::RankMapping& mapping() const { return mapping_; }
  /// The fault layer's ground truth (also carries the shared "faults"
  /// trace track for recovery-protocol markers).
  const fault::Injector& injector() const { return injector_; }

 private:
  void declare_dead(int node, Time now);

  LivenessConfig config_;
  const fault::Injector& injector_;
  const topo::RankMapping& mapping_;
  std::uint64_t epoch_ = 0;
  std::vector<bool> dead_nodes_;
  std::vector<std::uint64_t> missed_acks_;
  int live_ranks_;
  std::size_t scheduled_;
  std::size_t declared_ = 0;
  std::vector<std::function<void()>> listeners_;
  FtStats stats_;
  obs::Timeline* timeline_ = nullptr;
  std::uint32_t tl_lag_ = 0xffffffffu;  // obs::Timeline::kNone
};

}  // namespace pgasq::ft
