#include "sim/engine.hpp"

#include "obs/timeline.hpp"
#include "sim/trace.hpp"

#if PGASQ_ASAN_FIBERS
extern "C" {
void __sanitizer_start_switch_fiber(void** fake_stack_save, const void* bottom,
                                    std::size_t size);
void __sanitizer_finish_switch_fiber(void* fake_stack_save, const void** bottom_old,
                                     std::size_t* size_old);
}
#endif

namespace pgasq::sim {

void Engine::asan_enter_fiber(Fiber& fiber) {
#if PGASQ_ASAN_FIBERS
  __sanitizer_start_switch_fiber(&asan_scheduler_fake_stack_, fiber.stack_.get(),
                                 fiber.stack_bytes_);
#else
  (void)fiber;
#endif
}

void Engine::asan_back_in_scheduler() {
#if PGASQ_ASAN_FIBERS
  __sanitizer_finish_switch_fiber(asan_scheduler_fake_stack_, nullptr, nullptr);
#endif
}

void Engine::asan_leave_fiber(Fiber& fiber) {
#if PGASQ_ASAN_FIBERS
  __sanitizer_start_switch_fiber(&fiber.asan_fake_stack_,
                                 asan_scheduler_stack_bottom_,
                                 asan_scheduler_stack_size_);
#else
  (void)fiber;
#endif
}

void Engine::asan_back_in_fiber(Fiber& fiber) {
#if PGASQ_ASAN_FIBERS
  // Learn (or refresh) the scheduler stack bounds we switched from.
  __sanitizer_finish_switch_fiber(fiber.asan_fake_stack_,
                                  &asan_scheduler_stack_bottom_,
                                  &asan_scheduler_stack_size_);
#else
  (void)fiber;
#endif
}

Engine::Engine() = default;

Engine::~Engine() {
  // Drain the heap; Event objects are heap-allocated.
  while (!queue_.empty()) {
    delete queue_.top();
    queue_.pop();
  }
}

EventId Engine::schedule_at(Time t, std::function<void()> fn) {
  PGASQ_CHECK(t >= now_, << "event scheduled in the past: t=" << t << " now=" << now_);
  const EventId id = next_event_id_++;
  queue_.push(new Event{t, id, std::move(fn)});
  return id;
}

EventId Engine::schedule_after(Time delay, std::function<void()> fn) {
  PGASQ_CHECK(delay >= 0, << "negative delay " << delay);
  return schedule_at(now_ + delay, std::move(fn));
}

bool Engine::cancel(EventId id) {
  if (id == kInvalidEvent || id >= next_event_id_) return false;
  return cancelled_.insert(id).second;
}

Fiber& Engine::spawn(std::string name, std::function<void()> body,
                     std::size_t stack_bytes) {
  fibers_.push_back(std::unique_ptr<Fiber>(
      new Fiber(*this, next_fiber_id_++, std::move(name), std::move(body), stack_bytes)));
  Fiber& fiber = *fibers_.back();
  if (trace_ != nullptr) {
    fiber.trace_track_ = trace_->register_track(
        fiber.name(), track_mute_ && track_mute_(fiber.name()));
  }
  ++live_fibers_;
  fiber.state_ = Fiber::State::kBlocked;  // resume() below flips it to ready
  resume(fiber);
  return fiber;
}

void Engine::run() {
  PGASQ_CHECK(!running_, << "Engine::run is not reentrant");
  PGASQ_CHECK(current_ == nullptr);
  running_ = true;
  while (!queue_.empty()) {
    Event* ev = queue_.top();
    queue_.pop();
    const bool skip = cancelled_.erase(ev->id) != 0;
    if (!skip) {
      PGASQ_CHECK(ev->time >= now_);
      now_ = ev->time;
      ++events_processed_;
      if (timeline_ != nullptr) {
        timeline_->sample(tl_queue_depth_, now_,
                          static_cast<double>(queue_.size()));
      }
      ev->fn();
      if (pending_exception_) {
        delete ev;
        running_ = false;
        std::exception_ptr e = pending_exception_;
        pending_exception_ = nullptr;
        std::rethrow_exception(e);
      }
    }
    delete ev;
  }
  running_ = false;
  if (live_fibers_ != 0) {
    std::string blocked;
    for (const auto& f : fibers_) {
      if (f->state() != Fiber::State::kFinished) {
        if (!blocked.empty()) blocked += ", ";
        blocked += f->name();
        if (blocked.size() > 200) {
          blocked += ", ...";
          break;
        }
      }
    }
    PGASQ_CHECK(false, << "deadlock: " << live_fibers_
                       << " fiber(s) blocked with empty event queue: " << blocked);
  }
}

void Engine::sleep_for(Time delay) {
  PGASQ_CHECK(delay >= 0, << "negative sleep " << delay);
  Fiber* self = current_;
  PGASQ_CHECK(self != nullptr, << "sleep_for outside a fiber");
  // The fiber is still kRunning here; it becomes kBlocked in
  // block_current() below, before the wake event can possibly fire.
  schedule_after(delay, [this, self] {
    self->state_ = Fiber::State::kReady;
    switch_to_fiber(*self);
  });
  block_current(Fiber::State::kBlocked);
}

void Engine::sleep_until(Time t) {
  if (t <= now_) {
    yield();
    return;
  }
  sleep_for(t - now_);
}

void Engine::suspend() {
  PGASQ_CHECK(current_ != nullptr, << "suspend outside a fiber");
  block_current(Fiber::State::kBlocked);
}

void Engine::yield() { sleep_for(0); }

void Engine::resume(Fiber& fiber, Time delay) {
  PGASQ_CHECK(fiber.state() == Fiber::State::kBlocked,
              << "resume of fiber '" << fiber.name() << "' in state "
              << static_cast<int>(fiber.state()));
  fiber.state_ = Fiber::State::kReady;
  schedule_after(delay, [this, f = &fiber] { switch_to_fiber(*f); });
}

void Engine::set_timeline(obs::Timeline* timeline) {
  timeline_ = timeline;
  if (timeline_ != nullptr) {
    tl_queue_depth_ = timeline_->series("sim.event_queue_depth",
                                        obs::Timeline::Kind::kGauge);
    tl_fiber_switches_ = timeline_->series("sim.fiber_switches",
                                           obs::Timeline::Kind::kCounter);
  }
}

void Engine::set_pending_exception(std::exception_ptr e) {
  // First exception wins; later ones would mask the root cause.
  if (!pending_exception_) pending_exception_ = e;
}

void Engine::on_fiber_finished(Fiber& fiber) {
  (void)fiber;
  PGASQ_CHECK(live_fibers_ > 0);
  --live_fibers_;
}

void Engine::switch_to_scheduler(Fiber& from) {
  PGASQ_CHECK(current_ == &from);
  current_ = nullptr;
  asan_leave_fiber(from);
  PGASQ_CHECK(swapcontext(&from.context_, &scheduler_context_) == 0);
}

void Engine::switch_to_fiber(Fiber& fiber) {
  PGASQ_CHECK(current_ == nullptr,
              << "fiber switch while fiber '" << current_->name() << "' is running");
  PGASQ_CHECK(fiber.state() == Fiber::State::kReady,
              << "switch to fiber '" << fiber.name() << "' in state "
              << static_cast<int>(fiber.state()));
  fiber.state_ = Fiber::State::kRunning;
  current_ = &fiber;
  if (timeline_ != nullptr) timeline_->count(tl_fiber_switches_, now_);
  const bool tracing = trace_ != nullptr && fiber.trace_track_ != 0xffffffffu;
  if (tracing) trace_->begin_slice(fiber.trace_track_, now_);
  asan_enter_fiber(fiber);
  PGASQ_CHECK(swapcontext(&scheduler_context_, &fiber.context_) == 0);
  // Back in the scheduler: the fiber blocked or finished.
  asan_back_in_scheduler();
  if (tracing) trace_->end_slice(fiber.trace_track_, now_);
  fiber.check_canary();
}

void Engine::block_current(Fiber::State new_state) {
  Fiber* self = current_;
  self->state_ = new_state;
  current_ = nullptr;
  asan_leave_fiber(*self);
  PGASQ_CHECK(swapcontext(&self->context_, &scheduler_context_) == 0);
  // Resumed: scheduler set us running again.
  asan_back_in_fiber(*self);
  PGASQ_CHECK(current_ == self);
}

}  // namespace pgasq::sim
