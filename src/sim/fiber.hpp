// Cooperative fibers built on POSIX ucontext.
//
// Every simulated hardware thread (a rank's main thread, its
// asynchronous progress thread) is a Fiber. Fibers are scheduled by
// sim::Engine strictly one at a time in virtual-time order, which makes
// the whole simulation deterministic and free of data races by
// construction: "concurrent" BG/Q threads interleave only at simulator
// blocking points, exactly like instruction interleavings resolved by
// a serializing memory system.
#pragma once

#include <ucontext.h>

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

// AddressSanitizer needs explicit fiber-switch annotations around
// swapcontext or it reports false stack-buffer-overflows (see
// google/sanitizers#189); these hooks are compiled in only under ASan.
#if defined(__SANITIZE_ADDRESS__)
#define PGASQ_ASAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define PGASQ_ASAN_FIBERS 1
#endif
#endif
#ifndef PGASQ_ASAN_FIBERS
#define PGASQ_ASAN_FIBERS 0
#endif

namespace pgasq::sim {

class Engine;

class Fiber {
 public:
  enum class State : std::uint8_t {
    kReady,     ///< spawned or resumed, waiting for the scheduler
    kRunning,   ///< currently executing
    kBlocked,   ///< suspended, waiting for resume()
    kFinished,  ///< body returned
  };

  /// Default stack size. Rank programs in this code base are shallow;
  /// the stack is allocated but not touched until used, so virtual
  /// address space is the only per-fiber reservation.
  static constexpr std::size_t kDefaultStackBytes = 256 * 1024;

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;
  ~Fiber();

  const std::string& name() const { return name_; }
  State state() const { return state_; }
  std::uint64_t id() const { return id_; }

 private:
  friend class Engine;
  Fiber(Engine& engine, std::uint64_t id, std::string name,
        std::function<void()> body, std::size_t stack_bytes);

  /// Entry point reached via makecontext; receives `this` split into
  /// two ints (makecontext's argument ABI).
  static void trampoline(unsigned hi, unsigned lo);
  void run_body();
  void check_canary() const;

  Engine& engine_;
  std::uint64_t id_;
  /// Trace track (when the engine records a trace).
  std::uint32_t trace_track_ = 0xffffffffu;
  /// ASan fake-stack handle saved when this fiber switches away.
  void* asan_fake_stack_ = nullptr;
  std::string name_;
  std::function<void()> body_;
  std::size_t stack_bytes_;
  std::unique_ptr<char[]> stack_;
  ucontext_t context_{};
  State state_ = State::kReady;
};

}  // namespace pgasq::sim
