#include "sim/fiber.hpp"

#include <cstring>

#include "sim/engine.hpp"
#include "util/error.hpp"

namespace pgasq::sim {

namespace {
// Written at the low end of each stack; checked on every scheduler
// re-entry to catch silent stack overflow.
constexpr std::uint64_t kStackCanary = 0x9a6b5c4d3e2f1a0bULL;
}  // namespace

Fiber::Fiber(Engine& engine, std::uint64_t id, std::string name,
             std::function<void()> body, std::size_t stack_bytes)
    : engine_(engine),
      id_(id),
      name_(std::move(name)),
      body_(std::move(body)),
      stack_bytes_(stack_bytes) {
  PGASQ_CHECK(stack_bytes_ >= 16 * 1024, << "fiber stack too small: " << stack_bytes_);
  // Default-initialized char array: pages are committed only on touch.
  stack_.reset(new char[stack_bytes_]);
  std::memcpy(stack_.get(), &kStackCanary, sizeof kStackCanary);

  PGASQ_CHECK(getcontext(&context_) == 0);
  context_.uc_stack.ss_sp = stack_.get();
  context_.uc_stack.ss_size = stack_bytes_;
  context_.uc_link = nullptr;  // trampoline never returns; it swaps out

  const auto self = reinterpret_cast<std::uintptr_t>(this);
  makecontext(&context_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 2,
              static_cast<unsigned>(self >> 32),
              static_cast<unsigned>(self & 0xffffffffu));
}

Fiber::~Fiber() = default;

void Fiber::trampoline(unsigned hi, unsigned lo) {
  const auto self = (static_cast<std::uintptr_t>(hi) << 32) |
                    static_cast<std::uintptr_t>(lo);
  reinterpret_cast<Fiber*>(self)->run_body();
}

void Fiber::run_body() {
  engine_.asan_back_in_fiber(*this);  // first entry on this stack
  try {
    body_();
  } catch (...) {
    engine_.set_pending_exception(std::current_exception());
  }
  state_ = State::kFinished;
  engine_.on_fiber_finished(*this);
  // Return control to the scheduler; this context is never resumed.
  engine_.switch_to_scheduler(*this);
  PGASQ_UNREACHABLE("finished fiber resumed");
}

void Fiber::check_canary() const {
  std::uint64_t value;
  std::memcpy(&value, stack_.get(), sizeof value);
  PGASQ_CHECK(value == kStackCanary,
              << "stack overflow detected in fiber '" << name_ << "' (" << stack_bytes_
              << " bytes)");
}

}  // namespace pgasq::sim
