#include "sim/sync.hpp"

#include "util/error.hpp"

namespace pgasq::sim {

void WaitQueue::wait() {
  Fiber* self = engine_.current();
  PGASQ_CHECK(self != nullptr, << "WaitQueue::wait outside a fiber");
  Waiter w{self};
  waiters_.push_back(&w);
  engine_.suspend();
  PGASQ_CHECK(w.notified, << "spurious resume of fiber waiting on queue");
}

bool WaitQueue::wait_until(Time deadline) {
  Fiber* self = engine_.current();
  PGASQ_CHECK(self != nullptr, << "WaitQueue::wait_until outside a fiber");
  Waiter w{self};
  waiters_.push_back(&w);
  // Timeout event resumes the fiber unless a notify got there first.
  const EventId timeout = engine_.schedule_at(
      std::max(deadline, engine_.now()), [this, &w] {
        if (w.notified) return;  // already woken; stale timer
        for (auto it = waiters_.begin(); it != waiters_.end(); ++it) {
          if (*it == &w) {
            waiters_.erase(it);
            break;
          }
        }
        engine_.resume(*w.fiber);
      });
  engine_.suspend();
  if (w.notified) engine_.cancel(timeout);
  return w.notified;
}

void WaitQueue::notify_one() {
  if (waiters_.empty()) return;
  Waiter* w = waiters_.front();
  waiters_.pop_front();
  w->notified = true;
  engine_.resume(*w->fiber);
}

void WaitQueue::notify_all() {
  while (!waiters_.empty()) notify_one();
}

void SimMutex::lock() {
  Fiber* self = engine_.current();
  PGASQ_CHECK(self != nullptr, << "SimMutex::lock outside a fiber");
  PGASQ_CHECK(owner_ != self, << "recursive lock by fiber '" << self->name() << "'");
  while (owner_ != nullptr) {
    ++contended_;
    const Time t0 = engine_.now();
    queue_.wait();
    total_wait_ += engine_.now() - t0;
  }
  owner_ = self;
}

bool SimMutex::try_lock() {
  Fiber* self = engine_.current();
  PGASQ_CHECK(self != nullptr, << "SimMutex::try_lock outside a fiber");
  if (owner_ != nullptr) return false;
  owner_ = self;
  return true;
}

void SimMutex::unlock() {
  PGASQ_CHECK(owner_ == engine_.current(),
              << "unlock by non-owner fiber");
  owner_ = nullptr;
  queue_.notify_one();
}

SimBarrier::SimBarrier(Engine& engine, std::size_t participants)
    : engine_(engine), queue_(engine), participants_(participants) {
  PGASQ_CHECK(participants_ > 0);
}

void SimBarrier::arrive_and_wait() {
  PGASQ_CHECK(engine_.current() != nullptr, << "barrier outside a fiber");
  ++arrived_;
  PGASQ_CHECK(arrived_ <= participants_, << "barrier overflow");
  if (arrived_ == participants_) {
    arrived_ = 0;
    ++generation_;
    queue_.notify_all();
    return;
  }
  const std::uint64_t my_generation = generation_;
  while (generation_ == my_generation) queue_.wait();
}

}  // namespace pgasq::sim
