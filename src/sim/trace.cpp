#include "sim/trace.hpp"

#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace pgasq::sim {

std::uint32_t TraceRecorder::register_track(const std::string& name) {
  tracks_.push_back(name);
  return static_cast<std::uint32_t>(tracks_.size() - 1);
}

void TraceRecorder::begin_slice(std::uint32_t track, Time at) {
  if (events_.size() >= max_events_) {
    truncated_ = true;
    return;
  }
  events_.push_back(Event{'B', track, at, {}});
}

void TraceRecorder::end_slice(std::uint32_t track, Time at) {
  if (events_.size() >= max_events_) {
    truncated_ = true;
    return;
  }
  events_.push_back(Event{'E', track, at, {}});
}

void TraceRecorder::instant(std::uint32_t track, const std::string& name, Time at) {
  if (events_.size() >= max_events_) {
    truncated_ = true;
    return;
  }
  events_.push_back(Event{'i', track, at, name});
}

namespace {
void append_escaped(std::ostringstream& os, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
}
}  // namespace

std::string TraceRecorder::to_json() const {
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  // Thread-name metadata so tracks show fiber names.
  for (std::size_t t = 0; t < tracks_.size(); ++t) {
    if (!first) os << ',';
    first = false;
    os << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << t
       << ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
    append_escaped(os, tracks_[t]);
    os << "\"}}";
  }
  for (const auto& e : events_) {
    if (!first) os << ',';
    first = false;
    // ts is in microseconds of virtual time.
    os << "{\"ph\":\"" << e.phase << "\",\"pid\":1,\"tid\":" << e.track
       << ",\"ts\":" << to_us(e.at);
    if (e.phase == 'i') {
      os << ",\"s\":\"t\",\"name\":\"";
      append_escaped(os, e.name);
      os << "\"";
    } else {
      os << ",\"name\":\"run\"";
    }
    os << "}";
  }
  os << "]}";
  return os.str();
}

void TraceRecorder::write_json(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  PGASQ_CHECK(out.good(), << "cannot open trace file '" << path << "'");
  out << to_json();
  PGASQ_CHECK(out.good(), << "failed writing trace file '" << path << "'");
}

}  // namespace pgasq::sim
