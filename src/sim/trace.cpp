#include "sim/trace.hpp"

#include <fstream>
#include <sstream>
#include <unordered_set>

#include "util/error.hpp"
#include "util/log.hpp"

namespace pgasq::sim {

std::uint32_t TraceRecorder::register_track(const std::string& name,
                                            bool muted) {
  tracks_.push_back(name);
  muted_.push_back(muted);
  if (muted) sampling_ = true;
  return static_cast<std::uint32_t>(tracks_.size() - 1);
}

bool TraceRecorder::room() {
  if (events_.size() < max_events_) return true;
  if (!truncated_) {
    truncated_ = true;
    PGASQ_LOG(kWarn) << "trace truncated at " << max_events_
                     << " events; later events are dropped "
                        "(raise trace.max_events)";
  }
  return false;
}

void TraceRecorder::begin_slice(std::uint32_t track, Time at) {
  if (muted_[track] || aggregate_ || !room()) return;
  events_.push_back(Event{'B', track, at, 0, 0, {}, {}});
}

void TraceRecorder::end_slice(std::uint32_t track, Time at) {
  if (muted_[track] || aggregate_ || !room()) return;
  events_.push_back(Event{'E', track, at, 0, 0, {}, {}});
}

void TraceRecorder::instant(std::uint32_t track, const std::string& name,
                            Time at, TraceArgs args) {
  if (muted_[track]) return;
  if (aggregate_) {
    ++instant_counts_[SeriesKey{track, name}];
    return;
  }
  if (!room()) return;
  events_.push_back(Event{'i', track, at, 0, 0, name, std::move(args)});
}

void TraceRecorder::complete(std::uint32_t track, const std::string& name,
                             Time at, Time dur, TraceArgs args) {
  if (muted_[track]) return;
  if (aggregate_) {
    agg_[SeriesKey{track, name}].add(static_cast<std::uint64_t>(dur));
    return;
  }
  if (!room()) return;
  events_.push_back(Event{'X', track, at, dur, 0, name, std::move(args)});
}

void TraceRecorder::flow_point(char phase, std::uint32_t track,
                               const std::string& name, std::uint64_t id,
                               Time at, TraceArgs args) {
  PGASQ_CHECK(phase == 's' || phase == 't' || phase == 'f',
              << "bad flow phase '" << phase << "'");
  PGASQ_CHECK(id != 0, << "flow id 0 is reserved for 'no flow'");
  if (muted_[track]) return;
  if (aggregate_) {
    // Flows collapse to their end-to-end latency, credited to the 'f'
    // point's (track, name) series — e.g. "ack recv" lands on the
    // origin's net track, "coll hop recv" on the receiver's.
    if (phase == 's') {
      open_flows_[id] = at;
    } else if (phase == 'f') {
      auto it = open_flows_.find(id);
      if (it != open_flows_.end()) {
        agg_[SeriesKey{track, name}].add(
            static_cast<std::uint64_t>(at - it->second));
        open_flows_.erase(it);
      }
    }
    return;
  }
  // Anchor slice first so the flow event binds to it.
  complete(track, name, at, 0, std::move(args));
  if (!room()) return;
  events_.push_back(Event{phase, track, at, 0, id, name, {}});
}

namespace {
void append_escaped(std::ostringstream& os, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
}

void append_args(std::ostringstream& os, const TraceArgs& args) {
  os << ",\"args\":{";
  bool first = true;
  for (const auto& [k, v] : args) {
    if (!first) os << ',';
    first = false;
    os << '"';
    append_escaped(os, k);
    os << "\":\"";
    append_escaped(os, v);
    os << '"';
  }
  os << '}';
}
}  // namespace

std::vector<TraceRecorder::AggregateRow> TraceRecorder::aggregate_rows() const {
  std::vector<AggregateRow> rows;
  rows.reserve(agg_.size() + instant_counts_.size());
  for (const auto& [key, hist] : agg_) {
    rows.push_back({tracks_[key.first], key.second, &hist, hist.total()});
  }
  for (const auto& [key, count] : instant_counts_) {
    rows.push_back({tracks_[key.first], key.second, nullptr, count});
  }
  return rows;
}

std::string TraceRecorder::to_json() const {
  if (aggregate_) {
    // Aggregate mode: the Chrome-trace envelope survives (so existing
    // loaders see a valid, empty trace) and the payload moves into
    // "aggregates" (latency quantiles per series, microseconds) and
    // "instants" (marker counts per series).
    std::ostringstream os;
    os << "{\"traceEvents\":[],\"aggregates\":[";
    bool first = true;
    for (const auto& [key, hist] : agg_) {
      if (!first) os << ',';
      first = false;
      os << "{\"track\":\"";
      append_escaped(os, tracks_[key.first]);
      os << "\",\"name\":\"";
      append_escaped(os, key.second);
      os << "\",\"count\":" << hist.total()
         << ",\"min_us\":" << to_us(static_cast<Time>(hist.min()))
         << ",\"p50_us\":" << to_us(static_cast<Time>(hist.quantile(0.5)))
         << ",\"p99_us\":" << to_us(static_cast<Time>(hist.quantile(0.99)))
         << ",\"p999_us\":" << to_us(static_cast<Time>(hist.quantile(0.999)))
         << ",\"max_us\":" << to_us(static_cast<Time>(hist.max())) << '}';
    }
    os << "],\"instants\":[";
    first = true;
    for (const auto& [key, count] : instant_counts_) {
      if (!first) os << ',';
      first = false;
      os << "{\"track\":\"";
      append_escaped(os, tracks_[key.first]);
      os << "\",\"name\":\"";
      append_escaped(os, key.second);
      os << "\",\"count\":" << count << '}';
    }
    os << "]}";
    return os.str();
  }
  // Under rank sampling a flow can start on a muted track: its 't'/'f'
  // points would render as arrows from nowhere (and trip the trace
  // validator). Prune continuations whose start was never recorded.
  std::unordered_set<std::uint64_t> started;
  if (sampling_) {
    for (const auto& e : events_)
      if (e.phase == 's') started.insert(e.id);
  }
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  // Thread-name metadata so tracks show fiber names.
  for (std::size_t t = 0; t < tracks_.size(); ++t) {
    if (!first) os << ',';
    first = false;
    os << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << t
       << ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
    append_escaped(os, tracks_[t]);
    os << "\"}}";
  }
  for (const auto& e : events_) {
    if (sampling_ && (e.phase == 't' || e.phase == 'f') &&
        started.find(e.id) == started.end()) {
      continue;
    }
    if (!first) os << ',';
    first = false;
    // ts is in microseconds of virtual time.
    os << "{\"ph\":\"" << e.phase << "\",\"pid\":1,\"tid\":" << e.track
       << ",\"ts\":" << to_us(e.at);
    switch (e.phase) {
      case 'B':
      case 'E':
        os << ",\"name\":\"run\"";
        break;
      case 'i':
        os << ",\"s\":\"t\",\"name\":\"";
        append_escaped(os, e.name);
        os << '"';
        if (!e.args.empty()) append_args(os, e.args);
        break;
      case 'X':
        os << ",\"dur\":" << to_us(e.dur) << ",\"name\":\"";
        append_escaped(os, e.name);
        os << '"';
        if (!e.args.empty()) append_args(os, e.args);
        break;
      case 's':
      case 't':
      case 'f':
        os << ",\"cat\":\"flow\",\"id\":" << e.id << ",\"name\":\"";
        append_escaped(os, e.name);
        os << '"';
        if (e.phase == 'f') os << ",\"bp\":\"e\"";
        break;
      default:
        PGASQ_UNREACHABLE("unknown trace phase");
    }
    os << '}';
  }
  os << "]}";
  return os.str();
}

void TraceRecorder::write_json(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  PGASQ_CHECK(out.good(), << "cannot open trace file '" << path << "'");
  out << to_json();
  PGASQ_CHECK(out.good(), << "failed writing trace file '" << path << "'");
}

}  // namespace pgasq::sim
