// Virtual-time execution tracing in Chrome trace-event format.
//
// When enabled (pami::MachineConfig::trace_json_path), the engine
// records one duration span per fiber execution slice — who ran when
// in virtual time — plus user instant markers, short complete events,
// and *flow events* ('s'/'t'/'f' phases sharing an id) that Perfetto
// renders as arrows between tracks: message injection → delivery →
// ack, collective hops, async-progress handoffs. Load the resulting
// JSON in chrome://tracing or Perfetto; see docs/observability.md for
// the schema.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/histogram.hpp"
#include "util/time_types.hpp"

namespace pgasq::sim {

/// Argument map attached to an event, rendered under "args" in the
/// trace. Values are emitted as JSON strings.
using TraceArgs = std::vector<std::pair<std::string, std::string>>;

class TraceRecorder {
 public:
  static constexpr std::size_t kDefaultMaxEvents = 1 << 20;

  /// Caps memory: recording stops after `max_events`; the first
  /// dropped event logs a WARN and truncated() turns true (surfaced
  /// as a report row). Configurable via trace.max_events.
  explicit TraceRecorder(std::size_t max_events = kDefaultMaxEvents)
      : max_events_(max_events) {}

  /// A named track (one per fiber); returns a dense track id. A muted
  /// track (trace.sample_ranks excludes its rank) still gets an id and
  /// thread-name metadata, but every event recorded on it is dropped —
  /// callers keep their plumbing, the file stays small.
  std::uint32_t register_track(const std::string& name, bool muted = false);

  /// True once any track was registered muted (rank sampling active);
  /// to_json() then prunes flow continuations whose start was muted.
  bool sampling() const { return sampling_; }
  bool track_muted(std::uint32_t track) const { return muted_[track]; }

  /// Aggregate mode (trace.aggregate): instead of storing one event
  /// per call — O(events) memory, unusable at thousands of ranks —
  /// fold everything into per-(track, name) histograms: complete
  /// events aggregate their durations, each flow aggregates its
  /// start-to-finish latency at the 'f' point, instants count. The
  /// JSON keeps the {"traceEvents": []} envelope (empty) and adds an
  /// "aggregates" array of per-series latency quantiles.
  void set_aggregate(bool on) { aggregate_ = on; }
  bool aggregate() const { return aggregate_; }
  /// Number of aggregated (track, name) series (aggregate mode only).
  std::size_t aggregate_series() const {
    return agg_.size() + instant_counts_.size();
  }

  /// One aggregate-mode series, resolved to its track name for report
  /// rendering. `latency` is null for instant series (count only).
  struct AggregateRow {
    std::string track;
    std::string name;
    const util::Histogram* latency = nullptr;
    std::uint64_t count = 0;
  };
  /// Aggregate-mode series in deterministic (track id, name) order:
  /// latency rows first, then instant rows. Empty outside aggregate
  /// mode. Pointers stay valid while the recorder lives.
  std::vector<AggregateRow> aggregate_rows() const;

  void begin_slice(std::uint32_t track, Time at);
  void end_slice(std::uint32_t track, Time at);
  /// Instant marker on a track ("barrier release", "steal", ...).
  void instant(std::uint32_t track, const std::string& name, Time at,
               TraceArgs args = {});
  /// Complete event ('X'): a self-contained slice of length `dur`.
  void complete(std::uint32_t track, const std::string& name, Time at,
                Time dur, TraceArgs args = {});

  /// Fresh id for a flow (an arrow chain). Never returns 0, so 0 can
  /// mean "no flow attached" in caller-side plumbing.
  std::uint64_t next_flow_id() { return ++last_flow_id_; }

  /// One point of a flow: phase 's' (start), 't' (step), or 'f'
  /// (finish). Each point also records a zero-length complete event at
  /// the same spot so Perfetto has a slice to anchor the arrow to even
  /// on tracks with no fiber slices. 'f' points bind to the enclosing
  /// slice ("bp":"e") per the trace-event spec.
  void flow_point(char phase, std::uint32_t track, const std::string& name,
                  std::uint64_t id, Time at, TraceArgs args = {});

  std::size_t event_count() const { return events_.size(); }
  std::size_t max_events() const { return max_events_; }
  bool truncated() const { return truncated_; }

  /// Serializes to Chrome trace-event JSON ({"traceEvents": [...]}).
  std::string to_json() const;
  /// Writes to_json() to a file; throws on I/O failure.
  void write_json(const std::string& path) const;

 private:
  struct Event {
    char phase;  // 'B', 'E', 'i', 'X', 's', 't', 'f'
    std::uint32_t track;
    Time at;
    Time dur;           // 'X' only
    std::uint64_t id;   // flow phases only (non-zero)
    std::string name;   // instants, completes, flows
    TraceArgs args;
  };
  /// False (and warns once) when the event cap is reached.
  bool room();

  /// Series key: (track id, event name). std::map keeps rendering
  /// order deterministic without a sort at serialization time.
  using SeriesKey = std::pair<std::uint32_t, std::string>;

  std::size_t max_events_;
  bool truncated_ = false;
  bool sampling_ = false;
  bool aggregate_ = false;
  std::uint64_t last_flow_id_ = 0;
  std::vector<std::string> tracks_;
  std::vector<bool> muted_;
  std::vector<Event> events_;
  /// Aggregate mode: latency histograms (ns) per series and pending
  /// flow starts ('s' seen, 'f' not yet).
  std::map<SeriesKey, util::Histogram> agg_;
  std::map<SeriesKey, std::uint64_t> instant_counts_;
  std::unordered_map<std::uint64_t, Time> open_flows_;
};

}  // namespace pgasq::sim
