// Virtual-time execution tracing in Chrome trace-event format.
//
// When enabled (pami::MachineConfig::trace_json_path), the engine
// records one duration span per fiber execution slice — who ran when
// in virtual time — plus user instant markers. Load the resulting
// JSON in chrome://tracing or Perfetto to see rank/async-thread
// interleavings, counter convoys, and barrier waves.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/time_types.hpp"

namespace pgasq::sim {

class TraceRecorder {
 public:
  /// Caps memory: recording stops (silently) after this many events.
  explicit TraceRecorder(std::size_t max_events = 1 << 20)
      : max_events_(max_events) {}

  /// A named track (one per fiber); returns a dense track id.
  std::uint32_t register_track(const std::string& name);

  void begin_slice(std::uint32_t track, Time at);
  void end_slice(std::uint32_t track, Time at);
  /// Instant marker on a track ("barrier release", "steal", ...).
  void instant(std::uint32_t track, const std::string& name, Time at);

  std::size_t event_count() const { return events_.size(); }
  bool truncated() const { return truncated_; }

  /// Serializes to Chrome trace-event JSON ({"traceEvents": [...]}).
  std::string to_json() const;
  /// Writes to_json() to a file; throws on I/O failure.
  void write_json(const std::string& path) const;

 private:
  struct Event {
    char phase;  // 'B', 'E', 'i'
    std::uint32_t track;
    Time at;
    std::string name;  // instants only
  };
  std::size_t max_events_;
  bool truncated_ = false;
  std::vector<std::string> tracks_;
  std::vector<Event> events_;
};

}  // namespace pgasq::sim
