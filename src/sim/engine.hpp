// Discrete-event simulation engine.
//
// A single Engine owns virtual time, a priority queue of events, and
// every fiber. Events fire in (time, insertion-sequence) order, so runs
// are bit-reproducible. Fibers interact with the engine through the
// blocking primitives sleep_for / suspend / resume; everything higher
// up (network delivery, PAMI progress, ARMCI protocols) is expressed
// as events and fiber wakeups.
#pragma once

#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <unordered_set>
#include <vector>

#include "sim/fiber.hpp"
#include "util/error.hpp"
#include "util/time_types.hpp"

namespace pgasq::obs {
class Timeline;
}  // namespace pgasq::obs

namespace pgasq::sim {

class TraceRecorder;

/// Identifier for a scheduled event; usable with cancel().
using EventId = std::uint64_t;
constexpr EventId kInvalidEvent = 0;

class Engine {
 public:
  Engine();
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current virtual time (picoseconds).
  Time now() const { return now_; }

  /// Schedules `fn` at absolute virtual time `t` (must be >= now()).
  EventId schedule_at(Time t, std::function<void()> fn);
  /// Schedules `fn` after a relative delay (must be >= 0).
  EventId schedule_after(Time delay, std::function<void()> fn);
  /// Cancels a pending event. Returns false if it already fired or was
  /// already cancelled.
  bool cancel(EventId id);

  /// Creates a fiber and marks it runnable at the current time.
  Fiber& spawn(std::string name, std::function<void()> body,
               std::size_t stack_bytes = Fiber::kDefaultStackBytes);

  /// Runs until the event queue drains. Throws if a fiber threw, or if
  /// fibers remain blocked with no pending events (deadlock).
  void run();

  /// --- Calls valid only from inside a fiber ---

  /// Blocks the current fiber for `delay` of virtual time.
  void sleep_for(Time delay);
  /// Blocks the current fiber until absolute time `t` (no-op if past).
  void sleep_until(Time t);
  /// Blocks the current fiber indefinitely; another party must resume().
  void suspend();
  /// Yields to let any same-time events run, then continues.
  void yield();

  /// Marks a blocked fiber runnable after `delay`. It is an error to
  /// resume a fiber that is not blocked.
  void resume(Fiber& fiber, Time delay = 0);

  /// The fiber currently executing, or nullptr when inside a plain
  /// event callback / outside run().
  Fiber* current() const { return current_; }

  /// Number of fibers that have not finished.
  std::size_t live_fibers() const { return live_fibers_; }
  /// Total events processed (diagnostics).
  std::uint64_t events_processed() const { return events_processed_; }

  /// Enables execution tracing (fiber slices). Must be set before the
  /// fibers whose activity should be recorded are spawned; pass
  /// nullptr to disable. The recorder is not owned.
  void set_trace(TraceRecorder* trace) { trace_ = trace; }
  TraceRecorder* trace() const { return trace_; }

  /// Enables continuous telemetry: samples the event-queue depth per
  /// processed event ("sim.event_queue_depth") and counts fiber
  /// switches ("sim.fiber_switches"). Pure observation — never changes
  /// timing. Pass nullptr to disable; the timeline is not owned.
  void set_timeline(obs::Timeline* timeline);
  obs::Timeline* timeline() const { return timeline_; }

  /// Fibers spawned after this whose name matches `pred` get a muted
  /// trace track (their slices are dropped at record time). Used by
  /// trace.sample_ranks to silence unsampled ranks' fibers.
  void set_track_mute(std::function<bool(const std::string&)> pred) {
    track_mute_ = std::move(pred);
  }

  // Internal — used by Fiber.
  void set_pending_exception(std::exception_ptr e);
  void on_fiber_finished(Fiber& fiber);
  void switch_to_scheduler(Fiber& from);
  /// ASan fiber annotation, called at fiber entry (no-op without ASan).
  void asan_back_in_fiber(Fiber& fiber);

 private:
  struct Event {
    Time time;
    EventId id;
    std::function<void()> fn;
  };
  struct EventOrder {
    bool operator()(const Event* a, const Event* b) const {
      if (a->time != b->time) return a->time > b->time;
      return a->id > b->id;  // FIFO among same-time events
    }
  };

  void switch_to_fiber(Fiber& fiber);
  void block_current(Fiber::State new_state);

  // ASan fiber annotations (no-ops unless built with ASan).
  void asan_enter_fiber(Fiber& fiber);      // scheduler side, before swap in
  void asan_back_in_scheduler();            // scheduler side, after swap out
  void asan_leave_fiber(Fiber& fiber);      // fiber side, before swap out

  Time now_ = 0;
  EventId next_event_id_ = 1;
  std::priority_queue<Event*, std::vector<Event*>, EventOrder> queue_;
  // Cancelled events stay in the heap and are skipped on pop; the flag
  // lives in this set keyed by id.
  std::unordered_set<EventId> cancelled_;
  std::vector<std::unique_ptr<Fiber>> fibers_;
  std::size_t live_fibers_ = 0;
  Fiber* current_ = nullptr;
  ucontext_t scheduler_context_{};
  bool running_ = false;
  std::exception_ptr pending_exception_;
  std::uint64_t events_processed_ = 0;
  std::uint64_t next_fiber_id_ = 1;
  TraceRecorder* trace_ = nullptr;
  obs::Timeline* timeline_ = nullptr;
  std::uint32_t tl_queue_depth_ = 0xffffffffu;   // obs::Timeline::kNone
  std::uint32_t tl_fiber_switches_ = 0xffffffffu;
  std::function<bool(const std::string&)> track_mute_;
  // ASan bookkeeping: the scheduler's fake stack while inside a fiber,
  // and the scheduler (main thread) stack bounds learned at fiber entry.
  void* asan_scheduler_fake_stack_ = nullptr;
  const void* asan_scheduler_stack_bottom_ = nullptr;
  std::size_t asan_scheduler_stack_size_ = 0;
};

}  // namespace pgasq::sim
