// Blocking synchronization primitives for fibers.
//
// These mirror the shapes of condition variables, mutexes and barriers
// but operate on virtual time. Because fibers are cooperative there is
// no lost-wakeup race: a fiber that checks a predicate and then calls
// wait() cannot be preempted in between. Callers still follow the
// standard `while (!pred) q.wait();` pattern because notify_all wakes
// everyone regardless of predicate.
#pragma once

#include <cstdint>
#include <deque>

#include "sim/engine.hpp"
#include "util/time_types.hpp"

namespace pgasq::sim {

/// FIFO wait queue (condition-variable analogue).
class WaitQueue {
 public:
  explicit WaitQueue(Engine& engine) : engine_(engine) {}

  /// Blocks the calling fiber until notified.
  void wait();
  /// Blocks until notified or until absolute time `deadline`;
  /// returns true if notified, false on timeout.
  bool wait_until(Time deadline);
  /// Wakes the longest-waiting fiber (no-op when empty).
  void notify_one();
  /// Wakes all waiting fibers.
  void notify_all();

  std::size_t waiting() const { return waiters_.size(); }

 private:
  struct Waiter {
    Fiber* fiber;
    bool notified = false;
  };
  Engine& engine_;
  std::deque<Waiter*> waiters_;
};

/// Fiber mutex with contention statistics. Used to model the PAMI
/// per-context lock that the paper identifies as the bottleneck when
/// the main thread and the asynchronous progress thread share one
/// communication context (S III-D).
class SimMutex {
 public:
  explicit SimMutex(Engine& engine) : engine_(engine), queue_(engine) {}

  void lock();
  bool try_lock();
  void unlock();
  bool locked() const { return owner_ != nullptr; }
  /// True when the calling fiber holds the mutex.
  bool held_by_current() const { return owner_ != nullptr && owner_ == engine_.current(); }

  /// Number of lock() calls that had to block.
  std::uint64_t contended_acquires() const { return contended_; }
  /// Total virtual time fibers spent blocked on this mutex.
  Time total_wait_time() const { return total_wait_; }

 private:
  Engine& engine_;
  WaitQueue queue_;
  Fiber* owner_ = nullptr;
  std::uint64_t contended_ = 0;
  Time total_wait_ = 0;
};

/// RAII lock guard for SimMutex.
class SimLockGuard {
 public:
  explicit SimLockGuard(SimMutex& m) : m_(m) { m_.lock(); }
  ~SimLockGuard() { m_.unlock(); }
  SimLockGuard(const SimLockGuard&) = delete;
  SimLockGuard& operator=(const SimLockGuard&) = delete;

 private:
  SimMutex& m_;
};

/// Reusable barrier for a fixed participant count.
class SimBarrier {
 public:
  SimBarrier(Engine& engine, std::size_t participants);

  /// Blocks until all participants arrive; the last arriver releases
  /// everyone and resets the barrier for the next round.
  void arrive_and_wait();

  std::size_t participants() const { return participants_; }
  std::uint64_t generation() const { return generation_; }

 private:
  Engine& engine_;
  WaitQueue queue_;
  std::size_t participants_;
  std::size_t arrived_ = 0;
  std::uint64_t generation_ = 0;
};

}  // namespace pgasq::sim
