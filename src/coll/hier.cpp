// Hierarchical (node-aware) two-level schedules. The Table II c-sweep
// shows intra-node traffic dominating as ranks-per-node grows; these
// schedules combine within each node over the shared-memory path first
// (noc/parameters.hpp models it at ~5x the torus byte rate with no
// wire latency), cross nodes once via the leaders group — one transfer
// per inter-node link instead of c — and fan back out within the node
// down the pipelined T-ring chain. The same lever QCDOC and the PMS
// machine pulled: use the mesh links once per node.
//
// The two internal groups are ordinary group-mode CollEngines over
// RankMapping-derived member lists: "hier-node" (the slots of my node,
// member index == slot) and "hier-leaders" (slot 0 of every node,
// member index == node id). Both are constructed lazily at the first
// hier-selected collective — a collective point, so construction (and
// its world-collective control arenas) lines up on every rank.
#include <cstring>
#include <vector>

#include "coll/coll.hpp"
#include "util/error.hpp"

namespace pgasq::coll {

namespace {
// Fan-out pipeline segment when coll.bcast_segment_bytes is unset: one
// L2-friendly chunk, small enough to overlap hops within a node chain.
constexpr std::size_t kDefaultFanoutSegment = 64 * 1024;
}  // namespace

std::size_t CollEngine::fanout_segment() const {
  return config_.bcast_segment_bytes != 0 ? config_.bcast_segment_bytes
                                          : kDefaultFanoutSegment;
}

void CollEngine::ensure_hier() {
  if (hier_node_ != nullptr) return;
  PGASQ_CHECK(geometry_.hier, << "hierarchical schedule without node groups");
  const topo::RankMapping& map = comm_.world().machine().mapping();
  const int c = map.ranks_per_node();
  const int nodes = geometry_.nodes;
  const int my_node = map.node_of_rank(comm_.rank());

  GroupSpec node_spec;
  node_spec.label = "hier-node";
  node_spec.members.reserve(static_cast<std::size_t>(c));
  for (int s = 0; s < c; ++s) node_spec.members.push_back(map.rank_of(my_node, s));

  GroupSpec lead_spec;
  lead_spec.label = "hier-leaders";
  lead_spec.members.reserve(static_cast<std::size_t>(nodes));
  for (int k = 0; k < nodes; ++k) lead_spec.members.push_back(map.rank_of(k, 0));

  // The children's control-arena allocations barrier through the world
  // Comm; in_alloc_ routes that barrier to the hardware rendezvous so
  // it cannot re-enter this (mid-collective) engine.
  in_alloc_ = true;
  hier_node_ = std::make_unique<CollEngine>(comm_, node_spec);
  hier_leaders_ = std::make_unique<CollEngine>(comm_, lead_spec);
  in_alloc_ = false;
}

void CollEngine::hier_barrier() {
  ensure_hier();
  const bool leader = hier_leaders_->is_member();
  // Arrive within the node, cross once per node, release the node.
  hier_node_->barrier();
  if (leader) hier_leaders_->barrier();
  hier_node_->barrier();
}

void CollEngine::hier_broadcast(std::byte* data, std::size_t bytes, int root) {
  ensure_hier();
  const topo::RankMapping& map = comm_.world().machine().mapping();
  const int root_node = map.node_of_rank(root);
  const int root_slot = map.slot_of_rank(root);
  const int my_node = map.node_of_rank(comm_.rank());
  const bool leader = hier_leaders_->is_member();
  // Stage the payload to the root node's leader (slot 0) when the root
  // is not the leader itself; that node is fully served by this step.
  if (my_node == root_node && root_slot != 0) {
    hier_node_->broadcast(data, bytes, root_slot);
  }
  // One transfer per inter-node link: leaders only.
  if (leader) hier_leaders_->broadcast(data, bytes, root_node);
  // Pipelined chain fan-out within every node the leader step fed.
  if (my_node != root_node || root_slot == 0) {
    hier_node_->broadcast_with(Algo::kTorusRing, data, bytes, 0,
                               fanout_segment());
  }
}

void CollEngine::hier_reduce_sum(double* x, std::size_t n, int root, bool all) {
  ensure_hier();
  const topo::RankMapping& map = comm_.world().machine().mapping();
  const int root_node = map.node_of_rank(root);
  const int root_slot = map.slot_of_rank(root);
  const int my_node = map.node_of_rank(comm_.rank());
  const bool leader = hier_leaders_->is_member();
  // Combine the node's c contributions over shared memory, into the
  // leader (member index == slot, so the leader is group rank 0).
  hier_node_->reduce_sum(x, n, 0);
  if (all) {
    if (leader) hier_leaders_->allreduce_sum(x, n);
    hier_node_->broadcast_with(Algo::kTorusRing,
                               reinterpret_cast<std::byte*>(x), n * 8, 0,
                               fanout_segment());
  } else {
    if (leader) hier_leaders_->reduce_sum(x, n, root_node);
    if (my_node == root_node && root_slot != 0) {
      // Ship the result from the leader to the requested root; other
      // node members' buffers are unspecified after a reduce anyway.
      hier_node_->broadcast(reinterpret_cast<std::byte*>(x), n * 8, 0);
    }
  }
}

void CollEngine::hier_allgather(const std::byte* in, std::size_t bytes,
                                std::byte* out) {
  ensure_hier();
  const topo::RankMapping& map = comm_.world().machine().mapping();
  const int c = map.ranks_per_node();
  const int my_node = map.node_of_rank(comm_.rank());
  const bool leader = hier_leaders_->is_member();
  const std::size_t node_block = static_cast<std::size_t>(c) * bytes;
  // ABCDET packs node k's ranks at [k*c, (k+1)*c): the node's block of
  // the world-rank-ordered result is contiguous, so the node allgather
  // can assemble it in place.
  std::byte* my_block = out + static_cast<std::size_t>(my_node) * node_block;
  hier_node_->allgather(in, bytes, my_block);
  if (leader) {
    // Leaders exchange whole node blocks (copied out: the leaders'
    // allgather output region overlaps my_block).
    const std::vector<std::byte> staged(my_block, my_block + node_block);
    hier_leaders_->allgather(staged.data(), node_block, out);
  }
  hier_node_->broadcast_with(Algo::kTorusRing, out,
                             static_cast<std::size_t>(geometry_.p) * bytes, 0,
                             fanout_segment());
}

}  // namespace pgasq::coll
