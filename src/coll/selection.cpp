#include "coll/selection.hpp"

#include <cstdlib>

#include "util/error.hpp"

namespace pgasq::coll {

const char* op_name(Op op) {
  return armci::kCollOpNames[static_cast<int>(op)];
}

const char* algo_name(Algo algo) {
  PGASQ_CHECK(algo != Algo::kAuto);
  return armci::kCollAlgoNames[static_cast<int>(algo)];
}

Algo parse_algo(const std::string& name) {
  if (name == "auto") return Algo::kAuto;
  for (int a = 0; a < armci::CollStats::kAlgos; ++a) {
    if (name == armci::kCollAlgoNames[a]) return static_cast<Algo>(a);
  }
  PGASQ_CHECK(false, << "unknown collective algorithm '" << name << "'");
  return Algo::kAuto;
}

namespace {

double parse_double(const std::string& key, const std::string& value) {
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  PGASQ_CHECK(end != value.c_str() && *end == '\0' && v >= 0.0,
              << "coll." << key << " = '" << value << "' is not a number");
  return v;
}

std::uint64_t parse_u64(const std::string& key, const std::string& value) {
  const double v = parse_double(key, value);
  return static_cast<std::uint64_t>(v);
}

/// coll.algo.<op> keys address ops by their report name.
int op_index(const std::string& name) {
  for (int op = 0; op < armci::CollStats::kOps; ++op) {
    if (name == armci::kCollOpNames[op]) return op;
  }
  return -1;
}

}  // namespace

CollConfig CollConfig::from_options(const armci::Options& options) {
  CollConfig c;
  for (const auto& [key, value] : options.coll) {
    if (key.rfind("algo.", 0) == 0) {
      const int op = op_index(key.substr(5));
      PGASQ_CHECK(op >= 0, << "coll." << key << ": unknown collective");
      c.force[op] = parse_algo(value);
    } else if (key == "hw") {
      c.hw_enabled = value != "0";
    } else if (key == "hw_gbps") {
      c.hw_gbps = parse_double(key, value);
    } else if (key == "hw_hop_ns") {
      c.hw_hop_ns = parse_double(key, value);
    } else if (key == "hw_startup_us") {
      c.hw_startup_us = parse_double(key, value);
    } else if (key == "small_bytes") {
      c.small_bytes = parse_u64(key, value);
    } else if (key == "ring_min_bytes") {
      c.ring_min_bytes = parse_u64(key, value);
    } else if (key == "ring_min_ranks") {
      c.ring_min_ranks = static_cast<int>(parse_u64(key, value));
    } else if (key == "hier_min_ppn") {
      c.hier_min_ppn = static_cast<int>(parse_u64(key, value));
    } else if (key == "bcast_segment_bytes") {
      c.bcast_segment_bytes = parse_u64(key, value);
    } else {
      PGASQ_CHECK(false, << "unknown option coll." << key);
    }
  }
  return c;
}

Algo CollConfig::choose(Op op, std::uint64_t bytes, const Geometry& g) const {
  const Algo forced = force[static_cast<int>(op)];
  if (forced != Algo::kAuto) return normalize(op, forced, g);

  const bool hw =
      hw_enabled && !g.link_faults && !g.corruption && !g.shrunk && !g.group;
  const bool ring =
      g.p >= ring_min_ranks && bytes >= ring_min_bytes && g.torus_dims > 0;
  // Node-aware two-level schedules pay off on the software path once
  // enough ranks share a node (Table II's c sweep): the intra-node
  // combine collapses c contributions over shared memory, so every
  // inter-node link carries one transfer instead of c.
  const bool hier = g.hier && g.ppn >= hier_min_ppn;
  Algo pick = Algo::kBinomial;
  switch (op) {
    case Op::kBarrier:
      // The global-interrupt network is the barrier on BG/Q.
      pick = hw ? Algo::kHw : Algo::kRecdbl;
      break;
    // For the combine/replicate collectives the collective logic wins
    // at every size in our calibration (startup ~2 us vs log2(p)
    // software rounds; 2 GB/s streaming vs multi-pass software), just
    // as BG/Q routes MPI_COMM_WORLD collectives over the collective
    // network at all sizes (S II-A). The size/geometry thresholds
    // pick the *software* schedule when hw is unavailable (disabled,
    // or deselected by a link-fault plan).
    case Op::kBroadcast:
      pick = hw                  ? Algo::kHw
             : hier              ? Algo::kHier
             : bytes < small_bytes ? Algo::kBinomial
             : ring              ? Algo::kTorusRing
                                 : Algo::kBinomial;
      break;
    case Op::kReduce:
      pick = hw ? Algo::kHw : hier ? Algo::kHier : Algo::kBinomial;
      break;
    case Op::kAllreduce:
      // Mid-size software band: the reduce-scatter + allgather
      // schedule (Rabenseifner) moves ~2n doubles per rank where
      // recursive doubling moves n log2(p) — it carries payloads that
      // are bandwidth-bound but too small (or the geometry too
      // irregular) for the torus-ring bucket schedule.
      pick = hw                  ? Algo::kHw
             : hier              ? Algo::kHier
             : bytes < small_bytes ? Algo::kRecdbl
             : ring              ? Algo::kTorusRing
                                 : Algo::kRab;
      break;
    case Op::kAllgather:
      // Total result is p * bytes: bandwidth schedules win early.
      pick = hier ? Algo::kHier
             : (g.pow2 && bytes * static_cast<std::uint64_t>(g.p) < ring_min_bytes)
                 ? Algo::kRecdbl
                 : Algo::kTorusRing;
      break;
    case Op::kAlltoall:
      pick = Algo::kTorusRing;
      break;
  }
  return normalize(op, pick, g);
}

Algo CollConfig::normalize(Op op, Algo algo, const Geometry& g) const {
  PGASQ_CHECK(algo != Algo::kAuto);
  if (g.p == 1) return algo;  // every algorithm degenerates to a no-op
  // Rabenseifner only exists for allreduce (the scatter and gather
  // phases are two halves of one combine); elsewhere it degrades to
  // recursive doubling and rides that algorithm's fall-backs below.
  if (algo == Algo::kRab && op != Op::kAllreduce) algo = Algo::kRecdbl;
  // The hardware model moves no torus packets, so it cannot honour a
  // fault plan that fails links or corrupts payloads; and it spans the
  // whole partition, so a shrunk survivor clique cannot ride it
  // either. Route through software in all these cases.
  if (algo == Algo::kHw && (!hw_enabled || g.link_faults || g.corruption ||
                            g.shrunk || g.group)) {
    algo = op == Op::kBarrier || op == Op::kAllreduce ? Algo::kRecdbl
                                                      : Algo::kBinomial;
  }
  // The two-level schedules need the full world clique mapped with
  // more than one rank per node and more than one node; the
  // personalized exchange has no combine step to hoist into a node, so
  // alltoall always runs flat.
  if (algo == Algo::kHier && (!g.hier || op == Op::kAlltoall)) {
    switch (op) {
      case Op::kBarrier:
      case Op::kAllreduce:
        algo = Algo::kRecdbl;
        break;
      case Op::kAlltoall:
        algo = g.torus_dims > 0 ? Algo::kTorusRing : Algo::kRecdbl;
        break;
      case Op::kAllgather:
        algo = g.torus_dims > 0 ? Algo::kTorusRing : Algo::kBinomial;
        break;
      default:
        algo = Algo::kBinomial;
        break;
    }
  }
  // The ring schedules need the full per-dimension torus rings; a
  // shrunk clique reports torus_dims == 0.
  if (algo == Algo::kTorusRing && g.torus_dims == 0) {
    switch (op) {
      case Op::kBarrier:
      case Op::kAllreduce:
        algo = Algo::kRecdbl;
        break;
      case Op::kAlltoall:
        algo = Algo::kRecdbl;  // pairwise-xor handles any p
        break;
      default:
        algo = Algo::kBinomial;
        break;
    }
  }
  switch (op) {
    case Op::kBarrier:
      return algo;  // all four exist
    case Op::kBroadcast:
      // No halving/doubling broadcast; the tree is the latency algo.
      return algo == Algo::kRecdbl ? Algo::kBinomial : algo;
    case Op::kReduce:
      if (algo == Algo::kRecdbl) return Algo::kBinomial;
      return algo;
    case Op::kAllreduce:
      return algo;  // recdbl carries the non-power-of-two fold step
    case Op::kAllgather:
      if (algo == Algo::kHw) return Algo::kTorusRing;
      if (algo == Algo::kRecdbl && !g.pow2) {
        return g.torus_dims > 0 ? Algo::kTorusRing : Algo::kBinomial;
      }
      return algo;
    case Op::kAlltoall:
      // Personalized exchange has no combine: hardware logic and trees
      // do not apply. XOR-pairing covers any p (non-pow2 ranks sit out
      // the steps whose partner falls past p).
      if (algo == Algo::kHw || algo == Algo::kBinomial) {
        return g.torus_dims > 0 ? Algo::kTorusRing : Algo::kRecdbl;
      }
      return algo;
  }
  return algo;
}

}  // namespace pgasq::coll
