#include "coll/coll.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <string>

#include "fault/integrity.hpp"
#include "util/crc32c.hpp"
#include "util/error.hpp"

namespace pgasq::coll {

namespace {

// Scratch arena layout: a fixed barrier-word region at the base (its
// words live at stable addresses forever, so software-barrier flags
// stay monotone across data-op epochs), data slots after it. A group
// engine's world-collective arena is control-only: barrier words plus
// a member address table (word kBarrierWords + i holds member i's
// current data-area base); its data slots live in per-member
// registered local areas instead.
constexpr std::size_t kBarrierWords = 64;
constexpr std::size_t kBarrierBytes = kBarrierWords * 8;
constexpr std::size_t kInitialDataBytes = 4096;
constexpr int kAddrWord0 = static_cast<int>(kBarrierWords);

// Barrier-word assignments (disjoint per schedule, so mixing schedules
// across invocations is safe).
constexpr int kDissemWord0 = 0;    // dissemination round r -> word r
constexpr int kTreeUpWord0 = 20;   // child joining via bit k -> word 20+k
constexpr int kTreeDownWord = 40;  // release signal (one per rank)
constexpr int kRingTokenWord = 48;
constexpr int kRingReleaseWord = 49;

// Slot-checksum re-fetch bound: each re-fetch rides the (corruptible)
// wire again, so with per-packet corruption probability q the chance
// of exhausting the bound is q^16 — unreachable for any sane plan. A
// payload still failing after this many fetches is a logic error.
constexpr int kMaxSlotRefetches = 16;

}  // namespace

/// Cross-rank state of the hardware collective-logic model, owned by
/// World::coll_shared(). One invocation is in flight at a time (engine
/// ops are strictly ordered); `generation` counts completed ones.
struct HwShared {
  explicit HwShared(int p) : contrib(static_cast<std::size_t>(p)) {}
  std::uint64_t generation = 0;
  int arrived = 0;
  std::vector<std::vector<std::byte>> contrib;  // per source rank
  std::vector<std::byte> result;
};

// ---------------------------------------------------------------------------
// Per-(op, algorithm) accounting
// ---------------------------------------------------------------------------

class CollEngine::OpTimer {
 public:
  OpTimer(CollEngine& e, Op op, Algo algo, std::uint64_t bytes)
      : e_(e),
        op_(static_cast<int>(op)),
        algo_(static_cast<int>(algo)),
        bytes_(bytes),
        t0_(e.comm_.now()) {
    if (e_.trace_ != nullptr) {
      e_.trace_->instant(e_.track_,
                         std::string(op_name(op)) + "/" + algo_name(algo), t0_);
      e_.trace_->begin_slice(e_.track_, t0_);
    }
  }

  ~OpTimer() {
    const Time t1 = e_.comm_.now();
    armci::CollStats& s = *e_.stats_;
    ++s.count[op_][algo_];
    s.bytes[op_][algo_] += bytes_;
    s.time[op_][algo_] += t1 - t0_;
    if (e_.trace_ != nullptr) e_.trace_->end_slice(e_.track_, t1);
  }

  OpTimer(const OpTimer&) = delete;
  OpTimer& operator=(const OpTimer&) = delete;

 private:
  CollEngine& e_;
  int op_, algo_;
  std::uint64_t bytes_;
  Time t0_;
};

// ---------------------------------------------------------------------------
// Lifecycle
// ---------------------------------------------------------------------------

CollEngine& CollEngine::of(armci::Comm& comm) {
  std::shared_ptr<void>& slot = comm.coll_slot();
  if (!slot) slot = std::make_shared<CollEngine>(comm);
  return *static_cast<CollEngine*>(slot.get());
}

CollEngine::CollEngine(armci::Comm& comm) : CollEngine(comm, std::vector<int>{}) {}

CollEngine::CollEngine(armci::Comm& comm, std::vector<int> members)
    : comm_(comm),
      config_(CollConfig::from_options(comm.options())),
      members_(std::move(members)),
      stats_(&comm.coll_stats()),
      salt_(comm.next_coll_engine_salt()) {
  pami::Machine& machine = comm.world().machine();
  const topo::Torus5D& torus = machine.torus();
  const topo::RankMapping& map = machine.mapping();
  const bool shrunk = !members_.empty();
  const int p = shrunk ? static_cast<int>(members_.size()) : comm.nprocs();
  if (!shrunk) PGASQ_CHECK(map.num_ranks() == p);

  geometry_.p = p;
  geometry_.pow2 = std::has_single_bit(static_cast<unsigned>(p));
  geometry_.diameter = torus.diameter();
  geometry_.shrunk = shrunk;
  const fault::Injector* injector = machine.injector();
  geometry_.link_faults = injector != nullptr && injector->has_link_faults();
  geometry_.corruption = injector != nullptr && injector->plan().corrupt_prob > 0.0;
  if (machine.integrity() != nullptr && machine.integrity()->config().coll_check) {
    integrity_ = machine.integrity();
    hdr_ = 32;
  }
  if (!shrunk) {
    geometry_.ppn = map.ranks_per_node();
    geometry_.nodes = torus.num_nodes();
    geometry_.hier = geometry_.ppn > 1 && geometry_.nodes > 1;
  }

  const int me = comm.rank();
  me_ = me;
  if (shrunk) {
    // A survivor clique has no clean torus decomposition: schedules
    // address members by list position and the ring / hardware
    // algorithms stay unselectable (torus_dims == 0).
    const auto it = std::find(members_.begin(), members_.end(), me);
    PGASQ_CHECK(it != members_.end(),
                << "rank " << me << " is not a member of the shrunk clique");
    me_ = static_cast<int>(it - members_.begin());
  } else {
    const int node = map.node_of_rank(me);
    const int slot = map.slot_of_rank(me);
    const topo::Coord5 coord = torus.coord_of(node);
    for (int d = 0; d < topo::kDims; ++d) {
      const int m = torus.dims()[d];
      if (m <= 1) continue;
      topo::Coord5 up = coord, down = coord;
      up[d] = (coord[d] + 1) % m;
      down[d] = (coord[d] - 1 + m) % m;
      rings_.push_back({d, m, coord[d], map.rank_of(torus.node_of(up), slot),
                        map.rank_of(torus.node_of(down), slot)});
    }
    if (map.ranks_per_node() > 1) {
      const int m = map.ranks_per_node();
      rings_.push_back({-1, m, slot, map.rank_of(node, (slot + 1) % m),
                        map.rank_of(node, (slot - 1 + m) % m)});
    }
  }
  geometry_.torus_dims = static_cast<int>(rings_.size());

  std::shared_ptr<void>& shared = comm.world().coll_shared();
  if (!shared) shared = std::make_shared<HwShared>(p);
  hw_ = std::static_pointer_cast<HwShared>(shared);

  if ((trace_ = machine.engine().trace()) != nullptr) {
    track_ = trace_->register_track("coll/r" + std::to_string(me),
                                    !machine.rank_traced(me));
  }

  // Collective: every rank constructs its engine at the same program
  // point, so the arena rendezvous lines up. The barrier hook is
  // installed only afterwards — the allocation's internal barriers
  // must not dispatch into a half-built engine.
  ensure_scratch(kInitialDataBytes);
  comm.set_barrier_hook([this] {
    if (in_alloc_) {
      comm_.barrier_hw();
      return;
    }
    barrier();
  });
}

CollEngine::CollEngine(armci::Comm& comm, const GroupSpec& spec)
    : comm_(comm),
      config_(CollConfig::from_options(comm.options())),
      members_(spec.members),
      group_(true),
      label_(spec.label),
      salt_(comm.next_coll_engine_salt()) {
  pami::Machine& machine = comm.world().machine();
  const topo::Torus5D& torus = machine.torus();
  const topo::RankMapping& map = machine.mapping();
  const int me = comm.rank();
  const auto it = std::find(members_.begin(), members_.end(), me);
  member_ = it != members_.end();
  me_ = member_ ? static_cast<int>(it - members_.begin()) : -1;

  geometry_.p = static_cast<int>(members_.size());
  geometry_.pow2 = !members_.empty() &&
                   std::has_single_bit(static_cast<unsigned>(members_.size()));
  geometry_.diameter = torus.diameter();
  geometry_.group = true;
  const fault::Injector* injector = machine.injector();
  geometry_.link_faults = injector != nullptr && injector->has_link_faults();
  geometry_.corruption = injector != nullptr && injector->plan().corrupt_prob > 0.0;
  if (machine.integrity() != nullptr && machine.integrity()->config().coll_check) {
    integrity_ = machine.integrity();
    hdr_ = 32;
  }

  // Ring schedules survive grouping when the member set is an
  // axis-aligned box in (A..E coordinate, slot) space — the canonical
  // node group (one node's slots: a T-extent box) and leaders group
  // (slot 0 everywhere: the full torus at one slot) both are. Digits
  // are indices into the per-axis sorted value lists; neighbours are
  // looked up by digit tuple.
  if (member_ && members_.size() > 1) {
    const std::size_t n = members_.size();
    std::vector<std::array<int, topo::kDims + 1>> tuples(n);
    for (std::size_t i = 0; i < n; ++i) {
      const topo::Coord5 c = torus.coord_of(map.node_of_rank(members_[i]));
      for (int d = 0; d < topo::kDims; ++d) tuples[i][d] = c[d];
      tuples[i][topo::kDims] = map.slot_of_rank(members_[i]);
    }
    std::array<std::vector<int>, topo::kDims + 1> values;
    for (int a = 0; a <= topo::kDims; ++a) {
      std::vector<int>& v = values[a];
      v.reserve(n);
      for (const auto& t : tuples) v.push_back(t[a]);
      std::sort(v.begin(), v.end());
      v.erase(std::unique(v.begin(), v.end()), v.end());
    }
    std::size_t box = 1;
    for (const auto& v : values) box *= v.size();
    if (box == n) {  // distinct tuples + matching volume = full box
      std::vector<int> axes;
      for (int a = 0; a <= topo::kDims; ++a) {
        if (values[a].size() > 1) axes.push_back(a);
      }
      member_digits_.resize(n);
      for (std::size_t i = 0; i < n; ++i) {
        std::vector<int>& dg = member_digits_[i];
        dg.resize(axes.size());
        for (std::size_t k = 0; k < axes.size(); ++k) {
          const std::vector<int>& v = values[static_cast<std::size_t>(axes[k])];
          dg[k] = static_cast<int>(
              std::lower_bound(v.begin(), v.end(),
                               tuples[i][static_cast<std::size_t>(axes[k])]) -
              v.begin());
        }
        digit_index_[dg] = static_cast<int>(i);
      }
      const std::vector<int>& mine = member_digits_[static_cast<std::size_t>(me_)];
      for (std::size_t k = 0; k < axes.size(); ++k) {
        const int a = axes[k];
        const int m = static_cast<int>(values[static_cast<std::size_t>(a)].size());
        std::vector<int> up = mine, down = mine;
        up[k] = (up[k] + 1) % m;
        down[k] = (down[k] - 1 + m) % m;
        rings_.push_back({a < topo::kDims ? a : -1, m, mine[k],
                          digit_index_.at(up), digit_index_.at(down)});
      }
    }
  }
  geometry_.torus_dims = static_cast<int>(rings_.size());

  if (member_) {
    stats_ = &comm.group_coll_stats(label_);
    if ((trace_ = machine.engine().trace()) != nullptr) {
      track_ = trace_->register_track("grp/" + label_ + "/r" + std::to_string(me),
                                      !machine.rank_traced(me));
    }
  } else {
    stats_ = &comm.coll_stats();  // never written: ops reject non-members
  }

  // One uniform world-collective control arena per engine: barrier
  // words plus the member address table. Every live world rank — even
  // a non-member — constructs its engine here, so the allocation
  // rendezvous lines up. Data slots are attached lazily (group_grow)
  // at the first data-moving op. No barrier hook, no hardware-model
  // attach: those belong to the world engine alone.
  const std::size_t control_slots =
      spec.control_slots == 0 ? members_.size() : spec.control_slots;
  PGASQ_CHECK(!member_ || control_slots >= members_.size());
  peer_data_.assign(members_.size(), nullptr);
  scratch_ = &comm_.malloc_collective(kBarrierBytes + control_slots * 8);
}

CollEngine::~CollEngine() = default;

void CollEngine::rebuild_shrunk(armci::Comm& comm, std::vector<int> members) {
  // Detach first: the replacement engine's collective allocation
  // barriers must not dispatch into the old (pre-shrink) engine, and
  // the old engine must not deregister shared state after the new one
  // registered. The old arena stays freed-but-kept, so straggler slot
  // writes from the dead epoch land in dead memory.
  comm.set_barrier_hook(nullptr);
  comm.coll_slot().reset();
  const std::vector<int> survivors = members;
  comm.coll_slot() = std::make_shared<CollEngine>(comm, std::move(members));
  // Process groups are built on top of the engine: let the registry
  // (src/grp) mark every group stale and rebuild the derived node /
  // leaders groups over the survivor clique. This point is collective
  // over survivors (recovery re-aligned the allocation sequence just
  // before the rebuild), which group reconstruction requires.
  if (comm.shrink_hook()) comm.shrink_hook()(survivors);
}

// ---------------------------------------------------------------------------
// Scratch arena & slot transport
// ---------------------------------------------------------------------------

bool CollEngine::ensure_scratch(std::size_t data_bytes) {
  PGASQ_CHECK(!group_);  // group data slots live in group_grow areas
  const std::size_t needed = kBarrierBytes + data_bytes;
  if (scratch_ != nullptr && scratch_->bytes_per_rank() >= needed) return false;
  in_alloc_ = true;
  std::size_t capacity = kBarrierBytes + kInitialDataBytes;
  if (scratch_ != nullptr) {
    capacity = scratch_->bytes_per_rank();
    // free/malloc rendezvous below drain every in-flight slot write
    // before the old arena goes away (their barriers fence first).
    comm_.free_collective(*scratch_);
    ++comm_.coll_stats().scratch_reallocs;
  }
  while (capacity < needed) capacity *= 2;
  scratch_ = &comm_.malloc_collective(capacity);
  in_alloc_ = false;
  // The fresh arena is zero-filled: software-barrier flags restart
  // from zero (every rank reallocates at this same collective point),
  // and any slot layout finds clean flag words.
  barrier_seq_ = 0;
  layout_ = 0;
  return true;
}

void CollEngine::begin_data_op(std::size_t slot_payload, std::size_t n_slots) {
  PGASQ_CHECK(n_slots > 0);
  slot_bytes_ = hdr_ + ((slot_payload + 7) & ~std::size_t{7});
  n_slots_ = n_slots;
  if (group_) {
    // Group epochs rendezvous over the control arena, never the
    // world-wide hardware barrier (non-members are elsewhere).
    ++epoch_;
    group_rendezvous();  // all previous-epoch traffic delivered
    keep_retire();       // ... so no re-fetch can still target a stage
    const std::size_t need = slot_bytes_ * n_slots;
    if (data_cap_ < need) {
      group_grow(need);  // fresh zero-filled area; publish + rendezvous
      layout_ = slot_bytes_;
    } else if (layout_ != slot_bytes_) {
      // Flag words move when the slot pitch changes; wipe between two
      // rendezvous so no new-epoch write races the memset.
      std::memset(data_local_, 0, data_cap_);
      group_rendezvous();
      layout_ = slot_bytes_;
    }
    return;
  }
  const bool grew = ensure_scratch(slot_bytes_ * n_slots);
  ++epoch_;
  if (grew) {
    keep_retire();  // the reallocation's rendezvous quiesced everything
    layout_ = slot_bytes_;
    return;  // the reallocation's own rendezvous isolated this epoch
  }
  if (layout_ != slot_bytes_) {
    // Flag words move when the slot pitch changes; stale payload bytes
    // from the old layout could alias the new flag positions. Quiesce,
    // wipe, and only then let anyone inject the new epoch.
    comm_.barrier_hw();
    keep_retire();
    std::memset(scratch_->local(comm_.rank()) + kBarrierBytes, 0,
                scratch_->bytes_per_rank() - kBarrierBytes);
    comm_.barrier_hw();
    layout_ = slot_bytes_;
  } else {
    // Same layout: flags are epoch-monotone, but invocation N+1 slot
    // writes must not land while a skewed rank still polls epoch N
    // (retransmit backoff can delay its message arbitrarily). The
    // rendezvous guarantees all epoch-N traffic delivered first.
    comm_.barrier_hw();
    keep_retire();
  }
}

void CollEngine::poll() {
  comm_.progress();
  comm_.compute(from_ns(200));
}

void CollEngine::group_rendezvous() {
  if (geometry_.p <= 1) return;
  comm_.fence_all();
  ++barrier_seq_;
  barrier_dissemination();
}

void CollEngine::group_grow(std::size_t need) {
  std::size_t cap = data_cap_ == 0 ? kInitialDataBytes : data_cap_;
  while (cap < need) cap *= 2;
  // The old area is abandoned in place (Comm keeps the registered
  // allocation until finalize): straggler writes from the epoch just
  // quiesced and stale remote region-cache entries both stay harmless,
  // and the fresh area arrives zero-filled.
  data_local_ = static_cast<std::byte*>(comm_.malloc_local(cap));
  data_cap_ = cap;
  const auto base = reinterpret_cast<std::uint64_t>(data_local_);
  for (int j = 0; j < geometry_.p; ++j) {
    if (j == me_) continue;
    put_word(j, kAddrWord0 + me_, base);
  }
  peer_data_[static_cast<std::size_t>(me_)] = data_local_;
  // Delivery + arrival of every member's address word, then read the
  // table (plain loads: the values are not monotone, so wait_word does
  // not apply — the rendezvous is the synchronization).
  group_rendezvous();
  const std::byte* table = scratch_->local(comm_.rank());
  for (int j = 0; j < geometry_.p; ++j) {
    if (j == me_) continue;
    std::uint64_t v = 0;
    std::memcpy(&v, table + static_cast<std::size_t>(kAddrWord0 + j) * 8, 8);
    peer_data_[static_cast<std::size_t>(j)] = reinterpret_cast<std::byte*>(v);
  }
}

armci::RemotePtr CollEngine::slot_remote(int to, std::size_t slot) {
  if (group_) {
    return {wrank(to), peer_data_[static_cast<std::size_t>(to)] + slot * slot_bytes_};
  }
  return scratch_->at(wrank(to), kBarrierBytes + slot * slot_bytes_);
}

std::byte* CollEngine::slot_local(std::size_t slot) {
  if (group_) return data_local_ + slot * slot_bytes_;
  return scratch_->local(comm_.rank()) + kBarrierBytes + slot * slot_bytes_;
}

std::byte* CollEngine::grow_local(std::byte*& buf, std::size_t& capacity,
                                  std::size_t need) {
  if (capacity >= need) return buf;
  std::size_t grown = capacity == 0 ? 4096 : capacity * 2;
  while (grown < need) grown *= 2;
  if (buf != nullptr) comm_.free_local(buf);
  buf = static_cast<std::byte*>(comm_.malloc_local(grown));
  capacity = grown;
  return buf;
}

void CollEngine::fill_header(std::byte* stage, const void* data,
                             std::size_t bytes) {
  std::memcpy(stage, &epoch_, 8);
  if (hdr_ == 8) return;
  const std::uint32_t crc = crc32c(data, bytes);
  const std::uint32_t len = static_cast<std::uint32_t>(bytes);
  const std::int32_t src = comm_.rank();
  const std::int32_t pad = 0;
  const std::uint64_t addr = reinterpret_cast<std::uint64_t>(stage + hdr_);
  std::memcpy(stage + 8, &crc, 4);
  std::memcpy(stage + 12, &len, 4);
  std::memcpy(stage + 16, &src, 4);
  std::memcpy(stage + 20, &pad, 4);
  std::memcpy(stage + 24, &addr, 8);
}

std::byte* CollEngine::keep_alloc(std::size_t need) {
  need = (need + 7) & ~std::size_t{7};
  if (keep_blocks_.empty() || keep_blocks_.back().second - keep_used_ < need) {
    std::size_t cap =
        keep_blocks_.empty() ? std::size_t{16} * 1024 : keep_blocks_.back().second * 2;
    while (cap < need) cap *= 2;
    keep_blocks_.emplace_back(static_cast<std::byte*>(comm_.malloc_local(cap)), cap);
    keep_used_ = 0;
  }
  std::byte* p = keep_blocks_.back().first + keep_used_;
  keep_used_ += need;
  return p;
}

void CollEngine::keep_retire() {
  if (keep_blocks_.size() > 1) {
    // Coalesce into one block covering everything the last epoch used,
    // so steady state bump-allocates without fresh registrations.
    std::size_t total = 0;
    for (const auto& [ptr, cap] : keep_blocks_) {
      total += cap;
      comm_.free_local(ptr);
    }
    keep_blocks_.clear();
    keep_blocks_.emplace_back(static_cast<std::byte*>(comm_.malloc_local(total)),
                              total);
  }
  keep_used_ = 0;
}

void CollEngine::send(int to, std::size_t slot, const void* data,
                      std::size_t bytes) {
  PGASQ_CHECK(slot < n_slots_ && bytes + hdr_ <= slot_bytes_);
  // Under slot checksums the stage is retained for the whole epoch so
  // the receiver can re-fetch a corrupted payload; otherwise the
  // reusable buffer suffices (the put snapshots it at injection).
  std::byte* stage = hdr_ == 8 ? grow_local(send_buf_, send_cap_, 8 + bytes)
                               : keep_alloc(hdr_ + bytes);
  fill_header(stage, data, bytes);
  if (bytes > 0) std::memcpy(stage + hdr_, data, bytes);
  if (trace_ != nullptr) {
    trace_->flow_point('s', track_, "coll hop", hop_flow_id(wrank(to), slot),
                       comm_.now(), {{"bytes", std::to_string(bytes)},
                                     {"to", "rank" + std::to_string(wrank(to))}});
  }
  // One put carries flag + payload: the simulator delivers it in a
  // single atomic copy, so a raised flag implies a complete payload.
  comm_.put(stage, slot_remote(to, slot), hdr_ + bytes);
}

void CollEngine::send_nb(int to, std::size_t slot, const void* data,
                         std::size_t bytes, std::byte* stage,
                         armci::Handle& handle) {
  PGASQ_CHECK(slot < n_slots_ && bytes + hdr_ <= slot_bytes_);
  fill_header(stage, data, bytes);
  if (bytes > 0) std::memcpy(stage + hdr_, data, bytes);
  if (trace_ != nullptr) {
    trace_->flow_point('s', track_, "coll hop", hop_flow_id(wrank(to), slot),
                       comm_.now(), {{"bytes", std::to_string(bytes)},
                                     {"to", "rank" + std::to_string(wrank(to))}});
  }
  comm_.nb_put(stage, slot_remote(to, slot), hdr_ + bytes, handle);
}

const std::byte* CollEngine::recv_wait(std::size_t slot, std::size_t bytes) {
  PGASQ_CHECK(slot < n_slots_ && bytes + hdr_ <= slot_bytes_);
  std::byte* base = slot_local(slot);
  const volatile std::uint64_t* flag =
      reinterpret_cast<const volatile std::uint64_t*>(base);
  while (*flag < epoch_) poll();
  PGASQ_CHECK(*flag == epoch_,
              << "collective slot " << slot << " flagged epoch " << *flag
              << ", expected " << epoch_);
  if (hdr_ != 8) {
    // Slot checksum: flips can only land past the wire-protected
    // prefix, i.e. in the payload — the header (and the epoch flag)
    // always arrives intact, so a mismatch here is payload damage and
    // the sender's retained stage still holds the clean bytes.
    fault::IntegrityStats& is = integrity_->stats();
    ++is.coll_slot_checks;
    std::uint32_t want = 0, len = 0;
    std::int32_t src = -1;
    std::uint64_t addr = 0;
    std::memcpy(&want, base + 8, 4);
    std::memcpy(&len, base + 12, 4);
    std::memcpy(&src, base + 16, 4);
    std::memcpy(&addr, base + 24, 8);
    PGASQ_CHECK(len == bytes, << "collective slot " << slot << " header claims "
                              << len << " bytes, expected " << bytes);
    int refetches = 0;
    while (crc32c(base + hdr_, bytes) != want) {
      ++is.coll_slot_rejects;
      PGASQ_CHECK(++refetches <= kMaxSlotRefetches,
                  << "collective slot " << slot << " payload failed its CRC "
                  << refetches << " times (re-fetched from rank " << src
                  << "); giving up");
      ++is.coll_slot_refetches;
      if (trace_ != nullptr) {
        trace_->instant(track_, "coll slot refetch", comm_.now());
      }
      // The re-fetch rides the wire too and may itself be corrupted;
      // the loop re-verifies until the payload lands clean.
      comm_.get({src, reinterpret_cast<std::byte*>(addr)}, base + hdr_, bytes);
    }
  }
  if (trace_ != nullptr) {
    trace_->flow_point('f', track_, "coll hop recv",
                       hop_flow_id(comm_.rank(), slot), comm_.now(),
                       {{"bytes", std::to_string(bytes)}});
  }
  return base + hdr_;
}

void CollEngine::put_word(int to, int word, std::uint64_t value) {
  std::byte* stage = grow_local(send_buf_, send_cap_, 8);
  std::memcpy(stage, &value, 8);
  comm_.put(stage, scratch_->at(wrank(to), static_cast<std::size_t>(word) * 8), 8);
}

void CollEngine::wait_word(int word, std::uint64_t at_least) {
  const volatile std::uint64_t* w = reinterpret_cast<const volatile std::uint64_t*>(
      scratch_->local(comm_.rank()) + static_cast<std::size_t>(word) * 8);
  while (*w < at_least) poll();
}

// ---------------------------------------------------------------------------
// Barrier schedules
// ---------------------------------------------------------------------------

void CollEngine::barrier() {
  PGASQ_CHECK(!group_ || member_,
              << "rank " << comm_.rank() << " is not a member of group '"
              << label_ << "': collective call rejected");
  const Algo algo = config_.choose(Op::kBarrier, 0, geometry_);
  OpTimer timer(*this, Op::kBarrier, algo, 0);
  run_barrier(algo);
}

void CollEngine::run_barrier(Algo algo) {
  if (geometry_.p == 1) return;
  if (algo == Algo::kHw) {
    PGASQ_CHECK(!group_, << "hw barrier on a process group");
    comm_.barrier_hw();  // the global-interrupt network (fences first)
    return;
  }
  if (algo == Algo::kHier) {
    hier_barrier();
    return;
  }
  comm_.fence_all();
  ++barrier_seq_;
  switch (algo) {
    case Algo::kRecdbl:
      barrier_dissemination();
      break;
    case Algo::kBinomial:
      barrier_tree();
      break;
    case Algo::kTorusRing:
      barrier_ring();
      break;
    default:
      PGASQ_CHECK(false, << "bad barrier algorithm");
  }
}

void CollEngine::barrier_dissemination() {
  const int p = geometry_.p, me = me_;
  for (int r = 0; (1 << r) < p; ++r) {
    PGASQ_CHECK(r < kTreeUpWord0 - kDissemWord0);
    put_word((me + (1 << r)) % p, kDissemWord0 + r, barrier_seq_);
    wait_word(kDissemWord0 + r, barrier_seq_);
  }
}

void CollEngine::barrier_tree() {
  const int p = geometry_.p, me = me_;
  // Gather up the binomial tree rooted at 0: absorb each child
  // (me + 2^k, arriving on its own word), then report to the parent.
  int mask = 1;
  while (mask < p) {
    if (me & mask) {
      put_word(me - mask, kTreeUpWord0 + std::countr_zero(static_cast<unsigned>(mask)),
               barrier_seq_);
      break;
    }
    if (me + mask < p) {
      wait_word(kTreeUpWord0 + std::countr_zero(static_cast<unsigned>(mask)),
                barrier_seq_);
    }
    mask <<= 1;
  }
  // Release back down the same tree.
  if (me != 0) wait_word(kTreeDownWord, barrier_seq_);
  const int limit = me == 0 ? p : (me & -me);
  for (int m = 1; m < limit; m <<= 1) {
    if (me + m < p) put_word(me + m, kTreeDownWord, barrier_seq_);
  }
}

void CollEngine::barrier_ring() {
  const int p = geometry_.p, me = me_;
  // A token circulates 0 -> 1 -> ... -> p-1 -> 0, then a release pass
  // chases it. O(p) latency: the ablation baseline.
  if (me == 0) {
    put_word(1, kRingTokenWord, barrier_seq_);
    wait_word(kRingTokenWord, barrier_seq_);
    put_word(1, kRingReleaseWord, barrier_seq_);
  } else {
    wait_word(kRingTokenWord, barrier_seq_);
    put_word((me + 1) % p, kRingTokenWord, barrier_seq_);
    wait_word(kRingReleaseWord, barrier_seq_);
    if (me != p - 1) put_word(me + 1, kRingReleaseWord, barrier_seq_);
  }
}

// ---------------------------------------------------------------------------
// Hardware collective-logic model
// ---------------------------------------------------------------------------

Time CollEngine::hw_latency(std::size_t bytes) const {
  // Arm/fire + an up-and-down sweep of the embedded spanning tree +
  // streaming the payload through the combine logic at ~2 GB/s.
  return from_ns(config_.hw_startup_us * 1000.0 +
                 2.0 * geometry_.diameter * config_.hw_hop_ns +
                 static_cast<double>(bytes) / config_.hw_gbps);
}

void CollEngine::hw_rendezvous(const void* contribution, std::size_t bytes,
                               std::size_t model_bytes,
                               const std::function<void(HwShared&)>& fold) {
  // The hardware combine logic spans the whole partition; a shrunk
  // clique must never be routed here (selection guarantees this).
  PGASQ_CHECK(!geometry_.shrunk, << "hw collective on a shrunk clique");
  HwShared& hw = *hw_;
  const std::uint64_t generation = hw.generation;
  auto& mine = hw.contrib[static_cast<std::size_t>(comm_.rank())];
  if (bytes > 0) {
    const auto* src = static_cast<const std::byte*>(contribution);
    mine.assign(src, src + bytes);
  } else {
    mine.clear();
  }
  if (++hw.arrived == geometry_.p) {
    hw.arrived = 0;
    fold(hw);  // rank-order deterministic, independent of arrival order
    std::shared_ptr<HwShared> shared = hw_;
    comm_.world().machine().engine().schedule_after(
        hw_latency(model_bytes), [shared] { ++shared->generation; });
  }
  while (hw.generation == generation) poll();
}

void CollEngine::hw_broadcast(std::byte* data, std::size_t bytes, int root) {
  const bool is_root = comm_.rank() == root;
  hw_rendezvous(is_root ? data : nullptr, is_root ? bytes : 0, bytes,
                [root](HwShared& hw) {
                  hw.result = hw.contrib[static_cast<std::size_t>(root)];
                });
  if (!is_root) std::memcpy(data, hw_->result.data(), bytes);
}

void CollEngine::hw_reduce_sum(double* x, std::size_t n, int root, bool all) {
  const int p = geometry_.p;
  hw_rendezvous(x, n * 8, n * 8, [n, p](HwShared& hw) {
    hw.result.assign(n * 8, std::byte{0});
    auto* out = reinterpret_cast<double*>(hw.result.data());
    for (int r = 0; r < p; ++r) {
      const auto* c = reinterpret_cast<const double*>(hw.contrib[r].data());
      for (std::size_t i = 0; i < n; ++i) out[i] += c[i];
    }
  });
  if (all || comm_.rank() == root) std::memcpy(x, hw_->result.data(), n * 8);
}

// ---------------------------------------------------------------------------
// Public collective operations
// ---------------------------------------------------------------------------

void CollEngine::broadcast(void* data, std::size_t bytes, armci::RankId root) {
  PGASQ_CHECK(!group_ || member_,
              << "rank " << comm_.rank() << " is not a member of group '"
              << label_ << "': collective call rejected");
  PGASQ_CHECK(data != nullptr && bytes > 0 && root >= 0 && root < geometry_.p);
  if (geometry_.p == 1) return;
  const Algo algo = config_.choose(Op::kBroadcast, bytes, geometry_);
  broadcast_with(algo, static_cast<std::byte*>(data), bytes, root,
                 config_.bcast_segment_bytes);
}

void CollEngine::broadcast_with(Algo algo, std::byte* d, std::size_t bytes,
                                int root, std::size_t seg) {
  OpTimer timer(*this, Op::kBroadcast, algo, bytes);
  switch (algo) {
    case Algo::kBinomial:
      bcast_binomial(d, bytes, root);
      break;
    case Algo::kTorusRing:
      bcast_ring(d, bytes, root, seg);
      break;
    case Algo::kHw:
      hw_broadcast(d, bytes, root);
      break;
    case Algo::kHier:
      hier_broadcast(d, bytes, root);
      break;
    default:
      PGASQ_CHECK(false, << "bad broadcast algorithm");
  }
}

void CollEngine::reduce_sum(double* x, std::size_t n, armci::RankId root) {
  PGASQ_CHECK(!group_ || member_,
              << "rank " << comm_.rank() << " is not a member of group '"
              << label_ << "': collective call rejected");
  PGASQ_CHECK(x != nullptr && n > 0 && root >= 0 && root < geometry_.p);
  if (geometry_.p == 1) return;
  const Algo algo = config_.choose(Op::kReduce, n * 8, geometry_);
  OpTimer timer(*this, Op::kReduce, algo, n * 8);
  switch (algo) {
    case Algo::kBinomial:
      reduce_binomial(x, n, root);
      break;
    case Algo::kTorusRing:
      allreduce_ring(x, n);  // every rank ends with the result; fine
      break;
    case Algo::kHw:
      hw_reduce_sum(x, n, root, /*all=*/false);
      break;
    case Algo::kHier:
      hier_reduce_sum(x, n, root, /*all=*/false);
      break;
    default:
      PGASQ_CHECK(false, << "bad reduce algorithm");
  }
}

void CollEngine::allreduce_sum(double* x, std::size_t n) {
  PGASQ_CHECK(!group_ || member_,
              << "rank " << comm_.rank() << " is not a member of group '"
              << label_ << "': collective call rejected");
  PGASQ_CHECK(x != nullptr && n > 0);
  if (geometry_.p == 1) return;
  const Algo algo = config_.choose(Op::kAllreduce, n * 8, geometry_);
  OpTimer timer(*this, Op::kAllreduce, algo, n * 8);
  switch (algo) {
    case Algo::kBinomial:
      reduce_binomial(x, n, 0);
      bcast_binomial(reinterpret_cast<std::byte*>(x), n * 8, 0);
      break;
    case Algo::kRecdbl:
      allreduce_recdbl(x, n);
      break;
    case Algo::kRab:
      allreduce_rab(x, n);
      break;
    case Algo::kTorusRing:
      allreduce_ring(x, n);
      break;
    case Algo::kHw:
      hw_reduce_sum(x, n, 0, /*all=*/true);
      break;
    case Algo::kHier:
      hier_reduce_sum(x, n, 0, /*all=*/true);
      break;
    default:
      PGASQ_CHECK(false, << "bad allreduce algorithm");
  }
}

void CollEngine::allgather(const void* in, std::size_t bytes, void* out) {
  PGASQ_CHECK(!group_ || member_,
              << "rank " << comm_.rank() << " is not a member of group '"
              << label_ << "': collective call rejected");
  PGASQ_CHECK(in != nullptr && out != nullptr && bytes > 0);
  auto* o = static_cast<std::byte*>(out);
  const auto* i = static_cast<const std::byte*>(in);
  if (geometry_.p == 1) {
    std::memcpy(o, i, bytes);
    return;
  }
  const Algo algo = config_.choose(Op::kAllgather, bytes, geometry_);
  OpTimer timer(*this, Op::kAllgather, algo, bytes);
  switch (algo) {
    case Algo::kBinomial:
      allgather_binomial(i, bytes, o);
      break;
    case Algo::kRecdbl:
      allgather_recdbl(i, bytes, o);
      break;
    case Algo::kTorusRing:
      allgather_ring(i, bytes, o);
      break;
    case Algo::kHier:
      hier_allgather(i, bytes, o);
      break;
    default:
      PGASQ_CHECK(false, << "bad allgather algorithm");
  }
}

void CollEngine::alltoall(const void* in, std::size_t bytes, void* out) {
  PGASQ_CHECK(!group_ || member_,
              << "rank " << comm_.rank() << " is not a member of group '"
              << label_ << "': collective call rejected");
  PGASQ_CHECK(in != nullptr && out != nullptr && bytes > 0);
  auto* o = static_cast<std::byte*>(out);
  const auto* i = static_cast<const std::byte*>(in);
  if (geometry_.p == 1) {
    std::memcpy(o, i, bytes);
    return;
  }
  const Algo algo = config_.choose(Op::kAlltoall, bytes, geometry_);
  OpTimer timer(*this, Op::kAlltoall, algo, bytes);
  switch (algo) {
    case Algo::kRecdbl:
      alltoall_pairwise_xor(i, bytes, o);
      break;
    case Algo::kTorusRing:
      alltoall_torus(i, bytes, o);
      break;
    default:
      PGASQ_CHECK(false, << "bad alltoall algorithm");
  }
}

// ---------------------------------------------------------------------------
// Geometry helpers
// ---------------------------------------------------------------------------

// Both helpers operate in schedule-position space: `v` is a world rank
// in full mode and a member index in group mode, matching what send()
// and the RingDim neighbour fields use.

std::vector<int> CollEngine::digits_of(int v) const {
  if (group_) return member_digits_[static_cast<std::size_t>(v)];
  const pami::Machine& machine = comm_.world().machine();
  const topo::RankMapping& map = machine.mapping();
  const topo::Coord5 c = machine.torus().coord_of(map.node_of_rank(v));
  std::vector<int> digits(rings_.size());
  for (std::size_t i = 0; i < rings_.size(); ++i) {
    digits[i] =
        rings_[i].torus_dim >= 0 ? c[rings_[i].torus_dim] : map.slot_of_rank(v);
  }
  return digits;
}

int CollEngine::rank_of_digits(const std::vector<int>& digits) const {
  if (group_) return digit_index_.at(digits);
  const pami::Machine& machine = comm_.world().machine();
  topo::Coord5 c{};
  int slot = 0;
  for (std::size_t i = 0; i < rings_.size(); ++i) {
    if (rings_[i].torus_dim >= 0) {
      c[rings_[i].torus_dim] = digits[i];
    } else {
      slot = digits[i];
    }
  }
  return machine.mapping().rank_of(machine.torus().node_of(c), slot);
}

}  // namespace pgasq::coll
