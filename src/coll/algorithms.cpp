// Software collective schedules on the torus. Every function here
// opens its own transport epoch (begin_data_op) sized to its exact
// slot needs; slot indices are allocated in the same deterministic
// order on every rank, which is what matches a sender's write to the
// receiver's wait.
#include <algorithm>
#include <cstring>
#include <utility>
#include <vector>

#include "coll/coll.hpp"
#include "util/error.hpp"

namespace pgasq::coll {

namespace {
int ceil_log2(int p) {
  int rounds = 0;
  while ((1 << rounds) < p) ++rounds;
  return rounds;
}
}  // namespace

// ---------------------------------------------------------------------------
// Broadcast
// ---------------------------------------------------------------------------

void CollEngine::bcast_binomial(std::byte* data, std::size_t bytes, int root) {
  begin_data_op(bytes, 1);
  const int p = geometry_.p, me = me_;
  const int vr = (me - root + p) % p;
  int mask = 1;
  while (mask < p) {
    if (vr & mask) {
      std::memcpy(data, recv_wait(0, bytes), bytes);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (vr + mask < p) send((vr + mask + root) % p, 0, data, bytes);
    mask >>= 1;
  }
}

void CollEngine::bcast_ring(std::byte* data, std::size_t bytes, int root,
                            std::size_t seg) {
  // Dimension-ordered chain tree: the root fires a chain down every
  // torus ring it sits on; each filled rank extends its own chain and
  // starts chains in all higher dimensions. Every hop is a nearest-
  // neighbour transfer, so large payloads ride the full 2 GB/s links
  // instead of the tree's long routes.
  //
  // With seg > 0 the payload is pipelined down the chains in segments
  // (slot s carries segment s): a rank forwards segment s while
  // segment s+1 is still in flight to it, so a D-deep chain costs
  // ~(D + nseg) segment times instead of D * nseg.
  const std::size_t nseg =
      (seg == 0 || seg >= bytes) ? 1 : (bytes + seg - 1) / seg;
  const std::size_t seg_bytes = nseg == 1 ? bytes : seg;
  begin_data_op(seg_bytes, nseg);
  const std::vector<int> mine = digits_of(me_);
  const std::vector<int> rootd = digits_of(root);
  const int dims = static_cast<int>(rings_.size());
  int k = -1;  // highest ring on which I differ from the root
  for (int d = 0; d < dims; ++d) {
    if (mine[d] != rootd[d]) k = d;
  }
  std::vector<int> children;  // chain extension first, then chain starts
  if (k >= 0) {
    const int m = rings_[k].size;
    const int next_digit = (mine[k] + 1) % m;
    if (next_digit != rootd[k]) {
      std::vector<int> child = mine;
      child[k] = next_digit;
      children.push_back(rank_of_digits(child));
    }
  }
  for (int d = k + 1; d < dims; ++d) {
    if (rings_[d].size <= 1) continue;
    std::vector<int> child = mine;
    child[d] = (mine[d] + 1) % rings_[d].size;
    children.push_back(rank_of_digits(child));
  }
  for (std::size_t s = 0; s < nseg; ++s) {
    const std::size_t off = s * seg_bytes;
    const std::size_t len = std::min(seg_bytes, bytes - off);
    if (k >= 0) std::memcpy(data + off, recv_wait(s, len), len);
    for (const int child : children) send(child, s, data + off, len);
  }
}

// ---------------------------------------------------------------------------
// Reduce / allreduce
// ---------------------------------------------------------------------------

void CollEngine::reduce_binomial(double* x, std::size_t n, int root) {
  const int p = geometry_.p, me = me_;
  const int rounds = ceil_log2(p);
  begin_data_op(n * 8, static_cast<std::size_t>(rounds));
  const int vr = (me - root + p) % p;
  for (int r = 0; r < rounds; ++r) {
    const int mask = 1 << r;
    if (vr & mask) {
      send(((vr - mask) + root) % p, static_cast<std::size_t>(r), x, n * 8);
      break;  // handed the partial to the parent; done
    }
    if (vr + mask < p) {
      const auto* in =
          reinterpret_cast<const double*>(recv_wait(static_cast<std::size_t>(r), n * 8));
      for (std::size_t i = 0; i < n; ++i) x[i] += in[i];
    }
  }
}

void CollEngine::allreduce_recdbl(double* x, std::size_t n) {
  const int p = geometry_.p, me = me_;
  int pof2 = 1;
  while (pof2 * 2 <= p) pof2 *= 2;
  const int rem = p - pof2;
  const int rounds = ceil_log2(pof2);
  // Slots: 0 = pre-fold, 1+r = exchange rounds, 1+rounds = post-fold.
  begin_data_op(n * 8, static_cast<std::size_t>(rounds) + 2);

  // Non-power-of-two fold (MPICH): the first 2*rem ranks pair up; odd
  // ranks lend their contribution to the even partner and sit out.
  int vr;
  if (me < 2 * rem) {
    if (me % 2 == 1) {
      send(me - 1, 0, x, n * 8);
      vr = -1;
    } else {
      const auto* in = reinterpret_cast<const double*>(recv_wait(0, n * 8));
      for (std::size_t i = 0; i < n; ++i) x[i] += in[i];
      vr = me / 2;
    }
  } else {
    vr = me - rem;
  }

  if (vr >= 0) {
    for (int r = 0; r < rounds; ++r) {
      const int pvr = vr ^ (1 << r);
      const int partner = pvr < rem ? pvr * 2 : pvr + rem;
      send(partner, static_cast<std::size_t>(1 + r), x, n * 8);
      const auto* in = reinterpret_cast<const double*>(
          recv_wait(static_cast<std::size_t>(1 + r), n * 8));
      // Partners compute a+b and b+a: bitwise equal, so all
      // participants converge on one identical vector.
      for (std::size_t i = 0; i < n; ++i) x[i] += in[i];
    }
  }

  if (me < 2 * rem) {
    if (me % 2 == 0) {
      send(me + 1, static_cast<std::size_t>(1 + rounds), x, n * 8);
    } else {
      std::memcpy(x, recv_wait(static_cast<std::size_t>(1 + rounds), n * 8), n * 8);
    }
  }
}

void CollEngine::allreduce_rab(double* x, std::size_t n) {
  // Rabenseifner's algorithm: recursive-halving reduce-scatter, then a
  // recursive-doubling allgather. Each rank moves ~2n doubles total
  // where recursive doubling moves n * log2(p), so it carries the
  // mid-size band — bandwidth-bound payloads that the torus-ring
  // bucket schedule cannot yet amortize (or cannot run at all). It is
  // also the flat fall-back the hierarchical leaders' group engine
  // picks up through its own selection table.
  const int p = geometry_.p, me = me_;
  int pof2 = 1;
  while (pof2 * 2 <= p) pof2 *= 2;
  const int rem = p - pof2;
  const int rounds = ceil_log2(pof2);
  // Slots: 0 = pre-fold, 1+r = halving rounds, 1+rounds+r = doubling
  // rounds, 1+2*rounds = post-fold.
  begin_data_op(n * 8, 2 * static_cast<std::size_t>(rounds) + 2);

  // Chunk c spans [c*cap, (c+1)*cap) clipped to n. Both sides of every
  // exchange derive bounds from the shared capacity, so remainders
  // (and ranks whose chunks clip to empty) stay in lockstep: a
  // zero-length range is skipped identically by sender and receiver.
  const std::size_t cap = (n + static_cast<std::size_t>(pof2) - 1) /
                          static_cast<std::size_t>(pof2);
  auto chunk_lo = [&](int c) {
    return std::min(static_cast<std::size_t>(c) * cap, n);
  };

  // Non-power-of-two fold (MPICH), exactly as in recursive doubling:
  // the first 2*rem ranks pair up; odd ranks lend their contribution
  // to the even partner and sit out.
  int vr;
  if (me < 2 * rem) {
    if (me % 2 == 1) {
      send(me - 1, 0, x, n * 8);
      vr = -1;
    } else {
      const auto* in = reinterpret_cast<const double*>(recv_wait(0, n * 8));
      for (std::size_t i = 0; i < n; ++i) x[i] += in[i];
      vr = me / 2;
    }
  } else {
    vr = me - rem;
  }

  auto wrank = [&](int v) { return v < rem ? v * 2 : v + rem; };

  if (vr >= 0) {
    // Reduce-scatter by recursive halving: the live chunk window
    // follows vr's bits from high to low, so after the last round this
    // rank owns exactly chunk vr, fully combined. Each chunk's final
    // value is produced by one rank only, so the allgathered result is
    // bitwise identical everywhere.
    int lo = 0, hi = pof2;
    for (int r = 0; r < rounds; ++r) {
      const int mask = pof2 >> (r + 1);
      const int partner = vr ^ mask;
      const int mid = lo + mask;
      const bool upper = (vr & mask) != 0;
      const int slo = upper ? lo : mid, shi = upper ? mid : hi;
      const int rlo = upper ? mid : lo, rhi = upper ? hi : mid;
      const std::size_t sa = chunk_lo(slo), sb = chunk_lo(shi);
      const std::size_t ra = chunk_lo(rlo), rb = chunk_lo(rhi);
      const std::size_t slot = static_cast<std::size_t>(1 + r);
      if (sb > sa) send(wrank(partner), slot, x + sa, (sb - sa) * 8);
      if (rb > ra) {
        const auto* in =
            reinterpret_cast<const double*>(recv_wait(slot, (rb - ra) * 8));
        for (std::size_t i = 0; i < rb - ra; ++i) x[ra + i] += in[i];
      }
      lo = rlo;
      hi = rhi;
    }
    // Allgather by recursive doubling, unwinding the halving: at step
    // r the owned window is the aligned mask-chunk block holding vr;
    // the partner holds the adjacent block.
    for (int r = 0; r < rounds; ++r) {
      const int mask = 1 << r;
      const int partner = vr ^ mask;
      const int base = vr & ~(2 * mask - 1);
      const bool upper = (vr & mask) != 0;
      const int slo = upper ? base + mask : base;
      const int rlo = upper ? base : base + mask;
      const std::size_t sa = chunk_lo(slo), sb = chunk_lo(slo + mask);
      const std::size_t ra = chunk_lo(rlo), rb = chunk_lo(rlo + mask);
      const std::size_t slot = static_cast<std::size_t>(1 + rounds + r);
      if (sb > sa) send(wrank(partner), slot, x + sa, (sb - sa) * 8);
      if (rb > ra) {
        std::memcpy(x + ra, recv_wait(slot, (rb - ra) * 8), (rb - ra) * 8);
      }
    }
  }

  if (me < 2 * rem) {
    if (me % 2 == 0) {
      send(me + 1, static_cast<std::size_t>(1 + 2 * rounds), x, n * 8);
    } else {
      std::memcpy(x, recv_wait(static_cast<std::size_t>(1 + 2 * rounds), n * 8),
                  n * 8);
    }
  }
}

void CollEngine::allreduce_ring(double* x, std::size_t n) {
  // Bucket allreduce over the torus rings: a ring reduce-scatter per
  // dimension going "down" (each level shrinks the live segment by the
  // ring extent), then ring allgathers back "up" in reverse order.
  // Every transfer is a ±1 neighbour hop; total traffic per rank is
  // ~2n doubles regardless of p — the bandwidth-optimal schedule.
  const int dims = static_cast<int>(rings_.size());
  PGASQ_CHECK(dims > 0);

  // Uniform per-level segment capacities: every member of a ring sees
  // the same [lo, hi) segment, and chunk boundaries derive from the
  // level capacity (not the actual segment length), so sender and
  // receiver always agree on chunk extents even with remainders.
  std::vector<std::size_t> cap(static_cast<std::size_t>(dims) + 1);
  cap[0] = n;
  for (int d = 0; d < dims; ++d) {
    cap[d + 1] = (cap[d] + static_cast<std::size_t>(rings_[d].size) - 1) /
                 static_cast<std::size_t>(rings_[d].size);
  }
  std::size_t total_slots = 0;
  for (const RingDim& ring : rings_) {
    total_slots += 2 * static_cast<std::size_t>(ring.size - 1);
  }
  begin_data_op(cap[1] * 8, std::max<std::size_t>(total_slots, 1));

  std::vector<std::pair<std::size_t, std::size_t>> seg(
      static_cast<std::size_t>(dims) + 1);
  seg[0] = {0, n};
  std::size_t slot = 0;

  auto chunk = [&](int d, int k) {
    const auto [lo, hi] = seg[d];
    const std::size_t a = std::min(lo + static_cast<std::size_t>(k) * cap[d + 1], hi);
    const std::size_t b = std::min(a + cap[d + 1], hi);
    return std::pair<std::size_t, std::size_t>(a, b);
  };

  // Down: reduce-scatter within each ring. After m-1 steps member g
  // owns the fully combined chunk (g+1) mod m, which becomes the
  // segment the next (deeper) ring works on.
  for (int d = 0; d < dims; ++d) {
    const RingDim& ring = rings_[d];
    const int m = ring.size, g = ring.digit;
    for (int s = 0; s < m - 1; ++s) {
      const auto [sa, sb] = chunk(d, (g - s + m) % m);
      send(ring.next, slot, x + sa, (sb - sa) * 8);
      const auto [ra, rb] = chunk(d, (g - s - 1 + m) % m);
      const auto* in = reinterpret_cast<const double*>(recv_wait(slot, (rb - ra) * 8));
      for (std::size_t i = 0; i < rb - ra; ++i) x[ra + i] += in[i];
      ++slot;
    }
    seg[d + 1] = chunk(d, (g + 1) % m);
  }

  // Up: ring allgather per dimension in reverse, reassembling each
  // level's segment from its members' owned chunks.
  for (int d = dims - 1; d >= 0; --d) {
    const RingDim& ring = rings_[d];
    const int m = ring.size, g = ring.digit;
    for (int s = 0; s < m - 1; ++s) {
      const auto [sa, sb] = chunk(d, (g + 1 - s + 2 * m) % m);
      send(ring.next, slot, x + sa, (sb - sa) * 8);
      const auto [ra, rb] = chunk(d, (g - s + 2 * m) % m);
      const auto* in = reinterpret_cast<const double*>(recv_wait(slot, (rb - ra) * 8));
      std::memcpy(x + ra, in, (rb - ra) * 8);
      ++slot;
    }
  }
}

// ---------------------------------------------------------------------------
// Allgather
// ---------------------------------------------------------------------------

void CollEngine::allgather_recdbl(const std::byte* in, std::size_t bytes,
                                  std::byte* out) {
  const int p = geometry_.p, me = me_;
  const int rounds = ceil_log2(p);
  begin_data_op(static_cast<std::size_t>(p / 2) * bytes,
                static_cast<std::size_t>(rounds));
  std::memcpy(out + static_cast<std::size_t>(me) * bytes, in, bytes);
  for (int r = 0; r < rounds; ++r) {
    const int partner = me ^ (1 << r);
    const std::size_t count = static_cast<std::size_t>(1) << r;
    const std::size_t base = static_cast<std::size_t>(me & ~((1 << r) - 1));
    const std::size_t pbase = static_cast<std::size_t>(partner & ~((1 << r) - 1));
    send(partner, static_cast<std::size_t>(r), out + base * bytes, count * bytes);
    std::memcpy(out + pbase * bytes,
                recv_wait(static_cast<std::size_t>(r), count * bytes), count * bytes);
  }
}

void CollEngine::allgather_ring(const std::byte* in, std::size_t bytes,
                                std::byte* out) {
  // Member-block forwarding around the rank ring. Under the ABCDET
  // mapping consecutive ranks pack a node (T) before stepping to the
  // torus neighbour, so each hop is local or nearest-neighbour.
  const int p = geometry_.p, me = me_;
  begin_data_op(bytes, static_cast<std::size_t>(p - 1));
  std::memcpy(out + static_cast<std::size_t>(me) * bytes, in, bytes);
  const int next = (me + 1) % p, prev = (me - 1 + p) % p;
  for (int s = 0; s < p - 1; ++s) {
    const int send_block = (me - s + p) % p;
    send(next, static_cast<std::size_t>(s),
         out + static_cast<std::size_t>(send_block) * bytes, bytes);
    const int recv_block = (prev - s + p) % p;
    std::memcpy(out + static_cast<std::size_t>(recv_block) * bytes,
                recv_wait(static_cast<std::size_t>(s), bytes), bytes);
  }
}

void CollEngine::allgather_binomial(const std::byte* in, std::size_t bytes,
                                    std::byte* out) {
  // Gather contiguous subtree blocks up the binomial tree rooted at 0,
  // then broadcast the assembled result down the same tree. Latency-
  // optimal; total traffic is p*bytes*log(p), so the selection table
  // only picks it for small gathers.
  const int p = geometry_.p, me = me_;
  const int rounds = ceil_log2(p);
  begin_data_op(static_cast<std::size_t>(p) * bytes,
                static_cast<std::size_t>(rounds) + 1);
  std::memcpy(out + static_cast<std::size_t>(me) * bytes, in, bytes);
  int count = 1, mask = 1, r = 0;
  while (mask < p) {
    if (me & mask) {
      send(me - mask, static_cast<std::size_t>(r),
           out + static_cast<std::size_t>(me) * bytes,
           static_cast<std::size_t>(count) * bytes);
      break;
    }
    const int src = me + mask;
    if (src < p) {
      const int scount = std::min(mask, p - src);
      std::memcpy(out + static_cast<std::size_t>(src) * bytes,
                  recv_wait(static_cast<std::size_t>(r),
                            static_cast<std::size_t>(scount) * bytes),
                  static_cast<std::size_t>(scount) * bytes);
      count += scount;
    }
    mask <<= 1;
    ++r;
  }
  // Binomial broadcast of the full buffer from rank 0, slot `rounds`.
  const std::size_t full = static_cast<std::size_t>(p) * bytes;
  int bmask = 1;
  while (bmask < p) {
    if (me & bmask) {
      std::memcpy(out, recv_wait(static_cast<std::size_t>(rounds), full), full);
      break;
    }
    bmask <<= 1;
  }
  bmask >>= 1;
  while (bmask > 0) {
    if (me + bmask < p) {
      send(me + bmask, static_cast<std::size_t>(rounds), out, full);
    }
    bmask >>= 1;
  }
}

// ---------------------------------------------------------------------------
// Alltoall
// ---------------------------------------------------------------------------

void CollEngine::alltoall_pairwise_xor(const std::byte* in, std::size_t bytes,
                                       std::byte* out) {
  // XOR-pairwise schedule: step s pairs rank r with r^s, so at every
  // step the machine exchanges in disjoint pairs. For non-power-of-two
  // p the steps run to the next power of two and a rank sits a step
  // out when its partner would fall past p — every unordered pair
  // {a, b} still meets exactly once, at s = a^b. Slot index = source
  // rank; all sends are issued non-blocking so injection overlaps
  // across steps.
  const int p = geometry_.p, me = me_;
  const int lim = 1 << ceil_log2(p);
  begin_data_op(bytes, static_cast<std::size_t>(p));
  std::memcpy(out + static_cast<std::size_t>(me) * bytes,
              in + static_cast<std::size_t>(me) * bytes, bytes);
  std::byte* stage =
      grow_local(stage_all_, stage_cap_, static_cast<std::size_t>(lim) * slot_bytes_);
  armci::Handle handle;
  for (int s = 1; s < lim; ++s) {
    const int partner = me ^ s;
    if (partner >= p) continue;
    send_nb(partner, static_cast<std::size_t>(me),
            in + static_cast<std::size_t>(partner) * bytes, bytes,
            stage + static_cast<std::size_t>(s) * slot_bytes_, handle);
  }
  for (int s = 1; s < lim; ++s) {
    const int partner = me ^ s;
    if (partner >= p) continue;
    std::memcpy(out + static_cast<std::size_t>(partner) * bytes,
                recv_wait(static_cast<std::size_t>(partner), bytes), bytes);
  }
  comm_.wait(handle);
}

void CollEngine::alltoall_torus(const std::byte* in, std::size_t bytes,
                                std::byte* out) {
  // Torus-hop-ordered schedule: targets sorted nearest-first, so
  // neighbour exchanges drain off the links before long-haul routes
  // pile contention onto the shared dimension-order paths. Works for
  // any p (positions are schedule positions; hop distances come from
  // the world ranks behind them); slot index = source position keeps
  // matching order-independent.
  const int p = geometry_.p, me = me_;
  begin_data_op(bytes, static_cast<std::size_t>(p));
  std::memcpy(out + static_cast<std::size_t>(me) * bytes,
              in + static_cast<std::size_t>(me) * bytes, bytes);
  const pami::Machine& machine = comm_.world().machine();
  const topo::Torus5D& torus = machine.torus();
  const topo::RankMapping& map = machine.mapping();
  const int my_node = map.node_of_rank(wrank(me));
  std::vector<std::pair<int, int>> order;  // (hops, target)
  order.reserve(static_cast<std::size_t>(p) - 1);
  for (int off = 1; off < p; ++off) {
    const int target = (me + off) % p;
    order.emplace_back(
        torus.hop_distance(my_node, map.node_of_rank(wrank(target))), target);
  }
  std::stable_sort(order.begin(), order.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  std::byte* stage =
      grow_local(stage_all_, stage_cap_, static_cast<std::size_t>(p) * slot_bytes_);
  armci::Handle handle;
  std::size_t area = 0;
  for (const auto& [hops, target] : order) {
    send_nb(target, static_cast<std::size_t>(me),
            in + static_cast<std::size_t>(target) * bytes, bytes,
            stage + area * slot_bytes_, handle);
    ++area;
  }
  for (int off = 1; off < p; ++off) {
    const int source = (me - off + p) % p;
    std::memcpy(out + static_cast<std::size_t>(source) * bytes,
                recv_wait(static_cast<std::size_t>(source), bytes), bytes);
  }
  comm_.wait(handle);
}

}  // namespace pgasq::coll
