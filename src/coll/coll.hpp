// CollEngine — topology-aware collective operations for the ARMCI
// runtime.
//
// One engine attaches lazily to each rank's Comm (in the Comm's opaque
// coll slot) the first time a collective is invoked; creation is itself
// collective, so the attach happens at the same program point on every
// rank. The engine owns
//
//   * a persistent scratch arena (one collective allocation, grown
//     geometrically) instead of the malloc/free-per-call pattern —
//     on BG/Q every registration costs a ~43 us memregion_create
//     (Table I), so reusing the arena is itself a measurable win;
//   * a slot/flag transport on that arena: each message is one put of
//     [flag word | payload], delivered atomically by the simulator,
//     with per-invocation-unique slots and an epoch-monotone flag so
//     fault-induced skew (retransmit backoff) can never alias a stale
//     message into the current invocation;
//   * software schedules on the torus — binomial/dissemination trees,
//     recursive doubling with the non-power-of-two fold, and
//     per-torus-dimension ring (bucket) pipelines driven by
//     topo::Torus5D neighbour geometry;
//   * a calibrated model of the BG/Q collective-logic hardware
//     (kHw): contributions combine in rank order at a shared
//     rendezvous and every participant releases after
//     startup + 2 * diameter * hop + bytes / 2 GB/s, the way the
//     real spanning-tree logic behaves (S II-A);
//   * the selection table (selection.hpp) choosing between all of the
//     above per invocation, and per-(op, algorithm) statistics that
//     core renders into the communication report.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "coll/selection.hpp"
#include "core/comm.hpp"
#include "sim/trace.hpp"

namespace pgasq::fault {
class Integrity;
}  // namespace pgasq::fault

namespace pgasq::coll {

struct HwShared;

/// Membership + labelling of a group-mode engine (process groups from
/// src/grp, and the hierarchy's internal node/leader groups).
/// Construction is collective over ALL live world ranks — including
/// ranks that are not members: they pass the same `control_slots`
/// (arena sizing must be uniform) and get a non-member engine whose
/// collective calls are rejected.
struct GroupSpec {
  /// World ranks in schedule order; empty for a non-member engine.
  std::vector<int> members;
  /// Stats / trace key (e.g. "node", "leaders", "g3"). Per-group
  /// CollStats land in Comm::group_coll_stats(label).
  std::string label;
  /// Width of the per-rank control arena in address-table slots; must
  /// be >= the largest member count of any group constructed at this
  /// collective point. 0 means members.size().
  std::size_t control_slots = 0;
};

class CollEngine {
 public:
  /// The engine attached to `comm`, created (collectively!) on first
  /// use. All ranks must make their first engine-backed call at the
  /// same collective program point.
  static CollEngine& of(armci::Comm& comm);

  explicit CollEngine(armci::Comm& comm);
  /// Shrunk-clique engine (fail-stop recovery): schedules run over
  /// `members` (ascending surviving world ranks) only. Members address
  /// each other by member-list position; the torus ring and hardware
  /// collective-logic schedules are unselectable (a survivor set has
  /// no clean torus decomposition).
  CollEngine(armci::Comm& comm, std::vector<int> members);
  /// Group-mode engine (see GroupSpec): schedules run over the group's
  /// members only, on a private two-tier arena — a world-collective
  /// control arena (software-barrier words + member address table) and
  /// per-member registered data areas whose bases are re-exchanged
  /// through the control arena on growth. The hardware collective
  /// logic is unselectable; torus rings survive when the member set
  /// decomposes into an axis-aligned box of (coordinate, slot) tuples.
  CollEngine(armci::Comm& comm, const GroupSpec& spec);
  ~CollEngine();
  CollEngine(const CollEngine&) = delete;
  CollEngine& operator=(const CollEngine&) = delete;

  /// Replaces `comm`'s attached engine with a fresh one over the
  /// surviving `members` (fail-stop communicator shrink). The old
  /// engine's arena is dropped freed-but-kept, so in-flight slot
  /// writes from the previous epoch land in dead memory harmlessly.
  static void rebuild_shrunk(armci::Comm& comm, std::vector<int> members);

  // --- Collective operations (all ranks must call, in order) -----------------

  void barrier();
  /// Root's buffer replicated everywhere.
  void broadcast(void* data, std::size_t bytes, armci::RankId root);
  /// Elementwise sum of every rank's x[0..n); result lands at root
  /// (other ranks' buffers are unspecified afterwards).
  void reduce_sum(double* x, std::size_t n, armci::RankId root);
  /// Elementwise sum, result replicated (bitwise identically) on every
  /// rank regardless of the algorithm chosen.
  void allreduce_sum(double* x, std::size_t n);
  /// Every rank contributes `bytes`; out[r*bytes ..] receives rank r's
  /// contribution. `out` is p * bytes.
  void allgather(const void* in, std::size_t bytes, void* out);
  /// Personalized exchange: in[r*bytes ..] goes to rank r, which
  /// stores it at out[me*bytes ..]. Both buffers are p * bytes.
  void alltoall(const void* in, std::size_t bytes, void* out);

  // --- Introspection ----------------------------------------------------------

  const CollConfig& config() const { return config_; }
  const Geometry& geometry() const { return geometry_; }
  /// What the selection table would run for `op` on `bytes` of payload.
  Algo algo_for(Op op, std::uint64_t bytes) const {
    return config_.choose(op, bytes, geometry_);
  }
  /// Group-mode membership: true except for a non-member group engine.
  bool is_member() const { return member_; }
  /// My schedule position (dense group rank in group mode, world rank
  /// in full mode, member index after a shrink); -1 for a non-member.
  int group_rank() const { return me_; }
  /// The schedule's member list (world ranks). Empty in full-clique
  /// mode, where position v IS world rank v.
  const std::vector<int>& group_members() const { return members_; }

 private:
  /// One ring the torus decomposes this clique into: a torus dimension
  /// of extent > 1, or the within-node T dimension.
  struct RingDim {
    int torus_dim;  ///< 0..4, or -1 for T
    int size;       ///< ring extent m
    int digit;      ///< my position on the ring
    int next;       ///< rank one step in +1 direction
    int prev;       ///< rank one step in -1 direction
  };

  class OpTimer;

  // Scratch arena & slot transport (coll.cpp).
  bool ensure_scratch(std::size_t data_bytes);
  /// Opens a data-moving invocation: sizes the slot layout, isolates
  /// it from the previous epoch (hardware-barrier rendezvous in full
  /// mode, software group rendezvous in group mode, zeroing the slots
  /// when the layout changed), and advances the epoch.
  void begin_data_op(std::size_t slot_payload, std::size_t n_slots);
  /// Group mode: quiesce the previous epoch without touching the
  /// world-wide hardware barrier (fence + dissemination over the
  /// control-arena words; same delivery guarantee for members).
  void group_rendezvous();
  /// Group mode: replace the data area with a fresh zero-filled
  /// registered allocation of >= `need` bytes and re-exchange member
  /// base addresses through the control arena. The old area is kept
  /// (never freed), so straggler writes and stale remote region
  /// handles stay harmless. Callers are synchronized (begin_data_op).
  void group_grow(std::size_t need);
  /// Where slot `slot` of member `to` / of me lives this epoch.
  armci::RemotePtr slot_remote(int to, std::size_t slot);
  std::byte* slot_local(std::size_t slot);
  void send(int to, std::size_t slot, const void* data, std::size_t bytes);
  /// Non-blocking send for all-to-all overlap; `stage` must stay live
  /// (hdr_ + bytes capacity) until the next epoch's rendezvous — under
  /// slot checksums the receiver may re-fetch the payload from it.
  void send_nb(int to, std::size_t slot, const void* data, std::size_t bytes,
               std::byte* stage, armci::Handle& handle);
  /// Blocks until this epoch's message lands in `slot`; returns its
  /// payload (valid until the next invocation). Under slot checksums
  /// (integrity + coll_check) a payload failing its header CRC is
  /// re-fetched from the sender's retained stage until it verifies.
  const std::byte* recv_wait(std::size_t slot, std::size_t bytes);
  /// Fills a slot-message header at `stage` (epoch, and under slot
  /// checksums the payload CRC / length / my world rank / the remote
  /// address of the retained payload at stage + hdr_).
  void fill_header(std::byte* stage, const void* data, std::size_t bytes);
  /// Bump-allocates a retained send stage for the open epoch; the
  /// block lives until the next epoch's rendezvous retires it
  /// (keep_retire), so receivers can re-fetch rejected payloads.
  std::byte* keep_alloc(std::size_t need);
  void keep_retire();

  // Barrier-word transport (fixed region at the base of the arena).
  void put_word(int to, int word, std::uint64_t value);
  void wait_word(int word, std::uint64_t at_least);

  /// Causal-trace id for the schedule hop delivering into `slot` of
  /// world rank `recv_wrank` this epoch. Sender and receiver compute
  /// the same id independently (no extra wire state), so Perfetto can
  /// pair the 's' at send time with the 'f' at recv_wait. High-bit
  /// tagged to stay disjoint from TraceRecorder's sequential ids; the
  /// per-engine salt keeps concurrent engines (world + group) from
  /// aliasing each other's ids.
  std::uint64_t hop_flow_id(int recv_wrank, std::size_t slot) const {
    return (1ULL << 63) | ((salt_ & 0xFFULL) << 55) |
           ((epoch_ & 0x1FFFFULL) << 38) |
           ((static_cast<std::uint64_t>(slot) & 0x3FFFFULL) << 20) |
           static_cast<std::uint64_t>(recv_wrank);
  }

  // Barrier schedules (coll.cpp).
  void run_barrier(Algo algo);
  void barrier_dissemination();
  void barrier_tree();
  void barrier_ring();

  // Software data schedules (algorithms.cpp).
  void bcast_binomial(std::byte* data, std::size_t bytes, int root);
  /// Chain-tree broadcast; `seg > 0` pipelines the payload down the
  /// chains in `seg`-byte segments (one slot per segment), so a hop
  /// forwards segment s while still receiving s+1. seg == 0 keeps the
  /// whole-payload-per-hop schedule.
  void bcast_ring(std::byte* data, std::size_t bytes, int root, std::size_t seg);
  void reduce_binomial(double* x, std::size_t n, int root);
  void allreduce_recdbl(double* x, std::size_t n);
  void allreduce_rab(double* x, std::size_t n);
  void allreduce_ring(double* x, std::size_t n);
  void allgather_binomial(const std::byte* in, std::size_t bytes, std::byte* out);
  void allgather_recdbl(const std::byte* in, std::size_t bytes, std::byte* out);
  void allgather_ring(const std::byte* in, std::size_t bytes, std::byte* out);
  void alltoall_pairwise_xor(const std::byte* in, std::size_t bytes, std::byte* out);
  void alltoall_torus(const std::byte* in, std::size_t bytes, std::byte* out);

  // Hierarchical node-aware schedules (hier.cpp): intra-node combine
  // over the shared-memory path, inter-node step via the leaders
  // group, pipelined intra-node fan-out.
  void ensure_hier();
  void hier_barrier();
  void hier_broadcast(std::byte* data, std::size_t bytes, int root);
  void hier_reduce_sum(double* x, std::size_t n, int root, bool all);
  void hier_allgather(const std::byte* in, std::size_t bytes, std::byte* out);
  /// Runs a specific broadcast schedule (bypassing selection) — the
  /// hierarchy's fan-out primitive on the node group.
  void broadcast_with(Algo algo, std::byte* data, std::size_t bytes, int root,
                      std::size_t seg);
  /// Effective fan-out segment size: the configured
  /// coll.bcast_segment_bytes, or the built-in default when unset.
  std::size_t fanout_segment() const;

  // Hardware collective-logic model (coll.cpp).
  void hw_broadcast(std::byte* data, std::size_t bytes, int root);
  void hw_reduce_sum(double* x, std::size_t n, int root, bool all);
  /// Rendezvous: contribute `bytes` of data, the last arrival runs
  /// `fold` (rank-order deterministic), and every participant releases
  /// after the modelled latency for `model_bytes`.
  void hw_rendezvous(const void* contribution, std::size_t bytes,
                     std::size_t model_bytes,
                     const std::function<void(HwShared&)>& fold);
  Time hw_latency(std::size_t bytes) const;

  // Geometry helpers.
  std::vector<int> digits_of(int rank) const;
  int rank_of_digits(const std::vector<int>& digits) const;
  void poll();

  armci::Comm& comm_;
  CollConfig config_;
  Geometry geometry_;
  /// Empty in full-clique mode; else the surviving world ranks (shrunk
  /// mode) or group members (group mode) this engine schedules over.
  std::vector<int> members_;
  /// This rank's schedule position: comm_.rank() in full mode, the
  /// member-list index after a shrink or in a group (-1: non-member).
  int me_ = 0;
  /// World rank behind schedule position `v`.
  int wrank(int v) const {
    return members_.empty() ? v : members_[static_cast<std::size_t>(v)];
  }
  std::vector<RingDim> rings_;
  std::shared_ptr<HwShared> hw_;

  // Group mode (see GroupSpec).
  bool group_ = false;
  bool member_ = true;
  std::string label_;
  /// Per-ring digit tuple of each member / tuple -> member position,
  /// for the boxy-group ring schedules (full mode derives digits from
  /// the machine mapping instead).
  std::vector<std::vector<int>> member_digits_;
  std::map<std::vector<int>, int> digit_index_;
  /// Registered data area (slots) + each member's published base.
  std::byte* data_local_ = nullptr;
  std::size_t data_cap_ = 0;
  std::vector<std::byte*> peer_data_;
  /// Where OpTimer accounts this engine's ops: the world CollStats, or
  /// the per-group table keyed by label_.
  armci::CollStats* stats_ = nullptr;
  /// Flow-id salt: per-Comm engine creation sequence (identical on
  /// every rank — engines are constructed collectively).
  std::uint64_t salt_ = 0;

  // Hierarchy children, built lazily at the first hier-selected
  // collective (a collective point, so construction lines up).
  std::unique_ptr<CollEngine> hier_node_;
  std::unique_ptr<CollEngine> hier_leaders_;

  armci::GlobalMem* scratch_ = nullptr;
  std::size_t layout_ = 0;  ///< slot_bytes the arena is currently keyed to
  std::size_t slot_bytes_ = 0;
  std::size_t n_slots_ = 0;
  /// Slot-message header width: 8 (epoch flag only), or 32 when the
  /// integrity layer's slot checksums are on — [epoch u64]
  /// [payload crc32c u32 | payload bytes u32] [src world rank i32 |
  /// pad] [remote address of the sender's retained payload u64]. Bit
  /// flips land past the wire-protected prefix, which covers the whole
  /// header, so the epoch flag and CRC themselves are never corrupted.
  std::size_t hdr_ = 8;
  /// Integrity layer when slot checksums are active, else nullptr.
  fault::Integrity* integrity_ = nullptr;
  /// Retained send stages (keep_alloc) for the open epoch: blocking
  /// sends stage here instead of the reusable send_buf_ so a receiver
  /// can re-fetch a corrupted slot payload. Freed-and-coalesced at the
  /// next epoch's rendezvous, when no re-fetch can still be pending.
  std::vector<std::pair<std::byte*, std::size_t>> keep_blocks_;
  std::size_t keep_used_ = 0;
  std::uint64_t epoch_ = 0;       ///< flag value of the open invocation
  std::uint64_t barrier_seq_ = 0; ///< software-barrier flag value
  bool in_alloc_ = false;  ///< inside malloc/free_collective: the
                           ///< barrier hook must not re-enter the engine
  /// Registered (malloc_local) staging buffers so collective messages
  /// take the RDMA path: a reusable one for blocking sends (rput
  /// snapshots the source at injection) and a per-message area for
  /// the non-blocking all-to-all fan-out.
  std::byte* grow_local(std::byte*& buf, std::size_t& capacity, std::size_t need);
  std::byte* send_buf_ = nullptr;
  std::size_t send_cap_ = 0;
  std::byte* stage_all_ = nullptr;
  std::size_t stage_cap_ = 0;

  sim::TraceRecorder* trace_ = nullptr;
  std::uint32_t track_ = 0;
};

}  // namespace pgasq::coll
