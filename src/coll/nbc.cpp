// NbcEngine — incremental non-blocking collective schedules stepped
// from the progress loop. See nbc.hpp for the transport design.
#include "coll/nbc.hpp"

#include <algorithm>
#include <cstring>
#include <string>

#include "fault/integrity.hpp"
#include "pami/machine.hpp"
#include "util/crc32c.hpp"
#include "util/error.hpp"

namespace pgasq::coll {

namespace {

constexpr std::size_t kInitialArenaBytes = 64 * 1024;
constexpr int kMaxSlotRefetches = 16;

int ceil_log2(int p) {
  int rounds = 0;
  while ((1 << rounds) < p) ++rounds;
  return rounds;
}

}  // namespace

/// One open non-blocking collective: its slot block, its schedule's
/// program counter, and the promise its future hangs off. Every
/// message of the op carries the flag value (seq << 4) | kind, so a
/// receiver can prove a landed message belongs to the op it is
/// stepping.
struct NbcEngine::Op {
  enum Kind : int { kBarrier = 1, kBcast = 2, kAllreduce = 3 };

  Op(int k, fut::Scheduler& sched) : kind(k), promise(sched) {}

  int kind;
  std::uint64_t seq = 0;
  std::size_t base = 0;     ///< arena byte offset of slot 0
  std::size_t pitch = 0;    ///< slot stride (hdr + pad8(payload))
  std::size_t payload = 0;  ///< max payload bytes per slot
  fut::Promise<fut::Unit> promise;
  armci::Handle sends;  ///< aggregates every hop this op injected
  bool schedule_done = false;

  int phase = 0;      ///< algorithm sub-phase
  int round = 0;      ///< current exchange round
  bool sent = false;  ///< current round's send already issued
  int rounds = 0;

  // ibcast.
  std::byte* data = nullptr;
  std::size_t bytes = 0;
  int root = 0;

  // iallreduce (mirrors allreduce_recdbl's fold bookkeeping).
  double* x = nullptr;
  std::size_t n = 0;
  int vr = 0, pof2 = 1, rem = 0;

  std::uint64_t flag() const {
    return (seq << 4) | static_cast<std::uint64_t>(kind);
  }
  const char* name() const {
    switch (kind) {
      case kBarrier:
        return "ibarrier";
      case kBcast:
        return "ibcast";
      default:
        return "iallreduce";
    }
  }
};

// ---------------------------------------------------------------------------
// Lifecycle
// ---------------------------------------------------------------------------

NbcEngine& NbcEngine::of(armci::Comm& comm) {
  std::shared_ptr<void>& slot = comm.nbc_slot();
  if (!slot) slot = std::make_shared<NbcEngine>(comm);
  return *static_cast<NbcEngine*>(slot.get());
}

NbcEngine::NbcEngine(armci::Comm& comm)
    : comm_(comm),
      rt_(async::Runtime::of(comm)),
      p_(comm.nprocs()),
      me_(comm.rank()),
      salt_(comm.next_coll_engine_salt()) {
  pami::Machine& machine = comm.world().machine();
  if (machine.integrity() != nullptr &&
      machine.integrity()->config().coll_check) {
    integrity_ = machine.integrity();
    hdr_ = 32;
  }
  if ((trace_ = machine.engine().trace()) != nullptr) {
    track_ = trace_->register_track("coll-nbc/r" + std::to_string(me_),
                                    !machine.rank_traced(me_));
  }
  if ((timeline_ = machine.timeline()) != nullptr) {
    open_series_ =
        timeline_->series("async.nbc_open_ops", obs::Timeline::Kind::kGauge);
  }
  poller_id_ = rt_.register_poller([this] { step_all(); });
}

NbcEngine::~NbcEngine() {
  // Open ops at teardown stay counted as pending futures: the
  // runtime's finalize quiescence check turns them into a diagnostic
  // abort. Never throw from here.
  rt_.unregister_poller(poller_id_);
  for (auto& [ptr, cap] : keep_blocks_) comm_.free_local(ptr);
  keep_blocks_.clear();
}

// ---------------------------------------------------------------------------
// Arena
// ---------------------------------------------------------------------------

void NbcEngine::ensure_arena(std::size_t need) {
  std::size_t cap = kInitialArenaBytes;
  while (cap < need) cap *= 2;
  // Collective and zero-filled: every rank allocates at its first nbc
  // initiation, which the collective-initiation contract aligns.
  arena_ = &comm_.malloc_collective(cap);
  cap_ = cap;
}

void NbcEngine::wrap(std::size_t need) {
  ++wraps_;
  // Drive every open op home: each progress pass runs the poller,
  // and every rank reaches this same wrap before initiating the op
  // that overflowed the cursor.
  comm_.progress_until([this] { return open_.empty(); });
  // Fences first: every slot write is delivered before anyone wipes.
  comm_.barrier_hw();
  if (need > cap_) {
    comm_.free_collective(*arena_);
    std::size_t cap = cap_;
    while (cap < need) cap *= 2;
    arena_ = &comm_.malloc_collective(cap);  // fresh zero-filled slab
    cap_ = cap;
  } else {
    std::memset(arena_->local(me_), 0, cap_);
    comm_.barrier_hw();  // nobody injects the new cycle into a mid-wipe peer
  }
  keep_retire();  // no re-fetch can target a stage past the rendezvous
  cursor_ = 0;
}

void NbcEngine::open_slots(Op& op, std::size_t slots, std::size_t payload) {
  op.payload = payload;
  op.pitch = hdr_ + ((payload + 7) & ~std::size_t{7});
  const std::size_t need = op.pitch * slots;
  if (arena_ == nullptr) {
    ensure_arena(need);
  } else if (cursor_ + need > cap_) {
    wrap(need);
  }
  op.base = cursor_;
  cursor_ += need;
}

std::byte* NbcEngine::keep_alloc(std::size_t need) {
  need = (need + 7) & ~std::size_t{7};
  if (keep_blocks_.empty() || keep_blocks_.back().second - keep_used_ < need) {
    std::size_t cap =
        keep_blocks_.empty() ? std::size_t{16} * 1024 : keep_blocks_.back().second * 2;
    while (cap < need) cap *= 2;
    keep_blocks_.emplace_back(static_cast<std::byte*>(comm_.malloc_local(cap)),
                              cap);
    keep_used_ = 0;
  }
  std::byte* p = keep_blocks_.back().first + keep_used_;
  keep_used_ += need;
  return p;
}

void NbcEngine::keep_retire() {
  if (keep_blocks_.size() > 1) {
    std::size_t total = 0;
    for (const auto& [ptr, cap] : keep_blocks_) {
      total += cap;
      comm_.free_local(ptr);
    }
    keep_blocks_.clear();
    keep_blocks_.emplace_back(
        static_cast<std::byte*>(comm_.malloc_local(total)), total);
  }
  keep_used_ = 0;
}

// ---------------------------------------------------------------------------
// Hop transport
// ---------------------------------------------------------------------------

void NbcEngine::send_hop(Op& op, int to, std::size_t slot, const void* data,
                         std::size_t bytes) {
  PGASQ_CHECK(bytes <= op.payload);
  std::byte* stage = keep_alloc(hdr_ + bytes);
  if (bytes > 0) std::memcpy(stage + hdr_, data, bytes);
  const std::uint64_t flag = op.flag();
  std::memcpy(stage, &flag, 8);
  if (hdr_ != 8) {
    const std::uint32_t crc = crc32c(stage + hdr_, bytes);
    const std::uint32_t len = static_cast<std::uint32_t>(bytes);
    const std::int32_t src = me_;
    const std::int32_t pad = 0;
    const std::uint64_t addr = reinterpret_cast<std::uint64_t>(stage + hdr_);
    std::memcpy(stage + 8, &crc, 4);
    std::memcpy(stage + 12, &len, 4);
    std::memcpy(stage + 16, &src, 4);
    std::memcpy(stage + 20, &pad, 4);
    std::memcpy(stage + 24, &addr, 8);
  }
  if (trace_ != nullptr) {
    trace_->flow_point('s', track_, "nbc hop", hop_flow_id(to, op.seq, slot),
                       comm_.now(),
                       {{"bytes", std::to_string(bytes)},
                        {"to", "rank" + std::to_string(to)},
                        {"op", op.name()}});
  }
  // One put carries flag + payload, delivered atomically, so a raised
  // flag implies a complete payload. The op's handle aggregates every
  // hop; completion requires them locally drained.
  comm_.nb_put(stage, arena_->at(to, op.base + slot * op.pitch), hdr_ + bytes,
               op.sends);
  ++hops_sent_;
}

const std::byte* NbcEngine::hop_payload(Op& op, std::size_t slot,
                                        std::size_t bytes) {
  std::byte* base = arena_->local(me_) + op.base + slot * op.pitch;
  const volatile std::uint64_t* flag =
      reinterpret_cast<const volatile std::uint64_t*>(base);
  const std::uint64_t got = *flag;
  if (got == 0) return nullptr;  // not landed yet — step again later
  PGASQ_CHECK(got == op.flag(),
              << "nbc slot " << slot << " of " << op.name() << " #" << op.seq
              << " holds flag " << got << ", expected " << op.flag()
              << " — ranks initiated different non-blocking collective "
                 "sequences (divergence)");
  if (hdr_ != 8) {
    fault::IntegrityStats& is = integrity_->stats();
    ++is.coll_slot_checks;
    std::uint32_t want = 0, len = 0;
    std::int32_t src = -1;
    std::uint64_t addr = 0;
    std::memcpy(&want, base + 8, 4);
    std::memcpy(&len, base + 12, 4);
    std::memcpy(&src, base + 16, 4);
    std::memcpy(&addr, base + 24, 8);
    PGASQ_CHECK(len == bytes, << "nbc slot " << slot << " header claims "
                              << len << " bytes, expected " << bytes);
    int refetches = 0;
    while (crc32c(base + hdr_, bytes) != want) {
      ++is.coll_slot_rejects;
      PGASQ_CHECK(++refetches <= kMaxSlotRefetches,
                  << "nbc slot " << slot << " payload failed its CRC "
                  << refetches << " times (re-fetched from rank " << src
                  << "); giving up");
      ++is.coll_slot_refetches;
      if (trace_ != nullptr) {
        trace_->instant(track_, "nbc slot refetch", comm_.now());
      }
      // Blocking, but bounded and rare; the re-fetch rides the wire
      // too, so re-verify until clean.
      comm_.get({src, reinterpret_cast<std::byte*>(addr)}, base + hdr_, bytes);
    }
  }
  if (trace_ != nullptr) {
    trace_->flow_point('f', track_, "nbc hop recv",
                       hop_flow_id(me_, op.seq, slot), comm_.now(),
                       {{"bytes", std::to_string(bytes)}});
  }
  return base + hdr_;
}

// ---------------------------------------------------------------------------
// Initiation
// ---------------------------------------------------------------------------

fut::Future<fut::Unit> NbcEngine::start(std::unique_ptr<Op> op) {
  ++ops_started_;
  // An open op counts as a pending future: an abandoned one (rank
  // divergence, a dropped future) is caught by the runtime's finalize
  // quiescence check instead of hanging silently. It is also a poll
  // source — its arrival flags are one-sided writes, so blocking waits
  // must poll rather than park while it is open.
  rt_.note_pending(+1);
  rt_.note_poll_source(+1);
  if (trace_ != nullptr) {
    trace_->instant(track_, std::string(op->name()) + " start", comm_.now());
  }
  fut::Future<fut::Unit> f = op->promise.future();
  open_.push_back(std::move(op));
  sample_gauge();
  // Step immediately: the first rounds' send hops go out at
  // initiation, not at the next progress pass.
  step_all();
  return f;
}

fut::Future<fut::Unit> NbcEngine::ibarrier() {
  if (p_ == 1) return fut::make_ready(rt_, fut::Unit{});
  auto op = std::make_unique<Op>(Op::kBarrier, rt_);
  op->seq = ++seq_;
  op->rounds = ceil_log2(p_);
  open_slots(*op, static_cast<std::size_t>(op->rounds), 0);
  return start(std::move(op));
}

fut::Future<fut::Unit> NbcEngine::ibcast(void* data, std::size_t bytes,
                                         armci::RankId root) {
  PGASQ_CHECK(data != nullptr && bytes > 0 && root >= 0 && root < p_);
  if (p_ == 1) return fut::make_ready(rt_, fut::Unit{});
  auto op = std::make_unique<Op>(Op::kBcast, rt_);
  op->seq = ++seq_;
  op->data = static_cast<std::byte*>(data);
  op->bytes = bytes;
  op->root = static_cast<int>(root);
  open_slots(*op, 1, bytes);
  return start(std::move(op));
}

fut::Future<fut::Unit> NbcEngine::iallreduce_sum(double* x, std::size_t n) {
  PGASQ_CHECK(x != nullptr && n > 0);
  if (p_ == 1) return fut::make_ready(rt_, fut::Unit{});
  auto op = std::make_unique<Op>(Op::kAllreduce, rt_);
  op->seq = ++seq_;
  op->x = x;
  op->n = n;
  while (op->pof2 * 2 <= p_) op->pof2 *= 2;
  op->rem = p_ - op->pof2;
  op->rounds = ceil_log2(op->pof2);
  // Slots: 0 = pre-fold, 1+r = exchange rounds, 1 + rounds =
  // post-fold — the exact allreduce_recdbl layout.
  open_slots(*op, static_cast<std::size_t>(op->rounds) + 2, n * 8);
  return start(std::move(op));
}

// ---------------------------------------------------------------------------
// Stepping
// ---------------------------------------------------------------------------

void NbcEngine::step_all() {
  if (stepping_) return;
  stepping_ = true;
  for (std::size_t i = 0; i < open_.size();) {
    if (step(*open_[i])) {
      std::unique_ptr<Op> done = std::move(open_[i]);
      open_.erase(open_.begin() + static_cast<std::ptrdiff_t>(i));
      finish(*done);
    } else {
      ++i;
    }
  }
  stepping_ = false;
}

bool NbcEngine::step(Op& op) {
  if (!op.schedule_done) {
    switch (op.kind) {
      case Op::kBarrier:
        op.schedule_done = step_barrier(op);
        break;
      case Op::kBcast:
        op.schedule_done = step_bcast(op);
        break;
      default:
        op.schedule_done = step_allreduce(op);
        break;
    }
  }
  // Completion: the schedule consumed every receive AND every injected
  // hop drained locally. (Stages stay retained for re-fetch until the
  // next wrap regardless; the drain condition rate-limits initiation.)
  return op.schedule_done && (!op.sends.used() || op.sends.done());
}

bool NbcEngine::step_barrier(Op& op) {
  // Dissemination: round r sends a flag to (me + 2^r) and consumes one
  // from (me - 2^r); after ceil(log2 p) rounds everyone has
  // transitively heard from everyone.
  while (op.round < op.rounds) {
    const int gap = 1 << op.round;
    if (!op.sent) {
      send_hop(op, (me_ + gap) % p_, static_cast<std::size_t>(op.round),
               nullptr, 0);
      op.sent = true;
    }
    if (hop_payload(op, static_cast<std::size_t>(op.round), 0) == nullptr) {
      return false;
    }
    ++op.round;
    op.sent = false;
  }
  return true;
}

bool NbcEngine::step_bcast(Op& op) {
  // Binomial tree, bcast_binomial's schedule: each non-root receives
  // exactly once (its own slot 0), then fans out to its children.
  const int vr = (me_ - op.root + p_) % p_;
  if (op.phase == 0) {
    if (vr != 0) {
      const std::byte* in = hop_payload(op, 0, op.bytes);
      if (in == nullptr) return false;
      std::memcpy(op.data, in, op.bytes);
    }
    op.phase = 1;
  }
  // Children sit at the mask positions below my join bit (below p for
  // the root).
  int mask = 1;
  while (mask < p_ && (vr & mask) == 0) mask <<= 1;
  mask >>= 1;
  while (mask > 0) {
    if (vr + mask < p_) {
      send_hop(op, (vr + mask + op.root) % p_, 0, op.data, op.bytes);
    }
    mask >>= 1;
  }
  return true;
}

bool NbcEngine::step_allreduce(Op& op) {
  // Mirrors allreduce_recdbl exactly (same fold, same partner order,
  // partners computing a+b and b+a) so the result is bitwise identical
  // to the blocking recursive-doubling allreduce.
  const std::size_t nb = op.n * 8;
  if (op.phase == 0) {  // MPICH pre-fold down to a power of two
    if (me_ < 2 * op.rem) {
      if (me_ % 2 == 1) {
        send_hop(op, me_ - 1, 0, op.x, nb);
        op.vr = -1;
        op.phase = 2;  // lent my contribution; straight to post-fold
        op.sent = false;
      } else {
        const std::byte* in = hop_payload(op, 0, nb);
        if (in == nullptr) return false;
        const auto* v = reinterpret_cast<const double*>(in);
        for (std::size_t i = 0; i < op.n; ++i) op.x[i] += v[i];
        op.vr = me_ / 2;
        op.phase = 1;
      }
    } else {
      op.vr = me_ - op.rem;
      op.phase = 1;
    }
  }
  if (op.phase == 1) {  // recursive-doubling exchange rounds
    while (op.round < op.rounds) {
      const int pvr = op.vr ^ (1 << op.round);
      const int partner = pvr < op.rem ? pvr * 2 : pvr + op.rem;
      const std::size_t slot = static_cast<std::size_t>(1 + op.round);
      if (!op.sent) {
        send_hop(op, partner, slot, op.x, nb);
        op.sent = true;
      }
      const std::byte* in = hop_payload(op, slot, nb);
      if (in == nullptr) return false;
      const auto* v = reinterpret_cast<const double*>(in);
      for (std::size_t i = 0; i < op.n; ++i) op.x[i] += v[i];
      ++op.round;
      op.sent = false;
    }
    op.phase = 2;
  }
  // Post-fold: evens hand the full result back to their odd partner.
  if (me_ < 2 * op.rem) {
    const std::size_t slot = static_cast<std::size_t>(1 + op.rounds);
    if (me_ % 2 == 0) {
      send_hop(op, me_ + 1, slot, op.x, nb);
    } else {
      const std::byte* in = hop_payload(op, slot, nb);
      if (in == nullptr) return false;
      std::memcpy(op.x, in, nb);
    }
  }
  return true;
}

void NbcEngine::finish(Op& op) {
  ++ops_completed_;
  rt_.note_pending(-1);
  rt_.note_poll_source(-1);
  if (trace_ != nullptr) {
    trace_->instant(track_, std::string(op.name()) + " done", comm_.now());
  }
  sample_gauge();
  // Continuations do NOT run inline here: fulfill enqueues them on the
  // runtime's FIFO queue, drained after the poller pass, so chained
  // work observes a deterministic order.
  op.promise.fulfill(fut::Unit{});
}

void NbcEngine::sample_gauge() {
  if (timeline_ == nullptr) return;
  timeline_->sample(open_series_, comm_.now(),
                    static_cast<double>(open_.size()));
}

}  // namespace pgasq::coll
