// Collective algorithm selection (the "collective logic" layer).
//
// BG/Q ships two very different collective substrates: the 5D torus
// (point-to-point, what the ARMCI runtime of the paper drives) and the
// collective-logic / global-interrupt hardware that combines or
// broadcasts along a spanning tree embedded in the same wires at
// ~2 GB/s (S II-A). A PGAS runtime therefore picks, per collective
// invocation, between software schedules on the torus and the hardware
// path. This module is that decision table: message size x participant
// count x geometry -> algorithm, with `coll.*` option overrides.
#pragma once

#include <cstdint>
#include <string>

#include "core/types.hpp"

namespace pgasq::coll {

/// Collective operations; values index armci::CollStats / kCollOpNames.
enum class Op : int {
  kBarrier = 0,
  kBroadcast = 1,
  kReduce = 2,
  kAllreduce = 3,
  kAllgather = 4,
  kAlltoall = 5,
};

/// Algorithms; values index armci::CollStats / kCollAlgoNames.
enum class Algo : int {
  kAuto = -1,      ///< selection-table choice (never recorded in stats)
  kBinomial = 0,   ///< binomial / dissemination tree on ranks
  kRecdbl = 1,     ///< recursive doubling / halving (XOR partners)
  kTorusRing = 2,  ///< per-torus-dimension ring / bucket schedule
  kHw = 3,         ///< BG/Q collective-logic hardware model
  kHier = 4,       ///< node-aware two-level (shm combine + leaders)
  kRab = 5,        ///< Rabenseifner reduce-scatter + allgather allreduce
};

const char* op_name(Op op);
const char* algo_name(Algo algo);
/// Parses "binomial" / "recdbl" / "torus-ring" / "hw" / "hier" /
/// "rab" / "auto". Throws pgasq::Error on anything else.
Algo parse_algo(const std::string& name);

/// Participant-geometry facts the selection table keys on.
struct Geometry {
  int p = 1;               ///< participants (whole clique, or survivors)
  bool pow2 = false;       ///< p is a power of two
  int torus_dims = 0;      ///< torus dimensions of extent > 1 (incl. T)
  int diameter = 0;        ///< network diameter in hops
  bool link_faults = false;  ///< fault plan disables specific links
  /// Fault plan flips payload bits (fault.corrupt_prob > 0). The
  /// hardware collective-logic model moves no torus packets, so it can
  /// neither suffer nor detect corruption; it is deselected so
  /// corruption runs exercise the CRC-checked software schedules.
  bool corruption = false;
  /// Fail-stop communicator shrink: participants are a survivor subset
  /// of the clique. The hardware collective logic (which spans the
  /// whole partition) and the torus ring schedules (which need the
  /// full per-dimension rings) are unselectable.
  bool shrunk = false;
  /// Process-group engine (src/grp, or a hierarchy's internal child
  /// engines): the hardware collective logic spans the whole partition
  /// and is unselectable; rings survive when the member set decomposes
  /// into torus rings (torus_dims > 0).
  bool group = false;
  int ppn = 1;    ///< ranks per node (c) under the active mapping
  int nodes = 1;  ///< node count under the active mapping
  /// Two-level node-aware schedules are runnable: full world clique
  /// with ppn > 1 and more than one node.
  bool hier = false;
};

/// Tunables + per-op forced algorithms, parsed from the raw `coll.*`
/// key/value pairs that core carries in armci::Options::coll.
struct CollConfig {
  Algo force[armci::CollStats::kOps] = {Algo::kAuto, Algo::kAuto, Algo::kAuto,
                                        Algo::kAuto, Algo::kAuto, Algo::kAuto};

  /// Hardware collective-logic model (coll.hw=0 disables it; it is
  /// also deselected automatically when the fault plan fails links,
  /// so recovery tests exercise the software schedules).
  bool hw_enabled = true;
  double hw_gbps = 2.0;       ///< collective-network streaming rate
  double hw_hop_ns = 35.0;    ///< per-hop combine/forward latency
  double hw_startup_us = 2.0; ///< arm/fire cost (GI-barrier class)

  /// Below this payload, latency-optimal trees win over bandwidth
  /// schedules.
  std::uint64_t small_bytes = 2048;
  /// Torus-ring bucket schedules need enough payload per participant
  /// and enough participants to amortize their p-proportional step
  /// count.
  std::uint64_t ring_min_bytes = 64 * 1024;
  int ring_min_ranks = 16;
  /// Hierarchical (node-aware) schedules are preferred on the software
  /// path once this many ranks share a node: below that the intra-node
  /// combine saves too little inter-node traffic to pay for its extra
  /// phase (Table II's c sweep).
  int hier_min_ppn = 8;
  /// Segment size for the pipelined chain-tree broadcast; 0 keeps the
  /// whole-payload-per-hop schedule. The hierarchical fan-out always
  /// pipelines (with this value, or its own default when unset).
  std::uint64_t bcast_segment_bytes = 0;

  static CollConfig from_options(const armci::Options& options);

  /// The selection table. Returns the algorithm to run for `op` on
  /// `bytes` of payload: the forced override if set, otherwise the
  /// size/count/geometry default — in both cases normalized to an
  /// algorithm the op supports on this geometry (see normalize).
  Algo choose(Op op, std::uint64_t bytes, const Geometry& g) const;

  /// Maps (op, algo) to a supported combination: ops without a
  /// hardware path fall back to software, recursive doubling falls
  /// back when p is not a power of two and the op has no fold step,
  /// and the hardware model is refused while torus links are failed.
  Algo normalize(Op op, Algo algo, const Geometry& g) const;
};

}  // namespace pgasq::coll
