// NbcEngine — non-blocking collectives (ibarrier / ibcast /
// iallreduce) for the ARMCI runtime.
//
// Unlike CollEngine's blocking schedules, which poll inside the call,
// an NbcEngine operation returns a fut::Future immediately and the
// schedule advances incrementally: each progress pass (the async
// runtime's poller hook) steps every open operation as far as its
// arrived messages allow, so schedule hops genuinely interleave with
// application puts/gets between initiation and wait — overlap, not
// wait-at-the-end blocking in disguise.
//
// Transport: a dedicated collective arena, bump-allocated into
// per-operation slot blocks at initiation. Initiations are collective
// and ordered (every rank must start the same nbc ops in the same
// order with the same shapes), so all ranks compute identical slot
// offsets with no extra wire traffic. Each message is one put of
// [flag | payload]; the flag value encodes the operation's global
// sequence number and kind, so a receiver can verify the landed
// message belongs to the op it is stepping — rank divergence aborts
// with a diagnostic instead of silently mixing payloads. When the
// arena cursor wraps, the engine drives every open op to completion,
// quiesces with the hardware barrier, and re-zeroes — rare, blocking,
// and identical on every rank.
//
// iallreduce mirrors allreduce_recdbl's exact schedule (the MPICH
// non-power-of-two fold, the same partner order, a+b vs b+a), so its
// result is bitwise identical to the blocking recursive-doubling
// allreduce.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <utility>
#include <vector>

#include "async/async.hpp"
#include "core/comm.hpp"
#include "sim/trace.hpp"

namespace pgasq::fault {
class Integrity;
}  // namespace pgasq::fault

namespace pgasq::coll {

class NbcEngine {
 public:
  /// The engine attached to `comm`, created on first use. Creation —
  /// like every nbc initiation — is collective: all ranks must make
  /// their first call at the same program point (the arena allocation
  /// rendezvouses).
  static NbcEngine& of(armci::Comm& comm);

  explicit NbcEngine(armci::Comm& comm);
  ~NbcEngine();
  NbcEngine(const NbcEngine&) = delete;
  NbcEngine& operator=(const NbcEngine&) = delete;

  // --- Non-blocking collectives (collective initiation order!) -------------
  //
  // Each returns a future fulfilled when this rank's part of the
  // schedule completes (all receives consumed, all sends injected and
  // locally drained). The caller must keep the payload buffer alive
  // and untouched until then (DESIGN.md §5 applies to the whole chain
  // when the future is composed onward).

  fut::Future<fut::Unit> ibarrier();
  /// Root's buffer replicated everywhere (binomial tree).
  fut::Future<fut::Unit> ibcast(void* data, std::size_t bytes,
                                armci::RankId root);
  /// Elementwise sum, replicated bitwise identically on every rank;
  /// in-place on x[0..n). Result bitwise equal to the blocking
  /// recursive-doubling allreduce.
  fut::Future<fut::Unit> iallreduce_sum(double* x, std::size_t n);

  // --- Introspection --------------------------------------------------------

  std::size_t open_ops() const { return open_.size(); }
  std::uint64_t ops_started() const { return ops_started_; }
  std::uint64_t ops_completed() const { return ops_completed_; }
  std::uint64_t hops_sent() const { return hops_sent_; }
  std::uint64_t arena_wraps() const { return wraps_; }

 private:
  struct Op;

  /// Opens the per-op slot block: wraps/grows the arena when the
  /// cursor would overflow, then bump-allocates `slots` slots of
  /// hdr_ + pad8(payload) bytes each.
  void open_slots(Op& op, std::size_t slots, std::size_t payload);
  /// Drive every open op to completion, quiesce the fabric, re-zero
  /// the arena (growing to >= `need` data bytes if necessary) and
  /// reset the cursor. Blocking and collective-identical on all ranks.
  void wrap(std::size_t need);
  void ensure_arena(std::size_t need);

  /// One [flag | payload] put into slot `slot` of `to`'s block for
  /// this op; the stage is retained until the next wrap so a receiver
  /// can re-fetch a payload that failed its slot checksum.
  void send_hop(Op& op, int to, std::size_t slot, const void* data,
                std::size_t bytes);
  /// Payload of `slot` if this op's message has landed (flag matches),
  /// else nullptr. Verifies + re-fetches under slot checksums; aborts
  /// on a flag from a different op (initiation-order divergence).
  const std::byte* hop_payload(Op& op, std::size_t slot, std::size_t bytes);

  std::byte* keep_alloc(std::size_t need);
  void keep_retire();

  /// Steps every open op in initiation order; completed ops fulfill
  /// their futures and retire. Re-entrancy-guarded (a step may block
  /// briefly in a checksum re-fetch, whose progress re-enters here).
  void step_all();
  /// Advances one op; true when complete.
  bool step(Op& op);
  bool step_barrier(Op& op);
  bool step_bcast(Op& op);
  bool step_allreduce(Op& op);

  fut::Future<fut::Unit> start(std::unique_ptr<Op> op);
  void finish(Op& op);
  void sample_gauge();

  std::uint64_t hop_flow_id(int recv_rank, std::uint64_t seq,
                            std::size_t slot) const {
    return (1ULL << 63) | ((salt_ & 0xFFULL) << 55) |
           ((seq & 0x1FFFFULL) << 38) |
           ((static_cast<std::uint64_t>(slot) & 0x3FFFFULL) << 20) |
           static_cast<std::uint64_t>(recv_rank);
  }

  armci::Comm& comm_;
  async::Runtime& rt_;
  int p_;
  int me_;

  armci::GlobalMem* arena_ = nullptr;
  std::size_t cap_ = 0;     ///< arena data bytes per rank
  std::size_t cursor_ = 0;  ///< bump cursor (identical on all ranks)
  std::uint64_t seq_ = 0;   ///< per-op sequence (collective, monotone)

  /// Slot-message header width: 8 (flag only) or 32 under the
  /// integrity layer's slot checksums — same wire layout as
  /// CollEngine's ([flag][crc|len][src|pad][stage addr]).
  std::size_t hdr_ = 8;
  fault::Integrity* integrity_ = nullptr;

  /// Retained send stages; retired (coalesced) at wrap, when no
  /// re-fetch can still target one.
  std::vector<std::pair<std::byte*, std::size_t>> keep_blocks_;
  std::size_t keep_used_ = 0;

  std::deque<std::unique_ptr<Op>> open_;
  std::size_t poller_id_ = 0;
  bool stepping_ = false;

  std::uint64_t ops_started_ = 0;
  std::uint64_t ops_completed_ = 0;
  std::uint64_t hops_sent_ = 0;
  std::uint64_t wraps_ = 0;

  std::uint64_t salt_ = 0;
  sim::TraceRecorder* trace_ = nullptr;
  std::uint32_t track_ = 0;
  obs::Timeline* timeline_ = nullptr;
  obs::Timeline::SeriesId open_series_ = obs::Timeline::kNone;
};

}  // namespace pgasq::coll
