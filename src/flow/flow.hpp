// Overload control and graceful degradation: credit-based
// backpressure, deadline propagation, admission control, and
// retry-budget jitter.
//
// BG/Q's torus carries hardware token/credit flow control per link, so
// a saturated receiver throttles its senders at wire speed and
// injection FIFOs never grow without bound. The reproduction's
// software fabric has no such mechanism: a rank offered more work than
// it can drain simply queues it, latency grows with the backlog, and a
// retry burst after a stall window can self-sustain into a metastable
// collapse (every client re-offers the same work at the same instant
// forever). This module is the software analogue of the torus credits
// plus the server-side defenses a service needs on top:
//
//   * credits — each (src, dst) rank pair has a bounded window of
//     in-flight wire transfers (`flow.credits`). noc::NetworkModel
//     consults the Controller before injecting: when the window is
//     full the injection start is pushed to the earliest outstanding
//     delivery, which is exactly a sender blocking on a returned
//     token. Control traffic (acks, nacks, rmw replies) is exempt so
//     backpressure can never deadlock the release path.
//   * deadlines — requests may carry an absolute virtual-time deadline
//     (pami::AmMessage / Context items). Work that arrives at the
//     server after its deadline is dropped *before* it is serviced —
//     the cheapest place to shed load — and the client sees a typed
//     DeadlineError instead of a late answer it can no longer use.
//   * admission — an AIMD limiter (client side, src/kvs) bounds the
//     backlog an open-loop client will accept before shedding new
//     arrivals, low-priority class first. Shedding at admission keeps
//     the goodput curve flat past saturation instead of collapsing.
//   * retry jitter — deterministic per-(seed, rank, attempt) jitter
//     desynchronizes exponential backoff so a shared stall window does
//     not seed a synchronized retry storm (see flow::jitter and
//     fault.backoff_jitter).
//
// Zero-cost guarantee: pami::Machine constructs a Controller only when
// some flow.* knob enables it; every hook in noc/pami is one pointer
// test against nullptr, and runs with flow.* unset are byte-identical
// to a build without this module.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "fault/fault.hpp"
#include "util/histogram.hpp"
#include "util/time_types.hpp"

namespace pgasq {
class Config;

namespace obs {
class Timeline;
}

namespace sim {
class TraceRecorder;
}

namespace flow {

/// Escalated overload fault: a request's absolute virtual-time
/// deadline passed before the work completed — either shed
/// server-side before servicing or detected client-side on the reply.
/// A FaultError subclass so existing fault recovery paths (guarded
/// bodies, fail-stop handlers) catch it without new plumbing.
class DeadlineError : public FaultError {
 public:
  using FaultError::FaultError;
};

/// Sentinel rmw "old value" reply meaning the service shed the request
/// at the server because its deadline had expired. Real rmw words are
/// application counters/versions; INT64_MIN is unreachable for all
/// current users (slot versions and faa counters start small and grow).
inline constexpr std::int64_t kExpiredRmw =
    std::numeric_limits<std::int64_t>::min();

/// Parsed `flow.*` knobs. `configured` is true when any flow.* key was
/// present; the machine builds a Controller only when enabled().
struct FlowConfig {
  bool configured = false;
  /// Per-(src,dst) in-flight wire-transfer window (`flow.credits`).
  /// 0 = no credit gating.
  int credits = 0;
  /// Request deadline in virtual microseconds (`flow.deadline_us`),
  /// applied by clients that opt in (src/kvs open-loop driver).
  /// 0 = no deadline propagation.
  double deadline_us = 0.0;
  /// Client-side AIMD admission control on the open-loop backlog
  /// (`flow.admit`). Off by default even when flow is configured.
  bool admit = false;
  /// AIMD initial / max backlog limit and step sizes
  /// (`flow.init_limit`, `flow.max_limit`, `flow.aimd_inc`,
  /// `flow.aimd_dec`).
  int init_limit = 4;
  int max_limit = 64;
  double aimd_inc = 1.0;
  double aimd_dec = 0.5;
  /// Fraction of requests tagged low-priority and shed first under
  /// admission pressure (`flow.low_prio_frac`).
  double low_prio_frac = 0.0;
  /// Per-op client retry budget and jittered exponential backoff for
  /// application-level retries (KVS CAS/version spins):
  /// `flow.retry_budget`, `flow.retry_backoff_us`,
  /// `flow.retry_max_backoff_us`. retry_budget 0 = unbounded spins
  /// with no backoff (the pre-flow behaviour).
  int retry_budget = 0;
  double retry_backoff_us = 2.0;
  double retry_max_backoff_us = 256.0;
  /// Seed for all deterministic flow randomness (jitter, priority
  /// draws): `flow.seed`.
  std::uint64_t seed = 1;

  /// True when any knob activates a machine-level hook.
  bool enabled() const { return credits > 0 || deadline_us > 0.0; }

  Time deadline() const { return deadline_us > 0.0 ? from_us(deadline_us) : 0; }

  /// Parse `flow.*` keys; unknown keys are rejected with a typo
  /// suggestion (reject_unknown).
  static FlowConfig from_config(const Config& config);
};

/// Counters + occupancy histogram for the report. Mutated on hot paths
/// through Controller::stats(); aggregated machine-wide (the
/// Controller is a singleton per Machine, like fault::Injector).
struct FlowStats {
  /// Wire injections delayed because the (src,dst) credit window was
  /// full, and the total virtual time spent waiting for a credit.
  std::uint64_t credit_stalls = 0;
  Time credit_stall_time{0};
  /// Requests shed server-side because they arrived past deadline.
  std::uint64_t expired_server = 0;
  /// Requests abandoned client-side (deadline passed while queued or
  /// detected on reply).
  std::uint64_t expired_client = 0;
  /// Requests shed by the admission controller before issue.
  std::uint64_t shed_low_prio = 0;
  std::uint64_t shed_high_prio = 0;
  /// Ops that exhausted their flow.retry_budget.
  std::uint64_t retry_budget_exhausted = 0;
  /// Occupancy of the (src,dst) credit window sampled at each acquire.
  util::Histogram queue_depth;
};

/// Machine-level flow controller: the per-(src,dst) credit ledger plus
/// shared stats and trace hooks. Owned by pami::Machine; noc and pami
/// hold non-owning pointers (nullptr when flow is off).
///
/// The ledger is deterministic local state in the style of
/// NetworkModel::claim_injection's nic_free_ horizon: no engine
/// events, just delivery-time horizons per pair, so identical call
/// sequences yield identical grants and byte-identical reports.
class Controller {
 public:
  Controller(const FlowConfig& cfg, int num_ranks);

  const FlowConfig& config() const { return cfg_; }
  FlowStats& stats() { return stats_; }
  const FlowStats& stats() const { return stats_; }

  /// Earliest time >= start at which (src,dst) holds a free credit.
  /// Samples window occupancy into the queue-depth histogram and
  /// counts a stall when the window is full. No-op (returns start)
  /// when credits are off.
  Time acquire(int src, int dst, Time start);

  /// Record a granted transfer's delivery time: the credit returns to
  /// the window at `arrive`. Dropped transfers release too — the
  /// window models the sender-local in-flight budget, not delivery
  /// success.
  void release(int src, int dst, Time arrive);

  /// Server-side deadline check: true when the item should be shed.
  /// Counts and (when traced) marks the shed on the flow track.
  bool expired_at_server(Time deadline, Time now);

  /// Count + mark a client-side expiry.
  void note_client_expiry(Time now);

  /// Mirror of fault::Injector::set_trace — registers the "flow"
  /// instant track.
  void set_trace(sim::TraceRecorder* trace);

  /// Continuous telemetry (obs.timeline): credit-window occupancy per
  /// acquire plus stall/shed/expiry counters. Not owned; nullptr off.
  void set_timeline(obs::Timeline* timeline);

 private:
  FlowConfig cfg_;
  FlowStats stats_;
  /// Outstanding delivery horizons per directed pair, ring-buffered:
  /// pair p's window holds up to cfg_.credits delivery times; a slot
  /// <= now is a free credit.
  std::vector<std::vector<Time>> window_;
  std::vector<std::uint32_t> head_;  // oldest outstanding slot per pair
  std::vector<std::uint32_t> count_;  // outstanding entries per pair
  int num_ranks_ = 0;
  sim::TraceRecorder* trace_ = nullptr;
  std::uint32_t track_ = 0;
  obs::Timeline* timeline_ = nullptr;
  std::uint32_t tl_window_ = 0xffffffffu;  // obs::Timeline::kNone
  std::uint32_t tl_stalls_ = 0xffffffffu;
  std::uint32_t tl_shed_server_ = 0xffffffffu;
  std::uint32_t tl_expired_client_ = 0xffffffffu;

  std::size_t pair_index(int src, int dst) const {
    return static_cast<std::size_t>(src) * static_cast<std::size_t>(num_ranks_) +
           static_cast<std::size_t>(dst);
  }
};

/// Deterministic jitter in [1 - spread, 1 + spread]: a pure function
/// of (seed, rank, attempt), so reruns are byte-identical and distinct
/// ranks draw distinct factors — the property that breaks synchronized
/// retry storms. spread <= 0 returns exactly 1.0 (bit-identical to the
/// unjittered path).
double jitter(std::uint64_t seed, int rank, std::uint64_t attempt,
              double spread);

/// Client-side AIMD admission limiter over a backlog depth. Additive
/// increase on success (deadline met), multiplicative decrease on
/// overload signal (deadline missed / shed). Plain deterministic
/// arithmetic — per-rank instances, no shared state.
class AdmissionController {
 public:
  AdmissionController(const FlowConfig& cfg)
      : cfg_(cfg), limit_(static_cast<double>(cfg.init_limit)) {}

  /// Current integral backlog limit.
  int limit() const { return static_cast<int>(limit_); }

  /// True when a request may be admitted at the given backlog depth.
  bool admit(int backlog) const { return backlog < limit(); }

  void on_success() {
    limit_ = std::min(limit_ + cfg_.aimd_inc,
                      static_cast<double>(cfg_.max_limit));
  }
  void on_overload() { limit_ = std::max(1.0, limit_ * cfg_.aimd_dec); }

 private:
  FlowConfig cfg_;
  double limit_;
};

/// Per-op retry budget with deterministically-jittered exponential
/// backoff. next_backoff() returns 0 once the budget is exhausted —
/// the caller should then give up (DeadlineError) rather than spin.
class RetryBudget {
 public:
  RetryBudget(const FlowConfig& cfg, int rank, std::uint64_t op_id)
      : cfg_(cfg), rank_(rank), op_id_(op_id) {}

  /// True while another retry is allowed.
  bool allow() const {
    return cfg_.retry_budget <= 0 ||
           used_ < static_cast<std::uint64_t>(cfg_.retry_budget);
  }

  /// Jittered, capped exponential backoff for the next retry; counts
  /// the attempt. Zero when retry_budget is 0 (pre-flow spin).
  Time next_backoff() {
    if (cfg_.retry_budget <= 0) return 0;
    const double base =
        cfg_.retry_backoff_us *
        static_cast<double>(std::uint64_t{1} << std::min<std::uint64_t>(used_, 20));
    const double capped = std::min(base, cfg_.retry_max_backoff_us);
    const double j = jitter(cfg_.seed ^ op_id_, rank_, used_, 0.5);
    ++used_;
    return from_us(capped * j);
  }

  std::uint64_t used() const { return used_; }

 private:
  FlowConfig cfg_;
  int rank_;
  std::uint64_t op_id_;
  std::uint64_t used_ = 0;
};

}  // namespace flow
}  // namespace pgasq
