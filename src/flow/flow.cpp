#include "flow/flow.hpp"

#include "obs/timeline.hpp"
#include "sim/trace.hpp"
#include "util/config.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace pgasq::flow {

namespace {
/// One splitmix64 step of a value (stateless; mirrors fault.cpp).
std::uint64_t splitmix64_of(std::uint64_t v) {
  std::uint64_t s = v;
  return splitmix64(s);
}
}  // namespace

FlowConfig FlowConfig::from_config(const Config& cfg) {
  cfg.reject_unknown("flow",
                     {"credits", "deadline_us", "admit", "init_limit",
                      "max_limit", "aimd_inc", "aimd_dec", "low_prio_frac",
                      "retry_budget", "retry_backoff_us",
                      "retry_max_backoff_us", "seed"});
  FlowConfig out;
  out.configured =
      cfg.has("flow.credits") || cfg.has("flow.deadline_us") ||
      cfg.has("flow.admit") || cfg.has("flow.init_limit") ||
      cfg.has("flow.max_limit") || cfg.has("flow.aimd_inc") ||
      cfg.has("flow.aimd_dec") || cfg.has("flow.low_prio_frac") ||
      cfg.has("flow.retry_budget") || cfg.has("flow.retry_backoff_us") ||
      cfg.has("flow.retry_max_backoff_us") || cfg.has("flow.seed");
  out.credits = static_cast<int>(cfg.get_int("flow.credits", 0));
  out.deadline_us = cfg.get_double("flow.deadline_us", 0.0);
  out.admit = cfg.get_bool("flow.admit", false);
  out.init_limit = static_cast<int>(cfg.get_int("flow.init_limit", 4));
  out.max_limit = static_cast<int>(cfg.get_int("flow.max_limit", 64));
  out.aimd_inc = cfg.get_double("flow.aimd_inc", 1.0);
  out.aimd_dec = cfg.get_double("flow.aimd_dec", 0.5);
  out.low_prio_frac = cfg.get_double("flow.low_prio_frac", 0.0);
  out.retry_budget = static_cast<int>(cfg.get_int("flow.retry_budget", 0));
  out.retry_backoff_us = cfg.get_double("flow.retry_backoff_us", 2.0);
  out.retry_max_backoff_us = cfg.get_double("flow.retry_max_backoff_us", 256.0);
  out.seed = static_cast<std::uint64_t>(cfg.get_int("flow.seed", 1));
  PGASQ_CHECK(out.credits >= 0, << "flow.credits = " << out.credits);
  PGASQ_CHECK(out.deadline_us >= 0.0, << "flow.deadline_us = " << out.deadline_us);
  PGASQ_CHECK(out.init_limit >= 1 && out.init_limit <= out.max_limit,
              << "flow.init_limit " << out.init_limit << " vs flow.max_limit "
              << out.max_limit);
  PGASQ_CHECK(out.aimd_inc > 0.0, << "flow.aimd_inc = " << out.aimd_inc);
  PGASQ_CHECK(out.aimd_dec > 0.0 && out.aimd_dec < 1.0,
              << "flow.aimd_dec must be in (0,1), got " << out.aimd_dec);
  PGASQ_CHECK(out.low_prio_frac >= 0.0 && out.low_prio_frac <= 1.0,
              << "flow.low_prio_frac = " << out.low_prio_frac);
  PGASQ_CHECK(out.retry_budget >= 0, << "flow.retry_budget = " << out.retry_budget);
  PGASQ_CHECK(out.retry_backoff_us > 0.0 &&
                  out.retry_backoff_us <= out.retry_max_backoff_us,
              << "flow.retry_backoff_us " << out.retry_backoff_us
              << " vs flow.retry_max_backoff_us " << out.retry_max_backoff_us);
  return out;
}

Controller::Controller(const FlowConfig& cfg, int num_ranks)
    : cfg_(cfg), num_ranks_(num_ranks) {
  if (cfg_.credits > 0) {
    const std::size_t pairs =
        static_cast<std::size_t>(num_ranks) * static_cast<std::size_t>(num_ranks);
    window_.resize(pairs);
    head_.assign(pairs, 0);
    count_.assign(pairs, 0);
  }
}

Time Controller::acquire(int src, int dst, Time start) {
  if (cfg_.credits <= 0) return start;
  const std::size_t p = pair_index(src, dst);
  auto& win = window_[p];
  if (win.empty()) win.assign(static_cast<std::size_t>(cfg_.credits), 0);
  // Retire credits whose transfer has already been delivered by
  // `start`; what remains is the current window occupancy.
  while (count_[p] > 0 && win[head_[p]] <= start) {
    head_[p] = (head_[p] + 1) % win.size();
    --count_[p];
  }
  stats_.queue_depth.add(count_[p]);
  if (timeline_ != nullptr) {
    timeline_->sample(tl_window_, start, static_cast<double>(count_[p]));
  }
  if (count_[p] < win.size()) return start;
  // Window full: the sender blocks until the oldest in-flight transfer
  // returns its credit (its delivery time — the ring keeps delivery
  // horizons in issue order, and release() enforces monotonicity).
  const Time granted = win[head_[p]];
  ++stats_.credit_stalls;
  stats_.credit_stall_time += granted - start;
  if (trace_ != nullptr) trace_->instant(track_, "credit stall", start);
  if (timeline_ != nullptr) timeline_->count(tl_stalls_, start);
  head_[p] = (head_[p] + 1) % win.size();
  --count_[p];
  return granted;
}

void Controller::release(int src, int dst, Time arrive) {
  if (cfg_.credits <= 0) return;
  const std::size_t p = pair_index(src, dst);
  auto& win = window_[p];
  if (win.empty()) win.assign(static_cast<std::size_t>(cfg_.credits), 0);
  // Keep horizons monotone in the ring so acquire's oldest-first
  // retirement stays correct even when a later transfer is (locally)
  // predicted to deliver before an earlier one.
  const std::uint32_t tail =
      (head_[p] + count_[p]) % static_cast<std::uint32_t>(win.size());
  Time horizon = arrive;
  if (count_[p] > 0) {
    const std::uint32_t prev =
        (tail + static_cast<std::uint32_t>(win.size()) - 1) %
        static_cast<std::uint32_t>(win.size());
    horizon = std::max(horizon, win[prev]);
  }
  win[tail] = horizon;
  if (count_[p] < win.size()) ++count_[p];
}

bool Controller::expired_at_server(Time deadline, Time now) {
  if (deadline <= 0 || now <= deadline) return false;
  ++stats_.expired_server;
  if (trace_ != nullptr) trace_->instant(track_, "deadline shed", now);
  if (timeline_ != nullptr) timeline_->count(tl_shed_server_, now);
  return true;
}

void Controller::note_client_expiry(Time now) {
  ++stats_.expired_client;
  if (trace_ != nullptr) trace_->instant(track_, "deadline expired", now);
  if (timeline_ != nullptr) timeline_->count(tl_expired_client_, now);
}

void Controller::set_trace(sim::TraceRecorder* trace) {
  trace_ = trace;
  if (trace_ != nullptr) track_ = trace_->register_track("flow");
}

void Controller::set_timeline(obs::Timeline* timeline) {
  timeline_ = timeline;
  if (timeline_ != nullptr) {
    using Kind = obs::Timeline::Kind;
    tl_window_ = timeline_->series("flow.window_occupancy", Kind::kGauge);
    tl_stalls_ = timeline_->series("flow.credit_stalls", Kind::kCounter);
    tl_shed_server_ =
        timeline_->series("flow.deadline_shed_server", Kind::kCounter);
    tl_expired_client_ =
        timeline_->series("flow.deadline_expired_client", Kind::kCounter);
  }
}

double jitter(std::uint64_t seed, int rank, std::uint64_t attempt,
              double spread) {
  if (spread <= 0.0) return 1.0;
  const std::uint64_t h = splitmix64_of(
      splitmix64_of(seed ^ 0xf10bf10bf10bf10bULL) ^
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(rank)) << 32 |
       attempt));
  // 53-bit mantissa draw in [0,1), mapped to [1-spread, 1+spread).
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return 1.0 - spread + 2.0 * spread * u;
}

}  // namespace pgasq::flow
