// Minimal leveled logging. Warn-and-up print to stderr by default
// (benchmark stdout must stay clean); chattier levels are enabled
// per-run via Logger::set_level or the PGASQ_LOG env var.
#pragma once

#include <sstream>
#include <string>

namespace pgasq {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

class Logger {
 public:
  /// Global threshold; messages below it are discarded.
  static void set_level(LogLevel level);
  static LogLevel level();
  /// Reads PGASQ_LOG=trace|debug|info|warn|error|off once at startup.
  static void init_from_env();

  static void write(LogLevel level, const std::string& msg);
};

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Logger::write(level_, os_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace pgasq

#define PGASQ_LOG(lvl)                                   \
  if (::pgasq::LogLevel::lvl < ::pgasq::Logger::level()) \
    ;                                                    \
  else                                                   \
    ::pgasq::detail::LogLine(::pgasq::LogLevel::lvl)
