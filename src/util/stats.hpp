// Online statistics used throughout the benchmarks.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace pgasq {

/// Streaming accumulator: count / mean / variance (Welford) / min / max.
class Accumulator {
 public:
  void add(double x);
  void merge(const Accumulator& other);
  void reset();

  std::size_t count() const { return n_; }
  double sum() const { return mean_ * static_cast<double>(n_); }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-capacity reservoir of raw samples with exact quantiles.
/// Keeps every sample up to `capacity`; callers size it for the run.
class Samples {
 public:
  explicit Samples(std::size_t capacity = 1 << 20) : capacity_(capacity) {}

  void add(double x);
  std::size_t count() const { return data_.size(); }
  bool truncated() const { return truncated_; }

  /// Exact quantile over retained samples, q in [0, 1]. Sorts lazily.
  double quantile(double q) const;
  double median() const { return quantile(0.5); }
  double mean() const;

 private:
  std::size_t capacity_;
  bool truncated_ = false;
  mutable bool sorted_ = false;
  mutable std::vector<double> data_;
};

/// Log2-bucketed histogram for message-size style distributions.
class Log2Histogram {
 public:
  void add(std::uint64_t value);
  void merge(const Log2Histogram& other);
  std::size_t bucket_count() const { return buckets_.size(); }
  std::uint64_t bucket(std::size_t i) const { return buckets_[i]; }
  std::uint64_t total() const { return total_; }
  /// Renders "  [2^k, 2^k+1): count" lines.
  std::string to_string() const;

 private:
  std::vector<std::uint64_t> buckets_;
  std::uint64_t total_ = 0;
};

}  // namespace pgasq
