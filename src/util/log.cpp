#include "util/log.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace pgasq {

namespace {
// Warnings and errors print by default (to stderr, so benchmark stdout
// stays clean); chattier levels are opt-in via PGASQ_LOG / set_level.
LogLevel g_level = LogLevel::kWarn;

const char* name_of(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void Logger::set_level(LogLevel level) { g_level = level; }
LogLevel Logger::level() { return g_level; }

void Logger::init_from_env() {
  const char* env = std::getenv("PGASQ_LOG");
  if (env == nullptr) return;
  if (std::strcmp(env, "trace") == 0) g_level = LogLevel::kTrace;
  else if (std::strcmp(env, "debug") == 0) g_level = LogLevel::kDebug;
  else if (std::strcmp(env, "info") == 0) g_level = LogLevel::kInfo;
  else if (std::strcmp(env, "warn") == 0) g_level = LogLevel::kWarn;
  else if (std::strcmp(env, "error") == 0) g_level = LogLevel::kError;
  else g_level = LogLevel::kOff;
}

void Logger::write(LogLevel level, const std::string& msg) {
  std::fprintf(stderr, "[pgasq %s] %s\n", name_of(level), msg.c_str());
}

}  // namespace pgasq
