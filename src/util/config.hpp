// Small key=value configuration store with typed getters, used by the
// benchmark binaries to accept "--key=value" overrides without pulling
// in a CLI library.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace pgasq {

class Config {
 public:
  Config() = default;

  /// Parses "--key=value" / "key=value" tokens; other tokens are kept
  /// in positional(). Throws Error on malformed "--key" without value.
  static Config from_args(int argc, char** argv);

  void set(const std::string& key, const std::string& value);
  bool has(const std::string& key) const;

  std::string get_string(const std::string& key, const std::string& fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }
  /// All keys, for diagnostics.
  std::vector<std::string> keys() const;

  /// Validates a reserved key namespace: every stored key of the form
  /// "<ns>.<suffix>" must have its suffix in `known`, otherwise throws
  /// Error naming the bad key — with a "did you mean" suggestion when a
  /// known suffix is within edit distance 2 (a misspelled knob used to
  /// be silently ignored). Subsystem parsers (fault.*, ft.*, coll.*)
  /// call this before reading their keys.
  void reject_unknown(const std::string& ns,
                      const std::vector<std::string>& known) const;

 private:
  std::optional<std::string> find(const std::string& key) const;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace pgasq
