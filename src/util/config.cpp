#include "util/config.hpp"

#include <algorithm>
#include <cstdlib>

#include "util/error.hpp"

namespace pgasq {

Config Config::from_args(int argc, char** argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    std::string tok = argv[i];
    std::string body = tok;
    if (body.rfind("--", 0) == 0) body = body.substr(2);
    const auto eq = body.find('=');
    if (eq == std::string::npos) {
      if (tok.rfind("--", 0) == 0) {
        // Bare flag: treat as boolean true.
        cfg.set(body, "true");
      } else {
        cfg.positional_.push_back(tok);
      }
      continue;
    }
    cfg.set(body.substr(0, eq), body.substr(eq + 1));
  }
  return cfg;
}

void Config::set(const std::string& key, const std::string& value) {
  PGASQ_CHECK(!key.empty());
  values_[key] = value;
}

bool Config::has(const std::string& key) const { return values_.count(key) != 0; }

std::optional<std::string> Config::find(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Config::get_string(const std::string& key, const std::string& fallback) const {
  return find(key).value_or(fallback);
}

std::int64_t Config::get_int(const std::string& key, std::int64_t fallback) const {
  const auto v = find(key);
  if (!v) return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(v->c_str(), &end, 0);
  PGASQ_CHECK(end && *end == '\0', << "config key '" << key << "' is not an integer: " << *v);
  return parsed;
}

double Config::get_double(const std::string& key, double fallback) const {
  const auto v = find(key);
  if (!v) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v->c_str(), &end);
  PGASQ_CHECK(end && *end == '\0', << "config key '" << key << "' is not a number: " << *v);
  return parsed;
}

bool Config::get_bool(const std::string& key, bool fallback) const {
  const auto v = find(key);
  if (!v) return fallback;
  if (*v == "1" || *v == "true" || *v == "yes" || *v == "on") return true;
  if (*v == "0" || *v == "false" || *v == "no" || *v == "off") return false;
  PGASQ_CHECK(false, << "config key '" << key << "' is not a boolean: " << *v);
  return fallback;
}

namespace {

/// Plain Levenshtein distance, small strings only.
std::size_t edit_distance(const std::string& a, const std::string& b) {
  std::vector<std::size_t> prev(b.size() + 1), cur(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) prev[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    cur[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

}  // namespace

void Config::reject_unknown(const std::string& ns,
                            const std::vector<std::string>& known) const {
  const std::string prefix = ns + ".";
  for (const auto& [key, _] : values_) {
    if (key.rfind(prefix, 0) != 0) continue;
    const std::string suffix = key.substr(prefix.size());
    bool ok = false;
    for (const auto& k : known) {
      if (k == suffix) {
        ok = true;
        break;
      }
    }
    if (ok) continue;
    // Closest known suffix, for the typo hint.
    std::size_t best_dist = static_cast<std::size_t>(-1);
    std::string best;
    for (const auto& k : known) {
      const std::size_t d = edit_distance(suffix, k);
      if (d < best_dist) {
        best_dist = d;
        best = k;
      }
    }
    if (!best.empty() && best_dist <= 2) {
      PGASQ_CHECK(false, << "unknown option " << key << " (did you mean " << ns
                         << "." << best << "?)");
    }
    PGASQ_CHECK(false, << "unknown option " << key);
  }
}

std::vector<std::string> Config::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [k, _] : values_) out.push_back(k);
  return out;
}

}  // namespace pgasq
