#include "util/histogram.hpp"

#include <algorithm>
#include <cstdio>

#include "util/error.hpp"

namespace pgasq::util {

// Bucket layout: values < kSubBuckets are exact (one bucket each);
// above that, each octave [2^k, 2^(k+1)) splits into kSubBuckets/2
// fresh linear buckets (the lower half of each octave aliases the
// previous one, as in HDR histograms).
std::size_t Histogram::bucket_index(std::uint64_t value) {
  if (value < kSubBuckets) return static_cast<std::size_t>(value);
  const unsigned msb = 63u - static_cast<unsigned>(__builtin_clzll(value));
  const unsigned octave = msb - (kSubBits - 1);  // >= 1
  const std::uint64_t sub = (value >> (msb - (kSubBits - 1))) - (kSubBuckets / 2);
  return static_cast<std::size_t>(kSubBuckets +
                                  (octave - 1) * (kSubBuckets / 2) + sub);
}

std::uint64_t Histogram::bucket_upper(std::size_t i) {
  if (i < kSubBuckets) return i;
  const std::size_t rel = i - kSubBuckets;
  const unsigned octave = static_cast<unsigned>(rel / (kSubBuckets / 2)) + 1;
  const std::uint64_t sub = rel % (kSubBuckets / 2) + kSubBuckets / 2;
  // Octave o holds values with msb = o + kSubBits - 1, i.e. the
  // retained kSubBits-wide prefix `sub` sits `o` bits up; the upper
  // edge is the last value sharing that prefix.
  return ((sub + 1) << octave) - 1;
}

void Histogram::add(std::uint64_t value, std::uint64_t count) {
  if (count == 0) return;
  const std::size_t idx = bucket_index(value);
  if (idx >= buckets_.size()) buckets_.resize(idx + 1, 0);
  buckets_[idx] += count;
  total_ += count;
  sum_ += value * count;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void Histogram::merge(const Histogram& other) {
  if (other.total_ == 0) return;
  if (other.buckets_.size() > buckets_.size()) {
    buckets_.resize(other.buckets_.size(), 0);
  }
  for (std::size_t i = 0; i < other.buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  total_ += other.total_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Histogram::mean() const {
  return total_ == 0 ? 0.0
                     : static_cast<double>(sum_) / static_cast<double>(total_);
}

std::uint64_t Histogram::quantile(double q) const {
  PGASQ_CHECK(q >= 0.0 && q <= 1.0, << "quantile " << q);
  if (total_ == 0) return 0;
  // Rank of the q-th sample, 1-based, ceil — p50 of n=1 is sample 1.
  std::uint64_t rank = static_cast<std::uint64_t>(
      q * static_cast<double>(total_) + 0.9999999999);
  rank = std::max<std::uint64_t>(1, std::min(rank, total_));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      return std::min(std::max(bucket_upper(i), min()), max_);
    }
  }
  return max_;
}

std::string Histogram::to_string() const {
  char buf[192];
  std::snprintf(buf, sizeof buf,
                "n=%llu min=%llu p50=%llu p90=%llu p99=%llu p999=%llu max=%llu",
                static_cast<unsigned long long>(total_),
                static_cast<unsigned long long>(min()),
                static_cast<unsigned long long>(quantile(0.5)),
                static_cast<unsigned long long>(quantile(0.9)),
                static_cast<unsigned long long>(quantile(0.99)),
                static_cast<unsigned long long>(quantile(0.999)),
                static_cast<unsigned long long>(max_));
  return buf;
}

}  // namespace pgasq::util
