// Virtual-time representation shared by the whole simulator.
//
// Simulated time is a signed 64-bit count of picoseconds. Picosecond
// resolution is required because the calibrated BG/Q link inverse
// bandwidth (G ~ 0.56 ns/byte) and per-hop latencies (35 ns) are
// sub-nanosecond quantities that accumulate over megabyte transfers;
// int64 ps still spans ~106 days of virtual time, far beyond any run.
#pragma once

#include <cstdint>

namespace pgasq {

/// Virtual time in picoseconds.
using Time = std::int64_t;

constexpr Time kPicosecond = 1;
constexpr Time kNanosecond = 1000;
constexpr Time kMicrosecond = 1000 * kNanosecond;
constexpr Time kMillisecond = 1000 * kMicrosecond;
constexpr Time kSecond = 1000 * kMillisecond;

/// Converts a floating-point duration to Time (rounds to nearest ps).
constexpr Time from_ns(double ns) { return static_cast<Time>(ns * 1e3 + 0.5); }
constexpr Time from_us(double us) { return static_cast<Time>(us * 1e6 + 0.5); }
constexpr Time from_ms(double ms) { return static_cast<Time>(ms * 1e9 + 0.5); }

/// Converts Time to floating-point durations for reporting.
constexpr double to_ns(Time t) { return static_cast<double>(t) / 1e3; }
constexpr double to_us(Time t) { return static_cast<double>(t) / 1e6; }
constexpr double to_ms(Time t) { return static_cast<double>(t) / 1e9; }
constexpr double to_s(Time t) { return static_cast<double>(t) / 1e12; }

namespace literals {
constexpr Time operator""_ps(unsigned long long v) { return static_cast<Time>(v); }
constexpr Time operator""_ns(unsigned long long v) { return static_cast<Time>(v) * kNanosecond; }
constexpr Time operator""_us(unsigned long long v) { return static_cast<Time>(v) * kMicrosecond; }
constexpr Time operator""_ms(unsigned long long v) { return static_cast<Time>(v) * kMillisecond; }
constexpr Time operator""_ns(long double v) { return from_ns(static_cast<double>(v)); }
constexpr Time operator""_us(long double v) { return from_us(static_cast<double>(v)); }
}  // namespace literals

}  // namespace pgasq
