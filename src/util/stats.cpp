#include "util/stats.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

#include "util/error.hpp"

namespace pgasq {

void Accumulator::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void Accumulator::merge(const Accumulator& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double nt = na + nb;
  mean_ += delta * nb / nt;
  m2_ += other.m2_ + delta * delta * na * nb / nt;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void Accumulator::reset() { *this = Accumulator{}; }

double Accumulator::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

void Samples::add(double x) {
  if (data_.size() >= capacity_) {
    truncated_ = true;
    return;
  }
  data_.push_back(x);
  sorted_ = false;
}

double Samples::quantile(double q) const {
  PGASQ_CHECK(q >= 0.0 && q <= 1.0, << "q=" << q);
  PGASQ_CHECK(!data_.empty(), << "quantile of empty sample set");
  if (!sorted_) {
    std::sort(data_.begin(), data_.end());
    sorted_ = true;
  }
  // Linear interpolation between closest ranks.
  const double pos = q * static_cast<double>(data_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, data_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return data_[lo] * (1.0 - frac) + data_[hi] * frac;
}

double Samples::mean() const {
  if (data_.empty()) return 0.0;
  double s = 0.0;
  for (double v : data_) s += v;
  return s / static_cast<double>(data_.size());
}

void Log2Histogram::merge(const Log2Histogram& other) {
  if (other.buckets_.size() > buckets_.size()) {
    buckets_.resize(other.buckets_.size(), 0);
  }
  for (std::size_t i = 0; i < other.buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  total_ += other.total_;
}

void Log2Histogram::add(std::uint64_t value) {
  const std::size_t idx = value == 0 ? 0 : static_cast<std::size_t>(std::bit_width(value));
  if (idx >= buckets_.size()) buckets_.resize(idx + 1, 0);
  ++buckets_[idx];
  ++total_;
}

std::string Log2Histogram::to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    const std::uint64_t lo = i == 0 ? 0 : (1ULL << (i - 1));
    const std::uint64_t hi = i == 0 ? 1 : (1ULL << i);
    os << "  [" << lo << ", " << hi << "): " << buckets_[i] << '\n';
  }
  return os.str();
}

}  // namespace pgasq
