// Error handling for the pgasq library.
//
// Internal invariant violations throw pgasq::Error with a formatted
// message; API misuse by callers is reported the same way. The checks
// stay enabled in release builds — this is a simulator whose value is
// correctness of reported numbers, not raw speed.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace pgasq {

/// Exception thrown on any invariant violation or API misuse.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void fail(const char* cond, const char* file, int line,
                              const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": check failed: " << cond;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

// Builds the optional streamed message lazily only when a check fails.
class MsgStream {
 public:
  template <typename T>
  MsgStream& operator<<(const T& v) {
    os_ << v;
    return *this;
  }
  std::string str() const { return os_.str(); }

 private:
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace pgasq

/// Always-on invariant check: PGASQ_CHECK(x > 0, "x was " << x);
#define PGASQ_CHECK(cond, ...)                                              \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::pgasq::detail::fail(#cond, __FILE__, __LINE__,                      \
                            (::pgasq::detail::MsgStream{} __VA_ARGS__).str()); \
    }                                                                       \
  } while (0)

/// Marks unreachable code paths.
#define PGASQ_UNREACHABLE(msg) \
  ::pgasq::detail::fail("unreachable", __FILE__, __LINE__, msg)
