// Log-bucketed latency histogram (HDR-histogram style): power-of-two
// octaves split into 2^kSubBits linear sub-buckets, so quantiles carry
// a bounded relative error (~1/2^kSubBits ≈ 3%) at any magnitude.
// Values are unsigned 64-bit integers — nanoseconds of virtual time in
// every current caller, but the class is unit-agnostic.
//
// Everything is deterministic: identical add() sequences (in any
// order) produce identical buckets, quantiles, merges, and renderings,
// so histograms can sit in byte-identical reports.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pgasq::util {

class Histogram {
 public:
  /// Sub-bucket resolution: 32 linear buckets per power-of-two octave.
  static constexpr unsigned kSubBits = 5;
  static constexpr std::uint64_t kSubBuckets = 1ull << kSubBits;

  void add(std::uint64_t value, std::uint64_t count = 1);
  /// Folds `other` in (bucket-wise; min/max/total/sum all combine).
  void merge(const Histogram& other);

  std::uint64_t total() const { return total_; }
  std::uint64_t min() const { return total_ == 0 ? 0 : min_; }
  std::uint64_t max() const { return max_; }
  /// Exact mean of the added values (the sum is kept exactly).
  double mean() const;
  /// Value at quantile q in [0, 1]: the representative (upper edge) of
  /// the bucket holding the q-th sample, clamped to [min, max]. q = 0
  /// gives min(), q = 1 gives max().
  std::uint64_t quantile(double q) const;

  std::size_t bucket_count() const { return buckets_.size(); }
  std::uint64_t bucket(std::size_t i) const { return buckets_[i]; }
  /// Inclusive upper edge of bucket i (its representative value).
  static std::uint64_t bucket_upper(std::size_t i);

  /// One line, e.g. "n=100 min=3 p50=17 p90=40 p99=52 p999=52 max=52".
  std::string to_string() const;

 private:
  static std::size_t bucket_index(std::uint64_t value);

  std::vector<std::uint64_t> buckets_;
  std::uint64_t total_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = ~0ull;
  std::uint64_t max_ = 0;
};

}  // namespace pgasq::util
