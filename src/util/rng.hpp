// Deterministic pseudo-random number generation.
//
// The simulator must be bit-reproducible across runs and platforms, so
// we avoid std::mt19937/std::uniform_* (distribution algorithms are
// implementation-defined) and carry our own xoshiro256** generator with
// explicit, portable distribution code.
#pragma once

#include <cstdint>

#include "util/error.hpp"

namespace pgasq {

/// SplitMix64 — used to seed xoshiro from a single 64-bit value.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference code).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& w : s_) w = splitmix64(sm);
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method
  /// simplified: rejection on the multiply-high range).
  std::uint64_t next_below(std::uint64_t bound) {
    PGASQ_CHECK(bound > 0);
    // Rejection sampling on the top bits; at most a few iterations.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next_u64();
      const __uint128_t m = static_cast<__uint128_t>(r) * bound;
      if (static_cast<std::uint64_t>(m) >= threshold) {
        return static_cast<std::uint64_t>(m >> 64);
      }
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) {
    PGASQ_CHECK(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Exponentially distributed double with the given mean.
  double next_exponential(double mean);

  bool next_bool(double p_true = 0.5) { return next_double() < p_true; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

}  // namespace pgasq

#include <cmath>

namespace pgasq {
inline double Rng::next_exponential(double mean) {
  // Inverse CDF; 1 - u avoids log(0).
  return -mean * std::log(1.0 - next_double());
}
}  // namespace pgasq
