// Software CRC32C (Castagnoli, polynomial 0x1EDC6F41, reflected).
//
// The integrity subsystem checksums payloads at injection and verifies
// them on delivery (src/pami), per collective slot hop (src/coll), and
// over checkpoint shards (src/ft). BG/Q got this from hardware — the
// torus links carry a CRC per packet and memory is ECC-protected — so
// the simulator needs a portable, deterministic software stand-in. A
// table-driven byte-at-a-time implementation is plenty: the *virtual*
// cost of checksumming is modeled separately (integrity.crc_ns_per_byte);
// this code only has to be correct and bit-stable across platforms.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace pgasq {

namespace detail {

inline const std::array<std::uint32_t, 256>& crc32c_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0x82f63b78u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace detail

/// Incremental update: feed `bytes` of `data` into a running CRC.
/// Start from crc32c_init(), finish with crc32c_final().
inline std::uint32_t crc32c_update(std::uint32_t crc, const void* data,
                                   std::size_t bytes) {
  const auto& table = detail::crc32c_table();
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    crc = table[(crc ^ p[i]) & 0xffu] ^ (crc >> 8);
  }
  return crc;
}

inline std::uint32_t crc32c_init() { return 0xffffffffu; }
inline std::uint32_t crc32c_final(std::uint32_t crc) { return crc ^ 0xffffffffu; }

/// One-shot CRC32C of a buffer.
inline std::uint32_t crc32c(const void* data, std::size_t bytes) {
  return crc32c_final(crc32c_update(crc32c_init(), data, bytes));
}

}  // namespace pgasq
