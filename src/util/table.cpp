#include "util/table.hpp"

#include <cstdint>
#include <cstdio>
#include <iostream>
#include <sstream>

#include "util/error.hpp"

namespace pgasq {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  PGASQ_CHECK(!headers_.empty());
}

Table& Table::row() {
  PGASQ_CHECK(rows_.empty() || rows_.back().size() == headers_.size(),
              << "previous row incomplete: " << rows_.back().size() << " of "
              << headers_.size() << " cells");
  rows_.emplace_back();
  return *this;
}

Table& Table::add(const std::string& v) {
  PGASQ_CHECK(!rows_.empty(), << "call row() before add()");
  PGASQ_CHECK(rows_.back().size() < headers_.size(), << "row overflow");
  rows_.back().push_back(v);
  return *this;
}

Table& Table::add(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return add(std::string(buf));
}

Table& Table::add(long long v) { return add(std::to_string(v)); }
Table& Table::add(unsigned long long v) { return add(std::to_string(v)); }

std::string Table::to_string() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      width[c] = std::max(width[c], r[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& v = c < cells.size() ? cells[c] : std::string{};
      os << (c ? "  " : "");
      os << std::string(width[c] - v.size(), ' ') << v;
    }
    os << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + (c ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& r : rows_) emit(r);
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      const std::string& v = cells[c];
      if (v.find_first_of(",\"\n") != std::string::npos) {
        os << '"';
        for (const char ch : v) {
          if (ch == '"') os << '"';
          os << ch;
        }
        os << '"';
      } else {
        os << v;
      }
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& r : rows_) emit(r);
  return os.str();
}

void Table::print() const { std::cout << to_string() << std::flush; }

std::string format_bytes(std::uint64_t bytes) {
  if (bytes >= (1ULL << 20) && bytes % (1ULL << 20) == 0) {
    return std::to_string(bytes >> 20) + "M";
  }
  if (bytes >= (1ULL << 10) && bytes % (1ULL << 10) == 0) {
    return std::to_string(bytes >> 10) + "K";
  }
  return std::to_string(bytes);
}

}  // namespace pgasq
