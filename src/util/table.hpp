// Column-aligned plain-text table printer used by the benchmark
// harness to emit paper-style rows.
#pragma once

#include <string>
#include <vector>

namespace pgasq {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Starts a new row; values are appended with add().
  Table& row();
  Table& add(const std::string& v);
  Table& add(double v, int precision = 2);
  Table& add(long long v);
  Table& add(unsigned long long v);
  Table& add(int v) { return add(static_cast<long long>(v)); }
  Table& add(long v) { return add(static_cast<long long>(v)); }
  Table& add(std::size_t v) { return add(static_cast<unsigned long long>(v)); }

  /// Renders the table with a header rule; every column is padded to
  /// its widest cell.
  std::string to_string() const;
  /// Renders as RFC-4180-ish CSV (quotes cells containing comma/quote)
  /// for plotting pipelines.
  std::string to_csv() const;
  /// Prints to stdout.
  void print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a byte count as "16", "2K", "1M" the way the paper labels
/// message-size axes.
std::string format_bytes(std::uint64_t bytes);

}  // namespace pgasq
