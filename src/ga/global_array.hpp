// Minimal Global Arrays layer over the ARMCI runtime.
//
// Provides exactly what NWChem's SCF Fock build (Fig 10) needs from
// GA: block-distributed dense 2-D arrays of double with one-sided
// patch get/put/accumulate, plus the shared load-balance counter
// (NXTVAL). Patch operations translate to ARMCI strided transfers
// against each owning rank.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/comm.hpp"

namespace pgasq::ga {

using armci::Comm;
using armci::Handle;
using armci::RankId;

/// 2-D block distribution over a near-square process grid. The grid is
/// normally the full clique [0, p); after a fail-stop communicator
/// shrink it can instead cover an explicit member list of surviving
/// world ranks (grid positions — "virtual ranks" — map to members).
class Distribution2D {
 public:
  Distribution2D(int num_ranks, std::int64_t rows, std::int64_t cols);
  /// Member-list mode: the grid covers `members` (ascending world
  /// ranks) instead of the full clique.
  Distribution2D(std::vector<int> members, std::int64_t rows, std::int64_t cols);

  int grid_rows() const { return pr_; }
  int grid_cols() const { return pc_; }
  std::int64_t rows() const { return rows_; }
  std::int64_t cols() const { return cols_; }

  /// Row range [lo, hi) owned by grid row `gr`.
  std::pair<std::int64_t, std::int64_t> row_range(int gr) const;
  std::pair<std::int64_t, std::int64_t> col_range(int gc) const;

  RankId owner(std::int64_t i, std::int64_t j) const;
  int grid_row_of(std::int64_t i) const;
  int grid_col_of(std::int64_t j) const;
  /// World rank at grid cell (gr, gc).
  RankId rank_of(int gr, int gc) const {
    const int v = gr * pc_ + gc;
    return members_.empty() ? v : members_[static_cast<std::size_t>(v)];
  }
  /// Grid position ("virtual rank") of a participating world rank.
  int vrank_of(RankId world) const;
  /// True when `world` participates in the grid.
  bool is_member(RankId world) const;

  /// Local shape of rank r's block (may be 0 x n for ranks past the
  /// grid when p is not a perfect grid — we require p == pr*pc).
  std::pair<std::int64_t, std::int64_t> local_shape(RankId r) const;

 private:
  std::int64_t rows_, cols_;
  int pr_, pc_;
  /// Empty in full-clique mode; else ascending world ranks, one per
  /// grid position.
  std::vector<int> members_;
};

/// Block-distributed dense matrix of double.
class GlobalArray {
 public:
  /// Collective. Every rank must call with identical arguments.
  GlobalArray(Comm& comm, std::int64_t rows, std::int64_t cols);
  /// Member-mode collective (fail-stop communicator shrink): only the
  /// surviving `members` participate and hold blocks; every member
  /// must call with identical arguments.
  GlobalArray(Comm& comm, std::int64_t rows, std::int64_t cols,
              std::vector<int> members);

  std::int64_t rows() const { return dist_.rows(); }
  std::int64_t cols() const { return dist_.cols(); }
  const Distribution2D& distribution() const { return dist_; }

  // --- Patch operations: [rlo, rhi) x [clo, chi) ---------------------------
  // `buf` is row-major with leading dimension `ld` (elements per row).

  void get(std::int64_t rlo, std::int64_t rhi, std::int64_t clo, std::int64_t chi,
           double* buf, std::int64_t ld);
  void put(std::int64_t rlo, std::int64_t rhi, std::int64_t clo, std::int64_t chi,
           const double* buf, std::int64_t ld);
  void acc(double alpha, std::int64_t rlo, std::int64_t rhi, std::int64_t clo,
           std::int64_t chi, const double* buf, std::int64_t ld);

  void nb_get(std::int64_t rlo, std::int64_t rhi, std::int64_t clo, std::int64_t chi,
              double* buf, std::int64_t ld, Handle& handle);
  void nb_put(std::int64_t rlo, std::int64_t rhi, std::int64_t clo, std::int64_t chi,
              const double* buf, std::int64_t ld, Handle& handle);
  void nb_acc(double alpha, std::int64_t rlo, std::int64_t rhi, std::int64_t clo,
              std::int64_t chi, const double* buf, std::int64_t ld, Handle& handle);

  // --- Element gather/scatter (GA_Gather / GA_Scatter) ------------------------

  /// One (i, j) element coordinate.
  struct ElementIndex {
    std::int64_t i;
    std::int64_t j;
  };

  /// values[k] = A[idx[k]] — irregular one-sided reads batched into
  /// one I/O-vector operation per owning rank.
  void gather(const std::vector<ElementIndex>& idx, double* values);
  /// A[idx[k]] = values[k]. Indices must be unique within the call.
  void scatter(const std::vector<ElementIndex>& idx, const double* values);
  /// A[idx[k]] += alpha * values[k].
  void scatter_acc(double alpha, const std::vector<ElementIndex>& idx,
                   const double* values);

  // --- Whole-array helpers ----------------------------------------------------

  /// Sets every locally owned element (collective-ish: call on all
  /// ranks then sync()).
  void fill_local(double value);
  /// Fills local elements with fn(i, j).
  void fill_local(const std::function<double(std::int64_t, std::int64_t)>& fn);
  /// ARMCI barrier.
  void sync();

  /// Element read (1x1 get) — test/debug convenience.
  double read_element(std::int64_t i, std::int64_t j);

  // --- Local block ---------------------------------------------------------------

  double* local_data();
  std::pair<std::int64_t, std::int64_t> local_rows() const;
  std::pair<std::int64_t, std::int64_t> local_cols() const;
  std::int64_t local_ld() const { return local_cols_n_; }

  Comm& comm() { return comm_; }

 private:
  enum class Op { kGet, kPut, kAcc };
  void patch_op(Op op, double alpha, std::int64_t rlo, std::int64_t rhi,
                std::int64_t clo, std::int64_t chi, double* buf, std::int64_t ld,
                Handle& handle);
  /// Remote address of element (i, j).
  armci::RemotePtr element_ptr(std::int64_t i, std::int64_t j) const;
  void scatter_impl(bool accumulate, double alpha,
                    const std::vector<ElementIndex>& idx, const double* values);

  Comm& comm_;
  Distribution2D dist_;
  armci::GlobalMem* mem_;
  std::int64_t local_rows_n_, local_cols_n_;
};

/// The NXTVAL shared load-balance counter (hosted at rank `home`).
class SharedCounter {
 public:
  /// Collective.
  explicit SharedCounter(Comm& comm, RankId home = 0);

  /// Atomically fetches and increments (the nxtask primitive of
  /// Fig 10). This is the operation the asynchronous-thread design
  /// accelerates (S III-D, Fig 9).
  std::int64_t next();

  /// Collective reset to zero for the next SCF iteration.
  void reset();

  /// Current value (a fetch-and-add of 0).
  std::int64_t read();

  RankId home() const { return home_; }

 private:
  Comm& comm_;
  RankId home_;
  armci::GlobalMem* mem_;
};

}  // namespace pgasq::ga
