// Distributed matrix multiply over Global Arrays (GA_Dgemm analogue),
// in the pull-based SUMMA style: the multiply proceeds in panels along
// the contraction dimension; every rank one-sidedly GETs the A-panel
// rows and B-panel columns it needs, multiplies locally, and adds into
// its own block of C. The overlap of non-blocking panel gets with the
// accumulating local dgemm is exactly the paper's S III-E scenario.
#pragma once

#include <cstdint>

#include "ga/global_array.hpp"

namespace pgasq::ga {

struct DgemmOptions {
  /// Contraction panel width.
  std::int64_t panel = 32;
  /// Model time per fused multiply-add (ns); A2 cores are slow.
  double ns_per_flop = 0.6;
};

/// C = alpha * A * B + beta * C. Shapes: A is m x k, B is k x n, C is
/// m x n. Collective; every rank passes identical arguments.
void dgemm(double alpha, GlobalArray& a, GlobalArray& b, double beta,
           GlobalArray& c, const DgemmOptions& options = {});

}  // namespace pgasq::ga
