#include "ga/global_array.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace pgasq::ga {

namespace {
/// Near-square factorization p = pr * pc with pr <= pc.
std::pair<int, int> process_grid(int p) {
  int pr = static_cast<int>(std::sqrt(static_cast<double>(p)));
  while (pr > 1 && p % pr != 0) --pr;
  return {pr, p / pr};
}

/// Ceil-div block bounds: unit `u` of `n` split across `parts`.
std::pair<std::int64_t, std::int64_t> block_range(std::int64_t n, int parts, int idx) {
  const std::int64_t base = n / parts;
  const std::int64_t extra = n % parts;
  // First `extra` parts get one more element.
  const std::int64_t lo =
      static_cast<std::int64_t>(idx) * base + std::min<std::int64_t>(idx, extra);
  const std::int64_t hi = lo + base + (idx < extra ? 1 : 0);
  return {lo, hi};
}
}  // namespace

Distribution2D::Distribution2D(int num_ranks, std::int64_t rows, std::int64_t cols)
    : rows_(rows), cols_(cols) {
  PGASQ_CHECK(num_ranks >= 1 && rows >= 1 && cols >= 1);
  const auto [pr, pc] = process_grid(num_ranks);
  pr_ = pr;
  pc_ = pc;
}

Distribution2D::Distribution2D(std::vector<int> members, std::int64_t rows,
                               std::int64_t cols)
    : rows_(rows), cols_(cols), members_(std::move(members)) {
  PGASQ_CHECK(!members_.empty() && rows >= 1 && cols >= 1);
  const auto [pr, pc] = process_grid(static_cast<int>(members_.size()));
  pr_ = pr;
  pc_ = pc;
}

int Distribution2D::vrank_of(RankId world) const {
  if (members_.empty()) return world;
  const auto it = std::find(members_.begin(), members_.end(), world);
  PGASQ_CHECK(it != members_.end(), << "rank " << world << " is not a member of this "
                                    << "shrunk distribution");
  return static_cast<int>(it - members_.begin());
}

bool Distribution2D::is_member(RankId world) const {
  if (members_.empty()) return world >= 0 && world < pr_ * pc_;
  return std::find(members_.begin(), members_.end(), world) != members_.end();
}

std::pair<std::int64_t, std::int64_t> Distribution2D::row_range(int gr) const {
  PGASQ_CHECK(gr >= 0 && gr < pr_);
  return block_range(rows_, pr_, gr);
}

std::pair<std::int64_t, std::int64_t> Distribution2D::col_range(int gc) const {
  PGASQ_CHECK(gc >= 0 && gc < pc_);
  return block_range(cols_, pc_, gc);
}

int Distribution2D::grid_row_of(std::int64_t i) const {
  PGASQ_CHECK(i >= 0 && i < rows_);
  // Inverse of block_range: search is fine (pr_ is small), but compute
  // directly from the uneven-block arithmetic.
  const std::int64_t base = rows_ / pr_;
  const std::int64_t extra = rows_ % pr_;
  const std::int64_t fat = (base + 1) * extra;  // rows covered by fat blocks
  if (i < fat) return static_cast<int>(i / (base + 1));
  PGASQ_CHECK(base > 0, << "more grid rows than matrix rows");
  return static_cast<int>(extra + (i - fat) / base);
}

int Distribution2D::grid_col_of(std::int64_t j) const {
  PGASQ_CHECK(j >= 0 && j < cols_);
  const std::int64_t base = cols_ / pc_;
  const std::int64_t extra = cols_ % pc_;
  const std::int64_t fat = (base + 1) * extra;
  if (j < fat) return static_cast<int>(j / (base + 1));
  PGASQ_CHECK(base > 0, << "more grid cols than matrix cols");
  return static_cast<int>(extra + (j - fat) / base);
}

RankId Distribution2D::owner(std::int64_t i, std::int64_t j) const {
  return rank_of(grid_row_of(i), grid_col_of(j));
}

std::pair<std::int64_t, std::int64_t> Distribution2D::local_shape(RankId r) const {
  const int v = vrank_of(r);
  const int gr = v / pc_;
  const int gc = v % pc_;
  const auto [rlo, rhi] = row_range(gr);
  const auto [clo, chi] = col_range(gc);
  return {rhi - rlo, chi - clo};
}

GlobalArray::GlobalArray(Comm& comm, std::int64_t rows, std::int64_t cols)
    : GlobalArray(comm, rows, cols, std::vector<int>{}) {}

GlobalArray::GlobalArray(Comm& comm, std::int64_t rows, std::int64_t cols,
                         std::vector<int> members)
    : comm_(comm),
      dist_(members.empty() ? Distribution2D(comm.nprocs(), rows, cols)
                            : Distribution2D(std::move(members), rows, cols)) {
  const auto [lr, lc] = dist_.local_shape(comm.rank());
  local_rows_n_ = lr;
  local_cols_n_ = lc;
  // Every rank allocates the largest block so the collective slab size
  // is uniform (GA does the same with its mirrored max-block layout).
  std::size_t max_bytes = 0;
  for (int gr = 0; gr < dist_.grid_rows(); ++gr) {
    for (int gc = 0; gc < dist_.grid_cols(); ++gc) {
      const auto [brlo, brhi] = dist_.row_range(gr);
      const auto [bclo, bchi] = dist_.col_range(gc);
      max_bytes = std::max(max_bytes, static_cast<std::size_t>(brhi - brlo) *
                                          static_cast<std::size_t>(bchi - bclo) *
                                          sizeof(double));
    }
  }
  PGASQ_CHECK(max_bytes > 0, << "array smaller than the process grid");
  mem_ = &comm.malloc_collective(max_bytes);
}

double* GlobalArray::local_data() {
  return reinterpret_cast<double*>(mem_->local(comm_.rank()));
}

std::pair<std::int64_t, std::int64_t> GlobalArray::local_rows() const {
  return dist_.row_range(dist_.vrank_of(comm_.rank()) / dist_.grid_cols());
}

std::pair<std::int64_t, std::int64_t> GlobalArray::local_cols() const {
  return dist_.col_range(dist_.vrank_of(comm_.rank()) % dist_.grid_cols());
}

void GlobalArray::fill_local(double value) {
  fill_local([value](std::int64_t, std::int64_t) { return value; });
}

void GlobalArray::fill_local(
    const std::function<double(std::int64_t, std::int64_t)>& fn) {
  const auto [rlo, rhi] = local_rows();
  const auto [clo, chi] = local_cols();
  double* d = local_data();
  for (std::int64_t i = rlo; i < rhi; ++i) {
    for (std::int64_t j = clo; j < chi; ++j) {
      d[(i - rlo) * local_cols_n_ + (j - clo)] = fn(i, j);
    }
  }
}

void GlobalArray::sync() { comm_.barrier(); }

void GlobalArray::patch_op(Op op, double alpha, std::int64_t rlo, std::int64_t rhi,
                           std::int64_t clo, std::int64_t chi, double* buf,
                           std::int64_t ld, Handle& handle) {
  PGASQ_CHECK(rlo >= 0 && rlo < rhi && rhi <= rows(), << "rows [" << rlo << "," << rhi << ")");
  PGASQ_CHECK(clo >= 0 && clo < chi && chi <= cols(), << "cols [" << clo << "," << chi << ")");
  PGASQ_CHECK(ld >= chi - clo, << "leading dimension " << ld);
  const int gr_lo = dist_.grid_row_of(rlo);
  const int gr_hi = dist_.grid_row_of(rhi - 1);
  const int gc_lo = dist_.grid_col_of(clo);
  const int gc_hi = dist_.grid_col_of(chi - 1);
  for (int gr = gr_lo; gr <= gr_hi; ++gr) {
    const auto [brlo, brhi] = dist_.row_range(gr);
    const std::int64_t irlo = std::max(rlo, brlo);
    const std::int64_t irhi = std::min(rhi, brhi);
    for (int gc = gc_lo; gc <= gc_hi; ++gc) {
      const auto [bclo, bchi] = dist_.col_range(gc);
      const std::int64_t iclo = std::max(clo, bclo);
      const std::int64_t ichi = std::min(chi, bchi);
      const RankId owner = dist_.rank_of(gr, gc);
      const auto [orows, ocols] = dist_.local_shape(owner);
      PGASQ_CHECK(orows > 0 && ocols > 0);
      // Remote address of the intersection's first element.
      const std::size_t roff =
          (static_cast<std::size_t>(irlo - brlo) * static_cast<std::size_t>(ocols) +
           static_cast<std::size_t>(iclo - bclo)) *
          sizeof(double);
      const armci::RemotePtr remote = mem_->at(owner, roff);
      double* lbuf = buf + (irlo - rlo) * ld + (iclo - clo);
      const std::uint64_t nrows = static_cast<std::uint64_t>(irhi - irlo);
      const std::uint64_t row_bytes =
          static_cast<std::uint64_t>(ichi - iclo) * sizeof(double);
      const std::uint64_t remote_pitch =
          static_cast<std::uint64_t>(ocols) * sizeof(double);
      const std::uint64_t local_pitch = static_cast<std::uint64_t>(ld) * sizeof(double);
      switch (op) {
        case Op::kGet: {
          // Spec src side = remote for gets.
          armci::StridedSpec spec =
              nrows == 1 ? armci::StridedSpec::contiguous(row_bytes)
                         : armci::StridedSpec::rect2d(nrows, row_bytes, remote_pitch,
                                                      local_pitch);
          comm_.nb_get_strided(remote, lbuf, spec, handle);
          break;
        }
        case Op::kPut: {
          armci::StridedSpec spec =
              nrows == 1 ? armci::StridedSpec::contiguous(row_bytes)
                         : armci::StridedSpec::rect2d(nrows, row_bytes, local_pitch,
                                                      remote_pitch);
          comm_.nb_put_strided(lbuf, remote, spec, handle);
          break;
        }
        case Op::kAcc: {
          armci::StridedSpec spec =
              nrows == 1 ? armci::StridedSpec::contiguous(row_bytes)
                         : armci::StridedSpec::rect2d(nrows, row_bytes, local_pitch,
                                                      remote_pitch);
          comm_.nb_acc_strided(alpha, lbuf, remote, spec, handle);
          break;
        }
      }
    }
  }
}

void GlobalArray::nb_get(std::int64_t rlo, std::int64_t rhi, std::int64_t clo,
                         std::int64_t chi, double* buf, std::int64_t ld,
                         Handle& handle) {
  patch_op(Op::kGet, 0.0, rlo, rhi, clo, chi, buf, ld, handle);
}

void GlobalArray::nb_put(std::int64_t rlo, std::int64_t rhi, std::int64_t clo,
                         std::int64_t chi, const double* buf, std::int64_t ld,
                         Handle& handle) {
  patch_op(Op::kPut, 0.0, rlo, rhi, clo, chi, const_cast<double*>(buf), ld, handle);
}

void GlobalArray::nb_acc(double alpha, std::int64_t rlo, std::int64_t rhi,
                         std::int64_t clo, std::int64_t chi, const double* buf,
                         std::int64_t ld, Handle& handle) {
  patch_op(Op::kAcc, alpha, rlo, rhi, clo, chi, const_cast<double*>(buf), ld, handle);
}

void GlobalArray::get(std::int64_t rlo, std::int64_t rhi, std::int64_t clo,
                      std::int64_t chi, double* buf, std::int64_t ld) {
  Handle h;
  nb_get(rlo, rhi, clo, chi, buf, ld, h);
  comm_.wait(h);
}

void GlobalArray::put(std::int64_t rlo, std::int64_t rhi, std::int64_t clo,
                      std::int64_t chi, const double* buf, std::int64_t ld) {
  Handle h;
  nb_put(rlo, rhi, clo, chi, buf, ld, h);
  comm_.wait(h);
}

void GlobalArray::acc(double alpha, std::int64_t rlo, std::int64_t rhi,
                      std::int64_t clo, std::int64_t chi, const double* buf,
                      std::int64_t ld) {
  Handle h;
  nb_acc(alpha, rlo, rhi, clo, chi, buf, ld, h);
  comm_.wait(h);
}

armci::RemotePtr GlobalArray::element_ptr(std::int64_t i, std::int64_t j) const {
  PGASQ_CHECK(i >= 0 && i < rows() && j >= 0 && j < cols(),
              << "element (" << i << "," << j << ")");
  const RankId owner = dist_.owner(i, j);
  const int gr = dist_.vrank_of(owner) / dist_.grid_cols();
  const int gc = dist_.vrank_of(owner) % dist_.grid_cols();
  const std::int64_t rlo = dist_.row_range(gr).first;
  const std::int64_t clo = dist_.col_range(gc).first;
  const std::int64_t ocols = dist_.local_shape(owner).second;
  const std::size_t off =
      (static_cast<std::size_t>(i - rlo) * static_cast<std::size_t>(ocols) +
       static_cast<std::size_t>(j - clo)) *
      sizeof(double);
  return mem_->at(owner, off);
}

void GlobalArray::gather(const std::vector<ElementIndex>& idx, double* values) {
  PGASQ_CHECK(values != nullptr);
  if (idx.empty()) return;
  // Group indices by owner so each rank is hit with ONE vector get.
  std::vector<std::vector<std::size_t>> by_owner(
      static_cast<std::size_t>(comm_.nprocs()));
  for (std::size_t k = 0; k < idx.size(); ++k) {
    by_owner[static_cast<std::size_t>(dist_.owner(idx[k].i, idx[k].j))].push_back(k);
  }
  Handle h;
  for (int owner = 0; owner < comm_.nprocs(); ++owner) {
    const auto& ks = by_owner[static_cast<std::size_t>(owner)];
    if (ks.empty()) continue;
    Comm::VectorDescriptor d;
    d.segment_bytes = sizeof(double);
    for (const std::size_t k : ks) {
      d.local.push_back(reinterpret_cast<std::byte*>(values + k));
      d.remote.push_back(element_ptr(idx[k].i, idx[k].j).addr);
    }
    comm_.nb_get_v(owner, d, h);
  }
  comm_.wait(h);
}

void GlobalArray::scatter_impl(bool accumulate, double alpha,
                               const std::vector<ElementIndex>& idx,
                               const double* values) {
  PGASQ_CHECK(values != nullptr);
  if (idx.empty()) return;
  std::vector<std::vector<std::size_t>> by_owner(
      static_cast<std::size_t>(comm_.nprocs()));
  for (std::size_t k = 0; k < idx.size(); ++k) {
    by_owner[static_cast<std::size_t>(dist_.owner(idx[k].i, idx[k].j))].push_back(k);
  }
  Handle h;
  for (int owner = 0; owner < comm_.nprocs(); ++owner) {
    const auto& ks = by_owner[static_cast<std::size_t>(owner)];
    if (ks.empty()) continue;
    Comm::VectorDescriptor d;
    d.segment_bytes = sizeof(double);
    for (const std::size_t k : ks) {
      d.local.push_back(
          reinterpret_cast<std::byte*>(const_cast<double*>(values + k)));
      d.remote.push_back(element_ptr(idx[k].i, idx[k].j).addr);
    }
    if (accumulate) {
      comm_.nb_acc_v(alpha, owner, d, h);
    } else {
      comm_.nb_put_v(owner, d, h);
    }
  }
  comm_.wait(h);
}

void GlobalArray::scatter(const std::vector<ElementIndex>& idx,
                          const double* values) {
  scatter_impl(/*accumulate=*/false, 0.0, idx, values);
}

void GlobalArray::scatter_acc(double alpha, const std::vector<ElementIndex>& idx,
                              const double* values) {
  scatter_impl(/*accumulate=*/true, alpha, idx, values);
}

double GlobalArray::read_element(std::int64_t i, std::int64_t j) {
  double v = 0.0;
  get(i, i + 1, j, j + 1, &v, 1);
  return v;
}

SharedCounter::SharedCounter(Comm& comm, RankId home) : comm_(comm), home_(home) {
  PGASQ_CHECK(home >= 0 && home < comm.nprocs());
  mem_ = &comm.malloc_collective(sizeof(std::int64_t));
}

std::int64_t SharedCounter::next() {
  return comm_.fetch_add(mem_->at(home_), 1);
}

std::int64_t SharedCounter::read() {
  return comm_.fetch_add(mem_->at(home_), 0);
}

void SharedCounter::reset() {
  comm_.barrier();
  if (comm_.rank() == home_) {
    *reinterpret_cast<std::int64_t*>(mem_->local(home_)) = 0;
  }
  comm_.barrier();
}

}  // namespace pgasq::ga
