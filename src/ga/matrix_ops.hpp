// Whole-array operations on GlobalArrays (the GA_* matrix utilities
// NWChem leans on around the Fock build: copy, scale, add, transpose,
// symmetrize). All are collective; local parts are computed in place
// and remote parts move through one-sided patch transfers.
#pragma once

#include "ga/global_array.hpp"

namespace pgasq::ga {

/// dst = src (same shape, same distribution). Collective.
void copy(GlobalArray& src, GlobalArray& dst);

/// a *= alpha. Collective.
void scale(GlobalArray& a, double alpha);

/// dst = alpha * a + beta * b (all same shape). Collective.
void add(double alpha, GlobalArray& a, double beta, GlobalArray& b,
         GlobalArray& dst);

/// dst = transpose(src); src must be square for in-distribution
/// transpose. Collective: every rank fetches the mirrored patch of its
/// own block with a one-sided strided get.
void transpose_into(GlobalArray& src, GlobalArray& dst);

/// a = (a + a^T) / 2 — the Fock-matrix symmetrization step of SCF.
/// Collective. `scratch` must have a's shape.
void symmetrize(GlobalArray& a, GlobalArray& scratch);

/// Frobenius norm squared. Collective; same value on all ranks.
double norm2(GlobalArray& a);

}  // namespace pgasq::ga
