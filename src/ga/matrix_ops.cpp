#include "ga/matrix_ops.hpp"

#include <vector>

#include "ga/collectives.hpp"
#include "util/error.hpp"

namespace pgasq::ga {

namespace {
void check_same_shape(const GlobalArray& a, const GlobalArray& b) {
  PGASQ_CHECK(a.rows() == b.rows() && a.cols() == b.cols(),
              << "shape mismatch: " << a.rows() << "x" << a.cols() << " vs "
              << b.rows() << "x" << b.cols());
}

/// Charges the local arithmetic for n element operations.
void charge_flops(Comm& comm, std::int64_t n) {
  comm.compute(from_ns(0.6 * static_cast<double>(n)));
}
}  // namespace

void copy(GlobalArray& src, GlobalArray& dst) {
  check_same_shape(src, dst);
  const auto [rlo, rhi] = src.local_rows();
  const auto [clo, chi] = src.local_cols();
  const double* s = src.local_data();
  double* d = dst.local_data();
  for (std::int64_t i = 0; i < (rhi - rlo) * src.local_ld(); ++i) d[i] = s[i];
  charge_flops(src.comm(), (rhi - rlo) * (chi - clo));
  src.comm().barrier();
}

void scale(GlobalArray& a, double alpha) {
  const auto [rlo, rhi] = a.local_rows();
  const auto [clo, chi] = a.local_cols();
  double* d = a.local_data();
  for (std::int64_t i = 0; i < (rhi - rlo) * a.local_ld(); ++i) d[i] *= alpha;
  charge_flops(a.comm(), (rhi - rlo) * (chi - clo));
  a.comm().barrier();
}

void add(double alpha, GlobalArray& a, double beta, GlobalArray& b,
         GlobalArray& dst) {
  check_same_shape(a, b);
  check_same_shape(a, dst);
  const auto [rlo, rhi] = a.local_rows();
  const auto [clo, chi] = a.local_cols();
  const double* da = a.local_data();
  const double* db = b.local_data();
  double* dd = dst.local_data();
  for (std::int64_t i = 0; i < (rhi - rlo) * a.local_ld(); ++i) {
    dd[i] = alpha * da[i] + beta * db[i];
  }
  charge_flops(a.comm(), 2 * (rhi - rlo) * (chi - clo));
  a.comm().barrier();
}

void transpose_into(GlobalArray& src, GlobalArray& dst) {
  PGASQ_CHECK(src.rows() == dst.cols() && src.cols() == dst.rows(),
              << "transpose shape mismatch");
  // Settle everyone's local writes before reading remote blocks.
  src.comm().barrier();
  // Every rank fetches the mirror patch of ITS dst block one-sidedly,
  // then transposes locally — the canonical GA_Transpose structure.
  const auto [rlo, rhi] = dst.local_rows();
  const auto [clo, chi] = dst.local_cols();
  const std::int64_t nr = rhi - rlo;
  const std::int64_t nc = chi - clo;
  if (nr > 0 && nc > 0) {
    std::vector<double> mirror(static_cast<std::size_t>(nr * nc));
    // dst[i][j] = src[j][i]: need src patch [clo,chi) x [rlo,rhi).
    src.get(clo, chi, rlo, rhi, mirror.data(), nr);
    double* d = dst.local_data();
    for (std::int64_t i = 0; i < nr; ++i) {
      for (std::int64_t j = 0; j < nc; ++j) {
        d[i * dst.local_ld() + j] = mirror[static_cast<std::size_t>(j * nr + i)];
      }
    }
    charge_flops(dst.comm(), nr * nc);
  }
  dst.comm().barrier();
}

void symmetrize(GlobalArray& a, GlobalArray& scratch) {
  PGASQ_CHECK(a.rows() == a.cols(), << "symmetrize needs a square matrix");
  check_same_shape(a, scratch);
  transpose_into(a, scratch);
  add(0.5, a, 0.5, scratch, a);
}

double norm2(GlobalArray& a) { return dot(a, a); }

}  // namespace pgasq::ga
