#include "ga/dgemm.hpp"

#include <algorithm>
#include <vector>

#include "util/error.hpp"

namespace pgasq::ga {

void dgemm(double alpha, GlobalArray& a, GlobalArray& b, double beta,
           GlobalArray& c, const DgemmOptions& options) {
  PGASQ_CHECK(a.cols() == b.rows(), << "inner dimension mismatch: " << a.cols()
                                    << " vs " << b.rows());
  PGASQ_CHECK(a.rows() == c.rows() && b.cols() == c.cols(), << "C shape mismatch");
  PGASQ_CHECK(options.panel >= 1);
  Comm& comm = c.comm();
  const std::int64_t k_total = a.cols();

  // Settle producers of A and B before pulling panels.
  comm.barrier();

  const auto [rlo, rhi] = c.local_rows();
  const auto [clo, chi] = c.local_cols();
  const std::int64_t m_local = rhi - rlo;
  const std::int64_t n_local = chi - clo;
  double* cd = c.local_data();
  // beta-scale the local C block first.
  for (std::int64_t i = 0; i < m_local; ++i) {
    for (std::int64_t j = 0; j < n_local; ++j) {
      cd[i * c.local_ld() + j] *= beta;
    }
  }

  if (m_local > 0 && n_local > 0) {
    const std::int64_t panel = std::min(options.panel, k_total);
    std::vector<double> apan(static_cast<std::size_t>(m_local * panel));
    std::vector<double> bpan(static_cast<std::size_t>(panel * n_local));
    std::vector<double> apan_next(apan.size());
    std::vector<double> bpan_next(bpan.size());

    // Software pipeline: prefetch panel p+1 while multiplying panel p
    // (non-blocking gets overlapped with the local dgemm — the S III-E
    // communication/computation-overlap pattern).
    auto fetch = [&](std::int64_t klo, std::vector<double>& ab,
                     std::vector<double>& bb, armci::Handle& h) {
      const std::int64_t kw = std::min(panel, k_total - klo);
      a.nb_get(rlo, rhi, klo, klo + kw, ab.data(), panel, h);
      b.nb_get(klo, klo + kw, clo, chi, bb.data(), n_local, h);
    };
    armci::Handle inflight;
    fetch(0, apan, bpan, inflight);

    for (std::int64_t klo = 0; klo < k_total; klo += panel) {
      const std::int64_t kw = std::min(panel, k_total - klo);
      comm.wait(inflight);  // this panel has landed in apan/bpan
      armci::Handle prefetch;
      const bool more = klo + panel < k_total;
      if (more) fetch(klo + panel, apan_next, bpan_next, prefetch);
      for (std::int64_t i = 0; i < m_local; ++i) {
        for (std::int64_t j = 0; j < n_local; ++j) {
          double s = 0.0;
          for (std::int64_t kk = 0; kk < kw; ++kk) {
            s += apan[static_cast<std::size_t>(i * panel + kk)] *
                 bpan[static_cast<std::size_t>(kk * n_local + j)];
          }
          cd[i * c.local_ld() + j] += alpha * s;
        }
      }
      comm.compute(from_ns(options.ns_per_flop *
                           static_cast<double>(m_local * n_local * kw)));
      if (more) {
        inflight = prefetch;
        apan.swap(apan_next);
        bpan.swap(bpan_next);
      }
    }
  }
  comm.barrier();
}

}  // namespace pgasq::ga
