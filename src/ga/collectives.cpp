#include "ga/collectives.hpp"

#include "coll/coll.hpp"
#include "coll/nbc.hpp"
#include "grp/group.hpp"
#include "util/error.hpp"

namespace pgasq::ga {

void gop_sum(Comm& comm, double* x, std::size_t n, grp::ProcGroup* group) {
  PGASQ_CHECK(x != nullptr && n > 0);
  // GA_Dgop("+") rides the collectives engine: algorithm selection
  // (tree / recursive doubling / torus ring / hardware logic) per
  // message size and geometry, persistent scratch instead of a
  // malloc/free per call, and any process count — the old fallback
  // serialized non-power-of-two cliques through a gather at rank 0.
  if (group != nullptr) {
    group->allreduce_sum(x, n);
    return;
  }
  coll::CollEngine::of(comm).allreduce_sum(x, n);
}

double element_sum(GlobalArray& a, grp::ProcGroup* group) {
  const auto [rlo, rhi] = a.local_rows();
  const auto [clo, chi] = a.local_cols();
  const double* d = a.local_data();
  double partial = 0.0;
  for (std::int64_t i = 0; i < rhi - rlo; ++i) {
    for (std::int64_t j = 0; j < chi - clo; ++j) {
      partial += d[i * a.local_ld() + j];
    }
  }
  // Charge the local scan.
  a.comm().compute(from_ns(0.5 * static_cast<double>((rhi - rlo) * (chi - clo))));
  gop_sum(a.comm(), &partial, 1, group);
  return partial;
}

fut::Future<fut::Unit> ielement_sum(GlobalArray& a, double* out) {
  PGASQ_CHECK(out != nullptr);
  // The identical local scan (and compute charge) as element_sum, so a
  // recdbl-pinned blocking run and an overlapped run produce bitwise
  // equal sums.
  const auto [rlo, rhi] = a.local_rows();
  const auto [clo, chi] = a.local_cols();
  const double* d = a.local_data();
  double partial = 0.0;
  for (std::int64_t i = 0; i < rhi - rlo; ++i) {
    for (std::int64_t j = 0; j < chi - clo; ++j) {
      partial += d[i * a.local_ld() + j];
    }
  }
  a.comm().compute(from_ns(0.5 * static_cast<double>((rhi - rlo) * (chi - clo))));
  *out = partial;
  return coll::NbcEngine::of(a.comm()).iallreduce_sum(out, 1);
}

double dot(GlobalArray& a, GlobalArray& b, grp::ProcGroup* group) {
  PGASQ_CHECK(a.rows() == b.rows() && a.cols() == b.cols(),
              << "dot of mismatched arrays");
  const auto [rlo, rhi] = a.local_rows();
  const auto [clo, chi] = a.local_cols();
  const double* da = a.local_data();
  const double* db = b.local_data();
  double partial = 0.0;
  for (std::int64_t i = 0; i < rhi - rlo; ++i) {
    for (std::int64_t j = 0; j < chi - clo; ++j) {
      partial += da[i * a.local_ld() + j] * db[i * b.local_ld() + j];
    }
  }
  a.comm().compute(from_ns(1.0 * static_cast<double>((rhi - rlo) * (chi - clo))));
  gop_sum(a.comm(), &partial, 1, group);
  return partial;
}

}  // namespace pgasq::ga
