#include "ga/collectives.hpp"

#include <bit>
#include <cstring>
#include <vector>

#include "util/error.hpp"

namespace pgasq::ga {

namespace {

/// Spins (politely: one progress pass + a short model delay per poll)
/// until the flag, written by a remote accumulate, reaches `expected`.
/// Works in both progress modes: in Default mode the progress() call
/// itself services the incoming accumulate; with an async thread the
/// flag flips underneath us.
void wait_flag(Comm& comm, const volatile double* flag, double expected) {
  while (*flag < expected) {
    comm.progress();
    comm.compute(from_ns(200));
  }
}

/// Recursive-doubling allreduce for power-of-two p. Round r partners
/// exchange partial sums via accumulate into per-round scratch slots.
void gop_recursive_doubling(Comm& comm, double* x, std::size_t n, int rounds) {
  // Scratch layout per rank: rounds * (n data + 1 flag) doubles.
  const std::size_t slot = n + 1;
  armci::GlobalMem& scratch =
      comm.malloc_collective(sizeof(double) * slot * static_cast<std::size_t>(rounds));
  auto* mine = reinterpret_cast<double*>(scratch.local(comm.rank()));
  std::memset(mine, 0, sizeof(double) * slot * static_cast<std::size_t>(rounds));
  comm.barrier();
  std::vector<double> message(slot);
  for (int r = 0; r < rounds; ++r) {
    const int partner = comm.rank() ^ (1 << r);
    std::memcpy(message.data(), x, sizeof(double) * n);
    message[n] = 1.0;  // the flag rides in the same accumulate: ordered
    comm.acc(1.0, message.data(),
             scratch.at(partner, sizeof(double) * slot * static_cast<std::size_t>(r)),
             slot);
    const volatile double* flag = mine + slot * static_cast<std::size_t>(r) + n;
    wait_flag(comm, flag, 1.0);
    const double* incoming = mine + slot * static_cast<std::size_t>(r);
    for (std::size_t i = 0; i < n; ++i) x[i] += incoming[i];
  }
  comm.fence_all();
  comm.free_collective(scratch);
}

/// Gather-to-root + broadcast for arbitrary p.
void gop_central(Comm& comm, double* x, std::size_t n) {
  const std::size_t slot = n + 1;
  armci::GlobalMem& scratch = comm.malloc_collective(sizeof(double) * slot);
  auto* mine = reinterpret_cast<double*>(scratch.local(comm.rank()));
  std::memset(mine, 0, sizeof(double) * slot);
  comm.barrier();
  std::vector<double> message(slot);
  std::memcpy(message.data(), x, sizeof(double) * n);
  message[n] = 1.0;
  // Everyone (root included) accumulates into root's scratch.
  comm.acc(1.0, message.data(), scratch.at(0), slot);
  if (comm.rank() == 0) {
    wait_flag(comm, mine + n, static_cast<double>(comm.nprocs()));
    std::memcpy(x, mine, sizeof(double) * n);
    // Broadcast the result (puts) and release everyone (flag acc).
    std::vector<double> result(slot);
    std::memcpy(result.data(), x, sizeof(double) * n);
    result[n] = static_cast<double>(comm.nprocs()) + 1.0;
    for (int t = 1; t < comm.nprocs(); ++t) {
      comm.put(result.data(), scratch.at(t), sizeof(double) * slot);
    }
    comm.fence_all();
  } else {
    wait_flag(comm, mine + n, static_cast<double>(comm.nprocs()) + 1.0);
    std::memcpy(x, mine, sizeof(double) * n);
  }
  comm.barrier();
  comm.free_collective(scratch);
}

}  // namespace

void gop_sum(Comm& comm, double* x, std::size_t n) {
  PGASQ_CHECK(x != nullptr && n > 0);
  const auto p = static_cast<unsigned>(comm.nprocs());
  if (p == 1) return;
  if (std::has_single_bit(p)) {
    gop_recursive_doubling(comm, x, n, std::countr_zero(p));
  } else {
    gop_central(comm, x, n);
  }
}

double element_sum(GlobalArray& a) {
  const auto [rlo, rhi] = a.local_rows();
  const auto [clo, chi] = a.local_cols();
  const double* d = a.local_data();
  double partial = 0.0;
  for (std::int64_t i = 0; i < rhi - rlo; ++i) {
    for (std::int64_t j = 0; j < chi - clo; ++j) {
      partial += d[i * a.local_ld() + j];
    }
  }
  // Charge the local scan.
  a.comm().compute(from_ns(0.5 * static_cast<double>((rhi - rlo) * (chi - clo))));
  gop_sum(a.comm(), &partial, 1);
  return partial;
}

double dot(GlobalArray& a, GlobalArray& b) {
  PGASQ_CHECK(a.rows() == b.rows() && a.cols() == b.cols(),
              << "dot of mismatched arrays");
  const auto [rlo, rhi] = a.local_rows();
  const auto [clo, chi] = a.local_cols();
  const double* da = a.local_data();
  const double* db = b.local_data();
  double partial = 0.0;
  for (std::int64_t i = 0; i < rhi - rlo; ++i) {
    for (std::int64_t j = 0; j < chi - clo; ++j) {
      partial += da[i * a.local_ld() + j] * db[i * b.local_ld() + j];
    }
  }
  a.comm().compute(from_ns(1.0 * static_cast<double>((rhi - rlo) * (chi - clo))));
  gop_sum(a.comm(), &partial, 1);
  return partial;
}

}  // namespace pgasq::ga
