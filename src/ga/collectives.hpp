// Collective reductions over the one-sided runtime.
//
// NWChem's SCF loop ends every iteration with global reductions
// (energy, convergence norms). GA implements these on top of ARMCI
// one-sided primitives; we do the same: a recursive-doubling
// allreduce built from accumulates (associative, so partial sums
// combine in any arrival order) with flag words for pairwise
// synchronization, falling back to a gather-to-root scheme for
// non-power-of-two process counts.
#pragma once

#include <cstddef>

#include "ga/global_array.hpp"

namespace pgasq::ga {

/// In-place elementwise double-sum allreduce (GA_Dgop with op "+"):
/// after the call, x[0..n) on every rank holds the sum over ranks.
/// Collective; every rank passes the same n.
void gop_sum(Comm& comm, double* x, std::size_t n);

/// Global dot product <a, b> over identically distributed arrays.
/// Collective; returns the same value on every rank.
double dot(GlobalArray& a, GlobalArray& b);

/// Sum of all elements of the array. Collective.
double element_sum(GlobalArray& a);

}  // namespace pgasq::ga
