// Collective reductions over the one-sided runtime.
//
// NWChem's SCF loop ends every iteration with global reductions
// (energy, convergence norms). These now route through the
// topology-aware collectives engine (coll::CollEngine, see
// docs/collectives.md), which picks among binomial trees, recursive
// doubling, torus bucket rings, and the BG/Q collective-logic model
// per invocation — replacing the seed's generic recursive doubling
// and its gather-to-root serialization at non-power-of-two counts.
#pragma once

#include <cstddef>

#include "ga/global_array.hpp"

namespace pgasq::ga {

/// In-place elementwise double-sum allreduce (GA_Dgop with op "+"):
/// after the call, x[0..n) on every rank holds the sum over ranks.
/// Collective; every rank passes the same n.
void gop_sum(Comm& comm, double* x, std::size_t n);

/// Global dot product <a, b> over identically distributed arrays.
/// Collective; returns the same value on every rank.
double dot(GlobalArray& a, GlobalArray& b);

/// Sum of all elements of the array. Collective.
double element_sum(GlobalArray& a);

}  // namespace pgasq::ga
