// Collective reductions over the one-sided runtime.
//
// NWChem's SCF loop ends every iteration with global reductions
// (energy, convergence norms). These now route through the
// topology-aware collectives engine (coll::CollEngine, see
// docs/collectives.md), which picks among binomial trees, recursive
// doubling, torus bucket rings, and the BG/Q collective-logic model
// per invocation — replacing the seed's generic recursive doubling
// and its gather-to-root serialization at non-power-of-two counts.
#pragma once

#include <cstddef>

#include "async/future.hpp"
#include "ga/global_array.hpp"

namespace pgasq::grp {
class ProcGroup;
}

namespace pgasq::ga {

/// In-place elementwise double-sum allreduce (GA_Dgop with op "+"):
/// after the call, x[0..n) on every rank holds the sum over ranks.
/// Collective; every rank passes the same n. A non-null `group`
/// scopes the reduction to that process group (GA_Pgroup_dgop):
/// collective over its members only, using the group's own engine.
void gop_sum(Comm& comm, double* x, std::size_t n,
             grp::ProcGroup* group = nullptr);

/// Global dot product <a, b> over identically distributed arrays.
/// Collective; returns the same value on every rank. With `group`,
/// only the members' local panels contribute and only members call.
double dot(GlobalArray& a, GlobalArray& b, grp::ProcGroup* group = nullptr);

/// Sum of all elements of the array. Collective; `group` as in dot().
double element_sum(GlobalArray& a, grp::ProcGroup* group = nullptr);

/// Non-blocking element_sum: computes the local partial into `*out`
/// immediately, then reduces it through the non-blocking collectives
/// engine (coll::NbcEngine). `*out` holds the global sum once the
/// returned future is ready; until then the caller must keep it alive
/// and untouched. Collective over the world clique, initiation-order
/// discipline applies (docs/async.md). When the blocking engine is
/// pinned to recursive doubling (coll.algo.allreduce=recdbl) the
/// result is bitwise identical to element_sum().
fut::Future<fut::Unit> ielement_sum(GlobalArray& a, double* out);

}  // namespace pgasq::ga
