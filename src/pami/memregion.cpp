#include "pami/memregion.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace pgasq::pami {

std::optional<MemoryRegion> RegionTable::create(std::byte* base, std::size_t size) {
  PGASQ_CHECK(base != nullptr && size > 0);
  if (regions_.size() >= max_regions_) return std::nullopt;
  MemoryRegion r{owner_, base, size, next_id_++};
  regions_.push_back(r);
  return r;
}

void RegionTable::destroy(const MemoryRegion& region) {
  const auto it = std::find_if(regions_.begin(), regions_.end(),
                               [&](const MemoryRegion& r) { return r.id == region.id; });
  PGASQ_CHECK(it != regions_.end(), << "destroy of unknown region id " << region.id);
  regions_.erase(it);
}

std::optional<MemoryRegion> RegionTable::find(const std::byte* addr,
                                              std::size_t bytes) const {
  for (const auto& r : regions_) {
    if (r.covers(addr, bytes)) return r;
  }
  return std::nullopt;
}

}  // namespace pgasq::pami
