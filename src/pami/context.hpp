// Simulated PAMI communication context.
//
// A context is a threading point (S III-A1): it owns an arrival queue
// of completions, active messages and rmw-service requests, and makes
// progress ONLY when some simulated thread calls advance(). That rule
// is the paper's central mechanic — RDMA (rput/rget) moves data with
// no target-side software, while everything else (AMs, the non-RDMA
// put/get fall-back, read-modify-write) sits in the target's queue
// until the target advances. The asynchronous-progress-thread design
// (S III-D) exists precisely to advance a context promptly while the
// main thread computes.
//
// Initiation costs (o_send) and progress costs (o_completion,
// o_am_dispatch, o_rmw_service) are charged as virtual busy-time on
// the calling fiber, so a fiber that initiates many operations or
// services many requests is genuinely unavailable for other work.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "noc/network.hpp"
#include "pami/memregion.hpp"
#include "pami/types.hpp"
#include "sim/sync.hpp"
#include "sim/trace.hpp"
#include "util/time_types.hpp"

namespace pgasq::pami {

class Machine;
class Process;

/// Active-message dispatch handler, executed at the target during
/// advance(). The handler may initiate further operations on `ctx`.
using AmHandler = std::function<void(class Context& ctx, const AmMessage& msg)>;

/// Per-context progress statistics (feeds the Fig 9 / Fig 11 analyses).
struct ContextStats {
  std::uint64_t advance_calls = 0;
  std::uint64_t empty_advances = 0;
  std::uint64_t completions = 0;
  std::uint64_t ams_dispatched = 0;
  std::uint64_t rmws_serviced = 0;
  /// Sum over serviced items of (service start - arrival): how long
  /// requests sat waiting for somebody to advance.
  Time total_service_delay = 0;
  /// Fault recovery (nonzero only under an active fault plan): wire
  /// legs re-sent by this context's ack/timeout protocol, and the
  /// virtual time its operations spent waiting out those timeouts.
  std::uint64_t retransmits = 0;
  Time retransmit_backoff = 0;
};

class Context {
 public:
  Context(Process& process, int index);
  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  int index() const { return index_; }
  Process& process() { return process_; }

  /// Registers the handler for a dispatch id (PAMI_Dispatch_set).
  void set_dispatch(DispatchId id, AmHandler handler);

  // --- Progress -----------------------------------------------------------

  /// Processes every queued item, charging per-item costs to the
  /// calling fiber. Returns the number of items processed (0 charges
  /// one empty-poll cost).
  std::size_t advance();

  /// Advances until `pred()` holds, blocking the calling fiber between
  /// arrivals. This is how every blocking wait in the stack is built,
  /// so a waiting thread keeps servicing incoming requests — exactly
  /// the PAMI progress rule.
  void advance_until(const std::function<bool()>& pred);

  /// True when queued items are waiting to be processed.
  bool has_work() const { return !items_.empty(); }

  /// Blocks the calling fiber until an item is (or already is) queued.
  /// Used by progress loops that poll under a lock and park unlocked.
  void wait_for_work();

  /// Per-context lock for the rho=1 shared-context configuration
  /// (S III-D). The ARMCI layer decides when to take it.
  sim::SimMutex& lock() { return *lock_; }

  const ContextStats& stats() const { return stats_; }

  // --- RDMA (one-sided; no target software involved) ----------------------

  /// RDMA put: local_mr[loff .. loff+bytes) -> remote_mr[roff ..).
  /// `on_local_done` fires (during a later advance of this context)
  /// once the source buffer is reusable. `on_remote_ack`, if given, is
  /// posted to this context (zero software cost — a NIC-level ack)
  /// once the data is globally visible at the target; ARMCI fences are
  /// built on it.
  void rput(const MemoryRegion& local_mr, std::uint64_t loff,
            const MemoryRegion& remote_mr, std::uint64_t roff,
            std::uint64_t bytes, Callback on_local_done,
            Callback on_remote_ack = nullptr);

  /// RDMA get: remote_mr[roff ..) -> local_mr[loff ..). `on_done`
  /// fires once the data has landed locally.
  void rget(const MemoryRegion& local_mr, std::uint64_t loff,
            const MemoryRegion& remote_mr, std::uint64_t roff,
            std::uint64_t bytes, Callback on_done);

  /// RDMA put of a chunk list in one typed operation (PAMI typed
  /// data-type path used for tall-skinny strided transfers, S III-C2).
  /// `what` labels the wire leg in fault/integrity errors and traces,
  /// so a retry-budget exhaustion names the failing operation.
  void rput_typed(const MemoryRegion& local_mr, const MemoryRegion& remote_mr,
                  const std::vector<TypedChunk>& chunks, Callback on_local_done,
                  Callback on_remote_ack = nullptr,
                  const char* what = "rput typed data");
  void rget_typed(const MemoryRegion& local_mr, const MemoryRegion& remote_mr,
                  const std::vector<TypedChunk>& chunks, Callback on_done,
                  const char* what = "rget typed data");

  // --- Two-sided / target-progress operations ------------------------------

  /// Active message (PAMI_Send). Header and payload are copied at
  /// initiation (buffer-reuse semantics); the target's handler runs
  /// when the target advances the addressed context. `what` names the
  /// specific operation riding the AM (accumulate, strided write, ...)
  /// in fault/integrity errors.
  /// `deadline` (absolute virtual time, 0 = none) rides the message to
  /// the target, which marks it expired-on-arrival instead of dropping
  /// it — the handler still runs (its ack keeps fences alive) but is
  /// expected to skip the real work (see AmMessage::expired).
  void send(Endpoint dest, DispatchId dispatch, std::vector<std::byte> header,
            std::vector<std::byte> payload, Callback on_local_done,
            const char* what = "active message", Time deadline = 0);

  /// Non-RDMA put (PAMI default RMA): data travels as a payload and is
  /// deposited into target memory when the target advances.
  /// `on_remote_done` (optional) fires locally once the deposit has
  /// been acknowledged.
  void put(Endpoint dest, const std::byte* local, std::byte* remote,
           std::uint64_t bytes, Callback on_local_done, Callback on_remote_done);

  /// Non-RDMA get: a request is queued at the target; when the target
  /// advances, it streams the data back (Eq 8's extra "o"). Not truly
  /// one-sided (S III-D).
  /// With a deadline and `on_expired`, a request the target dequeues
  /// past its deadline is shed server-side: the data is never staged
  /// or shipped — only a control-size notification returns, delivered
  /// to `on_expired` instead of `on_done`.
  void get(Endpoint dest, std::byte* local, const std::byte* remote,
           std::uint64_t bytes, Callback on_done, Time deadline = 0,
           Callback on_expired = nullptr);

  /// Read-modify-write on an aligned 64-bit word at the target.
  /// Serviced by target software during advance() on BG/Q; serviced by
  /// the NIC when BgqParameters::hardware_amo is set. Unordered with
  /// respect to other messages (S III-A4).
  /// With a deadline, a request serviced past it is shed before the
  /// word is touched; the reply carries flow::kExpiredRmw instead of
  /// the old value so the requester can raise its typed error.
  void rmw(Endpoint dest, std::int64_t* remote_word, RmwOp op,
           std::int64_t operand, std::int64_t compare, RmwCallback on_done,
           Time deadline = 0);

  // --- Internal delivery (called by engine events / peer contexts) --------

  /// Posts a ready item and wakes any fiber blocked in advance_until.
  void post_completion(Callback cb, Time cost);
  /// Schedules post_completion at a future virtual time.
  void post_completion_at(Time when, Callback cb, Time cost);
  void post_am(DispatchId dispatch, AmMessage msg);
  void post_rmw_service(std::int64_t* word, RmwOp op, std::int64_t operand,
                        std::int64_t compare, Endpoint reply_to,
                        RmwCallback reply_cb, std::uint64_t flow_id = 0,
                        Time deadline = 0);

  // --- Wire legs with fault recovery --------------------------------------

  /// Times one transfer (or control packet) from src to dst. Under an
  /// active fault injector this is the ack/timeout/retransmit protocol
  /// — a dropped attempt is detected by ack timeout and re-sent with
  /// capped exponential backoff; with transport verification on, a
  /// corrupted attempt is detected by the receiver's CRC pass and
  /// NACKed for an immediate retransmit. Both draw on this context's
  /// retry budget; exhausting it throws pgasq::FaultError (or
  /// pgasq::IntegrityError when the final attempt was corrupted)
  /// naming `what` and the link. Without an injector it is exactly one
  /// network call (plus CRC costs when integrity is configured). Layers above that time their own
  /// wire legs (e.g. AM-handler acks in core::Comm) must come through
  /// here rather than noc::NetworkModel so their packets share the
  /// recovery protocol.
  noc::Transfer wire_transfer(int src_node, int dst_node, std::uint64_t bytes,
                              Time at, noc::TransferOptions opts, const char* what);
  noc::Transfer wire_control(int src_node, int dst_node, Time at, const char* what);

  /// Silent-corruption landing: when the transfer came back corrupted
  /// and transport verification is off, flips the transfer's token-
  /// derived bits into the staged payload (past the protected prefix).
  /// No-op on clean transfers and under verification (which repairs
  /// the leg inside wire_transfer instead).
  void maybe_corrupt(const noc::Transfer& t, std::byte* data, std::uint64_t bytes);

 private:
  struct Item {
    enum class Kind { kCompletion, kAm, kRmwService, kGetRequest, kPutData };
    Kind kind;
    Time posted_at = 0;
    // kCompletion
    Callback callback;
    Time cost = 0;
    // kAm
    DispatchId dispatch = -1;
    AmMessage message;
    // kRmwService
    std::int64_t* word = nullptr;
    RmwOp op = RmwOp::kFetchAdd;
    std::int64_t operand = 0;
    std::int64_t compare = 0;
    Endpoint reply_to;
    RmwCallback rmw_reply;
    // kGetRequest
    std::byte* requester_buffer = nullptr;
    const std::byte* source_data = nullptr;
    std::uint64_t bytes = 0;
    // kPutData
    std::byte* deposit_to = nullptr;
    std::vector<std::byte> deposit_data;
    Callback remote_ack;  // posts back to requester when serviced
    /// Causal-trace flow id carried from initiation to service (0 =
    /// untraced); lets the service side finish the Perfetto arrow.
    std::uint64_t flow_id = 0;
    /// Absolute virtual-time deadline (0 = none): the service side
    /// sheds the item instead of processing it when dequeued late.
    Time deadline = 0;
    /// kGetRequest only: delivered instead of `callback` when the
    /// request was shed server-side (deadline expired).
    Callback on_expired;
  };

  void process_item(Item& item);
  void post(Item item);
  Machine& machine();
  /// Active trace recorder, or nullptr when tracing is off.
  sim::TraceRecorder* trace();
  /// Emits one causal-flow endpoint ('s'/'t'/'f' of flow `id`) on
  /// `rank`'s net track. No-op when tracing is off or `id` is 0, so
  /// service paths can call it unconditionally.
  void flow(char phase, RankId rank, const char* name, std::uint64_t id,
            Time at, std::uint64_t bytes = 0, int peer = -1);
  /// Charges busy time on the calling fiber.
  void busy(Time t);
  Time now() const;

  Process& process_;
  int index_;
  std::deque<Item> items_;
  std::unordered_map<DispatchId, AmHandler> dispatch_;
  std::unique_ptr<sim::SimMutex> lock_;
  std::unique_ptr<sim::WaitQueue> arrivals_;
  ContextStats stats_;
  /// Lifetime retransmits charged against the fault plan's retry budget.
  std::uint64_t retries_used_ = 0;
};

}  // namespace pgasq::pami
