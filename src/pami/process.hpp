// A simulated rank: one PAMI client, its contexts, its registered
// memory, and accounting of the space/time attributes from Table I.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "noc/parameters.hpp"
#include "pami/context.hpp"
#include "pami/memregion.hpp"
#include "pami/types.hpp"
#include "util/time_types.hpp"

namespace pgasq::pami {

class Machine;

/// Communication-object space accounting per process (Table I symbols
/// alpha/gamma/epsilon; used by the Table II reproduction).
struct SpaceStats {
  std::uint64_t clients = 0;
  std::uint64_t contexts = 0;
  std::uint64_t endpoints = 0;
  std::uint64_t memregions = 0;

  /// Total bytes under the calibrated per-object sizes.
  std::uint64_t bytes(const noc::BgqParameters& p) const {
    return contexts * p.context_bytes + endpoints * p.endpoint_bytes +
           memregions * p.memregion_bytes;
  }
};

class Process {
 public:
  Process(Machine& machine, RankId rank, std::size_t max_memregions);
  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  RankId rank() const { return rank_; }
  int node() const { return node_; }
  Machine& machine() { return machine_; }

  // --- PAMI object lifecycle (each call charges its Table II cost) --------

  /// PAMI_Client_create. Must precede context creation.
  void create_client();
  bool has_client() const { return client_created_; }

  /// PAMI_Context_createv: adds one context (time rho per Table II).
  Context& create_context();
  Context& context(int i) { return *contexts_.at(static_cast<std::size_t>(i)); }
  int num_contexts() const { return static_cast<int>(contexts_.size()); }

  /// PAMI_Endpoint_create: local-only, beta = 0.3 us, alpha = 4 bytes.
  Endpoint create_endpoint(RankId dest, int dest_context);

  /// PAMI_Memregion_create: delta = 43 us, gamma = 8 bytes; fails
  /// (nullopt) past the configured per-process limit — the at-scale
  /// failure the fall-back protocol handles.
  std::optional<MemoryRegion> create_memregion(void* base, std::size_t size);
  void destroy_memregion(const MemoryRegion& region);
  RegionTable& regions() { return regions_; }
  const RegionTable& regions() const { return regions_; }

  // --- CPU ------------------------------------------------------------------

  /// Occupies the calling fiber (this rank's simulated thread) for `t`
  /// of virtual time.
  void busy(Time t);
  Time now() const;

  const SpaceStats& space() const { return space_; }

 private:
  friend class Context;
  Machine& machine_;
  RankId rank_;
  int node_;
  bool client_created_ = false;
  std::vector<std::unique_ptr<Context>> contexts_;
  RegionTable regions_;
  SpaceStats space_;
};

}  // namespace pgasq::pami
