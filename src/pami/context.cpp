#include "pami/context.hpp"

#include <cstring>
#include <sstream>
#include <utility>

#include "ft/liveness.hpp"
#include "pami/machine.hpp"
#include "pami/process.hpp"
#include "util/error.hpp"

namespace pgasq::pami {

namespace {
/// "rank 3" / "ranks 12-15": the ranks a node hosts, for fault
/// messages — FaultError carries node ids but users think in ranks.
std::string node_ranks_str(const topo::RankMapping& map, int node) {
  const int c = map.ranks_per_node();
  std::ostringstream os;
  if (c == 1) {
    os << "rank " << map.rank_of(node, 0);
  } else {
    os << "ranks " << map.rank_of(node, 0) << "-" << map.rank_of(node, c - 1);
  }
  return os.str();
}
}  // namespace

Context::Context(Process& process, int index)
    : process_(process),
      index_(index),
      lock_(std::make_unique<sim::SimMutex>(process.machine().engine())),
      arrivals_(std::make_unique<sim::WaitQueue>(process.machine().engine())) {}

Machine& Context::machine() { return process_.machine(); }

sim::TraceRecorder* Context::trace() { return machine().trace(); }

void Context::flow(char phase, RankId rank, const char* name, std::uint64_t id,
                   Time at, std::uint64_t bytes, int peer) {
  sim::TraceRecorder* tr = trace();
  if (tr == nullptr || id == 0) return;
  sim::TraceArgs args;
  if (bytes > 0) args.emplace_back("bytes", std::to_string(bytes));
  if (peer >= 0) args.emplace_back("peer", "rank" + std::to_string(peer));
  tr->flow_point(phase, machine().rank_track(rank), name, id, at,
                 std::move(args));
}

noc::Transfer Context::wire_transfer(int src_node, int dst_node, std::uint64_t bytes,
                                     Time at, noc::TransferOptions opts,
                                     const char* what) {
  auto& net = machine().network();
  // Critical-path attribution measures the leg from the moment the
  // sender asked for the wire — before CRC, credit and NIC waits.
  const Time requested = at;
  obs::CritPath* const cp = machine().critpath();
  ft::HealthMonitor* mon = machine().monitor();
  if (mon != nullptr) {
    // Quarantine: an op against a declared-dead endpoint fails fast
    // with the typed error instead of hanging or burning retry budget.
    const int dead = mon->node_declared_dead(src_node)   ? src_node
                     : mon->node_declared_dead(dst_node) ? dst_node
                                                         : -1;
    if (dead >= 0) {
      ++mon->stats().quarantined_ops;
      std::ostringstream os;
      os << "ft: " << what << " from node " << src_node << " to node " << dst_node
         << " refused — node " << dead << " ("
         << node_ranks_str(machine().mapping(), dead) << ") is declared dead";
      throw ft::PeerDeadError(what, src_node, dst_node, mon->epoch(), os.str());
    }
  }
  // End-to-end CRC verification covers payload legs whose bytes can
  // actually corrupt (past the link-CRC-protected prefix). The sender
  // computes the CRC before injection and the receiver re-computes it
  // on delivery — both passes are charged to the virtual clock.
  fault::Integrity* ig = machine().integrity();
  const bool verify = ig != nullptr && ig->config().verify &&
                      opts.payload_bytes > noc::kProtectedPrefix;
  Time crc = 0;
  if (verify) {
    crc = ig->crc_cost(opts.payload_bytes);
    at += crc;
  }
  noc::Transfer t = net.transfer(src_node, dst_node, bytes, at, opts);
  fault::Injector* inj = machine().injector();
  if (inj == nullptr) {
    if (verify) {
      ++ig->stats().crc_checks;
      t.arrive += crc;
    }
    if (cp != nullptr) {
      cp->record_leg(what, process_.rank(), requested, t.inject_begin,
                     t.inject_done, t.ser_nominal, t.arrive, t.bottleneck_link,
                     t.route_capacity < 1.0);
    }
    return t;
  }
  const fault::FaultPlan& plan = inj->plan();
  Time timeout = plan.ack_timeout;
  const bool retransmitted = t.dropped || (t.corrupted && verify);
  std::uint64_t spent = 0;
  while (t.dropped || (t.corrupted && verify)) {
    const bool from_corruption = !t.dropped;
    // Deterministic jitter (fault.backoff_jitter) spreads the wait so
    // ranks that lost packets in the same window do not re-offer them
    // at the same instant — the retry-storm seed. A pure function of
    // (seed, rank, lifetime attempt): reruns stay byte-identical, and
    // with jitter 0 the factor is exactly 1.0 (the historical timing).
    const Time wait =
        plan.backoff_jitter > 0.0
            ? static_cast<Time>(static_cast<double>(timeout) *
                                flow::jitter(plan.seed, process_.rank(),
                                             retries_used_, plan.backoff_jitter))
            : timeout;
    Time resend_at;
    if (t.dropped) {
      // The expected ack never came: declare the packet lost `timeout`
      // after it drained, re-inject, and widen the timeout (capped).
      const Time timeout_at = t.inject_done + wait;
      if (mon != nullptr) {
        // Report the missed ack against the fail-stopped endpoint (if
        // any); the suspect_acks'th miss declares it dead. The retries a
        // doomed leg burned are refunded — fail-stop escalates as
        // PeerDeadError, not as transient-budget exhaustion.
        const int suspect = inj->node_dead(dst_node, timeout_at)   ? dst_node
                            : inj->node_dead(src_node, timeout_at) ? src_node
                                                                   : -1;
        if (suspect >= 0 && mon->report_timeout(suspect, timeout_at)) {
          retries_used_ -= spent;
          stats_.retransmits -= spent;
          std::ostringstream os;
          os << "ft: " << what << " from node " << src_node << " to node " << dst_node
             << " lost its peer — node " << suspect << " ("
             << node_ranks_str(machine().mapping(), suspect)
             << ") declared dead after missed acks";
          throw ft::PeerDeadError(what, src_node, dst_node, mon->epoch(), os.str());
        }
      }
      resend_at = timeout_at;
    } else {
      // The payload arrived but its CRC does not match: the receiver
      // NACKs at the detection point and the sender re-injects when the
      // NACK lands. A lost NACK degenerates to the plain ack timeout.
      ++ig->stats().crc_checks;
      ++ig->stats().corruptions_detected;
      ++ig->stats().nacks_sent;
      ++ig->stats().nack_retransmits;
      const Time detect = t.arrive + crc;
      inj->trace_mark("corruption nack", detect);
      const noc::Transfer nack = net.transfer(
          dst_node, src_node, machine().params().control_packet_bytes, detect,
          noc::TransferOptions{.is_control = true});
      resend_at = nack.dropped ? t.inject_done + wait : nack.arrive;
    }
    ++stats_.retransmits;
    ++spent;
    if (obs::Timeline* tl = machine().timeline(); tl != nullptr) {
      tl->count(machine().timeline_ids().retransmits, resend_at);
    }
    if (++retries_used_ > plan.retry_budget) {
      std::ostringstream os;
      os << (from_corruption ? "integrity" : "fault") << ": retry budget ("
         << plan.retry_budget << ") exhausted on rank " << process_.rank()
         << " context " << index_ << " during " << what << " from node "
         << src_node << " (" << node_ranks_str(machine().mapping(), src_node)
         << ") to node " << dst_node << " ("
         << node_ranks_str(machine().mapping(), dst_node) << ") "
         << (from_corruption
                 ? "— payload failed CRC verification on every retry "
                   "(raise fault.retry_budget or lower fault.corrupt_prob)"
                 : "(raise fault.retry_budget or lower fault.drop_prob)");
      if (from_corruption) {
        throw IntegrityError(what, src_node, dst_node, retries_used_ - 1, os.str());
      }
      throw FaultError(what, src_node, dst_node, retries_used_ - 1, os.str());
    }
    if (t.dropped) {
      stats_.retransmit_backoff += wait;
      inj->record_retransmit(wait, resend_at);
      timeout = std::min(
          static_cast<Time>(static_cast<double>(timeout) * plan.backoff_factor),
          plan.max_backoff);
    } else {
      // NACK turnaround replaces the timeout wait; no backoff charged.
      inj->record_retransmit(0, resend_at);
    }
    t = net.transfer(src_node, dst_node, bytes, resend_at, opts);
  }
  // Sequence numbers hold retransmission-reordered packets at the
  // receiver so pairwise delivery order survives recovery — the
  // ordering guarantee ARMCI's consistency layer is built on.
  t.arrive = inj->in_order_arrival(src_node, dst_node, t.arrive, retransmitted);
  if (verify) {
    ++ig->stats().crc_checks;
    t.arrive += crc;
  }
  if (cp != nullptr) {
    // The final (delivered) transfer's diagnostics: retransmit backoff
    // and every earlier doomed injection land in the inject-wait
    // segment, receiver-side CRC/reorder holds in the wire segment.
    cp->record_leg(what, process_.rank(), requested, t.inject_begin,
                   t.inject_done, t.ser_nominal, t.arrive, t.bottleneck_link,
                   t.route_capacity < 1.0);
  }
  return t;
}

noc::Transfer Context::wire_control(int src_node, int dst_node, Time at,
                                    const char* what) {
  // Ack packets carry the payload's echo CRC inside the fixed control
  // packet (no extra wire bytes), making one-sided completions
  // end-to-end verified; only the bookkeeping is observable.
  fault::Integrity* ig = machine().integrity();
  if (ig != nullptr && ig->config().verify && std::strstr(what, "ack") != nullptr) {
    ++ig->stats().echo_crc_acks;
  }
  return wire_transfer(src_node, dst_node, machine().params().control_packet_bytes,
                       at, noc::TransferOptions{.is_control = true}, what);
}

void Context::maybe_corrupt(const noc::Transfer& t, std::byte* data,
                            std::uint64_t bytes) {
  if (!t.corrupted) return;  // only ever set under a corruption plan
  fault::Integrity* ig = machine().integrity();
  if (ig != nullptr && ig->config().verify) return;  // caught and repaired
  // Silent mode (integrity.verify=0): the flip lands in the staged
  // payload exactly as the fabric delivered it; the coll/ft layers'
  // own checksums are the remaining line of defense.
  fault::apply_bit_flips(t.corrupt_token, machine().injector()->plan().corrupt_bits,
                         data, bytes, noc::kProtectedPrefix);
}

void Context::busy(Time t) { process_.busy(t); }

Time Context::now() const { return process_.now(); }

void Context::set_dispatch(DispatchId id, AmHandler handler) {
  PGASQ_CHECK(handler != nullptr);
  dispatch_[id] = std::move(handler);
}

// ---------------------------------------------------------------------------
// Progress
// ---------------------------------------------------------------------------

std::size_t Context::advance() {
  PGASQ_CHECK(machine().engine().current() != nullptr,
              << "advance outside a fiber");
  ++stats_.advance_calls;
  if (items_.empty()) {
    ++stats_.empty_advances;
    busy(machine().params().advance_poll_cost);
    return 0;
  }
  // Service the items present at entry (one bounded progress pass,
  // like PAMI_Context_advance with a finite iteration count). Items
  // arriving while we service — or posted by handlers — wait for the
  // next call; blocking waits loop on advance() so they still drain.
  const std::size_t batch = items_.size();
  std::size_t n = 0;
  while (n < batch && !items_.empty()) {
    // Move the item out so handlers can post new items safely.
    Item item = std::move(items_.front());
    items_.pop_front();
    stats_.total_service_delay += now() - item.posted_at;
    process_item(item);
    ++n;
  }
  // A second thread may be parked in advance_until on this context
  // with a predicate our processing just satisfied (shared-context
  // rho=1 configuration): let it re-check.
  arrivals_->notify_all();
  return n;
}

void Context::wait_for_work() {
  if (!items_.empty()) return;
  arrivals_->wait();
}

void Context::advance_until(const std::function<bool()>& pred) {
  for (;;) {
    advance();
    if (pred()) return;
    if (!items_.empty()) continue;  // work arrived while advancing
    // Nothing to do: park until the next delivery wakes us. The
    // predicate can only change through an item on this context (or a
    // handler run by another thread that then posts here), so waiting
    // is safe.
    arrivals_->wait();
  }
}

void Context::post(Item item) {
  item.posted_at = now();
  items_.push_back(std::move(item));
  if (obs::Timeline* tl = machine().timeline(); tl != nullptr) {
    tl->sample(machine().timeline_ids().pending_ops, item.posted_at,
               static_cast<double>(items_.size()));
  }
  arrivals_->notify_all();
}

void Context::post_completion(Callback cb, Time cost) {
  Item item;
  item.kind = Item::Kind::kCompletion;
  item.callback = std::move(cb);
  item.cost = cost;
  post(std::move(item));
}

void Context::post_am(DispatchId dispatch, AmMessage msg) {
  Item item;
  item.kind = Item::Kind::kAm;
  item.dispatch = dispatch;
  item.message = std::move(msg);
  post(std::move(item));
}

void Context::post_rmw_service(std::int64_t* word, RmwOp op, std::int64_t operand,
                               std::int64_t compare, Endpoint reply_to,
                               RmwCallback reply_cb, std::uint64_t flow_id,
                               Time deadline) {
  Item item;
  item.kind = Item::Kind::kRmwService;
  item.word = word;
  item.op = op;
  item.operand = operand;
  item.compare = compare;
  item.reply_to = reply_to;
  item.rmw_reply = std::move(reply_cb);
  item.flow_id = flow_id;
  item.deadline = deadline;
  post(std::move(item));
}

namespace {
std::int64_t apply_rmw(std::int64_t* word, RmwOp op, std::int64_t operand,
                       std::int64_t compare) {
  const std::int64_t old = *word;
  switch (op) {
    case RmwOp::kFetchAdd:
    case RmwOp::kAdd:
      *word = old + operand;
      break;
    case RmwOp::kSwap:
      *word = operand;
      break;
    case RmwOp::kCompareSwap:
      if (old == compare) *word = operand;
      break;
  }
  return old;
}
}  // namespace

void Context::process_item(Item& item) {
  const auto& p = machine().params();
  switch (item.kind) {
    case Item::Kind::kCompletion: {
      ++stats_.completions;
      busy(item.cost);
      if (item.callback) item.callback();
      break;
    }
    case Item::Kind::kAm: {
      ++stats_.ams_dispatched;
      busy(p.o_am_dispatch);
      // An expired AM is not dropped — its handler generates the acks
      // that fences and flush protocols wait on, so dropping would
      // hang the sender. The handler sees message.expired and skips
      // the real work while still answering.
      if (flow::Controller* fc = machine().flow();
          fc != nullptr && fc->expired_at_server(item.message.deadline, now())) {
        item.message.expired = true;
      }
      flow('f', process_.rank(), "am dispatch", item.message.flow_id, now());
      const auto it = dispatch_.find(item.dispatch);
      PGASQ_CHECK(it != dispatch_.end(),
                  << "rank " << process_.rank() << " context " << index_
                  << ": no handler for dispatch id " << item.dispatch);
      it->second(*this, item.message);
      break;
    }
    case Item::Kind::kRmwService: {
      // Deadline shed: the cheapest place to drop overload is here,
      // before the service cost is paid or the word is touched. The
      // (cheap, control-size) reply still flows so the requester
      // unblocks — it sees the kExpiredRmw sentinel and raises its
      // typed error instead of using a stale answer.
      flow::Controller* fc = machine().flow();
      const bool shed =
          fc != nullptr && fc->expired_at_server(item.deadline, now());
      if (!shed) {
        ++stats_.rmws_serviced;
        busy(p.o_rmw_service);
      }
      const std::int64_t old =
          shed ? flow::kExpiredRmw
               : apply_rmw(item.word, item.op, item.operand, item.compare);
      // NIC-level reply packet back to the requester; the requester
      // sees the result when it next advances after arrival.
      const int here = process_.node();
      const int dest_node = machine().mapping().node_of_rank(item.reply_to.rank);
      const auto reply = wire_control(here, dest_node, now(), "rmw reply");
      flow('t', process_.rank(), "rmw serve", item.flow_id, now());
      flow('f', item.reply_to.rank, "rmw reply", item.flow_id, reply.arrive);
      Context& dest_ctx =
          machine().process(item.reply_to.rank).context(item.reply_to.context);
      RmwCallback cb = std::move(item.rmw_reply);
      machine().engine().schedule_at(reply.arrive, [&dest_ctx, cb = std::move(cb),
                                                    old, cost = p.o_completion] {
        dest_ctx.post_completion([cb, old] { cb(old); }, cost);
      });
      break;
    }
    case Item::Kind::kGetRequest: {
      // Fall-back get service: the target streams the data back,
      // paying its own send overhead — the second "o" of Eq 8.
      const int here = process_.node();
      const int dest_node = machine().mapping().node_of_rank(item.reply_to.rank);
      // Deadline shed: skip the read + payload stream entirely; only a
      // control-size "expired" notification returns, delivered to the
      // requester's on_expired callback.
      if (flow::Controller* fc = machine().flow();
          fc != nullptr && item.on_expired != nullptr &&
          fc->expired_at_server(item.deadline, now())) {
        const auto t = wire_control(here, dest_node, now(), "get expired");
        flow('f', item.reply_to.rank, "get expired", item.flow_id, t.arrive);
        Context& dest_ctx =
            machine().process(item.reply_to.rank).context(item.reply_to.context);
        machine().engine().schedule_at(
            t.arrive, [&dest_ctx, cb = std::move(item.on_expired),
                       cost = p.o_completion]() mutable {
              dest_ctx.post_completion(std::move(cb), cost);
            });
        break;
      }
      busy(p.o_send);
      // Read the data now (service time) and ship it.
      std::vector<std::byte> staged(item.bytes);
      std::memcpy(staged.data(), item.source_data, item.bytes);
      const auto t =
          wire_transfer(here, dest_node, item.bytes, now(),
                        noc::TransferOptions{.payload_bytes = item.bytes}, "get reply");
      maybe_corrupt(t, staged.data(), item.bytes);
      flow('t', process_.rank(), "get serve", item.flow_id, now());
      flow('f', item.reply_to.rank, "get reply", item.flow_id, t.arrive,
           item.bytes);
      Context& dest_ctx =
          machine().process(item.reply_to.rank).context(item.reply_to.context);
      machine().engine().schedule_at(
          t.arrive, [&dest_ctx, staged = std::move(staged),
                     dst = item.requester_buffer, cb = std::move(item.callback),
                     cost = p.o_completion]() mutable {
            std::memcpy(dst, staged.data(), staged.size());
            dest_ctx.post_completion(std::move(cb), cost);
          });
      break;
    }
    case Item::Kind::kPutData: {
      // Non-RDMA put deposit: copy the payload into place, then ack.
      busy(p.o_am_dispatch);
      std::memcpy(item.deposit_to, item.deposit_data.data(), item.deposit_data.size());
      if (item.remote_ack) {
        // The ack closure finishes the flow at the requester.
        flow('t', process_.rank(), "put deposit", item.flow_id, now());
        item.remote_ack();
      } else {
        flow('f', process_.rank(), "put deposit", item.flow_id, now());
      }
      break;
    }
  }
}

// ---------------------------------------------------------------------------
// RDMA (one-sided)
// ---------------------------------------------------------------------------

void Context::rput(const MemoryRegion& local_mr, std::uint64_t loff,
                   const MemoryRegion& remote_mr, std::uint64_t roff,
                   std::uint64_t bytes, Callback on_local_done,
                   Callback on_remote_ack) {
  PGASQ_CHECK(local_mr.covers(local_mr.base + loff, bytes), << "rput source range");
  PGASQ_CHECK(remote_mr.covers(remote_mr.base + roff, bytes), << "rput target range");
  const auto& p = machine().params();
  busy(p.o_send);
  const int src_node = process_.node();
  const int dst_node = machine().mapping().node_of_rank(remote_mr.owner);
  const auto t = wire_transfer(src_node, dst_node, bytes, now(),
                               noc::TransferOptions{.payload_bytes = bytes},
                               "rput data");
  std::uint64_t fid = 0;
  if (trace() != nullptr) {
    fid = trace()->next_flow_id();
    flow('s', process_.rank(), "rput", fid, now(), bytes, remote_mr.owner);
  }
  // The NIC reads the source buffer during serialization; stage a copy
  // now so the caller may reuse the buffer after local completion.
  std::vector<std::byte> staged(bytes);
  std::memcpy(staged.data(), local_mr.base + loff, bytes);
  maybe_corrupt(t, staged.data(), bytes);
  std::byte* dst = remote_mr.base + roff;
  machine().engine().schedule_at(t.arrive, [staged = std::move(staged), dst]() mutable {
    std::memcpy(dst, staged.data(), staged.size());
  });
  if (on_local_done) {
    post_completion_at(t.inject_done + p.o_local_drain, std::move(on_local_done),
                       p.o_completion);
  }
  if (on_remote_ack) {
    const auto ack = wire_control(dst_node, src_node, t.arrive, "rput ack");
    flow('t', remote_mr.owner, "rput deliver", fid, t.arrive, bytes);
    flow('f', process_.rank(), "rput ack", fid, ack.arrive);
    post_completion_at(ack.arrive, std::move(on_remote_ack), 0);
  } else {
    flow('f', remote_mr.owner, "rput deliver", fid, t.arrive, bytes);
  }
}

void Context::rget(const MemoryRegion& local_mr, std::uint64_t loff,
                   const MemoryRegion& remote_mr, std::uint64_t roff,
                   std::uint64_t bytes, Callback on_done) {
  PGASQ_CHECK(local_mr.covers(local_mr.base + loff, bytes), << "rget local range");
  PGASQ_CHECK(remote_mr.covers(remote_mr.base + roff, bytes), << "rget remote range");
  const auto& p = machine().params();
  busy(p.o_send);
  const int src_node = process_.node();
  const int dst_node = machine().mapping().node_of_rank(remote_mr.owner);
  // Request descriptor travels to the target NIC...
  const auto req = wire_control(src_node, dst_node, now(), "rget request");
  // ...which DMAs the data back with no target software involved.
  const auto data =
      wire_transfer(dst_node, src_node, bytes, req.arrive,
                    noc::TransferOptions{.payload_bytes = bytes}, "rget data");
  if (trace() != nullptr) {
    // Every leg is timed at initiation, so the whole arrow chain can
    // be emitted here: request out, remote NIC serves, data back.
    const std::uint64_t fid = trace()->next_flow_id();
    flow('s', process_.rank(), "rget", fid, now(), bytes, remote_mr.owner);
    flow('t', remote_mr.owner, "rget serve", fid, req.arrive);
    flow('f', process_.rank(), "rget data", fid, data.arrive, bytes);
  }
  const std::byte* src = remote_mr.base + roff;
  std::byte* dst = local_mr.base + loff;
  auto staged = std::make_shared<std::vector<std::byte>>();
  machine().engine().schedule_at(req.arrive, [staged, src, bytes] {
    staged->assign(src, src + bytes);  // NIC reads target memory now
  });
  machine().engine().schedule_at(data.arrive, [this, staged, dst, data,
                                               cb = std::move(on_done),
                                               cost = p.o_completion]() mutable {
    maybe_corrupt(data, staged->data(), staged->size());
    std::memcpy(dst, staged->data(), staged->size());
    if (cb) post_completion(std::move(cb), cost);
  });
}

void Context::rput_typed(const MemoryRegion& local_mr, const MemoryRegion& remote_mr,
                         const std::vector<TypedChunk>& chunks,
                         Callback on_local_done, Callback on_remote_ack,
                         const char* what) {
  const auto& p = machine().params();
  std::uint64_t total = 0;
  for (const auto& c : chunks) {
    PGASQ_CHECK(local_mr.covers(local_mr.base + c.local_offset, c.bytes));
    PGASQ_CHECK(remote_mr.covers(remote_mr.base + c.remote_offset, c.bytes));
    total += c.bytes;
  }
  // One descriptor covering the whole type map, plus a small per-chunk
  // walk cost; the wire sees a single message with a gather/scatter
  // efficiency factor.
  busy(p.o_send + static_cast<Time>(chunks.size()) * p.typed_element_cost);
  const int src_node = process_.node();
  const int dst_node = machine().mapping().node_of_rank(remote_mr.owner);
  const auto wire_bytes =
      static_cast<std::uint64_t>(static_cast<double>(total) * p.typed_wire_factor);
  const auto t = wire_transfer(src_node, dst_node, wire_bytes, now(),
                               noc::TransferOptions{.payload_bytes = total}, what);
  std::uint64_t fid = 0;
  if (trace() != nullptr) {
    fid = trace()->next_flow_id();
    flow('s', process_.rank(), "rput typed", fid, now(), total, remote_mr.owner);
  }
  auto staged = std::make_shared<std::vector<std::byte>>(total);
  std::uint64_t off = 0;
  for (const auto& c : chunks) {
    std::memcpy(staged->data() + off, local_mr.base + c.local_offset, c.bytes);
    off += c.bytes;
  }
  maybe_corrupt(t, staged->data(), total);
  std::byte* rbase = remote_mr.base;
  machine().engine().schedule_at(t.arrive, [staged, rbase, chunks] {
    std::uint64_t pos = 0;
    for (const auto& c : chunks) {
      std::memcpy(rbase + c.remote_offset, staged->data() + pos, c.bytes);
      pos += c.bytes;
    }
  });
  if (on_local_done) {
    post_completion_at(t.inject_done + p.o_local_drain, std::move(on_local_done),
                       p.o_completion);
  }
  if (on_remote_ack) {
    const auto ack = wire_control(dst_node, src_node, t.arrive, "rput typed ack");
    flow('t', remote_mr.owner, "rput typed deliver", fid, t.arrive, total);
    flow('f', process_.rank(), "rput typed ack", fid, ack.arrive);
    post_completion_at(ack.arrive, std::move(on_remote_ack), 0);
  } else {
    flow('f', remote_mr.owner, "rput typed deliver", fid, t.arrive, total);
  }
}

void Context::rget_typed(const MemoryRegion& local_mr, const MemoryRegion& remote_mr,
                         const std::vector<TypedChunk>& chunks, Callback on_done,
                         const char* what) {
  const auto& p = machine().params();
  std::uint64_t total = 0;
  for (const auto& c : chunks) {
    PGASQ_CHECK(local_mr.covers(local_mr.base + c.local_offset, c.bytes));
    PGASQ_CHECK(remote_mr.covers(remote_mr.base + c.remote_offset, c.bytes));
    total += c.bytes;
  }
  busy(p.o_send + static_cast<Time>(chunks.size()) * p.typed_element_cost);
  const int src_node = process_.node();
  const int dst_node = machine().mapping().node_of_rank(remote_mr.owner);
  const auto req = wire_control(src_node, dst_node, now(), "rget typed request");
  const auto wire_bytes =
      static_cast<std::uint64_t>(static_cast<double>(total) * p.typed_wire_factor);
  const auto data =
      wire_transfer(dst_node, src_node, wire_bytes, req.arrive,
                    noc::TransferOptions{.payload_bytes = total}, what);
  if (trace() != nullptr) {
    const std::uint64_t fid = trace()->next_flow_id();
    flow('s', process_.rank(), "rget typed", fid, now(), total, remote_mr.owner);
    flow('t', remote_mr.owner, "rget typed serve", fid, req.arrive);
    flow('f', process_.rank(), "rget typed data", fid, data.arrive, total);
  }
  auto staged = std::make_shared<std::vector<std::byte>>(total);
  const std::byte* rbase = remote_mr.base;
  machine().engine().schedule_at(req.arrive, [staged, rbase, chunks] {
    std::uint64_t pos = 0;
    for (const auto& c : chunks) {
      std::memcpy(staged->data() + pos, rbase + c.remote_offset, c.bytes);
      pos += c.bytes;
    }
  });
  std::byte* lbase = local_mr.base;
  machine().engine().schedule_at(data.arrive, [this, staged, lbase, chunks, data,
                                               cb = std::move(on_done),
                                               cost = p.o_completion]() mutable {
    maybe_corrupt(data, staged->data(), staged->size());
    std::uint64_t pos = 0;
    for (const auto& c : chunks) {
      std::memcpy(lbase + c.local_offset, staged->data() + pos, c.bytes);
      pos += c.bytes;
    }
    if (cb) post_completion(std::move(cb), cost);
  });
}

// ---------------------------------------------------------------------------
// Two-sided / target-progress operations
// ---------------------------------------------------------------------------

void Context::send(Endpoint dest, DispatchId dispatch, std::vector<std::byte> header,
                   std::vector<std::byte> payload, Callback on_local_done,
                   const char* what, Time deadline) {
  PGASQ_CHECK(dest.rank >= 0 && dest.rank < machine().num_ranks());
  const auto& p = machine().params();
  busy(p.o_send);
  const int src_node = process_.node();
  const int dst_node = machine().mapping().node_of_rank(dest.rank);
  const std::uint64_t wire_bytes =
      p.control_packet_bytes + header.size() + payload.size();
  const auto t = wire_transfer(src_node, dst_node, wire_bytes, now(),
                               noc::TransferOptions{.payload_bytes = payload.size()},
                               what);
  maybe_corrupt(t, payload.data(), payload.size());
  AmMessage msg;
  msg.source = Endpoint{process_.rank(), index_};
  msg.header = std::move(header);
  msg.payload = std::move(payload);
  msg.sent_at = now();
  msg.arrived_at = t.arrive;
  msg.deadline = deadline;
  if (trace() != nullptr) {
    msg.flow_id = trace()->next_flow_id();
    flow('s', process_.rank(), "am send", msg.flow_id, now(), wire_bytes,
         dest.rank);
  }
  Context& dest_ctx = machine().process(dest.rank).context(dest.context);
  machine().engine().schedule_at(
      t.arrive, [&dest_ctx, dispatch, msg = std::move(msg)]() mutable {
        dest_ctx.post_am(dispatch, std::move(msg));
      });
  if (on_local_done) {
    post_completion_at(t.inject_done, std::move(on_local_done), p.o_completion);
  }
}

void Context::put(Endpoint dest, const std::byte* local, std::byte* remote,
                  std::uint64_t bytes, Callback on_local_done,
                  Callback on_remote_done) {
  const auto& p = machine().params();
  busy(p.o_send);
  const int src_node = process_.node();
  const int dst_node = machine().mapping().node_of_rank(dest.rank);
  const auto t = wire_transfer(src_node, dst_node, p.control_packet_bytes + bytes,
                               now(), noc::TransferOptions{.payload_bytes = bytes},
                               "put data");
  std::uint64_t fid = 0;
  if (trace() != nullptr) {
    fid = trace()->next_flow_id();
    flow('s', process_.rank(), "put", fid, now(), bytes, dest.rank);
  }
  Item item;
  item.kind = Item::Kind::kPutData;
  item.deposit_to = remote;
  item.deposit_data.assign(local, local + bytes);
  maybe_corrupt(t, item.deposit_data.data(), bytes);
  item.flow_id = fid;
  Context& dest_ctx = machine().process(dest.rank).context(dest.context);
  if (on_remote_done) {
    // After the deposit is serviced, a NIC ack returns to us.
    Context* self = this;
    const Endpoint me{process_.rank(), index_};
    item.remote_ack = [self, me, dest, fid, cb = std::move(on_remote_done)]() mutable {
      Machine& m = self->machine();
      const int from = m.mapping().node_of_rank(dest.rank);
      const int to = m.mapping().node_of_rank(me.rank);
      const auto ack = self->wire_control(from, to, m.engine().now(), "put ack");
      self->flow('f', me.rank, "put ack", fid, ack.arrive);
      m.engine().schedule_at(ack.arrive, [self, cb = std::move(cb)]() mutable {
        self->post_completion(std::move(cb), self->machine().params().o_completion);
      });
    };
  }
  machine().engine().schedule_at(t.arrive, [&dest_ctx, item = std::move(item)]() mutable {
    dest_ctx.post(std::move(item));
  });
  if (on_local_done) {
    post_completion_at(t.inject_done, std::move(on_local_done), p.o_completion);
  }
}

void Context::get(Endpoint dest, std::byte* local, const std::byte* remote,
                  std::uint64_t bytes, Callback on_done, Time deadline,
                  Callback on_expired) {
  const auto& p = machine().params();
  busy(p.o_send);
  const int src_node = process_.node();
  const int dst_node = machine().mapping().node_of_rank(dest.rank);
  const auto req = wire_control(src_node, dst_node, now(), "get request");
  std::uint64_t fid = 0;
  if (trace() != nullptr) {
    fid = trace()->next_flow_id();
    flow('s', process_.rank(), "get", fid, now(), bytes, dest.rank);
  }
  Item item;
  item.kind = Item::Kind::kGetRequest;
  item.requester_buffer = local;
  item.source_data = remote;
  item.bytes = bytes;
  item.reply_to = Endpoint{process_.rank(), index_};
  item.callback = std::move(on_done);
  item.flow_id = fid;
  item.deadline = deadline;
  item.on_expired = std::move(on_expired);
  Context& dest_ctx = machine().process(dest.rank).context(dest.context);
  machine().engine().schedule_at(req.arrive, [&dest_ctx, item = std::move(item)]() mutable {
    dest_ctx.post(std::move(item));
  });
}

void Context::rmw(Endpoint dest, std::int64_t* remote_word, RmwOp op,
                  std::int64_t operand, std::int64_t compare, RmwCallback on_done,
                  Time deadline) {
  PGASQ_CHECK(on_done != nullptr);
  const auto& p = machine().params();
  busy(p.o_send);
  const int src_node = process_.node();
  const int dst_node = machine().mapping().node_of_rank(dest.rank);
  const auto req = wire_control(src_node, dst_node, now(), "rmw request");
  std::uint64_t fid = 0;
  if (trace() != nullptr) {
    fid = trace()->next_flow_id();
    flow('s', process_.rank(), "rmw", fid, now(), sizeof(std::int64_t),
         dest.rank);
  }

  if (p.hardware_amo) {
    // Gemini/InfiniBand-style NIC AMO: the target NIC applies the
    // operation with no target software (ablation: bench_abl_hw_amo).
    Context* self = this;
    const RankId me = process_.rank();
    machine().engine().schedule_at(
        req.arrive + p.hw_amo_service,
        [self, remote_word, op, operand, compare, dst_node, src_node, fid, me,
         dest, deadline, cb = std::move(on_done)]() mutable {
          Machine& m = self->machine();
          // NIC-level deadline check mirrors the software service: an
          // expired request never touches the word.
          flow::Controller* fc = m.flow();
          const bool shed = fc != nullptr &&
                            fc->expired_at_server(deadline, m.engine().now());
          const std::int64_t old =
              shed ? flow::kExpiredRmw
                   : apply_rmw(remote_word, op, operand, compare);
          const auto reply =
              self->wire_control(dst_node, src_node, m.engine().now(), "rmw hw reply");
          self->flow('t', dest.rank, "rmw hw serve", fid, m.engine().now());
          self->flow('f', me, "rmw hw reply", fid, reply.arrive);
          m.engine().schedule_at(reply.arrive, [self, old, cb = std::move(cb)]() mutable {
            self->post_completion([cb = std::move(cb), old] { cb(old); },
                                  self->machine().params().o_completion);
          });
        });
    return;
  }

  // BG/Q reality: serviced by target software at its next advance.
  Context& dest_ctx = machine().process(dest.rank).context(dest.context);
  const Endpoint me{process_.rank(), index_};
  machine().engine().schedule_at(
      req.arrive, [&dest_ctx, remote_word, op, operand, compare, me, fid,
                   deadline, cb = std::move(on_done)]() mutable {
        dest_ctx.post_rmw_service(remote_word, op, operand, compare, me,
                                  std::move(cb), fid, deadline);
      });
}

void Context::post_completion_at(Time when, Callback cb, Time cost) {
  PGASQ_CHECK(when >= now());
  machine().engine().schedule_at(when, [this, cb = std::move(cb), cost]() mutable {
    post_completion(std::move(cb), cost);
  });
}

}  // namespace pgasq::pami
