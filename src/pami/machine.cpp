#include "pami/machine.hpp"

#include "util/error.hpp"
#include "util/log.hpp"

namespace pgasq::pami {

topo::Coord5 Machine::pick_dims(const MachineConfig& config) {
  if (config.dims) return *config.dims;
  PGASQ_CHECK(config.num_ranks >= 1);
  PGASQ_CHECK(config.ranks_per_node >= 1);
  PGASQ_CHECK(config.num_ranks % config.ranks_per_node == 0,
              << "num_ranks " << config.num_ranks << " not divisible by ranks_per_node "
              << config.ranks_per_node);
  const int nodes = config.num_ranks / config.ranks_per_node;
  if (topo::has_bgq_partition(nodes)) return topo::bgq_partition_dims(nodes);
  return topo::balanced_dims(nodes);
}

Machine::Machine(MachineConfig config)
    : config_(std::move(config)),
      torus_(pick_dims(config_)),
      mapping_(torus_, config_.ranks_per_node),
      rng_(config_.seed) {
  network_ = noc::make_network_model(config_.network_model, torus_, config_.params);
  if (!config_.trace_json_path.empty()) {
    trace_ = std::make_unique<sim::TraceRecorder>(config_.trace_max_events);
    trace_->set_aggregate(config_.trace_aggregate);
    engine_.set_trace(trace_.get());
    if (config_.trace_sample_ranks > 0 &&
        config_.trace_sample_ranks < config_.num_ranks) {
      PGASQ_LOG(kWarn) << "trace.sample_ranks=" << config_.trace_sample_ranks
                       << ": tracing a stride sample of " << config_.num_ranks
                       << " ranks; unsampled ranks' tracks are muted and "
                          "flows starting on them are pruned";
      // Any fiber named "...rank<r>" for an unsampled r gets a muted
      // track (main fibers are "rank<r>", SMT threads "<x>@rank<r>").
      engine_.set_track_mute([this](const std::string& name) {
        const std::size_t pos = name.rfind("rank");
        if (pos == std::string::npos) return false;
        RankId r = 0;
        bool digits = false;
        for (std::size_t i = pos + 4; i < name.size(); ++i) {
          const char ch = name[i];
          if (ch < '0' || ch > '9') return false;
          r = r * 10 + (ch - '0');
          digits = true;
        }
        return digits && !rank_traced(r);
      });
    }
    // One flow track per rank: network flow endpoints (injection,
    // delivery, ack) land here rather than on the fiber tracks, so
    // Perfetto draws message arrows between ranks.
    net_tracks_.reserve(static_cast<std::size_t>(config_.num_ranks));
    for (RankId r = 0; r < config_.num_ranks; ++r) {
      net_tracks_.push_back(
          trace_->register_track("net@rank" + std::to_string(r), !rank_traced(r)));
    }
  }
  if (config_.obs.links) {
    link_usage_ = std::make_unique<obs::LinkUsage>(torus_, config_.obs.link_bucket);
    network_->set_link_usage(link_usage_.get());
  }
  if (config_.obs.timeline) {
    timeline_ = std::make_unique<obs::Timeline>(
        config_.obs.timeline_bucket,
        static_cast<std::size_t>(config_.obs.timeline_max_series));
    engine_.set_timeline(timeline_.get());
    network_->set_timeline(timeline_.get());
    timeline_ids_.pending_ops =
        timeline_->series("pami.pending_ops", obs::Timeline::Kind::kGauge);
    timeline_ids_.retransmits =
        timeline_->series("pami.retransmits", obs::Timeline::Kind::kCounter);
  }
  if (config_.obs.critpath) {
    critpath_ = std::make_unique<obs::CritPath>(config_.obs.critpath_top);
    network_->set_critpath(critpath_.get());
  }
  if (config_.fault.enabled()) {
    injector_ = std::make_unique<fault::Injector>(config_.fault, torus_);
    injector_->set_trace(trace_.get());
    network_->set_injector(injector_.get());
    if (injector_->has_node_fails()) {
      monitor_ = std::make_unique<ft::HealthMonitor>(config_.ft, *injector_, mapping_);
      monitor_->set_timeline(timeline_.get());
    }
  }
  // Integrity auto-enables under a corruption plan: a flipped payload
  // must never be silently delivered unless the user explicitly turns
  // transport verification off (integrity.verify=0).
  if (config_.fault.corrupt_prob > 0.0 || config_.integrity.configured) {
    integrity_ = std::make_unique<fault::Integrity>(config_.integrity);
  }
  if (config_.flow.enabled()) {
    flow_ = std::make_unique<flow::Controller>(config_.flow, torus_.num_nodes());
    flow_->set_trace(trace_.get());
    flow_->set_timeline(timeline_.get());
    network_->set_flow(flow_.get());
  }
  processes_.reserve(static_cast<std::size_t>(config_.num_ranks));
  for (RankId r = 0; r < config_.num_ranks; ++r) {
    processes_.push_back(
        std::make_unique<Process>(*this, r, config_.max_memregions_per_rank));
  }
}

Machine::~Machine() = default;

std::uint32_t Machine::rank_track(RankId rank) const {
  PGASQ_CHECK(trace_ != nullptr && rank >= 0 &&
              static_cast<std::size_t>(rank) < net_tracks_.size());
  return net_tracks_[static_cast<std::size_t>(rank)];
}

bool Machine::rank_traced(RankId rank) const {
  const int n = config_.trace_sample_ranks;
  if (n <= 0 || n >= config_.num_ranks) return true;
  // Ceil-divide so at most n ranks survive; rank 0 (the usual
  // collective root and report owner) is always in the sample.
  const int stride = (config_.num_ranks + n - 1) / n;
  return rank % stride == 0;
}

void configure_observability(const Config& cfg, MachineConfig& config) {
  cfg.reject_unknown("trace",
                     {"json_path", "max_events", "sample_ranks", "aggregate"});
  config.trace_json_path = cfg.get_string("trace.json_path", config.trace_json_path);
  const std::int64_t cap = cfg.get_int(
      "trace.max_events", static_cast<std::int64_t>(config.trace_max_events));
  PGASQ_CHECK(cap > 0, << "trace.max_events must be positive");
  config.trace_max_events = static_cast<std::size_t>(cap);
  const std::int64_t sample = cfg.get_int(
      "trace.sample_ranks", static_cast<std::int64_t>(config.trace_sample_ranks));
  PGASQ_CHECK(sample >= 0, << "trace.sample_ranks must be >= 0 (0 = all ranks)");
  config.trace_sample_ranks = static_cast<int>(sample);
  config.trace_aggregate =
      cfg.get_bool("trace.aggregate", config.trace_aggregate);
  config.obs = obs::Options::from_config(cfg, config.obs);
}

Process& Machine::process(RankId rank) {
  PGASQ_CHECK(rank >= 0 && rank < num_ranks(), << "rank " << rank);
  return *processes_[static_cast<std::size_t>(rank)];
}

void Machine::run(std::function<void(Process&)> rank_main) {
  for (RankId r = 0; r < num_ranks(); ++r) {
    Process* proc = processes_[static_cast<std::size_t>(r)].get();
    engine_.spawn("rank" + std::to_string(r), [rank_main, proc] { rank_main(*proc); },
                  config_.fiber_stack_bytes);
  }
  engine_.run();
  if (trace_ != nullptr) trace_->write_json(config_.trace_json_path);
}

sim::Fiber& Machine::spawn_thread(Process& process, const std::string& name,
                                  std::function<void()> body) {
  return engine_.spawn(name + "@rank" + std::to_string(process.rank()), std::move(body),
                       config_.fiber_stack_bytes);
}

}  // namespace pgasq::pami
