// The simulated Blue Gene/Q partition: engine + torus + network model
// + one Process per rank, with an SPMD launcher.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "fault/integrity.hpp"
#include "flow/flow.hpp"
#include "ft/liveness.hpp"
#include "noc/network.hpp"
#include "noc/parameters.hpp"
#include "obs/critpath.hpp"
#include "obs/link_usage.hpp"
#include "obs/timeline.hpp"
#include "pami/process.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"
#include "topo/torus.hpp"
#include "util/config.hpp"
#include "util/rng.hpp"

namespace pgasq::pami {

struct MachineConfig {
  /// Total processes p (Table I). ranks_per_node is c.
  int num_ranks = 2;
  int ranks_per_node = 1;
  /// "loggp" or "contention".
  std::string network_model = "loggp";
  noc::BgqParameters params{};
  /// Torus shape override; otherwise the BG/Q partition table (or a
  /// balanced factorization) picks the shape for num_ranks/ranks_per_node.
  std::optional<topo::Coord5> dims;
  /// Per-process PAMI memregion limit (at-scale registration failure).
  std::size_t max_memregions_per_rank = static_cast<std::size_t>(-1);
  std::size_t fiber_stack_bytes = 256 * 1024;
  std::uint64_t seed = 42;
  /// Fault-injection plan (disabled by default: a disabled plan builds
  /// no injector and leaves every timing bit-identical).
  fault::FaultPlan fault{};
  /// Fail-stop detection knobs; consulted only when the fault plan
  /// schedules node deaths (otherwise no health monitor is built).
  ft::LivenessConfig ft{};
  /// End-to-end integrity knobs (integrity.*). The Integrity layer is
  /// built when corruption is planned (fault.corrupt_prob > 0) or when
  /// any integrity key is set explicitly; otherwise every hook is one
  /// null check and timings stay bit-identical.
  fault::IntegrityConfig integrity{};
  /// Non-empty: record a Chrome trace-event JSON of fiber activity,
  /// message flows, and fault markers in virtual time and write it
  /// here when the run completes (trace.json_path).
  std::string trace_json_path;
  /// Event cap for the recorder (trace.max_events); hitting it warns
  /// and sets the "trace truncated" report row.
  std::size_t trace_max_events = sim::TraceRecorder::kDefaultMaxEvents;
  /// trace.sample_ranks: when > 0, trace at most this many ranks — a
  /// deterministic stride subset including rank 0 — and mute every
  /// other rank's tracks. 0 traces all ranks. Keeps large-p trace
  /// files bounded; cross-rank flows into unsampled ranks are pruned.
  int trace_sample_ranks = 0;
  /// trace.aggregate: record per-(track, event) latency histograms
  /// instead of individual events — O(series), not O(events), memory,
  /// so multi-thousand-rank runs stay traceable. The JSON keeps the
  /// {"traceEvents": []} envelope and adds "aggregates"/"instants".
  bool trace_aggregate = false;
  /// Observability knobs (obs.*): per-link byte accounting & heatmap.
  obs::Options obs{};
  /// Overload-control knobs (flow.*). The Controller is built only
  /// when a knob enables it (credits or deadlines); otherwise every
  /// hook is one null check and timings stay bit-identical.
  flow::FlowConfig flow{};
};

/// Applies the trace.* and obs.* config namespaces onto `config`
/// (rejecting unknown keys): trace.json_path, trace.max_events,
/// trace.sample_ranks, trace.aggregate, obs.links, obs.link_bucket_us,
/// obs.link_top, obs.link_csv, obs.timeline, obs.timeline_bucket_us,
/// obs.timeline_max_series, obs.timeline_top, obs.timeline_csv,
/// obs.critpath, obs.critpath_top.
void configure_observability(const Config& cfg, MachineConfig& config);

/// Pre-registered timeline series for the pami layer's hot paths (one
/// string lookup at machine construction, plain index stores after).
struct PamiTimelineIds {
  obs::Timeline::SeriesId pending_ops = obs::Timeline::kNone;
  obs::Timeline::SeriesId retransmits = obs::Timeline::kNone;
};

class Machine {
 public:
  explicit Machine(MachineConfig config);
  ~Machine();
  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  sim::Engine& engine() { return engine_; }
  noc::NetworkModel& network() { return *network_; }
  const noc::NetworkModel& network() const { return *network_; }
  /// Active fault injector, or nullptr when the fault plan is disabled.
  fault::Injector* injector() { return injector_.get(); }
  const fault::Injector* injector() const { return injector_.get(); }
  /// Health monitor, or nullptr unless the plan schedules node deaths.
  ft::HealthMonitor* monitor() { return monitor_.get(); }
  const ft::HealthMonitor* monitor() const { return monitor_.get(); }
  /// Integrity layer (CRC-verified transport, slot checksums,
  /// checkpoint digests), or nullptr when the subsystem is off.
  fault::Integrity* integrity() { return integrity_.get(); }
  const fault::Integrity* integrity() const { return integrity_.get(); }
  /// Active trace recorder, or nullptr when tracing is off.
  sim::TraceRecorder* trace() { return trace_.get(); }
  const sim::TraceRecorder* trace() const { return trace_.get(); }
  /// Per-link byte accounting, or nullptr when obs.links is off.
  obs::LinkUsage* link_usage() { return link_usage_.get(); }
  const obs::LinkUsage* link_usage() const { return link_usage_.get(); }
  /// Overload controller (credit ledger, deadline/shed counters), or
  /// nullptr when no flow.* knob enables it.
  flow::Controller* flow() { return flow_.get(); }
  const flow::Controller* flow() const { return flow_.get(); }
  /// Continuous time-series telemetry, or nullptr when obs.timeline is
  /// off.
  obs::Timeline* timeline() { return timeline_.get(); }
  const obs::Timeline* timeline() const { return timeline_.get(); }
  const PamiTimelineIds& timeline_ids() const { return timeline_ids_; }
  /// Critical-path attribution, or nullptr when obs.critpath is off.
  obs::CritPath* critpath() { return critpath_.get(); }
  const obs::CritPath* critpath() const { return critpath_.get(); }
  /// Trace track carrying rank `r`'s network flow endpoints
  /// ("net@rank<r>"); only valid while tracing.
  std::uint32_t rank_track(RankId rank) const;
  /// True when rank `r` is in the traced subset (always true unless
  /// trace.sample_ranks restricts tracing to a stride sample).
  bool rank_traced(RankId rank) const;
  const topo::Torus5D& torus() const { return torus_; }
  const topo::RankMapping& mapping() const { return mapping_; }
  const MachineConfig& config() const { return config_; }
  const noc::BgqParameters& params() const { return config_.params; }

  int num_ranks() const { return config_.num_ranks; }
  Process& process(RankId rank);

  /// Spawns one main fiber per rank running `rank_main`, then runs the
  /// simulation to completion. Throws whatever a rank program threw.
  void run(std::function<void(Process&)> rank_main);

  /// Spawns an extra simulated SMT thread bound to `process`
  /// (asynchronous progress threads use this).
  sim::Fiber& spawn_thread(Process& process, const std::string& name,
                           std::function<void()> body);

  Rng& rng() { return rng_; }

 private:
  static topo::Coord5 pick_dims(const MachineConfig& config);

  MachineConfig config_;
  std::unique_ptr<sim::TraceRecorder> trace_;
  std::vector<std::uint32_t> net_tracks_;  // per-rank flow tracks
  std::unique_ptr<obs::LinkUsage> link_usage_;
  std::unique_ptr<obs::Timeline> timeline_;
  std::unique_ptr<obs::CritPath> critpath_;
  PamiTimelineIds timeline_ids_;
  sim::Engine engine_;
  topo::Torus5D torus_;
  topo::RankMapping mapping_;
  std::unique_ptr<noc::NetworkModel> network_;
  std::unique_ptr<fault::Injector> injector_;
  std::unique_ptr<ft::HealthMonitor> monitor_;
  std::unique_ptr<fault::Integrity> integrity_;
  std::unique_ptr<flow::Controller> flow_;
  std::vector<std::unique_ptr<Process>> processes_;
  Rng rng_;
};

}  // namespace pgasq::pami
