// Memory regions for RDMA.
//
// RDMA put/get on BG/Q require both the source and the target buffer
// to be covered by a registered memory region (S III-B). Region
// metadata is small (gamma = 8 bytes) and size-independent, but
// creation costs delta = 43 us and — at scale — may fail outright due
// to memory constraints, which is why ARMCI keeps a remote-region
// cache with an AM-served miss path. The simulator models creation
// cost, a configurable per-process region limit, and space accounting.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "pami/types.hpp"

namespace pgasq::pami {

/// Handle to a registered region. Cheap value type (the "metadata" the
/// paper says is independent of region size).
struct MemoryRegion {
  RankId owner = -1;
  std::byte* base = nullptr;
  std::size_t size = 0;
  std::uint64_t id = 0;

  bool valid() const { return base != nullptr; }
  bool covers(const std::byte* addr, std::size_t bytes) const {
    return addr >= base && addr + bytes <= base + size;
  }
};

/// Per-process registration table.
class RegionTable {
 public:
  explicit RegionTable(RankId owner, std::size_t max_regions)
      : owner_(owner), max_regions_(max_regions) {}

  /// Registers [base, base+size). Returns nullopt when the region
  /// limit is reached (the at-scale failure mode the fall-back
  /// protocol exists for). Does not charge time — the caller does.
  std::optional<MemoryRegion> create(std::byte* base, std::size_t size);

  /// Removes a registration.
  void destroy(const MemoryRegion& region);

  /// Finds a registered region covering [addr, addr+bytes).
  std::optional<MemoryRegion> find(const std::byte* addr, std::size_t bytes) const;

  std::size_t count() const { return regions_.size(); }
  std::uint64_t created_total() const { return next_id_ - 1; }

 private:
  RankId owner_;
  std::size_t max_regions_;
  std::uint64_t next_id_ = 1;
  std::vector<MemoryRegion> regions_;
};

}  // namespace pgasq::pami
