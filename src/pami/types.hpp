// Shared vocabulary types for the simulated PAMI layer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "util/time_types.hpp"

namespace pgasq::pami {

/// Global process (MPI-style) rank.
using RankId = int;

/// PAMI endpoint: addresses one communication context of one rank's
/// client. Active messages and RMA target an endpoint, not a rank
/// (S III-A1).
struct Endpoint {
  RankId rank = -1;
  int context = 0;

  bool operator==(const Endpoint&) const = default;
};

/// Completion callback, executed from PAMI_Context_advance on the
/// thread that advances.
using Callback = std::function<void()>;

/// Read-modify-write operations. BG/Q PAMI exposes these but services
/// them in software at the target — the hardware limitation S III-D is
/// about; the simulator reproduces that (see BgqParameters::hardware_amo).
enum class RmwOp {
  kFetchAdd,  ///< returns old value, adds operand
  kAdd,       ///< adds operand, no fetch
  kSwap,      ///< returns old value, stores operand
  kCompareSwap,  ///< if old == compare, store operand; returns old
};

/// Result delivered to an rmw completion callback.
using RmwCallback = std::function<void(std::int64_t fetched)>;

/// Active-message dispatch identifier, registered per context.
using DispatchId = int;

/// An active message as seen by the target's dispatch handler.
struct AmMessage {
  Endpoint source;               ///< reply address
  std::vector<std::byte> header;
  std::vector<std::byte> payload;
  Time sent_at = 0;
  Time arrived_at = 0;
  /// Causal-trace flow id linking send to dispatch (0 = untraced).
  std::uint64_t flow_id = 0;
  /// Absolute virtual-time deadline (0 = none). Set by overload-aware
  /// clients; consulted by the target before dispatch.
  Time deadline = 0;
  /// Set by the target when the deadline had passed on arrival: the
  /// handler must still run (its ack keeps fences alive) but should
  /// skip the real work and answer with its protocol's expired signal.
  bool expired = false;
};

/// One contiguous piece of a typed (strided) transfer: byte offsets
/// are relative to the local / remote base addresses of the transfer.
struct TypedChunk {
  std::uint64_t local_offset;
  std::uint64_t remote_offset;
  std::uint64_t bytes;
};

}  // namespace pgasq::pami
