#include "pami/process.hpp"

#include "pami/machine.hpp"
#include "util/error.hpp"

namespace pgasq::pami {

Process::Process(Machine& machine, RankId rank, std::size_t max_memregions)
    : machine_(machine),
      rank_(rank),
      node_(machine.mapping().node_of_rank(rank)),
      regions_(rank, max_memregions) {}

void Process::create_client() {
  PGASQ_CHECK(!client_created_, << "rank " << rank_ << ": client already created");
  busy(machine_.params().client_create);
  client_created_ = true;
  ++space_.clients;
}

Context& Process::create_context() {
  PGASQ_CHECK(client_created_, << "rank " << rank_
                               << ": create the client before contexts");
  busy(machine_.params().context_create);
  contexts_.push_back(
      std::make_unique<Context>(*this, static_cast<int>(contexts_.size())));
  ++space_.contexts;
  return *contexts_.back();
}

Endpoint Process::create_endpoint(RankId dest, int dest_context) {
  PGASQ_CHECK(dest >= 0 && dest < machine_.num_ranks(), << "endpoint to rank " << dest);
  busy(machine_.params().endpoint_create);
  ++space_.endpoints;
  return Endpoint{dest, dest_context};
}

std::optional<MemoryRegion> Process::create_memregion(void* base, std::size_t size) {
  busy(machine_.params().memregion_create);
  auto r = regions_.create(static_cast<std::byte*>(base), size);
  if (r) ++space_.memregions;
  return r;
}

void Process::destroy_memregion(const MemoryRegion& region) {
  regions_.destroy(region);
  PGASQ_CHECK(space_.memregions > 0);
  --space_.memregions;
}

void Process::busy(Time t) {
  if (t <= 0) return;
  machine_.engine().sleep_for(t);
}

Time Process::now() const { return machine_.engine().now(); }

}  // namespace pgasq::pami
