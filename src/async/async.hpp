// Asynchronous completion runtime (the futures subsystem's engine).
//
// One Runtime attaches to each rank's Comm (async_slot), bridging the
// ARMCI nonblocking machinery to fut::Future: every Handle can be
// converted to a future (future_of), communication ops can be issued
// with an explicit completion variant (UPC++ completion.hpp shape),
// and continuations enqueued by fulfilled promises are drained FIFO
// from the progress engine — on the application fiber, in virtual-time
// order, never inline at fulfillment and never on the async progress
// thread. Zero-cost when unattached: Comm carries one null hook.
//
// See docs/async.md for the programming model and determinism rules.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "async/future.hpp"
#include "core/comm.hpp"
#include "core/types.hpp"
#include "obs/timeline.hpp"

namespace pgasq::async {

/// Completion variant of a communication op (UPC++ completion.hpp):
/// - kSource: the local source buffer is reusable (puts/accs snapshot
///   the source at injection, so this is satisfied at initiation);
/// - kOperation: the op is locally complete (handle semantics; for
///   gets the data has landed, which also makes it remote completion);
/// - kRemote: the target's acknowledgement arrived — the write is
///   visible at the target.
enum class Cx { kSource, kOperation, kRemote };

/// Parsed "async.*" configuration (carried opaquely through
/// armci::Options::async, CLI prefix stripped). Unknown keys are
/// rejected with the stored key name — a misspelled knob must not be
/// silently ignored.
struct AsyncConfig {
  /// Overlapped SCF: pipeline next-task density prefetch under the
  /// current task's compute and run the energy reduction as an
  /// iallreduce chained past the iteration boundary (src/apps/scf).
  bool scf_overlap = false;

  static AsyncConfig from_options(const armci::Options& opt);
};

/// A revocable (deferred-injection) get issued through the runtime.
/// The op is queued locally and injected on the next progress pass;
/// revoke() before injection cancels it outright — no wire leg is ever
/// generated. After injection the op proceeds (the simulator resolves
/// all wire legs at injection) and revoke() only abandons it: the
/// future still fulfills when the data lands.
struct RevocableGet {
  armci::Handle handle;
  fut::Future<fut::Unit> future;
  std::shared_ptr<armci::DeferredGet> op;

  bool valid() const { return op != nullptr; }
};

class Runtime final : public fut::Scheduler {
 public:
  /// The runtime attached to `comm`, created (and hooked into the
  /// progress engine) on first use.
  static Runtime& of(armci::Comm& comm);
  /// The attached runtime, or nullptr — never creates.
  static Runtime* maybe_of(armci::Comm& comm);

  explicit Runtime(armci::Comm& comm);
  ~Runtime() override;

  // --- fut::Scheduler ------------------------------------------------------
  void enqueue(std::function<void()> k) override;
  void note_pending(int delta) override;

  // --- Future bridge -------------------------------------------------------

  /// Future that fulfills when every op currently attached to `h`
  /// completes (ready immediately for an idle handle). The handle
  /// stays usable as before — it is now a thin view over the same
  /// completion state.
  fut::Future<fut::Unit> future_of(armci::Handle& h);

  // --- Communication ops with completion variants --------------------------
  // The source buffer is snapshotted at injection for puts and accs,
  // so Cx::kSource futures are ready at return. Continuation capture
  // rules (long-lived comm buffers, DESIGN.md §5) apply to every
  // buffer a chained op reads or writes.

  fut::Future<fut::Unit> put(const void* src, armci::RemotePtr dst,
                             std::size_t bytes, Cx cx = Cx::kOperation);
  fut::Future<fut::Unit> get(armci::RemotePtr src, void* dst, std::size_t bytes);
  fut::Future<fut::Unit> acc(double alpha, const double* src, armci::RemotePtr dst,
                             std::size_t count, Cx cx = Cx::kOperation);

  /// Deferred-injection get that can be cancelled before its wire leg
  /// (see RevocableGet; the kvs hedge uses this to revoke stragglers).
  RevocableGet get_revocable(armci::RemotePtr src, void* dst, std::size_t bytes);
  /// True when the op was revoked before injection (fully cancelled:
  /// no traffic, no byte counted; handle and future complete "empty").
  /// False when the op was already injected — it is then abandoned:
  /// left to finish normally, runtime counters track it.
  bool revoke(RevocableGet& g);

  // --- Aggregation ----------------------------------------------------------
  // Futures aggregate with fut::when_all / fut::when_any; handle sets
  // route through Comm::wait_some / Comm::test_all.

  fut::Future<std::vector<fut::Unit>> when_all(std::vector<armci::Handle*> hs);
  fut::Future<std::size_t> when_any(std::vector<armci::Handle*> hs);

  /// Blocks (driving progress, draining continuations) until `f` is
  /// ready and returns its value.
  template <typename T>
  const T& wait(const fut::Future<T>& f) {
    comm_.progress_until([&f] { return f.ready(); });
    return f.value();
  }

  // --- Progress -------------------------------------------------------------

  /// One pass of the runtime: step registered pollers (non-blocking
  /// collectives), then drain the continuation queue FIFO. Invoked by
  /// Comm's progress paths via the async hook; reentrant calls (a
  /// continuation blocking on a future) step pollers but skip the
  /// queue — the outer frame owns it.
  void drain();

  /// Registers a per-progress-pass poller (the nbc engine's stepper);
  /// returns an id for unregister.
  std::size_t register_poller(std::function<void()> fn);
  void unregister_poller(std::size_t id);

  /// Poll-driven completion sources (open non-blocking collectives)
  /// register here: while any is live, blocking waits advance virtual
  /// time and re-poll instead of parking — their arrival flags are
  /// one-sided writes that would never wake a parked fiber.
  void note_poll_source(int delta);

  /// Finalize-time quiescence check: aborts when continuations were
  /// abandoned (registered on futures that never fulfilled, or
  /// enqueued but never drained) — chained work silently dropped is a
  /// program error, not a benign leak.
  void check_quiesced() const;

  // --- Introspection --------------------------------------------------------

  std::size_t queue_depth() const { return queue_.size(); }
  std::size_t pending_continuations() const { return pending_; }
  std::uint64_t continuations_run() const { return continuations_run_; }
  std::uint64_t gets_revoked() const { return gets_revoked_; }
  std::uint64_t gets_abandoned() const { return gets_abandoned_; }
  const AsyncConfig& config() const { return config_; }
  armci::Comm& comm() { return comm_; }

 private:
  void sample_gauges();

  armci::Comm& comm_;
  AsyncConfig config_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::pair<std::size_t, std::function<void()>>> pollers_;
  std::size_t next_poller_id_ = 1;
  std::size_t pending_ = 0;  ///< continuations awaiting a value
  int poll_sources_ = 0;     ///< live poll-completed sources (nbc ops)
  bool draining_ = false;
  std::uint64_t continuations_run_ = 0;
  std::uint64_t gets_revoked_ = 0;
  std::uint64_t gets_abandoned_ = 0;
  // Timeline series (kNone when obs.timeline is off).
  obs::Timeline* timeline_ = nullptr;
  obs::Timeline::SeriesId pending_series_ = obs::Timeline::kNone;
  obs::Timeline::SeriesId queue_series_ = obs::Timeline::kNone;
};

}  // namespace pgasq::async
