// Composable futures for the asynchronous runtime (src/async).
//
// fut::Promise<T> / fut::Future<T> follow the UPC++ shape: a future is
// a read-only view of a shared completion state; `.then()` chains a
// continuation and returns the future of its result; when_all /
// when_any aggregate. The crucial determinism rule: continuations
// NEVER run inline at fulfillment. Fulfilling a promise enqueues its
// continuations on the owning rank's fut::Scheduler (the async
// runtime's FIFO queue), and the progress engine drains that queue on
// the application fiber in virtual-time order — so the execution order
// of chained work is a pure function of the simulated schedule and is
// bitwise seed-stable (docs/async.md).
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/error.hpp"

namespace pgasq::fut {

/// Where fulfilled promises enqueue their continuations. Implemented
/// by async::Runtime; kept abstract so unit tests can substitute a
/// trivial immediate-drain scheduler.
class Scheduler {
 public:
  virtual ~Scheduler() = default;
  /// Append a continuation to the FIFO ready queue (drained from the
  /// progress engine, never inline).
  virtual void enqueue(std::function<void()> k) = 0;
  /// Bookkeeping for the pending-futures gauge and the
  /// abandoned-continuation check: +1 when a continuation is attached
  /// to a not-yet-ready future, -1 when its value arrives.
  virtual void note_pending(int delta) = 0;
};

/// Value type of futures that carry no payload ("operation finished").
struct Unit {};

template <typename T = Unit>
class Future;
template <typename T = Unit>
class Promise;

namespace detail {

template <typename T>
struct SharedState {
  Scheduler* sched = nullptr;
  std::optional<T> value;
  /// Continuations registered before the value arrived; moved out and
  /// enqueued (FIFO) at fulfillment.
  std::vector<std::function<void(const T&)>> conts;

  bool ready() const { return value.has_value(); }
};

template <typename U>
struct IsFuture : std::false_type {};
template <typename U>
struct IsFuture<Future<U>> : std::true_type {};

/// Result mapping for then(): void -> Unit, Future<U> -> U (flattened).
template <typename R>
struct ThenResult {
  using type = R;
};
template <>
struct ThenResult<void> {
  using type = Unit;
};
template <typename U>
struct ThenResult<Future<U>> {
  using type = U;
};

}  // namespace detail

template <typename T>
class Promise {
 public:
  Promise() = default;
  explicit Promise(Scheduler& sched)
      : state_(std::make_shared<detail::SharedState<T>>()) {
    state_->sched = &sched;
  }

  bool valid() const { return state_ != nullptr; }
  bool fulfilled() const { return state_ != nullptr && state_->ready(); }
  Future<T> future() const;

  /// Stores the value and enqueues every registered continuation on
  /// the scheduler, preserving registration order. Single-shot.
  void fulfill(T value) const {
    PGASQ_CHECK(state_ != nullptr, << "fulfill on a default Promise");
    PGASQ_CHECK(!state_->ready(), << "promise fulfilled twice");
    state_->value.emplace(std::move(value));
    auto conts = std::move(state_->conts);
    state_->conts.clear();
    for (auto& k : conts) {
      state_->sched->note_pending(-1);
      auto st = state_;
      state_->sched->enqueue([st, k = std::move(k)] { k(*st->value); });
    }
  }

 private:
  std::shared_ptr<detail::SharedState<T>> state_;
};

template <typename T>
class Future {
 public:
  using value_type = T;

  Future() = default;  ///< invalid (no state attached)

  bool valid() const { return state_ != nullptr; }
  bool ready() const { return state_ != nullptr && state_->ready(); }

  /// The fulfilled value; checked.
  const T& value() const {
    PGASQ_CHECK(ready(), << "Future::value() before readiness");
    return *state_->value;
  }

  /// Chains `f` to run (on the scheduler, never inline) once this
  /// future is ready; returns the future of f's result. `f` may return
  /// a plain value, void (mapped to Unit), or another Future (the
  /// result is flattened, so communication ops compose: e.g.
  /// `rt.get(...).then([&]{ return rt.put(...); }).then(...)`).
  template <typename F>
  auto then(F&& f) const {
    PGASQ_CHECK(valid(), << "then() on an invalid Future");
    using R = std::invoke_result_t<F, const T&>;
    using U = typename detail::ThenResult<R>::type;
    Promise<U> next(*state_->sched);
    auto fn = std::function<R(const T&)>(std::forward<F>(f));
    auto run = [next, fn](const T& v) {
      if constexpr (std::is_void_v<R>) {
        fn(v);
        next.fulfill(Unit{});
      } else if constexpr (detail::IsFuture<R>::value) {
        // Flatten: fulfill `next` when the inner future does.
        R inner = fn(v);
        inner.then([next](const U& u) { next.fulfill(u); });
      } else {
        next.fulfill(fn(v));
      }
    };
    attach(std::move(run));
    return next.future();
  }

  /// Low-level continuation hook used by the aggregators; prefer then().
  void attach(std::function<void(const T&)> k) const {
    PGASQ_CHECK(valid(), << "attach() on an invalid Future");
    if (state_->ready()) {
      // Already ready: still goes through the queue, so ordering
      // between "late" and "early" continuations stays FIFO.
      auto st = state_;
      state_->sched->enqueue([st, k = std::move(k)] { k(*st->value); });
    } else {
      state_->sched->note_pending(+1);
      state_->conts.push_back(std::move(k));
    }
  }

  Scheduler& scheduler() const {
    PGASQ_CHECK(valid(), << "scheduler() on an invalid Future");
    return *state_->sched;
  }

 private:
  friend class Promise<T>;
  explicit Future(std::shared_ptr<detail::SharedState<T>> s)
      : state_(std::move(s)) {}
  std::shared_ptr<detail::SharedState<T>> state_;
};

template <typename T>
Future<T> Promise<T>::future() const {
  PGASQ_CHECK(state_ != nullptr, << "future() on a default Promise");
  return Future<T>(state_);
}

/// Convenience: an already-fulfilled future.
template <typename T>
Future<T> make_ready(Scheduler& sched, T value) {
  Promise<T> p(sched);
  p.fulfill(std::move(value));
  return p.future();
}

/// Future of all inputs' values (input order preserved). Ready once
/// every input is; an empty set is ready at the first drain.
template <typename T>
Future<std::vector<T>> when_all(Scheduler& sched, std::vector<Future<T>> fs) {
  Promise<std::vector<T>> p(sched);
  struct Gather {
    std::vector<std::optional<T>> slots;
    std::size_t missing;
  };
  auto g = std::make_shared<Gather>();
  g->slots.resize(fs.size());
  g->missing = fs.size();
  if (fs.empty()) {
    p.fulfill({});
    return p.future();
  }
  for (std::size_t i = 0; i < fs.size(); ++i) {
    fs[i].attach([p, g, i](const T& v) {
      g->slots[i] = v;
      if (--g->missing == 0) {
        std::vector<T> out;
        out.reserve(g->slots.size());
        for (auto& s : g->slots) out.push_back(std::move(*s));
        p.fulfill(std::move(out));
      }
    });
  }
  return p.future();
}

/// Future of the index of the first input to become ready (first in
/// drain order; deterministic). The losers stay in flight — the caller
/// must keep their buffers alive (same contract as Comm::wait_any).
template <typename T>
Future<std::size_t> when_any(Scheduler& sched, std::vector<Future<T>> fs) {
  PGASQ_CHECK(!fs.empty(), << "when_any over an empty set");
  Promise<std::size_t> p(sched);
  auto won = std::make_shared<bool>(false);
  for (std::size_t i = 0; i < fs.size(); ++i) {
    fs[i].attach([p, won, i](const T&) {
      if (*won) return;
      *won = true;
      p.fulfill(i);
    });
  }
  return p.future();
}

}  // namespace pgasq::fut
