#include "async/async.hpp"

#include <utility>

#include "pami/machine.hpp"
#include "util/error.hpp"

namespace pgasq::async {

AsyncConfig AsyncConfig::from_options(const armci::Options& opt) {
  AsyncConfig c;
  for (const auto& [key, value] : opt.async) {
    if (key == "scf_overlap") {
      c.scf_overlap = value != "0";
    } else {
      PGASQ_CHECK(false, << "unknown async.* option: async." << key
                         << " (known: async.scf_overlap)");
    }
  }
  return c;
}

Runtime& Runtime::of(armci::Comm& comm) {
  std::shared_ptr<void>& slot = comm.async_slot();
  if (!slot) slot = std::make_shared<Runtime>(comm);
  return *static_cast<Runtime*>(slot.get());
}

Runtime* Runtime::maybe_of(armci::Comm& comm) {
  return static_cast<Runtime*>(comm.async_slot().get());
}

Runtime::Runtime(armci::Comm& comm)
    : comm_(comm), config_(AsyncConfig::from_options(comm.options())) {
  timeline_ = comm.world().machine().timeline();
  if (timeline_ != nullptr) {
    pending_series_ =
        timeline_->series("async.pending_futures", obs::Timeline::Kind::kGauge);
    queue_series_ =
        timeline_->series("async.cont_queue_depth", obs::Timeline::Kind::kGauge);
  }
  comm.set_async_hook([this] { drain(); }, [this] { check_quiesced(); });
  comm.set_async_poll_hook([this] { return poll_sources_ > 0; });
}

void Runtime::note_poll_source(int delta) {
  poll_sources_ += delta;
  PGASQ_CHECK(poll_sources_ >= 0, << "poll-source underflow");
}

Runtime::~Runtime() = default;

void Runtime::enqueue(std::function<void()> k) {
  queue_.push_back(std::move(k));
  sample_gauges();
}

void Runtime::note_pending(int delta) {
  if (delta > 0) {
    pending_ += static_cast<std::size_t>(delta);
  } else {
    PGASQ_CHECK(pending_ >= static_cast<std::size_t>(-delta),
                << "pending-continuation underflow");
    pending_ -= static_cast<std::size_t>(-delta);
  }
  sample_gauges();
}

void Runtime::drain() {
  // Pollers always step (a continuation blocking on an nbc future
  // re-enters here and the schedule must keep advancing); the queue is
  // owned by the outermost frame so continuation order stays FIFO.
  for (auto& [id, fn] : pollers_) fn();
  if (draining_) return;
  draining_ = true;
  while (!queue_.empty()) {
    auto k = std::move(queue_.front());
    queue_.pop_front();
    ++continuations_run_;
    sample_gauges();
    k();
    // A continuation may have fulfilled promises whose futures belong
    // to a still-initiating nbc op — keep stepping between queue runs.
    for (auto& [id, fn] : pollers_) fn();
  }
  draining_ = false;
}

std::size_t Runtime::register_poller(std::function<void()> fn) {
  const std::size_t id = next_poller_id_++;
  pollers_.emplace_back(id, std::move(fn));
  return id;
}

void Runtime::unregister_poller(std::size_t id) {
  for (auto it = pollers_.begin(); it != pollers_.end(); ++it) {
    if (it->first == id) {
      pollers_.erase(it);
      return;
    }
  }
}

void Runtime::check_quiesced() const {
  PGASQ_CHECK(queue_.empty() && pending_ == 0,
              << "abandoned continuations at finalize: " << queue_.size()
              << " queued, " << pending_
              << " awaiting futures that never fulfilled — chained work was "
                 "silently dropped (wait on your futures before finalize)");
}

fut::Future<fut::Unit> Runtime::future_of(armci::Handle& h) {
  auto s = h.state();
  fut::Promise<fut::Unit> p(*this);
  if (s->outstanding == 0) {
    p.fulfill({});
    return p.future();
  }
  if (s->on_zero) {
    // A future already bridges this handle: chain, preserving order.
    auto prev = std::move(s->on_zero);
    s->on_zero = [prev = std::move(prev), p] {
      prev();
      p.fulfill({});
    };
  } else {
    s->on_zero = [p] { p.fulfill({}); };
  }
  return p.future();
}

fut::Future<fut::Unit> Runtime::put(const void* src, armci::RemotePtr dst,
                                    std::size_t bytes, Cx cx) {
  armci::Handle h;
  switch (cx) {
    case Cx::kSource: {
      // Puts snapshot the source at injection (pami rput stages a
      // copy; the AM fall-back copies the payload) — source completion
      // is satisfied when the initiation returns.
      comm_.nb_put(src, dst, bytes, h);
      return fut::make_ready(*this, fut::Unit{});
    }
    case Cx::kOperation: {
      comm_.nb_put(src, dst, bytes, h);
      return future_of(h);
    }
    case Cx::kRemote: {
      fut::Promise<fut::Unit> p(*this);
      comm_.nb_put(src, dst, bytes, h, [p] { p.fulfill(fut::Unit{}); });
      return p.future();
    }
  }
  PGASQ_UNREACHABLE("completion variant");
}

fut::Future<fut::Unit> Runtime::get(armci::RemotePtr src, void* dst,
                                    std::size_t bytes) {
  armci::Handle h;
  comm_.nb_get(src, dst, bytes, h);
  // Operation completion == remote completion for a get: the data has
  // landed locally, and the target did nothing that needs acking.
  return future_of(h);
}

fut::Future<fut::Unit> Runtime::acc(double alpha, const double* src,
                                    armci::RemotePtr dst, std::size_t count,
                                    Cx cx) {
  armci::Handle h;
  switch (cx) {
    case Cx::kSource: {
      comm_.nb_acc(alpha, src, dst, count, h);
      return fut::make_ready(*this, fut::Unit{});
    }
    case Cx::kOperation: {
      comm_.nb_acc(alpha, src, dst, count, h);
      return future_of(h);
    }
    case Cx::kRemote: {
      fut::Promise<fut::Unit> p(*this);
      comm_.nb_acc(alpha, src, dst, count, h, [p] { p.fulfill(fut::Unit{}); });
      return p.future();
    }
  }
  PGASQ_UNREACHABLE("completion variant");
}

RevocableGet Runtime::get_revocable(armci::RemotePtr src, void* dst,
                                    std::size_t bytes) {
  RevocableGet g;
  g.op = comm_.nb_get_deferred(src, dst, bytes);
  g.handle = g.op->handle;
  g.future = future_of(g.op->handle);
  return g;
}

bool Runtime::revoke(RevocableGet& g) {
  PGASQ_CHECK(g.valid(), << "revoke of an invalid RevocableGet");
  if (comm_.revoke_get(g.op)) {
    ++gets_revoked_;
    return true;
  }
  if (!g.op->handle.done()) ++gets_abandoned_;
  return false;
}

fut::Future<std::vector<fut::Unit>> Runtime::when_all(
    std::vector<armci::Handle*> hs) {
  std::vector<fut::Future<fut::Unit>> fs;
  fs.reserve(hs.size());
  for (armci::Handle* h : hs) fs.push_back(future_of(*h));
  return fut::when_all(*this, std::move(fs));
}

fut::Future<std::size_t> Runtime::when_any(std::vector<armci::Handle*> hs) {
  std::vector<fut::Future<fut::Unit>> fs;
  fs.reserve(hs.size());
  for (armci::Handle* h : hs) fs.push_back(future_of(*h));
  return fut::when_any(*this, std::move(fs));
}

void Runtime::sample_gauges() {
  if (timeline_ == nullptr) return;
  const Time t = comm_.now();
  timeline_->sample(pending_series_, t, static_cast<double>(pending_));
  timeline_->sample(queue_series_, t, static_cast<double>(queue_.size()));
}

}  // namespace pgasq::async
