// Blue Gene/Q 5D torus geometry.
//
// BG/Q interconnects compute nodes in a 5-dimensional torus (dims
// named A, B, C, D, E; E is always 2 on real hardware) with ten
// bidirectional 2 GB/s links per node and deterministic dimension-order
// routing (the only mode exposed by software at the time of the paper,
// S II-A). This module provides coordinates, wraparound hop distances,
// route enumeration for the link-contention network model, and the
// ABCDET process-to-node mapping used throughout the paper's
// evaluation (S IV, Fig 7).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace pgasq::topo {

/// Number of torus dimensions.
inline constexpr int kDims = 5;

/// Coordinate in (A, B, C, D, E) order.
using Coord5 = std::array<int, kDims>;

/// One directed link hop used by a route.
struct Link {
  int from_node;
  int to_node;
  int dim;  ///< 0..4 (A..E)
  int dir;  ///< +1 or -1
};

class Torus5D {
 public:
  explicit Torus5D(Coord5 dims);

  const Coord5& dims() const { return dims_; }
  int num_nodes() const { return num_nodes_; }

  /// Node index <-> coordinate, lexicographic with A slowest.
  Coord5 coord_of(int node) const;
  int node_of(const Coord5& c) const;

  /// Minimal wraparound hop count between two nodes.
  int hop_distance(int a, int b) const;
  /// Largest hop distance in this torus (network diameter).
  int diameter() const;

  /// Deterministic dimension-order route (A first, then B..E), taking
  /// the shorter wrap direction; ties broken toward +1 so routes are
  /// reproducible. Empty when src == dst.
  std::vector<Link> route(int src, int dst) const;

  /// Minimal route traversing dimensions in the given order — used to
  /// model BG/Q's dynamic routing (hardware supports it; the software
  /// stack of the paper's era exposed deterministic only, S II-A).
  /// `dim_order` must be a permutation of {0..4}.
  std::vector<Link> route_ordered(int src, int dst,
                                  const std::array<int, kDims>& dim_order) const;

  /// Fault-tolerant dimension-order route: takes the deterministic
  /// route when none of its links satisfy `blocked`; otherwise finds a
  /// shortest route around the blocked links (deterministic BFS whose
  /// neighbour enumeration follows dimension order, so healthy runs
  /// and degraded runs stay bit-reproducible). Throws pgasq::Error
  /// when the blocked links disconnect src from dst.
  std::vector<Link> route_avoiding(
      int src, int dst, const std::function<bool(const Link&)>& blocked) const;

  /// Dense id for a directed link: node * 10 + dim * 2 + (dir<0).
  int link_index(const Link& link) const;
  int num_links() const { return num_nodes_ * kDims * 2; }

  std::string to_string() const;

 private:
  Coord5 dims_;
  int num_nodes_;
};

/// Standard BG/Q partition shapes for power-of-two node counts
/// (1..4096). 128 nodes = 2*2*4*4*2 exactly as the paper derives in
/// Eq 10; 512 nodes is a midplane (4*4*4*4*2). Throws for sizes with
/// no table entry.
Coord5 bgq_partition_dims(int nodes);

/// True if `nodes` has a partition table entry.
bool has_bgq_partition(int nodes);

/// Balanced 5D factorization for arbitrary node counts (largest factor
/// first), used when no standard partition shape applies.
Coord5 balanced_dims(int nodes);

/// ABCDET mapping: ranks fill the T (process-per-node) dimension
/// fastest, then E, D, C, B, A — i.e. consecutive ranks pack each node
/// before moving to the torus neighbour.
class RankMapping {
 public:
  RankMapping(const Torus5D& torus, int ranks_per_node);

  int num_ranks() const { return num_ranks_; }
  int ranks_per_node() const { return ranks_per_node_; }
  int node_of_rank(int rank) const;
  /// Hardware-thread slot of the rank within its node (the "T" digit).
  int slot_of_rank(int rank) const;
  int rank_of(int node, int slot) const;

 private:
  const Torus5D& torus_;
  int ranks_per_node_;
  int num_ranks_;
};

}  // namespace pgasq::topo
