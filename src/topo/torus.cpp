#include "topo/torus.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"

namespace pgasq::topo {

Torus5D::Torus5D(Coord5 dims) : dims_(dims) {
  num_nodes_ = 1;
  for (int d = 0; d < kDims; ++d) {
    PGASQ_CHECK(dims_[d] >= 1, << "torus dim " << d << " = " << dims_[d]);
    num_nodes_ *= dims_[d];
  }
}

Coord5 Torus5D::coord_of(int node) const {
  PGASQ_CHECK(node >= 0 && node < num_nodes_, << "node " << node);
  Coord5 c{};
  for (int d = kDims - 1; d >= 0; --d) {
    c[d] = node % dims_[d];
    node /= dims_[d];
  }
  return c;
}

int Torus5D::node_of(const Coord5& c) const {
  int node = 0;
  for (int d = 0; d < kDims; ++d) {
    PGASQ_CHECK(c[d] >= 0 && c[d] < dims_[d], << "coord[" << d << "] = " << c[d]);
    node = node * dims_[d] + c[d];
  }
  return node;
}

namespace {
/// Signed offset along one torus dimension taking the shorter wrap
/// direction; ties resolve to the positive direction.
int wrap_delta(int from, int to, int size) {
  int fwd = to - from;
  if (fwd < 0) fwd += size;        // steps in +1 direction
  const int bwd = size - fwd;      // steps in -1 direction
  if (fwd == 0) return 0;
  return fwd <= bwd ? fwd : -bwd;
}
}  // namespace

int Torus5D::hop_distance(int a, int b) const {
  const Coord5 ca = coord_of(a);
  const Coord5 cb = coord_of(b);
  int hops = 0;
  for (int d = 0; d < kDims; ++d) {
    hops += std::abs(wrap_delta(ca[d], cb[d], dims_[d]));
  }
  return hops;
}

int Torus5D::diameter() const {
  int diam = 0;
  for (int d = 0; d < kDims; ++d) diam += dims_[d] / 2;
  return diam;
}

std::vector<Link> Torus5D::route(int src, int dst) const {
  return route_ordered(src, dst, {0, 1, 2, 3, 4});
}

std::vector<Link> Torus5D::route_ordered(
    int src, int dst, const std::array<int, kDims>& dim_order) const {
  // Validate the permutation.
  int seen = 0;
  for (int d : dim_order) {
    PGASQ_CHECK(d >= 0 && d < kDims, << "dim " << d);
    seen |= 1 << d;
  }
  PGASQ_CHECK(seen == (1 << kDims) - 1, << "dim_order is not a permutation");
  const Coord5 cd = coord_of(dst);
  Coord5 cur = coord_of(src);
  std::vector<Link> links;
  links.reserve(static_cast<std::size_t>(hop_distance(src, dst)));
  for (const int d : dim_order) {
    int delta = wrap_delta(cur[d], cd[d], dims_[d]);
    const int dir = delta >= 0 ? 1 : -1;
    for (; delta != 0; delta -= dir) {
      Coord5 next = cur;
      next[d] = (cur[d] + dir + dims_[d]) % dims_[d];
      links.push_back(Link{node_of(cur), node_of(next), d, dir});
      cur = next;
    }
  }
  return links;
}

std::vector<Link> Torus5D::route_avoiding(
    int src, int dst, const std::function<bool(const Link&)>& blocked) const {
  if (src == dst) return {};
  // Fast path: the deterministic dimension-order route, untouched.
  std::vector<Link> nominal = route(src, dst);
  const bool nominal_ok =
      std::none_of(nominal.begin(), nominal.end(),
                   [&](const Link& l) { return blocked(l); });
  if (nominal_ok) return nominal;
  // Route-around: BFS over nodes skipping blocked links. The queue is
  // FIFO and neighbours are enumerated in (dim, +1 then -1) order, so
  // the chosen shortest path is a deterministic function of the
  // blocked set — no RNG, no iteration-order dependence.
  std::vector<Link> via(static_cast<std::size_t>(num_nodes_),
                        Link{-1, -1, -1, 0});
  std::vector<int> frontier{src};
  via[static_cast<std::size_t>(src)] = Link{src, src, 0, 1};  // visited marker
  bool found = false;
  while (!frontier.empty() && !found) {
    std::vector<int> next_frontier;
    for (const int node : frontier) {
      const Coord5 c = coord_of(node);
      for (int d = 0; d < kDims && !found; ++d) {
        if (dims_[d] == 1) continue;
        for (const int dir : {1, -1}) {
          Coord5 nc = c;
          nc[d] = (c[d] + dir + dims_[d]) % dims_[d];
          const int neighbour = node_of(nc);
          if (via[static_cast<std::size_t>(neighbour)].from_node != -1) continue;
          const Link hop{node, neighbour, d, dir};
          if (blocked(hop)) continue;
          via[static_cast<std::size_t>(neighbour)] = hop;
          if (neighbour == dst) {
            found = true;
            break;
          }
          next_frontier.push_back(neighbour);
        }
      }
      if (found) break;
    }
    frontier = std::move(next_frontier);
  }
  PGASQ_CHECK(found, << "route_avoiding: no route from node " << src << " to node "
                     << dst << " — the blocked links partition the torus");
  std::vector<Link> path;
  for (int node = dst; node != src; node = via[static_cast<std::size_t>(node)].from_node) {
    path.push_back(via[static_cast<std::size_t>(node)]);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

int Torus5D::link_index(const Link& link) const {
  PGASQ_CHECK(link.from_node >= 0 && link.from_node < num_nodes_);
  PGASQ_CHECK(link.dim >= 0 && link.dim < kDims);
  return link.from_node * (kDims * 2) + link.dim * 2 + (link.dir < 0 ? 1 : 0);
}

std::string Torus5D::to_string() const {
  std::ostringstream os;
  os << dims_[0] << 'x' << dims_[1] << 'x' << dims_[2] << 'x' << dims_[3] << 'x'
     << dims_[4] << " torus (" << num_nodes_ << " nodes)";
  return os.str();
}

namespace {
struct PartitionEntry {
  int nodes;
  Coord5 dims;
};

// Standard BG/Q partition shapes. The E dimension is fixed at 2 on
// real hardware (except trivially small partitions); 128 nodes matches
// the paper's Eq 10 decomposition 2(A)*2(B)*4(C)*4(D)*2(E); 512 nodes
// is one midplane.
constexpr PartitionEntry kPartitions[] = {
    {1, {1, 1, 1, 1, 1}},    {2, {2, 1, 1, 1, 1}},    {4, {2, 2, 1, 1, 1}},
    {8, {2, 2, 2, 1, 1}},    {16, {2, 2, 2, 2, 1}},   {32, {2, 2, 2, 2, 2}},
    {64, {2, 2, 4, 2, 2}},   {128, {2, 2, 4, 4, 2}},  {256, {4, 2, 4, 4, 2}},
    {512, {4, 4, 4, 4, 2}},  {1024, {4, 4, 4, 8, 2}}, {2048, {4, 4, 8, 8, 2}},
    {4096, {8, 4, 8, 8, 2}},
};
}  // namespace

bool has_bgq_partition(int nodes) {
  for (const auto& e : kPartitions) {
    if (e.nodes == nodes) return true;
  }
  return false;
}

Coord5 bgq_partition_dims(int nodes) {
  for (const auto& e : kPartitions) {
    if (e.nodes == nodes) return e.dims;
  }
  PGASQ_CHECK(false, << "no BG/Q partition shape for " << nodes
                     << " nodes; use balanced_dims()");
  return {};
}

Coord5 balanced_dims(int nodes) {
  PGASQ_CHECK(nodes >= 1);
  Coord5 dims{1, 1, 1, 1, 1};
  // Greedy: peel prime factors largest-first onto the currently
  // smallest dimension, keeping the shape as cubic as possible.
  int n = nodes;
  std::vector<int> factors;
  for (int f = 2; f * f <= n; ++f) {
    while (n % f == 0) {
      factors.push_back(f);
      n /= f;
    }
  }
  if (n > 1) factors.push_back(n);
  std::sort(factors.rbegin(), factors.rend());
  for (int f : factors) {
    auto smallest = std::min_element(dims.begin(), dims.end());
    *smallest *= f;
  }
  std::sort(dims.rbegin(), dims.rend());
  return dims;
}

RankMapping::RankMapping(const Torus5D& torus, int ranks_per_node)
    : torus_(torus), ranks_per_node_(ranks_per_node) {
  PGASQ_CHECK(ranks_per_node_ >= 1 && ranks_per_node_ <= 64,
              << "ranks per node " << ranks_per_node_
              << " (BG/Q has 16 compute cores x 4 SMT threads)");
  num_ranks_ = torus_.num_nodes() * ranks_per_node_;
}

int RankMapping::node_of_rank(int rank) const {
  PGASQ_CHECK(rank >= 0 && rank < num_ranks_, << "rank " << rank);
  return rank / ranks_per_node_;  // T digit varies fastest in ABCDET
}

int RankMapping::slot_of_rank(int rank) const {
  PGASQ_CHECK(rank >= 0 && rank < num_ranks_, << "rank " << rank);
  return rank % ranks_per_node_;
}

int RankMapping::rank_of(int node, int slot) const {
  PGASQ_CHECK(node >= 0 && node < torus_.num_nodes());
  PGASQ_CHECK(slot >= 0 && slot < ranks_per_node_);
  return node * ranks_per_node_ + slot;
}

}  // namespace pgasq::topo
