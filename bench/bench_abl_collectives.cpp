// Ablation: collective algorithm selection (src/coll/) across message
// size and machine size. Sweeps the software schedules (binomial /
// recursive-doubling / torus-dimension ring) against the BG/Q
// collective-logic hardware model for barrier, broadcast, and
// allreduce; the crossover structure is what the selection table in
// coll/selection.cpp encodes. At >= 512 ranks and large payloads the
// bucket ring (2x data volume, nearest-neighbour hops) and the hw
// model both beat recursive doubling (log2(p) full-size exchanges).
#include <vector>

#include "coll/coll.hpp"
#include "common.hpp"

using namespace pgasq;

namespace {

constexpr int kIters = 4;

armci::WorldConfig coll_config(const Config& cli, int ranks, const char* op,
                               const std::string& algo) {
  armci::WorldConfig cfg = bench::make_world_config(cli, ranks,
                                                    /*ranks_per_node=*/1);
  cfg.machine.num_ranks = ranks;
  cfg.armci.coll.emplace_back(std::string("algo.") + op, algo);
  return cfg;
}

double barrier_us(const Config& cli, int ranks, const std::string& algo) {
  armci::World world(coll_config(cli, ranks, "barrier", algo));
  Time t0 = 0, t1 = 0;
  world.spmd([&](armci::Comm& comm) {
    auto& engine = coll::CollEngine::of(comm);
    engine.barrier();  // warm-up: arena allocation happens here
    if (comm.rank() == 0) t0 = comm.now();
    for (int i = 0; i < kIters; ++i) engine.barrier();
    if (comm.rank() == 0) t1 = comm.now();
  });
  return to_us(t1 - t0) / kIters;
}

double bcast_us(const Config& cli, int ranks, std::size_t bytes,
                const std::string& algo) {
  armci::World world(coll_config(cli, ranks, "broadcast", algo));
  Time t0 = 0, t1 = 0;
  world.spmd([&](armci::Comm& comm) {
    auto& engine = coll::CollEngine::of(comm);
    std::vector<std::byte> buf(bytes, std::byte{1});
    engine.broadcast(buf.data(), bytes, 0);  // warm-up
    engine.barrier();
    if (comm.rank() == 0) t0 = comm.now();
    for (int i = 0; i < kIters; ++i) engine.broadcast(buf.data(), bytes, 0);
    engine.barrier();
    if (comm.rank() == 0) t1 = comm.now();
  });
  return to_us(t1 - t0) / kIters;
}

double allreduce_us(const Config& cli, int ranks, std::size_t bytes,
                    const std::string& algo) {
  armci::World world(coll_config(cli, ranks, "allreduce", algo));
  Time t0 = 0, t1 = 0;
  world.spmd([&](armci::Comm& comm) {
    auto& engine = coll::CollEngine::of(comm);
    std::vector<double> x(bytes / sizeof(double),
                          1.0 + static_cast<double>(comm.rank()));
    engine.allreduce_sum(x.data(), x.size());  // warm-up
    engine.barrier();
    if (comm.rank() == 0) t0 = comm.now();
    for (int i = 0; i < kIters; ++i) engine.allreduce_sum(x.data(), x.size());
    engine.barrier();
    if (comm.rank() == 0) t1 = comm.now();
  });
  return to_us(t1 - t0) / kIters;
}

}  // namespace

int main(int argc, char** argv) {
  const Config cli = Config::from_args(argc, argv);
  bench::print_banner(
      "bench_abl_collectives: algorithm x size x machine-size sweep",
      "selection-table crossovers for src/coll/ (S II-A collective logic)");
  const std::vector<int> rank_counts = {16, 64, 512};

  std::printf("\nbarrier (us per call):\n");
  Table barrier({"ranks", "dissem", "tree", "ring", "hw"});
  for (int p : rank_counts) {
    barrier.row()
        .add(p)
        .add(barrier_us(cli, p, "recdbl"), 2)
        .add(barrier_us(cli, p, "binomial"), 2)
        .add(barrier_us(cli, p, "torus-ring"), 2)
        .add(barrier_us(cli, p, "hw"), 2);
  }
  barrier.print();

  std::printf("\nbroadcast (us per call):\n");
  Table bcast({"ranks", "bytes", "binomial", "torus-ring", "hw"});
  for (int p : rank_counts) {
    for (std::size_t bytes : {2048ul, 131072ul}) {
      bcast.row()
          .add(p)
          .add(format_bytes(bytes))
          .add(bcast_us(cli, p, bytes, "binomial"), 2)
          .add(bcast_us(cli, p, bytes, "torus-ring"), 2)
          .add(bcast_us(cli, p, bytes, "hw"), 2);
    }
  }
  bcast.print();

  std::printf("\nallreduce (us per call):\n");
  Table allred({"ranks", "bytes", "recdbl", "torus-ring", "hw", "best"});
  for (int p : rank_counts) {
    for (std::size_t bytes : {2048ul, 16384ul, 131072ul}) {
      const double rd = allreduce_us(cli, p, bytes, "recdbl");
      const double ring = allreduce_us(cli, p, bytes, "torus-ring");
      const double hw = allreduce_us(cli, p, bytes, "hw");
      const char* best = rd <= ring && rd <= hw ? "recdbl"
                         : ring <= hw           ? "torus-ring"
                                                : "hw";
      allred.row()
          .add(p)
          .add(format_bytes(bytes))
          .add(rd, 2)
          .add(ring, 2)
          .add(hw, 2)
          .add(best);
    }
  }
  allred.print();
  std::printf("(recursive doubling pays log2(p) full-size exchanges; the\n"
              " torus bucket ring moves ~2x the payload over nearest-\n"
              " neighbour links; hw models the collective-logic tree at\n"
              " 2 GB/s — crossovers drive coll/selection.cpp defaults)\n");
  return 0;
}
