// Ablation: overload control and graceful degradation (src/flow).
//
// An open-loop KVS client (seeded Poisson arrivals, kvs.arrival_rate)
// offers load independent of completions — the regime where a service
// either degrades gracefully or collapses. Three experiments:
//
//  1. Latency vs offered load: calibrate the closed-loop saturation
//     rate, then sweep 0.2x..3x with the flow controls off and on
//     (credits + deadlines + AIMD admission + retry budgets). Off, the
//     backlog grows without bound past 1x and goodput (ops finished
//     within the SLO of their *arrival*) collapses; on, shed load
//     keeps the goodput curve flat at the plateau.
//  2. Hedged gets: on a 3-node ring with rotating transient link
//     brownouts (outbound capacity collapses 50x for 40us bursts),
//     kvs.hedge_us arms a backup read of the buddy's checkpoint copy
//     after a tail-latency delay; the first reply wins (a same-home
//     re-read could never win — pairwise in-order delivery queues it
//     behind the stuck reply it is dodging). Hedging cuts get p99;
//     p90 and p999 honestly pay for it — the rescued clients keep
//     issuing reads into the browned NIC (no cancellation), so the
//     extra load deepens the rare worst case. Transient badness is
//     the only regime where hedging can win at all here: under a
//     SUSTAINED slow node every primary still books the slow NIC and
//     rescues just pile the backlog higher.
//  3. Metastability soak: at 1.5x with a mid-run service stall, the
//     post-stall backlog seeds a retry storm. Uncontrolled, goodput
//     never recovers (every op waits behind the standing queue);
//     controlled, admission sheds the burst and goodput returns to the
//     pre-stall plateau.
//
// Every section exports kvs.* metrics labelled {arm=, load=} plus
// overload.* summary gauges into the pgasq.report JSON
// (--report.json_path) — tools/check.sh's overload_gate asserts the
// plateau and the recovery there.
//
// Knobs: ranks (8), requests (192), keys, deadline_us (0 = auto from
// the calibrated closed-loop p99), credits, factors, hedge (0/1),
// soak (0/1), plus every kvs.* / flow.* / fault.* knob.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common.hpp"
#include "fault/fault.hpp"
#include "topo/torus.hpp"
#include "kvs/kvs.hpp"
#include "util/table.hpp"

using namespace pgasq;

namespace {

std::vector<double> parse_list(const std::string& csv) {
  std::vector<double> out;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    const std::size_t comma = csv.find(',', pos);
    out.push_back(std::strtod(csv.substr(pos, comma - pos).c_str(), nullptr));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

double q_us(const util::Histogram& h, double q) {
  return static_cast<double>(h.quantile(q)) / 1e3;
}

/// Good completions per second inside [begin, end) of virtual time.
double window_goodput(const std::vector<Time>& good_times, Time begin,
                      Time end) {
  if (end <= begin) return 0.0;
  const auto lo = std::lower_bound(good_times.begin(), good_times.end(), begin);
  const auto hi = std::lower_bound(good_times.begin(), good_times.end(), end);
  return static_cast<double>(hi - lo) / to_s(end - begin);
}

struct ArmSpec {
  const char* name;
  bool flow_on;
};

}  // namespace

int main(int argc, char** argv) {
  const Config cli = Config::from_args(argc, argv);
  bench::print_banner(
      "bench_abl_overload: open-loop KVS under overload — backpressure, "
      "deadlines, shedding",
      "robustness ablation (beyond the paper's closed-loop kernels)");

  kvs::KvConfig base = kvs::KvConfig::from_config(cli);
  base.keys = cli.get_int("keys", 512);
  base.requests = cli.get_int("requests", 192);
  base.get_ratio = cli.has("kvs.get_ratio") ? base.get_ratio : 0.9;
  base.zipf_theta = cli.has("kvs.zipf_theta") ? base.zipf_theta : 0.6;
  base.verify = false;  // audits re-read every key; off the overload path

  const int ranks = static_cast<int>(cli.get_int("ranks", 8));
  const int credits = static_cast<int>(cli.get_int("credits", 8));
  const std::vector<double> factors =
      parse_list(cli.get_string("factors", "0.2,0.5,1.0,1.5,2.0,3.0"));

  obs::Registry acc;
  std::unique_ptr<armci::World> last_world;

  // --- Calibration: closed-loop saturation rate -------------------------
  double sat_rate = 0.0;  // per-rank ops/s at closed-loop saturation
  double p50_get_us = 0.0, p99_get_us = 0.0;
  {
    kvs::KvConfig kc = base;
    kc.think_us = 0.0;
    armci::WorldConfig cfg = bench::make_world_config(cli, ranks);
    cfg.machine.flow = flow::FlowConfig{};  // calibration is always clean
    armci::World world(cfg);
    const kvs::KvResult r = kvs::run_workload(world, kc);
    sat_rate = r.mops * 1e6 / ranks;
    p50_get_us = q_us(r.total.get_lat, 0.5);
    p99_get_us = q_us(r.total.get_lat, 0.99);
  }
  double deadline_us = cli.get_double("deadline_us", 0.0);
  if (deadline_us <= 0.0) {
    deadline_us = std::max(50.0, 6.0 * p99_get_us);
  }
  std::printf(
      "calibration: %d ranks, sat=%.0f ops/s/rank, get p50=%.1fus "
      "p99=%.1fus, deadline/SLO=%.0fus\n\n",
      ranks, sat_rate, p50_get_us, p99_get_us, deadline_us);
  acc.set_gauge("overload.sat_rate_per_rank", sat_rate);
  acc.set_gauge("overload.deadline_us", deadline_us);

  // The controlled arm: every defense at once (that is the product
  // configuration; test_flow isolates them).
  flow::FlowConfig flow_on;
  flow_on.configured = true;
  flow_on.credits = credits;
  flow_on.deadline_us = deadline_us;
  flow_on.admit = true;
  flow_on.low_prio_frac = cli.get_double("low_prio_frac", 0.2);
  flow_on.retry_budget = static_cast<int>(cli.get_int("retry_budget", 12));
  flow_on.seed = static_cast<std::uint64_t>(cli.get_int("flow_seed", 7));

  auto run_arm = [&](const kvs::KvConfig& kc, bool on)
      -> std::pair<kvs::KvResult, std::unique_ptr<armci::World>> {
    armci::WorldConfig cfg = bench::make_world_config(cli, ranks);
    cfg.machine.flow = on ? flow_on : flow::FlowConfig{};
    auto world = std::make_unique<armci::World>(cfg);
    kvs::KvResult r = kvs::run_workload(*world, kc);
    return {std::move(r), std::move(world)};
  };

  // --- Sweep: goodput vs offered load, off vs on ------------------------
  const ArmSpec arms[] = {{"off", false}, {"on", true}};
  Table table({"load", "arm", "offered", "acked", "good", "goodput_Mops",
               "lat_p50us", "lat_p99us", "shed", "expired", "dlerr"});
  // With obs.timeline on, the top-factor uncontrolled world is kept
  // alive so its queue-depth runaway can be printed next to the
  // controlled arm's credit-window plateau.
  std::unique_ptr<armci::World> off_world;
  for (const double f : factors) {
    for (const ArmSpec& arm : arms) {
      kvs::KvConfig kc = base;
      kc.arrival_rate = f * sat_rate;
      kc.slo_us = deadline_us;  // goodput SLO measured in BOTH arms
      auto [r, world] = run_arm(kc, arm.flow_on);
      table.row()
          .add(f, 1)
          .add(arm.name)
          .add(static_cast<std::int64_t>(r.offered_ops))
          .add(static_cast<std::int64_t>(r.acked_ops))
          .add(static_cast<std::int64_t>(r.good_ops))
          .add(r.goodput_mops, 4)
          .add(q_us(r.total.get_lat, 0.5), 1)
          .add(q_us(r.total.get_lat, 0.99), 1)
          .add(static_cast<std::int64_t>(r.total.shed_ops))
          .add(static_cast<std::int64_t>(r.total.expired_ops +
                                         r.total.deadline_errors))
          .add(static_cast<std::int64_t>(r.total.deadline_errors));
      char load[16];
      std::snprintf(load, sizeof load, "%.1f", f);
      kvs::export_metrics(acc, r, {{"arm", arm.name}, {"load", load}});
      if (!arm.flow_on && f == factors.back() &&
          world->machine().timeline() != nullptr) {
        off_world = std::move(world);
      } else {
        last_world = std::move(world);
      }
    }
  }
  table.print();

  // Tentpole proof (obs.timeline): side by side at the top load
  // factor, the uncontrolled arm's pending-op depth runs away while
  // the controlled arm's credit-window occupancy plateaus at the
  // configured window.
  if (off_world != nullptr && last_world->machine().timeline() != nullptr) {
    const int top = last_world->machine().config().obs.timeline_top;
    const obs::Timeline& off_tl = *off_world->machine().timeline();
    const obs::Timeline& on_tl = *last_world->machine().timeline();
    std::printf("\ntimeline @ %.1fx load, arm=off (uncontrolled):\n",
                factors.back());
    std::fputs(off_tl.render(top).c_str(), stdout);
    std::printf("timeline @ %.1fx load, arm=on (controlled, %d credits):\n",
                factors.back(), credits);
    std::fputs(on_tl.render(top).c_str(), stdout);
    std::printf(
        "queue runaway vs plateau: off kvs.client_backlog peak=%.0f, "
        "on kvs.client_backlog peak=%.0f, on flow.window_occupancy "
        "peak=%.0f (window=%d)\n",
        off_tl.gauge_peak("kvs.client_backlog"),
        on_tl.gauge_peak("kvs.client_backlog"),
        on_tl.gauge_peak("flow.window_occupancy"), credits);
    off_world.reset();
  }

  // --- Hedged gets past transient link brownouts ------------------------
  if (cli.get_bool("hedge", true)) {
    // Transient outbound brownouts rotate around the machine: for a
    // short window one node's OUTGOING links drop to a few percent of
    // nominal bandwidth (a flapping optical module), so replies it
    // serves crawl while requests INTO it still land cleanly. That is
    // the regime hedging is for — short glitches, not a permanently
    // saturated replica: every hedge's primary still occupies the slow
    // NIC, so under a sustained shortfall rescues only pile the
    // backlog higher (the straggler pool then throttles via
    // hedge_skips). A same-home re-read could never dodge the glitch —
    // pairwise in-order delivery queues it behind the stuck reply — so
    // the hedge races the home's checkpoint copy on its BUDDY node.
    // The copies exist because a never-firing far-future node_fail
    // brings up the health monitor, and kvs.prefill commits one
    // checkpoint of the fully populated table before the timed loop
    // (no mid-run checkpoints: a multi-KB shard ship caught in a
    // brownout would monopolize the sender NIC for milliseconds).
    const double cap = cli.get_double("brown_capacity", 0.02);
    // 40us bursts every 200us: the post-burst NIC drain (in-burst
    // claims keep their inflated serialization) must finish inside one
    // period, or the next burst's victims hedge into a buddy that is
    // still draining and the rescue leg is slow too.
    const double burst_us = cli.get_double("brown_us", 40.0);
    const double period_us = cli.get_double("brown_period_us", 200.0);
    // All-pairs-adjacent ring: on a multi-hop partition a brownout
    // also inflates replies of HEALTHY homes routed through the
    // browned node (cut-through charges the whole path's worst link
    // on the sender's NIC), a tail no client-side hedge can touch.
    // One hop between every pair isolates the endpoint effect the
    // hedge is designed for.
    const int hranks = static_cast<int>(cli.get_int("hedge_ranks", 3));
    std::printf(
        "\nhedged gets: closed loop, %d-node ring, rotating %.0fus "
        "outbound brownouts (%.0f%% capacity) every %.0fus, buddy "
        "checkpoint copies\n",
        hranks, burst_us, 100.0 * cap, period_us);
    Table ht({"hedge_us", "get_p90us", "get_p99us", "get_p999us", "hedged",
              "wins", "stale", "skips"});
    // Delay ABOVE the calibrated healthy p99 (only genuinely stuck
    // reads pay for a backup request — the classic hedging load
    // caveat) and far BELOW a browned-out reply's 50x serialization.
    for (const double hedge : {0.0, std::max(2.0 * p99_get_us, 12.0)}) {
      // Closed loop: latency is pure service time, so the comparison
      // isolates the degraded-path tail the hedge dodges (checkpoint
      // barrier skew would otherwise dominate an open-loop p99).
      kvs::KvConfig kc = base;
      kc.think_us = 0.0;
      kc.hedge_us = hedge;
      // Prefill + one pre-loop checkpoint: a cold miss reads an empty
      // slot, which a buddy copy can never validate — read-mostly
      // hedging only makes sense against a populated, checkpointed
      // table. KB-scale values make a browned-out reply's inflated
      // serialization dwarf the healthy path.
      kc.prefill = true;
      // Read-only loop: a browned-out client's own 2KB put payloads
      // would book 50x serialization on its OWN NIC and delay its
      // subsequent get REQUESTS — a sender-side tail no read hedge
      // can touch. Hedging is a read-side defense; measure it as one.
      if (!cli.has("kvs.get_ratio")) kc.get_ratio = 1.0;
      if (!cli.has("kvs.keys")) kc.keys = 512;
      if (!cli.has("kvs.value_bytes")) kc.value_bytes = 2048;
      if (!cli.has("kvs.slots_per_rank")) kc.slots_per_rank = 256;
      if (!cli.has("kvs.requests")) kc.requests = 4096;
      if (!cli.has("kvs.checkpoint_every")) kc.checkpoint_every = kc.requests;
      armci::WorldConfig cfg = bench::make_world_config(cli, hranks);
      cfg.machine.flow = flow::FlowConfig{};
      if (cfg.machine.fault.link_faults.empty()) {
        const int nodes = hranks / cfg.machine.ranks_per_node;
        const topo::Coord5 dims =
            cfg.machine.dims.has_value()    ? *cfg.machine.dims
            : topo::has_bgq_partition(nodes) ? topo::bgq_partition_dims(nodes)
                                             : topo::balanced_dims(nodes);
        // Brownouts start only after a settle window so prefill and
        // the pre-loop checkpoint ship full-size shards over healthy
        // links, then rotate node by node past the end of the run.
        const double settle_us = cli.get_double("brown_settle_us", 4000.0);
        const int bursts = static_cast<int>(cli.get_int("brown_bursts", 512));
        for (int k = 0; k < bursts; ++k) {
          // Rotate BACKWARD (n, n-1, ...): a browned node's NIC keeps
          // draining inflated claims after its window closes, and
          // forward rotation would brown its buddy — the hedge's
          // escape hatch — during exactly that drain.
          const int node = (nodes - (k % std::max(1, nodes))) % std::max(1, nodes);
          const Time b = from_us(settle_us + k * period_us);
          const Time e = b + from_us(burst_us);
          for (int dim = 0; dim < 5; ++dim) {
            if (dims[static_cast<std::size_t>(dim)] <= 1) continue;
            // dir +1/-1: only the node's outgoing halves brown out, so
            // traffic INTO it (and everyone else's NICs) stays clean.
            cfg.machine.fault.link_faults.push_back(
                fault::LinkFaultSpec{node, dim, +1, cap, b, e});
            cfg.machine.fault.link_faults.push_back(
                fault::LinkFaultSpec{node, dim, -1, cap, b, e});
          }
        }
      }
      if (cfg.machine.fault.node_fails.empty()) {
        cfg.machine.fault.node_fails.push_back(
            fault::NodeFailSpec{0, from_us(1e9)});
        // Detection is not under test here: slow heartbeats keep the
        // monitor's background traffic negligible and a false-positive
        // death of a browned-out node out of reach.
        cfg.machine.ft.heartbeat_period = from_us(500.0);
        cfg.machine.ft.heartbeat_timeout = from_us(50000.0);
      }
      auto world = std::make_unique<armci::World>(cfg);
      const kvs::KvResult r = kvs::run_workload(*world, kc);
      if (cli.get_bool("hedge_debug", false)) {
        for (int c = 0; c < hranks; ++c) {
          const kvs::KvStats& s = r.per_rank[static_cast<std::size_t>(c)];
          std::printf(
              "  rank %d: gets p50=%.1f p90=%.1f p99=%.1f max=%.1f "
              "hedged=%llu wins=%llu skips=%llu\n",
              c, q_us(s.get_lat, 0.5), q_us(s.get_lat, 0.9),
              q_us(s.get_lat, 0.99), q_us(s.get_lat, 1.0),
              static_cast<unsigned long long>(s.hedged_gets),
              static_cast<unsigned long long>(s.hedge_wins),
              static_cast<unsigned long long>(s.hedge_skips));
        }
      }
      ht.row()
          .add(hedge, 1)
          .add(q_us(r.total.get_lat, 0.9), 1)
          .add(q_us(r.total.get_lat, 0.99), 1)
          .add(q_us(r.total.get_lat, 0.999), 1)
          .add(static_cast<std::int64_t>(r.total.hedged_gets))
          .add(static_cast<std::int64_t>(r.total.hedge_wins))
          .add(static_cast<std::int64_t>(r.total.hedge_stale))
          .add(static_cast<std::int64_t>(r.total.hedge_skips));
      kvs::export_metrics(
          acc, r, {{"arm", hedge > 0.0 ? "hedged" : "unhedged"}});
      // Tentpole proof (obs.critpath): on the unhedged arm the
      // bottleneck tables pin the brownout p99 inflation on the
      // faulted links' wire/inject-wait segments.
      if (hedge <= 0.0) {
        if (const obs::CritPath* cp = world->machine().critpath()) {
          std::printf("\nbrownout critical path, arm=unhedged:\n");
          std::fputs(cp->render().c_str(), stdout);
          std::printf(
              "degraded-link share of wire+inject-wait time: %.0f%% "
              "(%.0fus of %.0fus)\n",
              100.0 * cp->degraded_share(), to_us(cp->degraded_wire_wait()),
              to_us(cp->wire_wait_total()));
        }
      }
      last_world = std::move(world);
    }
    ht.print();
  }

  // --- Metastability soak ------------------------------------------------
  // 1.5x load; the clients freeze for a stall window while arrivals
  // keep accruing. Goodput is compared over equal-length windows
  // before the stall and after a settle period.
  if (cli.get_bool("soak", true)) {
    const double soak_factor = cli.get_double("soak_factor", 1.5);
    kvs::KvConfig kc = base;
    kc.requests = cli.get_int("soak_requests", 3 * base.requests);
    kc.arrival_rate = soak_factor * sat_rate;
    kc.slo_us = deadline_us;
    const double span_us =
        static_cast<double>(kc.requests) / kc.arrival_rate * 1e6;
    kc.stall_at_us = 0.35 * span_us;
    kc.stall_us = cli.get_double("stall_us", 0.12 * span_us);
    std::printf(
        "\nmetastability soak: %.1fx load, stall [%.0f, %.0f]us of ~%.0fus "
        "arrival span\n",
        soak_factor, kc.stall_at_us, kc.stall_at_us + kc.stall_us, span_us);
    Table mt({"arm", "pre_goodput/s", "post_goodput/s", "recovered%", "shed",
              "expired"});
    for (const ArmSpec& arm : arms) {
      auto [r, world] = run_arm(kc, arm.flow_on);
      const Time stall_begin = r.traffic_begin + from_us(kc.stall_at_us);
      const Time stall_end = stall_begin + from_us(kc.stall_us);
      const Time settle = from_us(0.25 * kc.stall_us);
      const Time pre_len = stall_begin - r.traffic_begin;
      const double pre =
          window_goodput(r.good_times, r.traffic_begin, stall_begin);
      const double post = window_goodput(r.good_times, stall_end + settle,
                                         stall_end + settle + pre_len);
      mt.row()
          .add(arm.name)
          .add(pre, 0)
          .add(post, 0)
          .add(pre > 0.0 ? 100.0 * post / pre : 0.0, 1)
          .add(static_cast<std::int64_t>(r.total.shed_ops))
          .add(static_cast<std::int64_t>(r.total.expired_ops +
                                         r.total.deadline_errors));
      acc.set_gauge("overload.soak_pre_goodput", pre, {{"arm", arm.name}});
      acc.set_gauge("overload.soak_post_goodput", post, {{"arm", arm.name}});
      kvs::export_metrics(acc, r, {{"arm", arm.name}, {"load", "soak"}});
      last_world = std::move(world);
    }
    mt.print();
  }

  // One report carries the whole sweep; the last world ran with flow
  // on, so the flow.* controller metrics land in the same document.
  last_world->app_metrics().merge_from(acc);
  bench::emit_observability(cli, *last_world);
  return 0;
}
