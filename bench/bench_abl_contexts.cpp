// Ablation (S III-D): communication contexts rho = 1 vs rho = 2 under
// the asynchronous-thread design. With one shared context the main
// thread's blocking RMA and the async thread's request servicing
// contend on the context lock: the async thread stalls behind the
// main thread's progress passes and vice versa. With rho = 2 each
// thread advances its own context independently at a space cost of
// one extra epsilon.
#include "common.hpp"
#include "ga/global_array.hpp"

using namespace pgasq;

namespace {

struct Outcome {
  double fadd_avg_us;        // clients' counter latency
  double get_avg_us;         // home main thread's own RMA latency
  double lock_wait_ms;       // time fibers waited on the context lock
  std::uint64_t contended;   // contended acquisitions
};

Outcome run(const Config& cli, int contexts) {
  armci::WorldConfig cfg = bench::make_world_config(cli, /*ranks=*/64);
  cfg.armci.progress = armci::ProgressMode::kAsyncThread;
  cfg.armci.contexts_per_rank = contexts;
  const int ops = static_cast<int>(cli.get_int("ops", 64));
  armci::World world(cfg);
  Outcome out{};
  double fadd_sum = 0.0;
  std::uint64_t fadds = 0;
  double get_sum = 0.0;
  std::uint64_t gets = 0;
  int finished = 0;
  world.spmd([&](armci::Comm& comm) {
    ga::SharedCounter counter(comm);
    auto& mem = comm.malloc_collective(4096);
    auto* buf = static_cast<std::byte*>(comm.malloc_local(4096));
    comm.barrier();
    const int clients = comm.nprocs() - 1;
    if (comm.rank() == 0) {
      // Main thread busy with its own blocking one-sided traffic while
      // the async thread services the fetch-and-add storm.
      int target = 1;
      while (finished < clients) {
        const Time t0 = comm.now();
        comm.get(mem.at(target), buf, 512);
        get_sum += to_us(comm.now() - t0);
        ++gets;
        target = 1 + (target % clients);
      }
      out.lock_wait_ms = to_ms(comm.main_context().lock().total_wait_time());
      out.contended = comm.main_context().lock().contended_acquires();
    } else {
      for (int i = 0; i < ops; ++i) {
        const Time t0 = comm.now();
        counter.next();
        fadd_sum += to_us(comm.now() - t0);
        ++fadds;
      }
      ++finished;
    }
    comm.barrier();
  });
  out.fadd_avg_us = fadds ? fadd_sum / static_cast<double>(fadds) : 0.0;
  out.get_avg_us = gets ? get_sum / static_cast<double>(gets) : 0.0;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const Config cli = Config::from_args(argc, argv);
  bench::print_banner("bench_abl_contexts: shared (rho=1) vs split (rho=2) contexts",
                      "S III-D — context-lock contention between main & async threads");
  Table table({"contexts(rho)", "fadd_avg_us", "home_get_us", "lock_wait_ms",
               "contended_acquires"});
  for (int rho : {1, 2}) {
    const auto o = run(cli, rho);
    table.row().add(rho).add(o.fadd_avg_us, 2).add(o.get_avg_us, 2)
        .add(o.lock_wait_ms, 3).add(o.contended);
  }
  table.print();
  std::printf("(63 ranks hammer a counter at rank 0 while rank 0's main thread\n"
              " streams blocking gets; rho=1 funnels both through one lock)\n");
  return 0;
}
