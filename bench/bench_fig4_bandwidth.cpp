// Figure 4: put/get bandwidth between two processes on adjacent
// nodes, 16 B .. 1 MB, windowed non-blocking transfers. Paper: peak
// 1775 MB/s (~99% of the 1.8 GB/s attainable link rate); the get
// round-trip overhead is visible below ~8 KB.
#include <vector>

#include "common.hpp"

using namespace pgasq;

int main(int argc, char** argv) {
  const Config cli = Config::from_args(argc, argv);
  bench::print_banner("bench_fig4_bandwidth: contiguous put/get bandwidth (2 procs)",
                      "Fig 4 — peak 1775 MB/s, get overhead visible <= 8KB");
  armci::WorldConfig cfg = bench::make_world_config(cli, /*ranks=*/2);
  const int window = static_cast<int>(cli.get_int("window", 32));

  Table table({"bytes", "put_MB/s", "get_MB/s"});
  armci::World world(cfg);
  world.spmd([&](armci::Comm& comm) {
    auto& mem = comm.malloc_collective(1 << 20);
    auto* buf = static_cast<std::byte*>(comm.malloc_local(1 << 20));
    if (comm.rank() == 0) {
      comm.get(mem.at(1), buf, 16);
      comm.fence(1);
      for (std::size_t m : bench::size_sweep()) {
        Time t0 = comm.now();
        {
          armci::Handle h;
          for (int i = 0; i < window; ++i) comm.nb_put(buf, mem.at(1), m, h);
          comm.wait(h);
        }
        const double put_bw =
            static_cast<double>(window) * static_cast<double>(m) /
            to_s(comm.now() - t0) / 1e6;
        comm.fence(1);
        t0 = comm.now();
        {
          armci::Handle h;
          for (int i = 0; i < window; ++i) comm.nb_get(mem.at(1), buf, m, h);
          comm.wait(h);
        }
        const double get_bw =
            static_cast<double>(window) * static_cast<double>(m) /
            to_s(comm.now() - t0) / 1e6;
        table.row().add(format_bytes(m)).add(put_bw, 1).add(get_bw, 1);
      }
    }
    comm.barrier();
  });
  table.print();
  bench::emit_observability(cli, world);
  return 0;
}
