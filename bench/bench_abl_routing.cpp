// Ablation: deterministic dimension-order vs (emulated) dynamic
// routing under hot-spot traffic. BG/Q hardware supports dynamic
// routing but the paper-era software stack exposed deterministic only
// (S II-A footnote 1) — this experiment quantifies what that left on
// the table for incast patterns, at the network level (dynamic routing
// forfeits PAMI's pairwise ordering, so the full ARMCI stack stays on
// deterministic routes).
#include "common.hpp"
#include "noc/network.hpp"
#include "topo/torus.hpp"

using namespace pgasq;

namespace {

/// All-to-one incast at the raw network level: every node fires one
/// message at node 0 at t=0; report when the last one lands.
double incast_us(const std::string& model, bool dynamic, int nodes,
                 std::uint64_t bytes) {
  topo::Torus5D torus(topo::has_bgq_partition(nodes)
                          ? topo::bgq_partition_dims(nodes)
                          : topo::balanced_dims(nodes));
  noc::BgqParameters params;
  params.dynamic_routing = dynamic;
  auto net = noc::make_network_model(model, torus, params);
  Time last = 0;
  for (int n = 1; n < torus.num_nodes(); ++n) {
    const auto t = net->transfer(n, 0, bytes, 0);
    last = std::max(last, t.arrive);
  }
  return to_us(last);
}

}  // namespace

int main(int argc, char** argv) {
  const Config cli = Config::from_args(argc, argv);
  bench::print_banner("bench_abl_routing: deterministic vs dynamic routing (incast)",
                      "S II-A footnote 1 — what deterministic-only software costs");
  const std::uint64_t bytes = static_cast<std::uint64_t>(cli.get_int("bytes", 65536));
  Table table({"nodes", "loggp_us", "det_contention_us", "dyn_contention_us",
               "dyn_speedup"});
  for (int nodes : {32, 128, 512}) {
    const double ideal = incast_us("loggp", false, nodes, bytes);
    const double det = incast_us("contention", false, nodes, bytes);
    const double dyn = incast_us("contention", true, nodes, bytes);
    table.row().add(nodes).add(ideal, 1).add(det, 1).add(dyn, 1).add(det / dyn, 2);
  }
  table.print();
  std::printf("(64KB from every node to node 0 at t=0; dynamic routing spreads\n"
              " the convergecast over more inbound links)\n");
  return 0;
}
