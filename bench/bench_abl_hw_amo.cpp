// Ablation (S IV-B3 discussion): what if BG/Q's NIC had hardware
// fetch-and-add (Cray Gemini / InfiniBand style)? The paper observes
// AT latency still grows linearly with p because every AMO funnels
// through one core's progress engine; a NIC AMO unit keeps latency
// nearly flat. This bench flips BgqParameters::hardware_amo.
#include "apps/counter_kernel.hpp"
#include "common.hpp"

using namespace pgasq;

namespace {

double run(const Config& cli, int p, bool hardware) {
  armci::WorldConfig cfg =
      bench::make_world_config(cli, p, /*ranks_per_node=*/p >= 16 ? 16 : 1);
  cfg.machine.num_ranks = p;
  cfg.armci.progress = armci::ProgressMode::kAsyncThread;
  cfg.armci.contexts_per_rank = 2;
  cfg.machine.params.hardware_amo = hardware;
  armci::World world(cfg);
  apps::CounterKernelConfig kcfg;
  kcfg.ops_per_rank = static_cast<int>(cli.get_int("ops", 8));
  return apps::run_counter_kernel(world, kcfg).avg_latency_us;
}

}  // namespace

int main(int argc, char** argv) {
  const Config cli = Config::from_args(argc, argv);
  bench::print_banner("bench_abl_hw_amo: software-serviced vs NIC fetch-and-add",
                      "S IV-B3 — 'hardware assisted fetch-and-add can help'");
  Table table({"procs", "software_AT_us", "nic_amo_us"});
  const int max_ranks = static_cast<int>(cli.get_int("max_ranks", 4096));
  for (int p = 2; p <= max_ranks; p *= 4) {
    table.row().add(p).add(run(cli, p, false), 2).add(run(cli, p, true), 2);
  }
  table.print();
  std::printf("(software AMO latency grows ~linearly with p; the emulated NIC\n"
              " AMO stays near-flat — the paper's case for future hardware)\n");
  return 0;
}
