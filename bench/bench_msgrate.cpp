// Supplementary: small-message rate and network concurrency — the
// quantitative backing for S III-C2's claim that "modern networks
// provide high messaging rate and network concurrency, obviating a
// need for a pack/unpack protocol". Measures achieved puts/second for
// small messages as a function of how many are kept in flight.
#include "common.hpp"

using namespace pgasq;

int main(int argc, char** argv) {
  const Config cli = Config::from_args(argc, argv);
  bench::print_banner("bench_msgrate: small-message rate vs in-flight window",
                      "S III-C2 — messaging-rate argument for per-chunk RDMA");
  armci::WorldConfig cfg = bench::make_world_config(cli, /*ranks=*/2);
  const std::size_t bytes = static_cast<std::size_t>(cli.get_int("bytes", 64));
  const int total = static_cast<int>(cli.get_int("messages", 512));

  Table table({"window", "msgs/s(M)", "MB/s"});
  for (int window : {1, 2, 4, 8, 16, 32, 64}) {
    armci::World world(cfg);
    double rate = 0.0;
    world.spmd([&](armci::Comm& comm) {
      auto& mem = comm.malloc_collective(1 << 16);
      auto* buf = static_cast<std::byte*>(comm.malloc_local(1 << 16));
      if (comm.rank() == 0) {
        comm.put(buf, mem.at(1), bytes);
        comm.fence(1);
        const Time t0 = comm.now();
        int sent = 0;
        while (sent < total) {
          armci::Handle h;
          for (int i = 0; i < window && sent < total; ++i, ++sent) {
            comm.nb_put(buf, mem.at(1), bytes, h);
          }
          comm.wait(h);
        }
        rate = static_cast<double>(total) / to_s(comm.now() - t0);
      }
      comm.barrier();
    });
    table.row()
        .add(window)
        .add(rate / 1e6, 3)
        .add(rate * static_cast<double>(bytes) / 1e6, 1);
  }
  table.print();
  std::printf("(deeper windows amortize the per-message wait; the plateau is the\n"
              " o_send+o_completion software limit — BG/Q cores are slow, links fast)\n");
  return 0;
}
