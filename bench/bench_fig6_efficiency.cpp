// Figure 6: bandwidth efficiency — ratio of achieved put bandwidth to
// the 1.8 GB/s attainable peak. Paper: N_1/2 (half of peak) at ~2 KB;
// >= 90% beyond 16 KB.
#include "common.hpp"

using namespace pgasq;

int main(int argc, char** argv) {
  const Config cli = Config::from_args(argc, argv);
  bench::print_banner("bench_fig6_efficiency: bandwidth efficiency vs message size",
                      "Fig 6 — N_1/2 ~2KB, >=90% beyond 16KB");
  armci::WorldConfig cfg = bench::make_world_config(cli, /*ranks=*/2);
  const int window = static_cast<int>(cli.get_int("window", 32));
  const double peak = cfg.machine.params.peak_bandwidth_bytes_per_s;

  Table table({"bytes", "put_MB/s", "efficiency_%"});
  std::size_t n_half = 0;
  armci::World world(cfg);
  world.spmd([&](armci::Comm& comm) {
    auto& mem = comm.malloc_collective(1 << 20);
    auto* buf = static_cast<std::byte*>(comm.malloc_local(1 << 20));
    if (comm.rank() == 0) {
      comm.get(mem.at(1), buf, 16);
      comm.fence(1);
      for (std::size_t m : bench::size_sweep()) {
        const Time t0 = comm.now();
        armci::Handle h;
        for (int i = 0; i < window; ++i) comm.nb_put(buf, mem.at(1), m, h);
        comm.wait(h);
        comm.fence(1);
        const double bw = static_cast<double>(window) * static_cast<double>(m) /
                          to_s(comm.now() - t0);
        const double eff = 100.0 * bw / peak;
        if (n_half == 0 && eff >= 50.0) n_half = m;
        table.row().add(format_bytes(m)).add(bw / 1e6, 1).add(eff, 1);
      }
    }
    comm.barrier();
  });
  table.print();
  std::printf("N_1/2 (first size at >=50%% of 1.8 GB/s peak): %s\n",
              format_bytes(n_half).c_str());
  return 0;
}
