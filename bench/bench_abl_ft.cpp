// Ablation: fail-stop fault tolerance cost model for SCF — checkpoint
// interval x node-failure time. Three questions, one table:
//
//  1. Steady-state overhead: with node deaths armed but never fired,
//     how much virtual wall time do the double-buffered buddy
//     checkpoints add at each cadence? (rows with fail_at=none)
//  2. Recovery cost: when a node actually dies at 30/60/90% of the
//     fault-free run, what does the rollback + shrink + redistribution
//     round cost, and how far does the run slip overall?
//  3. Cadence trade-off: interval 0 (no checkpoints) pays nothing up
//     front but re-executes from iteration 0 on death; dense cadences
//     pay per-iteration but roll back almost nothing.
//
// Knobs: the usual bench ones plus ft.checkpoint_interval sweep
// override (intervals=0,1,2), fail fractions (fracs=0.3,0.6,0.9),
// iterations, and the ft.* detection knobs (ft.heartbeat_timeout_us
// etc.). Virtual wall times carry sub-percent run-to-run layout
// jitter, so overheads are reported to 0.1%.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "apps/scf.hpp"
#include "common.hpp"
#include "fault/fault.hpp"
#include "ft/liveness.hpp"

using namespace pgasq;

namespace {

std::vector<double> parse_list(const std::string& csv) {
  std::vector<double> out;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    const std::size_t comma = csv.find(',', pos);
    const std::string tok = csv.substr(pos, comma - pos);
    out.push_back(std::strtod(tok.c_str(), nullptr));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const Config cli = Config::from_args(argc, argv);
  bench::print_banner(
      "bench_abl_ft: SCF checkpoint cadence x node-failure time",
      "fail-stop recovery ablation — buddy-checkpoint overhead vs rollback");

  apps::ScfConfig scf;
  scf.nbf = static_cast<std::int64_t>(cli.get_int("nbf", 64));
  scf.block = static_cast<std::int64_t>(cli.get_int("block", 8));
  scf.iterations = static_cast<int>(cli.get_int("iterations", 4));
  scf.mean_task_compute = from_us(cli.get_double("task_us", 5000.0));

  const std::vector<double> intervals =
      parse_list(cli.get_string("intervals", "0,1,2"));
  const std::vector<double> fracs =
      parse_list(cli.get_string("fracs", "0.3,0.6,0.9"));
  const int dead_node = static_cast<int>(cli.get_int("dead_node", 3));

  // 8 nodes on a 2x2x2 torus, one rank each: a death leaves a
  // non-power-of-two 7-rank clique, so the shrunk software collective
  // schedules are on the measured path.
  auto base_cfg = [&] {
    armci::WorldConfig cfg = bench::make_world_config(cli, /*ranks=*/8);
    cfg.machine.dims = topo::Coord5{2, 2, 2, 1, 1};
    cfg.machine.ranks_per_node = 1;
    cfg.machine.num_ranks = 8;
    return cfg;
  };

  // Fault-free baseline, and the virtual time the SCF region starts at
  // (so failure fractions can be aimed into the run).
  Time scf_start = 0;
  Time wall_clean = 0;
  {
    armci::World world(base_cfg());
    const apps::ScfResult r = apps::run_scf(world, scf);
    wall_clean = r.wall_time;
    scf_start = world.machine().engine().now() - r.wall_time;
    std::printf("fault-free baseline: wall=%.3f ms (%d iterations, 8 ranks)\n\n",
                to_ms(wall_clean), scf.iterations);
  }

  Table table({"ckpt_interval", "fail_at", "wall_ms", "vs_clean_%",
               "recovery_ms", "rollbacks", "checkpoints", "ckpt_bytes"});
  for (const double iv : intervals) {
    apps::ScfConfig ft_scf = scf;
    ft_scf.ft_checkpoint_interval = static_cast<int>(iv);

    // Steady state: arm a death far past the end of the run. The
    // monitor, heartbeats and checkpoint traffic are all live; the
    // death never fires, so the delta vs the baseline is pure
    // protection overhead.
    {
      armci::WorldConfig cfg = base_cfg();
      cfg.machine.fault.node_fails.push_back(
          {dead_node, scf_start + 1000 * wall_clean});
      armci::World world(cfg);
      const apps::ScfResult r = apps::run_scf(world, ft_scf);
      const ft::FtStats& s = world.machine().monitor()->stats();
      table.row()
          .add(static_cast<int>(iv))
          .add("none")
          .add(to_ms(r.wall_time), 3)
          .add(100.0 * (to_ms(r.wall_time) - to_ms(wall_clean)) / to_ms(wall_clean), 1)
          .add(0.0, 3)
          .add(static_cast<std::int64_t>(s.rollbacks))
          .add(static_cast<std::int64_t>(s.checkpoints))
          .add(format_bytes(s.checkpoint_bytes));
    }

    for (const double frac : fracs) {
      armci::WorldConfig cfg = base_cfg();
      cfg.machine.fault.node_fails.push_back(
          {dead_node, scf_start + static_cast<Time>(frac * wall_clean)});
      armci::World world(cfg);
      const apps::ScfResult r = apps::run_scf(world, ft_scf);
      const ft::FtStats& s = world.machine().monitor()->stats();
      char at[32];
      std::snprintf(at, sizeof at, "%.0f%%", 100.0 * frac);
      table.row()
          .add(static_cast<int>(iv))
          .add(at)
          .add(to_ms(r.wall_time), 3)
          .add(100.0 * (to_ms(r.wall_time) - to_ms(wall_clean)) / to_ms(wall_clean), 1)
          .add(to_ms(s.recovery_time), 3)
          .add(static_cast<std::int64_t>(s.rollbacks))
          .add(static_cast<std::int64_t>(s.checkpoints))
          .add(format_bytes(s.checkpoint_bytes));
    }
  }
  table.print();
  std::printf(
      "\nvs_clean_%% on fail_at=none rows is the steady-state checkpoint\n"
      "overhead; on failure rows it is the total slip (lost work +\n"
      "detection + recovery + re-execution on 7 ranks). recovery_ms is\n"
      "the shrink/agreement/redistribution round only.\n");
  return 0;
}
