// Supplementary: processes-per-node sweep (Table II's c = 1..16).
// With more ranks per node, neighbour traffic increasingly takes the
// shared-memory path while the node's torus links and the software
// rmw service are shared by more processes — the trade the paper's
// evaluation fixed at c=16.
#include "apps/counter_kernel.hpp"
#include "common.hpp"

using namespace pgasq;

int main(int argc, char** argv) {
  const Config cli = Config::from_args(argc, argv);
  bench::print_banner("bench_supp_ppn: processes-per-node (c) sweep at fixed p=64",
                      "Table II attribute c = 1..16");
  const std::size_t bytes = static_cast<std::size_t>(cli.get_int("bytes", 65536));
  Table table({"c(ppn)", "nodes", "ring_put_MB/s/rank", "fadd_avg_us", "shm_share_%"});
  for (int c : {1, 2, 4, 8, 16}) {
    armci::WorldConfig cfg = bench::make_world_config(cli, 64, c);
    cfg.machine.ranks_per_node = c;
    armci::World world(cfg);
    Time t0 = 0, t1 = 0;
    int shm_neighbours = 0;
    world.spmd([&](armci::Comm& comm) {
      auto& mem = comm.malloc_collective(bytes);
      auto* src = static_cast<std::byte*>(comm.malloc_local(bytes));
      const int right = (comm.rank() + 1) % comm.nprocs();
      const auto& mapping = world.machine().mapping();
      if (mapping.node_of_rank(comm.rank()) == mapping.node_of_rank(right)) {
        ++shm_neighbours;
      }
      comm.barrier();
      if (comm.rank() == 0) t0 = comm.now();
      armci::Handle h;
      for (int i = 0; i < 8; ++i) comm.nb_put(src, mem.at(right), bytes, h);
      comm.wait(h);
      comm.fence_all();
      comm.barrier();
      if (comm.rank() == 0) t1 = comm.now();
    });
    const double per_rank_bw =
        8.0 * static_cast<double>(bytes) / to_s(t1 - t0) / 1e6;
    // Counter latency under the same layout.
    armci::WorldConfig kcfg_world = bench::make_world_config(cli, 64, c);
    kcfg_world.machine.ranks_per_node = c;
    armci::World kworld(kcfg_world);
    apps::CounterKernelConfig kcfg;
    kcfg.ops_per_rank = 8;
    const double fadd = apps::run_counter_kernel(kworld, kcfg).avg_latency_us;
    table.row()
        .add(c)
        .add(64 / c)
        .add(per_rank_bw, 1)
        .add(fadd, 2)
        .add(100.0 * shm_neighbours / 64.0, 1);
  }
  table.print();
  std::printf("(64 ranks in a neighbour-put ring + the Fig 9 idle counter kernel;\n"
              " higher c routes more of the ring through shared memory)\n");
  return 0;
}
