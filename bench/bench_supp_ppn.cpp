// Supplementary: processes-per-node sweep (Table II's c = 1..16).
// With more ranks per node, neighbour traffic increasingly takes the
// shared-memory path while the node's torus links and the software
// rmw service are shared by more processes — the trade the paper's
// evaluation fixed at c=16.
#include "apps/counter_kernel.hpp"
#include "coll/coll.hpp"
#include "common.hpp"

using namespace pgasq;

int main(int argc, char** argv) {
  const Config cli = Config::from_args(argc, argv);
  bench::print_banner("bench_supp_ppn: processes-per-node (c) sweep at fixed p=64",
                      "Table II attribute c = 1..16");
  const std::size_t bytes = static_cast<std::size_t>(cli.get_int("bytes", 65536));
  Table table({"c(ppn)", "nodes", "ring_put_MB/s/rank", "fadd_avg_us", "shm_share_%"});
  for (int c : {1, 2, 4, 8, 16}) {
    armci::WorldConfig cfg = bench::make_world_config(cli, 64, c);
    cfg.machine.ranks_per_node = c;
    armci::World world(cfg);
    Time t0 = 0, t1 = 0;
    int shm_neighbours = 0;
    world.spmd([&](armci::Comm& comm) {
      auto& mem = comm.malloc_collective(bytes);
      auto* src = static_cast<std::byte*>(comm.malloc_local(bytes));
      const int right = (comm.rank() + 1) % comm.nprocs();
      const auto& mapping = world.machine().mapping();
      if (mapping.node_of_rank(comm.rank()) == mapping.node_of_rank(right)) {
        ++shm_neighbours;
      }
      comm.barrier();
      if (comm.rank() == 0) t0 = comm.now();
      armci::Handle h;
      for (int i = 0; i < 8; ++i) comm.nb_put(src, mem.at(right), bytes, h);
      comm.wait(h);
      comm.fence_all();
      comm.barrier();
      if (comm.rank() == 0) t1 = comm.now();
    });
    const double per_rank_bw =
        8.0 * static_cast<double>(bytes) / to_s(t1 - t0) / 1e6;
    // Counter latency under the same layout.
    armci::WorldConfig kcfg_world = bench::make_world_config(cli, 64, c);
    kcfg_world.machine.ranks_per_node = c;
    armci::World kworld(kcfg_world);
    apps::CounterKernelConfig kcfg;
    kcfg.ops_per_rank = 8;
    const double fadd = apps::run_counter_kernel(kworld, kcfg).avg_latency_us;
    table.row()
        .add(c)
        .add(64 / c)
        .add(per_rank_bw, 1)
        .add(fadd, 2)
        .add(100.0 * shm_neighbours / 64.0, 1);
  }
  table.print();
  std::printf("(64 ranks in a neighbour-put ring + the Fig 9 idle counter kernel;\n"
              " higher c routes more of the ring through shared memory)\n");

  // Flat vs node-aware hierarchical allreduce at scale: the two-level
  // schedule (src/grp node + leaders groups) combines inside each node
  // first, so only one rank per node touches the torus — the win grows
  // with c. Contention model, so shared links actually cost.
  const int hp = static_cast<int>(cli.get_int("hier_ranks", 512));
  const std::size_t hn =
      static_cast<std::size_t>(cli.get_int("hier_doubles", 4096));
  const int hiters = static_cast<int>(cli.get_int("hier_iters", 4));
  Table ht({"c(ppn)", "nodes", "flat_allreduce_us", "hier_allreduce_us",
            "speedup"});
  for (int c : {1, 2, 4, 8, 16}) {
    double lat[2] = {0.0, 0.0};  // [0] flat recdbl, [1] hier
    for (int mode = 0; mode < 2; ++mode) {
      armci::WorldConfig cfg = bench::make_world_config(cli, hp, c);
      cfg.machine.ranks_per_node = c;
      cfg.machine.network_model = "contention";
      cfg.armci.coll.emplace_back("algo.allreduce",
                                  mode == 0 ? "recdbl" : "hier");
      armci::World world(cfg);
      Time t0 = 0, t1 = 0;
      world.spmd([&](armci::Comm& comm) {
        std::vector<double> x(hn, 1.0 + comm.rank());
        coll::CollEngine& eng = coll::CollEngine::of(comm);
        eng.allreduce_sum(x.data(), x.size());  // warm scratch + groups
        comm.barrier();
        if (comm.rank() == 0) t0 = comm.now();
        for (int i = 0; i < hiters; ++i) eng.allreduce_sum(x.data(), x.size());
        comm.barrier();
        if (comm.rank() == 0) t1 = comm.now();
      });
      lat[mode] = to_us(t1 - t0) / hiters;
    }
    ht.row()
        .add(c)
        .add(hp / c)
        .add(lat[0], 1)
        .add(lat[1], 1)
        .add(lat[0] / lat[1], 2);
  }
  ht.print();
  std::printf("(%d ranks, %zu doubles per allreduce, contention network;\n"
              " flat = recursive doubling over all ranks, hier = node combine\n"
              " + leaders exchange + node fan-out; hier needs c >= 2 to have\n"
              " a node stage at all)\n",
              hp, hn);
  return 0;
}
