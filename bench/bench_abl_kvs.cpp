// Ablation: sharded key-value service on the PGAS runtime — the
// latency-bound, many-small-messages serving workload the dense paper
// kernels never exercise. Three questions, one run:
//
//  1. Tail latency under skew: closed-loop clients draw keys zipfian
//     (YCSB theta ~ 0.99, hot keys pile onto few shards) vs uniform;
//     the table reports Mops/s and p50/p99/p999 per op from the
//     log-bucketed histograms in src/util/histogram.hpp.
//  2. Mix sensitivity: read-heavy vs write-heavy (get_ratio sweep) —
//     writes pay the CAS-version lock protocol, reads one slot fetch.
//  3. Fail-stop durability: with ft.* armed, a node dies mid-run; the
//     shards roll back to the newest buddy checkpoint, surviving
//     clients replay their acked op logs, and the audited
//     lost-acked-write count must be ZERO.
//
// Every section exports kvs.* metrics (labelled mix=/get_ratio=) into
// one accumulated registry that lands in the final pgasq.report JSON
// (--report.json_path), so a single artifact carries the whole sweep.
//
// Knobs: ranks (default 512), requests, keys, value_bytes, thetas,
// get_ratios, failstop (0 disables section 3), failstop_ranks,
// failstop_frac, plus every kvs.* knob (kvs.seed, kvs.faa_ratio, ...).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common.hpp"
#include "kvs/kvs.hpp"
#include "util/table.hpp"

using namespace pgasq;

namespace {

std::vector<double> parse_list(const std::string& csv) {
  std::vector<double> out;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    const std::size_t comma = csv.find(',', pos);
    out.push_back(std::strtod(csv.substr(pos, comma - pos).c_str(), nullptr));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

double q_us(const util::Histogram& h, double q) {
  return static_cast<double>(h.quantile(q)) / 1e3;
}

}  // namespace

int main(int argc, char** argv) {
  const Config cli = Config::from_args(argc, argv);
  bench::print_banner(
      "bench_abl_kvs: sharded KV service — zipfian tails + fail-stop durability",
      "PGAS serving-tier ablation (beyond the paper's dense kernels)");

  kvs::KvConfig base = kvs::KvConfig::from_config(cli);
  base.keys = cli.get_int("keys", 8192);
  base.requests = cli.get_int("requests", 32);
  base.value_bytes = cli.get_int("value_bytes", base.value_bytes);

  const int ranks = static_cast<int>(cli.get_int("ranks", 512));
  const std::vector<double> thetas =
      parse_list(cli.get_string("thetas", "0.99,0"));
  const std::vector<double> get_ratios =
      parse_list(cli.get_string("get_ratios", "0.95,0.5"));

  obs::Registry acc;
  std::unique_ptr<armci::World> last_world;

  std::printf("closed-loop mix sweep: %d ranks, %lld keys, %lld req/rank\n\n",
              ranks, static_cast<long long>(base.keys),
              static_cast<long long>(base.requests));
  Table table({"mix", "get%", "Mops/s", "get_p50us", "get_p99us", "get_p999us",
               "put_p50us", "put_p99us", "put_p999us", "cas_lost", "probe+"});
  for (const double theta : thetas) {
    for (const double gr : get_ratios) {
      kvs::KvConfig kc = base;
      kc.zipf_theta = theta;
      kc.get_ratio = gr;
      const std::string mix = theta > 0.0 ? "zipfian" : "uniform";
      armci::WorldConfig cfg = bench::make_world_config(cli, ranks);
      auto world = std::make_unique<armci::World>(cfg);
      const kvs::KvResult r = kvs::run_workload(*world, kc);
      table.row()
          .add(mix)
          .add(100.0 * gr, 0)
          .add(r.mops, 3)
          .add(q_us(r.total.get_lat, 0.5), 2)
          .add(q_us(r.total.get_lat, 0.99), 2)
          .add(q_us(r.total.get_lat, 0.999), 2)
          .add(q_us(r.total.put_lat, 0.5), 2)
          .add(q_us(r.total.put_lat, 0.99), 2)
          .add(q_us(r.total.put_lat, 0.999), 2)
          .add(static_cast<std::int64_t>(r.total.cas_lost))
          .add(static_cast<std::int64_t>(r.total.probe_steps));
      char grbuf[16];
      std::snprintf(grbuf, sizeof grbuf, "%.2f", gr);
      kvs::export_metrics(acc, r, {{"mix", mix}, {"get_ratio", grbuf}});
      last_world = std::move(world);
    }
  }
  table.print();

  // Section 3: fail-stop durability. A node dies mid-run while the
  // shards checkpoint to buddies every `checkpoint_every` requests;
  // the audit (kvs.verify) recounts every surviving client's acked
  // puts against the live table, and the faa counters must land on the
  // exactly-once expectation.
  if (cli.get_bool("failstop", true)) {
    const int fs_ranks = static_cast<int>(
        cli.get_int("failstop_ranks", std::min(ranks, 64)));
    const double frac = cli.get_double("failstop_frac", 0.55);
    kvs::KvConfig kc = base;
    kc.requests = cli.get_int("failstop_requests", 48);
    kc.checkpoint_every =
        cli.get_int("kvs.checkpoint_every", 0) > 0 ? kc.checkpoint_every : 12;
    kc.faa_ratio = kc.faa_ratio > 0.0 ? kc.faa_ratio : 0.1;
    kc.get_ratio = 0.5;
    // A closed-loop think time keeps the traffic window well past the
    // ~200 us liveness detection delay, so the declaration lands
    // mid-traffic (not in the teardown).
    if (kc.think_us <= 0.0) kc.think_us = 25.0;

    // Clean pass measures the traffic window so the death can be aimed
    // into it.
    Time death_at = 0;
    {
      armci::WorldConfig cfg = bench::make_world_config(cli, fs_ranks);
      cfg.machine.num_ranks = fs_ranks;  // --ranks only sizes the sweep
      armci::World world(cfg);
      const kvs::KvResult clean = kvs::run_workload(world, kc);
      death_at = clean.traffic_begin +
                 static_cast<Time>(frac * static_cast<double>(
                                              clean.traffic_end -
                                              clean.traffic_begin));
    }
    armci::WorldConfig cfg = bench::make_world_config(cli, fs_ranks);
    cfg.machine.num_ranks = fs_ranks;
    const int dead_node =
        static_cast<int>(cli.get_int("dead_node", fs_ranks / 2 - 1));
    cfg.machine.fault.node_fails.push_back({dead_node, death_at});
    auto world = std::make_unique<armci::World>(cfg);
    const kvs::KvResult r = kvs::run_workload(*world, kc);
    std::printf(
        "\nfail-stop: %d ranks, node %d dies at %.0f%% of clean run\n"
        "  survivors=%d recoveries=%d checkpoints=%llu replayed_ops=%llu\n"
        "  acked_ops=%llu lost_acked_writes=%llu torn_reads=%llu\n"
        "  faa expected=%llu applied=%llu (%s)\n",
        fs_ranks, dead_node, 100.0 * frac, r.survivors, r.recoveries,
        static_cast<unsigned long long>(r.checkpoints),
        static_cast<unsigned long long>(r.total.replayed_ops),
        static_cast<unsigned long long>(r.acked_ops),
        static_cast<unsigned long long>(r.lost_acked),
        static_cast<unsigned long long>(r.torn_reads),
        static_cast<unsigned long long>(r.faa_expected),
        static_cast<unsigned long long>(r.faa_applied),
        r.faa_expected == r.faa_applied ? "exactly-once OK" : "MISMATCH");
    kvs::export_metrics(acc, r, {{"mix", "failstop"}});
    if (r.lost_acked != 0 || r.faa_expected != r.faa_applied) {
      std::printf("DURABILITY FAILURE\n");
      return 1;
    }
    last_world = std::move(world);
  }

  // One report carries the whole sweep: fold the accumulated kvs.*
  // series into the last world's application metrics before emitting.
  last_world->app_metrics().merge_from(acc);
  bench::emit_observability(cli, *last_world);
  return 0;
}
