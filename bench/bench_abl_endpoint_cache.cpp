// Ablation (S III-B): endpoint caching for the communication clique.
// M_e = zeta * alpha * rho bytes buys beta = 0.3 us per op otherwise
// re-paid on every operation. With a 2048-member clique touched
// repeatedly the difference is directly visible in op latency.
#include "common.hpp"

using namespace pgasq;

namespace {

struct Outcome {
  double total_ms;
  std::uint64_t endpoints_created;
  std::size_t clique;
};

Outcome run(const Config& cli, bool cache) {
  armci::WorldConfig cfg =
      bench::make_world_config(cli, /*ranks=*/512, /*ranks_per_node=*/16);
  cfg.armci.cache_endpoints = cache;
  const int rounds = static_cast<int>(cli.get_int("rounds", 3));
  armci::World world(cfg);
  Outcome out{};
  world.spmd([&](armci::Comm& comm) {
    auto& mem = comm.malloc_collective(256);
    std::byte buf[32]{};
    comm.barrier();
    if (comm.rank() == 0) {
      const Time t0 = comm.now();
      for (int r = 0; r < rounds; ++r) {
        for (int t = 1; t < comm.nprocs(); ++t) comm.put(buf, mem.at(t), 32);
      }
      comm.fence_all();
      out.total_ms = to_ms(comm.now() - t0);
      out.endpoints_created = comm.stats().endpoints_created;
      out.clique = comm.endpoint_cache().size();
    }
    comm.barrier();
  });
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const Config cli = Config::from_args(argc, argv);
  bench::print_banner("bench_abl_endpoint_cache: cached vs per-op endpoint creation",
                      "S III-B — M_e = zeta*alpha*rho space buys beta per op");
  Table table({"endpoints", "wall_ms", "created", "cached_clique"});
  const auto cached = run(cli, true);
  const auto uncached = run(cli, false);
  table.row().add(std::string("cached")).add(cached.total_ms, 2)
      .add(cached.endpoints_created).add(cached.clique);
  table.row().add(std::string("per-op")).add(uncached.total_ms, 2)
      .add(uncached.endpoints_created).add(uncached.clique);
  table.print();
  std::printf("(rank 0 puts to 511 targets x 3 rounds; caching pays beta=0.3us\n"
              " once per clique member instead of once per operation)\n");
  return 0;
}
