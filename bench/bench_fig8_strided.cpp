// Figure 8: strided (uniformly non-contiguous) get/put bandwidth for a
// 1 MB total transfer as a function of the contiguous-chunk size l0.
// Paper: the curve tracks Figure 4 as l0 grows — per-chunk RDMA with
// many outstanding messages exploits the torus's messaging rate;
// tall-skinny shapes (tiny l0) route through the PAMI typed path.
#include "common.hpp"
#include "core/strided.hpp"

using namespace pgasq;

int main(int argc, char** argv) {
  const Config cli = Config::from_args(argc, argv);
  bench::print_banner("bench_fig8_strided: strided put/get bandwidth vs chunk size l0",
                      "Fig 8 — 1MB total; curve tracks Fig 4 as l0 grows");
  armci::WorldConfig cfg = bench::make_world_config(cli, /*ranks=*/2);
  const std::size_t total = static_cast<std::size_t>(cli.get_int("total", 1 << 20));

  Table table({"l0_bytes", "chunks", "protocol", "put_MB/s", "get_MB/s"});
  armci::World world(cfg);
  world.spmd([&](armci::Comm& comm) {
    // Pitch 2*l0 on both sides: genuinely non-contiguous, needs 2x room.
    auto& mem = comm.malloc_collective(2 * total);
    auto* buf = static_cast<std::byte*>(comm.malloc_local(2 * total));
    if (comm.rank() == 0) {
      comm.get(mem.at(1), buf, 16);
      comm.fence(1);
      for (std::size_t l0 = 16; l0 <= total; l0 *= 4) {
        const std::uint64_t rows = total / l0;
        const armci::StridedSpec spec =
            rows == 1 ? armci::StridedSpec::contiguous(l0)
                      : armci::StridedSpec::rect2d(rows, l0, 2 * l0, 2 * l0);
        const char* protocol =
            (l0 < comm.options().tall_skinny_chunk_bytes &&
             rows >= comm.options().tall_skinny_min_chunks)
                ? "typed"
                : "zero-copy";
        Time t0 = comm.now();
        comm.put_strided(buf, mem.at(1), spec);
        comm.fence(1);
        const double put_bw =
            static_cast<double>(total) / to_s(comm.now() - t0) / 1e6;
        t0 = comm.now();
        comm.get_strided(mem.at(1), buf, spec);
        const double get_bw =
            static_cast<double>(total) / to_s(comm.now() - t0) / 1e6;
        table.row()
            .add(format_bytes(l0))
            .add(static_cast<long long>(rows))
            .add(std::string(protocol))
            .add(put_bw, 1)
            .add(get_bw, 1);
      }
    }
    comm.barrier();
  });
  table.print();
  return 0;
}
