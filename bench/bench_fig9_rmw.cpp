// Figure 9: average fetch-and-add latency on a counter at rank 0 as
// the process count grows, with/without the asynchronous progress
// thread and with/without computation (~300 us chunks) at rank 0.
// Paper findings reproduced here:
//   - D and AT comparable when rank 0 is idle in the progress engine;
//   - with rank 0 computing, D latency explodes (proportional to the
//     compute chunk) while AT stays low;
//   - even with AT, latency grows linearly with p — BG/Q has no NIC
//     AMO (contrast: bench_abl_hw_amo).
#include "apps/counter_kernel.hpp"
#include "common.hpp"

using namespace pgasq;

int main(int argc, char** argv) {
  const Config cli = Config::from_args(argc, argv);
  bench::print_banner("bench_fig9_rmw: fetch-and-add latency vs process count",
                      "Fig 9 — D vs AT, idle vs computing rank 0");
  const int ops = static_cast<int>(cli.get_int("ops", 8));
  const int max_ranks = static_cast<int>(cli.get_int("max_ranks", 4096));

  Table table({"procs", "D_idle_us", "AT_idle_us", "D_compute_us", "AT_compute_us"});
  std::vector<int> sizes;
  for (int p = 2; p <= max_ranks; p *= 4) sizes.push_back(p);
  if (sizes.back() * 2 == max_ranks) sizes.push_back(max_ranks);  // reach 4096
  for (int p : sizes) {
    double cells[4] = {};
    int idx = 0;
    for (bool compute : {false, true}) {
      for (const auto& mode : bench::default_and_async()) {
        armci::WorldConfig cfg = bench::make_world_config(
            cli, p, /*ranks_per_node=*/p >= 16 ? 16 : 1);
        cfg.machine.num_ranks = p;
        cfg.armci.progress = mode.progress;
        cfg.armci.contexts_per_rank = mode.contexts;
        armci::World world(cfg);
        apps::CounterKernelConfig kcfg;
        kcfg.ops_per_rank = ops;
        kcfg.home_computes = compute;
        const auto result = apps::run_counter_kernel(world, kcfg);
        cells[idx++] = result.avg_latency_us;
      }
    }
    table.row()
        .add(p)
        .add(cells[0], 2)
        .add(cells[1], 2)
        .add(cells[2], 2)
        .add(cells[3], 2);
  }
  table.print();
  std::printf("(D = default progress, AT = asynchronous thread; compute = rank 0 "
              "busy in ~300us chunks between progress calls)\n");
  return 0;
}
