// Self-checking reproduction summary: runs fast probes of every
// headline claim and prints paper-vs-measured with a PASS/FAIL verdict
// per row. A one-binary regression gate for the whole reproduction
// (EXPERIMENTS.md holds the full tables).
#include <cmath>

#include "apps/counter_kernel.hpp"
#include "apps/scf.hpp"
#include "common.hpp"

using namespace pgasq;

namespace {

struct Check {
  std::string name;
  std::string paper;
  double measured;
  double lo, hi;  // acceptance band
  const char* unit;
};

std::vector<Check> g_checks;

void check(const std::string& name, const std::string& paper, double measured,
           double lo, double hi, const char* unit) {
  g_checks.push_back({name, paper, measured, lo, hi, unit});
}

void run_wire_probes() {
  armci::WorldConfig cfg;
  cfg.machine.num_ranks = 2;
  armci::World world(cfg);
  world.spmd([](armci::Comm& comm) {
    auto& mem = comm.malloc_collective(1 << 20);
    auto* buf = static_cast<std::byte*>(comm.malloc_local(1 << 20));
    if (comm.rank() != 0) {
      comm.barrier();
      return;
    }
    comm.get(mem.at(1), buf, 16);
    comm.put(buf, mem.at(1), 16);
    comm.fence(1);
    // Fig 3: 16B latencies.
    Time t0 = comm.now();
    comm.get(mem.at(1), buf, 16);
    check("16B get latency", "2.89 us", to_us(comm.now() - t0), 2.80, 2.98, "us");
    t0 = comm.now();
    comm.put(buf, mem.at(1), 16);
    check("16B put latency", "2.7 us", to_us(comm.now() - t0), 2.60, 2.80, "us");
    comm.fence(1);
    // Fig 3: alignment dip at 256B.
    t0 = comm.now();
    comm.get(mem.at(1), buf, 128);
    const double l128 = to_us(comm.now() - t0);
    t0 = comm.now();
    comm.get(mem.at(1), buf, 256);
    const double l256 = to_us(comm.now() - t0);
    check("256B dip (get 128B - 256B)", "> 0 (aligned faster)", l128 - l256, 0.05,
          1.0, "us");
    // Fig 4: peak bandwidth.
    t0 = comm.now();
    {
      armci::Handle h;
      for (int i = 0; i < 32; ++i) comm.nb_put(buf, mem.at(1), 1 << 20, h);
      comm.wait(h);
    }
    check("peak put bandwidth", "1775 MB/s",
          32.0 * (1 << 20) / to_s(comm.now() - t0) / 1e6, 1750, 1800, "MB/s");
    comm.fence(1);
    // Fig 6: N1/2 at 2KB (>= 45% and < 60% of 1.8 GB/s).
    t0 = comm.now();
    {
      armci::Handle h;
      for (int i = 0; i < 32; ++i) comm.nb_put(buf, mem.at(1), 2048, h);
      comm.wait(h);
    }
    const double bw2k = 32.0 * 2048 / to_s(comm.now() - t0);
    check("efficiency at 2KB (N1/2)", "~50%", 100.0 * bw2k / 1.8e9, 45, 60, "%");
    comm.barrier();
  });
}

void run_hop_probe() {
  // Fig 7: per-hop increment on the 2048-proc partition.
  armci::WorldConfig cfg;
  cfg.machine.num_ranks = 2048;
  cfg.machine.ranks_per_node = 16;
  armci::World world(cfg);
  const auto& torus = world.machine().torus();
  const auto& mapping = world.machine().mapping();
  double lat1 = 0.0;
  double lat7 = 0.0;
  int far_rank = -1;
  for (int r = 1; r < 2048; ++r) {
    if (torus.hop_distance(0, mapping.node_of_rank(r)) == torus.diameter()) {
      far_rank = r;
      break;
    }
  }
  world.spmd([&](armci::Comm& comm) {
    auto& mem = comm.malloc_collective(64);
    std::byte buf[16];
    if (comm.rank() == 0) {
      comm.get(mem.at(16), buf, 16);  // 1 hop warm
      Time t0 = comm.now();
      comm.get(mem.at(16), buf, 16);
      lat1 = to_us(comm.now() - t0);
      comm.get(mem.at(far_rank), buf, 16);
      t0 = comm.now();
      comm.get(mem.at(far_rank), buf, 16);
      lat7 = to_us(comm.now() - t0);
    }
    comm.barrier();
  });
  const int hop_delta = world.machine().torus().diameter() - 1;
  check("per-hop latency increment", "35 ns",
        (lat7 - lat1) * 1e3 / (2.0 * hop_delta), 30, 40, "ns");
}

void run_scf_probe() {
  // Fig 11 shape at a reduced size: AT beats D by 15-45%.
  apps::ScfConfig scf;
  scf.nbf = 322;  // half deck for speed
  scf.block = 7;
  scf.iterations = 1;
  double d_wall = 0.0;
  double at_wall = 0.0;
  double d_counter = 0.0;
  double at_counter = 0.0;
  for (const auto& mode : bench::default_and_async()) {
    armci::WorldConfig cfg;
    cfg.machine.num_ranks = 512;
    cfg.machine.ranks_per_node = 16;
    cfg.armci.progress = mode.progress;
    cfg.armci.contexts_per_rank = mode.contexts;
    armci::World world(cfg);
    const auto r = apps::run_scf(world, scf);
    if (mode.name == "D") {
      d_wall = to_ms(r.wall_time);
      d_counter = to_s(r.counter_time);
    } else {
      at_wall = to_ms(r.wall_time);
      at_counter = to_s(r.counter_time);
    }
  }
  check("SCF: AT execution-time reduction", "up to 30%",
        100.0 * (d_wall - at_wall) / d_wall, 15, 45, "%");
  check("SCF: counter-time collapse factor", "\"reduces sharply\"",
        d_counter / std::max(1e-9, at_counter), 4, 1e6, "x");
}

void run_counter_probe() {
  // Fig 9: D with rank 0 computing ~ compute-chunk scale; AT immune.
  apps::CounterKernelConfig kcfg;
  kcfg.ops_per_rank = 6;
  kcfg.home_computes = true;
  armci::WorldConfig d = bench::make_world_config(Config{}, 32, 16);
  armci::World dw(d);
  const double d_lat = apps::run_counter_kernel(dw, kcfg).avg_latency_us;
  armci::WorldConfig at = d;
  at.armci.progress = armci::ProgressMode::kAsyncThread;
  at.armci.contexts_per_rank = 2;
  armci::World atw(at);
  const double at_lat = apps::run_counter_kernel(atw, kcfg).avg_latency_us;
  check("fadd latency, rank0 computing, D", "~300 us (compute-bound)", d_lat, 250,
        400, "us");
  check("fadd latency, rank0 computing, AT", "~10 us scale", at_lat, 1, 30, "us");
}

}  // namespace

int main(int argc, char** argv) {
  (void)argc;
  (void)argv;
  bench::print_banner("bench_paper_summary: every headline claim, self-checked",
                      "Figs 3,4,6,7,9,11 acceptance bands");
  run_wire_probes();
  run_hop_probe();
  run_counter_probe();
  run_scf_probe();

  Table table({"claim", "paper", "measured", "band", "verdict"});
  int failures = 0;
  for (const auto& c : g_checks) {
    const bool ok = c.measured >= c.lo && c.measured <= c.hi;
    failures += ok ? 0 : 1;
    char measured[64];
    std::snprintf(measured, sizeof measured, "%.2f %s", c.measured, c.unit);
    char band[64];
    std::snprintf(band, sizeof band, "[%.5g, %.5g]", c.lo, c.hi);
    table.row().add(c.name).add(c.paper).add(std::string(measured))
        .add(std::string(band)).add(std::string(ok ? "PASS" : "FAIL"));
  }
  table.print();
  std::printf("%d/%zu claims within band\n", static_cast<int>(g_checks.size()) - failures,
              g_checks.size());
  return failures == 0 ? 0 : 1;
}
