// Ablation: Fig-4-style contiguous put/get bandwidth as the fabric
// degrades — per-packet drop probability swept over {0, 1e-4, 1e-2},
// each with and without one hard-failed link on the route. Recovery is
// the pami-layer ack/timeout/retransmit protocol plus dimension-order
// route-around; the sweep shows where timeouts start to eat the Fig 4
// curve and what a 2-extra-hop detour costs at each message size.
//
// Knobs: the usual bench ones plus fault.ack_timeout_us /
// fault.backoff_factor / fault.retry_budget and window=N. fault.seed
// fixes the loss pattern, so two runs are identical.
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "fault/fault.hpp"

using namespace pgasq;

namespace {

struct Scenario {
  const char* name;
  double drop_prob;
  bool failed_link;
};

}  // namespace

int main(int argc, char** argv) {
  const Config cli = Config::from_args(argc, argv);
  bench::print_banner(
      "bench_abl_faults: put/get bandwidth under packet loss + link failure",
      "Fig 4 under fault injection — retransmit/backoff + route-around cost");
  const int window = static_cast<int>(cli.get_int("window", 32));
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("fault.seed", 1));

  // Two ranks four hops apart on a 4x1x1x1x1 ring, so the failed-link
  // scenarios take a real detour (dim of size 4; a size-2 dim reroutes
  // for free through the reverse link).
  const std::vector<Scenario> scenarios = {
      {"clean", 0.0, false},          {"drop=1e-4", 1e-4, false},
      {"drop=1e-2", 1e-2, false},     {"link-fail", 0.0, true},
      {"drop=1e-2+link", 1e-2, true},
  };

  for (const Scenario& sc : scenarios) {
    armci::WorldConfig cfg = bench::make_world_config(cli, /*ranks=*/2);
    cfg.machine.dims = topo::Coord5{4, 1, 1, 1, 1};
    cfg.machine.ranks_per_node = 1;
    cfg.machine.num_ranks = 2;
    cfg.machine.fault.seed = seed;
    cfg.machine.fault.drop_prob = sc.drop_prob;
    if (sc.failed_link) {
      cfg.machine.fault.link_faults.push_back(
          fault::LinkFaultSpec{/*node=*/0, /*dim=*/0, /*dir=*/+1,
                               /*capacity=*/0.0, /*begin=*/0, fault::kForever});
    }

    // One world for the whole sweep, like Fig 4: each successive row
    // keeps consuming the injector's RNG stream, so a 1% drop rate
    // actually bites somewhere in the ~1000 message legs of the sweep
    // (a fresh world per row would replay the same few draws and could
    // miss every drop).
    Table table({"bytes", "put_MB/s", "get_MB/s"});
    armci::World world(cfg);
    world.spmd([&](armci::Comm& comm) {
      auto& mem = comm.malloc_collective(1 << 20);
      auto* buf = static_cast<std::byte*>(comm.malloc_local(1 << 20));
      if (comm.rank() == 0) {
        comm.get(mem.at(1), buf, 16);  // warm the region cache
        comm.fence(1);
        for (std::size_t m : bench::size_sweep()) {
          Time t0 = comm.now();
          {
            armci::Handle h;
            for (int i = 0; i < window; ++i) comm.nb_put(buf, mem.at(1), m, h);
            comm.wait(h);
          }
          const double put_bw =
              static_cast<double>(window) * static_cast<double>(m) /
              to_s(comm.now() - t0) / 1e6;
          comm.fence(1);
          t0 = comm.now();
          {
            armci::Handle h;
            for (int i = 0; i < window; ++i) comm.nb_get(mem.at(1), buf, m, h);
            comm.wait(h);
          }
          const double get_bw =
              static_cast<double>(window) * static_cast<double>(m) /
              to_s(comm.now() - t0) / 1e6;
          table.row().add(format_bytes(m)).add(put_bw, 1).add(get_bw, 1);
        }
      }
      comm.barrier();
    });
    std::printf("\n--- scenario %s (seed=%llu) ---\n", sc.name,
                static_cast<unsigned long long>(seed));
    table.print();
    fault::FaultStats recovered{};
    if (const fault::Injector* inj = world.machine().injector()) {
      recovered = inj->stats();
    }
    std::printf("dropped=%llu retransmits=%llu reroutes=%llu backoff_ms=%.3f\n",
                static_cast<unsigned long long>(recovered.packets_dropped),
                static_cast<unsigned long long>(recovered.retransmits),
                static_cast<unsigned long long>(recovered.reroutes),
                to_ms(recovered.backoff_time));
  }
  return 0;
}
