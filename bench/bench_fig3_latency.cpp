// Figure 3: contiguous get/put latency between adjacent nodes,
// 16 B .. 8 KB. Paper headline numbers: get 2.89 us and put 2.7 us at
// 16 B; a latency drop at 256 B where transfers become torus-packet
// aligned.
#include <vector>

#include "common.hpp"

using namespace pgasq;

int main(int argc, char** argv) {
  const Config cli = Config::from_args(argc, argv);
  bench::print_banner("bench_fig3_latency: contiguous get/put latency (2 procs, adjacent nodes)",
                      "Fig 3 — get 2.89us / put 2.7us @16B, dip at 256B");
  armci::WorldConfig cfg = bench::make_world_config(cli, /*ranks=*/2);
  const int iters = static_cast<int>(cli.get_int("iters", 5));

  Table table({"bytes", "get_us", "put_us"});
  armci::World world(cfg);
  world.spmd([&](armci::Comm& comm) {
    auto& mem = comm.malloc_collective(16 << 10);
    auto* buf = static_cast<std::byte*>(comm.malloc_local(16 << 10));
    if (comm.rank() == 0) {
      // Warm: endpoint creation and region exchange out of the way.
      comm.get(mem.at(1), buf, 16);
      comm.put(buf, mem.at(1), 16);
      comm.fence(1);
      for (std::size_t m : bench::size_sweep(16, 8 << 10)) {
        Time get_total = 0;
        Time put_total = 0;
        for (int i = 0; i < iters; ++i) {
          Time t0 = comm.now();
          comm.get(mem.at(1), buf, m);
          get_total += comm.now() - t0;
          t0 = comm.now();
          comm.put(buf, mem.at(1), m);
          put_total += comm.now() - t0;
          comm.fence(1);
        }
        table.row()
            .add(format_bytes(m))
            .add(to_us(get_total) / iters, 3)
            .add(to_us(put_total) / iters, 3);
      }
    }
    comm.barrier();
  });
  table.print();
  bench::emit_observability(cli, world);
  return 0;
}
