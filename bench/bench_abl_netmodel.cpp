// Ablation: sensitivity of the headline curves to the network model.
// Repeats the Fig 4 bandwidth sweep and a Fig 7-style distance probe
// under the stateless LogGP model and the link-contention (wormhole
// occupancy) model; shapes should agree for these uncongested
// workloads, diverging only when routes share links.
#include "common.hpp"

using namespace pgasq;

namespace {

double bandwidth(const Config& cli, const std::string& net, std::size_t m) {
  armci::WorldConfig cfg = bench::make_world_config(cli, /*ranks=*/2);
  cfg.machine.network_model = net;
  armci::World world(cfg);
  double bw = 0.0;
  world.spmd([&](armci::Comm& comm) {
    auto& mem = comm.malloc_collective(1 << 20);
    auto* buf = static_cast<std::byte*>(comm.malloc_local(1 << 20));
    if (comm.rank() == 0) {
      comm.get(mem.at(1), buf, 16);
      comm.fence(1);
      const int window = 32;
      const Time t0 = comm.now();
      armci::Handle h;
      for (int i = 0; i < window; ++i) comm.nb_put(buf, mem.at(1), m, h);
      comm.wait(h);
      bw = static_cast<double>(window) * static_cast<double>(m) /
           to_s(comm.now() - t0) / 1e6;
    }
    comm.barrier();
  });
  return bw;
}

/// All-to-one incast: every rank puts to rank 0 simultaneously; the
/// contention model must show slowdown, LogGP cannot.
double incast_ms(const Config& cli, const std::string& net) {
  armci::WorldConfig cfg = bench::make_world_config(cli, /*ranks=*/32);
  cfg.machine.network_model = net;
  armci::World world(cfg);
  Time t0 = 0, t1 = 0;
  world.spmd([&](armci::Comm& comm) {
    auto& mem = comm.malloc_collective(static_cast<std::size_t>(comm.nprocs()) << 16);
    auto* buf = static_cast<std::byte*>(comm.malloc_local(1 << 16));
    comm.barrier();
    if (comm.rank() == 0) t0 = comm.now();
    if (comm.rank() != 0) {
      comm.put(buf, mem.at(0, static_cast<std::size_t>(comm.rank()) << 16), 1 << 16);
      comm.fence(0);
    }
    comm.barrier();
    if (comm.rank() == 0) t1 = comm.now();
  });
  return to_ms(t1 - t0);
}

}  // namespace

int main(int argc, char** argv) {
  const Config cli = Config::from_args(argc, argv);
  bench::print_banner("bench_abl_netmodel: LogGP vs link-contention network model",
                      "model sensitivity of Fig 4 shapes + an incast stress");
  Table table({"bytes", "loggp_MB/s", "contention_MB/s"});
  for (std::size_t m : {4096ul, 65536ul, 1048576ul}) {
    table.row()
        .add(format_bytes(m))
        .add(bandwidth(cli, "loggp", m), 1)
        .add(bandwidth(cli, "contention", m), 1);
  }
  table.print();
  std::printf("\n32-rank incast to rank 0 (64KB each):\n");
  std::printf("  loggp:      %.3f ms (no link sharing modeled)\n",
              incast_ms(cli, "loggp"));
  std::printf("  contention: %.3f ms (links near rank 0 serialize)\n",
              incast_ms(cli, "contention"));
  return 0;
}
