// Ablation (S III-B): the remote memory-region cache. Non-collective
// buffers force the LFU cache + AM miss protocol: rank 0 puts to
// private buffers of every other rank, with varying cache capacity.
// Small caches thrash (every put pays a query round-trip that needs
// the target's progress engine); capacity >= working set makes misses
// one-time.
#include "common.hpp"
#include "ga/global_array.hpp"

using namespace pgasq;

namespace {

struct Outcome {
  double wall_ms;
  std::uint64_t hits, misses, queries;
};

Outcome run(const Config& cli, std::size_t capacity) {
  armci::WorldConfig cfg = bench::make_world_config(cli, /*ranks=*/64);
  cfg.armci.region_cache_capacity = capacity;
  // Async progress so region queries are serviced promptly even while
  // targets idle in the final barrier.
  const int rounds = static_cast<int>(cli.get_int("rounds", 4));
  armci::World world(cfg);
  Time t0 = 0, t1 = 0;
  Outcome out{};
  world.spmd([&](armci::Comm& comm) {
    // Every rank allocates a PRIVATE registered buffer, then publishes
    // its address through a directory in collective memory.
    auto* priv = static_cast<std::byte*>(comm.malloc_local(4096));
    auto& directory = comm.malloc_collective(sizeof(std::byte*));
    *reinterpret_cast<std::byte**>(directory.local(comm.rank())) = priv;
    comm.barrier();
    if (comm.rank() == 0) {
      t0 = comm.now();
      std::vector<std::byte> src(1024);
      for (int round = 0; round < rounds; ++round) {
        for (int target = 1; target < comm.nprocs(); ++target) {
          std::byte* remote_buf = nullptr;
          comm.get(directory.at(target), &remote_buf, sizeof remote_buf);
          comm.put(src.data(), armci::RemotePtr{target, remote_buf}, 1024);
        }
        comm.fence_all();
      }
      t1 = comm.now();
      out.hits = comm.region_cache().hits();
      out.misses = comm.region_cache().misses();
      out.queries = comm.stats().region_queries_sent;
    }
    comm.barrier();
  });
  out.wall_ms = to_ms(t1 - t0);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const Config cli = Config::from_args(argc, argv);
  bench::print_banner("bench_abl_region_cache: LFU remote-region cache capacity",
                      "S III-B — M_r bounded by cache; misses served by AM");
  Table table({"capacity", "wall_ms", "hits", "misses", "queries_sent"});
  for (std::size_t cap : {4ul, 16ul, 64ul, 256ul}) {
    const auto o = run(cli, cap);
    table.row().add(cap).add(o.wall_ms, 2).add(o.hits).add(o.misses).add(o.queries);
  }
  table.print();
  std::printf("(64 ranks, 4 rounds of puts to every rank's private buffer;\n"
              " capacity >= 63 turns repeat rounds into pure hits)\n");
  return 0;
}
