// Supplementary: all-to-all personalized exchange (matrix-transpose
// communication) — the densest traffic pattern a torus carries.
// Under LogGP every message is independent; under the link-contention
// model the bisection is shared, so the gap between the two models
// bounds how contention-sensitive the Fig 4-style numbers are.
//
// Two schedules per (model, ranks): the naive rotated nb_put loop, and
// the coll engine's hop-ordered torus schedule (nearest neighbours
// first), which trades bisection pressure for locality.
#include "coll/coll.hpp"
#include "common.hpp"

using namespace pgasq;

namespace {

/// When `heatmap_out` is non-null the run records per-link counters
/// (pure observation — timings are unchanged) and leaves the rendered
/// heatmap there.
double run_alltoall(const Config& cli, const std::string& net, int ranks,
                    std::size_t bytes, std::string* heatmap_out = nullptr) {
  armci::WorldConfig cfg = bench::make_world_config(cli, ranks,
                                                    /*ranks_per_node=*/1);
  cfg.machine.num_ranks = ranks;
  cfg.machine.network_model = net;
  if (heatmap_out != nullptr) cfg.machine.obs.links = true;
  armci::World world(cfg);
  Time t0 = 0, t1 = 0;
  world.spmd([&](armci::Comm& comm) {
    const int p = comm.nprocs();
    auto& mem = comm.malloc_collective(bytes * static_cast<std::size_t>(p));
    auto* src = static_cast<std::byte*>(comm.malloc_local(bytes));
    comm.barrier();
    if (comm.rank() == 0) t0 = comm.now();
    armci::Handle h;
    for (int off = 1; off < p; ++off) {
      const int target = (comm.rank() + off) % p;  // rotated schedule
      comm.nb_put(src, mem.at(target, bytes * static_cast<std::size_t>(comm.rank())),
                  bytes, h);
    }
    comm.wait(h);
    comm.fence_all();
    comm.barrier();
    if (comm.rank() == 0) t1 = comm.now();
  });
  if (heatmap_out != nullptr) {
    *heatmap_out = world.machine().link_usage()->heatmap(
        1.0 / cfg.machine.params.g_ns_per_byte, cfg.machine.obs.link_top);
  }
  return to_ms(t1 - t0);
}

double run_engine_alltoall(const Config& cli, const std::string& net, int ranks,
                           std::size_t bytes, std::string* heatmap_out = nullptr) {
  armci::WorldConfig cfg = bench::make_world_config(cli, ranks,
                                                    /*ranks_per_node=*/1);
  cfg.machine.num_ranks = ranks;
  cfg.machine.network_model = net;
  cfg.armci.coll.emplace_back("algo.alltoall", "torus-ring");
  if (heatmap_out != nullptr) cfg.machine.obs.links = true;
  armci::World world(cfg);
  Time t0 = 0, t1 = 0;
  world.spmd([&](armci::Comm& comm) {
    const int p = comm.nprocs();
    auto& engine = coll::CollEngine::of(comm);
    std::vector<std::byte> in(bytes * static_cast<std::size_t>(p));
    std::vector<std::byte> out(in.size());
    // Warm-up: sizes the scratch arena outside the timed region, the
    // same way the manual schedule's malloc_collective is untimed.
    engine.alltoall(in.data(), bytes, out.data());
    engine.barrier();
    if (comm.rank() == 0) t0 = comm.now();
    engine.alltoall(in.data(), bytes, out.data());
    engine.barrier();
    if (comm.rank() == 0) t1 = comm.now();
  });
  if (heatmap_out != nullptr) {
    *heatmap_out = world.machine().link_usage()->heatmap(
        1.0 / cfg.machine.params.g_ns_per_byte, cfg.machine.obs.link_top);
  }
  return to_ms(t1 - t0);
}

}  // namespace

int main(int argc, char** argv) {
  const Config cli = Config::from_args(argc, argv);
  bench::print_banner("bench_supp_alltoall: all-to-all exchange, LogGP vs contention",
                      "transpose-pattern stress; bisection sensitivity bound");
  const std::size_t bytes = static_cast<std::size_t>(cli.get_int("bytes", 16384));
  Table table({"ranks", "loggp_ms", "contention_ms", "slowdown", "engine_ms",
               "engine_gain"});
  for (int p : {16, 32, 64, 128}) {
    const double ideal = run_alltoall(cli, "loggp", p, bytes);
    const double real = run_alltoall(cli, "contention", p, bytes);
    const double engine = run_engine_alltoall(cli, "contention", p, bytes);
    table.row().add(p).add(ideal, 2).add(real, 2).add(real / ideal, 2)
        .add(engine, 2).add(real / engine, 2);
  }
  table.print();
  std::printf("(%s per pair; the slowdown column is the bisection-contention\n"
              " factor LogGP cannot see; engine_* = coll torus schedule, hop-\n"
              " ordered nearest-first, under the contention model)\n",
              format_bytes(bytes).c_str());

  // Per-link heatmaps for the two schedules at one size, side by side:
  // the naive rotated loop piles onto the bisection links while the
  // torus schedule spreads load over nearest-neighbour hops.
  const int hm_ranks = static_cast<int>(cli.get_int("heatmap_ranks", 32));
  if (hm_ranks > 0) {
    std::string naive, engine;
    run_alltoall(cli, "contention", hm_ranks, bytes, &naive);
    run_engine_alltoall(cli, "contention", hm_ranks, bytes, &engine);
    std::printf("\n--- naive rotated schedule, %d ranks, contention model ---\n%s",
                hm_ranks, naive.c_str());
    std::printf("\n--- coll torus schedule, %d ranks, contention model ---\n%s",
                hm_ranks, engine.c_str());
  }
  return 0;
}
