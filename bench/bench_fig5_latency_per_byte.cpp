// Figure 5: effective latency per byte of a blocking get, used to
// find the message-aggregation inflection point. Paper: ~1 ns/byte
// beyond 4 KB.
#include "common.hpp"

using namespace pgasq;

int main(int argc, char** argv) {
  const Config cli = Config::from_args(argc, argv);
  bench::print_banner("bench_fig5_latency_per_byte: get latency / message byte",
                      "Fig 5 — ~1 ns/B beyond 4KB (aggregation inflection)");
  armci::WorldConfig cfg = bench::make_world_config(cli, /*ranks=*/2);
  const int iters = static_cast<int>(cli.get_int("iters", 5));

  Table table({"bytes", "get_us", "ns_per_byte"});
  armci::World world(cfg);
  world.spmd([&](armci::Comm& comm) {
    auto& mem = comm.malloc_collective(1 << 20);
    auto* buf = static_cast<std::byte*>(comm.malloc_local(1 << 20));
    if (comm.rank() == 0) {
      comm.get(mem.at(1), buf, 16);
      for (std::size_t m : bench::size_sweep()) {
        Time total = 0;
        for (int i = 0; i < iters; ++i) {
          const Time t0 = comm.now();
          comm.get(mem.at(1), buf, m);
          total += comm.now() - t0;
        }
        const double us = to_us(total) / iters;
        table.row()
            .add(format_bytes(m))
            .add(us, 3)
            .add(us * 1e3 / static_cast<double>(m), 3);
      }
    }
    comm.barrier();
  });
  table.print();
  return 0;
}
