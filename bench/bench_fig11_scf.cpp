// Figure 11: NWChem SCF (6 H2O, 644 basis functions) execution time on
// 1024 / 2048 / 4096 processes, Default vs Async-Thread progress.
// Paper: AT reduces execution time by up to 30%; the time spent in the
// load-balance counter collapses under AT because rank 0 no longer has
// to reach an explicit progress call before servicing fetch-and-adds.
#include "apps/scf.hpp"
#include "common.hpp"

using namespace pgasq;

int main(int argc, char** argv) {
  const Config cli = Config::from_args(argc, argv);
  bench::print_banner("bench_fig11_scf: NWChem SCF proxy, 6 H2O / 644 bf",
                      "Fig 11 — AT up to 30% faster; counter time collapses");

  apps::ScfConfig scf;
  scf.nbf = cli.get_int("nbf", 644);
  scf.block = cli.get_int("block", 7);
  scf.iterations = static_cast<int>(cli.get_int("iterations", 1));
  scf.mean_task_compute = from_us(cli.get_double("task_us", 5000.0));
  scf.seed = static_cast<std::uint64_t>(cli.get_int("seed", 12345));

  std::printf("tasks/iteration: %lld, mean task compute: %.1f us\n\n",
              static_cast<long long>(apps::scf_tasks_per_iteration(scf)),
              to_us(scf.mean_task_compute));

  Table table({"procs", "mode", "wall_ms", "counter_s(sum)", "get_s(sum)",
               "reduce_s(sum)", "tasks", "checksum"});
  const int max_ranks = static_cast<int>(cli.get_int("max_ranks", 4096));
  const int min_ranks = static_cast<int>(cli.get_int("min_ranks", 1024));
  double d_wall = 0.0;
  for (int p = min_ranks; p <= max_ranks; p *= 2) {
    for (const auto& mode : bench::default_and_async()) {
      armci::WorldConfig cfg =
          bench::make_world_config(cli, p, /*ranks_per_node=*/16);
      cfg.machine.num_ranks = p;
      cfg.armci.progress = mode.progress;
      cfg.armci.contexts_per_rank = mode.contexts;
      armci::World world(cfg);
      const auto r = apps::run_scf(world, scf);
      table.row()
          .add(p)
          .add(mode.name)
          .add(to_ms(r.wall_time), 2)
          .add(to_s(r.counter_time), 3)
          .add(to_s(r.get_time), 3)
          .add(to_s(r.reduce_time), 3)
          .add(static_cast<long long>(r.tasks_executed))
          .add(r.fock_checksum, 6);
      if (mode.name == "D") {
        d_wall = to_ms(r.wall_time);
      } else if (d_wall > 0.0) {
        std::printf("p=%d: AT reduces execution time by %.1f%%\n", p,
                    100.0 * (d_wall - to_ms(r.wall_time)) / d_wall);
      }
    }
  }
  std::printf("\n");
  table.print();
  return 0;
}
