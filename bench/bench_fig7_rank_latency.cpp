// Figure 7: 16 B get latency from rank 0 to every other rank on 2048
// processes (128 nodes, ABCDET mapping). Paper: pseudo-oscillatory
// curve from torus distance; min 2.89 us, max 3.38 us; the spread
// implies ~35 ns per hop.
#include <algorithm>

#include "common.hpp"

using namespace pgasq;

int main(int argc, char** argv) {
  const Config cli = Config::from_args(argc, argv);
  bench::print_banner(
      "bench_fig7_rank_latency: 16B get latency vs target rank (ABCDET mapping)",
      "Fig 7 — oscillatory with torus distance; 2.89..3.38us; ~35ns/hop");
  armci::WorldConfig cfg = bench::make_world_config(cli, /*ranks=*/2048,
                                                    /*ranks_per_node=*/16);
  const int iters = static_cast<int>(cli.get_int("iters", 3));
  const int stride = static_cast<int>(cli.get_int("rank_stride", 16));

  struct Row {
    int rank;
    int hops;
    double us;
  };
  std::vector<Row> rows;
  armci::World world(cfg);
  const auto& torus = world.machine().torus();
  const auto& mapping = world.machine().mapping();

  world.spmd([&](armci::Comm& comm) {
    auto& mem = comm.malloc_collective(256);
    auto* buf = static_cast<std::byte*>(comm.malloc_local(256));
    if (comm.rank() == 0) {
      for (int target = 1; target < comm.nprocs(); target += stride) {
        comm.get(mem.at(target), buf, 16);  // warm endpoint
        Time total = 0;
        for (int i = 0; i < iters; ++i) {
          const Time t0 = comm.now();
          comm.get(mem.at(target), buf, 16);
          total += comm.now() - t0;
        }
        rows.push_back(Row{target,
                           torus.hop_distance(mapping.node_of_rank(0),
                                              mapping.node_of_rank(target)),
                           to_us(total) / iters});
      }
    }
    comm.barrier();
  });

  Table table({"target_rank", "hops", "get_us"});
  double lo = 1e30;
  double hi = 0.0;
  int max_hops = 0;
  int min_hops = 1 << 20;
  for (const auto& r : rows) {
    table.row().add(r.rank).add(r.hops).add(r.us, 3);
    lo = std::min(lo, r.us);
    hi = std::max(hi, r.us);
    max_hops = std::max(max_hops, r.hops);
    min_hops = std::min(min_hops, r.hops);
  }
  table.print();
  // The get round-trips, so each extra hop of distance costs two hop
  // latencies — the paper's 0.49us / (7 * 2) = 35 ns analysis.
  const int hop_delta = std::max(1, max_hops - min_hops);
  std::printf("min %.3f us, max %.3f us, spread %.3f us over %d..%d hops "
              "=> %.1f ns/hop one way\n",
              lo, hi, hi - lo, min_hops, max_hops,
              (hi - lo) * 1e3 / (2.0 * hop_delta));
  std::printf("torus: %s, diameter %d hops\n",
              world.machine().torus().to_string().c_str(),
              world.machine().torus().diameter());
  return 0;
}
