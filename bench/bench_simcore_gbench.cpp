// Real-time microbenchmarks of the simulator substrate itself
// (google-benchmark): event throughput, fiber context switches, torus
// routing, and a full small-world SPMD cycle. These measure host
// performance of the simulation engine, not virtual-time results.
#include <benchmark/benchmark.h>

#include "core/comm.hpp"
#include "sim/engine.hpp"
#include "sim/sync.hpp"
#include "topo/torus.hpp"

using namespace pgasq;

namespace {

void BM_EngineEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    const int n = static_cast<int>(state.range(0));
    long long sum = 0;
    for (int i = 0; i < n; ++i) {
      engine.schedule_at(i, [&sum, i] { sum += i; });
    }
    engine.run();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EngineEventThroughput)->Arg(1 << 10)->Arg(1 << 14);

void BM_FiberPingPong(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    sim::WaitQueue qa(engine);
    sim::WaitQueue qb(engine);
    const int rounds = static_cast<int>(state.range(0));
    bool a_turn = true;  // predicate guards against lost wakeups
    engine.spawn("a", [&] {
      for (int i = 0; i < rounds; ++i) {
        while (!a_turn) qa.wait();
        a_turn = false;
        qb.notify_one();
      }
    });
    engine.spawn("b", [&] {
      for (int i = 0; i < rounds; ++i) {
        while (a_turn) qb.wait();
        a_turn = true;
        qa.notify_one();
      }
    });
    engine.run();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 2);
}
BENCHMARK(BM_FiberPingPong)->Arg(1 << 10);

void BM_TorusRoute(benchmark::State& state) {
  topo::Torus5D torus(topo::bgq_partition_dims(512));
  int a = 0;
  for (auto _ : state) {
    a = (a + 97) % torus.num_nodes();
    const int b = (a * 31 + 7) % torus.num_nodes();
    benchmark::DoNotOptimize(torus.route(a, b));
  }
}
BENCHMARK(BM_TorusRoute);

void BM_SmallWorldPingPong(benchmark::State& state) {
  for (auto _ : state) {
    armci::WorldConfig cfg;
    cfg.machine.num_ranks = 2;
    armci::World world(cfg);
    world.spmd([](armci::Comm& comm) {
      auto& mem = comm.malloc_collective(4096);
      std::byte buf[64];
      if (comm.rank() == 0) {
        for (int i = 0; i < 50; ++i) comm.get(mem.at(1), buf, 64);
      }
      comm.barrier();
    });
  }
}
BENCHMARK(BM_SmallWorldPingPong)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
