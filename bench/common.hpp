// Shared helpers for the paper-reproduction benchmark binaries.
//
// Every bench accepts "--key=value" overrides (see util/config.hpp);
// common knobs: ranks, ranks_per_node (c), net (loggp|contention),
// progress (default|async), contexts (rho), consistency
// (target|region), seed.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "core/comm.hpp"
#include "core/report_json.hpp"
#include "core/world.hpp"
#include "fault/fault.hpp"
#include "fault/integrity.hpp"
#include "flow/flow.hpp"
#include "ft/recovery.hpp"
#include "util/config.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

namespace pgasq::bench {

inline armci::WorldConfig make_world_config(const Config& cli, int default_ranks,
                                            int default_ranks_per_node = 1) {
  armci::WorldConfig cfg;
  cfg.machine.num_ranks =
      static_cast<int>(cli.get_int("ranks", default_ranks));
  cfg.machine.ranks_per_node =
      static_cast<int>(cli.get_int("ranks_per_node", default_ranks_per_node));
  cfg.machine.network_model = cli.get_string("net", "loggp");
  cfg.machine.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));

  const std::string progress = cli.get_string("progress", "default");
  if (progress == "async") {
    cfg.armci.progress = armci::ProgressMode::kAsyncThread;
    cfg.armci.contexts_per_rank = static_cast<int>(cli.get_int("contexts", 2));
  } else {
    PGASQ_CHECK(progress == "default", << "progress=" << progress);
    cfg.armci.progress = armci::ProgressMode::kDefault;
    cfg.armci.contexts_per_rank = static_cast<int>(cli.get_int("contexts", 1));
  }
  const std::string consistency = cli.get_string("consistency", "region");
  if (consistency == "target") {
    cfg.armci.consistency = armci::ConsistencyMode::kPerTarget;
  } else {
    PGASQ_CHECK(consistency == "region", << "consistency=" << consistency);
    cfg.armci.consistency = armci::ConsistencyMode::kPerRegion;
  }
  cfg.machine.params.hardware_amo = cli.get_bool("hardware_amo", false);
  cfg.machine.fault = fault::FaultPlan::from_config(cli);
  // End-to-end integrity knobs (--integrity.verify, --integrity.crc_*
  // etc.); the layer also self-arms when --fault.corrupt_prob is set.
  cfg.machine.integrity = fault::IntegrityConfig::from_config(cli);
  // Fail-stop detection knobs (--ft.heartbeat_period_us etc.); inert
  // unless the fault plan also schedules node deaths. The checkpoint
  // cadence (--ft.checkpoint_interval) is app-level — benches that run
  // SCF pick it up from the same parse via ft::RuntimeConfig.
  cfg.machine.ft = ft::RuntimeConfig::from_config(cli).liveness;
  // Overload-control knobs (--flow.credits, --flow.deadline_us,
  // --flow.admit ...). All off by default — with flow.* unset no
  // controller is built and runs stay byte-identical.
  cfg.machine.flow = flow::FlowConfig::from_config(cli);
  // Collectives-engine knobs ride through opaquely: every "--coll.*"
  // key is handed to coll::CollConfig with the prefix stripped, e.g.
  // --coll.algo.allreduce=torus-ring or --coll.hw=0.
  for (const std::string& key : cli.keys()) {
    if (key.rfind("coll.", 0) == 0) {
      cfg.armci.coll.emplace_back(key.substr(5), cli.get_string(key, ""));
    }
    // Async-runtime knobs the same way: every "--async.*" key goes to
    // async::AsyncConfig with the prefix stripped (unknown keys are
    // rejected there). With async.* unset no runtime behavior changes.
    if (key.rfind("async.", 0) == 0) {
      cfg.armci.async.emplace_back(key.substr(6), cli.get_string(key, ""));
    }
  }
  // Observability: --trace.json_path, --trace.max_events, --obs.links,
  // --obs.link_bucket_us, --obs.link_top, --obs.link_csv. All off by
  // default — untraced runs stay byte-identical.
  pami::configure_observability(cli, cfg.machine);
  return cfg;
}

/// End-of-run observability artifacts: writes the versioned
/// machine-readable report (--report.json_path, e.g. BENCH_fig3.json),
/// the per-link CSV (--obs.link_csv), and the timeline CSV
/// (--obs.timeline_csv) when the corresponding knob is set. (The trace
/// JSON is written by Machine::run itself.) No-op when all are unset.
inline void emit_observability(const Config& cli, const armci::World& world) {
  const std::string report_path = armci::json_report_path_from_config(cli);
  if (!report_path.empty()) armci::write_json_report(world, report_path);
  const pami::Machine& m = world.machine();
  if (const obs::LinkUsage* lu = m.link_usage()) {
    if (!m.config().obs.link_csv.empty()) {
      lu->write_csv(m.config().obs.link_csv);
    }
  }
  if (const obs::Timeline* tl = m.timeline()) {
    if (!m.config().obs.timeline_csv.empty()) {
      tl->write_csv(m.config().obs.timeline_csv);
    }
  }
}

/// Message-size sweep 16 B .. 1 MB in powers of two (Table II's range).
inline std::vector<std::size_t> size_sweep(std::size_t lo = 16,
                                           std::size_t hi = 1 << 20) {
  std::vector<std::size_t> sizes;
  for (std::size_t m = lo; m <= hi; m *= 2) sizes.push_back(m);
  return sizes;
}

inline void print_banner(const std::string& title, const std::string& paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("==============================================================\n");
}

/// Progress-mode series used by Fig 9 / Fig 11.
struct ModeSpec {
  std::string name;
  armci::ProgressMode progress;
  int contexts;
};

inline std::vector<ModeSpec> default_and_async() {
  return {{"D", armci::ProgressMode::kDefault, 1},
          {"AT", armci::ProgressMode::kAsyncThread, 2}};
}

}  // namespace pgasq::bench
