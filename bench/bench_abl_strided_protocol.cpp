// Ablation (S III-C2): strided protocol choice. Sweeps the contiguous
// chunk size of a fixed-total transfer through all three protocols —
// zero-copy (one RDMA per chunk), PAMI typed (single descriptor), and
// the legacy pack/unpack baseline — to show where each wins and why
// kAuto switches to typed for tall-skinny shapes.
#include "common.hpp"
#include "core/strided.hpp"

using namespace pgasq;

namespace {

double run_protocol(const Config& cli, armci::StridedProtocol protocol,
                    std::size_t l0, std::size_t total) {
  armci::WorldConfig cfg = bench::make_world_config(cli, /*ranks=*/2);
  cfg.armci.strided = protocol;
  armci::World world(cfg);
  double us = 0.0;
  world.spmd([&](armci::Comm& comm) {
    auto& mem = comm.malloc_collective(2 * total);
    auto* buf = static_cast<std::byte*>(comm.malloc_local(2 * total));
    if (comm.rank() == 0) {
      comm.get(mem.at(1), buf, 16);
      const std::uint64_t rows = total / l0;
      const armci::StridedSpec spec =
          rows == 1 ? armci::StridedSpec::contiguous(l0)
                    : armci::StridedSpec::rect2d(rows, l0, 2 * l0, 2 * l0);
      // Warm once, measure once (deterministic simulator).
      comm.put_strided(buf, mem.at(1), spec);
      comm.fence(1);
      const Time t0 = comm.now();
      comm.put_strided(buf, mem.at(1), spec);
      comm.fence(1);
      us = to_us(comm.now() - t0);
    }
    comm.barrier();
  });
  return us;
}

}  // namespace

int main(int argc, char** argv) {
  const Config cli = Config::from_args(argc, argv);
  bench::print_banner("bench_abl_strided_protocol: zero-copy vs typed vs pack/unpack",
                      "S III-C2 — protocol crossover vs chunk size");
  const std::size_t total = static_cast<std::size_t>(cli.get_int("total", 256 << 10));
  Table table({"l0_bytes", "chunks", "zero_copy_us", "typed_us", "pack_unpack_us",
               "best"});
  for (std::size_t l0 = 16; l0 <= total; l0 *= 8) {
    const double zc = run_protocol(cli, armci::StridedProtocol::kZeroCopy, l0, total);
    const double ty = run_protocol(cli, armci::StridedProtocol::kTyped, l0, total);
    const double pk =
        run_protocol(cli, armci::StridedProtocol::kPackUnpack, l0, total);
    const char* best = zc <= ty && zc <= pk ? "zero-copy" : (ty <= pk ? "typed" : "pack");
    table.row()
        .add(format_bytes(l0))
        .add(static_cast<long long>(total / l0))
        .add(zc, 1)
        .add(ty, 1)
        .add(pk, 1)
        .add(std::string(best));
  }
  table.print();
  return 0;
}
