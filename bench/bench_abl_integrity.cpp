// Ablation: what end-to-end integrity costs and what it buys. The
// Fig-4-style contiguous put/get sweep runs with the silent-corruption
// rate swept over {0, 1e-6, 1e-4}; transport CRC verification arms
// automatically whenever corruption is planned, and a "crc rate=0"
// scenario isolates the pure checksum overhead on a clean fabric
// (target: < 2% off the baseline curve — BG/Q gets this for free from
// the torus link CRC, so the software stand-in must stay cheap).
//
// Knobs: the usual bench ones plus fault.seed, integrity.crc_setup_ns,
// integrity.crc_ns_per_byte and window=N. --report.json_path writes
// the versioned JSON report of the final (rate=1e-4) scenario, whose
// integrity.* metrics carry the detected == injected invariant.
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "fault/fault.hpp"
#include "fault/integrity.hpp"

using namespace pgasq;

namespace {

struct Scenario {
  const char* name;
  double corrupt_prob;
  bool integrity;  // arm the layer even at rate 0
};

}  // namespace

int main(int argc, char** argv) {
  const Config cli = Config::from_args(argc, argv);
  bench::print_banner(
      "bench_abl_integrity: put/get bandwidth under CRC-verified transport",
      "Fig 4 with silent corruption — CRC+NACK repair cost vs corruption rate");
  const int window = static_cast<int>(cli.get_int("window", 32));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(cli.get_int("fault.seed", 1));

  const std::vector<Scenario> scenarios = {
      {"off", 0.0, false},
      {"crc rate=0", 0.0, true},
      {"crc rate=1e-6", 1e-6, true},
      {"crc rate=1e-4", 1e-4, true},
  };

  const std::vector<std::size_t> sizes = bench::size_sweep();
  // put bandwidth per size per scenario, for the overhead line below.
  std::vector<std::vector<double>> put_bw(scenarios.size());

  for (std::size_t s = 0; s < scenarios.size(); ++s) {
    const Scenario& sc = scenarios[s];
    armci::WorldConfig cfg = bench::make_world_config(cli, /*ranks=*/2);
    cfg.machine.dims = topo::Coord5{4, 1, 1, 1, 1};
    cfg.machine.ranks_per_node = 1;
    cfg.machine.num_ranks = 2;
    cfg.machine.fault.seed = seed;
    cfg.machine.fault.corrupt_prob = sc.corrupt_prob;
    if (sc.integrity) cfg.machine.integrity.configured = true;

    // One world per scenario so each row keeps consuming the injector's
    // corruption stream across the whole sweep (same rationale as
    // bench_abl_faults: a fresh world per size would replay the same
    // few draws and could miss every flip at the low rates).
    Table table({"bytes", "put_MB/s", "get_MB/s"});
    armci::World world(cfg);
    world.spmd([&](armci::Comm& comm) {
      auto& mem = comm.malloc_collective(1 << 20);
      auto* buf = static_cast<std::byte*>(comm.malloc_local(1 << 20));
      if (comm.rank() == 0) {
        comm.get(mem.at(1), buf, 16);  // warm the region cache
        comm.fence(1);
        for (std::size_t m : sizes) {
          Time t0 = comm.now();
          {
            armci::Handle h;
            for (int i = 0; i < window; ++i) comm.nb_put(buf, mem.at(1), m, h);
            comm.wait(h);
          }
          const double put =
              static_cast<double>(window) * static_cast<double>(m) /
              to_s(comm.now() - t0) / 1e6;
          comm.fence(1);
          t0 = comm.now();
          {
            armci::Handle h;
            for (int i = 0; i < window; ++i) comm.nb_get(mem.at(1), buf, m, h);
            comm.wait(h);
          }
          const double get =
              static_cast<double>(window) * static_cast<double>(m) /
              to_s(comm.now() - t0) / 1e6;
          put_bw[s].push_back(put);
          table.row().add(format_bytes(m)).add(put, 1).add(get, 1);
        }
      }
      comm.barrier();
    });
    std::printf("\n--- scenario %s (seed=%llu) ---\n", sc.name,
                static_cast<unsigned long long>(seed));
    table.print();
    std::uint64_t injected = 0;
    if (const fault::Injector* inj = world.machine().injector()) {
      injected = inj->stats().packets_corrupted;
    }
    if (const fault::Integrity* ig = world.machine().integrity()) {
      const fault::IntegrityStats& is = ig->stats();
      std::printf("crc_checks=%llu injected=%llu detected=%llu nacks=%llu "
                  "echo_acks=%llu\n",
                  static_cast<unsigned long long>(is.crc_checks),
                  static_cast<unsigned long long>(injected),
                  static_cast<unsigned long long>(is.corruptions_detected),
                  static_cast<unsigned long long>(is.nacks_sent),
                  static_cast<unsigned long long>(is.echo_crc_acks));
    }
    // The JSON report describes the most interesting scenario: the
    // highest corruption rate, where integrity.* metrics are nonzero.
    if (s + 1 == scenarios.size()) bench::emit_observability(cli, world);
  }

  // Pure CRC overhead on a clean fabric: scenario 1 vs scenario 0,
  // worst case over the size sweep.
  double worst = 0.0;
  for (std::size_t i = 0; i < put_bw[0].size(); ++i) {
    const double loss = 1.0 - put_bw[1][i] / put_bw[0][i];
    if (loss > worst) worst = loss;
  }
  std::printf("\nCRC-on overhead at corruption rate 0: worst %.2f%% of put "
              "bandwidth across the sweep (budget: 2%%)\n",
              100.0 * worst);
  return worst < 0.02 ? 0 : 1;
}
