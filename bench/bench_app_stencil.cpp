// Supplementary experiment: the subsurface-transport stencil proxy
// (STOMP-style, S II-B) under Default vs Async-Thread progress. Halo
// exchange is RDMA gets — truly one-sided — so unlike the SCF/counter
// workloads the async thread buys essentially nothing here. This is
// the negative control for the paper's Fig 9/11 claim: AT accelerates
// AM-serviced operations (AMOs, accumulates, fall-backs), not RDMA.
#include "apps/stencil.hpp"
#include "common.hpp"

using namespace pgasq;

int main(int argc, char** argv) {
  const Config cli = Config::from_args(argc, argv);
  bench::print_banner("bench_app_stencil: RDMA-dominated stencil, D vs AT",
                      "negative control for S III-D (AT helps AMOs, not RDMA)");
  apps::StencilConfig scfg;
  scfg.tile = cli.get_int("tile", 64);
  scfg.iterations = static_cast<int>(cli.get_int("iterations", 10));

  Table table({"procs", "mode", "wall_ms", "residual"});
  for (int p : {16, 64, 256}) {
    double d_wall = 0.0;
    for (const auto& mode : bench::default_and_async()) {
      armci::WorldConfig cfg =
          bench::make_world_config(cli, p, /*ranks_per_node=*/p >= 16 ? 16 : 1);
      cfg.machine.num_ranks = p;
      cfg.armci.progress = mode.progress;
      cfg.armci.contexts_per_rank = mode.contexts;
      armci::World world(cfg);
      const auto r = apps::run_stencil(world, scfg);
      table.row().add(p).add(mode.name).add(to_ms(r.wall_time), 3).add(r.residual, 4);
      if (mode.name == "D") {
        d_wall = to_ms(r.wall_time);
      } else {
        std::printf("p=%4d: AT changes wall time by %+.1f%% (expected ~0)\n", p,
                    100.0 * (to_ms(r.wall_time) - d_wall) / d_wall);
      }
    }
  }
  std::printf("\n");
  table.print();
  return 0;
}
