// Ablation: overlapped SCF iteration tail (src/async + coll::NbcEngine)
// vs the blocking per-iteration energy reduction, under the
// link-contention network model where reduction latency actually sits
// on the critical path. Both arms pin the allreduce algorithm to
// recursive doubling — the non-blocking schedule mirrors it hop for
// hop — so Fock checksums and energies must match bitwise; the bench
// aborts if they do not. The win is per-iteration time: the overlapped
// arm chains the reduction past the iteration boundary and hides the
// next iteration's first density fetch under it.
#include "apps/scf.hpp"
#include "common.hpp"
#include "obs/registry.hpp"

using namespace pgasq;

int main(int argc, char** argv) {
  const Config cli = Config::from_args(argc, argv);
  bench::print_banner(
      "bench_abl_async: overlapped SCF tail (futures + non-blocking "
      "collectives)",
      "docs/async.md — energy iallreduce chained past the iteration "
      "boundary");

  apps::ScfConfig scf;
  scf.nbf = cli.get_int("nbf", 644);
  scf.block = cli.get_int("block", 7);
  scf.iterations = static_cast<int>(cli.get_int("iterations", 3));
  scf.mean_task_compute = from_us(cli.get_double("task_us", 5000.0));
  scf.seed = static_cast<std::uint64_t>(cli.get_int("seed", 12345));

  const int ranks = static_cast<int>(cli.get_int("ranks", 512));
  std::printf("ranks: %d, tasks/iteration: %lld, iterations: %d\n\n", ranks,
              static_cast<long long>(apps::scf_tasks_per_iteration(scf)),
              scf.iterations);

  struct Arm {
    const char* name;
    bool overlap;
  };
  const Arm arms[] = {{"blocking", false}, {"overlapped", true}};

  obs::Registry acc;
  Table table({"arm", "wall_ms", "ms/iter", "reduce_s(sum)", "get_s(sum)",
               "hits", "misses", "checksum"});
  double wall_ms[2] = {0.0, 0.0};
  double checksum[2] = {0.0, 0.0};
  double energy[2] = {0.0, 0.0};
  std::unique_ptr<armci::World> last_world;
  for (int a = 0; a < 2; ++a) {
    armci::WorldConfig cfg =
        bench::make_world_config(cli, ranks, /*ranks_per_node=*/16);
    // Contention model by default: with LogGP's infinite fabric the
    // reduction barely costs anything and there is nothing to hide.
    cfg.machine.network_model = cli.get_string("net", "contention");
    // Both arms ride recursive doubling so the results are bitwise
    // comparable (appended last: overrides any --coll.algo.allreduce).
    cfg.armci.coll.emplace_back("algo.allreduce", "recdbl");
    scf.overlap = arms[a].overlap;
    auto world = std::make_unique<armci::World>(cfg);
    const auto r = apps::run_scf(*world, scf);
    wall_ms[a] = to_ms(r.wall_time);
    checksum[a] = r.fock_checksum;
    energy[a] = r.final_energy;
    table.row()
        .add(arms[a].name)
        .add(wall_ms[a], 2)
        .add(wall_ms[a] / scf.iterations, 2)
        .add(to_s(r.reduce_time), 3)
        .add(to_s(r.get_time), 3)
        .add(static_cast<long long>(r.prefetch_hits))
        .add(static_cast<long long>(r.prefetch_misses))
        .add(r.fock_checksum, 6);
    acc.set_gauge("async.scf_wall_ms", wall_ms[a], {{"arm", arms[a].name}});
    acc.set_gauge("async.scf_checksum", r.fock_checksum,
                  {{"arm", arms[a].name}});
    acc.set_gauge("async.scf_energy", r.final_energy, {{"arm", arms[a].name}});
    acc.set_gauge("async.prefetch_hits",
                  static_cast<double>(r.prefetch_hits),
                  {{"arm", arms[a].name}});
    acc.set_gauge("async.prefetch_misses",
                  static_cast<double>(r.prefetch_misses),
                  {{"arm", arms[a].name}});
    last_world = std::move(world);
  }
  table.print();

  // The overlap is an optimization, never a physics change.
  PGASQ_CHECK(checksum[0] == checksum[1],
              << "overlapped SCF changed the Fock checksum: " << checksum[0]
              << " vs " << checksum[1]);
  PGASQ_CHECK(energy[0] == energy[1],
              << "overlapped SCF changed the energy: " << energy[0] << " vs "
              << energy[1]);
  const double win =
      wall_ms[0] > 0.0 ? 100.0 * (wall_ms[0] - wall_ms[1]) / wall_ms[0] : 0.0;
  std::printf(
      "\noverlap win: %.2f%% of wall time (%.2f -> %.2f ms), physics "
      "bitwise identical\n",
      win, wall_ms[0], wall_ms[1]);
  acc.set_gauge("async.scf_overlap_win_pct", win);

  last_world->app_metrics().merge_from(acc);
  bench::emit_observability(cli, *last_world);
  return 0;
}
